//! Level-3 integration: distributed schemes against sequential ground
//! truth, across world sizes, with a real model and dataset.

use deep500::dist::comm::ThreadCommunicator;
use deep500::dist::optimizers::dsgd::ConsistentDecentralized;
use deep500::dist::optimizers::stale::StaleSynchronous;
use deep500::dist::optimizers::DistributedOptimizer;
use deep500::dist::runner::{ranks_consistent, train_data_parallel, SchemeFactory};
use deep500::dist::NetworkModel;
use deep500::prelude::*;
use std::sync::Arc;

fn dataset(len: usize) -> Arc<dyn Dataset> {
    Arc::new(SyntheticDataset::new(
        "dist-int",
        Shape::new(&[12]),
        3,
        len,
        0.3,
        99,
    ))
}

#[test]
fn dsgd_is_consistent_across_world_sizes() {
    for world in [2usize, 3, 5, 8] {
        let scheme: SchemeFactory = Arc::new(|comm: ThreadCommunicator| {
            Box::new(ConsistentDecentralized::optimized(
                Box::new(GradientDescent::new(0.05)),
                Box::new(comm),
            )) as Box<dyn DistributedOptimizer>
        });
        let results = train_data_parallel(
            &models::mlp(12, &[8], 3, 1).unwrap(),
            dataset(512),
            scheme,
            world,
            8,
            4,
            NetworkModel::aries(),
            7,
        )
        .unwrap();
        assert_eq!(results.len(), world);
        assert!(ranks_consistent(&results, 1e-5), "world {world}");
        // Everyone made progress.
        for r in &results {
            assert!(r.losses.iter().all(|l| l.is_finite()));
        }
    }
}

#[test]
fn horovod_style_matches_per_tensor_dsgd() {
    // Fused-buffer allreduce must produce the same parameters as
    // per-tensor allreduce: fusion is a performance choice only.
    let run = |fused: bool| {
        let scheme: SchemeFactory = if fused {
            Arc::new(|comm: ThreadCommunicator| {
                Box::new(ConsistentDecentralized::horovod(
                    Box::new(GradientDescent::new(0.05)),
                    Box::new(comm),
                )) as Box<dyn DistributedOptimizer>
            })
        } else {
            Arc::new(|comm: ThreadCommunicator| {
                Box::new(ConsistentDecentralized::optimized(
                    Box::new(GradientDescent::new(0.05)),
                    Box::new(comm),
                )) as Box<dyn DistributedOptimizer>
            })
        };
        train_data_parallel(
            &models::mlp(12, &[8], 3, 2).unwrap(),
            dataset(256),
            scheme,
            4,
            8,
            3,
            NetworkModel::instant(),
            13,
        )
        .unwrap()
    };
    let fused = run(true);
    let per_tensor = run(false);
    for ((n1, a), (n2, b)) in fused[0]
        .final_params
        .iter()
        .zip(&per_tensor[0].final_params)
    {
        assert_eq!(n1, n2);
        for (x, y) in a.iter().zip(b) {
            assert!((x - y).abs() < 1e-5, "{n1}: {x} vs {y}");
        }
    }
    // Horovod sends fewer messages (fusion) but comparable bytes.
    assert!(fused[0].volume.messages_sent < per_tensor[0].volume.messages_sent);
}

#[test]
fn stale_synchronous_interpolates_between_sync_and_local() {
    // staleness 0: every step synchronizes (ranks consistent).
    let scheme: SchemeFactory = Arc::new(|comm: ThreadCommunicator| {
        Box::new(StaleSynchronous::new(
            Box::new(GradientDescent::new(0.05)),
            Box::new(comm),
            0,
        )) as Box<dyn DistributedOptimizer>
    });
    let sync = train_data_parallel(
        &models::mlp(12, &[8], 3, 3).unwrap(),
        dataset(256),
        scheme,
        4,
        8,
        4,
        NetworkModel::instant(),
        21,
    )
    .unwrap();
    assert!(ranks_consistent(&sync, 1e-5));

    // staleness 3: ranks drift between synchronizations but sync at step 4.
    let scheme: SchemeFactory = Arc::new(|comm: ThreadCommunicator| {
        Box::new(StaleSynchronous::new(
            Box::new(GradientDescent::new(0.05)),
            Box::new(comm),
            3,
        )) as Box<dyn DistributedOptimizer>
    });
    let stale = train_data_parallel(
        &models::mlp(12, &[8], 3, 3).unwrap(),
        dataset(256),
        scheme,
        4,
        8,
        4, // exactly one sync boundary at step 4
        NetworkModel::instant(),
        21,
    )
    .unwrap();
    assert!(ranks_consistent(&stale, 1e-5), "consistent at the boundary");
    // The stale run communicated less: one sync instead of four.
    assert!(
        stale[1].volume.bytes_sent < sync[1].volume.bytes_sent,
        "stale {} vs sync {}",
        stale[1].volume.bytes_sent,
        sync[1].volume.bytes_sent
    );
}

#[test]
fn virtual_time_reflects_network_quality() {
    // The same schedule on a slower network must take more virtual time.
    let run = |model: NetworkModel| -> f64 {
        let scheme: SchemeFactory = Arc::new(|comm: ThreadCommunicator| {
            Box::new(ConsistentDecentralized::optimized(
                Box::new(GradientDescent::new(0.05)),
                Box::new(comm),
            )) as Box<dyn DistributedOptimizer>
        });
        let results = train_data_parallel(
            &models::mlp(12, &[8], 3, 4).unwrap(),
            dataset(256),
            scheme,
            4,
            8,
            3,
            model,
            5,
        )
        .unwrap();
        results.iter().map(|r| r.virtual_time).fold(0.0, f64::max)
    };
    let aries = run(NetworkModel::aries());
    let ethernet = run(NetworkModel::ethernet_10g());
    assert!(
        ethernet > aries * 2.0,
        "ethernet {ethernet} should dwarf aries {aries}"
    );
}
