//! Level-3 integration: distributed schemes against sequential ground
//! truth, across world sizes, with a real model and dataset.

use deep500::dist::runner::{DistributedRunner, RunReport, Variant};
use deep500::dist::NetworkModel;
use deep500::prelude::*;
use std::sync::Arc;

fn dataset(len: usize) -> Arc<dyn Dataset> {
    Arc::new(SyntheticDataset::new(
        "dist-int",
        Shape::new(&[12]),
        3,
        len,
        0.3,
        99,
    ))
}

#[test]
fn dsgd_is_consistent_across_world_sizes() {
    for world in [2usize, 3, 5, 8] {
        let report = DistributedRunner::new(&models::mlp(12, &[8], 3, 1).unwrap(), dataset(512))
            .world(world)
            .batch(8)
            .steps(4)
            .seed(7)
            .learning_rate(0.05)
            .variant(Variant::Cdsgd)
            .network(NetworkModel::aries())
            .run()
            .unwrap();
        assert_eq!(report.ranks.len(), world);
        assert!(report.all_completed(), "world {world}");
        let consistency = report.consistency(1e-5);
        assert!(consistency.is_consistent(), "world {world}: {consistency}");
        // Everyone made progress.
        for r in &report.ranks {
            assert!(r.losses.iter().all(|l| l.is_finite()));
        }
    }
}

#[test]
fn horovod_style_matches_per_tensor_dsgd() {
    // Fused-buffer allreduce must produce the same parameters as
    // per-tensor allreduce: fusion is a performance choice only.
    let run = |variant: Variant| -> RunReport {
        DistributedRunner::new(&models::mlp(12, &[8], 3, 2).unwrap(), dataset(256))
            .world(4)
            .batch(8)
            .steps(3)
            .seed(13)
            .learning_rate(0.05)
            .variant(variant)
            .run()
            .unwrap()
    };
    let fused = run(Variant::Horovod);
    let per_tensor = run(Variant::Cdsgd);
    for ((n1, a), (n2, b)) in fused.ranks[0]
        .final_params
        .iter()
        .zip(&per_tensor.ranks[0].final_params)
    {
        assert_eq!(n1, n2);
        for (x, y) in a.iter().zip(b) {
            assert!((x - y).abs() < 1e-5, "{n1}: {x} vs {y}");
        }
    }
    // Horovod sends fewer messages (fusion) but comparable bytes.
    assert!(fused.ranks[0].volume.messages_sent < per_tensor.ranks[0].volume.messages_sent);
}

#[test]
fn stale_synchronous_interpolates_between_sync_and_local() {
    let run = |max_staleness: u64| -> RunReport {
        DistributedRunner::new(&models::mlp(12, &[8], 3, 3).unwrap(), dataset(256))
            .world(4)
            .batch(8)
            .steps(4)
            .seed(21)
            .learning_rate(0.05)
            .variant(Variant::StaleSynchronous { max_staleness })
            .run()
            .unwrap()
    };
    // staleness 0: every step synchronizes (ranks consistent).
    let sync = run(0);
    let c = sync.consistency(1e-5);
    assert!(c.is_consistent(), "{c}");

    // staleness 3: ranks drift between synchronizations but sync at step
    // 4 — exactly one sync boundary within the 4-step run.
    let stale = run(3);
    let c = stale.consistency(1e-5);
    assert!(c.is_consistent(), "consistent at the boundary: {c}");
    // The stale run communicated less: one sync instead of four.
    assert!(
        stale.ranks[1].volume.bytes_sent < sync.ranks[1].volume.bytes_sent,
        "stale {} vs sync {}",
        stale.ranks[1].volume.bytes_sent,
        sync.ranks[1].volume.bytes_sent
    );
}

#[test]
fn virtual_time_reflects_network_quality() {
    // The same schedule on a slower network must take more virtual time.
    let run = |model: NetworkModel| -> f64 {
        DistributedRunner::new(&models::mlp(12, &[8], 3, 4).unwrap(), dataset(256))
            .world(4)
            .batch(8)
            .steps(3)
            .seed(5)
            .learning_rate(0.05)
            .variant(Variant::Cdsgd)
            .network(model)
            .run()
            .unwrap()
            .makespan()
    };
    // Virtual time = measured local compute + modeled communication, so
    // the gap is narrower than the pure-communication ratio — but slower
    // networks must still cost more. CPU contention from concurrently
    // running test binaries inflates the measured compute term and can
    // swamp the modeled gap; the communication model is deterministic and
    // contention noise is strictly additive, so the minimum over enough
    // repetitions recovers the contention-free comparison. Eight reps (up
    // from three) keeps this reliable now that the workspace also runs
    // thread-heavy serving tests in parallel with this binary.
    let best =
        |model: fn() -> NetworkModel| (0..8).map(|_| run(model())).fold(f64::INFINITY, f64::min);
    let aries = best(NetworkModel::aries);
    let ethernet = best(NetworkModel::ethernet_10g);
    assert!(
        ethernet > aries * 1.2,
        "ethernet {ethernet} should clearly exceed aries {aries}"
    );
}
