//! Data-pipeline integration: synthetic images → D5J encoding → on-disk
//! containers → decode pipelines → minibatches → training. The full path
//! behind the paper's Fig. 8 / Table III experiments.

use deep500::data::codec::{self, RawImage};
use deep500::data::container::binfile::{write_binfile, BinFileDataset};
use deep500::data::container::indexed_tar::{write_indexed_tar, Decoder, IndexedTarReader};
use deep500::data::container::recordfile::{write_recordfile, RecordPipeline, RecordReader};
use deep500::data::io_model::{StorageClock, StorageModel};
use deep500::prelude::*;
use deep500::train::TrainingConfig;
use std::path::PathBuf;
use std::sync::Arc;

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("d5-pipeline-int");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

fn encoded_samples(n: usize, seed: u64) -> Vec<(RawImage, u32)> {
    let src = SyntheticDataset::cifar10_like(n, seed);
    (0..n)
        .map(|i| {
            let (pix, label) = src.sample_u8(i);
            (RawImage::new(3, 32, 32, pix).unwrap(), label)
        })
        .collect()
}

#[test]
fn record_pipeline_feeds_training() {
    // Encode a small CIFAR-shaped dataset into a record file, then train
    // directly from the decode pipeline.
    let samples = encoded_samples(96, 8);
    let path = tmp("train.d5rec");
    write_recordfile(&path, &samples, 85).unwrap();

    let clock = Arc::new(StorageClock::new());
    let reader = RecordReader::open(&path, StorageModel::local_ssd(), clock.clone()).unwrap();
    let mut pipeline = RecordPipeline::new(reader, 64, true, 3);

    let net = models::lenet(3, 32, 10, 12).unwrap();
    let ex_engine = Engine::builder(net).build().unwrap();
    let mut ex = ex_engine.lock();
    let mut opt = GradientDescent::new(0.02);
    let mut losses = Vec::new();
    while let Some(batch) = pipeline.next_batch(16).unwrap() {
        let mb = Minibatch {
            x: batch.x,
            labels: batch.labels,
        };
        let r = deep500::train::train_step(&mut opt, &mut *ex, &mb).unwrap();
        losses.push(r.loss);
    }
    assert!(
        losses.len() >= 6,
        "pipeline produced {} batches",
        losses.len()
    );
    assert!(losses.iter().all(|l| l.is_finite()));
    assert!(clock.elapsed() > 0.0, "modeled I/O time charged");
    std::fs::remove_file(&path).ok();
}

#[test]
fn tar_and_record_decode_identical_images() {
    let samples = encoded_samples(10, 9);
    let tar_path = tmp("same.tar");
    let rec_path = tmp("same.d5rec");
    write_indexed_tar(&tar_path, &samples, 85).unwrap();
    write_recordfile(&rec_path, &samples, 85).unwrap();

    let clock = Arc::new(StorageClock::new());
    let mut tar = IndexedTarReader::open(
        &tar_path,
        Decoder::Turbo,
        StorageModel::local_ssd(),
        clock.clone(),
    )
    .unwrap();
    let mut rec = RecordReader::open(&rec_path, StorageModel::local_ssd(), clock).unwrap();
    for i in 0..10 {
        let (tar_img, tar_label) = tar.read_sample(i).unwrap();
        let record = rec.next_record().unwrap().unwrap();
        let rec_img = codec::decode_turbo(&record.payload).unwrap();
        assert_eq!(tar_img, rec_img, "sample {i}");
        assert_eq!(tar_label, record.label);
    }
    std::fs::remove_file(&tar_path).ok();
    std::fs::remove_file(&rec_path).ok();
}

#[test]
fn binfile_dataset_trains_like_synthetic() {
    // MNIST-style raw binary on disk: write, reload, train one epoch.
    let src = SyntheticDataset::mnist_like(64, 10);
    let samples: Vec<(Vec<u8>, u32)> = (0..64).map(|i| src.sample_u8(i)).collect();
    let path = tmp("mnist.d5bin");
    write_binfile(&path, 1, 28, 28, &samples).unwrap();

    let clock = Arc::new(StorageClock::new());
    let ds: Arc<dyn Dataset> =
        Arc::new(BinFileDataset::open(&path, 10, &StorageModel::local_ssd(), &clock).unwrap());
    let net = models::lenet(1, 28, 10, 10).unwrap();
    let ex_engine = Engine::builder(net).build().unwrap();
    let mut ex = ex_engine.lock();
    let mut sampler = ShuffleSampler::new(ds, 16, 4);
    let mut opt = GradientDescent::new(0.05);
    let mut runner = TrainingRunner::new(TrainingConfig {
        epochs: 1,
        ..Default::default()
    });
    let log = runner.run(&mut opt, &mut *ex, &mut sampler, None).unwrap();
    assert_eq!(log.step_losses.len(), 4);
    std::fs::remove_file(&path).ok();
}

#[test]
fn lossy_codec_preserves_labels_and_learnability() {
    // Images that went through the lossy codec still carry their class
    // signal: a model trained on decoded images beats chance.
    let samples = encoded_samples(128, 11);
    let path = tmp("learn.d5rec");
    write_recordfile(&path, &samples, 80).unwrap();
    let clock = Arc::new(StorageClock::new());
    let reader = RecordReader::open(&path, StorageModel::local_ssd(), clock).unwrap();
    let mut pipeline = RecordPipeline::new(reader, 128, true, 7);
    let batch = pipeline.next_batch(128).unwrap().unwrap();

    let net = models::lenet(3, 32, 10, 13).unwrap();
    let ex_engine = Engine::builder(net).build().unwrap();
    let mut ex = ex_engine.lock();
    let mut opt = Momentum::new(0.02, 0.9);
    let mb = Minibatch {
        x: batch.x,
        labels: batch.labels,
    };
    let mut final_acc = 0.0;
    for _ in 0..30 {
        let r = deep500::train::train_step(&mut opt, &mut *ex, &mb).unwrap();
        final_acc = r.accuracy.unwrap();
    }
    assert!(
        final_acc > 0.5,
        "overfit accuracy {final_acc} on decoded images"
    );
    std::fs::remove_file(&path).ok();
}
