//! Cross-framework integration: the same portable network executes on the
//! reference executor and on every simulated framework backend with
//! matching outputs and gradients — the paper's Level-1 `test_executor`
//! story, end to end.

use deep500::graph::validate::{test_executor, test_executor_backprop};
use deep500::prelude::*;
use deep500::recipes::test_optimizer;
use deep500::train::TrainingConfig;
use std::sync::Arc;

fn feeds(seed: u64) -> Vec<(&'static str, Tensor)> {
    let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
    vec![
        (
            "x",
            Tensor::rand_uniform([4, 1, 16, 16], -1.0, 1.0, &mut rng),
        ),
        ("labels", Tensor::from_slice(&[0.0, 1.0, 2.0, 3.0])),
    ]
}

#[test]
fn every_backend_matches_the_reference_on_lenet() {
    for profile in FrameworkProfile::all() {
        let name = profile.name;
        let net = models::lenet(1, 16, 4, 31).unwrap();
        let mut fx = FrameworkExecutor::new(&net, profile).unwrap();
        let rx_engine = Engine::builder(net).build().unwrap();
        let mut rx = rx_engine.lock();
        let report = test_executor(&mut fx, &mut *rx, &feeds(31), 3).unwrap();
        assert!(
            report.passes(1e-3),
            "{name} inference diverged: {:?}",
            report.output_norms
        );
        let report = test_executor_backprop(&mut fx, &mut *rx, &feeds(31), "loss", 2).unwrap();
        assert!(
            report.passes(5e-3),
            "{name} gradients diverged: {:?}",
            report.gradient_norms
        );
    }
}

#[test]
fn deep500_wrapped_training_matches_native_trajectory() {
    // The Level-2 overhead experiment's correctness half: running the
    // trainer over a framework executor must produce the same parameters
    // as over the reference executor.
    let net = models::mlp(12, &[8], 3, 17).unwrap();
    let mut fx = FrameworkExecutor::new(&net, FrameworkProfile::caffe2()).unwrap();
    let rx_engine = Engine::builder(net).build().unwrap();
    let mut rx = rx_engine.lock();
    let ds: Arc<dyn Dataset> = Arc::new(SyntheticDataset::new(
        "xfw",
        Shape::new(&[12]),
        3,
        96,
        0.3,
        17,
    ));
    let mut batches = Vec::new();
    let mut s = SequentialSampler::new(ds, 12);
    while let Some(b) = s.next_batch().unwrap() {
        batches.push(b);
    }
    let mut cand = GradientDescent::new(0.05);
    let mut refr = GradientDescent::new(0.05);
    let report = test_optimizer(&mut cand, &mut fx, &mut refr, &mut *rx, &batches).unwrap();
    assert!(report.passes(1e-4), "{:?}", report.param_norms);
}

#[test]
fn fused_and_composed_adam_reach_equal_accuracy() {
    // The paper's Fig. 9/10 claim: the fused native optimizer is faster
    // but *not* more accurate — trajectories coincide.
    use deep500::frameworks::fused_optim::FusedAdam;
    let run = |fused: bool| -> f64 {
        let train_ds = SyntheticDataset::new("fvc", Shape::new(&[16]), 4, 256, 0.3, 23);
        let test_ds = train_ds.holdout(128);
        let net = models::mlp(16, &[24], 4, 23).unwrap();
        let ex_engine = Engine::builder(net).build().unwrap();
        let mut ex = ex_engine.lock();
        let mut train = ShuffleSampler::new(Arc::new(train_ds), 32, 5);
        let mut test = ShuffleSampler::new(Arc::new(test_ds), 64, 5);
        let mut runner = TrainingRunner::new(TrainingConfig {
            epochs: 5,
            ..Default::default()
        });
        let log = if fused {
            let mut opt = FusedAdam::new(0.01);
            runner
                .run(&mut opt, &mut *ex, &mut train, Some(&mut test))
                .unwrap()
        } else {
            let mut opt = Adam::new(0.01);
            runner
                .run(&mut opt, &mut *ex, &mut train, Some(&mut test))
                .unwrap()
        };
        log.final_test_accuracy().unwrap()
    };
    let fused_acc = run(true);
    let composed_acc = run(false);
    assert!(
        (fused_acc - composed_acc).abs() < 0.05,
        "fused {fused_acc} vs composed {composed_acc}"
    );
}

#[test]
fn custom_op_participates_in_cross_framework_execution() {
    // Register a custom op, put it in a network, execute on two backends.
    struct Clip;
    impl Operator for Clip {
        fn name(&self) -> &str {
            "Clip01"
        }
        fn num_inputs(&self) -> usize {
            1
        }
        fn output_shapes(&self, s: &[&Shape]) -> deep500::tensor::Result<Vec<Shape>> {
            Ok(vec![s[0].clone()])
        }
        fn forward(&self, inputs: &[&Tensor]) -> deep500::tensor::Result<Vec<Tensor>> {
            Ok(vec![inputs[0].map(|v| v.clamp(0.0, 1.0))])
        }
        fn backward(
            &self,
            g: &[&Tensor],
            i: &[&Tensor],
            _o: &[&Tensor],
        ) -> deep500::tensor::Result<Vec<Tensor>> {
            Ok(vec![g[0].zip(i[0], |gv, xv| {
                if (0.0..=1.0).contains(&xv) {
                    gv
                } else {
                    0.0
                }
            })?])
        }
    }
    register_op("Clip01", |_| Ok(Box::new(Clip)));
    let mut net = Network::new("clip-net");
    net.add_input("x");
    net.add_node("c", "Clip01", Attributes::new(), &["x"], &["y"])
        .unwrap();
    net.add_output("y");
    let x = Tensor::from_slice(&[-1.0, 0.5, 2.0]);
    let a_engine = Engine::builder(net.clone_structure()).build().unwrap();
    let mut a = a_engine.lock();
    let mut b = FrameworkExecutor::new(&net, FrameworkProfile::tensorflow()).unwrap();
    let ya = a.inference(&[("x", x.clone())]).unwrap();
    let yb = b.inference(&[("x", x)]).unwrap();
    assert_eq!(ya["y"], yb["y"]);
    assert_eq!(ya["y"].data(), &[0.0, 0.5, 1.0]);
}
