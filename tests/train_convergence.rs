//! Cross-crate integration: every provided optimizer trains a CNN on a
//! learnable synthetic task, loss decreases, and accuracy beats chance —
//! the end-to-end Level-0→2 path.

use deep500::prelude::*;
use deep500::train::TrainingConfig;
use std::sync::Arc;

fn scenario(seed: u64) -> (Box<dyn GraphExecutor>, ShuffleSampler, ShuffleSampler) {
    let train_ds = SyntheticDataset::new("conv-task", Shape::new(&[1, 12, 12]), 4, 192, 0.4, seed);
    let test_ds = train_ds.holdout(96);
    let net = models::lenet(1, 12, 4, seed).unwrap();
    (
        Engine::builder(net).build().unwrap().into_inner().unwrap(),
        ShuffleSampler::new(Arc::new(train_ds), 16, seed),
        ShuffleSampler::new(Arc::new(test_ds), 32, seed),
    )
}

fn train_with(opt: &mut dyn ThreeStepOptimizer, seed: u64) -> (f32, f32, f64) {
    let (mut ex, mut train, mut test) = scenario(seed);
    let mut runner = TrainingRunner::new(TrainingConfig {
        epochs: 3,
        ..Default::default()
    });
    let log = runner
        .run(opt, &mut *ex, &mut train, Some(&mut test))
        .unwrap();
    let (first, last) = log.loss_endpoints().unwrap();
    (first, last, log.final_test_accuracy().unwrap())
}

#[test]
fn sgd_converges_on_cnn() {
    let mut opt = GradientDescent::new(0.05);
    let (first, last, acc) = train_with(&mut opt, 1);
    assert!(last < first, "{first} -> {last}");
    assert!(acc > 0.5, "accuracy {acc}");
}

#[test]
fn momentum_converges_on_cnn() {
    let mut opt = Momentum::new(0.02, 0.9);
    let (first, last, acc) = train_with(&mut opt, 2);
    assert!(last < first);
    assert!(acc > 0.5, "accuracy {acc}");
}

#[test]
fn adam_converges_on_cnn() {
    let mut opt = Adam::new(0.005);
    let (first, last, acc) = train_with(&mut opt, 3);
    assert!(last < first);
    assert!(acc > 0.5, "accuracy {acc}");
}

#[test]
fn adagrad_converges_on_cnn() {
    let mut opt = AdaGrad::new(0.02);
    let (first, last, acc) = train_with(&mut opt, 4);
    assert!(last < first);
    assert!(acc > 0.5, "accuracy {acc}");
}

#[test]
fn rmsprop_converges_on_cnn() {
    let mut opt = RmsProp::new(0.002);
    let (first, last, acc) = train_with(&mut opt, 5);
    assert!(last < first);
    assert!(acc > 0.5, "accuracy {acc}");
}

#[test]
fn accelegrad_converges_on_cnn() {
    let mut opt = AcceleGrad::new(AcceleGradConfig {
        d: 2.0,
        g: 5.0,
        lr: 0.05,
        eps: 1e-8,
    });
    let (first, last, acc) = train_with(&mut opt, 6);
    assert!(last < first);
    assert!(acc > 0.4, "accuracy {acc}");
}

#[test]
fn fused_native_optimizers_converge_too() {
    use deep500::frameworks::fused_optim::{FusedAdam, FusedMomentum};
    let mut opt = FusedAdam::new(0.005);
    let (_, _, acc) = train_with(&mut opt, 7);
    assert!(acc > 0.5, "fused adam accuracy {acc}");
    let mut opt = FusedMomentum::new(0.02, 0.9);
    let (_, _, acc) = train_with(&mut opt, 8);
    assert!(acc > 0.5, "fused momentum accuracy {acc}");
}

#[test]
fn resnet_like_model_trains_end_to_end() {
    use deep500::graph::models::resnet_like;
    let train_ds = SyntheticDataset::new("res-task", Shape::new(&[1, 8, 8]), 3, 96, 0.3, 9);
    let net = resnet_like(1, 8, 4, 2, 3, 9).unwrap();
    let engine = Engine::builder(net).build().unwrap();
    let mut ex = engine.lock();
    let mut sampler = ShuffleSampler::new(Arc::new(train_ds), 12, 9);
    let mut opt = GradientDescent::new(0.02);
    let mut runner = TrainingRunner::new(TrainingConfig {
        epochs: 2,
        ..Default::default()
    });
    let log = runner.run(&mut opt, &mut *ex, &mut sampler, None).unwrap();
    let (first, last) = log.loss_endpoints().unwrap();
    assert!(last < first, "resnet loss {first} -> {last}");
}
