//! Graph transforms under the transform-safety harness (verify §4).
//!
//! Elementwise fusion and convolution micro-batching are the two rewrites
//! the repo ships. Each must re-verify after rewriting: the interface
//! (inputs/outputs) unchanged, parameters present with their shapes, and
//! every tensor that survives the rewrite inferring the *same* shape as
//! before. The harness is also checked in the negative: a deliberately
//! broken "transform" must be flagged, not silently accepted.

use deep500::graph::network::Network;
use deep500::graph::transforms::{fusion::fuse_elementwise, microbatch::microbatch_convolutions};
use deep500::graph::Engine;
use deep500::ops::registry::Attributes;
use deep500::tensor::{Shape, Tensor};
use deep500::verify::transform_safety;

/// Scale → Relu → Scale chain over a vector input (the fusion target).
fn chain_net() -> Network {
    let mut net = Network::new("chain");
    net.add_input("x");
    net.add_node(
        "s1",
        "Scale",
        Attributes::new()
            .with_float("alpha", 2.0)
            .with_float("beta", 1.0),
        &["x"],
        &["t1"],
    )
    .unwrap();
    net.add_node("r", "Relu", Attributes::new(), &["t1"], &["t2"])
        .unwrap();
    net.add_node(
        "s2",
        "Scale",
        Attributes::new().with_float("alpha", 0.5),
        &["t2"],
        &["y"],
    )
    .unwrap();
    net.add_output("y");
    net
}

/// A conv net big enough that a small workspace cap forces micro-batching.
fn conv_net() -> Network {
    let mut net = Network::new("conv");
    net.add_input("x");
    net.add_parameter("w", Tensor::ones([4, 2, 3, 3]));
    net.add_parameter("b", Tensor::zeros([4]));
    net.add_node(
        "conv",
        "Conv2d",
        Attributes::new().with_int("stride", 1).with_int("pad", 1),
        &["x", "w", "b"],
        &["y"],
    )
    .unwrap();
    net.add_output("y");
    net
}

#[test]
fn fusion_passes_the_transform_safety_harness() {
    let mut net = chain_net();
    let before = net.to_ir();
    let fused = fuse_elementwise(&mut net).unwrap();
    assert_eq!(fused, 1, "the whole chain must fuse");
    let inputs = [("x", Shape::new(&[3]))];
    let diff = transform_safety::diff(&before, &net.to_ir(), &inputs);
    assert!(
        diff.passes(),
        "fusion drifted:\n{}",
        diff.report.render(true)
    );
    // The intermediates were folded into the fused node; the interface
    // tensor `y` must survive with its shape intact.
    assert!(diff.removed.contains(&"t1".to_string()));
    assert!(diff.removed.contains(&"t2".to_string()));
    assert!(diff.drifted.is_empty());
    assert!(diff.report.shapes.contains_key("y"));
}

#[test]
fn fusion_result_still_executes_identically() {
    let x = Tensor::from_slice(&[-3.0, 0.0, 2.0]);
    let r_engine = Engine::builder(chain_net()).build().unwrap();
    let mut r = r_engine.lock();
    let expect = r.inference(&[("x", x.clone())]).unwrap()["y"].clone();
    let mut net = chain_net();
    fuse_elementwise(&mut net).unwrap();
    // The constructor re-runs the structural gate over the fused graph.
    let ex_engine = Engine::builder(net).build().unwrap();
    let mut ex = ex_engine.lock();
    let got = ex.inference(&[("x", x)]).unwrap()["y"].clone();
    assert!(expect.approx_eq(&got, 1e-6));
}

#[test]
fn microbatch_passes_the_harness_it_runs_internally() {
    let x_shape = Shape::new(&[12, 2, 8, 8]);
    let mut net = conv_net();
    let before = net.to_ir();
    // microbatch_convolutions runs transform_safety::diff internally and
    // errors on any drift — Ok here already means the harness passed.
    let reports = microbatch_convolutions(&mut net, &[("x", x_shape.clone())], 40_000).unwrap();
    assert_eq!(reports.len(), 1);
    assert!(reports[0].plan.sizes.len() > 1, "must actually split");
    // Re-run the harness externally and inspect the diff shape.
    let diff = transform_safety::diff(&before, &net.to_ir(), &[("x", x_shape)]);
    assert!(diff.passes(), "{}", diff.report.render(true));
    // Split/Conv*/Concat adds micro-batch edges but must not drop or
    // reshape anything that survived.
    assert!(diff.drifted.is_empty());
    assert!(!diff.added.is_empty(), "split introduces mb tensors");
    assert!(diff.report.shapes.contains_key("y"));
}

#[test]
fn microbatch_noop_when_workspace_fits() {
    let x_shape = Shape::new(&[2, 2, 8, 8]);
    let mut net = conv_net();
    let before = net.to_ir();
    let reports = microbatch_convolutions(&mut net, &[("x", x_shape.clone())], usize::MAX).unwrap();
    assert!(reports.is_empty());
    let diff = transform_safety::diff(&before, &net.to_ir(), &[("x", x_shape)]);
    assert!(diff.passes());
    assert!(diff.removed.is_empty() && diff.added.is_empty());
}

#[test]
fn harness_flags_a_broken_rewrite() {
    let mut net = chain_net();
    let before = net.to_ir();
    // A "transform" that rips out the middle node leaves `t2` undefined
    // and `t1` dead — the harness must refuse it.
    let relu_id = net
        .nodes()
        .find(|(_, n)| n.name == "r")
        .map(|(id, _)| id)
        .unwrap();
    net.remove_node(relu_id).unwrap();
    let diff = transform_safety::diff(&before, &net.to_ir(), &[("x", Shape::new(&[3]))]);
    assert!(!diff.passes(), "broken rewrite slipped through");
    assert!(diff.report.deny_count() > 0);
}
