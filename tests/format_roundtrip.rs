//! d5nx format integration: train → save → load → keep training; the
//! reloaded model must behave identically (reproducibility, pillar 5).

use deep500::graph::format;
use deep500::prelude::*;
use deep500::train::TrainingConfig;
use std::sync::Arc;

#[test]
fn trained_model_survives_a_roundtrip() {
    let train_ds = SyntheticDataset::new("fmt", Shape::new(&[10]), 3, 128, 0.25, 41);
    let test_ds = train_ds.holdout(64);
    let test_arc: Arc<dyn Dataset> = Arc::new(test_ds);

    // Train briefly.
    let net = models::mlp(10, &[12], 3, 41).unwrap();
    let ex_engine = Engine::builder(net).build().unwrap();
    let mut ex = ex_engine.lock();
    let mut sampler = ShuffleSampler::new(Arc::new(train_ds), 16, 1);
    let mut opt = GradientDescent::new(0.1);
    let mut runner = TrainingRunner::new(TrainingConfig {
        epochs: 3,
        ..Default::default()
    });
    runner.run(&mut opt, &mut *ex, &mut sampler, None).unwrap();

    // Evaluate, save, reload, evaluate again: identical accuracy.
    let mut test_sampler = ShuffleSampler::new(test_arc.clone(), 32, 2);
    let acc_before = deep500::train::runner::evaluate(&mut *ex, &mut test_sampler).unwrap();

    let path = std::env::temp_dir().join("d5-roundtrip-integration.d5nx");
    format::save(ex.network(), &path).unwrap();
    let reloaded = format::load(&path).unwrap();
    let ex2_engine = Engine::builder(reloaded).build().unwrap();
    let mut ex2 = ex2_engine.lock();
    let mut test_sampler = ShuffleSampler::new(test_arc, 32, 2);
    let acc_after = deep500::train::runner::evaluate(&mut *ex2, &mut test_sampler).unwrap();
    assert_eq!(acc_before, acc_after, "bitwise identical evaluation");
    std::fs::remove_file(&path).ok();
}

#[test]
fn bytes_are_deterministic_across_saves() {
    let net = models::lenet(1, 12, 4, 5).unwrap();
    let a = format::encode(&net);
    let b = format::encode(&net);
    assert_eq!(a, b);
    // And across an encode/decode cycle.
    let c = format::encode(&format::decode(&a).unwrap());
    assert_eq!(a, c, "re-encoding a decoded model is byte-identical");
}

#[test]
fn custom_ops_roundtrip_when_registered() {
    struct Half;
    impl Operator for Half {
        fn name(&self) -> &str {
            "Half"
        }
        fn num_inputs(&self) -> usize {
            1
        }
        fn output_shapes(&self, s: &[&Shape]) -> deep500::tensor::Result<Vec<Shape>> {
            Ok(vec![s[0].clone()])
        }
        fn forward(&self, i: &[&Tensor]) -> deep500::tensor::Result<Vec<Tensor>> {
            Ok(vec![i[0].scale(0.5)])
        }
        fn backward(
            &self,
            g: &[&Tensor],
            _i: &[&Tensor],
            _o: &[&Tensor],
        ) -> deep500::tensor::Result<Vec<Tensor>> {
            Ok(vec![g[0].scale(0.5)])
        }
    }
    register_op("Half", |_| Ok(Box::new(Half)));
    let mut net = Network::new("with-custom");
    net.add_input("x");
    net.add_node("h", "Half", Attributes::new(), &["x"], &["y"])
        .unwrap();
    net.add_output("y");
    let bytes = format::encode(&net);
    let back = format::decode(&bytes).unwrap();
    let ex_engine = Engine::builder(back).build().unwrap();
    let mut ex = ex_engine.lock();
    let out = ex.inference(&[("x", Tensor::from_slice(&[4.0]))]).unwrap();
    assert_eq!(out["y"].data(), &[2.0]);
}

#[test]
fn microbatched_graph_roundtrips() {
    use deep500::graph::transforms::microbatch::microbatch_convolutions;
    let mut rng = Xoshiro256StarStar::seed_from_u64(3);
    let mut net = Network::new("mb");
    net.add_input("x");
    net.add_parameter("w", Tensor::rand_uniform([2, 1, 3, 3], -0.5, 0.5, &mut rng));
    net.add_parameter("b", Tensor::zeros([2]));
    net.add_node(
        "conv",
        "Conv2d",
        Attributes::new().with_int("pad", 1),
        &["x", "w", "b"],
        &["y"],
    )
    .unwrap();
    net.add_output("y");
    microbatch_convolutions(&mut net, &[("x", Shape::new(&[16, 1, 8, 8]))], 10_000).unwrap();
    assert!(net.num_nodes() > 1, "transformed");
    let back = format::decode(&format::encode(&net)).unwrap();
    // The transformed (Split/Conv*/Concat) graph still executes correctly.
    let x = Tensor::rand_uniform([16, 1, 8, 8], -1.0, 1.0, &mut rng);
    let e1_engine = Engine::builder(net).build().unwrap();
    let mut e1 = e1_engine.lock();
    let e2_engine = Engine::builder(back).build().unwrap();
    let mut e2 = e2_engine.lock();
    let y1 = e1.inference(&[("x", x.clone())]).unwrap();
    let y2 = e2.inference(&[("x", x)]).unwrap();
    assert_eq!(y1["y"], y2["y"]);
}
