//! Offline drop-in subset of [crossbeam](https://docs.rs/crossbeam):
//! the unbounded MPSC channel surface used by the thread transport, backed
//! by `std::sync::mpsc`.

pub mod channel {
    use std::sync::mpsc;

    /// Error returned by [`Sender::send`] when the receiver is gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when all senders are gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`]: the channel is merely
    /// empty, or every sender has hung up (matches crossbeam's shape —
    /// fault-tolerant callers need to tell the two apart).
    #[derive(Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    /// Sending half of an unbounded channel.
    pub struct Sender<T>(mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0
                .send(value)
                .map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    /// Receiving half of an unbounded channel.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|_| RecvError)
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }
    }

    /// An unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(rx))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_roundtrip() {
            let (tx, rx) = unbounded();
            tx.send(5).unwrap();
            tx.clone().send(6).unwrap();
            assert_eq!(rx.recv(), Ok(5));
            assert_eq!(rx.recv(), Ok(6));
            drop(tx);
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn try_recv_distinguishes_empty_from_disconnected() {
            let (tx, rx) = unbounded();
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
            tx.send(7).unwrap();
            assert_eq!(rx.try_recv(), Ok(7));
            drop(tx);
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }

        #[test]
        fn send_after_hangup_errors() {
            let (tx, rx) = unbounded();
            drop(rx);
            assert_eq!(tx.send(1), Err(SendError(1)));
        }
    }
}
