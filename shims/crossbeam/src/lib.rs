//! Offline drop-in subset of [crossbeam](https://docs.rs/crossbeam):
//! the unbounded MPSC channel surface used by the thread transport, backed
//! by `std::sync::mpsc`.

pub mod channel {
    use std::sync::mpsc;

    /// Error returned by [`Sender::send`] when the receiver is gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when all senders are gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Sending half of an unbounded channel.
    pub struct Sender<T>(mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0
                .send(value)
                .map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    /// Receiving half of an unbounded channel.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|_| RecvError)
        }

        pub fn try_recv(&self) -> Option<T> {
            self.0.try_recv().ok()
        }
    }

    /// An unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(rx))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_roundtrip() {
            let (tx, rx) = unbounded();
            tx.send(5).unwrap();
            tx.clone().send(6).unwrap();
            assert_eq!(rx.recv(), Ok(5));
            assert_eq!(rx.recv(), Ok(6));
            drop(tx);
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn send_after_hangup_errors() {
            let (tx, rx) = unbounded();
            drop(rx);
            assert_eq!(tx.send(1), Err(SendError(1)));
        }
    }
}
