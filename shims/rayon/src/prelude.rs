//! The rayon-compatible combinator surface used by this workspace:
//! `par_chunks_mut`, `par_iter`, `into_par_iter`, with `enumerate`, `map`,
//! `for_each`, `sum`, and order-preserving `collect`.

use crate::pool;

// ------------------------------------------------------------ mutable chunks

/// Extension trait adding `par_chunks_mut` to slices.
pub trait ParallelSliceMut<T: Send> {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T> {
        assert!(chunk_size > 0, "chunk size must be positive");
        ParChunksMut {
            chunks: self.chunks_mut(chunk_size).collect(),
        }
    }
}

pub struct ParChunksMut<'a, T: Send> {
    chunks: Vec<&'a mut [T]>,
}

impl<'a, T: Send> ParChunksMut<'a, T> {
    pub fn enumerate(self) -> ParEnumerate<ParChunksMut<'a, T>> {
        ParEnumerate { inner: self }
    }

    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&'a mut [T]) + Sync,
    {
        pool::par_map_indexed(self.chunks, |_, chunk| f(chunk));
    }
}

/// `enumerate()` adapter over a chunked parallel iterator.
pub struct ParEnumerate<I> {
    inner: I,
}

impl<'a, T: Send> ParEnumerate<ParChunksMut<'a, T>> {
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((usize, &'a mut [T])) + Sync,
    {
        pool::par_map_indexed(self.inner.chunks, |i, chunk| f((i, chunk)));
    }
}

// ---------------------------------------------------------- shared iteration

/// Extension trait adding `par_iter` to collections of `Sync` items.
pub trait IntoParallelRefIterator<'a> {
    type Item: Sync + 'a;
    fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

pub struct ParIter<'a, T: Sync> {
    items: Vec<&'a T>,
}

impl<'a, T: Sync> ParIter<'a, T> {
    pub fn map<R, F>(self, f: F) -> ParMap<'a, T, R, F>
    where
        R: Send,
        F: Fn(&'a T) -> R + Sync,
    {
        ParMap {
            items: self.items,
            f,
            _r: std::marker::PhantomData,
        }
    }

    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&'a T) + Sync,
    {
        pool::par_map_indexed(self.items, |_, item| f(item));
    }
}

pub struct ParMap<'a, T: Sync, R, F> {
    items: Vec<&'a T>,
    f: F,
    _r: std::marker::PhantomData<R>,
}

impl<'a, T: Sync, R: Send, F: Fn(&'a T) -> R + Sync> ParMap<'a, T, R, F> {
    /// Order-preserving collect (runs the maps in parallel, then builds the
    /// collection from results in input order — matching rayon's indexed
    /// collect semantics for `Vec` and short-circuiting `Result`).
    pub fn collect<C>(self) -> C
    where
        C: FromIterator<R>,
    {
        let f = self.f;
        pool::par_map_indexed(self.items, |_, item| f(item))
            .into_iter()
            .collect()
    }

    pub fn sum<S>(self) -> S
    where
        S: std::iter::Sum<R>,
    {
        let f = self.f;
        pool::par_map_indexed(self.items, |_, item| f(item))
            .into_iter()
            .sum()
    }
}

// ------------------------------------------------------------ owned iteration

/// Extension trait adding `into_par_iter` to owned collections and ranges.
pub trait IntoParallelIterator {
    type Item: Send;
    fn into_par_iter(self) -> IntoParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> IntoParIter<T> {
        IntoParIter { items: self }
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    fn into_par_iter(self) -> IntoParIter<usize> {
        IntoParIter {
            items: self.collect(),
        }
    }
}

pub struct IntoParIter<T: Send> {
    items: Vec<T>,
}

impl<T: Send> IntoParIter<T> {
    pub fn map<R, F>(self, f: F) -> IntoParMap<T, R, F>
    where
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        IntoParMap {
            items: self.items,
            f,
            _r: std::marker::PhantomData,
        }
    }

    pub fn for_each<F>(self, f: F)
    where
        F: Fn(T) + Sync,
    {
        pool::par_map_indexed(self.items, |_, item| f(item));
    }
}

pub struct IntoParMap<T: Send, R, F> {
    items: Vec<T>,
    f: F,
    _r: std::marker::PhantomData<R>,
}

impl<T: Send, R: Send, F: Fn(T) -> R + Sync> IntoParMap<T, R, F> {
    pub fn collect<C>(self) -> C
    where
        C: FromIterator<R>,
    {
        let f = self.f;
        pool::par_map_indexed(self.items, |_, item| f(item))
            .into_iter()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunks_mut_enumerated() {
        let mut data = vec![0u32; 10];
        data.par_chunks_mut(3).enumerate().for_each(|(i, c)| {
            for v in c.iter_mut() {
                *v = i as u32;
            }
        });
        assert_eq!(data, [0, 0, 0, 1, 1, 1, 2, 2, 2, 3]);
    }

    #[test]
    fn par_iter_collect_result() {
        let items: Vec<i32> = (0..50).collect();
        let ok: Result<Vec<i32>, String> = items.par_iter().map(|&v| Ok(v * 3)).collect();
        assert_eq!(ok.unwrap()[49], 147);
        let err: Result<Vec<i32>, String> = items
            .par_iter()
            .map(|&v| {
                if v == 25 {
                    Err("bad".to_string())
                } else {
                    Ok(v)
                }
            })
            .collect();
        assert!(err.is_err());
    }

    #[test]
    fn into_par_iter_range() {
        let squares: Vec<usize> = (0usize..20).into_par_iter().map(|i| i * i).collect();
        assert_eq!(squares[7], 49);
    }
}
