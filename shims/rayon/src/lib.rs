//! Offline drop-in subset of [rayon](https://docs.rs/rayon).
//!
//! The build environment has no network access to crates.io, so this shim
//! provides the slice/iterator combinators the workspace actually uses
//! (`par_chunks_mut`, `par_iter().map().collect()`, `into_par_iter`)
//! on top of a persistent work-sharing thread pool. Semantics match rayon
//! where it matters here:
//!
//! * chunk/item order is preserved by `collect`/`enumerate`,
//! * the calling thread participates in its own task set, so nested
//!   parallelism (an operator kernel calling `par_chunks_mut` from inside a
//!   pool task) cannot deadlock: a caller always drains its own queue and
//!   only waits for tasks already stolen by other workers,
//! * panics in tasks are propagated to the caller after the set completes.
//!
//! Thread count comes from `RAYON_NUM_THREADS` or `available_parallelism`.

pub mod pool;
pub mod prelude;

pub use pool::current_num_threads;

pub mod iter {
    pub use crate::prelude::*;
}
