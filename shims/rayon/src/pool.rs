//! The global work-sharing thread pool behind the parallel combinators.
//!
//! Workers block on a shared injector queue of `'static` jobs. Borrowing
//! parallel-for closures are run through a [`TaskSet`] whose lifetime is
//! erased before submission; soundness rests on `run_set` not returning
//! until every task in the set has finished, so the borrowed data outlives
//! all uses. Stale helper jobs that fire after completion find an empty
//! task iterator and exit immediately.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

type Job = Box<dyn FnOnce() + Send + 'static>;

struct Injector {
    queue: Mutex<VecDeque<Job>>,
    ready: Condvar,
}

struct Pool {
    injector: Arc<Injector>,
    threads: usize,
}

static POOL: OnceLock<Pool> = OnceLock::new();

fn pool() -> &'static Pool {
    POOL.get_or_init(|| {
        let threads = std::env::var("RAYON_NUM_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            });
        let injector = Arc::new(Injector {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
        });
        for i in 0..threads {
            let inj = Arc::clone(&injector);
            std::thread::Builder::new()
                .name(format!("d5-worker-{i}"))
                .spawn(move || worker_loop(&inj))
                .expect("spawn pool worker");
        }
        Pool { injector, threads }
    })
}

fn worker_loop(inj: &Injector) {
    loop {
        let job = {
            let mut q = inj.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(job) = q.pop_front() {
                    break job;
                }
                q = inj.ready.wait(q).unwrap_or_else(|e| e.into_inner());
            }
        };
        job();
    }
}

fn submit(job: Job) {
    let inj = &pool().injector;
    inj.queue
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .push_back(job);
    inj.ready.notify_one();
}

/// Number of worker threads in the global pool.
pub fn current_num_threads() -> usize {
    pool().threads
}

/// A set of borrowing tasks executed cooperatively by the caller and any
/// idle pool workers.
struct TaskSet<'a> {
    tasks: Mutex<std::vec::IntoIter<Box<dyn FnOnce() + Send + 'a>>>,
    pending: Mutex<usize>,
    done: Condvar,
    panicked: AtomicBool,
}

impl TaskSet<'_> {
    /// Pull and run tasks until the iterator is drained.
    fn drain(&self) {
        loop {
            let task = {
                let mut it = self.tasks.lock().unwrap_or_else(|e| e.into_inner());
                it.next()
            };
            let Some(task) = task else { break };
            if catch_unwind(AssertUnwindSafe(task)).is_err() {
                self.panicked.store(true, Ordering::SeqCst);
            }
            let mut pending = self.pending.lock().unwrap_or_else(|e| e.into_inner());
            *pending -= 1;
            if *pending == 0 {
                self.done.notify_all();
            }
        }
    }
}

/// Run every task to completion, sharing the work with idle pool workers.
/// Panics (once, after the whole set has finished) if any task panicked.
pub fn run_set(tasks: Vec<Box<dyn FnOnce() + Send + '_>>) {
    let n = tasks.len();
    if n == 0 {
        return;
    }
    if n == 1 {
        let mut tasks = tasks;
        (tasks.pop().expect("one task"))();
        return;
    }
    let set = Arc::new(TaskSet {
        tasks: Mutex::new(tasks.into_iter()),
        pending: Mutex::new(n),
        done: Condvar::new(),
        panicked: AtomicBool::new(false),
    });
    // SAFETY: lifetime erasure only — `TaskSet<'a>` and `TaskSet<'static>`
    // are the same type modulo the closure lifetime, so the transmute
    // changes no layout. Helpers submitted to the pool must be 'static,
    // but this frame blocks below until `pending == 0`: every borrowed
    // closure is consumed (or the panic flag set) before the borrows it
    // captures can go out of scope, so no helper ever observes a dangling
    // reference.
    let erased: Arc<TaskSet<'static>> = unsafe { std::mem::transmute(Arc::clone(&set)) };
    let helpers = (pool().threads).min(n - 1);
    for _ in 0..helpers {
        let s = Arc::clone(&erased);
        submit(Box::new(move || s.drain()));
    }
    set.drain();
    let mut pending = set.pending.lock().unwrap_or_else(|e| e.into_inner());
    while *pending > 0 {
        pending = set.done.wait(pending).unwrap_or_else(|e| e.into_inner());
    }
    drop(pending);
    if set.panicked.load(Ordering::SeqCst) {
        panic!("a parallel task panicked");
    }
}

/// Parallel map over owned items, preserving input order in the output.
pub fn par_map_indexed<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let n = items.len();
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    {
        let f = &f;
        let slots = &slots;
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = items
            .into_iter()
            .enumerate()
            .map(|(i, item)| {
                Box::new(move || {
                    let r = f(i, item);
                    *slots[i].lock().unwrap_or_else(|e| e.into_inner()) = Some(r);
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        run_set(tasks);
    }
    slots
        .into_iter()
        .map(|s| {
            s.into_inner()
                .unwrap_or_else(|e| e.into_inner())
                .expect("task completed")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_order() {
        let out = par_map_indexed((0..100).collect(), |_, v: i32| v * 2);
        assert_eq!(out, (0..100).map(|v| v * 2).collect::<Vec<_>>());
    }

    #[test]
    fn nested_sets_complete() {
        let out = par_map_indexed((0..8).collect(), |_, v: i32| {
            par_map_indexed((0..8).collect(), |_, w: i32| w + v)
                .iter()
                .sum::<i32>()
        });
        assert_eq!(out.len(), 8);
        assert_eq!(out[0], 28);
    }

    #[test]
    #[should_panic(expected = "a parallel task panicked")]
    fn panics_propagate() {
        par_map_indexed(vec![0, 1, 2, 3], |_, v: i32| {
            if v == 2 {
                panic!("boom");
            }
            v
        });
    }
}
