//! Offline drop-in subset of [proptest](https://docs.rs/proptest).
//!
//! Supports the surface this workspace's property tests use: the
//! `proptest!` macro (with an optional `#![proptest_config(..)]` header),
//! range and `any::<T>()` strategies, `prop::collection::vec`, and the
//! `prop_assert!`/`prop_assert_eq!` assertions. Cases are generated from a
//! deterministic per-test RNG (seeded by test name and case index), so runs
//! are reproducible. No shrinking: a failing case reports its inputs via
//! the assertion message and panics immediately.

use std::marker::PhantomData;

/// Deterministic splitmix64 generator driving all strategies.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for one test case, seeded from the test name and case index.
    pub fn for_case(test_name: &str, case: u32) -> TestRng {
        // FNV-1a over the name, mixed with the case index.
        let mut h: u64 = 0xcbf29ce484222325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRng {
            state: h ^ ((case as u64 + 1).wrapping_mul(0x9e3779b97f4a7c15)),
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A value generator. Unlike real proptest there is no shrinking tree; a
/// strategy just samples one value per case.
pub trait Strategy {
    type Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                let span = (hi - lo) as u64 + 1;
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

int_range_strategy!(usize, u8, u16, u32, u64);

macro_rules! signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + (rng.next_u64() % span) as i128) as $t
            }
        }
    )*};
}

signed_range_strategy!(i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                self.start + (rng.next_f64() as $t) * (self.end - self.start)
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

/// Strategy for "any value of `T`" — full-domain sampling.
pub struct Any<T>(PhantomData<T>);

/// `any::<T>()` — the full-domain strategy for `T`.
pub fn any<T>() -> Any<T>
where
    Any<T>: Strategy,
{
    Any(PhantomData)
}

macro_rules! any_uint {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

any_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Any<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Strategy for Any<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        (rng.next_f64() * 2.0 - 1.0) as f32 * 1e3
    }
}

impl Strategy for Any<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        (rng.next_f64() * 2.0 - 1.0) * 1e3
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
}

/// A strategy that always yields a clone of one value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Runner configuration; only the case count is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 48 }
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};

    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    /// A `Vec` whose length is drawn from `size` and whose elements are
    /// drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The `prop::` paths used inside `proptest!` bodies.
pub mod prop {
    pub use crate::collection;
}

pub mod prelude {
    pub use crate::{
        any, collection, prop, prop_assert, prop_assert_eq, prop_assume, proptest, Any, Just,
        ProptestConfig, Strategy, TestRng,
    };
}

/// Runs each contained `#[test]` function over `cases` deterministic
/// samples of its argument strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr)
        $( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut proptest_rng = $crate::TestRng::for_case(stringify!($name), case);
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut proptest_rng);)*
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// `prop_assert!` — asserts, reporting the failing expression.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `prop_assert_eq!` — equality assert, reporting both sides.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// `prop_assume!` — skips the current case when the assumption fails.
/// Real proptest retries with a fresh input; without shrinking machinery we
/// simply move on to the next case, which keeps the same coverage contract
/// (the body only ever runs on inputs satisfying the assumption).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)*)?) => {
        if !$cond {
            continue;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::for_case("bounds", 0);
        for _ in 0..1000 {
            let v = (3usize..17).generate(&mut rng);
            assert!((3..17).contains(&v));
            let f = (-2.0f32..4.0).generate(&mut rng);
            assert!((-2.0..4.0).contains(&f));
            let s = (-5i64..5).generate(&mut rng);
            assert!((-5..5).contains(&s));
        }
    }

    #[test]
    fn deterministic_per_case() {
        let a = (0usize..100).generate(&mut TestRng::for_case("x", 7));
        let b = (0usize..100).generate(&mut TestRng::for_case("x", 7));
        assert_eq!(a, b);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// The macro itself works end to end.
        #[test]
        fn macro_roundtrip(n in 1usize..10, v in prop::collection::vec(any::<u8>(), 1..5)) {
            prop_assert!((1..10).contains(&n));
            prop_assert!(!v.is_empty() && v.len() < 5);
            prop_assert_eq!(v.len(), v.len());
        }
    }
}
