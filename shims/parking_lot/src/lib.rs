//! Offline drop-in subset of [parking_lot](https://docs.rs/parking_lot).
//!
//! Wraps `std::sync` locks with parking_lot's panic-free API: `lock`,
//! `read`, and `write` return guards directly instead of `Result`s.
//! Poisoning is ignored (a poisoned std lock yields its inner guard), which
//! matches parking_lot's behaviour of not poisoning at all.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock that does not poison.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock that does not poison.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }
}
