//! Offline drop-in subset of [criterion](https://docs.rs/criterion).
//!
//! Implements the benchmark-group API surface used by this workspace's
//! `harness = false` benches: warm-up, fixed sample counts, and median /
//! min / max per-iteration wall-clock reporting to stdout. No plots, no
//! statistical regression analysis — just honest timings, so the `cargo
//! bench` entry points keep working without network access to crates.io.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier for one benchmark within a group.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `iters` back-to-back calls of `routine`.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark (minimum 2).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        let samples = self.sample_size;
        self.criterion.run_bench(&label, samples, &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label);
        let samples = self.sample_size;
        self.criterion
            .run_bench(&label, samples, &mut |b| f(b, input));
        self
    }

    pub fn finish(&mut self) {}
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
        }
    }

    pub fn bench_function<F>(&mut self, name: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run_bench(&name.to_string(), 10, &mut f);
        self
    }

    fn run_bench(&mut self, label: &str, samples: usize, f: &mut dyn FnMut(&mut Bencher)) {
        // Warm-up and calibration: find an iteration count that makes one
        // sample take roughly 20ms, capped to keep total runtime bounded.
        let mut bencher = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        let per_iter = bencher.elapsed.max(Duration::from_nanos(1));
        let target = Duration::from_millis(20);
        let iters = (target.as_nanos() / per_iter.as_nanos()).clamp(1, 10_000) as u64;

        let mut times: Vec<f64> = Vec::with_capacity(samples);
        for _ in 0..samples {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            times.push(b.elapsed.as_secs_f64() / iters as f64);
        }
        times.sort_by(|a, b| a.total_cmp(b));
        let median = times[times.len() / 2];
        let (min, max) = (times[0], times[times.len() - 1]);
        println!(
            "{label:<50} time: [{} {} {}]  ({} samples x {} iters)",
            format_time(min),
            format_time(median),
            format_time(max),
            samples,
            iters
        );
    }

    /// Compatibility no-op (real criterion parses CLI args here).
    pub fn configure_from_args(self) -> Self {
        self
    }
}

fn format_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} µs", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

/// Declares a function running the given benchmark functions in order.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        group.bench_function("noop", |b| b.iter(|| 1 + 1));
        group.bench_with_input(BenchmarkId::from_parameter("x"), &3u32, |b, &v| {
            b.iter(|| v * 2)
        });
        group.finish();
    }

    #[test]
    fn time_formatting() {
        assert_eq!(format_time(2.0), "2.000 s");
        assert_eq!(format_time(0.0025), "2.500 ms");
        assert_eq!(format_time(2.5e-6), "2.500 µs");
        assert_eq!(format_time(5e-9), "5.0 ns");
    }
}
