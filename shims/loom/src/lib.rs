//! Offline stand-in for the [`loom`](https://docs.rs/loom) model checker.
//!
//! Real loom exhaustively enumerates thread interleavings of code written
//! against its shadow `loom::sync`/`loom::thread` types. This build
//! environment has no crates.io access, and the code under test (the
//! `BufferPool` and `MemoryAccountant` concurrency kernels) is written
//! against real `std`/`parking_lot` primitives — so this shim keeps loom's
//! *test-authoring surface* (`loom::model`, `loom::thread::spawn`,
//! `loom::thread::yield_now`) but explores interleavings by **bounded
//! schedule perturbation**: each `model` iteration re-runs the closure with
//! real threads whose startup is staggered by a per-iteration,
//! deterministic yield pattern, shaking out ordering-dependent failures
//! without loom's completeness guarantee.
//!
//! The divergence is deliberate and documented in `shims/README.md`; tests
//! written against this shim compile unchanged against real loom (which
//! subsumes the perturbation by exhaustive search).

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Number of perturbed schedules explored per `model` call. Chosen so the
/// cfg-gated suites stay fast on single-core CI runners while still cycling
/// through every distinct yield pattern several times.
const SCHEDULES: usize = 64;

static CURRENT_SCHEDULE: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Per-spawn counter inside one schedule, so sibling threads of the same
    /// iteration get *different* perturbations.
    static SPAWN_SEQ: Cell<usize> = const { Cell::new(0) };
}

/// Run `f` under `SCHEDULES` perturbed schedules (real loom: under every
/// possible schedule). Panics propagate, so a failing interleaving fails
/// the test with that schedule's panic message.
pub fn model<F>(f: F)
where
    F: Fn() + Sync,
{
    for schedule in 0..SCHEDULES {
        CURRENT_SCHEDULE.store(schedule, Ordering::SeqCst);
        SPAWN_SEQ.with(|c| c.set(0));
        f();
    }
}

/// Shadow of `loom::thread`.
pub mod thread {
    use super::{CURRENT_SCHEDULE, SPAWN_SEQ};
    use std::sync::atomic::Ordering;

    /// Spawn a real thread whose start is perturbed by the current
    /// schedule: thread `k` of schedule `s` yields `(s + 3k) % 7` times
    /// before running the closure, then once per yield point afterwards is
    /// up to the closure (use [`yield_now`]).
    pub fn spawn<F, T>(f: F) -> std::thread::JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        let schedule = CURRENT_SCHEDULE.load(Ordering::SeqCst);
        let seq = SPAWN_SEQ.with(|c| {
            let v = c.get();
            c.set(v + 1);
            v
        });
        std::thread::spawn(move || {
            for _ in 0..(schedule + 3 * seq) % 7 {
                std::thread::yield_now();
            }
            f()
        })
    }

    /// Yield point: in real loom this is a preemption point the checker
    /// branches on; here it is a plain scheduler yield.
    pub fn yield_now() {
        std::thread::yield_now();
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn model_runs_many_schedules_and_joins() {
        let runs = Arc::new(AtomicUsize::new(0));
        let r = Arc::clone(&runs);
        super::model(move || {
            let counter = Arc::new(AtomicUsize::new(0));
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let c = Arc::clone(&counter);
                    super::thread::spawn(move || c.fetch_add(1, Ordering::SeqCst))
                })
                .collect();
            for h in handles {
                h.join().expect("worker panicked");
            }
            assert_eq!(counter.load(Ordering::SeqCst), 2);
            r.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(runs.load(Ordering::SeqCst), super::SCHEDULES);
    }
}
