//! The paper's Table I (framework features) and Table II (benchmark
//! features) as queryable data plus renderers.
//!
//! These tables are literature surveys, not measurements; encoding them
//! makes the comparison machine-checkable (e.g. "Deep500 is the only
//! benchmark covering performance, convergence and accuracy at once") and
//! lets `examples/feature_matrix.rs` regenerate them.

/// Tri-state feature support, as in the paper's legend.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Support {
    /// Offers the feature.
    Full,
    /// Offers it in a limited way.
    Partial,
    /// Does not offer it.
    None,
}

impl Support {
    /// The paper's glyphs: full `●`, partial `◐`, none `○`.
    pub fn glyph(&self) -> &'static str {
        match self {
            Support::Full => "●",
            Support::Partial => "◐",
            Support::None => "○",
        }
    }
}

use Support::{Full, None as No, Partial};

/// Table I column keys (framework capabilities).
pub const FRAMEWORK_FEATURES: [&str; 13] = [
    "Sta", "Cus", "Def", "Eag", "Com", "Tra", "Dat", "Opt", "CusOpt", "PS", "Dec", "Asy", "CusDist",
];

/// One Table I row.
#[derive(Debug, Clone)]
pub struct FrameworkRow {
    pub name: &'static str,
    /// (L)ibrary, (F)ramework, (E)frontend, or (M)eta-framework.
    pub kind: char,
    pub features: [Support; 13],
}

/// Table I: DL frameworks and their features (subset of the paper's rows,
/// including every system its evaluation uses, plus Deep500 itself).
pub fn framework_matrix() -> Vec<FrameworkRow> {
    vec![
        FrameworkRow {
            name: "cuDNN",
            kind: 'L',
            features: [Full, No, No, No, No, No, No, No, No, No, No, No, No],
        },
        FrameworkRow {
            name: "MKL-DNN",
            kind: 'L',
            features: [Full, No, No, No, No, No, No, No, No, No, No, No, No],
        },
        FrameworkRow {
            name: "TensorFlow",
            kind: 'F',
            features: [
                Full, Full, Full, Full, Partial, Partial, Full, Partial, Partial, Full, Full,
                Partial, Full,
            ],
        },
        FrameworkRow {
            name: "Caffe2",
            kind: 'F',
            features: [
                Full, Partial, Full, No, Partial, Partial, Full, Partial, Full, Full, Partial,
                Full, Partial,
            ],
        },
        FrameworkRow {
            name: "PyTorch",
            kind: 'F',
            features: [
                Full, Full, No, Full, No, No, Partial, Full, Full, No, Full, Partial, Full,
            ],
        },
        FrameworkRow {
            name: "MXNet",
            kind: 'F',
            features: [
                Full, Partial, Full, Partial, No, No, Full, Partial, Full, Full, No, Full, No,
            ],
        },
        FrameworkRow {
            name: "CNTK",
            kind: 'F',
            features: [
                Full, Partial, Full, No, No, No, Full, Partial, Full, Full, Partial, Full, Partial,
            ],
        },
        FrameworkRow {
            name: "Keras",
            kind: 'E',
            features: [
                Full, No, Partial, Partial, Partial, No, Partial, Partial, Full, No, No, No, No,
            ],
        },
        FrameworkRow {
            name: "Horovod",
            kind: 'E',
            features: [No, No, No, No, No, No, No, No, No, No, Full, Partial, Full],
        },
        // Deep500 provides an isolated modular abstraction of every
        // feature, with reference implementations for most.
        FrameworkRow {
            name: "Deep500",
            kind: 'M',
            features: [Full; 13],
        },
    ]
}

/// Table II column keys (benchmark functionality).
pub const BENCHMARK_FEATURES: [&str; 11] = [
    "Perf", "Conv", "Acc", "Tput", "Brk", "Sca", "Com", "TTA", "FTA", "Ops", "Repro",
];

/// One Table II row.
#[derive(Debug, Clone)]
pub struct BenchmarkRow {
    pub name: &'static str,
    pub features: [Support; 11],
}

/// Table II: DL benchmarks and their functionality (condensed columns:
/// performance, convergence, accuracy, throughput, timing breakdown,
/// strong scaling, communication, time-to-accuracy, final test accuracy,
/// operator benchmarks, reproducible infrastructure).
pub fn benchmark_matrix() -> Vec<BenchmarkRow> {
    vec![
        BenchmarkRow {
            name: "DeepBench",
            features: [Full, No, Partial, No, No, No, No, No, No, Full, Partial],
        },
        BenchmarkRow {
            name: "TBD",
            features: [Full, No, Partial, Full, Full, No, No, No, No, No, No],
        },
        BenchmarkRow {
            name: "Fathom",
            features: [Full, No, Partial, Full, Partial, No, No, No, No, No, No],
        },
        BenchmarkRow {
            name: "DAWNBench",
            features: [Full, Partial, Full, No, No, Partial, No, Full, Full, No, No],
        },
        BenchmarkRow {
            name: "MLPerf",
            features: [
                Full, Partial, Full, Full, No, Partial, No, Full, Full, No, Partial,
            ],
        },
        BenchmarkRow {
            name: "Deep500",
            features: [Full; 11],
        },
    ]
}

/// Render any support matrix as an aligned text table.
pub fn render_matrix(title: &str, columns: &[&str], rows: &[(String, Vec<Support>)]) -> String {
    let mut headers = vec!["System"];
    headers.extend_from_slice(columns);
    let mut table = deep500_metrics::Table::new(title, &headers);
    for (name, feats) in rows {
        let mut cells = vec![name.clone()];
        cells.extend(feats.iter().map(|s| s.glyph().to_string()));
        table.row(&cells);
    }
    table.render()
}

/// Count systems that fully support every listed feature.
pub fn full_coverage_count<const N: usize>(matrix: &[(&str, [Support; N])]) -> usize {
    matrix
        .iter()
        .filter(|(_, f)| f.iter().all(|&s| s == Full))
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deep500_is_the_only_full_coverage_benchmark() {
        let matrix: Vec<(&str, [Support; 11])> = benchmark_matrix()
            .into_iter()
            .map(|r| (r.name, r.features))
            .collect();
        assert_eq!(full_coverage_count(&matrix), 1);
        let full = matrix
            .iter()
            .find(|(_, f)| f.iter().all(|&s| s == Full))
            .unwrap();
        assert_eq!(full.0, "Deep500");
    }

    #[test]
    fn matrices_are_well_formed() {
        for row in framework_matrix() {
            assert!(!row.name.is_empty());
            assert!("LFEM".contains(row.kind));
        }
        assert!(framework_matrix().len() >= 10);
        assert!(benchmark_matrix().len() >= 6);
    }

    #[test]
    fn render_produces_all_rows() {
        let rows: Vec<(String, Vec<Support>)> = benchmark_matrix()
            .into_iter()
            .map(|r| (r.name.to_string(), r.features.to_vec()))
            .collect();
        let s = render_matrix("Table II", &BENCHMARK_FEATURES, &rows);
        assert!(s.contains("Deep500"));
        assert!(s.contains("MLPerf"));
        assert!(s.contains('●') && s.contains('○'));
        // title + header + separator + one line per row
        assert_eq!(s.lines().count(), 3 + rows.len());
    }

    #[test]
    fn glyphs_are_distinct() {
        assert_ne!(Support::Full.glyph(), Support::None.glyph());
        assert_ne!(Support::Partial.glyph(), Support::None.glyph());
    }
}
