//! High-level benchmarking recipes — the `d5.test_*` entry points.
//!
//! The paper's user-facing API consists of short validation/benchmark
//! calls (`test_forward`, `test_gradient`, `test_training`, …) that wire
//! the levels together. This module re-exports those entry points under
//! one roof and adds convenience drivers used by the examples and benches.

pub use deep500_data::bias::test_sampler;
pub use deep500_graph::validate::{test_executor, test_executor_backprop};
pub use deep500_ops::grad_check::test_gradient;
pub use deep500_ops::validate::test_forward;
pub use deep500_train::validate::{test_optimizer, test_training};

use deep500_data::sampler::ShuffleSampler;
use deep500_data::synthetic::SyntheticDataset;
use deep500_graph::{models, Engine, ExecutorKind, GraphExecutor};
use deep500_tensor::{Result, Shape};
use deep500_train::{ThreeStepOptimizer, TrainingConfig, TrainingLog, TrainingRunner};
use std::sync::Arc;

/// A ready-made Level-2 benchmark scenario: model + train/test samplers.
///
/// The executor is built from an [`ExecutorKind`], so any scenario can run
/// on the serial reference executor (the default) or the wavefront
/// executor — they are bit-identical, so recipe results do not depend on
/// the choice.
pub struct Scenario {
    pub executor: Box<dyn GraphExecutor>,
    pub train_sampler: ShuffleSampler,
    pub test_sampler: ShuffleSampler,
    pub name: String,
    kind: ExecutorKind,
}

impl Scenario {
    /// MLP on a learnable synthetic task — the workhorse of the optimizer
    /// benchmarks (small enough for Criterion, hard enough to rank
    /// optimizers).
    pub fn mlp_classification(
        features: usize,
        classes: usize,
        train_len: usize,
        batch: usize,
        seed: u64,
    ) -> Result<Scenario> {
        Self::mlp_classification_with(
            ExecutorKind::Reference,
            features,
            classes,
            train_len,
            batch,
            seed,
        )
    }

    /// [`Scenario::mlp_classification`] with an explicit executor choice.
    pub fn mlp_classification_with(
        kind: ExecutorKind,
        features: usize,
        classes: usize,
        train_len: usize,
        batch: usize,
        seed: u64,
    ) -> Result<Scenario> {
        let train_ds = SyntheticDataset::new(
            "synth-train",
            Shape::new(&[features]),
            classes,
            train_len,
            0.25,
            seed,
        );
        let test_ds = train_ds.holdout(train_len / 2);
        let net = models::mlp(features, &[features * 2], classes, seed ^ 0x5EED)?;
        Ok(Scenario {
            executor: Engine::builder(net).executor(kind).build()?.into_inner()?,
            train_sampler: ShuffleSampler::new(Arc::new(train_ds), batch, seed),
            test_sampler: ShuffleSampler::new(Arc::new(test_ds), batch * 2, seed),
            name: format!("mlp-{features}f-{classes}c"),
            kind,
        })
    }

    /// CNN on a CIFAR-shaped synthetic task — the convergence-figure
    /// scenario (Figs. 9/10 at laptop scale).
    pub fn cnn_classification(
        hw: usize,
        classes: usize,
        train_len: usize,
        batch: usize,
        seed: u64,
    ) -> Result<Scenario> {
        Self::cnn_classification_with(ExecutorKind::Reference, hw, classes, train_len, batch, seed)
    }

    /// [`Scenario::cnn_classification`] with an explicit executor choice.
    pub fn cnn_classification_with(
        kind: ExecutorKind,
        hw: usize,
        classes: usize,
        train_len: usize,
        batch: usize,
        seed: u64,
    ) -> Result<Scenario> {
        let train_ds = SyntheticDataset::new(
            "synth-cifar",
            Shape::new(&[3, hw, hw]),
            classes,
            train_len,
            0.3,
            seed,
        );
        let test_ds = train_ds.holdout(train_len / 2);
        let net = models::lenet(3, hw, classes, seed ^ 0x5EED)?;
        Ok(Scenario {
            executor: Engine::builder(net).executor(kind).build()?.into_inner()?,
            train_sampler: ShuffleSampler::new(Arc::new(train_ds), batch, seed),
            test_sampler: ShuffleSampler::new(Arc::new(test_ds), batch * 2, seed),
            name: format!("cnn-{hw}px-{classes}c"),
            kind,
        })
    }

    /// Train with the given optimizer and config, returning the log.
    pub fn train(
        &mut self,
        optimizer: &mut dyn ThreeStepOptimizer,
        config: TrainingConfig,
    ) -> Result<TrainingLog> {
        let mut runner = TrainingRunner::new(config);
        runner.run(
            optimizer,
            self.executor.as_mut(),
            &mut self.train_sampler,
            Some(&mut self.test_sampler),
        )
    }

    /// Swap in a fresh executor with identically-seeded parameters, so
    /// several optimizers can be compared from the same start.
    pub fn reset_model(&mut self, net: deep500_graph::Network) -> Result<()> {
        self.executor = Engine::builder(net)
            .executor(self.kind)
            .build()?
            .into_inner()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deep500_train::sgd::GradientDescent;

    #[test]
    fn mlp_scenario_trains_to_decent_accuracy() {
        let mut sc = Scenario::mlp_classification(16, 4, 256, 32, 3).unwrap();
        let mut opt = GradientDescent::new(0.1);
        let log = sc
            .train(
                &mut opt,
                TrainingConfig {
                    epochs: 6,
                    ..Default::default()
                },
            )
            .unwrap();
        let acc = log.final_test_accuracy().unwrap();
        assert!(acc > 0.5, "accuracy {acc}");
        assert!(sc.name.contains("mlp"));
    }

    #[test]
    fn cnn_scenario_runs_an_epoch() {
        // Exercise the wavefront switch end-to-end through a recipe.
        let mut sc =
            Scenario::cnn_classification_with(ExecutorKind::Wavefront, 12, 3, 48, 16, 5).unwrap();
        let mut opt = GradientDescent::new(0.05);
        let log = sc
            .train(
                &mut opt,
                TrainingConfig {
                    epochs: 1,
                    ..Default::default()
                },
            )
            .unwrap();
        assert_eq!(log.epochs_run, 1);
        assert!(log.final_test_accuracy().is_some());
    }

    #[test]
    fn reset_model_restores_initial_state() {
        let mut sc = Scenario::mlp_classification(8, 3, 64, 16, 9).unwrap();
        let initial = sc.executor.network().fetch_tensor("fc1.w").unwrap().clone();
        let mut opt = GradientDescent::new(0.1);
        sc.train(&mut opt, TrainingConfig::default()).unwrap();
        assert_ne!(
            sc.executor.network().fetch_tensor("fc1.w").unwrap(),
            &initial
        );
        let fresh = models::mlp(8, &[16], 3, 9 ^ 0x5EED).unwrap();
        sc.reset_model(fresh).unwrap();
        assert_eq!(
            sc.executor.network().fetch_tensor("fc1.w").unwrap(),
            &initial
        );
    }
}
