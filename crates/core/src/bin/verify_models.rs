//! `deep500-verify` — verify the bundled model zoo (or report why not).
//!
//! CI runs this binary and fails the build on any Deny lint. Usage:
//!
//! ```text
//! deep500-verify [--explain]
//! ```
//!
//! For every bundled model the full pipeline runs: dataflow/liveness,
//! static shape & dtype inference at a concrete batch, symbolic-batch
//! propagation, and wavefront buffer-aliasing analysis with the pool
//! lower bound. Then every model × batch size × {raw, compiled-inference,
//! compiled-training} execution plan is lowered to [`PlanIr`] and run
//! through the plan-soundness analysis (`V017`–`V020`). Exit status 1 if
//! any model produces a Deny lint.

use deep500::graph::compile::{compile, CompileOptions, ExecutionPlan};
use deep500::graph::models;
use deep500::graph::network::Network;
use deep500::tensor::Shape;
use deep500::verify::{check_plan, PlanIr, SymShape, Verifier};

struct Case {
    name: &'static str,
    net: Network,
    x: Shape,
}

fn zoo() -> Vec<Case> {
    vec![
        Case {
            name: "mlp",
            net: models::mlp(12, &[10, 8], 4, 3).expect("bundled model"),
            x: Shape::new(&[3, 12]),
        },
        Case {
            name: "lenet",
            net: models::lenet(1, 14, 4, 5).expect("bundled model"),
            x: Shape::new(&[2, 1, 14, 14]),
        },
        Case {
            name: "alexnet",
            net: models::alexnet_like(1, 16, 5, 6).expect("bundled model"),
            x: Shape::new(&[2, 1, 16, 16]),
        },
        Case {
            name: "resnet",
            net: models::resnet_like(1, 8, 4, 2, 3, 7).expect("bundled model"),
            x: Shape::new(&[2, 1, 8, 8]),
        },
    ]
}

/// Lower a network's frozen execution plan at the given feed shapes and
/// return its [`PlanIr`], or exit-worthy text on failure.
fn lower_plan(
    net: &Network,
    shapes: &[(&str, Shape)],
    mutable: &[String],
) -> Result<PlanIr, String> {
    let plan = ExecutionPlan::freeze(net, shapes).map_err(|e| format!("freeze: {e}"))?;
    let ops = net.instantiate_ops().map_err(|e| format!("ops: {e}"))?;
    Ok(plan.to_plan_ir(net, &ops, mutable))
}

/// Verify one lowered plan variant, returning its deny count.
fn check_variant(label: &str, plan: Result<PlanIr, String>, explain: bool) -> usize {
    let ir = match plan {
        Ok(ir) => ir,
        Err(e) => {
            eprintln!("  plan '{label}': lowering failed: {e}");
            return 1;
        }
    };
    let report = check_plan(&ir);
    if report.passes() {
        println!("  plan '{label}': sound ({} steps)", ir.steps.len());
    } else {
        println!("  plan '{label}': {} deny", report.deny_count());
        println!("{}", report.render(explain));
    }
    report.deny_count()
}

/// Plan-soundness sweep: each zoo model at several batch sizes, in raw,
/// compiled-inference, and compiled-training form.
fn verify_plans(explain: bool) -> usize {
    let mut denies = 0usize;
    for case in zoo() {
        for batch in [1usize, case.x.dim(0), 8] {
            let mut dims = case.x.dims().to_vec();
            dims[0] = batch;
            let shapes = [("x", Shape::new(&dims)), ("labels", Shape::new(&[batch]))];
            println!("model '{}' @ batch {batch}:", case.name);
            denies += check_variant("raw", lower_plan(&case.net, &shapes, &[]), explain);

            let mut inf = case.net.clone_structure();
            denies += match compile(&mut inf, &shapes, &CompileOptions::inference()) {
                // compile() already ran the gate; re-check the lowered IR
                // so the binary reports through one code path.
                Ok(_) => check_variant(
                    "compiled-inference",
                    lower_plan(&inf, &shapes, &[]),
                    explain,
                ),
                Err(e) => {
                    eprintln!("  plan 'compiled-inference': compile denied: {e}");
                    1
                }
            };

            let mut train = case.net.clone_structure();
            denies += match compile(&mut train, &shapes, &CompileOptions::training()) {
                Ok(_) => {
                    let mutable: Vec<String> =
                        train.gradient().into_iter().map(|(p, _)| p).collect();
                    check_variant(
                        "compiled-training",
                        lower_plan(&train, &shapes, &mutable),
                        explain,
                    )
                }
                Err(e) => {
                    eprintln!("  plan 'compiled-training': compile denied: {e}");
                    1
                }
            };
        }
    }
    denies
}

fn main() {
    let explain = std::env::args().any(|a| a == "--explain");
    let mut denies = 0usize;
    for case in zoo() {
        let ir = case.net.to_ir();
        let batch = case.x.dim(0);
        let labels = Shape::new(&[batch]);
        let report =
            Verifier::new().check_with_inputs(&ir, &[("x", case.x.clone()), ("labels", labels)]);
        // Symbolic pass rides along so batch-pinned constructs surface
        // as warnings in the same run.
        let (sym_report, _) = Verifier::new().check_symbolic(
            &ir,
            &[
                ("x", SymShape::batched(&case.x.dims()[1..])),
                ("labels", SymShape::batched(&[])),
            ],
        );
        let mut merged = report;
        merged.merge(sym_report);
        println!(
            "model '{}': {} deny, {} warn{}",
            case.name,
            merged.deny_count(),
            merged.warn_count(),
            merged
                .pool_lower_bound
                .map(|b| format!(", pool lower bound {b} B"))
                .unwrap_or_default(),
        );
        if !merged.lints.is_empty() {
            println!("{}", merged.render(explain));
        }
        denies += merged.deny_count();
    }
    denies += verify_plans(explain);
    if denies > 0 {
        eprintln!("deep500-verify: {denies} deny lint(s) across the model zoo");
        std::process::exit(1);
    }
    println!("deep500-verify: model zoo and execution plans verify clean");
}
