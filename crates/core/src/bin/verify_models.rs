//! `deep500-verify` — verify the bundled model zoo (or report why not).
//!
//! CI runs this binary and fails the build on any Deny lint. Usage:
//!
//! ```text
//! deep500-verify [--explain]
//! ```
//!
//! For every bundled model the full pipeline runs: dataflow/liveness,
//! static shape & dtype inference at a concrete batch, symbolic-batch
//! propagation, and wavefront buffer-aliasing analysis with the pool
//! lower bound. Exit status 1 if any model produces a Deny lint.

use deep500::graph::models;
use deep500::graph::network::Network;
use deep500::tensor::Shape;
use deep500::verify::{SymShape, Verifier};

struct Case {
    name: &'static str,
    net: Network,
    x: Shape,
}

fn zoo() -> Vec<Case> {
    vec![
        Case {
            name: "mlp",
            net: models::mlp(12, &[10, 8], 4, 3).expect("bundled model"),
            x: Shape::new(&[3, 12]),
        },
        Case {
            name: "lenet",
            net: models::lenet(1, 14, 4, 5).expect("bundled model"),
            x: Shape::new(&[2, 1, 14, 14]),
        },
        Case {
            name: "alexnet",
            net: models::alexnet_like(1, 16, 5, 6).expect("bundled model"),
            x: Shape::new(&[2, 1, 16, 16]),
        },
        Case {
            name: "resnet",
            net: models::resnet_like(1, 8, 4, 2, 3, 7).expect("bundled model"),
            x: Shape::new(&[2, 1, 8, 8]),
        },
    ]
}

fn main() {
    let explain = std::env::args().any(|a| a == "--explain");
    let mut denies = 0usize;
    for case in zoo() {
        let ir = case.net.to_ir();
        let batch = case.x.dim(0);
        let labels = Shape::new(&[batch]);
        let report =
            Verifier::new().check_with_inputs(&ir, &[("x", case.x.clone()), ("labels", labels)]);
        // Symbolic pass rides along so batch-pinned constructs surface
        // as warnings in the same run.
        let (sym_report, _) = Verifier::new().check_symbolic(
            &ir,
            &[
                ("x", SymShape::batched(&case.x.dims()[1..])),
                ("labels", SymShape::batched(&[])),
            ],
        );
        let mut merged = report;
        merged.merge(sym_report);
        println!(
            "model '{}': {} deny, {} warn{}",
            case.name,
            merged.deny_count(),
            merged.warn_count(),
            merged
                .pool_lower_bound
                .map(|b| format!(", pool lower bound {b} B"))
                .unwrap_or_default(),
        );
        if !merged.lints.is_empty() {
            println!("{}", merged.render(explain));
        }
        denies += merged.deny_count();
    }
    if denies > 0 {
        eprintln!("deep500-verify: {denies} deny lint(s) across the model zoo");
        std::process::exit(1);
    }
    println!("deep500-verify: model zoo verifies clean");
}
