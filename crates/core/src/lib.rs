//! # deep500 — a modular benchmarking infrastructure for high-performance
//! and reproducible deep learning (Rust reproduction)
//!
//! This is the umbrella crate of **Deep500-rs**, a from-scratch Rust
//! reproduction of *"A Modular Benchmarking Infrastructure for
//! High-Performance and Reproducible Deep Learning"* (Ben-Nun et al.,
//! IPDPS 2019). The system is factorized into the paper's four levels:
//!
//! | level | crate | contents |
//! |---|---|---|
//! | 0 — Operators | [`ops`] | operator trait + registry, GEMM/conv/pool/… kernels, gradient checking, DeepBench suites |
//! | 1 — Network processing | [`graph`] | network DAG, reference executor with autodiff, d5nx format, visitor, transformations |
//! | 2 — Training | [`train`] | three-step optimizers (SGD…AcceleGrad), training runner, trajectory validation |
//! | 3 — Distributed training | [`dist`] | communicators, collectives, PS/allreduce/async/sparse SGD, scaling simulation |
//!
//! plus the substrates: [`tensor`] (dense tensors + deterministic RNG),
//! [`metrics`] (the `TestMetric` infrastructure), [`data`] (datasets,
//! the D5J codec, storage containers, samplers), [`frameworks`]
//! (simulated TensorFlow/Caffe2/PyTorch/DeepBench backends), and
//! [`verify`] — the static graph verifier that gates every executor
//! construction and graph transform (shape/dtype inference, dataflow and
//! aliasing analysis, typed lints; see `DESIGN.md` §11).
//!
//! ## Quickstart
//!
//! ```
//! use deep500::prelude::*;
//! use std::sync::Arc;
//!
//! // A LeNet-style CNN on a synthetic MNIST-shaped dataset.
//! let net = models::lenet(1, 28, 10, 42).unwrap();
//! let engine = Engine::builder(net).build().unwrap();
//! let mut executor = engine.lock();
//! let train_ds = SyntheticDataset::mnist_like(64, 7);
//! let mut sampler = ShuffleSampler::new(Arc::new(train_ds), 16, 1);
//! let mut optimizer = GradientDescent::new(0.05);
//! let mut runner = TrainingRunner::new(TrainingConfig::default());
//! let log = runner
//!     .run(&mut optimizer, &mut *executor, &mut sampler, None)
//!     .unwrap();
//! assert!(!log.step_losses.is_empty());
//! ```

pub use deep500_data as data;
pub use deep500_dist as dist;
pub use deep500_frameworks as frameworks;
pub use deep500_graph as graph;
pub use deep500_metrics as metrics;
pub use deep500_ops as ops;
pub use deep500_serve as serve;
pub use deep500_tensor as tensor;
pub use deep500_train as train;
pub use deep500_verify as verify;

pub mod feature_matrix;
pub mod recipes;

/// The most common imports, for examples and downstream users.
pub mod prelude {
    pub use deep500_data::sampler::{
        BufferShuffleSampler, SequentialSampler, ShardedSampler, ShuffleSampler,
    };
    pub use deep500_data::synthetic::SyntheticDataset;
    pub use deep500_data::{Dataset, DatasetSampler, Minibatch};
    pub use deep500_frameworks::{FrameworkExecutor, FrameworkProfile};
    pub use deep500_graph::builder::NetworkBuilder;
    pub use deep500_graph::{
        models, CompileOptions, Engine, EngineBuilder, ExecutorKind, GraphExecutor, Network,
        PlannedExecutor, ReferenceExecutor, Session, WavefrontExecutor,
    };
    pub use deep500_metrics::{Table, TestMetric, Timer};
    pub use deep500_ops::registry::{create_op, register_op, Attributes};
    pub use deep500_ops::Operator;
    pub use deep500_serve::{BatchPolicy, ModelConfig, ServeError, Server};
    pub use deep500_tensor::{Shape, Tensor, Xoshiro256StarStar};
    pub use deep500_train::accelegrad::{AcceleGrad, AcceleGradConfig};
    pub use deep500_train::adagrad::AdaGrad;
    pub use deep500_train::adam::Adam;
    pub use deep500_train::momentum::Momentum;
    pub use deep500_train::rmsprop::RmsProp;
    pub use deep500_train::sgd::GradientDescent;
    pub use deep500_train::{
        train_step, ThreeStepOptimizer, TrainingConfig, TrainingLog, TrainingRunner,
    };
}

/// Crate version, for reports.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");

#[cfg(test)]
mod tests {
    #[test]
    fn version_is_set() {
        assert!(!super::VERSION.is_empty());
    }

    #[test]
    fn prelude_compiles_and_links_all_levels() {
        use super::prelude::*;
        let t = Tensor::ones([2, 2]);
        assert_eq!(t.numel(), 4);
        assert!(deep500_ops::registry::is_registered("Conv2d"));
        let _ = FrameworkProfile::all();
        let _ = GradientDescent::new(0.1);
    }
}
