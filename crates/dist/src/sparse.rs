//! Sparse gradient representation and sparse allreduce (SparCML).
//!
//! SparCML (Renggli et al.) communicates only the top-k gradient entries
//! as (index, value) pairs, reducing volume — but "the reduced vector
//! representation becomes denser with increasing nodes (every allreduce
//! step aggregates more sparse vectors with different indices)", which is
//! the effect the paper measures. [`sparse_allreduce`] implements the
//! recursive-doubling exchange over real messages, so the densification
//! and its volume are observed, not assumed.

use crate::comm::Communicator;
use deep500_tensor::{Error, Result};

/// A sparse vector: sorted unique indices with values.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SparseVector {
    pub indices: Vec<u32>,
    pub values: Vec<f32>,
    /// Dimension of the dense vector this sparsifies.
    pub dim: usize,
}

impl SparseVector {
    /// Top-k magnitude sparsification of a dense vector.
    pub fn top_k(dense: &[f32], k: usize) -> SparseVector {
        let k = k.min(dense.len());
        let mut order: Vec<u32> = (0..dense.len() as u32).collect();
        order.sort_by(|&a, &b| {
            dense[b as usize]
                .abs()
                .partial_cmp(&dense[a as usize].abs())
                .expect("NaN gradient")
        });
        let mut indices: Vec<u32> = order[..k].to_vec();
        indices.sort_unstable();
        let values = indices.iter().map(|&i| dense[i as usize]).collect();
        SparseVector {
            indices,
            values,
            dim: dense.len(),
        }
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.indices.len()
    }

    /// Density in `[0, 1]`.
    pub fn density(&self) -> f64 {
        if self.dim == 0 {
            0.0
        } else {
            self.nnz() as f64 / self.dim as f64
        }
    }

    /// Wire size in bytes: 4 per index + 4 per value.
    pub fn wire_bytes(&self) -> usize {
        self.nnz() * 8
    }

    /// Merge-add another sparse vector (union of indices, summed values).
    pub fn merge(&self, other: &SparseVector) -> Result<SparseVector> {
        if self.dim != other.dim {
            return Err(Error::Communication(format!(
                "sparse dims {} vs {}",
                self.dim, other.dim
            )));
        }
        let mut indices = Vec::with_capacity(self.nnz() + other.nnz());
        let mut values = Vec::with_capacity(self.nnz() + other.nnz());
        let (mut i, mut j) = (0usize, 0usize);
        while i < self.nnz() || j < other.nnz() {
            let take_self =
                j >= other.nnz() || (i < self.nnz() && self.indices[i] <= other.indices[j]);
            let take_other =
                i >= self.nnz() || (j < other.nnz() && other.indices[j] <= self.indices[i]);
            if take_self && take_other {
                indices.push(self.indices[i]);
                values.push(self.values[i] + other.values[j]);
                i += 1;
                j += 1;
            } else if take_self {
                indices.push(self.indices[i]);
                values.push(self.values[i]);
                i += 1;
            } else {
                indices.push(other.indices[j]);
                values.push(other.values[j]);
                j += 1;
            }
        }
        Ok(SparseVector {
            indices,
            values,
            dim: self.dim,
        })
    }

    /// Expand to a dense vector.
    pub fn to_dense(&self) -> Vec<f32> {
        let mut out = vec![0.0f32; self.dim];
        for (&i, &v) in self.indices.iter().zip(&self.values) {
            out[i as usize] = v;
        }
        out
    }

    /// Serialize for the wire: `[dim, nnz, indices…, values…]` as f32
    /// (indices are exactly representable for dims < 2^24, ample for
    /// gradient chunks).
    pub fn to_wire(&self) -> Vec<f32> {
        let mut w = Vec::with_capacity(2 + 2 * self.nnz());
        w.push(self.dim as f32);
        w.push(self.nnz() as f32);
        w.extend(self.indices.iter().map(|&i| i as f32));
        w.extend_from_slice(&self.values);
        w
    }

    /// Parse from the wire format.
    pub fn from_wire(w: &[f32]) -> Result<SparseVector> {
        if w.len() < 2 {
            return Err(Error::Format("truncated sparse wire".into()));
        }
        let dim = w[0] as usize;
        let nnz = w[1] as usize;
        if w.len() != 2 + 2 * nnz {
            return Err(Error::Format(format!(
                "sparse wire length {} vs nnz {nnz}",
                w.len()
            )));
        }
        Ok(SparseVector {
            indices: w[2..2 + nnz].iter().map(|&v| v as u32).collect(),
            values: w[2 + nnz..].to_vec(),
            dim,
        })
    }
}

/// SparCML-style sparse allreduce via recursive doubling: `log2(n)` rounds
/// of pairwise exchange+merge (requires a power-of-two world). Returns the
/// globally merged sparse vector; its density grows with the world size.
pub fn sparse_allreduce(comm: &mut dyn Communicator, local: SparseVector) -> Result<SparseVector> {
    let n = comm.world();
    if !n.is_power_of_two() {
        return Err(Error::Unsupported(format!(
            "sparse_allreduce requires a power-of-two world, got {n}"
        )));
    }
    let rank = comm.rank();
    let mut acc = local;
    let mut mask = 1usize;
    while mask < n {
        let peer = rank ^ mask;
        let wire = acc.to_wire();
        // Lower rank sends first to avoid head-of-line blocking in tests;
        // channels are buffered so order only matters for determinism.
        comm.send_sized(peer, &wire, acc.wire_bytes())?;
        let incoming = comm.recv(peer)?;
        let other = SparseVector::from_wire(&incoming)?;
        acc = acc.merge(&other)?;
        mask <<= 1;
    }
    Ok(acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::ThreadTransport;
    use crate::netmodel::NetworkModel;
    use std::thread;

    #[test]
    fn top_k_selects_largest_magnitudes() {
        let dense = [0.1f32, -5.0, 0.0, 3.0, -0.2];
        let s = SparseVector::top_k(&dense, 2);
        assert_eq!(s.indices, vec![1, 3]);
        assert_eq!(s.values, vec![-5.0, 3.0]);
        assert_eq!(s.dim, 5);
        assert!((s.density() - 0.4).abs() < 1e-12);
        assert_eq!(s.wire_bytes(), 16);
    }

    #[test]
    fn top_k_caps_at_length() {
        let s = SparseVector::top_k(&[1.0, 2.0], 10);
        assert_eq!(s.nnz(), 2);
    }

    #[test]
    fn merge_unions_and_sums() {
        let a = SparseVector {
            indices: vec![0, 2],
            values: vec![1.0, 2.0],
            dim: 4,
        };
        let b = SparseVector {
            indices: vec![2, 3],
            values: vec![10.0, 5.0],
            dim: 4,
        };
        let m = a.merge(&b).unwrap();
        assert_eq!(m.indices, vec![0, 2, 3]);
        assert_eq!(m.values, vec![1.0, 12.0, 5.0]);
        assert_eq!(m.to_dense(), vec![1.0, 0.0, 12.0, 5.0]);
        assert!(a.merge(&SparseVector { dim: 9, ..b }).is_err());
    }

    #[test]
    fn wire_roundtrip() {
        let s = SparseVector::top_k(&[0.0, 7.0, -3.0, 0.0], 2);
        let w = s.to_wire();
        let back = SparseVector::from_wire(&w).unwrap();
        assert_eq!(back, s);
        assert!(SparseVector::from_wire(&[4.0]).is_err());
        assert!(SparseVector::from_wire(&[4.0, 2.0, 0.0]).is_err());
    }

    #[test]
    fn sparse_allreduce_equals_dense_sum_of_topk() {
        let world = 4usize;
        let dim = 16usize;
        let comms = ThreadTransport::create(world, NetworkModel::instant());
        let handles: Vec<_> = comms
            .into_iter()
            .map(|mut c| {
                thread::spawn(move || {
                    let mut dense = vec![0.0f32; dim];
                    // Each rank contributes two distinct spikes.
                    dense[c.rank() * 2] = (c.rank() + 1) as f32;
                    dense[c.rank() * 2 + 1] = -1.0;
                    let local = SparseVector::top_k(&dense, 2);
                    let merged = sparse_allreduce(&mut c, local).unwrap();
                    (merged, c.stats().bytes_sent)
                })
            })
            .collect();
        let results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        let (merged0, _) = &results[0];
        // All ranks agree.
        for (m, _) in &results {
            assert_eq!(m, merged0);
        }
        // The merge has every rank's spikes: density grew 4x.
        assert_eq!(merged0.nnz(), 8);
        let dense = merged0.to_dense();
        assert_eq!(dense[4], 3.0); // rank 2's spike
        assert_eq!(dense[7], -1.0);
    }

    #[test]
    fn densification_grows_with_world() {
        // Volume sent in the last round exceeds the first round.
        let world = 8usize;
        let dim = 256usize;
        let comms = ThreadTransport::create(world, NetworkModel::instant());
        let handles: Vec<_> = comms
            .into_iter()
            .map(|mut c| {
                thread::spawn(move || {
                    let mut dense = vec![0.0f32; dim];
                    for j in 0..8 {
                        dense[(c.rank() * 31 + j * 7) % dim] = 1.0 + j as f32;
                    }
                    let local = SparseVector::top_k(&dense, 8);
                    let merged = sparse_allreduce(&mut c, local).unwrap();
                    merged.nnz()
                })
            })
            .collect();
        let nnz: Vec<usize> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert!(nnz[0] > 8, "merged vector must be denser than one rank's");
        assert!(nnz.iter().all(|&v| v == nnz[0]));
    }

    #[test]
    fn non_power_of_two_rejected() {
        let comms = ThreadTransport::create(3, NetworkModel::instant());
        let handles: Vec<_> = comms
            .into_iter()
            .map(|mut c| {
                thread::spawn(move || {
                    sparse_allreduce(&mut c, SparseVector::top_k(&[1.0], 1)).is_err()
                })
            })
            .collect();
        assert!(handles.into_iter().all(|h| h.join().unwrap()));
    }
}
