//! Communication tracing: a [`Communicator`] decorator that records every
//! send/receive/barrier as a [`Phase::Communication`] span in a shared
//! [`TraceRecorder`](deep500_metrics::trace::TraceRecorder).
//!
//! Sits in the same decorator position as
//! [`FaultyCommunicator`](crate::fault::FaultyCommunicator) — outermost, so
//! the recorded wall time includes any injected delays and retries of the
//! layers beneath it. Spans carry the transferred byte count (logical bytes
//! for sends, `4 × len` for receives) and use the peer rank as the span id,
//! so a Chrome trace groups traffic per peer within each rank's track.
//!
//! The hot path only appends to the sink's thread-local buffer; buffered
//! spans are merged into the shared recorder at [`Communicator::begin_step`]
//! boundaries and on drop.

use crate::comm::{CommResult, Communicator, SendOptions};
use deep500_metrics::trace::TraceSink;
use deep500_metrics::{CommunicationVolume, FaultCounters, Phase};
use std::time::Instant;

/// Decorator that times every communication call on `inner` and records it
/// as a `Phase::Communication` trace span (id = peer rank, bytes = payload).
pub struct TracingCommunicator {
    inner: Box<dyn Communicator>,
    sink: TraceSink,
}

impl TracingCommunicator {
    /// Wrap `inner`, recording spans into `sink` (one sink per rank; get it
    /// from [`TraceRecorder::sink`](deep500_metrics::trace::TraceRecorder::sink)
    /// with a per-rank track name).
    pub fn new(inner: Box<dyn Communicator>, sink: TraceSink) -> Self {
        TracingCommunicator { inner, sink }
    }

    /// Merge buffered spans into the shared recorder now (also happens at
    /// step boundaries and on drop).
    pub fn flush(&mut self) {
        self.sink.flush();
    }

    fn record(&mut self, peer: usize, started: Instant, bytes: u64) {
        self.sink.record_span_bytes(
            Phase::Communication,
            peer,
            started.elapsed().as_secs_f64(),
            bytes,
        );
    }
}

impl Communicator for TracingCommunicator {
    fn rank(&self) -> usize {
        self.inner.rank()
    }

    fn world(&self) -> usize {
        self.inner.world()
    }

    fn send_opts(&mut self, to: usize, data: &[f32], opts: SendOptions) -> CommResult<()> {
        let bytes = opts.logical_bytes as u64;
        let t = Instant::now();
        let r = self.inner.send_opts(to, data, opts);
        self.record(to, t, bytes);
        r
    }

    fn recv(&mut self, from: usize) -> CommResult<Vec<f32>> {
        let t = Instant::now();
        let r = self.inner.recv(from);
        let bytes = r.as_ref().map(|d| d.len() as u64 * 4).unwrap_or(0);
        self.record(from, t, bytes);
        r
    }

    fn try_recv(&mut self, from: usize) -> CommResult<Option<Vec<f32>>> {
        let t = Instant::now();
        let r = self.inner.try_recv(from);
        // An empty poll is not communication; only record arrivals.
        if let Ok(Some(data)) = &r {
            let bytes = data.len() as u64 * 4;
            self.record(from, t, bytes);
        }
        r
    }

    fn recv_timeout(&mut self, from: usize, patience_s: f64) -> CommResult<Vec<f32>> {
        let t = Instant::now();
        let r = self.inner.recv_timeout(from, patience_s);
        let bytes = r.as_ref().map(|d| d.len() as u64 * 4).unwrap_or(0);
        self.record(from, t, bytes);
        r
    }

    fn advance(&mut self, seconds: f64) {
        self.inner.advance(seconds);
    }

    fn elapsed(&self) -> f64 {
        self.inner.elapsed()
    }

    fn stats(&self) -> CommunicationVolume {
        self.inner.stats()
    }

    fn begin_step(&mut self, step: u64) -> CommResult<()> {
        // Step boundaries are the natural merge point: one lock acquisition
        // per step instead of per message.
        self.sink.flush();
        self.inner.begin_step(step)
    }

    fn live_ranks(&self) -> Vec<usize> {
        self.inner.live_ranks()
    }

    fn fault_stats(&self) -> FaultCounters {
        self.inner.fault_stats()
    }

    fn record_recovery(&mut self, virtual_s: f64) {
        self.inner.record_recovery(virtual_s);
    }

    fn record_lost(&mut self, n: u64) {
        self.inner.record_lost(n);
    }

    fn barrier(&mut self) -> CommResult<()> {
        // Record the barrier as a single span against this rank's own id:
        // the constituent sends/recvs go through `self.inner` directly (the
        // default implementation calls methods on the decorator, which
        // would double-count — so delegate wholesale and time the outside).
        let me = self.inner.rank();
        let t = Instant::now();
        let r = self.inner.barrier();
        self.record(me, t, 0);
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::ThreadTransport;
    use crate::netmodel::NetworkModel;
    use deep500_metrics::trace::TraceRecorder;
    use std::thread;

    #[test]
    fn send_recv_spans_carry_bytes_and_peer() {
        let recorder = TraceRecorder::new();
        let comms = ThreadTransport::create(2, NetworkModel::instant());
        let mut it = comms.into_iter();
        let (c0, c1) = (it.next().unwrap(), it.next().unwrap());

        let r0 = recorder.clone();
        let h = thread::spawn(move || {
            let mut t0 = TracingCommunicator::new(Box::new(c0), r0.sink("rank0"));
            t0.send(1, &[1.0, 2.0, 3.0]).unwrap();
            t0.flush();
        });
        let mut t1 = TracingCommunicator::new(Box::new(c1), recorder.sink("rank1"));
        let data = t1.recv(0).unwrap();
        assert_eq!(data.len(), 3);
        t1.flush();
        h.join().unwrap();

        let tracks = recorder.tracks();
        assert_eq!(tracks.len(), 2);
        for (name, spans) in &tracks {
            assert_eq!(spans.len(), 1, "track {name} should hold one span");
            let s = &spans[0];
            assert_eq!(s.phase, Phase::Communication);
            assert_eq!(s.bytes, 12, "3 f32s = 12 bytes on {name}");
            // rank0 sent to peer 1, rank1 received from peer 0.
            let expected_peer = if name == "rank0" { 1 } else { 0 };
            assert_eq!(s.id, expected_peer);
            assert!(s.dur_s >= 0.0 && s.start_s >= 0.0);
        }
    }

    #[test]
    fn begin_step_flushes_buffered_spans() {
        let recorder = TraceRecorder::new();
        let comms = ThreadTransport::create(2, NetworkModel::instant());
        let mut it = comms.into_iter();
        let c0 = it.next().unwrap();
        let _c1 = it.next().unwrap(); // keep rank 1's inbox alive for the send
        let mut t0 = TracingCommunicator::new(Box::new(c0), recorder.sink("rank0"));
        t0.send(1, &[0.5]).unwrap();
        assert_eq!(recorder.span_count(), 0, "span still buffered in sink");
        t0.begin_step(1).unwrap();
        assert_eq!(recorder.span_count(), 1, "begin_step merges the buffer");
    }

    #[test]
    fn empty_try_recv_is_not_a_span() {
        let recorder = TraceRecorder::new();
        let comms = ThreadTransport::create(2, NetworkModel::instant());
        let mut it = comms.into_iter();
        let c0 = it.next().unwrap();
        let mut t0 = TracingCommunicator::new(Box::new(c0), recorder.sink("rank0"));
        assert!(t0.try_recv(1).unwrap().is_none());
        t0.flush();
        assert_eq!(recorder.span_count(), 0);
    }
}
