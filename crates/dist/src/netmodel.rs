//! The α-β network performance model.
//!
//! Each message of `n` bytes costs `α + n/β` seconds end to end; the
//! receiving endpoint additionally serializes payload delivery (so an
//! incast of `k` messages onto one rank — the parameter-server hotspot —
//! takes `k` payload times, which is exactly the PS bottleneck the paper's
//! Fig. 12 exposes).

/// Latency-bandwidth network model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetworkModel {
    /// Per-message latency α in seconds.
    pub alpha_s: f64,
    /// Link bandwidth β in bytes/second.
    pub bandwidth_bps: f64,
}

impl NetworkModel {
    /// Cray-Aries-like dragonfly parameters (Piz Daint's interconnect):
    /// ~1.5 µs latency, ~10 GB/s injection bandwidth.
    pub fn aries() -> Self {
        NetworkModel {
            alpha_s: 1.5e-6,
            bandwidth_bps: 10.0e9,
        }
    }

    /// Commodity 10 GbE cluster: ~25 µs latency, ~1.1 GB/s.
    pub fn ethernet_10g() -> Self {
        NetworkModel {
            alpha_s: 25e-6,
            bandwidth_bps: 1.1e9,
        }
    }

    /// An instantaneous network (for tests that only check data movement).
    pub fn instant() -> Self {
        NetworkModel {
            alpha_s: 0.0,
            bandwidth_bps: f64::INFINITY,
        }
    }

    /// Serialization time of `bytes` on the link.
    pub fn transfer_s(&self, bytes: usize) -> f64 {
        if self.bandwidth_bps.is_infinite() {
            0.0
        } else {
            bytes as f64 / self.bandwidth_bps
        }
    }

    /// Full cost of one message: latency + serialization.
    pub fn message_s(&self, bytes: usize) -> f64 {
        self.alpha_s + self.transfer_s(bytes)
    }

    /// Exponential retransmit backoff before retry number `attempt`
    /// (0-based): one message time of the payload, doubled per attempt.
    /// Used by the fault-injection layer to price recovery in virtual
    /// seconds.
    pub fn backoff_s(&self, bytes: usize, attempt: u32) -> f64 {
        self.message_s(bytes) * 2f64.powi(attempt.min(16) as i32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn message_cost_decomposes() {
        let m = NetworkModel {
            alpha_s: 1e-6,
            bandwidth_bps: 1e9,
        };
        assert!((m.transfer_s(1_000_000) - 1e-3).abs() < 1e-12);
        assert!((m.message_s(0) - 1e-6).abs() < 1e-15);
        assert!((m.message_s(1_000_000) - 1.001e-3).abs() < 1e-9);
    }

    #[test]
    fn instant_network_is_free() {
        let m = NetworkModel::instant();
        assert_eq!(m.message_s(1 << 30), 0.0);
    }

    #[test]
    fn backoff_doubles_per_attempt() {
        let m = NetworkModel::ethernet_10g();
        let b0 = m.backoff_s(1024, 0);
        assert!((m.backoff_s(1024, 1) - 2.0 * b0).abs() < 1e-12);
        assert!((m.backoff_s(1024, 3) - 8.0 * b0).abs() < 1e-12);
        assert_eq!(NetworkModel::instant().backoff_s(1 << 20, 5), 0.0);
    }

    #[test]
    fn presets_are_ordered() {
        assert!(NetworkModel::aries().alpha_s < NetworkModel::ethernet_10g().alpha_s);
        assert!(NetworkModel::aries().bandwidth_bps > NetworkModel::ethernet_10g().bandwidth_bps);
    }
}
