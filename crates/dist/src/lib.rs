//! # deep500-dist — Level 3: Distributed Training
//!
//! The paper's "cornerstone feature": distributing DNN training "with
//! virtually no effort from an API user", by wrapping Level-2 three-step
//! optimizers with communication. The paper runs on MPI over Cray Aries;
//! this reproduction substitutes two transports behind one
//! [`comm::Communicator`] interface:
//!
//! * a **thread transport** — real in-process ranks over crossbeam
//!   channels, used for correctness (tests run real data-parallel SGD on
//!   2–8 ranks and check exact equivalence with sequential large-batch
//!   SGD),
//! * a **virtual-time layer** — every message carries its sender's virtual
//!   timestamp; an α-β [`netmodel::NetworkModel`]
//!   (Aries-like presets) prices each hop, so the same collective
//!   algorithms yield faithful time estimates without a supercomputer,
//! * a **schedule simulator** ([`scaling`]) — for Fig. 12's 8–256-node
//!   sweeps, the per-scheme communication schedules execute round by round
//!   against the network model; communication volumes are exact properties
//!   of the schedules.
//!
//! Provided distributed SGD variants (paper §IV-F/§V-E): consistent
//! centralized (PSSGD), inconsistent centralized (ASGD),
//! stale-synchronous, consistent decentralized (DSGD, both a
//! "Python-reference" flavour with conversion overhead and the optimized
//! CDSGD), neighbor-based decentralized (DPSGD), model averaging (MAVG),
//! Horovod-style fused-buffer allreduce, and SparCML sparse allreduce.
//!
//! ## Fault injection and recovery
//!
//! Communication is fallible by design: every [`Communicator`] operation
//! returns a typed [`comm::CommError`] instead of panicking. A seeded,
//! fully deterministic [`fault::FaultPlan`] wraps any communicator in a
//! [`fault::FaultyCommunicator`] that injects message drops (with
//! retry/backoff priced through the network model), bounded delays,
//! reorderings, straggler slowdowns, and rank crashes at chosen steps.
//! Decentralized schemes degrade gracefully — surviving ranks re-form the
//! group and renormalize their allreduce — while centralized schemes fail
//! over (lowest live rank becomes the server) or abort with a typed
//! error. [`runner::DistributedRunner`] is the builder entry point.

// Communication paths must surface typed errors, not panic (tests may
// still unwrap for brevity).
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod collectives;
pub mod comm;
pub mod fault;
pub mod netmodel;
pub mod optimizers;
pub mod runner;
pub mod scaling;
pub mod sparse;
pub mod tracing;

pub use comm::{CommError, CommResult, Communicator, SendOptions, ThreadTransport};
pub use fault::{FaultEvent, FaultKind, FaultPlan, FaultyCommunicator};
pub use netmodel::NetworkModel;
pub use runner::{
    ConsistencyReport, DistributedRunner, RankReport, RankStatus, RunReport, Variant,
};
pub use tracing::TracingCommunicator;
