//! # deep500-dist — Level 3: Distributed Training
//!
//! The paper's "cornerstone feature": distributing DNN training "with
//! virtually no effort from an API user", by wrapping Level-2 three-step
//! optimizers with communication. The paper runs on MPI over Cray Aries;
//! this reproduction substitutes two transports behind one
//! [`comm::Communicator`] interface:
//!
//! * a **thread transport** — real in-process ranks over crossbeam
//!   channels, used for correctness (tests run real data-parallel SGD on
//!   2–8 ranks and check exact equivalence with sequential large-batch
//!   SGD),
//! * a **virtual-time layer** — every message carries its sender's virtual
//!   timestamp; an α-β [`netmodel::NetworkModel`]
//!   (Aries-like presets) prices each hop, so the same collective
//!   algorithms yield faithful time estimates without a supercomputer,
//! * a **schedule simulator** ([`scaling`]) — for Fig. 12's 8–256-node
//!   sweeps, the per-scheme communication schedules execute round by round
//!   against the network model; communication volumes are exact properties
//!   of the schedules.
//!
//! Provided distributed SGD variants (paper §IV-F/§V-E): consistent
//! centralized (PSSGD), inconsistent centralized (ASGD),
//! stale-synchronous, consistent decentralized (DSGD, both a
//! "Python-reference" flavour with conversion overhead and the optimized
//! CDSGD), neighbor-based decentralized (DPSGD), model averaging (MAVG),
//! Horovod-style fused-buffer allreduce, and SparCML sparse allreduce.

pub mod collectives;
pub mod comm;
pub mod netmodel;
pub mod optimizers;
pub mod runner;
pub mod scaling;
pub mod sparse;

pub use comm::{Communicator, ThreadTransport};
pub use netmodel::NetworkModel;
