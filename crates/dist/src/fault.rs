//! Deterministic fault injection for the distributed layer.
//!
//! A seeded [`FaultPlan`] describes the anomalies a run should suffer:
//! message **drops** (with bounded retransmit + exponential backoff),
//! bounded in-network **delays**, **reordering** (modeled as head-of-line
//! blocking delay under an in-order transport), **straggler** ranks whose
//! compute is slowed by a factor, and **rank crashes** at chosen steps.
//! [`FaultyCommunicator`] decorates any [`Communicator`] with the plan:
//! every injected fault is priced in virtual seconds through the α-β
//! [`NetworkModel`] and counted in
//! [`FaultCounters`](deep500_metrics::FaultCounters).
//!
//! Everything is a pure function of the plan's seed and the (lockstep)
//! message schedule, so the same seed reproduces the same fault sequence
//! bit for bit — faults are *measurable conditions*, not noise. Crashes in
//! particular are plan-visible to every rank: survivors consult the plan
//! instead of a failure detector, which makes group re-formation
//! (`live_ranks`) deterministic and race-free.

use crate::comm::{CommError, CommResult, Communicator, SendOptions};
use crate::netmodel::NetworkModel;
use deep500_metrics::{CommunicationVolume, FaultCounters};
use std::sync::Arc;
use std::time::Instant;

/// SplitMix64 — a tiny, high-quality, seedable PRNG (public domain
/// reference constants). Enough for fault decisions; not for crypto.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// What kind of fault (or recovery action) an event records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// A message transmission was dropped.
    Drop,
    /// A message suffered an injected in-network delay.
    Delay,
    /// A message was reordered (head-of-line blocking under the in-order
    /// transport: priced as one extra message time).
    Reorder,
    /// This rank crashed per the plan.
    Crash,
    /// A dropped transmission was retried.
    Retry,
    /// A peer's planned crash was observed by this rank.
    CrashDetected,
    /// A receive timed out.
    TimeoutDetected,
}

/// One injected fault, in injection order on one rank. The log of these is
/// the reproducibility witness: same seed ⇒ same sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// Training step during which the fault fired.
    pub step: u64,
    /// Fault kind.
    pub kind: FaultKind,
    /// The peer involved (destination for sends, source for receives; the
    /// own rank for crashes).
    pub peer: usize,
}

/// A seeded, reproducible fault schedule. All probabilities are per
/// message transmission; delays and backoff are priced in virtual seconds
/// through the run's [`NetworkModel`].
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// Seed for all stochastic decisions (drops, delays, reordering).
    pub seed: u64,
    /// Probability that a message transmission is dropped.
    pub drop_rate: f64,
    /// Retransmissions allowed after a drop before `Dropped` surfaces
    /// (0 = strict: the first drop is an error).
    pub max_retries: u32,
    /// Probability that a message suffers an injected delay.
    pub delay_rate: f64,
    /// Upper bound of the injected delay in *message times* of the delayed
    /// payload (`α + bytes/β`); the actual delay is uniform in
    /// `[0, max_delay_msgs)`.
    pub max_delay_msgs: f64,
    /// Probability that a message is reordered. Under the in-order
    /// transport this manifests as head-of-line blocking: one extra
    /// message time of delay.
    pub reorder_rate: f64,
    /// `(rank, slowdown_factor)` — straggler ranks whose compute advances
    /// are multiplied by the factor (> 1).
    pub stragglers: Vec<(usize, f64)>,
    /// `(rank, step)` — the rank crashes at the *beginning* of the given
    /// step: its `begin_step(step)` returns `RankDead` and every later
    /// operation fails.
    pub crashes: Vec<(usize, u64)>,
    /// Real-time patience while polling for a message before a `Timeout`
    /// surfaces (bounds wall-clock hangs when a peer aborted outside the
    /// plan).
    pub recv_patience_s: f64,
    /// Virtual seconds charged when a timeout or peer crash is detected
    /// (the cost of the failure detector).
    pub detect_virtual_s: f64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            seed: 0,
            drop_rate: 0.0,
            max_retries: 3,
            delay_rate: 0.0,
            max_delay_msgs: 4.0,
            reorder_rate: 0.0,
            stragglers: Vec::new(),
            crashes: Vec::new(),
            recv_patience_s: 5.0,
            detect_virtual_s: 1e-3,
        }
    }
}

impl FaultPlan {
    /// A zero-fault plan: decorating with it is bit-identical to the
    /// undecorated path.
    pub fn none() -> Self {
        Self::default()
    }

    /// A zero-fault plan carrying a seed (faults are added with the
    /// `with_*` builders).
    pub fn seeded(seed: u64) -> Self {
        FaultPlan {
            seed,
            ..Self::default()
        }
    }

    /// Drop each transmission with probability `rate`; allow `max_retries`
    /// retransmissions (with exponential backoff) before erroring.
    pub fn with_drops(mut self, rate: f64, max_retries: u32) -> Self {
        assert!((0.0..1.0).contains(&rate), "drop rate must be in [0, 1)");
        self.drop_rate = rate;
        self.max_retries = max_retries;
        self
    }

    /// Delay each message with probability `rate` by up to
    /// `max_delay_msgs` message times.
    pub fn with_delays(mut self, rate: f64, max_delay_msgs: f64) -> Self {
        assert!((0.0..1.0).contains(&rate), "delay rate must be in [0, 1)");
        self.delay_rate = rate;
        self.max_delay_msgs = max_delay_msgs;
        self
    }

    /// Reorder each message with probability `rate` (head-of-line delay).
    pub fn with_reorders(mut self, rate: f64) -> Self {
        assert!((0.0..1.0).contains(&rate), "reorder rate must be in [0, 1)");
        self.reorder_rate = rate;
        self
    }

    /// Slow rank `rank`'s compute down by `factor` (> 1).
    pub fn with_straggler(mut self, rank: usize, factor: f64) -> Self {
        assert!(factor >= 1.0, "straggler factor must be >= 1");
        self.stragglers.push((rank, factor));
        self
    }

    /// Crash `rank` at the beginning of `step`.
    pub fn with_crash(mut self, rank: usize, step: u64) -> Self {
        self.crashes.push((rank, step));
        self
    }

    /// Override the real-time receive patience.
    pub fn with_patience(mut self, seconds: f64) -> Self {
        self.recv_patience_s = seconds;
        self
    }

    /// True when the plan injects nothing.
    pub fn is_zero_fault(&self) -> bool {
        self.drop_rate == 0.0
            && self.delay_rate == 0.0
            && self.reorder_rate == 0.0
            && self.stragglers.is_empty()
            && self.crashes.is_empty()
    }

    /// The step at which `rank` crashes, if any.
    pub fn crash_step(&self, rank: usize) -> Option<u64> {
        self.crashes
            .iter()
            .filter(|(r, _)| *r == rank)
            .map(|(_, s)| *s)
            .min()
    }

    /// Whether `rank` is dead at (the beginning of) `step`.
    pub fn is_dead(&self, rank: usize, step: u64) -> bool {
        self.crash_step(rank).is_some_and(|s| s <= step)
    }

    /// Ranks alive at `step`, ascending.
    pub fn live_at(&self, step: u64, world: usize) -> Vec<usize> {
        (0..world).filter(|&r| !self.is_dead(r, step)).collect()
    }

    /// The straggler slowdown factor of `rank` (1.0 when not a straggler).
    pub fn straggler_factor(&self, rank: usize) -> f64 {
        self.stragglers
            .iter()
            .filter(|(r, _)| *r == rank)
            .map(|(_, f)| *f)
            .fold(1.0, f64::max)
    }
}

/// Cap on the per-rank fault-event log (reproducibility witness); counts
/// keep accumulating past it.
const FAULT_LOG_CAP: usize = 10_000;

/// Decorator injecting a [`FaultPlan`] into any [`Communicator`].
pub struct FaultyCommunicator<C: Communicator> {
    inner: C,
    plan: Arc<FaultPlan>,
    model: NetworkModel,
    rng: SplitMix64,
    step: u64,
    dead: bool,
    counters: FaultCounters,
    events: Vec<FaultEvent>,
}

impl<C: Communicator> FaultyCommunicator<C> {
    /// Wrap `inner` under `plan`; `model` prices injected faults in
    /// virtual seconds (use the same model as the transport).
    pub fn new(inner: C, plan: Arc<FaultPlan>, model: NetworkModel) -> Self {
        // Per-rank decision stream: reproducible, and distinct per rank.
        let rng = SplitMix64::new(
            plan.seed ^ (inner.rank() as u64 + 1).wrapping_mul(0xA076_1D64_78BD_642F),
        );
        FaultyCommunicator {
            inner,
            plan,
            model,
            rng,
            step: 0,
            dead: false,
            counters: FaultCounters::new(),
            events: Vec::new(),
        }
    }

    /// The injected-fault log, in injection order (the reproducibility
    /// witness: same seed ⇒ same log).
    pub fn fault_log(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Consume the decorator, returning the inner communicator.
    pub fn into_inner(self) -> C {
        self.inner
    }

    fn log(&mut self, kind: FaultKind, peer: usize) {
        if self.events.len() < FAULT_LOG_CAP {
            self.events.push(FaultEvent {
                step: self.step,
                kind,
                peer,
            });
        }
    }

    fn check_self_alive(&self) -> CommResult<()> {
        if self.dead {
            return Err(CommError::RankDead(self.inner.rank()));
        }
        Ok(())
    }
}

impl<C: Communicator> Communicator for FaultyCommunicator<C> {
    fn rank(&self) -> usize {
        self.inner.rank()
    }
    fn world(&self) -> usize {
        self.inner.world()
    }

    fn send_opts(&mut self, to: usize, data: &[f32], opts: SendOptions) -> CommResult<()> {
        self.check_self_alive()?;
        if self.plan.is_dead(to, self.step) {
            // Plan-visible peer death: sending into the void fails fast
            // and deterministically.
            self.counters.recoveries += 1;
            self.log(FaultKind::CrashDetected, to);
            return Err(CommError::RankDead(to));
        }
        let msg_s = self.model.message_s(opts.logical_bytes);
        let mut attempts: u32 = 0;
        loop {
            if self.plan.drop_rate > 0.0 && self.rng.next_f64() < self.plan.drop_rate {
                // The transmission occupied the wire and was lost.
                attempts += 1;
                self.counters.drops_injected += 1;
                self.log(FaultKind::Drop, to);
                self.inner.advance(msg_s);
                self.counters.recovery_virtual_s += msg_s;
                if attempts > self.plan.max_retries {
                    return Err(CommError::Dropped { to, attempts });
                }
                // Exponential backoff before the retransmission.
                let backoff = self.model.backoff_s(opts.logical_bytes, attempts - 1);
                self.inner.advance(backoff);
                self.counters.recovery_virtual_s += backoff;
                self.counters.retries += 1;
                self.log(FaultKind::Retry, to);
                continue;
            }
            let mut opts = opts;
            if self.plan.delay_rate > 0.0 && self.rng.next_f64() < self.plan.delay_rate {
                let delay = self.rng.next_f64() * self.plan.max_delay_msgs * msg_s;
                opts.extra_delay_s += delay;
                self.counters.delays_injected += 1;
                self.log(FaultKind::Delay, to);
            }
            if self.plan.reorder_rate > 0.0 && self.rng.next_f64() < self.plan.reorder_rate {
                // In-order transport: a reordered packet stalls the flow
                // for one extra message time (head-of-line blocking).
                opts.extra_delay_s += msg_s;
                self.counters.reorders_injected += 1;
                self.log(FaultKind::Reorder, to);
            }
            if attempts > 0 {
                // A retransmission got through: the drop was recovered.
                self.counters.recoveries += 1;
            }
            return self.inner.send_opts(to, data, opts);
        }
    }

    fn recv(&mut self, from: usize) -> CommResult<Vec<f32>> {
        let patience = self.plan.recv_patience_s;
        self.recv_timeout(from, patience)
    }

    fn recv_timeout(&mut self, from: usize, patience_s: f64) -> CommResult<Vec<f32>> {
        self.check_self_alive()?;
        let start = Instant::now();
        loop {
            // Drain anything already delivered (messages sent before a
            // peer's crash remain consumable).
            match self.inner.try_recv(from) {
                Ok(Some(data)) => return Ok(data),
                Ok(None) => {}
                Err(CommError::Closed(_)) if self.plan.is_dead(from, self.step) => {
                    // Planned crash: the peer's endpoint is gone.
                    self.counters.recoveries += 1;
                    self.counters.recovery_virtual_s += self.plan.detect_virtual_s;
                    self.inner.advance(self.plan.detect_virtual_s);
                    self.log(FaultKind::CrashDetected, from);
                    return Err(CommError::RankDead(from));
                }
                Err(e) => return Err(e),
            }
            if self.plan.is_dead(from, self.step) {
                self.counters.recoveries += 1;
                self.counters.recovery_virtual_s += self.plan.detect_virtual_s;
                self.inner.advance(self.plan.detect_virtual_s);
                self.log(FaultKind::CrashDetected, from);
                return Err(CommError::RankDead(from));
            }
            let waited = start.elapsed().as_secs_f64();
            if waited > patience_s {
                self.counters.recovery_virtual_s += self.plan.detect_virtual_s;
                self.inner.advance(self.plan.detect_virtual_s);
                self.log(FaultKind::TimeoutDetected, from);
                return Err(CommError::Timeout {
                    peer: from,
                    waited_s: waited,
                });
            }
            std::thread::sleep(std::time::Duration::from_micros(200));
        }
    }

    fn try_recv(&mut self, from: usize) -> CommResult<Option<Vec<f32>>> {
        self.check_self_alive()?;
        self.inner.try_recv(from)
    }

    fn advance(&mut self, seconds: f64) {
        let factor = self.plan.straggler_factor(self.inner.rank());
        if factor > 1.0 && seconds > 0.0 {
            self.counters.straggler_slowdowns += 1;
            self.inner.advance(seconds * factor);
        } else {
            self.inner.advance(seconds);
        }
    }

    fn elapsed(&self) -> f64 {
        self.inner.elapsed()
    }

    fn stats(&self) -> CommunicationVolume {
        self.inner.stats()
    }

    fn begin_step(&mut self, step: u64) -> CommResult<()> {
        let prev_live = self.plan.live_at(self.step, self.world()).len();
        self.step = step;
        if !self.dead && self.plan.is_dead(self.rank(), step) {
            self.dead = true;
            self.counters.crashes_injected += 1;
            self.log(FaultKind::Crash, self.rank());
            return Err(CommError::RankDead(self.rank()));
        }
        self.check_self_alive()?;
        // Group re-formation: when peers died since the previous step, the
        // survivors pay the detection cost once and count a recovery.
        let live = self.plan.live_at(step, self.world()).len();
        if step > 0 && live < prev_live {
            self.counters.recoveries += 1;
            self.counters.recovery_virtual_s += self.plan.detect_virtual_s;
            self.inner.advance(self.plan.detect_virtual_s);
            self.log(FaultKind::CrashDetected, self.rank());
        }
        Ok(())
    }

    fn live_ranks(&self) -> Vec<usize> {
        self.plan.live_at(self.step, self.world())
    }

    fn fault_stats(&self) -> FaultCounters {
        self.counters
    }

    fn record_recovery(&mut self, virtual_s: f64) {
        self.counters.recoveries += 1;
        self.counters.recovery_virtual_s += virtual_s;
        self.inner.advance(virtual_s);
    }

    fn record_lost(&mut self, n: u64) {
        self.counters.steps_lost += n;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::ThreadTransport;

    fn pair(
        plan: FaultPlan,
    ) -> (
        FaultyCommunicator<crate::comm::ThreadCommunicator>,
        crate::comm::ThreadCommunicator,
    ) {
        let model = NetworkModel::aries();
        let mut comms = ThreadTransport::create(2, model);
        let c1 = comms.pop().expect("two comms");
        let c0 = comms.pop().expect("two comms");
        (FaultyCommunicator::new(c0, Arc::new(plan), model), c1)
    }

    #[test]
    fn zero_fault_plan_is_transparent() {
        let (mut f0, mut c1) = pair(FaultPlan::none());
        assert!(FaultPlan::none().is_zero_fault());
        f0.begin_step(0).unwrap();
        f0.send(1, &[1.0, 2.0]).unwrap();
        assert_eq!(c1.recv(0).unwrap(), vec![1.0, 2.0]);
        assert_eq!(f0.fault_stats(), FaultCounters::default());
        assert!(f0.fault_log().is_empty());
        assert_eq!(f0.live_ranks(), vec![0, 1]);
    }

    #[test]
    fn strict_drops_surface_as_typed_errors() {
        // drop_rate ~1: the very first transmission drops; with
        // max_retries = 0 the error surfaces immediately.
        let (mut f0, _c1) = pair(FaultPlan::seeded(7).with_drops(0.999, 0));
        let err = f0.send(1, &[1.0]).unwrap_err();
        assert!(matches!(err, CommError::Dropped { to: 1, attempts: 1 }));
        assert_eq!(f0.fault_stats().drops_injected, 1);
        assert_eq!(f0.fault_stats().retries, 0);
        assert!(f0.fault_stats().recovery_virtual_s > 0.0);
    }

    #[test]
    fn retries_eventually_deliver() {
        let (mut f0, mut c1) = pair(FaultPlan::seeded(3).with_drops(0.5, 20));
        for _ in 0..16 {
            f0.send(1, &[5.0]).unwrap();
            assert_eq!(c1.recv(0).unwrap(), vec![5.0]);
        }
        let stats = f0.fault_stats();
        assert!(stats.drops_injected > 0, "expected some drops");
        assert_eq!(stats.drops_injected, stats.retries);
        assert!(stats.recovery_virtual_s > 0.0);
    }

    #[test]
    fn same_seed_same_fault_log() {
        let run = |seed: u64| {
            let (mut f0, mut c1) = pair(
                FaultPlan::seeded(seed)
                    .with_drops(0.3, 10)
                    .with_delays(0.3, 4.0)
                    .with_reorders(0.2),
            );
            for _ in 0..32 {
                f0.send(1, &[1.0]).unwrap();
                c1.recv(0).unwrap();
            }
            f0.fault_log().to_vec()
        };
        let a = run(11);
        let b = run(11);
        assert!(!a.is_empty());
        assert_eq!(a, b, "same seed must reproduce the fault sequence");
        let c = run(12);
        assert_ne!(a, c, "a different seed should perturb the sequence");
    }

    #[test]
    fn planned_crash_kills_and_is_visible_to_peers() {
        let model = NetworkModel::instant();
        let plan = Arc::new(FaultPlan::seeded(0).with_crash(1, 2));
        let mut comms = ThreadTransport::create(2, model);
        let mut f1 = FaultyCommunicator::new(comms.pop().expect("c1"), plan.clone(), model);
        let mut f0 = FaultyCommunicator::new(comms.pop().expect("c0"), plan, model);

        f0.begin_step(0).unwrap();
        f1.begin_step(0).unwrap();
        assert_eq!(f0.live_ranks(), vec![0, 1]);

        // Rank 1 dies at step 2.
        f1.begin_step(2).unwrap_err();
        assert!(matches!(f1.send(0, &[1.0]), Err(CommError::RankDead(1))));
        assert_eq!(f1.fault_stats().crashes_injected, 1);

        // Rank 0 observes the death deterministically.
        f0.begin_step(2).unwrap();
        assert_eq!(f0.live_ranks(), vec![0]);
        assert!(matches!(f0.recv(1), Err(CommError::RankDead(1))));
        assert!(matches!(f0.send(1, &[1.0]), Err(CommError::RankDead(1))));
        assert!(f0.fault_stats().recoveries >= 1);
    }

    #[test]
    fn straggler_compute_is_slowed() {
        let (mut f0, _c1) = pair(FaultPlan::seeded(0).with_straggler(0, 3.0));
        f0.advance(2.0);
        assert!((f0.elapsed() - 6.0).abs() < 1e-12);
        assert_eq!(f0.fault_stats().straggler_slowdowns, 1);
    }

    #[test]
    fn recv_timeout_bounds_the_wait() {
        let (mut f0, _c1) = pair(FaultPlan::seeded(0).with_patience(0.05));
        let t0 = Instant::now();
        let err = f0.recv_timeout(1, 0.05).unwrap_err();
        assert!(matches!(err, CommError::Timeout { peer: 1, .. }));
        assert!(t0.elapsed().as_secs_f64() < 2.0, "wait must be bounded");
    }

    #[test]
    fn splitmix_is_deterministic_and_uniformish() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        let mean = (0..1000).map(|_| a.next_f64()).sum::<f64>() / 1000.0;
        assert!((mean - 0.5).abs() < 0.05, "mean {mean}");
    }
}
