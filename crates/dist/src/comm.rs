//! Communicators: MPI-style point-to-point messaging between ranks.
//!
//! The thread transport gives every rank a [`ThreadCommunicator`] wired to
//! its peers through crossbeam channels. Each message carries the sender's
//! **virtual timestamp**; on receipt the receiver's virtual clock advances
//! to `max(own, sender_ts + α) + payload/β` under the attached
//! [`NetworkModel`] — a conservative virtual-time simulation that prices
//! the real message schedule while the data itself moves for real. Compute
//! time enters via [`Communicator::advance`].
//!
//! Communication is **fallible by design**: every operation returns a
//! typed [`CommError`] instead of panicking, so the fault-injection layer
//! ([`crate::fault`]) can surface drops, timeouts, and rank deaths through
//! the same API the fault-free path uses, and schemes can make typed
//! recovery decisions (retry, renormalize, fail over, or abort cleanly).

use crate::netmodel::NetworkModel;
use crossbeam::channel::{unbounded, Receiver, Sender, TryRecvError};
use deep500_metrics::{CommunicationVolume, FaultCounters};
use std::fmt;

/// A typed communication failure.
///
/// The variants map one-to-one onto recovery decisions: `Timeout` and
/// `Dropped` are retryable, `RankDead` triggers group re-formation or
/// failover, `Closed` and `Mismatch` are protocol-fatal.
#[derive(Debug, Clone, PartialEq)]
pub enum CommError {
    /// No message arrived from `peer` within the patience budget.
    Timeout { peer: usize, waited_s: f64 },
    /// The named rank has crashed (per the fault plan, or detected via a
    /// disconnected channel). On the crashing rank itself, `RankDead`
    /// carries its own rank.
    RankDead(usize),
    /// A message to `to` was dropped and the retry budget (`attempts`
    /// transmissions) is exhausted.
    Dropped { to: usize, attempts: u32 },
    /// The endpoint or channel is closed (peer hung up outside the fault
    /// plan, or an invalid peer was addressed).
    Closed(String),
    /// A protocol-level payload mismatch (wrong buffer size for a
    /// collective).
    Mismatch(String),
}

impl fmt::Display for CommError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommError::Timeout { peer, waited_s } => {
                write!(f, "timeout waiting on rank {peer} after {waited_s:.3}s")
            }
            CommError::RankDead(r) => write!(f, "rank {r} is dead"),
            CommError::Dropped { to, attempts } => {
                write!(f, "message to rank {to} dropped after {attempts} attempts")
            }
            CommError::Closed(m) => write!(f, "communicator closed: {m}"),
            CommError::Mismatch(m) => write!(f, "protocol mismatch: {m}"),
        }
    }
}

impl std::error::Error for CommError {}

impl From<CommError> for deep500_tensor::Error {
    fn from(e: CommError) -> Self {
        deep500_tensor::Error::Communication(e.to_string())
    }
}

/// Result alias for fallible communication.
pub type CommResult<T> = std::result::Result<T, CommError>;

/// Options for [`Communicator::send_opts`].
#[derive(Debug, Clone, Copy)]
pub struct SendOptions {
    /// Logical payload size in bytes for timing/volume accounting.
    pub logical_bytes: usize,
    /// Extra in-network delay (queuing, injected faults) added to the
    /// message's arrival time, in virtual seconds. Does not occupy the
    /// sender's NIC.
    pub extra_delay_s: f64,
}

impl SendOptions {
    /// Plain options pricing `data.len() * 4` bytes with no extra delay.
    pub fn sized(logical_bytes: usize) -> Self {
        SendOptions {
            logical_bytes,
            extra_delay_s: 0.0,
        }
    }
}

/// One in-flight message.
#[derive(Debug, Clone)]
pub struct Message {
    pub data: Vec<f32>,
    /// Sender's virtual clock at send time (plus any in-network delay).
    pub send_ts: f64,
    /// Logical payload size in bytes (defaults to `4 * data.len()`; the
    /// scaling harness prices full-size tensors while moving small ones).
    pub logical_bytes: usize,
}

/// An MPI-style communicator endpoint.
///
/// All data-moving operations return [`CommResult`]; nothing in this trait
/// panics on communication failure. Fault-aware implementations
/// ([`crate::fault::FaultyCommunicator`]) additionally report which ranks
/// are alive ([`live_ranks`](Communicator::live_ranks)) and account their
/// injected faults ([`fault_stats`](Communicator::fault_stats)); the
/// defaults describe a perfect network.
pub trait Communicator: Send {
    /// This endpoint's rank.
    fn rank(&self) -> usize;

    /// Number of ranks.
    fn world(&self) -> usize;

    /// Send `data` to rank `to` (non-blocking; unbounded buffering).
    fn send(&mut self, to: usize, data: &[f32]) -> CommResult<()> {
        self.send_opts(to, data, SendOptions::sized(data.len() * 4))
    }

    /// Send with an explicit logical payload size for timing/volume.
    fn send_sized(&mut self, to: usize, data: &[f32], logical_bytes: usize) -> CommResult<()> {
        self.send_opts(to, data, SendOptions::sized(logical_bytes))
    }

    /// Send with full options (logical size, injected delay).
    fn send_opts(&mut self, to: usize, data: &[f32], opts: SendOptions) -> CommResult<()>;

    /// Blocking receive of the next message from rank `from`.
    fn recv(&mut self, from: usize) -> CommResult<Vec<f32>>;

    /// Non-blocking receive: `Ok(None)` when no message is waiting.
    fn try_recv(&mut self, from: usize) -> CommResult<Option<Vec<f32>>>;

    /// Receive with a (real-time) patience budget. The default ignores the
    /// budget and blocks — on a perfect network nothing is ever lost, so a
    /// bounded wait is only meaningful under fault injection.
    fn recv_timeout(&mut self, from: usize, _patience_s: f64) -> CommResult<Vec<f32>> {
        self.recv(from)
    }

    /// Advance this rank's virtual clock by `seconds` of local compute.
    fn advance(&mut self, seconds: f64);

    /// This rank's virtual time.
    fn elapsed(&self) -> f64;

    /// Communication counters of this endpoint.
    fn stats(&self) -> CommunicationVolume;

    /// Mark the beginning of training step `step` on this rank. The fault
    /// layer uses this to execute planned crashes (`Err(RankDead(self))`
    /// on the crashing rank) and to detect peer-group changes; the default
    /// perfect network always succeeds.
    fn begin_step(&mut self, _step: u64) -> CommResult<()> {
        Ok(())
    }

    /// Ranks still alive at the current step, ascending. Synchronous
    /// schemes run their collectives over this group and renormalize by
    /// its size.
    fn live_ranks(&self) -> Vec<usize> {
        (0..self.world()).collect()
    }

    /// Fault-injection and recovery counters of this endpoint (all zero on
    /// a perfect network).
    fn fault_stats(&self) -> FaultCounters {
        FaultCounters::default()
    }

    /// Record a scheme-level recovery action (e.g. a stale-synchronous
    /// sync skipping a lost contribution) in the fault counters; no-op on
    /// a perfect network.
    fn record_recovery(&mut self, _virtual_s: f64) {}

    /// Record `n` lost steps/contributions in the fault counters; no-op on
    /// a perfect network.
    fn record_lost(&mut self, _n: u64) {}

    /// Barrier across all ranks (implemented with messages so virtual time
    /// propagates: everyone syncs to the global maximum clock).
    fn barrier(&mut self) -> CommResult<()> {
        // Centralized: ranks report to 0, 0 answers with the max clock.
        if self.rank() == 0 {
            for peer in 1..self.world() {
                let _ = self.recv(peer)?;
            }
            for peer in 1..self.world() {
                self.send(peer, &[])?;
            }
        } else {
            self.send(0, &[])?;
            let _ = self.recv(0)?;
        }
        Ok(())
    }
}

/// The thread-transport communicator endpoint.
pub struct ThreadCommunicator {
    rank: usize,
    world: usize,
    /// `senders[dst]` — channel into rank `dst`'s inbox from this rank.
    senders: Vec<Sender<Message>>,
    /// `receivers[src]` — this rank's inbox from rank `src`.
    receivers: Vec<Receiver<Message>>,
    model: NetworkModel,
    vclock: f64,
    volume: CommunicationVolume,
}

impl ThreadCommunicator {
    /// The network model pricing this endpoint's messages.
    pub fn model(&self) -> NetworkModel {
        self.model
    }

    fn check_peer(&self, peer: usize, what: &str) -> CommResult<()> {
        if peer >= self.world {
            return Err(CommError::Closed(format!(
                "{what} rank {peer} of world {}",
                self.world
            )));
        }
        Ok(())
    }

    /// Price an arrived message on the receiving endpoint's clock.
    fn account_arrival(&mut self, msg: &Message) {
        // Arrival: latency after the sender's timestamp, then delivery
        // serializes on this endpoint.
        let arrival = msg.send_ts + self.model.alpha_s;
        self.vclock = self.vclock.max(arrival) + self.model.transfer_s(msg.logical_bytes);
        self.volume.record_recv(msg.logical_bytes);
    }
}

/// Factory for wired-up thread communicators.
pub struct ThreadTransport;

impl ThreadTransport {
    /// Create `world` fully-connected communicators under `model`.
    pub fn create(world: usize, model: NetworkModel) -> Vec<ThreadCommunicator> {
        assert!(world >= 1);
        // channels[src][dst]
        let mut txs: Vec<Vec<Option<Sender<Message>>>> = (0..world)
            .map(|_| (0..world).map(|_| None).collect())
            .collect();
        let mut rxs: Vec<Vec<Option<Receiver<Message>>>> = (0..world)
            .map(|_| (0..world).map(|_| None).collect())
            .collect();
        for src in 0..world {
            for dst in 0..world {
                let (tx, rx) = unbounded();
                txs[src][dst] = Some(tx);
                rxs[dst][src] = Some(rx);
            }
        }
        let mut comms = Vec::with_capacity(world);
        for rank in 0..world {
            let senders = txs[rank]
                .iter_mut()
                .map(|t| t.take().expect("channel wired exactly once"))
                .collect();
            let receivers = rxs[rank]
                .iter_mut()
                .map(|r| r.take().expect("channel wired exactly once"))
                .collect();
            comms.push(ThreadCommunicator {
                rank,
                world,
                senders,
                receivers,
                model,
                vclock: 0.0,
                volume: CommunicationVolume::new(),
            });
        }
        comms
    }
}

impl Communicator for ThreadCommunicator {
    fn rank(&self) -> usize {
        self.rank
    }
    fn world(&self) -> usize {
        self.world
    }
    fn send_opts(&mut self, to: usize, data: &[f32], opts: SendOptions) -> CommResult<()> {
        self.check_peer(to, "send to")?;
        // Sender-side injection occupies the NIC; injected delay rides in
        // the network (it postpones arrival, not the sender).
        self.vclock += self.model.transfer_s(opts.logical_bytes);
        self.volume.record_send(opts.logical_bytes);
        self.senders[to]
            .send(Message {
                data: data.to_vec(),
                send_ts: self.vclock + opts.extra_delay_s,
                logical_bytes: opts.logical_bytes,
            })
            .map_err(|_| CommError::Closed(format!("rank {to} is gone")))?;
        Ok(())
    }
    fn recv(&mut self, from: usize) -> CommResult<Vec<f32>> {
        self.check_peer(from, "recv from")?;
        let msg = self.receivers[from]
            .recv()
            .map_err(|_| CommError::Closed(format!("rank {from} hung up")))?;
        self.account_arrival(&msg);
        Ok(msg.data)
    }
    fn try_recv(&mut self, from: usize) -> CommResult<Option<Vec<f32>>> {
        self.check_peer(from, "recv from")?;
        match self.receivers[from].try_recv() {
            Ok(msg) => {
                self.account_arrival(&msg);
                Ok(Some(msg.data))
            }
            Err(TryRecvError::Empty) => Ok(None),
            Err(TryRecvError::Disconnected) => {
                Err(CommError::Closed(format!("rank {from} hung up")))
            }
        }
    }
    fn advance(&mut self, seconds: f64) {
        self.vclock += seconds;
    }
    fn elapsed(&self) -> f64 {
        self.vclock
    }
    fn stats(&self) -> CommunicationVolume {
        self.volume
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn point_to_point_roundtrip() {
        let mut comms = ThreadTransport::create(2, NetworkModel::instant());
        let mut c1 = comms.pop().unwrap();
        let mut c0 = comms.pop().unwrap();
        let h = thread::spawn(move || {
            c1.send(0, &[1.0, 2.0, 3.0]).unwrap();
            c1.recv(0).unwrap()
        });
        let got = c0.recv(1).unwrap();
        assert_eq!(got, vec![1.0, 2.0, 3.0]);
        c0.send(1, &[9.0]).unwrap();
        assert_eq!(h.join().unwrap(), vec![9.0]);
        assert_eq!(c0.stats().messages_sent, 1);
        assert_eq!(c0.stats().bytes_received, 12);
    }

    #[test]
    fn virtual_time_propagates_through_messages() {
        let model = NetworkModel {
            alpha_s: 1.0,
            bandwidth_bps: 4.0,
        }; // 1 B/s per f32
        let mut comms = ThreadTransport::create(2, model);
        let mut c1 = comms.pop().unwrap();
        let mut c0 = comms.pop().unwrap();
        let h = thread::spawn(move || {
            c1.advance(10.0); // compute for 10 virtual seconds
            c1.send(0, &[0.0; 4]).unwrap(); // 16 B -> 4 s injection
            c1.elapsed()
        });
        let _ = c0.recv(1).unwrap();
        // Sender timestamp: 10 + 4 = 14; arrival 14 + 1 = 15; delivery + 4.
        assert!((c0.elapsed() - 19.0).abs() < 1e-9, "{}", c0.elapsed());
        assert!((h.join().unwrap() - 14.0).abs() < 1e-9);
    }

    #[test]
    fn extra_delay_postpones_arrival_not_the_sender() {
        let model = NetworkModel {
            alpha_s: 1.0,
            bandwidth_bps: 4.0,
        };
        let mut comms = ThreadTransport::create(2, model);
        let mut c1 = comms.pop().unwrap();
        let mut c0 = comms.pop().unwrap();
        let h = thread::spawn(move || {
            c1.send_opts(
                0,
                &[0.0; 4],
                SendOptions {
                    logical_bytes: 16,
                    extra_delay_s: 5.0,
                },
            )
            .unwrap();
            c1.elapsed()
        });
        let _ = c0.recv(1).unwrap();
        // Sender pays only the 4 s injection; the receiver sees the
        // timestamp shifted by the 5 s in-network delay:
        // arrival (4 + 5) + 1 = 10, delivery + 4 = 14.
        assert!((h.join().unwrap() - 4.0).abs() < 1e-9);
        assert!((c0.elapsed() - 14.0).abs() < 1e-9, "{}", c0.elapsed());
    }

    #[test]
    fn incast_serializes_at_the_receiver() {
        let model = NetworkModel {
            alpha_s: 0.0,
            bandwidth_bps: 4.0,
        };
        let mut comms = ThreadTransport::create(3, model);
        let c2 = comms.pop().unwrap();
        let c1 = comms.pop().unwrap();
        let mut c0 = comms.pop().unwrap();
        let mk = |mut c: ThreadCommunicator| {
            thread::spawn(move || {
                c.send(0, &[0.0; 4]).unwrap();
            })
        };
        let h1 = mk(c1);
        let h2 = mk(c2);
        c0.recv(1).unwrap();
        c0.recv(2).unwrap();
        h1.join().unwrap();
        h2.join().unwrap();
        // Each sender finishes injecting at t=4; the first delivery then
        // occupies the receiver until 8, the second (already queued) until
        // 12 — deliveries serialize instead of overlapping.
        assert!((c0.elapsed() - 12.0).abs() < 1e-9, "{}", c0.elapsed());
    }

    #[test]
    fn barrier_synchronizes_clocks_monotonically() {
        let mut comms = ThreadTransport::create(4, NetworkModel::instant());
        let handles: Vec<_> = comms
            .drain(..)
            .map(|mut c| {
                thread::spawn(move || {
                    c.advance(c.rank() as f64); // heterogeneous compute
                    c.barrier().unwrap();
                    c.elapsed()
                })
            })
            .collect();
        let times: Vec<f64> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        // After the barrier everyone's clock is at least the max pre-barrier
        // clock (3.0).
        assert!(times.iter().all(|&t| t >= 3.0), "{times:?}");
    }

    #[test]
    fn invalid_peers_rejected_with_typed_errors() {
        let mut comms = ThreadTransport::create(1, NetworkModel::instant());
        let mut c = comms.pop().unwrap();
        assert!(matches!(c.send(5, &[1.0]), Err(CommError::Closed(_))));
        assert!(matches!(c.recv(5), Err(CommError::Closed(_))));
    }

    #[test]
    fn try_recv_reports_empty_and_disconnected() {
        let mut comms = ThreadTransport::create(2, NetworkModel::instant());
        let c1 = comms.pop().unwrap();
        let mut c0 = comms.pop().unwrap();
        assert_eq!(c0.try_recv(1).unwrap(), None);
        drop(c1);
        assert!(matches!(c0.try_recv(1), Err(CommError::Closed(_))));
    }

    #[test]
    fn comm_errors_display_and_convert() {
        let e = CommError::Timeout {
            peer: 3,
            waited_s: 0.5,
        };
        assert!(e.to_string().contains("rank 3"));
        let t: deep500_tensor::Error = CommError::RankDead(1).into();
        assert!(matches!(t, deep500_tensor::Error::Communication(_)));
        assert!(CommError::Dropped { to: 2, attempts: 4 }
            .to_string()
            .contains("4 attempts"));
    }

    #[test]
    fn logical_bytes_override_volume() {
        let mut comms = ThreadTransport::create(2, NetworkModel::instant());
        let mut c1 = comms.pop().unwrap();
        let mut c0 = comms.pop().unwrap();
        let h = thread::spawn(move || {
            // 2 floats carried, priced as 1 MB.
            c1.send_sized(0, &[1.0, 2.0], 1_000_000).unwrap();
            c1.stats().bytes_sent
        });
        let data = c0.recv(1).unwrap();
        assert_eq!(data.len(), 2);
        assert_eq!(h.join().unwrap(), 1_000_000);
        assert_eq!(c0.stats().bytes_received, 1_000_000);
    }
}
