//! Communicators: MPI-style point-to-point messaging between ranks.
//!
//! The thread transport gives every rank a [`ThreadCommunicator`] wired to
//! its peers through crossbeam channels. Each message carries the sender's
//! **virtual timestamp**; on receipt the receiver's virtual clock advances
//! to `max(own, sender_ts + α) + payload/β` under the attached
//! [`NetworkModel`] — a conservative virtual-time simulation that prices
//! the real message schedule while the data itself moves for real. Compute
//! time enters via [`Communicator::advance`].

use crate::netmodel::NetworkModel;
use crossbeam::channel::{unbounded, Receiver, Sender};
use deep500_metrics::CommunicationVolume;
use deep500_tensor::{Error, Result};

/// One in-flight message.
#[derive(Debug, Clone)]
pub struct Message {
    pub data: Vec<f32>,
    /// Sender's virtual clock at send time.
    pub send_ts: f64,
    /// Logical payload size in bytes (defaults to `4 * data.len()`; the
    /// scaling harness prices full-size tensors while moving small ones).
    pub logical_bytes: usize,
}

/// An MPI-style communicator endpoint.
pub trait Communicator: Send {
    /// This endpoint's rank.
    fn rank(&self) -> usize;

    /// Number of ranks.
    fn world(&self) -> usize;

    /// Send `data` to rank `to` (non-blocking; unbounded buffering).
    fn send(&mut self, to: usize, data: &[f32]) -> Result<()>;

    /// Send with an explicit logical payload size for timing/volume.
    fn send_sized(&mut self, to: usize, data: &[f32], logical_bytes: usize) -> Result<()>;

    /// Blocking receive of the next message from rank `from`.
    fn recv(&mut self, from: usize) -> Result<Vec<f32>>;

    /// Advance this rank's virtual clock by `seconds` of local compute.
    fn advance(&mut self, seconds: f64);

    /// This rank's virtual time.
    fn elapsed(&self) -> f64;

    /// Communication counters of this endpoint.
    fn stats(&self) -> CommunicationVolume;

    /// Barrier across all ranks (implemented with messages so virtual time
    /// propagates: everyone syncs to the global maximum clock).
    fn barrier(&mut self) -> Result<()> {
        // Centralized: ranks report to 0, 0 answers with the max clock.
        if self.rank() == 0 {
            for peer in 1..self.world() {
                let _ = self.recv(peer)?;
            }
            for peer in 1..self.world() {
                self.send(peer, &[])?;
            }
        } else {
            self.send(0, &[])?;
            let _ = self.recv(0)?;
        }
        Ok(())
    }
}

/// The thread-transport communicator endpoint.
pub struct ThreadCommunicator {
    rank: usize,
    world: usize,
    /// `senders[dst]` — channel into rank `dst`'s inbox from this rank.
    senders: Vec<Sender<Message>>,
    /// `receivers[src]` — this rank's inbox from rank `src`.
    receivers: Vec<Receiver<Message>>,
    model: NetworkModel,
    vclock: f64,
    volume: CommunicationVolume,
}

/// Factory for wired-up thread communicators.
pub struct ThreadTransport;

impl ThreadTransport {
    /// Create `world` fully-connected communicators under `model`.
    pub fn create(world: usize, model: NetworkModel) -> Vec<ThreadCommunicator> {
        assert!(world >= 1);
        // channels[src][dst]
        let mut txs: Vec<Vec<Option<Sender<Message>>>> = (0..world)
            .map(|_| (0..world).map(|_| None).collect())
            .collect();
        let mut rxs: Vec<Vec<Option<Receiver<Message>>>> = (0..world)
            .map(|_| (0..world).map(|_| None).collect())
            .collect();
        for src in 0..world {
            for dst in 0..world {
                let (tx, rx) = unbounded();
                txs[src][dst] = Some(tx);
                rxs[dst][src] = Some(rx);
            }
        }
        let mut comms = Vec::with_capacity(world);
        for rank in 0..world {
            let senders = txs[rank].iter_mut().map(|t| t.take().unwrap()).collect();
            let receivers = rxs[rank].iter_mut().map(|r| r.take().unwrap()).collect();
            comms.push(ThreadCommunicator {
                rank,
                world,
                senders,
                receivers,
                model,
                vclock: 0.0,
                volume: CommunicationVolume::new(),
            });
        }
        comms
    }
}

impl Communicator for ThreadCommunicator {
    fn rank(&self) -> usize {
        self.rank
    }
    fn world(&self) -> usize {
        self.world
    }
    fn send(&mut self, to: usize, data: &[f32]) -> Result<()> {
        self.send_sized(to, data, data.len() * 4)
    }
    fn send_sized(&mut self, to: usize, data: &[f32], logical_bytes: usize) -> Result<()> {
        if to >= self.world {
            return Err(Error::Communication(format!(
                "send to rank {to} of world {}",
                self.world
            )));
        }
        // Sender-side injection occupies the NIC.
        self.vclock += self.model.transfer_s(logical_bytes);
        self.volume.record_send(logical_bytes);
        self.senders[to]
            .send(Message {
                data: data.to_vec(),
                send_ts: self.vclock,
                logical_bytes,
            })
            .map_err(|_| Error::Communication(format!("rank {to} is gone")))?;
        Ok(())
    }
    fn recv(&mut self, from: usize) -> Result<Vec<f32>> {
        if from >= self.world {
            return Err(Error::Communication(format!(
                "recv from rank {from} of world {}",
                self.world
            )));
        }
        let msg = self.receivers[from]
            .recv()
            .map_err(|_| Error::Communication(format!("rank {from} hung up")))?;
        // Arrival: latency after the sender's timestamp, then delivery
        // serializes on this endpoint.
        let arrival = msg.send_ts + self.model.alpha_s;
        self.vclock = self.vclock.max(arrival) + self.model.transfer_s(msg.logical_bytes);
        self.volume.record_recv(msg.logical_bytes);
        Ok(msg.data)
    }
    fn advance(&mut self, seconds: f64) {
        self.vclock += seconds;
    }
    fn elapsed(&self) -> f64 {
        self.vclock
    }
    fn stats(&self) -> CommunicationVolume {
        self.volume
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn point_to_point_roundtrip() {
        let mut comms = ThreadTransport::create(2, NetworkModel::instant());
        let mut c1 = comms.pop().unwrap();
        let mut c0 = comms.pop().unwrap();
        let h = thread::spawn(move || {
            c1.send(0, &[1.0, 2.0, 3.0]).unwrap();
            c1.recv(0).unwrap()
        });
        let got = c0.recv(1).unwrap();
        assert_eq!(got, vec![1.0, 2.0, 3.0]);
        c0.send(1, &[9.0]).unwrap();
        assert_eq!(h.join().unwrap(), vec![9.0]);
        assert_eq!(c0.stats().messages_sent, 1);
        assert_eq!(c0.stats().bytes_received, 12);
    }

    #[test]
    fn virtual_time_propagates_through_messages() {
        let model = NetworkModel {
            alpha_s: 1.0,
            bandwidth_bps: 4.0,
        }; // 1 B/s per f32
        let mut comms = ThreadTransport::create(2, model);
        let mut c1 = comms.pop().unwrap();
        let mut c0 = comms.pop().unwrap();
        let h = thread::spawn(move || {
            c1.advance(10.0); // compute for 10 virtual seconds
            c1.send(0, &[0.0; 4]).unwrap(); // 16 B -> 4 s injection
            c1.elapsed()
        });
        let _ = c0.recv(1).unwrap();
        // Sender timestamp: 10 + 4 = 14; arrival 14 + 1 = 15; delivery + 4.
        assert!((c0.elapsed() - 19.0).abs() < 1e-9, "{}", c0.elapsed());
        assert!((h.join().unwrap() - 14.0).abs() < 1e-9);
    }

    #[test]
    fn incast_serializes_at_the_receiver() {
        let model = NetworkModel {
            alpha_s: 0.0,
            bandwidth_bps: 4.0,
        };
        let mut comms = ThreadTransport::create(3, model);
        let c2 = comms.pop().unwrap();
        let c1 = comms.pop().unwrap();
        let mut c0 = comms.pop().unwrap();
        let mk = |mut c: ThreadCommunicator| {
            thread::spawn(move || {
                c.send(0, &[0.0; 4]).unwrap();
            })
        };
        let h1 = mk(c1);
        let h2 = mk(c2);
        c0.recv(1).unwrap();
        c0.recv(2).unwrap();
        h1.join().unwrap();
        h2.join().unwrap();
        // Each sender finishes injecting at t=4; the first delivery then
        // occupies the receiver until 8, the second (already queued) until
        // 12 — deliveries serialize instead of overlapping.
        assert!((c0.elapsed() - 12.0).abs() < 1e-9, "{}", c0.elapsed());
    }

    #[test]
    fn barrier_synchronizes_clocks_monotonically() {
        let mut comms = ThreadTransport::create(4, NetworkModel::instant());
        let handles: Vec<_> = comms
            .drain(..)
            .map(|mut c| {
                thread::spawn(move || {
                    c.advance(c.rank() as f64); // heterogeneous compute
                    c.barrier().unwrap();
                    c.elapsed()
                })
            })
            .collect();
        let times: Vec<f64> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        // After the barrier everyone's clock is at least the max pre-barrier
        // clock (3.0).
        assert!(times.iter().all(|&t| t >= 3.0), "{times:?}");
    }

    #[test]
    fn invalid_peers_rejected() {
        let mut comms = ThreadTransport::create(1, NetworkModel::instant());
        let mut c = comms.pop().unwrap();
        assert!(c.send(5, &[1.0]).is_err());
        assert!(c.recv(5).is_err());
    }

    #[test]
    fn logical_bytes_override_volume() {
        let mut comms = ThreadTransport::create(2, NetworkModel::instant());
        let mut c1 = comms.pop().unwrap();
        let mut c0 = comms.pop().unwrap();
        let h = thread::spawn(move || {
            // 2 floats carried, priced as 1 MB.
            c1.send_sized(0, &[1.0, 2.0], 1_000_000).unwrap();
            c1.stats().bytes_sent
        });
        let data = c0.recv(1).unwrap();
        assert_eq!(data.len(), 2);
        assert_eq!(h.join().unwrap(), 1_000_000);
        assert_eq!(c0.stats().bytes_received, 1_000_000);
    }
}
