//! Schedule-level scaling simulation (Fig. 12).
//!
//! Fig. 12 sweeps 8–256 Piz Daint nodes training ResNet-50 on ImageNet —
//! beyond what threads-on-a-laptop can execute for real. This module
//! therefore simulates each scheme's **communication schedule** round by
//! round against the α-β [`NetworkModel`], while compute time comes from a
//! [`WorkloadModel`]. Volumes are exact properties of the schedules; times
//! follow the model. The same schedules run for real (with data) in
//! [`crate::optimizers`] at small scale, which is what ties the simulation
//! to ground truth.

use crate::netmodel::NetworkModel;

/// The trained workload's cost parameters (ResNet-50-like defaults).
#[derive(Debug, Clone, Copy)]
pub struct WorkloadModel {
    /// Model size in bytes (ResNet-50 ≈ 25.6 M params ≈ 102 MB fp32).
    pub param_bytes: usize,
    /// Per-image forward+backward compute seconds (P100-class).
    pub compute_s_per_image: f64,
    /// Python-reference per-message overhead (interpreter + NumPy glue).
    pub python_message_overhead_s: f64,
    /// Python-reference conversion bandwidth (f32↔NumPy round trip), B/s.
    pub conversion_bps: f64,
    /// Horovod coordination overhead per step, seconds.
    pub horovod_coordination_s: f64,
    /// Top-k selection cost per gradient element (SparCML filter).
    pub topk_select_s_per_elem: f64,
    /// SparCML gradient density (fraction of entries kept).
    pub sparse_density: f64,
}

impl Default for WorkloadModel {
    fn default() -> Self {
        WorkloadModel {
            param_bytes: 102_400_000,
            compute_s_per_image: 4.3e-3,
            python_message_overhead_s: 120e-6,
            conversion_bps: 1.5e9,
            horovod_coordination_s: 0.5e-3,
            topk_select_s_per_elem: 2.0e-9,
            sparse_density: 0.1,
        }
    }
}

/// The distributed schemes of Fig. 12.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scheme {
    TfPs,
    Horovod,
    Cdsgd,
    RefDsgd,
    RefPssgd,
    RefAsgd,
    RefDpsgd,
    RefMavg,
    SparCml,
}

impl Scheme {
    /// Display name matching the paper's legend.
    pub fn label(&self) -> &'static str {
        match self {
            Scheme::TfPs => "TF-PS",
            Scheme::Horovod => "Horovod",
            Scheme::Cdsgd => "CDSGD",
            Scheme::RefDsgd => "REF-dsgd",
            Scheme::RefPssgd => "REF-pssgd",
            Scheme::RefAsgd => "REF-asgd",
            Scheme::RefDpsgd => "REF-dpsgd",
            Scheme::RefMavg => "REF-mavg",
            Scheme::SparCml => "SparCML",
        }
    }

    /// The strong-scaling lineup (Fig. 12 left).
    pub fn strong_set() -> Vec<Scheme> {
        vec![
            Scheme::Cdsgd,
            Scheme::Horovod,
            Scheme::RefAsgd,
            Scheme::RefDpsgd,
            Scheme::RefDsgd,
            Scheme::RefMavg,
            Scheme::RefPssgd,
            Scheme::SparCml,
            Scheme::TfPs,
        ]
    }

    /// The weak-scaling lineup (Fig. 12 right).
    pub fn weak_set() -> Vec<Scheme> {
        vec![
            Scheme::Cdsgd,
            Scheme::Horovod,
            Scheme::SparCml,
            Scheme::TfPs,
        ]
    }
}

/// One simulated operating point.
#[derive(Debug, Clone)]
pub struct ScalingPoint {
    pub scheme: Scheme,
    pub nodes: usize,
    /// Aggregate images/second, `None` when the scheme fails at this scale
    /// (TF-PS crash, Horovod divergence — §V-E).
    pub throughput: Option<f64>,
    /// Bytes sent per node per step.
    pub sent_bytes_per_step: u64,
    /// Seconds per step (compute + communication under the model).
    pub step_time_s: f64,
    /// Failure note when `throughput` is `None`.
    pub note: Option<&'static str>,
}

/// Ring-allreduce schedule: `2(n−1)` messages of `S/n` per node.
fn ring_time(net: &NetworkModel, n: usize, bytes: usize) -> (f64, u64) {
    if n <= 1 {
        return (0.0, 0);
    }
    let chunk = bytes / n;
    let steps = 2 * (n - 1);
    let time = steps as f64 * net.message_s(chunk);
    (time, (steps * chunk) as u64)
}

/// Parameter-server schedule: the server serially ingests `n` gradients
/// and emits `n` parameter copies; a worker's step waits for the server.
fn ps_time(net: &NetworkModel, n: usize, bytes: usize) -> (f64, u64) {
    let per_msg = net.message_s(bytes);
    let server = 2.0 * n as f64 * per_msg;
    (server, 2 * bytes as u64)
}

/// Simulate one training step of `scheme` on `nodes` nodes with the given
/// per-node minibatch.
pub fn simulate_step(
    scheme: Scheme,
    nodes: usize,
    per_node_batch: usize,
    w: &WorkloadModel,
    net: &NetworkModel,
) -> ScalingPoint {
    let s = w.param_bytes;
    let compute = per_node_batch as f64 * w.compute_s_per_image;
    let elems = s / 4;
    let fail = |note: &'static str| ScalingPoint {
        scheme,
        nodes,
        throughput: None,
        sent_bytes_per_step: 0,
        step_time_s: f64::INFINITY,
        note: Some(note),
    };

    let (comm, sent): (f64, u64) = match scheme {
        Scheme::Cdsgd => ring_time(net, nodes, s),
        Scheme::Horovod => {
            let (t, v) = ring_time(net, nodes, s);
            if nodes >= 256 {
                // §V-E: at 256 nodes Horovod "produced exploding loss
                // values", an incorrect-gradient-accumulation failure.
                return fail("exploding loss (incorrect gradient accumulation)");
            }
            (t + w.horovod_coordination_s, v)
        }
        Scheme::RefDsgd => {
            // Same ring, plus per-message Python overhead and NumPy
            // conversions of the whole buffer on both sides of the call.
            let (t, v) = ring_time(net, nodes, s);
            let msgs = if nodes > 1 { 2 * (nodes - 1) } else { 0 };
            let python =
                msgs as f64 * w.python_message_overhead_s + 2.0 * s as f64 / w.conversion_bps;
            (t + python, v)
        }
        Scheme::TfPs => {
            if nodes >= 256 {
                // §V-E: "For TF-PS, the application crashed."
                return fail("application crashed");
            }
            ps_time(net, nodes, s)
        }
        Scheme::RefPssgd => {
            let (t, v) = ps_time(net, nodes, s);
            let python = 2.0 * w.python_message_overhead_s + 2.0 * s as f64 / w.conversion_bps;
            (t + python, v)
        }
        Scheme::RefAsgd => {
            // Centralized without collectives: the server eagerly pushes
            // fresh parameters to every worker after every application, so
            // each worker receives ~n parameter copies per step and the
            // server serializes n(1+n) messages.
            let per_msg = net.message_s(s);
            let server = (nodes + nodes * nodes) as f64 * per_msg / nodes as f64;
            let python = 2.0 * w.python_message_overhead_s + s as f64 / w.conversion_bps;
            (
                server + python,
                (s + nodes * s) as u64, // grad out + n param copies in
            )
        }
        Scheme::RefDpsgd => {
            // Two neighbor exchanges of the full model, constant in n.
            let t = 2.0 * net.message_s(s)
                + 2.0 * w.python_message_overhead_s
                + 2.0 * s as f64 / w.conversion_bps;
            (t, 2 * s as u64)
        }
        Scheme::RefMavg => {
            // Parameter allreduce (ring) once per step plus Python glue —
            // fewer per-tensor crossings than REF-dsgd, so cheaper.
            let (t, v) = ring_time(net, nodes, s);
            let python = 2.0 * w.python_message_overhead_s + s as f64 / w.conversion_bps;
            (t + python, v)
        }
        Scheme::SparCml => {
            // log2(n) recursive-doubling rounds; the sparse vector starts
            // at density d (8 bytes/entry: index+value) and doubles per
            // round until dense. Plus the top-k filter over the gradient.
            let rounds = (nodes.max(2) as f64).log2().ceil() as u32;
            let mut time = w.topk_select_s_per_elem * elems as f64;
            let mut sent = 0u64;
            let mut entries = (elems as f64 * w.sparse_density) as usize;
            for _ in 0..rounds {
                let bytes = (entries * 8).min(s);
                time += net.message_s(bytes);
                sent += bytes as u64;
                entries = (entries * 2).min(elems);
            }
            (time, sent)
        }
    };

    let step_time = compute + comm;
    ScalingPoint {
        scheme,
        nodes,
        throughput: Some(nodes as f64 * per_node_batch as f64 / step_time),
        sent_bytes_per_step: sent,
        step_time_s: step_time,
        note: None,
    }
}

/// Strong scaling: a fixed global minibatch split across nodes (the paper
/// uses 1,024 images on 8–64 nodes).
pub fn strong_scaling(
    schemes: &[Scheme],
    nodes_list: &[usize],
    global_batch: usize,
    w: &WorkloadModel,
    net: &NetworkModel,
) -> Vec<ScalingPoint> {
    let mut out = Vec::new();
    for &scheme in schemes {
        for &nodes in nodes_list {
            let per_node = (global_batch / nodes).max(1);
            out.push(simulate_step(scheme, nodes, per_node, w, net));
        }
    }
    out
}

/// Expected transmissions per delivered message under i.i.d. drop
/// probability `p` with up to `k` retransmissions — the truncated
/// geometric series `E = (1 − p^{k+1}) / (1 − p)`.
pub fn expected_attempts(p: f64, k: u32) -> f64 {
    if p <= 0.0 {
        return 1.0;
    }
    if p >= 1.0 {
        return (k + 1) as f64;
    }
    (1.0 - p.powi(k as i32 + 1)) / (1.0 - p)
}

/// [`simulate_step`] under a lossy network: every message drops with
/// probability `drop_rate` and is retransmitted up to `max_retries` times,
/// so communication time and volume scale by [`expected_attempts`]. A
/// message that exhausts its budget is permanently lost (probability
/// `p^{k+1}`); the synchronous centralized schedules (TF-PS, PSSGD, ASGD)
/// cannot complete a step without every message, so they abort once the
/// expected permanent losses per step (≈ `2n` messages) become
/// non-negligible. Loss-tolerant schedules degrade in time only.
pub fn simulate_step_faulty(
    scheme: Scheme,
    nodes: usize,
    per_node_batch: usize,
    w: &WorkloadModel,
    net: &NetworkModel,
    drop_rate: f64,
    max_retries: u32,
) -> ScalingPoint {
    let base = simulate_step(scheme, nodes, per_node_batch, w, net);
    if base.throughput.is_none() || drop_rate <= 0.0 {
        return base;
    }
    let attempts = expected_attempts(drop_rate, max_retries);
    let loss_p = drop_rate.powi(max_retries as i32 + 1);
    let centralized = matches!(scheme, Scheme::TfPs | Scheme::RefPssgd | Scheme::RefAsgd);
    if centralized && 2.0 * nodes as f64 * loss_p > 0.1 {
        return ScalingPoint {
            scheme,
            nodes,
            throughput: None,
            sent_bytes_per_step: 0,
            step_time_s: f64::INFINITY,
            note: Some("retry budget exhausted (dropped synchronous message)"),
        };
    }
    let compute = per_node_batch as f64 * w.compute_s_per_image;
    let comm = (base.step_time_s - compute).max(0.0);
    let step_time = compute + comm * attempts;
    ScalingPoint {
        scheme,
        nodes,
        throughput: Some(nodes as f64 * per_node_batch as f64 / step_time),
        sent_bytes_per_step: (base.sent_bytes_per_step as f64 * attempts) as u64,
        step_time_s: step_time,
        note: None,
    }
}

/// Weak scaling: a fixed per-node minibatch (1–256 nodes in the paper).
pub fn weak_scaling(
    schemes: &[Scheme],
    nodes_list: &[usize],
    per_node_batch: usize,
    w: &WorkloadModel,
    net: &NetworkModel,
) -> Vec<ScalingPoint> {
    let mut out = Vec::new();
    for &scheme in schemes {
        for &nodes in nodes_list {
            out.push(simulate_step(scheme, nodes, per_node_batch, w, net));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(scheme: Scheme, nodes: usize) -> ScalingPoint {
        simulate_step(
            scheme,
            nodes,
            128,
            &WorkloadModel::default(),
            &NetworkModel::aries(),
        )
    }

    #[test]
    fn cdsgd_beats_the_python_reference_by_a_wide_margin() {
        // §V-E: the C++ DSGD "is almost an order of magnitude faster than
        // its Python counterpart" (in communication cost).
        let c = point(Scheme::Cdsgd, 32);
        let r = point(Scheme::RefDsgd, 32);
        let c_comm = c.step_time_s - 128.0 * WorkloadModel::default().compute_s_per_image;
        let r_comm = r.step_time_s - 128.0 * WorkloadModel::default().compute_s_per_image;
        assert!(r_comm > 3.0 * c_comm, "ref {r_comm} vs c {c_comm}");
        // Identical schedules => identical volume.
        assert_eq!(c.sent_bytes_per_step, r.sent_bytes_per_step);
    }

    #[test]
    fn ring_scales_better_than_ps() {
        for nodes in [16usize, 32, 64] {
            let ring = point(Scheme::Cdsgd, nodes);
            let ps = point(Scheme::TfPs, nodes);
            assert!(
                ring.throughput.unwrap() > ps.throughput.unwrap(),
                "at {nodes} nodes"
            );
        }
    }

    #[test]
    fn asgd_degrades_with_node_count() {
        // Normalized per-node throughput falls as workers queue at the PS.
        let t8 = point(Scheme::RefAsgd, 8).throughput.unwrap() / 8.0;
        let t64 = point(Scheme::RefAsgd, 64).throughput.unwrap() / 64.0;
        assert!(t64 < t8 * 0.65, "{t8} -> {t64}");
        // And its volume grows linearly with n.
        let v8 = point(Scheme::RefAsgd, 8).sent_bytes_per_step;
        let v64 = point(Scheme::RefAsgd, 64).sent_bytes_per_step;
        assert!(v64 > 6 * v8);
    }

    #[test]
    fn dpsgd_volume_is_constant() {
        let v8 = point(Scheme::RefDpsgd, 8).sent_bytes_per_step;
        let v64 = point(Scheme::RefDpsgd, 64).sent_bytes_per_step;
        assert_eq!(v8, v64);
    }

    #[test]
    fn sparse_volume_smaller_at_low_node_counts_then_densifies() {
        let dense8 = point(Scheme::Cdsgd, 8).sent_bytes_per_step;
        let sparse8 = point(Scheme::SparCml, 8).sent_bytes_per_step;
        assert!(sparse8 < dense8, "{sparse8} !< {dense8}");
        let sparse128 = point(Scheme::SparCml, 128).sent_bytes_per_step;
        assert!(sparse128 > sparse8 * 2, "densification with node count");
    }

    #[test]
    fn sparse_is_slower_than_cdsgd_despite_less_volume() {
        // §V-E: the filter cost and densification keep SparCML's runtime
        // above the plain allreduce here.
        let c = point(Scheme::Cdsgd, 8);
        let s = point(Scheme::SparCml, 8);
        assert!(s.step_time_s > c.step_time_s);
    }

    #[test]
    fn failures_at_256_nodes() {
        let tf = point(Scheme::TfPs, 256);
        assert!(tf.throughput.is_none());
        assert!(tf.note.unwrap().contains("crash"));
        let hvd = point(Scheme::Horovod, 256);
        assert!(hvd.throughput.is_none());
        assert!(hvd.note.unwrap().contains("exploding"));
        let cd = point(Scheme::Cdsgd, 256);
        assert!(cd.throughput.is_some(), "CDSGD survives 256 nodes");
    }

    #[test]
    fn weak_scaling_grows_throughput_for_ring() {
        let pts = weak_scaling(
            &[Scheme::Cdsgd],
            &[1, 4, 16, 64],
            128,
            &WorkloadModel::default(),
            &NetworkModel::aries(),
        );
        let tp: Vec<f64> = pts.iter().map(|p| p.throughput.unwrap()).collect();
        for w in tp.windows(2) {
            assert!(w[1] > w[0], "weak scaling should grow: {tp:?}");
        }
    }

    #[test]
    fn strong_scaling_splits_the_batch() {
        let pts = strong_scaling(
            &[Scheme::Cdsgd],
            &[8, 16],
            1024,
            &WorkloadModel::default(),
            &NetworkModel::aries(),
        );
        assert_eq!(pts.len(), 2);
        // 16 nodes halve per-node compute: throughput must rise.
        assert!(pts[1].throughput.unwrap() > pts[0].throughput.unwrap());
        assert_eq!(Scheme::Cdsgd.label(), "CDSGD");
        assert!(Scheme::strong_set().len() >= 8);
        assert_eq!(Scheme::weak_set().len(), 4);
    }

    #[test]
    fn expected_attempts_is_the_truncated_geometric_series() {
        assert_eq!(expected_attempts(0.0, 5), 1.0);
        assert_eq!(expected_attempts(0.5, 0), 1.0); // no retries: one shot
        assert!((expected_attempts(0.5, 1) - 1.5).abs() < 1e-12);
        assert!((expected_attempts(0.5, 2) - 1.75).abs() < 1e-12);
        // Monotone in both the drop rate and the retry budget.
        assert!(expected_attempts(0.3, 3) > expected_attempts(0.1, 3));
        assert!(expected_attempts(0.3, 5) > expected_attempts(0.3, 1));
        // k → ∞ limit is 1/(1−p).
        assert!((expected_attempts(0.25, 60) - 4.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn faulty_step_degrades_gracefully_or_aborts() {
        let w = WorkloadModel::default();
        let net = NetworkModel::aries();
        let clean = simulate_step(Scheme::Cdsgd, 16, 128, &w, &net);
        // Zero drop rate is exactly the fault-free model.
        let zero = simulate_step_faulty(Scheme::Cdsgd, 16, 128, &w, &net, 0.0, 3);
        assert_eq!(zero.step_time_s, clean.step_time_s);
        // Drops cost time and retransmitted bytes, but the ring completes.
        let lossy = simulate_step_faulty(Scheme::Cdsgd, 16, 128, &w, &net, 0.3, 3);
        assert!(lossy.throughput.unwrap() < clean.throughput.unwrap());
        assert!(lossy.sent_bytes_per_step > clean.sent_bytes_per_step);
        // A synchronous PS without a retry budget loses messages for good
        // and aborts with a note instead of fabricating a throughput.
        let ps = simulate_step_faulty(Scheme::RefPssgd, 16, 128, &w, &net, 0.3, 0);
        assert!(ps.throughput.is_none());
        assert!(ps.note.unwrap().contains("retry budget"));
        // With a deep retry budget the same scheme survives, slower.
        let ps_retry = simulate_step_faulty(Scheme::RefPssgd, 16, 128, &w, &net, 0.3, 8);
        let ps_clean = simulate_step(Scheme::RefPssgd, 16, 128, &w, &net);
        assert!(ps_retry.throughput.unwrap() < ps_clean.throughput.unwrap());
    }
}
