//! Collective operations implemented over point-to-point messaging.
//!
//! Every collective is built from real `send`/`recv` calls, so the
//! communication volumes reported by the Level-3 metrics are exact
//! properties of the executed schedules — not estimates:
//!
//! * [`allreduce_ring`] — bandwidth-optimal ring (reduce-scatter +
//!   allgather): each rank sends `2·(n−1)/n · S` bytes,
//! * [`allreduce_flat`] — gather-to-root + broadcast (the naive scheme the
//!   PS architecture resembles),
//! * [`broadcast_tree`] / [`gather_to_root`] — binomial-tree broadcast and
//!   flat gather,
//! * [`neighbor_exchange`] — the DPSGD gossip step on a ring topology.

use crate::comm::Communicator;
use deep500_tensor::{Error, Result};

/// Elementwise in-place sum: `acc += other`.
fn add_into(acc: &mut [f32], other: &[f32]) -> Result<()> {
    if acc.len() != other.len() {
        return Err(Error::Communication(format!(
            "collective buffer mismatch: {} vs {}",
            acc.len(),
            other.len()
        )));
    }
    for (a, &b) in acc.iter_mut().zip(other) {
        *a += b;
    }
    Ok(())
}

/// Ring allreduce (sum): reduce-scatter then allgather. `buf` holds each
/// rank's contribution on entry and the global sum on exit.
pub fn allreduce_ring(comm: &mut dyn Communicator, buf: &mut [f32]) -> Result<()> {
    let n = comm.world();
    if n == 1 {
        return Ok(());
    }
    let rank = comm.rank();
    let right = (rank + 1) % n;
    let left = (rank + n - 1) % n;
    // Chunk boundaries (chunk c = [starts[c], starts[c+1])).
    let starts: Vec<usize> = (0..=n).map(|c| c * buf.len() / n).collect();
    let chunk = |c: usize| (starts[c % n], starts[c % n + 1]);

    // Reduce-scatter: after step s, rank r holds the partial sum of chunk
    // (r - s) from s+1 contributors.
    for s in 0..n - 1 {
        let (tx_lo, tx_hi) = chunk((rank + n - s) % n);
        comm.send(right, &buf[tx_lo..tx_hi])?;
        let incoming = comm.recv(left)?;
        let (rx_lo, rx_hi) = chunk((rank + n - s - 1) % n);
        add_into(&mut buf[rx_lo..rx_hi], &incoming)?;
    }
    // Allgather: circulate the finished chunks.
    for s in 0..n - 1 {
        let (tx_lo, tx_hi) = chunk((rank + 1 + n - s) % n);
        comm.send(right, &buf[tx_lo..tx_hi])?;
        let incoming = comm.recv(left)?;
        let (rx_lo, rx_hi) = chunk((rank + n - s) % n);
        buf[rx_lo..rx_hi].copy_from_slice(&incoming);
    }
    Ok(())
}

/// Flat allreduce: everyone sends to rank 0, which sums and broadcasts the
/// result (via a binomial tree). The PS-style schedule.
pub fn allreduce_flat(comm: &mut dyn Communicator, buf: &mut [f32]) -> Result<()> {
    let n = comm.world();
    if n == 1 {
        return Ok(());
    }
    if comm.rank() == 0 {
        for peer in 1..n {
            let incoming = comm.recv(peer)?;
            add_into(buf, &incoming)?;
        }
    } else {
        comm.send(0, buf)?;
    }
    broadcast_tree(comm, buf, 0)
}

/// Binomial-tree broadcast from `root` (relabeled so the tree works for
/// any root).
pub fn broadcast_tree(comm: &mut dyn Communicator, buf: &mut [f32], root: usize) -> Result<()> {
    let n = comm.world();
    if n == 1 {
        return Ok(());
    }
    let vrank = (comm.rank() + n - root) % n; // virtual rank, root = 0
                                              // Receive phase: the lowest set bit of vrank identifies the parent
                                              // (vrank with that bit cleared). The root has no set bits and skips it.
    let mut mask = 1usize;
    while mask < n {
        if vrank & mask != 0 {
            let parent = ((vrank & !mask) + root) % n;
            let data = comm.recv(parent)?;
            if data.len() != buf.len() {
                return Err(Error::Communication("broadcast size mismatch".into()));
            }
            buf.copy_from_slice(&data);
            break;
        }
        mask <<= 1;
    }
    // Send phase: forward to children at every bit below the one we
    // received on (all bits for the root).
    mask >>= 1;
    while mask > 0 {
        let child_v = vrank | mask;
        if child_v != vrank && child_v < n {
            comm.send((child_v + root) % n, buf)?;
        }
        mask >>= 1;
    }
    Ok(())
}

/// Gather all ranks' buffers to `root`; returns `Some(parts)` (indexed by
/// rank) at the root, `None` elsewhere.
pub fn gather_to_root(
    comm: &mut dyn Communicator,
    buf: &[f32],
    root: usize,
) -> Result<Option<Vec<Vec<f32>>>> {
    if comm.rank() == root {
        let mut parts = vec![Vec::new(); comm.world()];
        parts[root] = buf.to_vec();
        for (peer, part) in parts.iter_mut().enumerate() {
            if peer != root {
                *part = comm.recv(peer)?;
            }
        }
        Ok(Some(parts))
    } else {
        comm.send(root, buf)?;
        Ok(None)
    }
}

/// DPSGD-style neighbor exchange on a ring: send `buf` to both neighbors,
/// receive theirs, return the three-way average (self + left + right) / 3.
/// Communication volume per rank is constant in the world size.
pub fn neighbor_exchange(comm: &mut dyn Communicator, buf: &[f32]) -> Result<Vec<f32>> {
    let n = comm.world();
    if n == 1 {
        return Ok(buf.to_vec());
    }
    let rank = comm.rank();
    let right = (rank + 1) % n;
    let left = (rank + n - 1) % n;
    comm.send(right, buf)?;
    comm.send(left, buf)?;
    let from_left = comm.recv(left)?;
    let from_right = if n == 2 {
        // With two ranks, left == right; the second message is distinct.
        comm.recv(left)?
    } else {
        comm.recv(right)?
    };
    if from_left.len() != buf.len() || from_right.len() != buf.len() {
        return Err(Error::Communication("neighbor buffer mismatch".into()));
    }
    Ok(buf
        .iter()
        .zip(&from_left)
        .zip(&from_right)
        .map(|((&a, &b), &c)| (a + b + c) / 3.0)
        .collect())
}

/// Scale a buffer in place by `1/world` — the averaging step after a sum
/// allreduce.
pub fn average_in_place(comm: &dyn Communicator, buf: &mut [f32]) {
    let inv = 1.0 / comm.world() as f32;
    for v in buf {
        *v *= inv;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::ThreadTransport;
    use crate::netmodel::NetworkModel;
    use std::thread;

    /// Run `f` on every rank of a fresh world; returns per-rank results.
    fn on_world<T: Send + 'static>(
        world: usize,
        f: impl Fn(&mut dyn Communicator) -> T + Send + Sync + Clone + 'static,
    ) -> Vec<T> {
        let comms = ThreadTransport::create(world, NetworkModel::instant());
        let handles: Vec<_> = comms
            .into_iter()
            .map(|mut c| {
                let f = f.clone();
                thread::spawn(move || f(&mut c))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    }

    fn contribution(rank: usize, len: usize) -> Vec<f32> {
        (0..len).map(|i| (rank * 100 + i) as f32).collect()
    }

    fn expected_sum(world: usize, len: usize) -> Vec<f32> {
        let mut acc = vec![0.0f32; len];
        for r in 0..world {
            for (a, b) in acc.iter_mut().zip(contribution(r, len)) {
                *a += b;
            }
        }
        acc
    }

    #[test]
    fn ring_allreduce_sums_for_many_world_sizes() {
        for world in [1usize, 2, 3, 4, 5, 8] {
            for len in [1usize, 4, 7, 64] {
                let results = on_world(world, move |c| {
                    let mut buf = contribution(c.rank(), len);
                    allreduce_ring(c, &mut buf).unwrap();
                    buf
                });
                let expect = expected_sum(world, len);
                for (r, got) in results.iter().enumerate() {
                    assert_eq!(got, &expect, "world {world} len {len} rank {r}");
                }
            }
        }
    }

    #[test]
    fn flat_allreduce_matches_ring() {
        for world in [2usize, 3, 4, 6] {
            let len = 10;
            let results = on_world(world, move |c| {
                let mut buf = contribution(c.rank(), len);
                allreduce_flat(c, &mut buf).unwrap();
                buf
            });
            let expect = expected_sum(world, len);
            for got in &results {
                assert_eq!(got, &expect);
            }
        }
    }

    #[test]
    fn broadcast_tree_delivers_from_any_root() {
        for world in [2usize, 3, 4, 5, 8] {
            for root in 0..world.min(3) {
                let results = on_world(world, move |c| {
                    let mut buf = if c.rank() == root {
                        vec![42.0, 7.0]
                    } else {
                        vec![0.0, 0.0]
                    };
                    broadcast_tree(c, &mut buf, root).unwrap();
                    buf
                });
                for (r, got) in results.iter().enumerate() {
                    assert_eq!(got, &vec![42.0, 7.0], "world {world} root {root} rank {r}");
                }
            }
        }
    }

    #[test]
    fn gather_collects_by_rank() {
        let results = on_world(4, |c| {
            let buf = vec![c.rank() as f32];
            gather_to_root(c, &buf, 0).unwrap()
        });
        let root = results[0].as_ref().unwrap();
        assert_eq!(root.len(), 4);
        for (r, part) in root.iter().enumerate() {
            assert_eq!(part, &vec![r as f32]);
        }
        assert!(results[1].is_none());
    }

    #[test]
    fn neighbor_exchange_averages_ring_neighbors() {
        let results = on_world(4, |c| {
            let buf = vec![c.rank() as f32 * 3.0];
            neighbor_exchange(c, &buf).unwrap()
        });
        // rank 1: (0 + 3 + 6)/3 = 3
        assert_eq!(results[1], vec![3.0]);
        // rank 0: (9 + 0 + 3)/3 = 4
        assert_eq!(results[0], vec![4.0]);
    }

    #[test]
    fn neighbor_exchange_two_ranks() {
        let results = on_world(2, |c| {
            let buf = vec![if c.rank() == 0 { 3.0 } else { 9.0 }];
            neighbor_exchange(c, &buf).unwrap()
        });
        // Each rank averages self + the peer's value twice.
        assert_eq!(results[0], vec![7.0]); // (3 + 9 + 9)/3
        assert_eq!(results[1], vec![5.0]); // (9 + 3 + 3)/3
    }

    #[test]
    fn ring_volume_is_bandwidth_optimal() {
        let len = 64usize;
        let world = 4usize;
        let results = on_world(world, move |c| {
            let mut buf = contribution(c.rank(), len);
            allreduce_ring(c, &mut buf).unwrap();
            c.stats().bytes_sent
        });
        // 2*(n-1)/n * S bytes per rank.
        let expect = 2 * (world - 1) * (len * 4) / world;
        for &sent in &results {
            assert_eq!(sent, expect as u64);
        }
    }

    #[test]
    fn flat_volume_concentrates_at_root() {
        let len = 64usize;
        let results = on_world(4, move |c| {
            let mut buf = contribution(c.rank(), len);
            allreduce_flat(c, &mut buf).unwrap();
            (c.stats().bytes_sent, c.stats().bytes_received)
        });
        let root_recv = results[0].1;
        assert!(root_recv >= 3 * (len as u64) * 4, "root takes the incast");
    }
}
