//! Collective operations implemented over point-to-point messaging.
//!
//! Every collective is built from real `send`/`recv` calls, so the
//! communication volumes reported by the Level-3 metrics are exact
//! properties of the executed schedules — not estimates:
//!
//! * [`allreduce_ring`] — bandwidth-optimal ring (reduce-scatter +
//!   allgather): each rank sends `2·(n−1)/n · S` bytes,
//! * [`allreduce_flat`] — gather-to-root + broadcast (the naive scheme the
//!   PS architecture resembles),
//! * [`broadcast_tree`] / [`gather_to_root`] — binomial-tree broadcast and
//!   flat gather,
//! * [`neighbor_exchange`] — the DPSGD gossip step on a ring topology.
//!
//! Each collective has an `_among` variant running over an explicit,
//! sorted member list — the group-re-formation primitive of the
//! fault-tolerance layer: when ranks crash, survivors call the `_among`
//! form with `comm.live_ranks()` and the schedule shrinks to the live
//! group. With the full membership the `_among` schedule is *identical*
//! (message for message) to the plain form, which is what makes a
//! zero-fault run bit-identical to the fault-free path.
//!
//! All collectives return [`CommResult`]; errors carry typed causes
//! ([`CommError`]) instead of panicking.

use crate::comm::{CommError, CommResult, Communicator};

/// Elementwise in-place sum: `acc += other`.
fn add_into(acc: &mut [f32], other: &[f32]) -> CommResult<()> {
    if acc.len() != other.len() {
        return Err(CommError::Mismatch(format!(
            "collective buffer mismatch: {} vs {}",
            acc.len(),
            other.len()
        )));
    }
    for (a, &b) in acc.iter_mut().zip(other) {
        *a += b;
    }
    Ok(())
}

/// Position of `rank` within the sorted member list, or a typed error when
/// the caller is not a member.
fn position(members: &[usize], rank: usize) -> CommResult<usize> {
    members
        .iter()
        .position(|&r| r == rank)
        .ok_or_else(|| CommError::Mismatch(format!("rank {rank} not in group {members:?}")))
}

/// Ring allreduce (sum): reduce-scatter then allgather. `buf` holds each
/// rank's contribution on entry and the global sum on exit.
pub fn allreduce_ring(comm: &mut dyn Communicator, buf: &mut [f32]) -> CommResult<()> {
    let members: Vec<usize> = (0..comm.world()).collect();
    allreduce_ring_among(comm, buf, &members)
}

/// Ring allreduce (sum) over an explicit member group (sorted ranks; the
/// caller must be a member). With the full membership this executes the
/// exact schedule of [`allreduce_ring`]; with a shrunken live group it is
/// the recovery path of the decentralized schemes.
pub fn allreduce_ring_among(
    comm: &mut dyn Communicator,
    buf: &mut [f32],
    members: &[usize],
) -> CommResult<()> {
    let n = members.len();
    let pos = position(members, comm.rank())?;
    if n == 1 {
        return Ok(());
    }
    let right = members[(pos + 1) % n];
    let left = members[(pos + n - 1) % n];
    // Chunk boundaries (chunk c = [starts[c], starts[c+1])).
    let starts: Vec<usize> = (0..=n).map(|c| c * buf.len() / n).collect();
    let chunk = |c: usize| (starts[c % n], starts[c % n + 1]);

    // Reduce-scatter: after step s, position p holds the partial sum of
    // chunk (p - s) from s+1 contributors.
    for s in 0..n - 1 {
        let (tx_lo, tx_hi) = chunk((pos + n - s) % n);
        comm.send(right, &buf[tx_lo..tx_hi])?;
        let incoming = comm.recv(left)?;
        let (rx_lo, rx_hi) = chunk((pos + n - s - 1) % n);
        add_into(&mut buf[rx_lo..rx_hi], &incoming)?;
    }
    // Allgather: circulate the finished chunks.
    for s in 0..n - 1 {
        let (tx_lo, tx_hi) = chunk((pos + 1 + n - s) % n);
        comm.send(right, &buf[tx_lo..tx_hi])?;
        let incoming = comm.recv(left)?;
        let (rx_lo, rx_hi) = chunk((pos + n - s) % n);
        buf[rx_lo..rx_hi].copy_from_slice(&incoming);
    }
    Ok(())
}

/// Flat allreduce: everyone sends to rank 0, which sums and broadcasts the
/// result (via a binomial tree). The PS-style schedule.
pub fn allreduce_flat(comm: &mut dyn Communicator, buf: &mut [f32]) -> CommResult<()> {
    let n = comm.world();
    if n == 1 {
        return Ok(());
    }
    if comm.rank() == 0 {
        for peer in 1..n {
            let incoming = comm.recv(peer)?;
            add_into(buf, &incoming)?;
        }
    } else {
        comm.send(0, buf)?;
    }
    broadcast_tree(comm, buf, 0)
}

/// Binomial-tree broadcast from `root` (relabeled so the tree works for
/// any root).
pub fn broadcast_tree(comm: &mut dyn Communicator, buf: &mut [f32], root: usize) -> CommResult<()> {
    let members: Vec<usize> = (0..comm.world()).collect();
    broadcast_among(comm, buf, root, &members)
}

/// Binomial-tree broadcast from `root` over an explicit member group
/// (sorted ranks; `root` and the caller must be members). Full membership
/// reproduces the [`broadcast_tree`] schedule exactly.
pub fn broadcast_among(
    comm: &mut dyn Communicator,
    buf: &mut [f32],
    root: usize,
    members: &[usize],
) -> CommResult<()> {
    let n = members.len();
    if n <= 1 {
        return Ok(());
    }
    let pos = position(members, comm.rank())?;
    let root_pos = position(members, root)?;
    let vrank = (pos + n - root_pos) % n; // virtual position, root = 0
    let to_rank = |v: usize| members[(v + root_pos) % n];
    // Receive phase: the lowest set bit of vrank identifies the parent
    // (vrank with that bit cleared). The root has no set bits and skips it.
    let mut mask = 1usize;
    while mask < n {
        if vrank & mask != 0 {
            let parent = to_rank(vrank & !mask);
            let data = comm.recv(parent)?;
            if data.len() != buf.len() {
                return Err(CommError::Mismatch("broadcast size mismatch".into()));
            }
            buf.copy_from_slice(&data);
            break;
        }
        mask <<= 1;
    }
    // Send phase: forward to children at every bit below the one we
    // received on (all bits for the root).
    mask >>= 1;
    while mask > 0 {
        let child_v = vrank | mask;
        if child_v != vrank && child_v < n {
            comm.send(to_rank(child_v), buf)?;
        }
        mask >>= 1;
    }
    Ok(())
}

/// Gather all ranks' buffers to `root`; returns `Some(parts)` (indexed by
/// rank) at the root, `None` elsewhere.
pub fn gather_to_root(
    comm: &mut dyn Communicator,
    buf: &[f32],
    root: usize,
) -> CommResult<Option<Vec<Vec<f32>>>> {
    if comm.rank() == root {
        let mut parts = vec![Vec::new(); comm.world()];
        parts[root] = buf.to_vec();
        for (peer, part) in parts.iter_mut().enumerate() {
            if peer != root {
                *part = comm.recv(peer)?;
            }
        }
        Ok(Some(parts))
    } else {
        comm.send(root, buf)?;
        Ok(None)
    }
}

/// DPSGD-style neighbor exchange on a ring: send `buf` to both neighbors,
/// receive theirs, return the three-way average (self + left + right) / 3.
/// Communication volume per rank is constant in the world size.
pub fn neighbor_exchange(comm: &mut dyn Communicator, buf: &[f32]) -> CommResult<Vec<f32>> {
    let members: Vec<usize> = (0..comm.world()).collect();
    neighbor_exchange_among(comm, buf, &members)
}

/// Neighbor exchange on the ring formed by an explicit member group
/// (sorted ranks; the caller must be a member). Full membership reproduces
/// the [`neighbor_exchange`] schedule exactly; after crashes the gossip
/// ring re-forms over the survivors.
pub fn neighbor_exchange_among(
    comm: &mut dyn Communicator,
    buf: &[f32],
    members: &[usize],
) -> CommResult<Vec<f32>> {
    let n = members.len();
    if n <= 1 {
        return Ok(buf.to_vec());
    }
    let pos = position(members, comm.rank())?;
    let right = members[(pos + 1) % n];
    let left = members[(pos + n - 1) % n];
    comm.send(right, buf)?;
    comm.send(left, buf)?;
    let from_left = comm.recv(left)?;
    let from_right = if n == 2 {
        // With two members, left == right; the second message is distinct.
        comm.recv(left)?
    } else {
        comm.recv(right)?
    };
    if from_left.len() != buf.len() || from_right.len() != buf.len() {
        return Err(CommError::Mismatch("neighbor buffer mismatch".into()));
    }
    Ok(buf
        .iter()
        .zip(&from_left)
        .zip(&from_right)
        .map(|((&a, &b), &c)| (a + b + c) / 3.0)
        .collect())
}

/// Scale a buffer in place by `1/world` — the averaging step after a sum
/// allreduce.
pub fn average_in_place(comm: &dyn Communicator, buf: &mut [f32]) {
    average_among(buf, comm.world());
}

/// Scale a buffer in place by `1/group_size` — the surviving-rank
/// renormalization after an allreduce over a (possibly shrunken) group.
/// With the full world this is exactly [`average_in_place`].
pub fn average_among(buf: &mut [f32], group_size: usize) {
    if group_size == 0 {
        return;
    }
    let inv = 1.0 / group_size as f32;
    for v in buf {
        *v *= inv;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::ThreadTransport;
    use crate::netmodel::NetworkModel;
    use std::thread;

    /// Run `f` on every rank of a fresh world; returns per-rank results.
    fn on_world<T: Send + 'static>(
        world: usize,
        f: impl Fn(&mut dyn Communicator) -> T + Send + Sync + Clone + 'static,
    ) -> Vec<T> {
        let comms = ThreadTransport::create(world, NetworkModel::instant());
        let handles: Vec<_> = comms
            .into_iter()
            .map(|mut c| {
                let f = f.clone();
                thread::spawn(move || f(&mut c))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    }

    fn contribution(rank: usize, len: usize) -> Vec<f32> {
        (0..len).map(|i| (rank * 100 + i) as f32).collect()
    }

    fn expected_sum(world: usize, len: usize) -> Vec<f32> {
        let mut acc = vec![0.0f32; len];
        for r in 0..world {
            for (a, b) in acc.iter_mut().zip(contribution(r, len)) {
                *a += b;
            }
        }
        acc
    }

    #[test]
    fn ring_allreduce_sums_for_many_world_sizes() {
        for world in [1usize, 2, 3, 4, 5, 8] {
            for len in [1usize, 4, 7, 64] {
                let results = on_world(world, move |c| {
                    let mut buf = contribution(c.rank(), len);
                    allreduce_ring(c, &mut buf).unwrap();
                    buf
                });
                let expect = expected_sum(world, len);
                for (r, got) in results.iter().enumerate() {
                    assert_eq!(got, &expect, "world {world} len {len} rank {r}");
                }
            }
        }
    }

    #[test]
    fn ring_allreduce_among_subgroup_sums_members_only() {
        // World of 4; ranks {0, 2, 3} form the group, rank 1 sits out.
        let members = vec![0usize, 2, 3];
        let results = on_world(4, move |c| {
            if c.rank() == 1 {
                return None;
            }
            let mut buf = contribution(c.rank(), 7);
            allreduce_ring_among(c, &mut buf, &members).unwrap();
            Some(buf)
        });
        let mut expect = vec![0.0f32; 7];
        for r in [0usize, 2, 3] {
            for (a, b) in expect.iter_mut().zip(contribution(r, 7)) {
                *a += b;
            }
        }
        for r in [0usize, 2, 3] {
            assert_eq!(results[r].as_ref().unwrap(), &expect, "rank {r}");
        }
        assert!(results[1].is_none());
    }

    #[test]
    fn among_rejects_non_members_with_typed_error() {
        let results = on_world(2, |c| {
            if c.rank() == 0 {
                let mut buf = vec![1.0f32];
                allreduce_ring_among(c, &mut buf, &[1]).unwrap_err()
            } else {
                CommError::Mismatch("unused".into())
            }
        });
        assert!(matches!(results[0], CommError::Mismatch(_)));
    }

    #[test]
    fn flat_allreduce_matches_ring() {
        for world in [2usize, 3, 4, 6] {
            let len = 10;
            let results = on_world(world, move |c| {
                let mut buf = contribution(c.rank(), len);
                allreduce_flat(c, &mut buf).unwrap();
                buf
            });
            let expect = expected_sum(world, len);
            for got in &results {
                assert_eq!(got, &expect);
            }
        }
    }

    #[test]
    fn broadcast_tree_delivers_from_any_root() {
        for world in [2usize, 3, 4, 5, 8] {
            for root in 0..world.min(3) {
                let results = on_world(world, move |c| {
                    let mut buf = if c.rank() == root {
                        vec![42.0, 7.0]
                    } else {
                        vec![0.0, 0.0]
                    };
                    broadcast_tree(c, &mut buf, root).unwrap();
                    buf
                });
                for (r, got) in results.iter().enumerate() {
                    assert_eq!(got, &vec![42.0, 7.0], "world {world} root {root} rank {r}");
                }
            }
        }
    }

    #[test]
    fn broadcast_among_subgroup() {
        // Group {1, 3} of a 4-world; root 3 broadcasts to 1.
        let results = on_world(4, |c| {
            if c.rank() == 1 || c.rank() == 3 {
                let mut buf = if c.rank() == 3 {
                    vec![5.0, 6.0]
                } else {
                    vec![0.0, 0.0]
                };
                broadcast_among(c, &mut buf, 3, &[1, 3]).unwrap();
                Some(buf)
            } else {
                None
            }
        });
        assert_eq!(results[1].as_ref().unwrap(), &vec![5.0, 6.0]);
        assert_eq!(results[3].as_ref().unwrap(), &vec![5.0, 6.0]);
    }

    #[test]
    fn gather_collects_by_rank() {
        let results = on_world(4, |c| {
            let buf = vec![c.rank() as f32];
            gather_to_root(c, &buf, 0).unwrap()
        });
        let root = results[0].as_ref().unwrap();
        assert_eq!(root.len(), 4);
        for (r, part) in root.iter().enumerate() {
            assert_eq!(part, &vec![r as f32]);
        }
        assert!(results[1].is_none());
    }

    #[test]
    fn neighbor_exchange_averages_ring_neighbors() {
        let results = on_world(4, |c| {
            let buf = vec![c.rank() as f32 * 3.0];
            neighbor_exchange(c, &buf).unwrap()
        });
        // rank 1: (0 + 3 + 6)/3 = 3
        assert_eq!(results[1], vec![3.0]);
        // rank 0: (9 + 0 + 3)/3 = 4
        assert_eq!(results[0], vec![4.0]);
    }

    #[test]
    fn neighbor_exchange_two_ranks() {
        let results = on_world(2, |c| {
            let buf = vec![if c.rank() == 0 { 3.0 } else { 9.0 }];
            neighbor_exchange(c, &buf).unwrap()
        });
        // Each rank averages self + the peer's value twice.
        assert_eq!(results[0], vec![7.0]); // (3 + 9 + 9)/3
        assert_eq!(results[1], vec![5.0]); // (9 + 3 + 3)/3
    }

    #[test]
    fn average_among_renormalizes_by_group_size() {
        let mut buf = vec![6.0f32, 9.0];
        average_among(&mut buf, 3);
        assert_eq!(buf, vec![2.0, 3.0]);
        average_among(&mut buf, 0); // degenerate group: untouched
        assert_eq!(buf, vec![2.0, 3.0]);
    }

    #[test]
    fn ring_volume_is_bandwidth_optimal() {
        let len = 64usize;
        let world = 4usize;
        let results = on_world(world, move |c| {
            let mut buf = contribution(c.rank(), len);
            allreduce_ring(c, &mut buf).unwrap();
            c.stats().bytes_sent
        });
        // 2*(n-1)/n * S bytes per rank.
        let expect = 2 * (world - 1) * (len * 4) / world;
        for &sent in &results {
            assert_eq!(sent, expect as u64);
        }
    }

    #[test]
    fn flat_volume_concentrates_at_root() {
        let len = 64usize;
        let results = on_world(4, move |c| {
            let mut buf = contribution(c.rank(), len);
            allreduce_flat(c, &mut buf).unwrap();
            (c.stats().bytes_sent, c.stats().bytes_received)
        });
        let root_recv = results[0].1;
        assert!(root_recv >= 3 * (len as u64) * 4, "root takes the incast");
    }
}
