//! Consistent decentralized SGD (allreduce data parallelism).
//!
//! The paper's Listing 9, verbatim in structure: three-step prologue,
//! backprop, **allreduce of every gradient**, then the update rule. Three
//! flavours share the type:
//!
//! * `reference` (REF-dsgd) — per-tensor allreduce with the "Python"
//!   NumPy-conversion penalty the paper blames for the ~10× gap,
//! * `optimized` (CDSGD) — the 23-line custom C++/MPI operator: direct
//!   buffers, per-tensor ring allreduce,
//! * `horovod` — fused-buffer allreduce (Horovod's tensor fusion): all
//!   gradients concatenated, one ring allreduce.

use super::{
    apply_update, collect_gradients, conversion_roundtrip, flatten_gradients, local_backprop,
    unflatten_gradients, DistributedOptimizer, SchemeCore,
};
use crate::collectives::{allreduce_ring_among, average_among};
use crate::comm::{CommResult, Communicator};
use deep500_data::Minibatch;
use deep500_graph::GraphExecutor;
use deep500_metrics::{CommunicationVolume, FaultCounters};
use deep500_tensor::{Result, Tensor};
use deep500_train::optimizer::StepResult;
use deep500_train::ThreeStepOptimizer;

/// Gradient-allreduce data-parallel SGD.
pub struct ConsistentDecentralized {
    core: SchemeCore,
    name: &'static str,
    conversion_overhead: bool,
    fused_buffers: bool,
}

impl ConsistentDecentralized {
    /// The optimized direct-buffer variant (the paper's CDSGD).
    pub fn optimized(base: Box<dyn ThreeStepOptimizer>, comm: Box<dyn Communicator>) -> Self {
        ConsistentDecentralized {
            core: SchemeCore::new(base, comm),
            name: "CDSGD",
            conversion_overhead: false,
            fused_buffers: false,
        }
    }

    /// The Python-reference variant (REF-dsgd): pays buffer conversions
    /// around every communication.
    pub fn reference(base: Box<dyn ThreeStepOptimizer>, comm: Box<dyn Communicator>) -> Self {
        ConsistentDecentralized {
            core: SchemeCore::new(base, comm),
            name: "REF-dsgd",
            conversion_overhead: true,
            fused_buffers: false,
        }
    }

    /// Horovod-style fused-buffer allreduce.
    pub fn horovod(base: Box<dyn ThreeStepOptimizer>, comm: Box<dyn Communicator>) -> Self {
        ConsistentDecentralized {
            core: SchemeCore::new(base, comm),
            name: "Horovod",
            conversion_overhead: false,
            fused_buffers: true,
        }
    }
}

impl DistributedOptimizer for ConsistentDecentralized {
    fn name(&self) -> &str {
        self.name
    }

    fn train_step(
        &mut self,
        executor: &mut dyn GraphExecutor,
        batch: &Minibatch,
    ) -> Result<StepResult> {
        let result = local_backprop(self.core.base.as_mut(), executor, batch)?;
        // Graceful degradation: the ring forms over the live group and the
        // average renormalizes by its size. Without faults the live group
        // is the full world and the schedule is bit-identical.
        let live = self.core.comm.live_ranks();
        if self.fused_buffers {
            // One fused allreduce over all gradients.
            let (mut buf, layout) = flatten_gradients(executor)?;
            allreduce_ring_among(self.core.comm.as_mut(), &mut buf, &live)?;
            average_among(&mut buf, live.len());
            let grads = unflatten_gradients(executor, &buf, &layout)?;
            for (pname, grad) in grads {
                apply_update(self.core.base.as_mut(), executor, &pname, &grad)?;
            }
        } else {
            // Per-tensor allreduce, exactly Listing 9's loop.
            for (pname, grad) in collect_gradients(executor)? {
                let mut buf = grad.into_vec();
                if self.conversion_overhead {
                    conversion_roundtrip(&mut buf);
                }
                allreduce_ring_among(self.core.comm.as_mut(), &mut buf, &live)?;
                average_among(&mut buf, live.len());
                if self.conversion_overhead {
                    conversion_roundtrip(&mut buf);
                }
                let shape = executor.network().fetch_tensor(&pname)?.shape().clone();
                let grad = Tensor::from_vec(shape, buf)?;
                apply_update(self.core.base.as_mut(), executor, &pname, &grad)?;
            }
        }
        Ok(result)
    }

    fn comm_stats(&self) -> CommunicationVolume {
        self.core.comm.stats()
    }

    fn virtual_time(&self) -> f64 {
        self.core.comm.elapsed()
    }

    fn begin_step(&mut self, step: u64) -> CommResult<()> {
        self.core.comm.begin_step(step)
    }

    fn advance_virtual(&mut self, seconds: f64) {
        self.core.comm.advance(seconds);
    }

    fn fault_stats(&self) -> FaultCounters {
        self.core.comm.fault_stats()
    }
}
