//! Sign-compressed decentralized SGD (1-bit gradient compression).
//!
//! The paper's "Others" use cases ask: *"What is the reduction in
//! communication over the network, when a certain compression scheme is
//! applied in training?"* — this scheme answers it with the classic
//! signSGD-with-majority-vote compression (Bernstein et al.): each rank
//! transmits only the **sign bit** of every gradient entry plus one scale
//! (the mean magnitude), packing 32 gradients per word — a 32× volume
//! reduction that the `CommunicationVolume` metric measures directly
//! (payloads are priced at their packed bitset size, the
//! `DataType::Bitset` description of the tensor-descriptor system).

use super::{apply_update, collect_gradients, local_backprop, DistributedOptimizer, SchemeCore};
use crate::comm::{CommResult, Communicator};
use deep500_data::Minibatch;
use deep500_graph::GraphExecutor;
use deep500_metrics::{CommunicationVolume, FaultCounters};
use deep500_tensor::{DataType, Result, Tensor};
use deep500_train::optimizer::StepResult;
use deep500_train::ThreeStepOptimizer;

/// Pack signs into 32-bit words (1 = negative). Returns `(words, scale)`.
fn compress(grad: &[f32]) -> (Vec<f32>, f32) {
    let mut words = vec![0u32; grad.len().div_ceil(32)];
    let mut mag = 0.0f64;
    for (i, &g) in grad.iter().enumerate() {
        if g < 0.0 {
            words[i / 32] |= 1 << (i % 32);
        }
        mag += g.abs() as f64;
    }
    let scale = (mag / grad.len().max(1) as f64) as f32;
    // Ship the words through the f32 channel bit-for-bit.
    (words.into_iter().map(f32::from_bits).collect(), scale)
}

/// Unpack sign words back into `±scale` values of length `len`.
fn decompress(words: &[f32], scale: f32, len: usize) -> Vec<f32> {
    let mut out = Vec::with_capacity(len);
    for i in 0..len {
        let bit = (words[i / 32].to_bits() >> (i % 32)) & 1;
        out.push(if bit == 1 { -scale } else { scale });
    }
    out
}

/// signSGD with majority vote: ranks exchange sign bitsets (via gather to
/// rank 0 + broadcast of the vote), and apply `±mean_scale` per entry by
/// the majority sign.
pub struct SignCompressedSgd {
    core: SchemeCore,
}

impl SignCompressedSgd {
    pub fn new(base: Box<dyn ThreeStepOptimizer>, comm: Box<dyn Communicator>) -> Self {
        SignCompressedSgd {
            core: SchemeCore::new(base, comm),
        }
    }

    /// Packed wire size in bytes of an `n`-entry sign payload — the
    /// `DataType::Bitset` description plus one f32 scale.
    pub fn wire_bytes(n: usize) -> usize {
        DataType::Bitset.bytes_for(n) + 4
    }
}

impl DistributedOptimizer for SignCompressedSgd {
    fn name(&self) -> &str {
        "SignSGD"
    }

    fn train_step(
        &mut self,
        executor: &mut dyn GraphExecutor,
        batch: &Minibatch,
    ) -> Result<StepResult> {
        let result = local_backprop(self.core.base.as_mut(), executor, batch)?;
        let world = self.core.comm.world();
        let rank = self.core.comm.rank();
        for (pname, grad) in collect_gradients(executor)? {
            let n = grad.numel();
            let (words, scale) = compress(grad.data());
            let mut payload = words;
            payload.push(scale);
            let wire = Self::wire_bytes(n);

            // Majority vote at rank 0, result broadcast back (both legs at
            // the packed bitset price).
            let voted: Vec<f32>;
            let mean_scale: f32;
            if rank == 0 {
                // votes[i] = number of negative signs; scales averaged.
                let mut votes = vec![0u32; n];
                let mut scales = scale as f64;
                let tally = |votes: &mut [u32], words: &[f32]| {
                    for (i, v) in votes.iter_mut().enumerate() {
                        *v += (words[i / 32].to_bits() >> (i % 32)) & 1;
                    }
                };
                tally(&mut votes, &payload);
                for peer in 1..world {
                    let incoming = self.core.comm.recv(peer)?;
                    scales += incoming[incoming.len() - 1] as f64;
                    tally(&mut votes, &incoming);
                }
                mean_scale = (scales / world as f64) as f32;
                let mut out_words = vec![0u32; n.div_ceil(32)];
                for (i, &v) in votes.iter().enumerate() {
                    if v * 2 > world as u32 {
                        out_words[i / 32] |= 1 << (i % 32);
                    }
                }
                let mut vote_payload: Vec<f32> =
                    out_words.into_iter().map(f32::from_bits).collect();
                vote_payload.push(mean_scale);
                for peer in 1..world {
                    self.core.comm.send_sized(peer, &vote_payload, wire)?;
                }
                voted = vote_payload;
            } else {
                self.core.comm.send_sized(0, &payload, wire)?;
                voted = self.core.comm.recv(0)?;
                mean_scale = voted[voted.len() - 1];
            }
            let dense = decompress(&voted[..voted.len() - 1], mean_scale, n);
            let g = Tensor::from_vec(grad.shape().clone(), dense)?;
            apply_update(self.core.base.as_mut(), executor, &pname, &g)?;
        }
        Ok(result)
    }

    fn comm_stats(&self) -> CommunicationVolume {
        self.core.comm.stats()
    }

    fn virtual_time(&self) -> f64 {
        self.core.comm.elapsed()
    }

    fn begin_step(&mut self, step: u64) -> CommResult<()> {
        self.core.comm.begin_step(step)
    }

    fn advance_virtual(&mut self, seconds: f64) {
        self.core.comm.advance(seconds);
    }

    fn fault_stats(&self) -> FaultCounters {
        self.core.comm.fault_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{DistributedRunner, Variant};
    use deep500_data::synthetic::SyntheticDataset;
    use deep500_graph::models;
    use deep500_tensor::Shape;
    use std::sync::Arc;

    #[test]
    fn compress_roundtrip_preserves_signs_and_scale() {
        let g = [1.5f32, -0.5, 0.25, -2.0, 0.0, 3.0, -1.0];
        let (words, scale) = compress(&g);
        assert_eq!(words.len(), 1);
        let mean: f32 = g.iter().map(|v| v.abs()).sum::<f32>() / g.len() as f32;
        assert!((scale - mean).abs() < 1e-6);
        let back = decompress(&words, scale, g.len());
        for (orig, dec) in g.iter().zip(&back) {
            if *orig < 0.0 {
                assert!(*dec < 0.0, "{orig} vs {dec}");
            } else {
                assert!(*dec >= 0.0, "{orig} vs {dec}");
            }
            assert!((dec.abs() - scale).abs() < 1e-6);
        }
    }

    #[test]
    fn wire_size_is_one_bit_per_entry() {
        assert_eq!(SignCompressedSgd::wire_bytes(32), 8); // 4 B signs + 4 B scale
        assert_eq!(SignCompressedSgd::wire_bytes(33), 9);
        assert_eq!(SignCompressedSgd::wire_bytes(256), 36);
    }

    #[test]
    fn signsgd_trains_and_slashes_volume() {
        let ds: Arc<dyn deep500_data::Dataset> = Arc::new(SyntheticDataset::new(
            "sign",
            Shape::new(&[16]),
            3,
            1024,
            0.25,
            8,
        ));
        let net = models::mlp(16, &[16], 3, 8).unwrap();
        let steps = 25;
        let run = |variant: Variant| {
            DistributedRunner::new(&net, ds.clone())
                .world(4)
                .batch(16)
                .steps(steps)
                .seed(1)
                .learning_rate(0.02)
                .variant(variant)
                .run()
                .unwrap()
        };
        let s = run(Variant::SignSgd);
        let d = run(Variant::Cdsgd);
        // Majority-vote keeps ranks consistent.
        let consistency = s.consistency(1e-6);
        assert!(consistency.is_consistent(), "{consistency}");
        // Loss decreases.
        let head: f32 = s.ranks[0].losses[..5].iter().sum::<f32>() / 5.0;
        let tail: f32 = s.ranks[0].losses[steps - 5..].iter().sum::<f32>() / 5.0;
        assert!(tail < head, "signSGD must learn: {head} -> {tail}");
        // The headline: an order-of-magnitude volume reduction vs dense
        // allreduce (1 bit vs 32 bits, minus the scale and PS-shape costs).
        let sv = s.ranks[1].volume.bytes_sent as f64; // worker rank
        let dv = d.ranks[1].volume.bytes_sent as f64;
        assert!(
            sv < dv / 8.0,
            "compressed {sv} should be well under dense {dv}"
        );
    }
}
