//! Model averaging (MAVG): local SGD with periodic parameter allreduce.
//!
//! Every rank trains independently and every `period` steps the parameter
//! vectors (not gradients) are averaged globally — cheaper than per-step
//! gradient allreduce when the period exceeds one, at some statistical
//! efficiency cost.

use super::{apply_update, collect_gradients, local_backprop, DistributedOptimizer, SchemeCore};
use crate::collectives::{allreduce_ring_among, average_among};
use crate::comm::{CommResult, Communicator};
use deep500_data::Minibatch;
use deep500_graph::GraphExecutor;
use deep500_metrics::{CommunicationVolume, FaultCounters};
use deep500_tensor::{Result, Tensor};
use deep500_train::optimizer::StepResult;
use deep500_train::ThreeStepOptimizer;

/// Periodic model averaging.
pub struct ModelAveraging {
    core: SchemeCore,
    /// Average parameters every this many steps.
    pub period: u64,
    step: u64,
}

impl ModelAveraging {
    pub fn new(
        base: Box<dyn ThreeStepOptimizer>,
        comm: Box<dyn Communicator>,
        period: u64,
    ) -> Self {
        ModelAveraging {
            core: SchemeCore::new(base, comm),
            period: period.max(1),
            step: 0,
        }
    }
}

impl DistributedOptimizer for ModelAveraging {
    fn name(&self) -> &str {
        "MAVG"
    }

    fn train_step(
        &mut self,
        executor: &mut dyn GraphExecutor,
        batch: &Minibatch,
    ) -> Result<StepResult> {
        let result = local_backprop(self.core.base.as_mut(), executor, batch)?;
        for (pname, grad) in collect_gradients(executor)? {
            apply_update(self.core.base.as_mut(), executor, &pname, &grad)?;
        }
        self.step += 1;
        if self.step.is_multiple_of(self.period) {
            // Parameter averaging over the live group: survivors
            // renormalize by the shrunken group size and continue.
            let live = self.core.comm.live_ranks();
            let params: Vec<String> = executor.network().get_params().to_vec();
            for pname in params {
                let current = executor.network().fetch_tensor(&pname)?.clone();
                let mut buf = current.data().to_vec();
                allreduce_ring_among(self.core.comm.as_mut(), &mut buf, &live)?;
                average_among(&mut buf, live.len());
                executor
                    .network_mut()
                    .feed_tensor(pname, Tensor::from_vec(current.shape().clone(), buf)?);
            }
        }
        Ok(result)
    }

    fn comm_stats(&self) -> CommunicationVolume {
        self.core.comm.stats()
    }

    fn virtual_time(&self) -> f64 {
        self.core.comm.elapsed()
    }

    fn begin_step(&mut self, step: u64) -> CommResult<()> {
        self.core.comm.begin_step(step)
    }

    fn advance_virtual(&mut self, seconds: f64) {
        self.core.comm.advance(seconds);
    }

    fn fault_stats(&self) -> FaultCounters {
        self.core.comm.fault_stats()
    }
}
