//! Consistent centralized SGD — the parameter-server architecture.
//!
//! Rank 0 doubles as the (single-shard) parameter server: all ranks
//! compute gradients; workers push them to rank 0; rank 0 averages the
//! full set, applies the base update once, and pushes fresh parameters
//! back (paper Fig. 5a). The per-server message count scales linearly
//! with the number of workers — the incast that caps PS scalability in
//! Fig. 12.

use super::{apply_update, collect_gradients, local_backprop, DistributedOptimizer, SchemeCore};
use crate::comm::{CommError, CommResult, Communicator};
use deep500_data::Minibatch;
use deep500_graph::GraphExecutor;
use deep500_metrics::{CommunicationVolume, FaultCounters};
use deep500_tensor::{Error, Result, Tensor};
use deep500_train::optimizer::StepResult;
use deep500_train::ThreeStepOptimizer;

/// Parameter-server synchronous SGD.
pub struct ConsistentCentralized {
    core: SchemeCore,
}

impl ConsistentCentralized {
    pub fn new(base: Box<dyn ThreeStepOptimizer>, comm: Box<dyn Communicator>) -> Self {
        ConsistentCentralized {
            core: SchemeCore::new(base, comm),
        }
    }
}

impl DistributedOptimizer for ConsistentCentralized {
    fn name(&self) -> &str {
        "PSSGD"
    }

    fn train_step(
        &mut self,
        executor: &mut dyn GraphExecutor,
        batch: &Minibatch,
    ) -> Result<StepResult> {
        let result = local_backprop(self.core.base.as_mut(), executor, batch)?;
        let rank = self.core.comm.rank();
        // Failover: the server is the lowest live rank. Synchronous PS
        // keeps all ranks' parameters identical after every step, so any
        // survivor can take over the server role deterministically. With
        // no faults the server is rank 0 and the schedule is unchanged.
        let live = self.core.comm.live_ranks();
        let server = *live
            .first()
            .ok_or_else(|| CommError::Closed("no live ranks left".into()))?;
        let grads = collect_gradients(executor)?;
        if rank == server {
            // Server: receive every live worker's gradient per parameter,
            // average with our own, update, then push parameters back.
            for (pname, grad) in grads {
                let mut acc = grad.into_vec();
                for &peer in live.iter().filter(|&&p| p != server) {
                    let incoming = self.core.comm.recv(peer)?;
                    if incoming.len() != acc.len() {
                        return Err(Error::Communication(format!(
                            "PS gradient size mismatch for '{pname}'"
                        )));
                    }
                    for (a, b) in acc.iter_mut().zip(incoming) {
                        *a += b;
                    }
                }
                let inv = 1.0 / live.len() as f32;
                acc.iter_mut().for_each(|v| *v *= inv);
                let shape = executor.network().fetch_tensor(&pname)?.shape().clone();
                let grad = Tensor::from_vec(shape, acc)?;
                apply_update(self.core.base.as_mut(), executor, &pname, &grad)?;
                // Broadcast fresh parameters (PS pushes to each worker).
                let fresh = executor.network().fetch_tensor(&pname)?.data().to_vec();
                for &peer in live.iter().filter(|&&p| p != server) {
                    self.core.comm.send(peer, &fresh)?;
                }
            }
        } else {
            for (pname, grad) in grads {
                self.core.comm.send(server, grad.data())?;
                let fresh = self.core.comm.recv(server)?;
                let shape = executor.network().fetch_tensor(&pname)?.shape().clone();
                executor
                    .network_mut()
                    .feed_tensor(pname, Tensor::from_vec(shape, fresh)?);
            }
        }
        Ok(result)
    }

    fn comm_stats(&self) -> CommunicationVolume {
        self.core.comm.stats()
    }

    fn virtual_time(&self) -> f64 {
        self.core.comm.elapsed()
    }

    fn begin_step(&mut self, step: u64) -> CommResult<()> {
        self.core.comm.begin_step(step)
    }

    fn advance_virtual(&mut self, seconds: f64) {
        self.core.comm.advance(seconds);
    }

    fn fault_stats(&self) -> FaultCounters {
        self.core.comm.fault_stats()
    }
}
