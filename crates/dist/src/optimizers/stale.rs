//! Stale-synchronous centralized SGD (paper Fig. 5c).
//!
//! The middle ground between synchronous and asynchronous PS training:
//! workers may run ahead of the slowest worker by at most `max_staleness`
//! versions. Instead of synchronizing with the server *every* step (PSSGD)
//! the worker pushes/pulls only when its local step counter would exceed
//! the last-synchronized server version by the staleness bound — so with
//! bound `s`, communication happens every `s+1` steps, and parameters used
//! in between are up to `s` versions stale.
//!
//! ## Fault tolerance
//!
//! Staleness already tolerates missing updates, which makes this the one
//! centralized scheme that degrades gracefully under message loss: a
//! worker whose push is dropped (after retry exhaustion) simply keeps
//! training on its stale replica and re-synchronizes next round; the
//! server averages over whichever contributions actually arrived. To keep
//! rounds aligned under loss, each rank's sync is a **single fused
//! message tagged with its round number**: the server stashes
//! early next-round pushes and counts the missing round as lost instead
//! of misreading a later message.

use super::{apply_update, collect_gradients, local_backprop, DistributedOptimizer, SchemeCore};
use crate::comm::{CommError, CommResult, Communicator};
use deep500_data::Minibatch;
use deep500_graph::GraphExecutor;
use deep500_metrics::{CommunicationVolume, FaultCounters};
use deep500_tensor::{Error, Result, Tensor};
use deep500_train::optimizer::StepResult;
use deep500_train::ThreeStepOptimizer;
use std::collections::HashMap;

/// Stale-synchronous parameter-server SGD.
pub struct StaleSynchronous {
    core: SchemeCore,
    /// Maximum allowed staleness (0 = fully synchronous).
    pub max_staleness: u64,
    local_step: u64,
    /// Synchronization round counter (tags the fused sync messages).
    sync_round: u64,
    /// Locally accumulated gradients awaiting the next synchronization.
    pending: Vec<(String, Vec<f32>)>,
    /// Server-side: pushes that arrived for a *future* round while the
    /// current round's contribution was lost, keyed by worker.
    stash: HashMap<usize, (u64, Vec<f32>)>,
}

impl StaleSynchronous {
    pub fn new(
        base: Box<dyn ThreeStepOptimizer>,
        comm: Box<dyn Communicator>,
        max_staleness: u64,
    ) -> Self {
        StaleSynchronous {
            core: SchemeCore::new(base, comm),
            max_staleness,
            local_step: 0,
            sync_round: 0,
            pending: Vec::new(),
            stash: HashMap::new(),
        }
    }

    fn accumulate(&mut self, grads: Vec<(String, Tensor)>) {
        if self.pending.is_empty() {
            self.pending = grads.into_iter().map(|(n, g)| (n, g.into_vec())).collect();
        } else {
            for ((_, acc), (_, g)) in self.pending.iter_mut().zip(grads) {
                for (a, b) in acc.iter_mut().zip(g.data()) {
                    *a += b;
                }
            }
        }
    }

    /// Obtain `peer`'s fused contribution for `round`, consuming the stash
    /// or the channel. `Ok(None)` means the contribution is lost (dropped
    /// push, dead or timed-out peer) — the caller skips it.
    fn round_contribution(&mut self, peer: usize, round: u64) -> Result<Option<Vec<f32>>> {
        if let Some((r, payload)) = self.stash.remove(&peer) {
            if r == round {
                return Ok(Some(payload));
            }
            // A future round is already banked: `round` was lost.
            self.stash.insert(peer, (r, payload));
            return Ok(None);
        }
        loop {
            match self.core.comm.recv(peer) {
                Ok(msg) => {
                    if msg.is_empty() {
                        return Err(Error::Communication("empty SSP sync message".into()));
                    }
                    let r = msg[0] as u64;
                    if r == round {
                        return Ok(Some(msg[1..].to_vec()));
                    }
                    if r > round {
                        // The peer's push for `round` was dropped and it
                        // already moved on: bank this one, skip `round`.
                        self.stash.insert(peer, (r, msg[1..].to_vec()));
                        return Ok(None);
                    }
                    // r < round cannot happen (each round pushed at most
                    // once, in order); discard defensively.
                }
                Err(
                    CommError::Timeout { .. }
                    | CommError::RankDead(_)
                    | CommError::Dropped { .. }
                    | CommError::Closed(_),
                ) => return Ok(None),
                Err(e) => return Err(e.into()),
            }
        }
    }
}

impl DistributedOptimizer for StaleSynchronous {
    fn name(&self) -> &str {
        "StaleSyncSGD"
    }

    fn train_step(
        &mut self,
        executor: &mut dyn GraphExecutor,
        batch: &Minibatch,
    ) -> Result<StepResult> {
        let result = local_backprop(self.core.base.as_mut(), executor, batch)?;
        self.local_step += 1;
        let grads = collect_gradients(executor)?;

        // Apply locally right away (staleness: local params drift from the
        // server's between synchronizations) and bank the gradient.
        for (pname, grad) in &grads {
            apply_update(self.core.base.as_mut(), executor, pname, grad)?;
        }
        self.accumulate(grads);

        // Synchronize once the staleness budget is exhausted.
        if !self.local_step.is_multiple_of(self.max_staleness + 1) {
            return Ok(result);
        }
        let round = self.sync_round;
        self.sync_round += 1;
        let rank = self.core.comm.rank();
        // The server is the lowest live rank (failover as in PSSGD; the
        // new server continues from its own replica, which SSP's staleness
        // tolerance absorbs).
        let live = self.core.comm.live_ranks();
        let server = *live
            .first()
            .ok_or_else(|| CommError::Closed("no live ranks left".into()))?;
        let pending = std::mem::take(&mut self.pending);
        let layout: Vec<(String, usize)> =
            pending.iter().map(|(n, v)| (n.clone(), v.len())).collect();
        if rank == server {
            // Fuse our own banked gradients, then fold in whichever
            // worker contributions actually arrive for this round.
            let mut acc: Vec<f32> = pending.into_iter().flat_map(|(_, v)| v).collect();
            let mut contributors = vec![server];
            let workers: Vec<usize> = live.iter().copied().filter(|&p| p != server).collect();
            for peer in workers {
                match self.round_contribution(peer, round)? {
                    Some(contrib) => {
                        if contrib.len() != acc.len() {
                            return Err(Error::Communication(format!(
                                "SSP fused size mismatch: {} vs {}",
                                contrib.len(),
                                acc.len()
                            )));
                        }
                        for (a, b) in acc.iter_mut().zip(contrib) {
                            *a += b;
                        }
                        contributors.push(peer);
                    }
                    None => {
                        // Lost contribution: recover by continuing without
                        // it — staleness absorbs the gap.
                        self.core.comm.record_lost(1);
                    }
                }
            }
            let inv = 1.0 / contributors.len() as f32;
            acc.iter_mut().for_each(|v| *v *= inv);
            // Apply the averaged accumulated gradient, then push fresh
            // parameters (fused, round-tagged) back to the contributors.
            let mut off = 0usize;
            let mut fresh = vec![round as f32];
            for (pname, len) in &layout {
                let shape = executor.network().fetch_tensor(pname)?.shape().clone();
                let g = Tensor::from_vec(shape, acc[off..off + len].to_vec())?;
                apply_update(self.core.base.as_mut(), executor, pname, &g)?;
                fresh.extend_from_slice(executor.network().fetch_tensor(pname)?.data());
                off += len;
            }
            for &peer in contributors.iter().filter(|&&p| p != server) {
                match self.core.comm.send(peer, &fresh) {
                    Ok(()) => {}
                    Err(
                        CommError::Dropped { .. } | CommError::RankDead(_) | CommError::Closed(_),
                    ) => {
                        // The contributor misses this round's fresh params
                        // and keeps its stale replica — staleness absorbs
                        // the divergence. (Closed: the peer already finished
                        // its run and left; the reply is moot.)
                        self.core.comm.record_lost(1);
                    }
                    Err(e) => return Err(e.into()),
                }
            }
        } else {
            let mut payload = vec![round as f32];
            for (_, v) in &pending {
                payload.extend_from_slice(v);
            }
            match self.core.comm.send(server, &payload) {
                Ok(()) => {
                    // The push landed, so the server counts us as a
                    // contributor and replies with fused fresh params —
                    // unless that reply is itself dropped, in which case we
                    // keep the stale replica (staleness absorbs it).
                    loop {
                        match self.core.comm.recv(server) {
                            Ok(reply) => {
                                let r = reply.first().map(|&r| r as u64);
                                if r < Some(round) {
                                    // A late reply from a round we already
                                    // gave up on: old news, discard.
                                    continue;
                                }
                                if r != Some(round) {
                                    return Err(Error::Communication(format!(
                                        "SSP reply round mismatch at round {round}"
                                    )));
                                }
                                let mut off = 1usize;
                                for (pname, len) in &layout {
                                    let shape =
                                        executor.network().fetch_tensor(pname)?.shape().clone();
                                    executor.network_mut().feed_tensor(
                                        pname.clone(),
                                        Tensor::from_vec(shape, reply[off..off + len].to_vec())?,
                                    );
                                    off += len;
                                }
                                break;
                            }
                            Err(
                                CommError::Timeout { .. }
                                | CommError::Dropped { .. }
                                | CommError::RankDead(_)
                                | CommError::Closed(_),
                            ) => {
                                // Reply lost (or server gone): train on.
                                self.core.comm.record_lost(1);
                                break;
                            }
                            Err(e) => return Err(e.into()),
                        }
                    }
                }
                Err(CommError::Dropped { .. } | CommError::RankDead(_) | CommError::Closed(_)) => {
                    // This round's sync is lost (dropped push, or the server
                    // already finished its run and left): keep training on
                    // the stale replica and re-synchronize next round.
                    self.core.comm.record_lost(1);
                }
                Err(e) => return Err(e.into()),
            }
        }
        Ok(result)
    }

    fn comm_stats(&self) -> CommunicationVolume {
        self.core.comm.stats()
    }

    fn virtual_time(&self) -> f64 {
        self.core.comm.elapsed()
    }

    fn begin_step(&mut self, step: u64) -> CommResult<()> {
        self.core.comm.begin_step(step)
    }

    fn advance_virtual(&mut self, seconds: f64) {
        self.core.comm.advance(seconds);
    }

    fn fault_stats(&self) -> FaultCounters {
        self.core.comm.fault_stats()
    }
}
