//! Stale-synchronous centralized SGD (paper Fig. 5c).
//!
//! The middle ground between synchronous and asynchronous PS training:
//! workers may run ahead of the slowest worker by at most `max_staleness`
//! versions. Instead of synchronizing with the server *every* step (PSSGD)
//! the worker pushes/pulls only when its local step counter would exceed
//! the last-synchronized server version by the staleness bound — so with
//! bound `s`, communication happens every `s+1` steps, and parameters used
//! in between are up to `s` versions stale.

use super::{apply_update, collect_gradients, local_backprop, DistributedOptimizer, SchemeCore};
use crate::comm::Communicator;
use deep500_data::Minibatch;
use deep500_graph::GraphExecutor;
use deep500_metrics::CommunicationVolume;
use deep500_tensor::{Result, Tensor};
use deep500_train::optimizer::StepResult;
use deep500_train::ThreeStepOptimizer;

/// Stale-synchronous parameter-server SGD.
pub struct StaleSynchronous {
    core: SchemeCore,
    /// Maximum allowed staleness (0 = fully synchronous).
    pub max_staleness: u64,
    local_step: u64,
    /// Locally accumulated gradients awaiting the next synchronization.
    pending: Vec<(String, Vec<f32>)>,
}

impl StaleSynchronous {
    pub fn new(
        base: Box<dyn ThreeStepOptimizer>,
        comm: Box<dyn Communicator>,
        max_staleness: u64,
    ) -> Self {
        StaleSynchronous {
            core: SchemeCore::new(base, comm),
            max_staleness,
            local_step: 0,
            pending: Vec::new(),
        }
    }

    fn accumulate(&mut self, grads: Vec<(String, Tensor)>) {
        if self.pending.is_empty() {
            self.pending = grads.into_iter().map(|(n, g)| (n, g.into_vec())).collect();
        } else {
            for ((_, acc), (_, g)) in self.pending.iter_mut().zip(grads) {
                for (a, b) in acc.iter_mut().zip(g.data()) {
                    *a += b;
                }
            }
        }
    }
}

impl DistributedOptimizer for StaleSynchronous {
    fn name(&self) -> &str {
        "StaleSyncSGD"
    }

    fn train_step(
        &mut self,
        executor: &mut dyn GraphExecutor,
        batch: &Minibatch,
    ) -> Result<StepResult> {
        let result = local_backprop(self.core.base.as_mut(), executor, batch)?;
        self.local_step += 1;
        let grads = collect_gradients(executor)?;

        // Apply locally right away (staleness: local params drift from the
        // server's between synchronizations) and bank the gradient.
        for (pname, grad) in &grads {
            apply_update(self.core.base.as_mut(), executor, pname, grad)?;
        }
        self.accumulate(grads);

        // Synchronize once the staleness budget is exhausted.
        if !self.local_step.is_multiple_of(self.max_staleness + 1) {
            return Ok(result);
        }
        let world = self.core.comm.world();
        let rank = self.core.comm.rank();
        let pending = std::mem::take(&mut self.pending);
        if rank == 0 {
            for (pname, own) in pending {
                let mut acc = own;
                for peer in 1..world {
                    let incoming = self.core.comm.recv(peer)?;
                    for (a, b) in acc.iter_mut().zip(incoming) {
                        *a += b;
                    }
                }
                // Server holds the authoritative params: replace local ones
                // with the average of everyone's drifted replicas... the
                // canonical SSP server applies the *sum of gradients* to its
                // own copy; workers then adopt the server state.
                let inv = 1.0 / world as f32;
                acc.iter_mut().for_each(|v| *v *= inv);
                let shape = executor.network().fetch_tensor(&pname)?.shape().clone();
                let g = Tensor::from_vec(shape, acc)?;
                apply_update(self.core.base.as_mut(), executor, &pname, &g)?;
                let fresh = executor.network().fetch_tensor(&pname)?.data().to_vec();
                for peer in 1..world {
                    self.core.comm.send(peer, &fresh)?;
                }
            }
        } else {
            for (pname, own) in pending {
                self.core.comm.send(0, &own)?;
                let fresh = self.core.comm.recv(0)?;
                let shape = executor.network().fetch_tensor(&pname)?.shape().clone();
                executor
                    .network_mut()
                    .feed_tensor(pname, Tensor::from_vec(shape, fresh)?);
            }
        }
        Ok(result)
    }

    fn comm_stats(&self) -> CommunicationVolume {
        self.core.comm.stats()
    }

    fn virtual_time(&self) -> f64 {
        self.core.comm.elapsed()
    }
}
