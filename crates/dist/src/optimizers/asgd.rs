//! Inconsistent centralized SGD — asynchronous parameter server (Fig. 5b).
//!
//! Workers push gradients and pull whatever parameters the server holds
//! *right now*; the server applies each gradient immediately against its
//! current (possibly newer) parameters — HOGWILD-style inconsistency.
//! No barrier exists between workers, but "despite being asynchronous,
//! ASGD becomes slower the more worker nodes queue up to communicate"
//! (§V-E) — the serialization shows up in the virtual clock because every
//! delivery occupies the server endpoint.

use super::{apply_update, collect_gradients, local_backprop, DistributedOptimizer, SchemeCore};
use crate::comm::{CommResult, Communicator};
use deep500_data::Minibatch;
use deep500_graph::GraphExecutor;
use deep500_metrics::{CommunicationVolume, FaultCounters};
use deep500_tensor::{Result, Tensor};
use deep500_train::optimizer::StepResult;
use deep500_train::ThreeStepOptimizer;

/// Asynchronous parameter-server SGD.
pub struct InconsistentCentralized {
    core: SchemeCore,
    /// Server-side gradient application counter (version vector).
    pub updates_applied: u64,
}

impl InconsistentCentralized {
    pub fn new(base: Box<dyn ThreeStepOptimizer>, comm: Box<dyn Communicator>) -> Self {
        InconsistentCentralized {
            core: SchemeCore::new(base, comm),
            updates_applied: 0,
        }
    }
}

impl DistributedOptimizer for InconsistentCentralized {
    fn name(&self) -> &str {
        "ASGD"
    }

    fn train_step(
        &mut self,
        executor: &mut dyn GraphExecutor,
        batch: &Minibatch,
    ) -> Result<StepResult> {
        let result = local_backprop(self.core.base.as_mut(), executor, batch)?;
        let world = self.core.comm.world();
        let rank = self.core.comm.rank();
        let grads = collect_gradients(executor)?;
        if rank == 0 {
            // Server: apply own gradient, then serve each worker's push in
            // arrival order — each against the *current* parameters, and
            // reply with whatever the parameters are at that moment
            // (inconsistent reads).
            for (pname, grad) in grads {
                apply_update(self.core.base.as_mut(), executor, &pname, &grad)?;
                self.updates_applied += 1;
                for peer in 1..world {
                    let incoming = self.core.comm.recv(peer)?;
                    let shape = executor.network().fetch_tensor(&pname)?.shape().clone();
                    let g = Tensor::from_vec(shape, incoming)?;
                    apply_update(self.core.base.as_mut(), executor, &pname, &g)?;
                    self.updates_applied += 1;
                    let current = executor.network().fetch_tensor(&pname)?.data().to_vec();
                    self.core.comm.send(peer, &current)?;
                }
            }
        } else {
            for (pname, grad) in grads {
                self.core.comm.send(0, grad.data())?;
                let fresh = self.core.comm.recv(0)?;
                let shape = executor.network().fetch_tensor(&pname)?.shape().clone();
                executor
                    .network_mut()
                    .feed_tensor(pname, Tensor::from_vec(shape, fresh)?);
            }
        }
        Ok(result)
    }

    fn comm_stats(&self) -> CommunicationVolume {
        self.core.comm.stats()
    }

    fn virtual_time(&self) -> f64 {
        self.core.comm.elapsed()
    }

    fn begin_step(&mut self, step: u64) -> CommResult<()> {
        self.core.comm.begin_step(step)
    }

    fn advance_virtual(&mut self, seconds: f64) {
        self.core.comm.advance(seconds);
    }

    fn fault_stats(&self) -> FaultCounters {
        self.core.comm.fault_stats()
    }
}
