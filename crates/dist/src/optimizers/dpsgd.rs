//! Decentralized neighbor-based SGD (DPSGD, Lian et al. style).
//!
//! Each rank updates locally, then averages its *parameters* with its two
//! ring neighbors — "DPSGD communication volume remains constant with
//! respect to the number of nodes, but usually converges slower and to a
//! less accurate result" (§V-E).

use super::{apply_update, collect_gradients, local_backprop, DistributedOptimizer, SchemeCore};
use crate::collectives::neighbor_exchange_among;
use crate::comm::{CommResult, Communicator};
use deep500_data::Minibatch;
use deep500_graph::GraphExecutor;
use deep500_metrics::{CommunicationVolume, FaultCounters};
use deep500_tensor::{Result, Tensor};
use deep500_train::optimizer::StepResult;
use deep500_train::ThreeStepOptimizer;

/// Gossip (neighbor-averaging) decentralized SGD.
pub struct DecentralizedNeighbor {
    core: SchemeCore,
}

impl DecentralizedNeighbor {
    pub fn new(base: Box<dyn ThreeStepOptimizer>, comm: Box<dyn Communicator>) -> Self {
        DecentralizedNeighbor {
            core: SchemeCore::new(base, comm),
        }
    }
}

impl DistributedOptimizer for DecentralizedNeighbor {
    fn name(&self) -> &str {
        "DPSGD"
    }

    fn train_step(
        &mut self,
        executor: &mut dyn GraphExecutor,
        batch: &Minibatch,
    ) -> Result<StepResult> {
        let result = local_backprop(self.core.base.as_mut(), executor, batch)?;
        // Local update with the local gradient.
        for (pname, grad) in collect_gradients(executor)? {
            apply_update(self.core.base.as_mut(), executor, &pname, &grad)?;
        }
        // Gossip: average each parameter with ring neighbors. The ring
        // re-forms over the live group when ranks crash (full group =
        // identical schedule).
        let live = self.core.comm.live_ranks();
        let params: Vec<String> = executor.network().get_params().to_vec();
        for pname in params {
            let current = executor.network().fetch_tensor(&pname)?.clone();
            let averaged = neighbor_exchange_among(self.core.comm.as_mut(), current.data(), &live)?;
            executor
                .network_mut()
                .feed_tensor(pname, Tensor::from_vec(current.shape().clone(), averaged)?);
        }
        Ok(result)
    }

    fn comm_stats(&self) -> CommunicationVolume {
        self.core.comm.stats()
    }

    fn virtual_time(&self) -> f64 {
        self.core.comm.elapsed()
    }

    fn begin_step(&mut self, step: u64) -> CommResult<()> {
        self.core.comm.begin_step(step)
    }

    fn advance_virtual(&mut self, seconds: f64) {
        self.core.comm.advance(seconds);
    }

    fn fault_stats(&self) -> FaultCounters {
        self.core.comm.fault_stats()
    }
}
