//! SparCML: top-k sparse gradient allreduce.
//!
//! "The custom distributed communication scheme SparCML, written as a
//! custom Deep500 operator" (§V-E): gradients are sparsified to their
//! top-k entries, exchanged with the recursive-doubling sparse allreduce,
//! and the merged (denser) result is applied. The paper observes up to 2×
//! volume reduction at 8 nodes, eroding as the vectors densify with node
//! count — both effects emerge from the real [`sparse_allreduce`] here.

use super::{apply_update, local_backprop, DistributedOptimizer, SchemeCore};
use crate::comm::{CommResult, Communicator};
use crate::sparse::{sparse_allreduce, SparseVector};
use deep500_data::Minibatch;
use deep500_graph::GraphExecutor;
use deep500_metrics::{CommunicationVolume, FaultCounters};
use deep500_tensor::{Result, Tensor};
use deep500_train::optimizer::StepResult;
use deep500_train::ThreeStepOptimizer;

/// Sparse-allreduce data-parallel SGD.
pub struct SparseDecentralized {
    core: SchemeCore,
    /// Fraction of gradient entries kept (top-k by magnitude).
    pub density: f64,
    /// Density of the merged vector observed in the last step, per
    /// parameter (diagnostics for the densification analysis).
    pub last_merged_density: Vec<(String, f64)>,
}

impl SparseDecentralized {
    pub fn new(
        base: Box<dyn ThreeStepOptimizer>,
        comm: Box<dyn Communicator>,
        density: f64,
    ) -> Self {
        assert!(
            (0.0..=1.0).contains(&density) && density > 0.0,
            "density must be in (0, 1]"
        );
        SparseDecentralized {
            core: SchemeCore::new(base, comm),
            density,
            last_merged_density: Vec::new(),
        }
    }
}

impl DistributedOptimizer for SparseDecentralized {
    fn name(&self) -> &str {
        "SparCML"
    }

    fn train_step(
        &mut self,
        executor: &mut dyn GraphExecutor,
        batch: &Minibatch,
    ) -> Result<StepResult> {
        let result = local_backprop(self.core.base.as_mut(), executor, batch)?;
        self.last_merged_density.clear();
        let grad_pairs: Vec<(String, String)> = executor.network().gradient();
        for (pname, gname) in grad_pairs {
            let grad = executor.network().fetch_tensor(&gname)?.clone();
            // Sparsify: the "filter the dense gradient to the sparse
            // representation" cost the paper mentions is the top-k select.
            let k = ((grad.numel() as f64 * self.density).ceil() as usize).max(1);
            let local = SparseVector::top_k(grad.data(), k);
            let merged = sparse_allreduce(self.core.comm.as_mut(), local)?;
            self.last_merged_density
                .push((pname.clone(), merged.density()));
            let mut dense = merged.to_dense();
            let inv = 1.0 / self.core.comm.world() as f32;
            dense.iter_mut().for_each(|v| *v *= inv);
            let sparse_grad = Tensor::from_vec(grad.shape().clone(), dense)?;
            apply_update(self.core.base.as_mut(), executor, &pname, &sparse_grad)?;
        }
        Ok(result)
    }

    fn comm_stats(&self) -> CommunicationVolume {
        self.core.comm.stats()
    }

    fn virtual_time(&self) -> f64 {
        self.core.comm.elapsed()
    }

    fn begin_step(&mut self, step: u64) -> CommResult<()> {
        self.core.comm.begin_step(step)
    }

    fn advance_virtual(&mut self, seconds: f64) {
        self.core.comm.advance(seconds);
    }

    fn fault_stats(&self) -> FaultCounters {
        self.core.comm.fault_stats()
    }
}
