//! Distributed optimizers (paper §IV-F).
//!
//! Each scheme wraps a Level-2 [`ThreeStepOptimizer`](deep500_train::ThreeStepOptimizer)
//! and splices
//! communication between backpropagation and the update rule — the design
//! that lets "implementing a custom optimizer based on these methods
//! automatically grant distribution capabilities". The provided variants
//! mirror the paper's §V-E lineup:
//!
//! | paper name | type |
//! |---|---|
//! | REF-dsgd / CDSGD | [`dsgd::ConsistentDecentralized`] (reference vs optimized flavour) |
//! | Horovod | [`dsgd::ConsistentDecentralized::horovod`] (fused-buffer allreduce) |
//! | REF-pssgd (TF-PS-like) | [`pssgd::ConsistentCentralized`] |
//! | REF-asgd | [`asgd::InconsistentCentralized`] |
//! | stale-synchronous | [`stale::StaleSynchronous`] |
//! | REF-dpsgd | [`dpsgd::DecentralizedNeighbor`] |
//! | REF-mavg | [`mavg::ModelAveraging`] |
//! | SparCML | [`sparcml::SparseDecentralized`] |

pub mod asgd;
pub mod dpsgd;
pub mod dsgd;
pub mod mavg;
pub mod pssgd;
pub mod signsgd;
pub mod sparcml;
pub mod stale;

use crate::comm::{CommResult, Communicator};
use deep500_data::Minibatch;
use deep500_graph::{grad_name, GraphExecutor};
use deep500_metrics::{CommunicationVolume, FaultCounters};
use deep500_tensor::{Result, Tensor};
use deep500_train::optimizer::StepResult;

/// A per-rank distributed training scheme.
pub trait DistributedOptimizer: Send {
    /// Scheme name for reports.
    fn name(&self) -> &str;

    /// One distributed training iteration on this rank's minibatch shard.
    fn train_step(
        &mut self,
        executor: &mut dyn GraphExecutor,
        batch: &Minibatch,
    ) -> Result<StepResult>;

    /// Communication counters of this rank.
    fn comm_stats(&self) -> CommunicationVolume;

    /// This rank's virtual time (compute + modeled communication).
    fn virtual_time(&self) -> f64;

    /// Announce the beginning of training step `step` to the communication
    /// layer. Under a fault plan this is where planned rank crashes fire
    /// (`Err(RankDead)` on the crashing rank) and where survivors observe
    /// group shrinkage; without faults it is a no-op.
    fn begin_step(&mut self, _step: u64) -> CommResult<()> {
        Ok(())
    }

    /// Charge measured local compute seconds to this rank's virtual clock
    /// (straggler plans stretch them).
    fn advance_virtual(&mut self, _seconds: f64) {}

    /// Fault-injection and recovery counters of this rank's communicator
    /// (all zero without a fault plan).
    fn fault_stats(&self) -> FaultCounters {
        FaultCounters::default()
    }
}

/// `(parameter name, gradient tensor)` pairs.
pub(crate) type NamedGradients = Vec<(String, Tensor)>;

/// Fetch every parameter gradient as `(param name, gradient)` pairs.
pub(crate) fn collect_gradients(executor: &dyn GraphExecutor) -> Result<NamedGradients> {
    executor
        .network()
        .gradient()
        .into_iter()
        .map(|(pname, gname)| Ok((pname, executor.network().fetch_tensor(&gname)?.clone())))
        .collect()
}

/// Run the local (non-communication) part of a step: three-step prologue +
/// inference-and-backprop. Returns the step result; gradients are left in
/// the network for the scheme to communicate.
pub(crate) fn local_backprop(
    base: &mut dyn deep500_train::ThreeStepOptimizer,
    executor: &mut dyn GraphExecutor,
    batch: &Minibatch,
) -> Result<StepResult> {
    base.new_input();
    let params: Vec<String> = executor.network().get_params().to_vec();
    for pname in &params {
        let param = executor.network().fetch_tensor(pname)?;
        if let Some(adjusted) = base.prepare_param(pname, param) {
            executor.network_mut().feed_tensor(pname.clone(), adjusted);
        }
    }
    let outputs = executor.inference_and_backprop(&batch.feeds(), "loss")?;
    let loss = outputs["loss"].data()[0];
    let acc = outputs
        .get("logits")
        .and_then(|l| deep500_ops::loss::accuracy(l, &batch.labels).ok());
    Ok(StepResult {
        loss,
        accuracy: acc,
    })
}

/// Apply the base update rule with an already-communicated gradient.
pub(crate) fn apply_update(
    base: &mut dyn deep500_train::ThreeStepOptimizer,
    executor: &mut dyn GraphExecutor,
    pname: &str,
    grad: &Tensor,
) -> Result<()> {
    let old = executor.network().fetch_tensor(pname)?.clone();
    let updated = base.update_rule(grad, &old, pname)?;
    executor
        .network_mut()
        .feed_tensor(pname.to_string(), updated);
    Ok(())
}

/// A fused gradient buffer plus its `(parameter, element count)` layout.
pub(crate) type FusedGradients = (Vec<f32>, Vec<(String, usize)>);

/// Flatten all gradients into one fused buffer (Horovod-style tensor
/// fusion); returns the buffer and the layout for unflattening.
pub(crate) fn flatten_gradients(executor: &dyn GraphExecutor) -> Result<FusedGradients> {
    let mut buf = Vec::new();
    let mut layout = Vec::new();
    for (pname, gname) in executor.network().gradient() {
        let g = executor.network().fetch_tensor(&gname)?;
        layout.push((pname, g.numel()));
        buf.extend_from_slice(g.data());
    }
    Ok((buf, layout))
}

/// Write a fused gradient buffer back into per-parameter tensors inside
/// the network value store.
pub(crate) fn unflatten_gradients(
    executor: &mut dyn GraphExecutor,
    buf: &[f32],
    layout: &[(String, usize)],
) -> Result<Vec<(String, Tensor)>> {
    let mut out = Vec::with_capacity(layout.len());
    let mut off = 0usize;
    for (pname, len) in layout {
        let shape = executor.network().fetch_tensor(pname)?.shape().clone();
        let t = Tensor::from_vec(shape, buf[off..off + len].to_vec())?;
        executor
            .network_mut()
            .feed_tensor(grad_name(pname), t.clone());
        out.push((pname.clone(), t));
        off += len;
    }
    Ok(out)
}

/// The "Python reference" conversion penalty: the paper's REF
/// implementations pay NumPy array conversions around every communication;
/// we reproduce it as a real f32→f64→f32 round trip over the buffer.
pub(crate) fn conversion_roundtrip(buf: &mut [f32]) {
    let wide: Vec<f64> = buf.iter().map(|&v| v as f64).collect();
    for (dst, &src) in buf.iter_mut().zip(std::hint::black_box(&wide)) {
        *dst = src as f32;
    }
}

/// Shared communicator-owning plumbing for the schemes.
pub(crate) struct SchemeCore {
    pub base: Box<dyn deep500_train::ThreeStepOptimizer>,
    pub comm: Box<dyn Communicator>,
}

impl SchemeCore {
    pub fn new(
        base: Box<dyn deep500_train::ThreeStepOptimizer>,
        comm: Box<dyn Communicator>,
    ) -> Self {
        SchemeCore { base, comm }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deep500_graph::{models, Engine};
    use deep500_train::sgd::GradientDescent;

    #[test]
    fn flatten_unflatten_roundtrip() {
        let net = models::mlp(4, &[3], 2, 1).unwrap();
        let engine = Engine::builder(net).build().unwrap();
        let mut ex = engine.lock();
        let batch = Minibatch {
            x: Tensor::ones([2, 4]),
            labels: Tensor::from_slice(&[0.0, 1.0]),
        };
        let mut sgd = GradientDescent::new(0.1);
        local_backprop(&mut sgd, &mut *ex, &batch).unwrap();
        let before = collect_gradients(&*ex).unwrap();
        let (buf, layout) = flatten_gradients(&*ex).unwrap();
        assert_eq!(
            buf.len(),
            before.iter().map(|(_, g)| g.numel()).sum::<usize>()
        );
        let after = unflatten_gradients(&mut *ex, &buf, &layout).unwrap();
        for ((n1, g1), (n2, g2)) in before.iter().zip(&after) {
            assert_eq!(n1, n2);
            assert_eq!(g1, g2);
        }
    }

    #[test]
    fn conversion_roundtrip_is_value_preserving() {
        let mut buf = vec![1.5f32, -2.25, 1e-7];
        let orig = buf.clone();
        conversion_roundtrip(&mut buf);
        assert_eq!(buf, orig);
    }
}
