//! Distributed training orchestration over the thread transport.
//!
//! [`DistributedRunner`] is the single entry point for Level-3 training
//! runs: a builder that picks the world size, scheme [`Variant`], network
//! model, executor, and (optionally) a seeded [`FaultPlan`], then spawns
//! one OS thread per rank — the reproduction's analogue of the paper's
//! "OS forking to turn an existing Python application into an MPI-capable
//! one":
//!
//! ```ignore
//! let report = DistributedRunner::new(&network, dataset)
//!     .world(4)
//!     .variant(Variant::Cdsgd)
//!     .network(NetworkModel::aries())
//!     .faults(FaultPlan::seeded(7).with_drops(0.1, 3))
//!     .run()?;
//! assert!(report.consistency(1e-5).is_consistent());
//! ```
//!
//! The result is a [`RunReport`]: per-rank losses, parameters, volumes,
//! virtual times, fault counters, and a [`RankStatus`] that distinguishes
//! planned crashes from failures. [`ranks_consistent`] produces a
//! [`ConsistencyReport`] that *names* the diverging ranks and parameters
//! instead of a bare boolean.

use crate::comm::{CommError, Communicator, ThreadCommunicator, ThreadTransport};
use crate::fault::{FaultPlan, FaultyCommunicator};
use crate::netmodel::NetworkModel;
use crate::optimizers::{
    asgd::InconsistentCentralized, dpsgd::DecentralizedNeighbor, dsgd::ConsistentDecentralized,
    mavg::ModelAveraging, pssgd::ConsistentCentralized, signsgd::SignCompressedSgd,
    sparcml::SparseDecentralized, stale::StaleSynchronous, DistributedOptimizer,
};
use crate::tracing::TracingCommunicator;
use deep500_data::sampler::{DatasetSampler, ShardedSampler};
use deep500_data::Dataset;
use deep500_graph::{Engine, ExecutorKind, Network};
use deep500_metrics::trace::{OpAttribution, TraceRecorder};
use deep500_metrics::{CommunicationVolume, FaultCounters};
use deep500_tensor::{Error, Result};
use deep500_train::sgd::GradientDescent;
use std::fmt;
use std::sync::Arc;
use std::thread;

/// Everything a rank's closure receives.
pub struct RankContext {
    pub rank: usize,
    pub world: usize,
    pub comm: ThreadCommunicator,
}

/// Spawn `world` rank threads running `f`; returns per-rank results in
/// join order. Any rank error aborts the whole run.
fn spawn_ranks<T: Send + 'static>(
    world: usize,
    model: NetworkModel,
    f: impl Fn(RankContext) -> Result<T> + Send + Sync + Clone + 'static,
) -> Result<Vec<T>> {
    let comms = ThreadTransport::create(world, model);
    let handles: Vec<_> = comms
        .into_iter()
        .enumerate()
        .map(|(rank, comm)| {
            let f = f.clone();
            thread::Builder::new()
                .name(format!("d5-rank{rank}"))
                .spawn(move || f(RankContext { rank, world, comm }))
                .expect("spawn rank thread")
        })
        .collect();
    let mut results = Vec::with_capacity(world);
    let mut first_err = None;
    for h in handles {
        match h.join() {
            Ok(Ok(v)) => results.push(v),
            Ok(Err(e)) => first_err = first_err.or(Some(e)),
            Err(_) => {
                first_err = first_err.or(Some(Error::Communication("rank thread panicked".into())))
            }
        }
    }
    match first_err {
        Some(e) => Err(e),
        None => Ok(results),
    }
}

/// Per-rank parameters-and-losses summary consumed by the cross-rank
/// consistency checks ([`ranks_consistent`]).
#[derive(Debug, Clone)]
pub struct RankResult {
    pub rank: usize,
    /// Loss after each step on this rank.
    pub losses: Vec<f32>,
    /// Final parameters (name → flat values) for cross-rank checks.
    pub final_params: Vec<(String, Vec<f32>)>,
    /// Communication counters.
    pub volume: CommunicationVolume,
    /// Virtual time (compute + modeled communication).
    pub virtual_time: f64,
}

/// Factory signature of [`Variant::Custom`].
pub type CustomFactory =
    Arc<dyn Fn(Box<dyn Communicator>) -> Box<dyn DistributedOptimizer> + Send + Sync>;

/// The distributed SGD variant a [`DistributedRunner`] trains with
/// (paper §IV-F/§V-E lineup).
#[derive(Clone)]
pub enum Variant {
    /// Consistent decentralized SGD, optimized direct-buffer flavour.
    Cdsgd,
    /// Consistent decentralized SGD with the Python-reference conversion
    /// penalty.
    RefDsgd,
    /// Fused-buffer (Horovod-style) allreduce.
    Horovod,
    /// Synchronous parameter server.
    Pssgd,
    /// Asynchronous parameter server.
    Asgd,
    /// Stale-synchronous parameter server.
    StaleSynchronous {
        /// Maximum parameter staleness (0 = fully synchronous).
        max_staleness: u64,
    },
    /// Decentralized neighbor gossip.
    Dpsgd,
    /// Periodic model averaging.
    Mavg {
        /// Average parameters every this many steps.
        period: u64,
    },
    /// SparCML top-k sparse allreduce.
    SparCml {
        /// Fraction of gradient entries kept.
        density: f64,
    },
    /// signSGD with majority vote.
    SignSgd,
    /// A user-provided scheme factory.
    Custom(&'static str, CustomFactory),
}

impl Variant {
    /// Scheme name (matches the per-scheme `DistributedOptimizer::name`).
    pub fn name(&self) -> &'static str {
        match self {
            Variant::Cdsgd => "CDSGD",
            Variant::RefDsgd => "REF-dsgd",
            Variant::Horovod => "Horovod",
            Variant::Pssgd => "PSSGD",
            Variant::Asgd => "ASGD",
            Variant::StaleSynchronous { .. } => "StaleSyncSGD",
            Variant::Dpsgd => "DPSGD",
            Variant::Mavg { .. } => "MAVG",
            Variant::SparCml { .. } => "SparCML",
            Variant::SignSgd => "SignSGD",
            Variant::Custom(name, _) => name,
        }
    }

    /// Whether the variant degrades gracefully when ranks crash
    /// (decentralized group re-formation or staleness tolerance) rather
    /// than failing over/aborting.
    pub fn survives_crashes(&self) -> bool {
        matches!(
            self,
            Variant::Cdsgd
                | Variant::RefDsgd
                | Variant::Horovod
                | Variant::Dpsgd
                | Variant::Mavg { .. }
                | Variant::StaleSynchronous { .. }
        )
    }

    /// Build the per-rank scheme over `comm` with a gradient-descent base
    /// optimizer at learning rate `lr`.
    fn build(&self, lr: f32, comm: Box<dyn Communicator>) -> Box<dyn DistributedOptimizer> {
        let base = Box::new(GradientDescent::new(lr));
        match self {
            Variant::Cdsgd => Box::new(ConsistentDecentralized::optimized(base, comm)),
            Variant::RefDsgd => Box::new(ConsistentDecentralized::reference(base, comm)),
            Variant::Horovod => Box::new(ConsistentDecentralized::horovod(base, comm)),
            Variant::Pssgd => Box::new(ConsistentCentralized::new(base, comm)),
            Variant::Asgd => Box::new(InconsistentCentralized::new(base, comm)),
            Variant::StaleSynchronous { max_staleness } => {
                Box::new(StaleSynchronous::new(base, comm, *max_staleness))
            }
            Variant::Dpsgd => Box::new(DecentralizedNeighbor::new(base, comm)),
            Variant::Mavg { period } => Box::new(ModelAveraging::new(base, comm, *period)),
            Variant::SparCml { density } => {
                Box::new(SparseDecentralized::new(base, comm, *density))
            }
            Variant::SignSgd => Box::new(SignCompressedSgd::new(base, comm)),
            Variant::Custom(_, factory) => factory(comm),
        }
    }
}

impl fmt::Debug for Variant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Variant({})", self.name())
    }
}

/// How a rank's run ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RankStatus {
    /// All steps executed.
    Completed,
    /// The fault plan crashed this rank at the given step; partial results
    /// up to the crash are reported.
    Crashed { at_step: usize },
    /// The rank aborted on an error (typed communication failures
    /// included); the message carries the cause.
    Failed(String),
}

/// Per-rank outcome of a [`DistributedRunner`] run.
#[derive(Debug, Clone)]
pub struct RankReport {
    pub rank: usize,
    pub status: RankStatus,
    /// Loss after each completed step.
    pub losses: Vec<f32>,
    /// Final parameters (name → flat values) for cross-rank checks.
    pub final_params: Vec<(String, Vec<f32>)>,
    /// Communication counters.
    pub volume: CommunicationVolume,
    /// Virtual time (compute + modeled communication).
    pub virtual_time: f64,
    /// Fault-injection and recovery counters (zero without a plan).
    pub faults: FaultCounters,
    /// Per-operator wall-time attribution from this rank's executor.
    pub op_attribution: Vec<OpAttribution>,
}

/// The outcome of a distributed training run: one report per rank, sorted
/// by rank, plus aggregation helpers.
#[derive(Debug, Clone)]
pub struct RunReport {
    pub ranks: Vec<RankReport>,
}

impl RunReport {
    /// Ranks that ran to completion.
    pub fn completed(&self) -> Vec<&RankReport> {
        self.ranks
            .iter()
            .filter(|r| r.status == RankStatus::Completed)
            .collect()
    }

    /// True when every rank completed every step.
    pub fn all_completed(&self) -> bool {
        self.ranks.iter().all(|r| r.status == RankStatus::Completed)
    }

    /// Ranks that aborted on an error (planned crashes excluded).
    pub fn failed(&self) -> Vec<&RankReport> {
        self.ranks
            .iter()
            .filter(|r| matches!(r.status, RankStatus::Failed(_)))
            .collect()
    }

    /// Per-operator attribution merged across all ranks (calls and wall
    /// time summed by node id; per-call FLOPs/bytes are structural and
    /// identical on every rank). Sorted by total time, descending.
    pub fn op_attribution(&self) -> Vec<OpAttribution> {
        let mut merged: Vec<OpAttribution> = Vec::new();
        for row in self.ranks.iter().flat_map(|r| &r.op_attribution) {
            match merged.iter_mut().find(|m| m.id == row.id) {
                Some(m) => {
                    m.forward_calls += row.forward_calls;
                    m.backward_calls += row.backward_calls;
                    m.forward_s += row.forward_s;
                    m.backward_s += row.backward_s;
                }
                None => merged.push(row.clone()),
            }
        }
        merged.sort_by(|a, b| {
            b.total_s()
                .partial_cmp(&a.total_s())
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.name.cmp(&b.name))
        });
        merged
    }

    /// Communication counters merged across all ranks.
    pub fn volume(&self) -> CommunicationVolume {
        let mut total = CommunicationVolume::new();
        for r in &self.ranks {
            total.merge(&r.volume);
        }
        total
    }

    /// Fault counters merged across all ranks.
    pub fn faults(&self) -> FaultCounters {
        let mut total = FaultCounters::new();
        for r in &self.ranks {
            total.merge(&r.faults);
        }
        total
    }

    /// Slowest completed rank's virtual time (the run's makespan).
    pub fn makespan(&self) -> f64 {
        self.ranks
            .iter()
            .map(|r| r.virtual_time)
            .fold(0.0, f64::max)
    }

    /// Parameter consistency across the *completed* ranks.
    pub fn consistency(&self, tol: f32) -> ConsistencyReport {
        consistency_over(
            self.completed()
                .into_iter()
                .map(|r| (r.rank, r.final_params.as_slice())),
            tol,
        )
    }

    /// Collapse into the legacy per-rank results, erroring (like the old
    /// runner) if any rank crashed or failed.
    pub fn into_rank_results(self) -> Result<Vec<RankResult>> {
        self.ranks
            .into_iter()
            .map(|r| match r.status {
                RankStatus::Completed => Ok(RankResult {
                    rank: r.rank,
                    losses: r.losses,
                    final_params: r.final_params,
                    volume: r.volume,
                    virtual_time: r.virtual_time,
                }),
                RankStatus::Crashed { at_step } => Err(Error::Communication(format!(
                    "rank {} crashed at step {at_step}",
                    r.rank
                ))),
                RankStatus::Failed(msg) => Err(Error::Communication(format!(
                    "rank {} failed: {msg}",
                    r.rank
                ))),
            })
            .collect()
    }
}

/// One elementwise parameter divergence between two ranks.
#[derive(Debug, Clone)]
pub struct Divergence {
    /// The diverging rank.
    pub rank: usize,
    /// The rank compared against (lowest checked rank).
    pub reference_rank: usize,
    /// Parameter name.
    pub param: String,
    /// Flat element index within the parameter.
    pub index: usize,
    /// Value on `rank`.
    pub got: f32,
    /// Value on `reference_rank`.
    pub reference: f32,
}

/// Diagnostic result of a cross-rank parameter consistency check: instead
/// of a bare boolean it names which ranks and parameters diverged, so test
/// failures point at the culprit directly.
#[derive(Debug, Clone)]
pub struct ConsistencyReport {
    /// Tolerance the check ran with.
    pub tol: f32,
    /// Number of ranks compared.
    pub ranks_checked: usize,
    /// Largest elementwise |difference| seen.
    pub max_abs_diff: f32,
    /// Out-of-tolerance elements (capped at [`ConsistencyReport::MAX_RECORDED`]).
    pub divergences: Vec<Divergence>,
    /// Structural mismatches (parameter name/shape disagreements).
    pub structural: Vec<String>,
}

impl ConsistencyReport {
    /// Cap on recorded divergences (counts keep accumulating in
    /// `max_abs_diff`).
    pub const MAX_RECORDED: usize = 8;

    /// True when every rank's parameters agree within the tolerance.
    pub fn is_consistent(&self) -> bool {
        self.divergences.is_empty() && self.structural.is_empty()
    }
}

impl fmt::Display for ConsistencyReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_consistent() {
            return write!(
                f,
                "consistent: {} ranks agree within {:e} (max |Δ| {:e})",
                self.ranks_checked, self.tol, self.max_abs_diff
            );
        }
        write!(
            f,
            "INCONSISTENT across {} ranks (tol {:e}, max |Δ| {:e})",
            self.ranks_checked, self.tol, self.max_abs_diff
        )?;
        for s in &self.structural {
            write!(f, "; {s}")?;
        }
        for d in &self.divergences {
            write!(
                f,
                "; rank {} vs {}: '{}'[{}] = {} vs {}",
                d.rank, d.reference_rank, d.param, d.index, d.got, d.reference
            )?;
        }
        Ok(())
    }
}

/// Core consistency check over `(rank, params)` pairs; the first entry is
/// the reference.
fn consistency_over<'a>(
    mut entries: impl Iterator<Item = (usize, &'a [(String, Vec<f32>)])>,
    tol: f32,
) -> ConsistencyReport {
    let mut report = ConsistencyReport {
        tol,
        ranks_checked: 0,
        max_abs_diff: 0.0,
        divergences: Vec::new(),
        structural: Vec::new(),
    };
    let Some((ref_rank, ref_params)) = entries.next() else {
        return report;
    };
    report.ranks_checked = 1;
    for (rank, params) in entries {
        report.ranks_checked += 1;
        if params.len() != ref_params.len() {
            report.structural.push(format!(
                "rank {rank} has {} params, rank {ref_rank} has {}",
                params.len(),
                ref_params.len()
            ));
            continue;
        }
        for ((n1, v1), (n2, v2)) in params.iter().zip(ref_params) {
            if n1 != n2 || v1.len() != v2.len() {
                report.structural.push(format!(
                    "rank {rank} param '{n1}' ({} elems) vs rank {ref_rank} '{n2}' ({} elems)",
                    v1.len(),
                    v2.len()
                ));
                continue;
            }
            for (i, (a, b)) in v1.iter().zip(v2).enumerate() {
                let diff = (a - b).abs();
                report.max_abs_diff = report.max_abs_diff.max(diff);
                if diff > tol && report.divergences.len() < ConsistencyReport::MAX_RECORDED {
                    report.divergences.push(Divergence {
                        rank,
                        reference_rank: ref_rank,
                        param: n1.clone(),
                        index: i,
                        got: *a,
                        reference: *b,
                    });
                }
            }
        }
    }
    report
}

/// Check that all ranks hold identical parameters within `tol` — the
/// consistency property of synchronous schemes. Returns a diagnostic
/// [`ConsistencyReport`] naming any diverging ranks/parameters; use
/// `is_consistent()` for the boolean and `{}` formatting in assertion
/// messages.
pub fn ranks_consistent(results: &[RankResult], tol: f32) -> ConsistencyReport {
    consistency_over(
        results.iter().map(|r| (r.rank, r.final_params.as_slice())),
        tol,
    )
}

/// Builder for Level-3 distributed training runs (collapses the old
/// `run_distributed` / `train_data_parallel` / `train_data_parallel_with`
/// surface into one API).
pub struct DistributedRunner {
    network: Network,
    dataset: Arc<dyn Dataset>,
    world: usize,
    batch: usize,
    steps: usize,
    seed: u64,
    lr: f32,
    model: NetworkModel,
    executor: ExecutorKind,
    variant: Variant,
    faults: Option<Arc<FaultPlan>>,
    trace: Option<TraceRecorder>,
}

impl DistributedRunner {
    /// A runner over `network` and `dataset` with defaults: 2 ranks,
    /// per-rank batch 8, 10 steps, seed 0, lr 0.1, instant network,
    /// reference executor, [`Variant::Cdsgd`], no faults.
    pub fn new(network: &Network, dataset: Arc<dyn Dataset>) -> Self {
        DistributedRunner {
            network: network.clone_structure(),
            dataset,
            world: 2,
            batch: 8,
            steps: 10,
            seed: 0,
            lr: 0.1,
            model: NetworkModel::instant(),
            executor: ExecutorKind::Reference,
            variant: Variant::Cdsgd,
            faults: None,
            trace: None,
        }
    }

    /// Number of ranks.
    pub fn world(mut self, world: usize) -> Self {
        self.world = world.max(1);
        self
    }

    /// Per-rank minibatch size.
    pub fn batch(mut self, batch: usize) -> Self {
        self.batch = batch.max(1);
        self
    }

    /// Training steps per rank.
    pub fn steps(mut self, steps: usize) -> Self {
        self.steps = steps;
        self
    }

    /// Sampler shard seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Learning rate of the gradient-descent base optimizer.
    pub fn learning_rate(mut self, lr: f32) -> Self {
        self.lr = lr;
        self
    }

    /// Distributed SGD variant.
    pub fn variant(mut self, variant: Variant) -> Self {
        self.variant = variant;
        self
    }

    /// α-β network model pricing every message.
    pub fn network(mut self, model: NetworkModel) -> Self {
        self.model = model;
        self
    }

    /// Per-rank graph executor.
    pub fn executor(mut self, kind: ExecutorKind) -> Self {
        self.executor = kind;
        self
    }

    /// Inject a (possibly zero-fault) [`FaultPlan`]: every rank's
    /// communicator is wrapped in a
    /// [`FaultyCommunicator`](crate::fault::FaultyCommunicator).
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(Arc::new(plan));
        self
    }

    /// Record every rank's communication into `recorder`: each rank's
    /// communicator is wrapped in a
    /// [`TracingCommunicator`](crate::tracing::TracingCommunicator) feeding
    /// a per-rank track (`rank0`, `rank1`, …), outermost so injected fault
    /// delays show up in the spans.
    pub fn trace(mut self, recorder: &TraceRecorder) -> Self {
        self.trace = Some(recorder.clone());
        self
    }

    /// Spawn the rank threads, train, and join into a [`RunReport`].
    ///
    /// Planned rank crashes and per-rank communication failures are
    /// reported in each rank's [`RankStatus`] — they do *not* abort the
    /// run. Infrastructure errors (graph construction, sampling) do.
    pub fn run(self) -> Result<RunReport> {
        let DistributedRunner {
            network,
            dataset,
            world,
            batch,
            steps,
            seed,
            lr,
            model,
            executor,
            variant,
            faults,
            trace,
        } = self;
        let proto = Arc::new(network);
        let mut ranks = spawn_ranks(world, model, move |ctx| -> Result<RankReport> {
            let rank = ctx.rank;
            let mut exec = Engine::builder(proto.clone_structure())
                .executor(executor)
                .build()?
                .into_inner()?;
            let mut sampler = ShardedSampler::new(dataset.clone(), batch, rank, world, true, seed);
            let mut comm: Box<dyn Communicator> = match &faults {
                Some(plan) => Box::new(FaultyCommunicator::new(ctx.comm, plan.clone(), model)),
                None => Box::new(ctx.comm),
            };
            if let Some(recorder) = &trace {
                comm = Box::new(TracingCommunicator::new(
                    comm,
                    recorder.sink(format!("rank{rank}")),
                ));
            }
            let mut opt = variant.build(lr, comm);
            let mut losses = Vec::with_capacity(steps);
            let mut status = RankStatus::Completed;
            for step in 0..steps {
                match opt.begin_step(step as u64) {
                    Ok(()) => {}
                    Err(CommError::RankDead(r)) if r == rank => {
                        status = RankStatus::Crashed { at_step: step };
                        break;
                    }
                    Err(e) => {
                        status = RankStatus::Failed(e.to_string());
                        break;
                    }
                }
                let mb = match sampler.next_batch()? {
                    Some(mb) => mb,
                    None => {
                        sampler.reset_epoch();
                        sampler.next_batch()?.ok_or_else(|| {
                            Error::Invalid("empty shard: world too large for dataset".into())
                        })?
                    }
                };
                let t = std::time::Instant::now();
                match opt.train_step(exec.as_mut(), &mb) {
                    Ok(result) => {
                        // Charge the measured local compute to the virtual
                        // clock (straggler plans stretch it); the
                        // communicator already charged the communication.
                        opt.advance_virtual(t.elapsed().as_secs_f64());
                        losses.push(result.loss);
                    }
                    Err(e) => {
                        status = RankStatus::Failed(e.to_string());
                        break;
                    }
                }
            }
            let final_params = exec
                .network()
                .get_params()
                .iter()
                .map(|p| Ok((p.clone(), exec.network().fetch_tensor(p)?.data().to_vec())))
                .collect::<Result<Vec<_>>>()?;
            Ok(RankReport {
                rank,
                status,
                losses,
                final_params,
                volume: opt.comm_stats(),
                virtual_time: opt.virtual_time(),
                faults: opt.fault_stats(),
                op_attribution: exec.op_attribution(),
            })
        })?;
        ranks.sort_by_key(|r| r.rank);
        Ok(RunReport { ranks })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimizers::dsgd::ConsistentDecentralized;
    use deep500_data::synthetic::SyntheticDataset;
    use deep500_graph::models;
    use deep500_train::optimizer::train_step;

    fn dataset(n: usize) -> Arc<dyn Dataset> {
        Arc::new(SyntheticDataset::new(
            "dist",
            deep500_tensor::Shape::new(&[8]),
            3,
            n,
            0.3,
            42,
        ))
    }

    fn net() -> Network {
        models::mlp(8, &[8], 3, 7).unwrap()
    }

    #[test]
    fn spawn_ranks_propagates_errors() {
        let r: Result<Vec<()>> = spawn_ranks(2, NetworkModel::instant(), |ctx| {
            if ctx.rank == 1 {
                Err(Error::Invalid("boom".into()))
            } else {
                // Rank 0 must not deadlock waiting on rank 1.
                Ok(())
            }
        });
        assert!(r.is_err());
    }

    /// The Level-3 exactness check: consistent-decentralized SGD over N
    /// ranks with per-rank batch b equals sequential SGD with batch N·b.
    #[test]
    fn dsgd_matches_sequential_large_batch() {
        let world = 4usize;
        let per_rank_batch = 4usize;
        let steps = 3usize;
        let ds = dataset(256);

        // Distributed run (unshuffled shards for a reproducible union).
        let proto = net();
        let proto2 = Arc::new(proto.clone_structure());
        let ds2 = ds.clone();
        let results = spawn_ranks(world, NetworkModel::instant(), move |ctx| {
            let mut executor = Engine::builder(proto2.clone_structure())
                .build()?
                .into_inner()?;
            let mut sampler = ShardedSampler::new(
                ds2.clone(),
                per_rank_batch,
                ctx.rank,
                world,
                false, // no shuffle: shard k-th batch = strided indices
                0,
            );
            let mut opt = ConsistentDecentralized::optimized(
                Box::new(GradientDescent::new(0.1)),
                Box::new(ctx.comm),
            );
            for _ in 0..steps {
                let mb = sampler.next_batch()?.expect("enough data");
                opt.train_step(&mut *executor, &mb)?;
            }
            executor
                .network()
                .get_params()
                .iter()
                .map(|p| Ok(executor.network().fetch_tensor(p)?.data().to_vec()))
                .collect::<Result<Vec<_>>>()
        })
        .unwrap();

        // Sequential run with the union batches (same samples, same order
        // by construction of the strided shards).
        let mut executor = Engine::builder(proto)
            .build()
            .unwrap()
            .into_inner()
            .unwrap();
        let mut opt = GradientDescent::new(0.1);
        for step in 0..steps {
            // Union of all ranks' step-th batches: global indices
            // rank + world * (step*b + j).
            let mut indices = Vec::new();
            for rank in 0..world {
                for j in 0..per_rank_batch {
                    indices.push(rank + world * (step * per_rank_batch + j));
                }
            }
            let mb = deep500_data::dataset::assemble_minibatch(ds.as_ref(), &indices).unwrap();
            train_step(&mut opt, &mut *executor, &mb).unwrap();
        }
        let seq_params: Vec<Vec<f32>> = executor
            .network()
            .get_params()
            .iter()
            .map(|p| executor.network().fetch_tensor(p).unwrap().data().to_vec())
            .collect();

        for rank_params in &results {
            for (dist, seq) in rank_params.iter().zip(&seq_params) {
                for (a, b) in dist.iter().zip(seq) {
                    assert!((a - b).abs() < 5e-4, "distributed {a} vs sequential {b}");
                }
            }
        }
    }

    #[test]
    fn synchronous_variants_keep_ranks_consistent() {
        for variant in [Variant::RefDsgd, Variant::Horovod, Variant::Pssgd] {
            let name = variant.name();
            let report = DistributedRunner::new(&net(), dataset(128))
                .world(4)
                .batch(4)
                .steps(3)
                .seed(1)
                .learning_rate(0.05)
                .variant(variant)
                .run()
                .unwrap();
            assert!(report.all_completed(), "{name}: all ranks complete");
            let consistency = report.consistency(1e-5);
            assert!(consistency.is_consistent(), "{name}: {consistency}");
            assert!(report.ranks.iter().all(|r| r.volume.bytes_sent > 0));
            assert_eq!(report.faults(), FaultCounters::default());
        }
    }

    #[test]
    fn traced_run_records_per_rank_spans_and_attribution() {
        let recorder = TraceRecorder::new();
        let report = DistributedRunner::new(&net(), dataset(128))
            .world(2)
            .batch(4)
            .steps(3)
            .variant(Variant::Cdsgd)
            .trace(&recorder)
            .run()
            .unwrap();
        assert!(report.all_completed());
        // One communication track per rank, with byte-carrying spans.
        let tracks = recorder.tracks();
        for rank in 0..2 {
            let name = format!("rank{rank}");
            let (_, spans) = tracks
                .iter()
                .find(|(t, _)| *t == name)
                .unwrap_or_else(|| panic!("missing track {name}: {tracks:?}"));
            assert!(!spans.is_empty(), "{name} has spans");
            assert!(
                spans
                    .iter()
                    .all(|s| s.phase == deep500_metrics::Phase::Communication),
                "{name} holds communication spans only"
            );
            assert!(spans.iter().any(|s| s.bytes > 0), "{name} carries bytes");
        }
        // Every rank's executor attributed its operator time, and the
        // run-level fold sums calls across ranks.
        let per_rank_fwd: usize = report.ranks[0]
            .op_attribution
            .iter()
            .map(|r| r.forward_calls)
            .sum();
        assert!(per_rank_fwd > 0, "rank 0 attributed forward calls");
        let merged = report.op_attribution();
        assert!(!merged.is_empty());
        let merged_fwd: usize = merged.iter().map(|r| r.forward_calls).sum();
        assert_eq!(merged_fwd, 2 * per_rank_fwd, "fold sums across ranks");
    }

    #[test]
    fn pssgd_matches_dsgd_trajectory() {
        // Both are synchronous averaging schemes: same math, same params.
        let mk = |variant: Variant| {
            DistributedRunner::new(&net(), dataset(128))
                .world(4)
                .batch(4)
                .steps(3)
                .seed(9)
                .learning_rate(0.1)
                .variant(variant)
                .run()
                .unwrap()
        };
        let ps = mk(Variant::Pssgd);
        let ds = mk(Variant::Cdsgd);
        for ((n1, a), (n2, b)) in ps.ranks[0]
            .final_params
            .iter()
            .zip(&ds.ranks[0].final_params)
        {
            assert_eq!(n1, n2);
            for (x, y) in a.iter().zip(b) {
                assert!((x - y).abs() < 1e-4, "{n1}: {x} vs {y}");
            }
        }
    }

    #[test]
    fn ps_volume_scales_with_world_but_dsgd_does_not() {
        let vol = |variant: Variant, world: usize| -> u64 {
            let report = DistributedRunner::new(&net(), dataset(256))
                .world(world)
                .batch(2)
                .steps(2)
                .seed(3)
                .variant(variant)
                .run()
                .unwrap();
            report.ranks[0].volume.bytes_sent + report.ranks[0].volume.bytes_received
        };
        // PS rank-0 traffic roughly doubles from 3 to 6 workers.
        let ps3 = vol(Variant::Pssgd, 3);
        let ps6 = vol(Variant::Pssgd, 6);
        assert!(ps6 as f64 > ps3 as f64 * 1.8, "ps {ps3} -> {ps6}");
        // Ring allreduce per-rank traffic is ~constant (2(n-1)/n·S).
        let d3 = vol(Variant::Cdsgd, 3);
        let d6 = vol(Variant::Cdsgd, 6);
        assert!(
            (d6 as f64) < (d3 as f64) * 1.4,
            "dsgd {d3} -> {d6} should stay flat"
        );
    }

    #[test]
    fn gossip_and_mavg_and_sparse_run_and_learn() {
        // Smoke + loss-decrease check for the remaining schemes.
        for variant in [
            Variant::Dpsgd,
            Variant::Mavg { period: 2 },
            Variant::SparCml { density: 0.25 },
        ] {
            let name = variant.name();
            let report = DistributedRunner::new(&net(), dataset(512))
                .world(4)
                .batch(8)
                .steps(40)
                .seed(5)
                .variant(variant)
                .network(NetworkModel::aries())
                .run()
                .unwrap();
            assert!(report.all_completed(), "{name}");
            for r in &report.ranks {
                // Noisy minibatch losses: compare head/tail averages.
                let head: f32 = r.losses[..5].iter().sum::<f32>() / 5.0;
                let tail: f32 = r.losses[r.losses.len() - 5..].iter().sum::<f32>() / 5.0;
                assert!(tail < head, "{name} rank {}: loss {head} -> {tail}", r.rank);
                assert!(r.virtual_time > 0.0, "{name}: virtual time tracked");
            }
        }
    }

    #[test]
    fn consistency_report_names_the_divergence() {
        let mk = |rank: usize, v: f32| RankResult {
            rank,
            losses: vec![],
            final_params: vec![("w".into(), vec![1.0, v])],
            volume: CommunicationVolume::default(),
            virtual_time: 0.0,
        };
        let good = ranks_consistent(&[mk(0, 2.0), mk(1, 2.0)], 1e-6);
        assert!(good.is_consistent());
        let bad = ranks_consistent(&[mk(0, 2.0), mk(1, 2.5)], 1e-6);
        assert!(!bad.is_consistent());
        assert_eq!(bad.divergences.len(), 1);
        let d = &bad.divergences[0];
        assert_eq!((d.rank, d.reference_rank, d.index), (1, 0, 1));
        assert_eq!(d.param, "w");
        let msg = format!("{bad}");
        assert!(msg.contains("'w'[1]"), "{msg}");
        assert!(msg.contains("INCONSISTENT"), "{msg}");
        // Structural mismatches are diagnosed, not panicked on.
        let odd = RankResult {
            rank: 2,
            losses: vec![],
            final_params: vec![("b".into(), vec![0.0])],
            volume: CommunicationVolume::default(),
            virtual_time: 0.0,
        };
        let mixed = ranks_consistent(&[mk(0, 2.0), odd], 1e-6);
        assert!(!mixed.is_consistent());
        assert!(!mixed.structural.is_empty());
    }

    #[test]
    fn zero_fault_plan_is_bit_identical_to_no_plan() {
        let run = |plan: Option<FaultPlan>| {
            let mut runner = DistributedRunner::new(&net(), dataset(128))
                .world(4)
                .batch(4)
                .steps(3)
                .seed(7)
                .variant(Variant::Cdsgd);
            if let Some(p) = plan {
                runner = runner.faults(p);
            }
            runner.run().unwrap()
        };
        let plain = run(None);
        let wrapped = run(Some(FaultPlan::seeded(123)));
        assert!(wrapped.all_completed());
        assert_eq!(wrapped.faults(), FaultCounters::default());
        for (a, b) in plain.ranks.iter().zip(&wrapped.ranks) {
            assert_eq!(a.losses, b.losses, "losses must be bit-identical");
            for ((n1, v1), (n2, v2)) in a.final_params.iter().zip(&b.final_params) {
                assert_eq!(n1, n2);
                assert_eq!(v1, v2, "params must be bit-identical ({n1})");
            }
        }
    }
}
