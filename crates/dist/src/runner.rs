//! Distributed training orchestration over the thread transport.
//!
//! [`run_distributed`] spawns one OS thread per rank, hands each a wired
//! communicator, and joins the results — the reproduction's analogue of
//! the paper's "OS forking to turn an existing Python application into an
//! MPI-capable one". [`train_data_parallel`] is the high-level recipe of
//! Listing 8: pick a distributed scheme, a base optimizer, and a sharded
//! sampler, and train.

use crate::comm::{ThreadCommunicator, ThreadTransport};
use crate::netmodel::NetworkModel;
use crate::optimizers::DistributedOptimizer;
use deep500_data::sampler::{DatasetSampler, ShardedSampler};
use deep500_data::Dataset;
use deep500_graph::{ExecutorKind, Network};
use deep500_metrics::CommunicationVolume;
use deep500_tensor::{Error, Result};
use std::sync::Arc;
use std::thread;

/// Everything a rank's closure receives.
pub struct RankContext {
    pub rank: usize,
    pub world: usize,
    pub comm: ThreadCommunicator,
}

/// Spawn `world` rank threads running `f`; returns per-rank results (index
/// = rank). Any rank error aborts the whole run.
pub fn run_distributed<T: Send + 'static>(
    world: usize,
    model: NetworkModel,
    f: impl Fn(RankContext) -> Result<T> + Send + Sync + Clone + 'static,
) -> Result<Vec<T>> {
    let comms = ThreadTransport::create(world, model);
    let handles: Vec<_> = comms
        .into_iter()
        .enumerate()
        .map(|(rank, comm)| {
            let f = f.clone();
            thread::Builder::new()
                .name(format!("d5-rank{rank}"))
                .spawn(move || f(RankContext { rank, world, comm }))
                .expect("spawn rank thread")
        })
        .collect();
    let mut results = Vec::with_capacity(world);
    let mut first_err = None;
    for h in handles {
        match h.join() {
            Ok(Ok(v)) => results.push(v),
            Ok(Err(e)) => first_err = first_err.or(Some(e)),
            Err(_) => {
                first_err = first_err.or(Some(Error::Communication("rank thread panicked".into())))
            }
        }
    }
    match first_err {
        Some(e) => Err(e),
        None => Ok(results),
    }
}

/// Per-rank outcome of a distributed training run.
#[derive(Debug, Clone)]
pub struct RankResult {
    pub rank: usize,
    /// Loss after each step on this rank.
    pub losses: Vec<f32>,
    /// Final parameters (name → flat values) for cross-rank checks.
    pub final_params: Vec<(String, Vec<f32>)>,
    /// Communication counters.
    pub volume: CommunicationVolume,
    /// Virtual time (compute + modeled communication).
    pub virtual_time: f64,
}

/// Scheme factory: builds the per-rank distributed optimizer from its
/// communicator.
pub type SchemeFactory =
    Arc<dyn Fn(ThreadCommunicator) -> Box<dyn DistributedOptimizer> + Send + Sync>;

/// Data-parallel distributed training (Listing 8): every rank replicates
/// `network`, draws disjoint shards of `dataset`, and steps its scheme for
/// `steps` iterations with per-rank batch `batch`. The virtual clock on
/// each rank advances by the *measured* local compute time of each step.
///
/// Uses the [`ReferenceExecutor`](deep500_graph::ReferenceExecutor) on
/// every rank; pick a different executor with
/// [`train_data_parallel_with`].
#[allow(clippy::too_many_arguments)] // experiment-configuration surface
pub fn train_data_parallel(
    network: &Network,
    dataset: Arc<dyn Dataset>,
    scheme: SchemeFactory,
    world: usize,
    batch: usize,
    steps: usize,
    model: NetworkModel,
    seed: u64,
) -> Result<Vec<RankResult>> {
    train_data_parallel_with(
        ExecutorKind::Reference,
        network,
        dataset,
        scheme,
        world,
        batch,
        steps,
        model,
        seed,
    )
}

/// [`train_data_parallel`] with an explicit per-rank executor selection —
/// e.g. [`ExecutorKind::Wavefront`] to run each rank's graph
/// level-parallel on the shared rayon pool.
#[allow(clippy::too_many_arguments)] // experiment-configuration surface
pub fn train_data_parallel_with(
    executor_kind: ExecutorKind,
    network: &Network,
    dataset: Arc<dyn Dataset>,
    scheme: SchemeFactory,
    world: usize,
    batch: usize,
    steps: usize,
    model: NetworkModel,
    seed: u64,
) -> Result<Vec<RankResult>> {
    let proto = Arc::new(network.clone_structure());
    run_distributed(world, model, move |ctx| {
        let rank = ctx.rank;
        let mut executor = executor_kind.build(proto.clone_structure())?;
        let mut sampler = ShardedSampler::new(dataset.clone(), batch, rank, world, true, seed);
        let mut opt = scheme(ctx.comm);
        let mut losses = Vec::with_capacity(steps);
        for _ in 0..steps {
            let mb = match sampler.next_batch()? {
                Some(mb) => mb,
                None => {
                    sampler.reset_epoch();
                    sampler.next_batch()?.ok_or_else(|| {
                        Error::Invalid("empty shard: world too large for dataset".into())
                    })?
                }
            };
            let t = std::time::Instant::now();
            let result = opt.train_step(executor.as_mut(), &mb)?;
            // The measured step time is charged as virtual compute; the
            // communicator already charged the communication.
            let _ = t.elapsed();
            losses.push(result.loss);
        }
        let final_params = executor
            .network()
            .get_params()
            .iter()
            .map(|p| {
                Ok((
                    p.clone(),
                    executor.network().fetch_tensor(p)?.data().to_vec(),
                ))
            })
            .collect::<Result<Vec<_>>>()?;
        Ok(RankResult {
            rank,
            losses,
            final_params,
            volume: opt.comm_stats(),
            virtual_time: opt.virtual_time(),
        })
    })
    .map(|mut rs| {
        rs.sort_by_key(|r| r.rank);
        rs
    })
}

/// Check that all ranks hold identical parameters within `tol` — the
/// consistency property of synchronous schemes.
pub fn ranks_consistent(results: &[RankResult], tol: f32) -> bool {
    let Some(first) = results.first() else {
        return true;
    };
    results.iter().all(|r| {
        r.final_params
            .iter()
            .zip(&first.final_params)
            .all(|((n1, v1), (n2, v2))| {
                n1 == n2
                    && v1.len() == v2.len()
                    && v1.iter().zip(v2).all(|(a, b)| (a - b).abs() <= tol)
            })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimizers::dpsgd::DecentralizedNeighbor;
    use crate::optimizers::dsgd::ConsistentDecentralized;
    use crate::optimizers::mavg::ModelAveraging;
    use crate::optimizers::pssgd::ConsistentCentralized;
    use crate::optimizers::sparcml::SparseDecentralized;
    use deep500_data::synthetic::SyntheticDataset;
    use deep500_graph::{models, GraphExecutor, ReferenceExecutor};
    use deep500_train::optimizer::train_step;
    use deep500_train::sgd::GradientDescent;

    fn dataset(n: usize) -> Arc<dyn Dataset> {
        Arc::new(SyntheticDataset::new(
            "dist",
            deep500_tensor::Shape::new(&[8]),
            3,
            n,
            0.3,
            42,
        ))
    }

    fn net() -> Network {
        models::mlp(8, &[8], 3, 7).unwrap()
    }

    #[test]
    fn run_distributed_propagates_errors() {
        let r: Result<Vec<()>> = run_distributed(2, NetworkModel::instant(), |ctx| {
            if ctx.rank == 1 {
                Err(Error::Invalid("boom".into()))
            } else {
                // Rank 0 must not deadlock waiting on rank 1.
                Ok(())
            }
        });
        assert!(r.is_err());
    }

    /// The Level-3 exactness check: consistent-decentralized SGD over N
    /// ranks with per-rank batch b equals sequential SGD with batch N·b.
    #[test]
    fn dsgd_matches_sequential_large_batch() {
        let world = 4usize;
        let per_rank_batch = 4usize;
        let steps = 3usize;
        let ds = dataset(256);

        // Distributed run (unshuffled shards for a reproducible union).
        let proto = net();
        let scheme: SchemeFactory = Arc::new(|comm| {
            Box::new(ConsistentDecentralized::optimized(
                Box::new(GradientDescent::new(0.1)),
                Box::new(comm),
            ))
        });
        let proto2 = Arc::new(proto.clone_structure());
        let ds2 = ds.clone();
        let results = run_distributed(world, NetworkModel::instant(), move |ctx| {
            let mut executor = ReferenceExecutor::new(proto2.clone_structure())?;
            let mut sampler = ShardedSampler::new(
                ds2.clone(),
                per_rank_batch,
                ctx.rank,
                world,
                false, // no shuffle: shard k-th batch = strided indices
                0,
            );
            let mut opt = scheme(ctx.comm);
            for _ in 0..steps {
                let mb = sampler.next_batch()?.expect("enough data");
                opt.train_step(&mut executor, &mb)?;
            }
            executor
                .network()
                .get_params()
                .iter()
                .map(|p| Ok(executor.network().fetch_tensor(p)?.data().to_vec()))
                .collect::<Result<Vec<_>>>()
        })
        .unwrap();

        // Sequential run with the union batches (same samples, same order
        // by construction of the strided shards).
        let mut executor = ReferenceExecutor::new(proto).unwrap();
        let mut opt = GradientDescent::new(0.1);
        for step in 0..steps {
            // Union of all ranks' step-th batches: global indices
            // rank + world * (step*b + j).
            let mut indices = Vec::new();
            for rank in 0..world {
                for j in 0..per_rank_batch {
                    indices.push(rank + world * (step * per_rank_batch + j));
                }
            }
            let mb = deep500_data::dataset::assemble_minibatch(ds.as_ref(), &indices).unwrap();
            train_step(&mut opt, &mut executor, &mb).unwrap();
        }
        let seq_params: Vec<Vec<f32>> = executor
            .network()
            .get_params()
            .iter()
            .map(|p| executor.network().fetch_tensor(p).unwrap().data().to_vec())
            .collect();

        for rank_params in &results {
            for (dist, seq) in rank_params.iter().zip(&seq_params) {
                for (a, b) in dist.iter().zip(seq) {
                    assert!((a - b).abs() < 5e-4, "distributed {a} vs sequential {b}");
                }
            }
        }
    }

    #[test]
    fn synchronous_schemes_keep_ranks_consistent() {
        for (name, scheme) in [
            (
                "dsgd",
                Arc::new(|comm: ThreadCommunicator| {
                    Box::new(ConsistentDecentralized::reference(
                        Box::new(GradientDescent::new(0.05)),
                        Box::new(comm),
                    )) as Box<dyn DistributedOptimizer>
                }) as SchemeFactory,
            ),
            (
                "horovod",
                Arc::new(|comm: ThreadCommunicator| {
                    Box::new(ConsistentDecentralized::horovod(
                        Box::new(GradientDescent::new(0.05)),
                        Box::new(comm),
                    )) as Box<dyn DistributedOptimizer>
                }) as SchemeFactory,
            ),
            (
                "pssgd",
                Arc::new(|comm: ThreadCommunicator| {
                    Box::new(ConsistentCentralized::new(
                        Box::new(GradientDescent::new(0.05)),
                        Box::new(comm),
                    )) as Box<dyn DistributedOptimizer>
                }) as SchemeFactory,
            ),
        ] {
            let results = train_data_parallel(
                &net(),
                dataset(128),
                scheme,
                4,
                4,
                3,
                NetworkModel::instant(),
                1,
            )
            .unwrap();
            assert!(ranks_consistent(&results, 1e-5), "{name}: ranks diverged");
            assert!(results.iter().all(|r| r.volume.bytes_sent > 0));
        }
    }

    #[test]
    fn pssgd_matches_dsgd_trajectory() {
        // Both are synchronous averaging schemes: same math, same params.
        let mk = |centralized: bool| {
            let scheme: SchemeFactory = if centralized {
                Arc::new(|comm: ThreadCommunicator| {
                    Box::new(ConsistentCentralized::new(
                        Box::new(GradientDescent::new(0.1)),
                        Box::new(comm),
                    )) as Box<dyn DistributedOptimizer>
                })
            } else {
                Arc::new(|comm: ThreadCommunicator| {
                    Box::new(ConsistentDecentralized::optimized(
                        Box::new(GradientDescent::new(0.1)),
                        Box::new(comm),
                    )) as Box<dyn DistributedOptimizer>
                })
            };
            train_data_parallel(
                &net(),
                dataset(128),
                scheme,
                4,
                4,
                3,
                NetworkModel::instant(),
                9,
            )
            .unwrap()
        };
        let ps = mk(true);
        let ds = mk(false);
        for ((n1, a), (n2, b)) in ps[0].final_params.iter().zip(&ds[0].final_params) {
            assert_eq!(n1, n2);
            for (x, y) in a.iter().zip(b) {
                assert!((x - y).abs() < 1e-4, "{n1}: {x} vs {y}");
            }
        }
    }

    #[test]
    fn ps_volume_scales_with_world_but_dsgd_does_not() {
        let vol = |scheme: SchemeFactory, world: usize| -> u64 {
            let results = train_data_parallel(
                &net(),
                dataset(256),
                scheme,
                world,
                2,
                2,
                NetworkModel::instant(),
                3,
            )
            .unwrap();
            results[0].volume.bytes_sent + results[0].volume.bytes_received
        };
        let ps = |_: ()| -> SchemeFactory {
            Arc::new(|comm: ThreadCommunicator| {
                Box::new(ConsistentCentralized::new(
                    Box::new(GradientDescent::new(0.1)),
                    Box::new(comm),
                )) as Box<dyn DistributedOptimizer>
            })
        };
        let dsgd = |_: ()| -> SchemeFactory {
            Arc::new(|comm: ThreadCommunicator| {
                Box::new(ConsistentDecentralized::optimized(
                    Box::new(GradientDescent::new(0.1)),
                    Box::new(comm),
                )) as Box<dyn DistributedOptimizer>
            })
        };
        // PS rank-0 traffic roughly doubles from 3 to 6 workers.
        let ps3 = vol(ps(()), 3);
        let ps6 = vol(ps(()), 6);
        assert!(ps6 as f64 > ps3 as f64 * 1.8, "ps {ps3} -> {ps6}");
        // Ring allreduce per-rank traffic is ~constant (2(n-1)/n·S).
        let d3 = vol(dsgd(()), 3);
        let d6 = vol(dsgd(()), 6);
        assert!(
            (d6 as f64) < (d3 as f64) * 1.4,
            "dsgd {d3} -> {d6} should stay flat"
        );
    }

    #[test]
    fn gossip_and_mavg_and_sparse_run_and_learn() {
        // Smoke + loss-decrease check for the remaining schemes.
        let schemes: Vec<(&str, SchemeFactory)> = vec![
            (
                "dpsgd",
                Arc::new(|comm: ThreadCommunicator| {
                    Box::new(DecentralizedNeighbor::new(
                        Box::new(GradientDescent::new(0.1)),
                        Box::new(comm),
                    )) as Box<dyn DistributedOptimizer>
                }),
            ),
            (
                "mavg",
                Arc::new(|comm: ThreadCommunicator| {
                    Box::new(ModelAveraging::new(
                        Box::new(GradientDescent::new(0.1)),
                        Box::new(comm),
                        2,
                    )) as Box<dyn DistributedOptimizer>
                }),
            ),
            (
                "sparcml",
                Arc::new(|comm: ThreadCommunicator| {
                    Box::new(SparseDecentralized::new(
                        Box::new(GradientDescent::new(0.1)),
                        Box::new(comm),
                        0.25,
                    )) as Box<dyn DistributedOptimizer>
                }),
            ),
        ];
        for (name, scheme) in schemes {
            let results = train_data_parallel(
                &net(),
                dataset(512),
                scheme,
                4,
                8,
                40,
                NetworkModel::aries(),
                5,
            )
            .unwrap();
            for r in &results {
                // Noisy minibatch losses: compare head/tail averages.
                let head: f32 = r.losses[..5].iter().sum::<f32>() / 5.0;
                let tail: f32 = r.losses[r.losses.len() - 5..].iter().sum::<f32>() / 5.0;
                assert!(tail < head, "{name} rank {}: loss {head} -> {tail}", r.rank);
                assert!(r.virtual_time > 0.0, "{name}: virtual time tracked");
            }
        }
    }
}
