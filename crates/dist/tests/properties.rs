//! Property-based tests for Level 3: collective correctness over arbitrary
//! world sizes and payloads, sparse-vector algebra, and scaling-model
//! sanity.

use deep500_dist::collectives::{allreduce_flat, allreduce_ring, broadcast_tree};
use deep500_dist::comm::{Communicator, ThreadTransport};
use deep500_dist::scaling::{simulate_step, Scheme, WorkloadModel};
use deep500_dist::sparse::SparseVector;
use deep500_dist::NetworkModel;
use proptest::prelude::*;
use std::thread;

fn on_world<T: Send + 'static>(
    world: usize,
    f: impl Fn(&mut dyn Communicator) -> T + Send + Sync + Clone + 'static,
) -> Vec<T> {
    let comms = ThreadTransport::create(world, NetworkModel::instant());
    comms
        .into_iter()
        .map(|mut c| {
            let f = f.clone();
            thread::spawn(move || f(&mut c))
        })
        .collect::<Vec<_>>()
        .into_iter()
        .map(|h| h.join().unwrap())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Ring and flat allreduce compute the exact global sum for any world
    /// size and vector length, and all ranks agree.
    #[test]
    fn allreduce_is_a_global_sum(world in 1usize..7, len in 1usize..50, ring in any::<bool>()) {
        let results = on_world(world, move |c| {
            let mut buf: Vec<f32> =
                (0..len).map(|i| (c.rank() * 13 + i * 7) as f32).collect();
            if ring {
                allreduce_ring(c, &mut buf).unwrap();
            } else {
                allreduce_flat(c, &mut buf).unwrap();
            }
            buf
        });
        let mut expect = vec![0.0f32; len];
        for r in 0..world {
            for (i, e) in expect.iter_mut().enumerate() {
                *e += (r * 13 + i * 7) as f32;
            }
        }
        for got in &results {
            prop_assert_eq!(got, &expect);
        }
    }

    /// Tree broadcast delivers the root's buffer to everyone, any root.
    #[test]
    fn broadcast_reaches_all(world in 1usize..9, root_pick in any::<u8>(), len in 1usize..20) {
        let root = root_pick as usize % world;
        let results = on_world(world, move |c| {
            let mut buf: Vec<f32> = if c.rank() == root {
                (0..len).map(|i| i as f32 + 0.5).collect()
            } else {
                vec![0.0; len]
            };
            broadcast_tree(c, &mut buf, root).unwrap();
            buf
        });
        let expect: Vec<f32> = (0..len).map(|i| i as f32 + 0.5).collect();
        for got in &results {
            prop_assert_eq!(got, &expect);
        }
    }

    /// Sparse merge is commutative and agrees with dense addition.
    #[test]
    fn sparse_merge_algebra(
        dim in 1usize..64,
        a_entries in prop::collection::vec((0usize..64, -10.0f32..10.0), 0..16),
        b_entries in prop::collection::vec((0usize..64, -10.0f32..10.0), 0..16),
    ) {
        let build = |entries: &[(usize, f32)]| {
            let mut dense = vec![0.0f32; dim];
            for &(i, v) in entries {
                dense[i % dim] = v;
            }
            (SparseVector::top_k(&dense, dim), dense)
        };
        let (sa, da) = build(&a_entries);
        let (sb, db) = build(&b_entries);
        let ab = sa.merge(&sb).unwrap();
        let ba = sb.merge(&sa).unwrap();
        prop_assert_eq!(&ab, &ba, "commutative");
        let dense_sum: Vec<f32> = da.iter().zip(&db).map(|(&x, &y)| x + y).collect();
        prop_assert_eq!(ab.to_dense(), dense_sum);
    }

    /// Top-k keeps exactly the k largest magnitudes.
    #[test]
    fn topk_selects_largest(v in prop::collection::vec(-100.0f32..100.0, 1..40), k in 1usize..40) {
        let s = SparseVector::top_k(&v, k);
        prop_assert_eq!(s.nnz(), k.min(v.len()));
        let kept_min = s
            .values
            .iter()
            .map(|x| x.abs())
            .fold(f32::INFINITY, f32::min);
        let kept: std::collections::HashSet<u32> = s.indices.iter().copied().collect();
        for (i, &x) in v.iter().enumerate() {
            if !kept.contains(&(i as u32)) {
                prop_assert!(x.abs() <= kept_min + 1e-6);
            }
        }
    }

    /// Sparse wire format round-trips.
    #[test]
    fn sparse_wire_roundtrip(v in prop::collection::vec(-100.0f32..100.0, 1..64), k in 1usize..64) {
        let s = SparseVector::top_k(&v, k);
        let back = SparseVector::from_wire(&s.to_wire()).unwrap();
        prop_assert_eq!(back, s);
    }

    /// Scaling model sanity: throughput is positive and finite for all
    /// schemes below their failure thresholds, and more compute per node
    /// never *increases* throughput per image.
    #[test]
    fn scaling_model_sane(nodes_pow in 1u32..7, batch in 1usize..512) {
        let nodes = 1usize << nodes_pow; // 2..128, below failure thresholds
        let w = WorkloadModel::default();
        let net = NetworkModel::aries();
        for scheme in Scheme::strong_set() {
            let p = simulate_step(scheme, nodes, batch, &w, &net);
            let t = p.throughput.unwrap();
            prop_assert!(t.is_finite() && t > 0.0, "{:?}", scheme);
            prop_assert!(p.step_time_s > 0.0);
        }
    }
}
