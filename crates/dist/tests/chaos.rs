//! Chaos tests: the fault-injection subsystem's contract.
//!
//! Three properties anchor the design (ISSUE acceptance criteria):
//!
//! 1. a **zero-fault plan is bit-identical** to the fault-free path for
//!    every deterministic variant — the decorator and the `_among`
//!    collectives must be exact no-ops when nothing fails,
//! 2. under a seeded 10% drop plan, **stale-synchronous SGD keeps
//!    converging** (lost pushes are absorbed by staleness) while **PSSGD
//!    aborts cleanly** with a typed error when retries are exhausted —
//!    no panic, no deadlock,
//! 3. the **same seed yields the same injected fault sequence** (and
//!    therefore the same losses and counters) — reproducible chaos, the
//!    paper's determinism pillar applied to failure.

use deep500_data::synthetic::SyntheticDataset;
use deep500_data::Dataset;
use deep500_dist::runner::{DistributedRunner, RankStatus, Variant};
use deep500_dist::{FaultPlan, NetworkModel};
use deep500_graph::{models, Network};
use deep500_tensor::Shape;
use std::sync::Arc;

fn dataset(len: usize) -> Arc<dyn Dataset> {
    Arc::new(SyntheticDataset::new(
        "chaos",
        Shape::new(&[10]),
        3,
        len,
        0.3,
        77,
    ))
}

fn net() -> Network {
    models::mlp(10, &[8], 3, 5).unwrap()
}

fn runner(variant: Variant) -> DistributedRunner {
    DistributedRunner::new(&net(), dataset(256))
        .world(4)
        .batch(4)
        .steps(6)
        .seed(11)
        .learning_rate(0.05)
        .variant(variant)
}

/// Acceptance criterion: running under a zero-fault plan is bit-identical
/// to the fault-free path, for all (deterministic) variants. ASGD is
/// excluded: its server applies updates in whatever order worker messages
/// arrive, so even two fault-free runs differ.
#[test]
fn zero_fault_plan_is_bit_identical_for_all_variants() {
    let variants = [
        Variant::Cdsgd,
        Variant::RefDsgd,
        Variant::Horovod,
        Variant::Pssgd,
        Variant::StaleSynchronous { max_staleness: 1 },
        Variant::Dpsgd,
        Variant::Mavg { period: 2 },
        Variant::SparCml { density: 0.3 },
        Variant::SignSgd,
    ];
    for variant in variants {
        let name = variant.name();
        let plain = runner(variant.clone()).run().unwrap();
        let wrapped = runner(variant).faults(FaultPlan::seeded(99)).run().unwrap();
        assert!(wrapped.all_completed(), "{name}");
        assert_eq!(
            wrapped.faults(),
            Default::default(),
            "{name}: zero-fault plan must inject nothing"
        );
        for (a, b) in plain.ranks.iter().zip(&wrapped.ranks) {
            assert_eq!(a.losses, b.losses, "{name} rank {}: losses", a.rank);
            for ((n1, v1), (n2, v2)) in a.final_params.iter().zip(&b.final_params) {
                assert_eq!(n1, n2, "{name}");
                assert_eq!(v1, v2, "{name} rank {} param {n1}", a.rank);
            }
            assert_eq!(
                (a.volume.bytes_sent, a.volume.messages_sent),
                (b.volume.bytes_sent, b.volume.messages_sent),
                "{name} rank {}: traffic must be identical",
                a.rank
            );
        }
    }
}

/// Acceptance criterion: under a seeded 10%-drop plan with retries,
/// decentralized variants complete (surviving-rank renormalization is a
/// no-op here — nobody crashes) and the metrics report non-zero
/// retries/recoveries priced through the network model.
#[test]
fn drops_with_retries_recover_and_are_metered() {
    for variant in [Variant::Cdsgd, Variant::Mavg { period: 2 }] {
        let name = variant.name();
        let report = runner(variant)
            .steps(8)
            .network(NetworkModel::aries())
            .faults(FaultPlan::seeded(7).with_drops(0.10, 5).with_patience(0.25))
            .run()
            .unwrap();
        assert!(report.all_completed(), "{name}: retries must mask drops");
        let f = report.faults();
        assert!(f.drops_injected > 0, "{name}: plan must actually drop");
        assert!(f.retries > 0, "{name}: drops must be retried");
        assert!(f.recoveries > 0, "{name}: retransmissions are recoveries");
        assert!(
            f.recovery_virtual_s > 0.0,
            "{name}: recovery must cost virtual time"
        );
        // Synchronous allreduce schemes stay consistent because every
        // message is eventually delivered, in order.
        let c = report.consistency(1e-5);
        assert!(c.is_consistent(), "{name}: {c}");
    }
}

/// Stale-synchronous SGD tolerates unrecovered drops (staleness absorbs
/// the lost round); PSSGD has no such slack and must abort with a typed
/// error — cleanly, within the patience bound, not by panicking or
/// deadlocking.
#[test]
fn ssp_converges_under_drops_while_pssgd_aborts_cleanly() {
    let plan = || {
        FaultPlan::seeded(13)
            .with_drops(0.10, 0) // no retries: drops surface
            .with_patience(0.1)
    };
    let ssp = DistributedRunner::new(&net(), dataset(1024))
        .world(4)
        .batch(8)
        .steps(30)
        .seed(2)
        .learning_rate(0.05)
        .variant(Variant::StaleSynchronous { max_staleness: 1 })
        .faults(plan())
        .run()
        .unwrap();
    assert!(
        ssp.all_completed(),
        "SSP absorbs drops: {:?}",
        ssp.ranks
            .iter()
            .map(|r| (r.rank, r.status.clone()))
            .collect::<Vec<_>>()
    );
    let f = ssp.faults();
    assert!(f.drops_injected > 0, "the plan must actually drop");
    assert!(f.steps_lost > 0, "lost contributions are counted");
    // Converges: late mean loss below early mean loss on every rank.
    for r in &ssp.ranks {
        let head: f32 = r.losses[..5].iter().sum::<f32>() / 5.0;
        let tail: f32 = r.losses[r.losses.len() - 5..].iter().sum::<f32>() / 5.0;
        assert!(tail < head, "rank {}: loss {head} -> {tail}", r.rank);
    }

    let ps = DistributedRunner::new(&net(), dataset(1024))
        .world(4)
        .batch(8)
        .steps(30)
        .seed(2)
        .learning_rate(0.05)
        .variant(Variant::Pssgd)
        .faults(plan())
        .run()
        .unwrap();
    assert!(
        !ps.all_completed(),
        "PSSGD cannot survive unrecovered drops"
    );
    let failed = ps.failed();
    assert!(!failed.is_empty());
    for r in failed {
        match &r.status {
            RankStatus::Failed(msg) => {
                let msg = msg.to_lowercase();
                assert!(
                    msg.contains("dropped")
                        || msg.contains("timed out")
                        || msg.contains("closed")
                        || msg.contains("dead"),
                    "rank {} must carry a typed cause, got: {msg}",
                    r.rank
                );
            }
            other => panic!("expected Failed, got {other:?}"),
        }
    }
}

/// Acceptance criterion: same seed ⇒ same injected fault sequence. The
/// witness is threefold: identical counters, identical losses, identical
/// parameters. A different seed must produce a different schedule.
#[test]
fn same_seed_means_same_faults() {
    let run = |seed: u64| {
        runner(Variant::Cdsgd)
            .steps(8)
            .network(NetworkModel::aries())
            .faults(
                FaultPlan::seeded(seed)
                    .with_drops(0.15, 5)
                    .with_delays(0.2, 4.0)
                    .with_patience(0.25),
            )
            .run()
            .unwrap()
    };
    let a = run(42);
    let b = run(42);
    assert_eq!(a.faults(), b.faults(), "counters must replay exactly");
    for (ra, rb) in a.ranks.iter().zip(&b.ranks) {
        assert_eq!(ra.losses, rb.losses);
        assert_eq!(ra.faults, rb.faults, "per-rank counters replay");
    }
    let c = run(43);
    assert_ne!(
        a.faults(),
        c.faults(),
        "a different seed should produce a different fault schedule"
    );
}

/// Graceful degradation: a planned crash kills one rank; the surviving
/// ranks of decentralized schemes re-form the ring, renormalize the
/// average over the live group, and finish consistent with each other.
#[test]
fn decentralized_survivors_renormalize_after_crash() {
    for variant in [
        Variant::Cdsgd,
        Variant::Horovod,
        Variant::Mavg { period: 2 },
    ] {
        let name = variant.name();
        let report = runner(variant)
            .steps(8)
            .faults(FaultPlan::seeded(5).with_crash(2, 4).with_patience(0.25))
            .run()
            .unwrap();
        assert_eq!(
            report.ranks[2].status,
            RankStatus::Crashed { at_step: 4 },
            "{name}"
        );
        assert_eq!(report.ranks[2].losses.len(), 4, "{name}: trained to crash");
        for r in [0usize, 1, 3] {
            assert_eq!(
                report.ranks[r].status,
                RankStatus::Completed,
                "{name} rank {r} must survive"
            );
            assert_eq!(report.ranks[r].losses.len(), 8, "{name} rank {r}");
        }
        let f = report.faults();
        assert_eq!(f.crashes_injected, 1, "{name}");
        assert!(f.recoveries > 0, "{name}: survivors detect and re-form");
        // Survivors agree among themselves (consistency() skips the
        // crashed rank).
        let c = report.consistency(1e-5);
        assert_eq!(c.ranks_checked, 3, "{name}");
        assert!(c.is_consistent(), "{name}: {c}");
    }
}

/// PSSGD fail-over: when the server (lowest rank) crashes, the lowest
/// *live* rank takes over — synchronous PS keeps every replica identical,
/// so survivors continue consistently.
#[test]
fn pssgd_fails_over_to_lowest_live_rank() {
    let report = runner(Variant::Pssgd)
        .steps(8)
        .faults(FaultPlan::seeded(3).with_crash(0, 3).with_patience(0.25))
        .run()
        .unwrap();
    assert_eq!(report.ranks[0].status, RankStatus::Crashed { at_step: 3 });
    for r in 1..4 {
        assert_eq!(
            report.ranks[r].status,
            RankStatus::Completed,
            "rank {r} must ride out the fail-over"
        );
    }
    let c = report.consistency(1e-5);
    assert_eq!(c.ranks_checked, 3);
    assert!(c.is_consistent(), "{c}");
}

/// Stragglers do not change the math, only the virtual clock: the slowed
/// rank's virtual time grows, and all ranks stay consistent.
#[test]
fn straggler_slows_the_clock_not_the_math() {
    let plain = runner(Variant::Cdsgd).run().unwrap();
    let slowed = runner(Variant::Cdsgd)
        .faults(FaultPlan::seeded(1).with_straggler(1, 8.0))
        .run()
        .unwrap();
    assert!(slowed.all_completed());
    assert!(slowed.faults().straggler_slowdowns > 0);
    let c = slowed.consistency(1e-5);
    assert!(c.is_consistent(), "{c}");
    for (a, b) in plain.ranks.iter().zip(&slowed.ranks) {
        assert_eq!(a.losses, b.losses, "straggling is timing-only");
    }
    // The straggler's own clock stretched measurably.
    assert!(
        slowed.ranks[1].virtual_time > plain.ranks[1].virtual_time,
        "{} !> {}",
        slowed.ranks[1].virtual_time,
        plain.ranks[1].virtual_time
    );
}
