//! Brick subsystem regressions: decompose/dedup round-trip, gradient-
//! density modeling, and end-to-end prediction error.

use deep500::graph::{models, Engine, ExecutorKind};
use deep500::metrics::{Phase, TraceRecorder};
use deep500::tensor::{Shape, Tensor, Xoshiro256StarStar};
use deep500_bench::bricks::{calibrate, decompose, dedup, measure, predict, BrickCost, BrickKey};
use std::collections::HashMap;

fn mlp_feeds(batch: usize, features: usize) -> Vec<(&'static str, Shape)> {
    let _ = features;
    vec![
        ("x", Shape::new(&[batch, features])),
        ("labels", Shape::new(&[batch])),
    ]
}

#[test]
fn decompose_dedup_round_trip_preserves_every_node() {
    let zoo = vec![
        (
            "mlp_a".to_string(),
            decompose(
                &models::mlp(16, &[32, 24], 4, 1).unwrap(),
                &mlp_feeds(8, 16),
                "loss",
            )
            .unwrap(),
        ),
        (
            "mlp_b".to_string(),
            decompose(
                &models::mlp(16, &[32, 24], 4, 2).unwrap(),
                &mlp_feeds(8, 16),
                "loss",
            )
            .unwrap(),
        ),
        (
            "lenet".to_string(),
            decompose(
                &models::lenet(1, 14, 4, 3).unwrap(),
                &[
                    ("x", Shape::new(&[2, 1, 14, 14])),
                    ("labels", Shape::new(&[2])),
                ],
                "loss",
            )
            .unwrap(),
        ),
    ];
    let total: usize = zoo.iter().map(|(_, v)| v.len()).sum();
    let set = dedup(&zoo);

    // Round trip: multiplicities account for every decomposed node, and
    // every instance's key resolves back into the set.
    assert_eq!(set.total_instances, total);
    assert_eq!(set.bricks.iter().map(|b| b.count).sum::<usize>(), total);
    for (_, instances) in &zoo {
        for inst in instances {
            let i = set
                .index_of(&inst.key)
                .unwrap_or_else(|| panic!("missing brick {}", inst.key.render()));
            assert_eq!(set.bricks[i].key, inst.key);
        }
    }

    // mlp_a and mlp_b differ only in their weight values, which bricks
    // deliberately abstract over: the two must dedup perfectly.
    let (a, b) = (&zoo[0].1, &zoo[1].1);
    for (ia, ib) in a.iter().zip(b.iter()) {
        assert_eq!(ia.key, ib.key, "identical architectures must share bricks");
    }
    // 28 instances, lenet shares nothing with the MLPs: 21 unique.
    assert!(
        set.dedup_ratio() > 1.3,
        "two identical MLPs plus lenet must dedup well, got {:.2}",
        set.dedup_ratio()
    );
}

#[test]
fn gradient_density_reflects_backprop_context() {
    let bricks = decompose(
        &models::lenet(1, 14, 4, 3).unwrap(),
        &[
            ("x", Shape::new(&[2, 1, 14, 14])),
            ("labels", Shape::new(&[2])),
        ],
        "loss",
    )
    .unwrap();

    // The first conv sits below a relu and a max-pool in backprop order:
    // its incoming gradient must be modeled as mostly zeros.
    let conv1 = bricks
        .iter()
        .find(|b| b.key.op_type == "Conv2d")
        .expect("lenet has convs");
    assert!(
        conv1.grad_density < 0.5,
        "conv below relu+pool must see a sparse gradient, got {}",
        conv1.grad_density
    );

    // The loss node itself receives the dense seed, and the logits alias
    // sits on the backprop path (the loss consumes its output).
    let loss = bricks
        .iter()
        .find(|b| b.key.op_type == "SoftmaxCrossEntropy")
        .expect("lenet ends in a classifier loss");
    assert_eq!(loss.key.grad_pct, 100);
    let alias = bricks
        .iter()
        .find(|b| b.node.contains("alias"))
        .expect("classifier head exposes a logits alias");
    assert_eq!(alias.key.grad_pct, 100);

    // A branch backprop never reaches gets density 0: the executor skips
    // its backward entirely, and the predictor must not charge for it.
    let mut net = deep500::graph::Network::new("dead-branch");
    net.add_input("x");
    net.add_input("target");
    let attrs = deep500::ops::registry::Attributes::new;
    net.add_node("live", "Relu", attrs(), &["x"], &["y"])
        .unwrap();
    net.add_node("mse", "MseLoss", attrs(), &["y", "target"], &["loss"])
        .unwrap();
    net.add_node("dead", "Relu", attrs(), &["x"], &["dead_out"])
        .unwrap();
    net.add_output("loss");
    net.add_output("dead_out");
    let bricks = decompose(
        &net,
        &[("x", Shape::new(&[4, 8])), ("target", Shape::new(&[4, 8]))],
        "loss",
    )
    .unwrap();
    let by_node = |n: &str| bricks.iter().find(|b| b.node == n).unwrap();
    assert_eq!(by_node("dead").grad_density, 0.0);
    assert_eq!(by_node("live").key.grad_pct, 100);
}

/// End-to-end prediction-error regression. The release-build `bricks` bin
/// gates the paper's 25% target; under an unoptimized debug build with a
/// handful of rounds the tolerance here is deliberately loose — it guards
/// against the composition logic breaking (double-counted overhead,
/// dropped bricks, seconds/milliseconds mixups produce errors of 100%+),
/// not against timer jitter.
#[test]
fn composed_prediction_tracks_whole_model_measurement() {
    let net = models::mlp(24, &[48, 32], 4, 5).unwrap();
    let batch = 16;
    let instances = decompose(&net, &mlp_feeds(batch, 24), "loss").unwrap();
    let set = dedup(&[("mlp".to_string(), instances.clone())]);
    let costs_vec = measure(&set, 2, 5).unwrap();
    let costs: HashMap<BrickKey, BrickCost> = set
        .bricks
        .iter()
        .zip(&costs_vec)
        .map(|(b, c)| (b.key.clone(), *c))
        .collect();
    let overhead = calibrate(2, 5).unwrap();
    let pred = predict(&instances, &costs, &overhead).unwrap();
    assert!(pred.forward_s > 0.0 && pred.train_s > pred.forward_s);

    // Whole-model ground truth, same discipline as the bin.
    let recorder = TraceRecorder::new();
    let engine = Engine::builder(net)
        .executor(ExecutorKind::Reference)
        .trace(&recorder)
        .build()
        .unwrap();
    let session = engine.session();
    let mut rng = Xoshiro256StarStar::seed_from_u64(9);
    let x = Tensor::rand_uniform(Shape::new(&[batch, 24]), -0.5, 0.5, &mut rng);
    let labels: Vec<f32> = (0..batch).map(|i| (i % 4) as f32).collect();
    let labels = Tensor::from_vec(Shape::new(&[batch]), labels).unwrap();
    let feeds = vec![("x", x), ("labels", labels)];
    for _ in 0..2 {
        session.infer_and_backprop(&feeds, "loss").unwrap();
    }
    let mut meas_train = f64::INFINITY;
    for _ in 0..5 {
        let t0 = recorder.phase_total_s(Phase::Backprop);
        session.infer_and_backprop(&feeds, "loss").unwrap();
        meas_train = meas_train.min(recorder.phase_total_s(Phase::Backprop) - t0);
    }

    let rel_err = (pred.train_s - meas_train).abs() / meas_train;
    assert!(
        rel_err < 0.60,
        "debug-build training-step prediction {:.3} ms vs measured {:.3} ms \
         (rel err {:.2}) exceeds even the loose 60% debug tolerance",
        pred.train_s * 1e3,
        meas_train * 1e3,
        rel_err
    );
}
