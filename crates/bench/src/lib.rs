//! # deep500-bench — harness utilities
//!
//! Each `benches/figN_*.rs` target regenerates one table or figure of the
//! paper's evaluation (see `DESIGN.md`'s experiment index and
//! `EXPERIMENTS.md` for recorded results). This library holds the shared
//! plumbing: environment-driven scaling knobs and measurement helpers.

use deep500::metrics::stats::Summary;
use deep500::metrics::Timer;

pub mod bricks;

/// Read an environment scaling knob (`D5_BENCH_SCALE`): `full` runs
/// paper-scale problem sizes, anything else (default) runs reduced sizes
/// that finish in minutes on one core.
pub fn full_scale() -> bool {
    std::env::var("D5_BENCH_SCALE")
        .map(|v| v == "full")
        .unwrap_or(false)
}

/// Repetition count for timed measurements: the paper's 30 at full scale,
/// 7 otherwise (still enough for a nonparametric CI).
pub fn reruns() -> usize {
    if full_scale() {
        30
    } else {
        7
    }
}

/// Time `f` `reruns()` times and summarize (median + 95% CI).
pub fn measure<T>(mut f: impl FnMut() -> T) -> Summary {
    let n = reruns();
    let mut times = Vec::with_capacity(n);
    for _ in 0..n {
        let (_, secs) = Timer::time(&mut f);
        times.push(secs);
    }
    Summary::of(&times)
}

/// Format a summary as `median [lo, hi] ms`.
pub fn fmt_ms(s: &Summary) -> String {
    format!(
        "{:8.2} [{:6.2}, {:6.2}]",
        s.median * 1e3,
        s.median_ci.lo * 1e3,
        s.median_ci.hi * 1e3
    )
}

/// Print the standard bench banner.
pub fn banner(figure: &str, what: &str) {
    println!("================================================================");
    println!("Deep500-rs — {figure}");
    println!("{what}");
    println!(
        "scale: {} | reruns: {}",
        if full_scale() {
            "full (paper-size)"
        } else {
            "reduced (set D5_BENCH_SCALE=full)"
        },
        reruns()
    );
    println!("================================================================\n");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_returns_sane_summary() {
        let s = measure(|| std::hint::black_box((0..1000u64).sum::<u64>()));
        assert_eq!(s.n, reruns());
        assert!(s.median >= 0.0);
        assert!(s.median_ci.lo <= s.median && s.median <= s.median_ci.hi);
    }

    #[test]
    fn fmt_ms_shape() {
        let s = Summary::of(&[0.001, 0.002, 0.003]);
        let t = fmt_ms(&s);
        assert!(t.contains('['));
    }
}
