//! Stage 4: compose brick costs into whole-model runtime predictions.
//!
//! Summing per-brick span times under-predicts a real model: every node
//! also pays a dispatch cost the spans do not cover (topological walk,
//! feed routing, timer bookkeeping). That overhead is *measured*, not
//! assumed: [`calibrate`] runs two Relu-chain networks of different
//! depths, subtracts their operator-span totals from wall time, and
//! solves the two-point linear system for a fixed-per-pass and a
//! per-node overhead term — separately for forward-only and full
//! training passes, which exercise different amounts of glue.

use super::decompose::{BrickInstance, BrickKey};
use super::microbench::BrickCost;
use deep500::graph::{Engine, ExecutorKind, Network};
use deep500::ops::registry::Attributes;
use deep500::tensor::{Shape, Tensor, Xoshiro256StarStar};
use std::collections::HashMap;
use std::time::Instant;

/// Measured dispatch overhead of the execution engine, seconds.
#[derive(Debug, Clone, Copy, Default)]
pub struct Overhead {
    /// Fixed cost of one forward pass, independent of node count.
    pub fwd_fixed_s: f64,
    /// Marginal cost per node of a forward pass.
    pub fwd_per_node_s: f64,
    /// Fixed cost of one forward+backward pass.
    pub train_fixed_s: f64,
    /// Marginal cost per node of a forward+backward pass.
    pub train_per_node_s: f64,
}

/// Predicted whole-model runtime, seconds per pass.
#[derive(Debug, Clone, Copy, Default)]
pub struct Prediction {
    /// One forward pass.
    pub forward_s: f64,
    /// One training step (forward + backward).
    pub train_s: f64,
}

/// A `k`-deep Relu chain with an MseLoss tail: `k + 1` nodes whose
/// operator work is deliberately tiny, so wall time minus span time is
/// almost pure dispatch overhead.
fn relu_chain(k: usize) -> Result<(Network, Vec<(String, Tensor)>), String> {
    let shape = Shape::new(&[32, 64]);
    let mut rng = Xoshiro256StarStar::seed_from_u64(0xca11);
    let mut net = Network::new(format!("calibrate-relu-{k}"));
    net.add_input("x");
    let mut prev = "x".to_string();
    for i in 0..k {
        let out = format!("a{i}");
        net.add_node(
            format!("relu{i}"),
            "Relu",
            Attributes::new(),
            &[&prev],
            &[&out],
        )
        .map_err(|e| format!("calibration chain: {e}"))?;
        prev = out;
    }
    net.add_input("target");
    net.add_node(
        "mse",
        "MseLoss",
        Attributes::new(),
        &[&prev, "target"],
        &["loss"],
    )
    .map_err(|e| format!("calibration chain: {e}"))?;
    net.add_output("loss");
    let feeds = vec![
        (
            "x".to_string(),
            Tensor::rand_uniform(shape.clone(), -0.5, 0.5, &mut rng),
        ),
        (
            "target".to_string(),
            Tensor::rand_uniform(shape, -0.5, 0.5, &mut rng),
        ),
    ];
    Ok((net, feeds))
}

/// Best-of-N (forward, train) overhead of one pass over `net`: wall time
/// minus the sum of all operator span deltas.
fn measure_overhead(
    net: Network,
    feeds: &[(String, Tensor)],
    warmup: usize,
    rounds: usize,
) -> Result<(f64, f64), String> {
    // Trace exactly like the whole-model validation runs do: per-op span
    // recording is part of the dispatch overhead a traced model pays, so
    // the calibration chain must pay it too.
    let recorder = deep500::metrics::TraceRecorder::new();
    let engine = Engine::builder(net)
        .executor(ExecutorKind::Reference)
        .trace(&recorder)
        .build()
        .map_err(|e| format!("calibration engine: {e}"))?;
    let session = engine.session();
    let feed_refs =
        || -> Vec<(&str, Tensor)> { feeds.iter().map(|(n, t)| (n.as_str(), t.clone())).collect() };
    let span_totals = || -> (f64, f64) {
        engine
            .lock()
            .op_attribution()
            .iter()
            .map(|r| (r.forward_s, r.backward_s))
            .fold((0.0, 0.0), |(f, b), (df, db)| (f + df, b + db))
    };

    for _ in 0..warmup.max(1) {
        session
            .infer_and_backprop(&feed_refs(), "loss")
            .map_err(|e| format!("calibration warmup: {e}"))?;
    }

    let mut fwd_overhead = f64::INFINITY;
    let mut train_overhead = f64::INFINITY;
    for _ in 0..rounds.max(1) {
        let (f0, _) = span_totals();
        let t0 = Instant::now();
        session
            .infer(&feed_refs())
            .map_err(|e| format!("calibration infer: {e}"))?;
        let wall = t0.elapsed().as_secs_f64();
        let (f1, _) = span_totals();
        fwd_overhead = fwd_overhead.min((wall - (f1 - f0)).max(0.0));

        let (f0, b0) = span_totals();
        let t0 = Instant::now();
        session
            .infer_and_backprop(&feed_refs(), "loss")
            .map_err(|e| format!("calibration train: {e}"))?;
        let wall = t0.elapsed().as_secs_f64();
        let (f1, b1) = span_totals();
        train_overhead = train_overhead.min((wall - (f1 - f0) - (b1 - b0)).max(0.0));
    }
    Ok((fwd_overhead, train_overhead))
}

/// Measure the engine's dispatch overhead from two Relu-chain depths.
pub fn calibrate(warmup: usize, rounds: usize) -> Result<Overhead, String> {
    const K1: usize = 4;
    const K2: usize = 16;
    let (net1, feeds1) = relu_chain(K1)?;
    let (net2, feeds2) = relu_chain(K2)?;
    let (f1, t1) = measure_overhead(net1, &feeds1, warmup, rounds)?;
    let (f2, t2) = measure_overhead(net2, &feeds2, warmup, rounds)?;
    // The MseLoss tail makes the node counts k + 1.
    let n1 = (K1 + 1) as f64;
    let n2 = (K2 + 1) as f64;
    let fwd_per_node_s = ((f2 - f1) / (n2 - n1)).max(0.0);
    let train_per_node_s = ((t2 - t1) / (n2 - n1)).max(0.0);
    Ok(Overhead {
        fwd_fixed_s: (f1 - fwd_per_node_s * n1).max(0.0),
        fwd_per_node_s,
        train_fixed_s: (t1 - train_per_node_s * n1).max(0.0),
        train_per_node_s,
    })
}

/// Predict a model's per-pass runtime by summing its bricks' measured
/// costs plus the calibrated dispatch overhead for its node count.
pub fn predict(
    instances: &[BrickInstance],
    costs: &HashMap<BrickKey, BrickCost>,
    overhead: &Overhead,
) -> Result<Prediction, String> {
    let mut fwd = 0.0;
    let mut bwd = 0.0;
    for inst in instances {
        let c = costs
            .get(&inst.key)
            .ok_or_else(|| format!("no measured cost for brick {}", inst.key.render()))?;
        fwd += c.forward_s;
        // Backprop never reaches gradient-free nodes (dead branches like
        // a logits alias): the executor skips their backward entirely.
        if inst.grad_density > 0.0 {
            bwd += c.backward_s;
        }
    }
    let n = instances.len() as f64;
    Ok(Prediction {
        forward_s: fwd + overhead.fwd_fixed_s + overhead.fwd_per_node_s * n,
        train_s: fwd + bwd + overhead.train_fixed_s + overhead.train_per_node_s * n,
    })
}
