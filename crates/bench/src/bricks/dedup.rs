//! Stage 2: deduplicate brick instances across a model zoo.
//!
//! The whole point of brick-level benchmarking is that identical bricks
//! recur — within one model (stacked residual blocks) and across the zoo
//! (every classifier ends in the same softmax head at a given batch).
//! Unioning instances into a set of unique bricks means each is measured
//! once, and the *dedup ratio* (total instances / unique bricks) is the
//! speedup the micro-runner gets over benchmarking every node of every
//! model.

use super::decompose::{BrickInstance, BrickKey};
use std::collections::HashMap;

/// A unique brick with its zoo-wide multiplicity.
#[derive(Debug, Clone)]
pub struct Brick {
    pub key: BrickKey,
    /// One concrete instance to rebuild a micro-network from. All
    /// instances sharing a key are interchangeable for benchmarking: the
    /// key pins op kind, attributes, shapes, dtype, and tier.
    pub exemplar: BrickInstance,
    /// How many nodes across the zoo collapse onto this brick.
    pub count: usize,
}

/// The deduplicated union of every model's bricks.
#[derive(Debug, Clone, Default)]
pub struct BrickSet {
    /// Unique bricks in first-seen order (stable across runs: models and
    /// their nodes are walked in input order).
    pub bricks: Vec<Brick>,
    /// Total node instances the set was built from.
    pub total_instances: usize,
    index: HashMap<BrickKey, usize>,
}

impl BrickSet {
    /// Instances-per-unique-brick; 1.0 means nothing deduplicated.
    pub fn dedup_ratio(&self) -> f64 {
        if self.bricks.is_empty() {
            return 1.0;
        }
        self.total_instances as f64 / self.bricks.len() as f64
    }

    /// Position of `key` in [`Self::bricks`], if present.
    pub fn index_of(&self, key: &BrickKey) -> Option<usize> {
        self.index.get(key).copied()
    }

    pub fn len(&self) -> usize {
        self.bricks.len()
    }

    pub fn is_empty(&self) -> bool {
        self.bricks.is_empty()
    }
}

/// Union per-model brick lists into a deduplicated [`BrickSet`].
pub fn dedup(models: &[(String, Vec<BrickInstance>)]) -> BrickSet {
    let mut set = BrickSet::default();
    for (_, instances) in models {
        for inst in instances {
            set.total_instances += 1;
            match set.index.get(&inst.key) {
                Some(&i) => set.bricks[i].count += 1,
                None => {
                    set.index.insert(inst.key.clone(), set.bricks.len());
                    set.bricks.push(Brick {
                        key: inst.key.clone(),
                        exemplar: inst.clone(),
                        count: 1,
                    });
                }
            }
        }
    }
    set
}
