//! Stage 1: decompose a model into canonical bricks.
//!
//! Walks the verifier IR (`Network::to_ir`), runs the concrete shape pass
//! to resolve every tensor, and emits one [`BrickInstance`] per node. The
//! instance's [`BrickKey`] is the canonical identity used for
//! deduplication: operator kind, attributes in sorted order, resolved
//! input shapes, dtype, and the dispatch tier the operator reports for
//! those shapes (`Operator::annotation`, e.g. a convolution's resolved
//! algorithm) — two convolutions that dispatch to different tiers are
//! different bricks even if their attributes agree.

use deep500::graph::Network;
use deep500::ops::registry::{create_op, AttrValue, Attributes};
use deep500::tensor::Shape;

/// Canonical brick identity: the dedup key.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BrickKey {
    /// Operator kind (`"Conv2d"`, `"Linear"`, ...).
    pub op_type: String,
    /// Attributes rendered in sorted-key order (`"pad=1;stride=2"`).
    pub attrs: String,
    /// Resolved input shapes, in operator-input order.
    pub in_dims: Vec<Vec<usize>>,
    /// Element dtype (`"f32"` unless the node declares otherwise).
    pub dtype: String,
    /// The dispatch tier the operator resolves to at these shapes
    /// (empty for ops that report none).
    pub tier: String,
    /// Expected density (percent, bucketed) of the output gradient the
    /// node receives during backprop in its parent model. Backward cost
    /// is sensitive to it — the conv backward skips zero gradient
    /// elements, and a node below a max-pool sees a mostly-zero dY — so
    /// two otherwise identical bricks with different incoming-gradient
    /// density are different bricks.
    pub grad_pct: u8,
}

impl BrickKey {
    /// Compact human-readable form for reports.
    pub fn render(&self) -> String {
        let shapes: Vec<String> = self
            .in_dims
            .iter()
            .map(|d| {
                let dims: Vec<String> = d.iter().map(|x| x.to_string()).collect();
                format!("[{}]", dims.join("x"))
            })
            .collect();
        let mut s = format!("{} {} {}", self.op_type, shapes.join(","), self.dtype);
        if !self.attrs.is_empty() {
            s.push_str(&format!(" {{{}}}", self.attrs));
        }
        if !self.tier.is_empty() {
            s.push_str(&format!(" {}", self.tier));
        }
        s.push_str(&format!(" grad={}%", self.grad_pct));
        s
    }
}

/// Render one attribute value without `Debug` noise (no `Int(..)`
/// wrappers or quotes — the result lands inside JSON strings).
fn render_attr(v: &AttrValue) -> String {
    match v {
        AttrValue::Int(i) => i.to_string(),
        AttrValue::Float(f) => format!("{f}"),
        AttrValue::Str(s) => s.clone(),
        AttrValue::Ints(v) => {
            let items: Vec<String> = v.iter().map(|i| i.to_string()).collect();
            items.join(",")
        }
    }
}

/// One resolved operator input.
#[derive(Debug, Clone)]
pub struct BrickInput {
    pub shape: Shape,
    /// Whether the parent model binds this input to a parameter (weights)
    /// rather than an activation — the micro-runner reproduces the same
    /// binding so gradient publication costs match.
    pub is_param: bool,
}

/// One node of a model, resolved to a concrete brick.
#[derive(Debug, Clone)]
pub struct BrickInstance {
    /// Node name in the parent model (diagnostics only; not part of the key).
    pub node: String,
    pub key: BrickKey,
    /// The node's attributes by value, for reconstructing a micro-network.
    pub attrs: Attributes,
    pub inputs: Vec<BrickInput>,
    pub out_shape: Shape,
    /// Unbucketed incoming-gradient density in `[0, 1]` (0 when backprop
    /// from `loss` never reaches this node).
    pub grad_density: f64,
}

/// Propagate expected gradient density backward from `loss`.
///
/// Backprop's cost depends on how sparse the flowing gradient is: a
/// max-pool passes gradient to one input element per window, a ReLU
/// zeroes it wherever the activation was clipped, while GEMM-backed ops
/// (conv, linear, batchnorm, losses) emit fully dense input gradients
/// regardless of what they receive. This walk assigns every tensor the
/// density of the gradient it will carry; multiple consumers accumulate
/// (saturating at 1.0), and a tensor backprop never reaches stays at 0.
fn grad_densities(
    ir: &deep500::verify::ir::GraphIr,
    shapes: &std::collections::HashMap<String, Shape>,
    loss: &str,
) -> std::collections::HashMap<String, f64> {
    let mut density: std::collections::HashMap<String, f64> = std::collections::HashMap::new();
    density.insert(loss.to_string(), 1.0);
    // `to_ir` preserves construction order, which is topological for every
    // network the builder APIs produce.
    for node in ir.nodes.iter().rev() {
        let dout: f64 = node
            .outputs
            .iter()
            .map(|o| density.get(o).copied().unwrap_or(0.0))
            .fold(0.0, f64::max);
        if dout == 0.0 {
            continue;
        }
        let numel = |name: &str| shapes.get(name).map(|s| s.numel().max(1)).unwrap_or(1);
        for (i, input) in node.inputs.iter().enumerate() {
            let d_in = match node.op_type.as_str() {
                // Element-wise mask: roughly half the activations clip.
                "Relu" => dout * 0.5,
                // One winning element per pooling window.
                "MaxPool2d" => dout * numel(&node.outputs[0]) as f64 / numel(input) as f64,
                // Gradient passes through unchanged (zeros stay zeros).
                "Add" | "Flatten" | "Reshape" | "Scale" | "Identity" => dout,
                // Losses are not differentiable in their label input.
                "SoftmaxCrossEntropy" if i == 1 => 0.0,
                // Everything else (conv, linear, batchnorm, losses, ...)
                // produces dense input gradients.
                _ => 1.0,
            };
            let slot = density.entry(input.clone()).or_insert(0.0);
            *slot = (*slot + d_in).min(1.0);
        }
    }
    density
}

/// Decompose `net` into one brick per node under the given feed shapes,
/// with `loss` naming the tensor training backprop seeds from. Fails if
/// the shape pass cannot resolve every tensor the nodes touch — an
/// unresolved brick cannot be keyed, let alone benchmarked.
pub fn decompose(
    net: &Network,
    input_shapes: &[(&str, Shape)],
    loss: &str,
) -> Result<Vec<BrickInstance>, String> {
    let ir = net.to_ir();
    let mut lints = Vec::new();
    let shapes = deep500::verify::shape_pass::infer(&ir, input_shapes, &[], &mut lints);
    let density = grad_densities(&ir, &shapes, loss);

    let mut bricks = Vec::with_capacity(ir.nodes.len());
    for node in &ir.nodes {
        if node.outputs.len() != 1 {
            return Err(format!(
                "{}: node '{}' has {} outputs; bricks are single-output",
                ir.name,
                node.name,
                node.outputs.len()
            ));
        }
        let mut in_shapes = Vec::with_capacity(node.inputs.len());
        for input in &node.inputs {
            let s = shapes.get(input).cloned().ok_or_else(|| {
                format!(
                    "{}: unresolved shape for input '{input}' of '{}'",
                    ir.name, node.name
                )
            })?;
            in_shapes.push(s);
        }
        let out_shape = shapes.get(&node.outputs[0]).cloned().ok_or_else(|| {
            format!(
                "{}: unresolved shape for output '{}' of '{}'",
                ir.name, node.outputs[0], node.name
            )
        })?;

        let op = create_op(&node.op_type, &node.attrs)
            .map_err(|e| format!("{}: node '{}': {e}", ir.name, node.name))?;
        let shape_refs: Vec<&Shape> = in_shapes.iter().collect();
        let tier = op.annotation(&shape_refs).unwrap_or_default();

        let attrs_canon: Vec<String> = node
            .attrs
            .iter_sorted()
            .iter()
            .map(|(k, v)| format!("{k}={}", render_attr(v)))
            .collect();
        let dtype = match node.attrs.get("dtype") {
            Some(AttrValue::Str(s)) => s.clone(),
            _ => "f32".to_string(),
        };
        let grad_density = density
            .get(&node.outputs[0])
            .copied()
            .unwrap_or(0.0)
            .clamp(0.0, 1.0);
        // Bucket to 5% steps: close-enough densities cost the same to
        // run, and finer buckets would shred the dedup ratio.
        let grad_pct = ((grad_density * 20.0).round() * 5.0) as u8;

        let key = BrickKey {
            op_type: node.op_type.clone(),
            attrs: attrs_canon.join(";"),
            in_dims: in_shapes.iter().map(|s| s.dims().to_vec()).collect(),
            dtype,
            tier,
            grad_pct,
        };
        let inputs = node
            .inputs
            .iter()
            .zip(&in_shapes)
            .map(|(name, shape)| BrickInput {
                shape: shape.clone(),
                is_param: ir.params.contains_key(name),
            })
            .collect();
        bricks.push(BrickInstance {
            node: node.name.clone(),
            key,
            attrs: node.attrs.clone(),
            inputs,
            out_shape,
            grad_density,
        });
    }
    Ok(bricks)
}
