//! Brick-level benchmark generation and runtime prediction (DLBricks).
//!
//! A *brick* is the unit the paper's composable-benchmark line of work
//! decomposes models into: one operator instance resolved to concrete
//! input shapes, attributes, dtype, and dispatch tier. Identical bricks
//! recur heavily both within a model (residual blocks) and across a model
//! zoo, so benchmarking the deduplicated brick set is far cheaper than
//! benchmarking every model — and summing measured brick costs (plus a
//! calibrated per-node dispatch overhead) predicts whole-model runtime
//! without ever running the model.
//!
//! The pipeline, each stage its own module:
//!
//! 1. [`decompose`](decompose::decompose) — walk a model's verifier IR
//!    ([`Network::to_ir`]), run the concrete shape pass, and emit one
//!    [`BrickInstance`] per node, keyed by (op kind, canonical attributes,
//!    resolved input shapes, dtype, tier).
//! 2. [`dedup`](dedup::dedup) — union instances across the zoo into a
//!    [`BrickSet`] of unique bricks with multiplicities, reporting the
//!    dedup ratio.
//! 3. [`microbench`](microbench::measure) — benchmark each unique brick
//!    once, through the same `Engine`/`Session` front door the serving
//!    and training layers use, with warmup and interleaved best-of-N.
//! 4. [`compose`](compose::predict) — sum brick costs plus a measured
//!    per-node dispatch overhead term ([`compose::calibrate`]) into
//!    whole-model forward and training-step predictions, validated
//!    against `TraceRecorder` measurements by the `bricks` bin.
//!
//! [`Network::to_ir`]: deep500::graph::Network::to_ir

pub mod compose;
pub mod decompose;
pub mod dedup;
pub mod microbench;

pub use compose::{calibrate, predict, Overhead, Prediction};
pub use decompose::{decompose, BrickInput, BrickInstance, BrickKey};
pub use dedup::{dedup, Brick, BrickSet};
pub use microbench::{measure, BrickCost, MicroRunner};
