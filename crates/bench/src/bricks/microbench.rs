//! Stage 3: micro-benchmark each unique brick.
//!
//! Every brick is rebuilt as a one-node micro-network and run through the
//! same [`Engine`]/`Session` front door the serving and training layers
//! use — not a bare operator call — so the measured cost includes exactly
//! the per-op work the real executors pay (timer spans, gradient
//! publication for parameter inputs, output routing).
//!
//! Timing discipline: all micro-engines are built up front, warmed up,
//! and then measured in *interleaved best-of-N* rounds — round-robin over
//! the whole brick set, one pass per brick per round, keeping the minimum
//! observed cost. Interleaving decorrelates a brick's samples from
//! transient machine noise (a frequency excursion hits one round of every
//! brick, not every round of one brick), and min-of-N estimates the noise
//! floor that composition should sum.

use super::decompose::BrickInstance;
use super::dedup::BrickSet;
use deep500::graph::{Engine, ExecutorKind, Network};
use deep500::ops::registry::{register_op, Attributes};
use deep500::ops::Operator;
use deep500::tensor::{Result as TensorResult, Shape, Tensor, Xoshiro256StarStar};
use std::sync::Once;

/// Synthetic loss tail for micro-networks: scalar forward, and a backward
/// that seeds the brick with a gradient of controlled density.
///
/// In a real model the gradient arriving at a node is rarely dense — a
/// max-pool upstream (in backprop order) zeroes all but one element per
/// window, a ReLU zeroes clipped positions — and sparsity-aware backward
/// kernels (the conv tier skips zero gradient elements) make backward
/// cost strongly density-dependent. Seeding with the density the
/// decomposer derived for the brick's context keeps the micro-benchmark
/// faithful; a plain dense MseLoss tail over-measured conv backward ~2x.
#[derive(Debug)]
struct GradSeedOp {
    /// Nonzero fraction of the emitted gradient, percent.
    pct: u8,
}

impl Operator for GradSeedOp {
    fn name(&self) -> &str {
        "BrickGradSeed"
    }
    fn num_inputs(&self) -> usize {
        1
    }
    fn output_shapes(&self, _s: &[&Shape]) -> TensorResult<Vec<Shape>> {
        Ok(vec![Shape::scalar()])
    }
    fn forward(&self, inputs: &[&Tensor]) -> TensorResult<Vec<Tensor>> {
        // Touch the input so the tail genuinely depends on the brick.
        let first = inputs[0].data().first().copied().unwrap_or(0.0);
        Ok(vec![Tensor::scalar(first * 1e-6)])
    }
    fn backward(
        &self,
        grad_outputs: &[&Tensor],
        inputs: &[&Tensor],
        _outputs: &[&Tensor],
    ) -> TensorResult<Vec<Tensor>> {
        let upstream = grad_outputs[0].data().first().copied().unwrap_or(1.0);
        let n = inputs[0].numel().max(1);
        let scale = upstream / n as f32;
        let mut g = Tensor::zeros(inputs[0].shape().clone());
        // Deterministic multiplicative-hash mask spreads the nonzeros
        // evenly, like real pooling/ReLU masks do.
        for (i, v) in g.data_mut().iter_mut().enumerate() {
            if (i.wrapping_mul(2654435761) >> 7) % 100 < self.pct as usize {
                *v = scale;
            }
        }
        Ok(vec![g])
    }
    fn flops(&self, _s: &[&Shape]) -> f64 {
        0.0
    }
}

/// Register the micro-benchmark tail op (idempotent).
fn register_micro_ops() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        register_op("BrickGradSeed", |attrs| {
            let pct = attrs.int_or("density_pct", 100).clamp(0, 100) as u8;
            Ok(Box::new(GradSeedOp { pct }) as _)
        });
    });
}

/// Measured cost of one brick, seconds per single pass.
#[derive(Debug, Clone, Copy, Default)]
pub struct BrickCost {
    /// Best-of-N forward span time.
    pub forward_s: f64,
    /// Best-of-N backward span time (gradient of the brick itself; the
    /// synthetic loss tail's cost is excluded by reading only the brick's
    /// own attribution row).
    pub backward_s: f64,
}

/// A brick rebuilt as a runnable one-node network.
struct MicroBench {
    engine: Engine,
    feeds: Vec<(String, Tensor)>,
    loss: String,
}

/// All of a brick set's micro-networks, ready to step one interleaved
/// measurement round at a time. Exposing rounds (rather than only the
/// one-shot [`measure`]) lets a caller interleave its own measurements —
/// the `bricks` bin alternates brick rounds with whole-model validation
/// passes so machine-speed drift hits both sides of the comparison
/// equally.
pub struct MicroRunner {
    benches: Vec<MicroBench>,
    costs: Vec<BrickCost>,
}

impl MicroRunner {
    /// Build a micro-network per unique brick in `set`.
    pub fn new(set: &BrickSet) -> Result<Self, String> {
        register_micro_ops();
        let mut benches = Vec::with_capacity(set.len());
        for (i, brick) in set.bricks.iter().enumerate() {
            benches.push(build_micro(&brick.exemplar, 0x5eed + i as u64)?);
        }
        let costs = vec![
            BrickCost {
                forward_s: f64::INFINITY,
                backward_s: f64::INFINITY,
            };
            benches.len()
        ];
        Ok(MicroRunner { benches, costs })
    }

    fn run_one(b: &MicroBench) -> Result<(), String> {
        let feeds: Vec<(&str, Tensor)> = b
            .feeds
            .iter()
            .map(|(n, t)| (n.as_str(), t.clone()))
            .collect();
        b.engine
            .session()
            .infer_and_backprop(&feeds, &b.loss)
            .map(|_| ())
            .map_err(|e| format!("brick pass failed: {e}"))
    }

    /// Run `passes` unmeasured passes over every brick.
    pub fn warmup(&self, passes: usize) -> Result<(), String> {
        for _ in 0..passes.max(1) {
            for b in &self.benches {
                Self::run_one(b)?;
            }
        }
        Ok(())
    }

    /// One interleaved measurement round: every brick gets one unmeasured
    /// re-warming pass (the prediction target is a model's steady-state
    /// hot loop, so a brick must not be charged for the cache eviction
    /// its interleaved neighbours just caused) and one measured pass,
    /// folded into the running best-of-N.
    pub fn round(&mut self) -> Result<(), String> {
        for (i, b) in self.benches.iter().enumerate() {
            Self::run_one(b)?;
            let (f0, b0) = brick_span_totals(&b.engine);
            Self::run_one(b)?;
            let (f1, b1) = brick_span_totals(&b.engine);
            self.costs[i].forward_s = self.costs[i].forward_s.min((f1 - f0).max(0.0));
            self.costs[i].backward_s = self.costs[i].backward_s.min((b1 - b0).max(0.0));
        }
        Ok(())
    }

    /// Best-of-N costs so far, in `set.bricks` order.
    pub fn costs(&self) -> &[BrickCost] {
        &self.costs
    }
}

/// Reconstruct `inst` as a single-node network plus its feeds. Parameter
/// inputs of the parent model become parameters here too (so backward
/// publishes their gradients, as it would in the real model); activation
/// inputs become fed graph inputs. A [`GradSeedOp`] tail is appended when
/// the brick's output is not already a scalar, seeding backprop with a
/// gradient of the brick's in-context density without disturbing the
/// brick's own spans.
fn build_micro(inst: &BrickInstance, seed: u64) -> Result<MicroBench, String> {
    let mut net = Network::new(format!("brick::{}", inst.key.render()));
    let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
    let mut feeds = Vec::new();
    let mut names = Vec::with_capacity(inst.inputs.len());

    for (j, input) in inst.inputs.iter().enumerate() {
        let name = format!("in{j}");
        // Loss operators consume class labels, not activations: feed
        // valid indices into the logits' class dimension.
        let data = if inst.key.op_type == "SoftmaxCrossEntropy" && j == 1 {
            let classes = *inst.inputs[0]
                .shape
                .dims()
                .last()
                .ok_or_else(|| "SoftmaxCrossEntropy logits must be ranked".to_string())?;
            let labels: Vec<f32> = (0..input.shape.numel())
                .map(|k| (k % classes.max(1)) as f32)
                .collect();
            Tensor::from_vec(input.shape.clone(), labels)
                .map_err(|e| format!("labels for {}: {e}", inst.key.render()))?
        } else {
            Tensor::rand_uniform(input.shape.clone(), -0.5, 0.5, &mut rng)
        };
        if input.is_param {
            net.add_parameter(&name, data);
        } else {
            net.add_input(&name);
            feeds.push((name.clone(), data));
        }
        names.push(name);
    }

    let in_refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
    net.add_node(
        "brick",
        &inst.key.op_type,
        inst.attrs.clone(),
        &in_refs,
        &["y"],
    )
    .map_err(|e| format!("{}: {e}", inst.key.render()))?;

    let loss = if inst.out_shape.numel() == 1 {
        net.add_output("y");
        "y".to_string()
    } else {
        net.add_node(
            "seed",
            "BrickGradSeed",
            Attributes::new().with_int("density_pct", inst.key.grad_pct as i64),
            &["y"],
            &["loss"],
        )
        .map_err(|e| format!("{}: seed tail: {e}", inst.key.render()))?;
        net.add_output("loss");
        "loss".to_string()
    };

    let engine = Engine::builder(net)
        .executor(ExecutorKind::Reference)
        .build()
        .map_err(|e| format!("{}: engine: {e}", inst.key.render()))?;
    Ok(MicroBench {
        engine,
        feeds,
        loss,
    })
}

/// The brick node's cumulative (forward_s, backward_s) attribution.
fn brick_span_totals(engine: &Engine) -> (f64, f64) {
    engine
        .lock()
        .op_attribution()
        .iter()
        .find(|r| r.name == "brick")
        .map(|r| (r.forward_s, r.backward_s))
        .unwrap_or((0.0, 0.0))
}

/// Benchmark every brick in `set`: `warmup` discarded passes, then
/// `rounds` interleaved measured passes keeping the per-brick minimum.
/// Costs come back in `set.bricks` order.
pub fn measure(set: &BrickSet, warmup: usize, rounds: usize) -> Result<Vec<BrickCost>, String> {
    let mut runner = MicroRunner::new(set)?;
    runner.warmup(warmup)?;
    for _ in 0..rounds.max(1) {
        runner.round()?;
    }
    Ok(runner.costs().to_vec())
}
