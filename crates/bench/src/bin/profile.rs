//! `profile` — the unified tracing/profiling harness.
//!
//! Runs two traced workloads into one shared
//! [`TraceRecorder`](deep500::metrics::TraceRecorder):
//!
//! 1. a 2-epoch wavefront-executor training run (operator, sampling,
//!    iteration, and epoch spans from the existing `Event` hooks), and
//! 2. a small data-parallel distributed run with every rank's communicator
//!    wrapped in a `TracingCommunicator` (per-peer communication spans).
//!
//! Emits, at the repo root:
//!
//! * `trace.json` — Chrome trace-event JSON; open in `chrome://tracing` or
//!   Perfetto. Self-validated with `validate_chrome_trace` before writing.
//! * `BENCH_profile.json` — machine-readable per-operator attribution
//!   (wall time, GFLOP/s, bytes moved), phase totals, dataset latency, and
//!   communication volume.
//!
//! Run with: `cargo run --release -p deep500-bench --bin profile`

use deep500::dist::{DistributedRunner, Variant};
use deep500::metrics::{validate_chrome_trace, Phase, TraceRecorder};
use deep500::prelude::*;
use std::sync::Arc;

fn main() {
    let recorder = TraceRecorder::new();

    // ---- 1. Traced 2-epoch wavefront training ----------------------------
    // Sized so operator work dominates per-node dispatch overhead: the
    // whole-run coverage gate below leaves <10% of epoch wall time
    // unattributed, which a toy model cannot meet in release builds.
    let features = 64;
    let net = models::mlp(features, &[256, 128], 8, 42).expect("build mlp");
    let engine = Engine::builder(net)
        .executor(ExecutorKind::Wavefront)
        .trace(&recorder)
        .build()
        .expect("build wavefront engine");
    let mut ex = engine.lock();

    let train_ds = SyntheticDataset::new(
        "profile-train",
        deep500::tensor::Shape::new(&[features]),
        8,
        256,
        0.2,
        7,
    );
    let mut sampler = ShuffleSampler::new(Arc::new(train_ds), 32, 7);
    let mut opt = GradientDescent::new(0.05);
    let mut runner = TrainingRunner::new(TrainingConfig {
        epochs: 2,
        ..Default::default()
    });
    runner.events.push(Box::new(recorder.sink("runner")));
    let log = runner
        .run(&mut opt, &mut *ex, &mut sampler, None)
        .expect("training run");
    ex.annotate_trace(&recorder);

    // ---- Whole-run attribution coverage ----------------------------------
    // Snapshotted here, before the distributed run adds its own spans.
    // Numerator: per-operator attribution plus every owned non-operator
    // phase of the training loop (sampling, batch assembly, loss-gradient
    // seeding, optimizer updates, pool/plan bookkeeping). Denominator: the
    // whole run — total `Epoch` wall time. What is left is genuinely
    // unowned glue (wavefront dispatch, runner loop overhead).
    let attribution = ex.op_attribution();
    let attributed: f64 = attribution.iter().map(|r| r.total_s()).sum();
    let owned_phases = [
        Phase::Sampling,
        Phase::BatchAssembly,
        Phase::LossSeed,
        Phase::OptimizerUpdate,
        Phase::Bookkeeping,
    ];
    let owned: f64 = owned_phases
        .iter()
        .map(|p| recorder.phase_total_s(*p))
        .sum();
    let run_total = recorder.phase_total_s(Phase::Epoch);
    let coverage = if run_total > 0.0 {
        (attributed + owned) / run_total
    } else {
        0.0
    };

    // ---- 2. Traced distributed run ---------------------------------------
    let dist_net = models::mlp(features, &[32], 4, 43).expect("build dist mlp");
    let dist_ds: Arc<dyn Dataset> = Arc::new(SyntheticDataset::new(
        "profile-dist",
        deep500::tensor::Shape::new(&[features]),
        4,
        128,
        0.2,
        8,
    ));
    let report = DistributedRunner::new(&dist_net, dist_ds)
        .world(2)
        .batch(8)
        .steps(8)
        .variant(Variant::Cdsgd)
        .trace(&recorder)
        .run()
        .expect("distributed run");
    assert!(report.all_completed(), "distributed ranks must complete");
    let volume = report.volume();

    // ---- Chrome trace: validate, then write ------------------------------
    let json = recorder.chrome_trace_json();
    let stats = match validate_chrome_trace(&json) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("profile: emitted Chrome trace fails validation: {e}");
            std::process::exit(1);
        }
    };
    let trace_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../trace.json");
    std::fs::write(trace_path, &json).expect("write trace.json");
    println!(
        "profile: wrote {trace_path} ({} spans, {} metadata events)",
        stats.spans, stats.metadata
    );

    // ---- Human-readable attribution --------------------------------------
    println!("\n{}", recorder.attribution_table().render());
    println!(
        "attribution coverage: {:.1}% of {:.1} ms whole-run (Epoch) wall time",
        coverage * 100.0,
        run_total * 1e3
    );
    if coverage < 0.90 {
        eprintln!(
            "profile: FAIL attribution coverage {:.4} below the 0.90 floor",
            coverage
        );
        std::process::exit(1);
    }
    let latency = log.dataset_latency().expect("batches were fetched");
    println!(
        "dataset latency: median {:.3} ms over {} batches ({:.1} ms total)",
        latency.median * 1e3,
        latency.n,
        log.sampling_total() * 1e3
    );
    println!(
        "communication: {} msgs / {} bytes sent across {} ranks",
        volume.messages_sent,
        volume.bytes_sent,
        report.ranks.len()
    );

    // ---- BENCH_profile.json ----------------------------------------------
    let op_rows: Vec<String> = attribution
        .iter()
        .map(|r| {
            format!(
                "    {{\"op\": \"{}\", \"forward_calls\": {}, \"backward_calls\": {}, \
                 \"forward_ms\": {:.6}, \"backward_ms\": {:.6}, \"gflops_per_s\": {:.3}, \
                 \"flops_per_call\": {:.1}, \"bytes_per_call\": {}}}",
                r.name,
                r.forward_calls,
                r.backward_calls,
                r.forward_s * 1e3,
                r.backward_s * 1e3,
                r.gflops_per_s(),
                r.flops_per_call,
                r.bytes_per_call
            )
        })
        .collect();
    // Every phase the metrics layer defines, not a hand-picked subset:
    // a new Phase variant shows up here (and in the schema check) for free.
    let phase_rows: Vec<String> = Phase::all()
        .iter()
        .map(|p| {
            // `+ 0.0` normalizes the -0.0 an empty phase can produce.
            let ms = recorder.phase_total_s(*p) * 1e3 + 0.0;
            format!("    \"{}\": {:.6}", p.label(), ms)
        })
        .collect();
    let profile_json = format!(
        "{{\n  \"benchmark\": \"profile\",\n  \"trace_file\": \"trace.json\",\n  \
         \"trace_spans\": {},\n  \"attribution_coverage\": {:.4},\n  \
         \"phase_totals_ms\": {{\n{}\n  }},\n  \"operators\": [\n{}\n  ],\n  \
         \"dataset_latency_ms\": {{\"median\": {:.6}, \"mean\": {:.6}, \"max\": {:.6}, \"n\": {}}},\n  \
         \"communication\": {{\"bytes_sent\": {}, \"bytes_received\": {}, \
         \"messages_sent\": {}, \"messages_received\": {}}}\n}}\n",
        stats.spans,
        coverage,
        phase_rows.join(",\n"),
        op_rows.join(",\n"),
        latency.median * 1e3,
        latency.mean * 1e3,
        latency.max * 1e3,
        latency.n,
        volume.bytes_sent,
        volume.bytes_received,
        volume.messages_sent,
        volume.messages_received,
    );
    let profile_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_profile.json");
    std::fs::write(profile_path, &profile_json).expect("write BENCH_profile.json");
    println!("profile: wrote {profile_path}");
}
