//! `serve` — load-generation benchmark for the deep500-serve front-end.
//!
//! Drives the mlp and lenet zoo models behind the serving layer with both
//! load-generator shapes at two batching policies each:
//!
//! * closed loop — C clients, one request in flight each: the
//!   latency-vs-concurrency probe;
//! * open loop — Poisson arrivals at a fixed offered rate (seeded, so
//!   reproducible): exposes queueing delay and typed `QueueFull`
//!   back-pressure.
//!
//! Emits `BENCH_serve.json` at the repo root with p50/p95/p99 latency,
//! throughput, rejection counts, and mean assembled batch size per
//! (model, loadgen, policy) cell, and exits non-zero if dynamic batching
//! fails to coalesce anything under the closed-loop burst.
//!
//! Run with: `cargo run --release -p deep500-bench --bin serve`
//! Set `D5_SERVE_SMOKE=1` for the fast CI-sized run.

use deep500::prelude::*;
use deep500::serve::{closed_loop, open_loop, LoadSummary};
use std::time::Duration;

struct Case {
    model: &'static str,
    loadgen: &'static str,
    policy_label: String,
    summary: LoadSummary,
}

struct ZooModel {
    name: &'static str,
    net_fn: fn() -> Network,
    feeds_fn: fn(usize) -> Vec<(String, Tensor)>,
    /// (input name, per-sample trailing dims) pairs for the contract.
    batched: &'static [(&'static str, &'static [usize])],
}

fn mlp_net() -> Network {
    models::mlp(16, &[32, 24], 4, 21).expect("mlp")
}

fn mlp_feeds(i: usize) -> Vec<(String, Tensor)> {
    let x: Vec<f32> = (0..16)
        .map(|j| ((i * 16 + j) as f32 * 0.31).sin())
        .collect();
    vec![
        ("x".to_string(), Tensor::from_vec([1, 16], x).unwrap()),
        ("labels".to_string(), Tensor::from_slice(&[(i % 4) as f32])),
    ]
}

fn lenet_net() -> Network {
    models::lenet(1, 12, 4, 22).expect("lenet")
}

fn lenet_feeds(i: usize) -> Vec<(String, Tensor)> {
    let x: Vec<f32> = (0..144)
        .map(|j| ((i * 144 + j) as f32 * 0.17).cos())
        .collect();
    vec![
        (
            "x".to_string(),
            Tensor::from_vec([1, 1, 12, 12], x).unwrap(),
        ),
        ("labels".to_string(), Tensor::from_slice(&[(i % 4) as f32])),
    ]
}

fn zoo() -> Vec<ZooModel> {
    vec![
        ZooModel {
            name: "mlp",
            net_fn: mlp_net,
            feeds_fn: mlp_feeds,
            batched: &[("x", &[16]), ("labels", &[])],
        },
        ZooModel {
            name: "lenet",
            net_fn: lenet_net,
            feeds_fn: lenet_feeds,
            batched: &[("x", &[1, 12, 12]), ("labels", &[])],
        },
    ]
}

fn build_server(model: &ZooModel, policy: BatchPolicy, workers: usize) -> Server {
    let mut config = ModelConfig::new((model.net_fn)())
        .executor(ExecutorKind::Planned)
        .policy(policy)
        .workers(workers)
        .queue_capacity(256);
    for (name, rest) in model.batched {
        config = config.batched_input(*name, rest);
    }
    Server::builder()
        .model(model.name, config)
        .build()
        .expect("server build")
}

fn main() {
    let smoke = std::env::var("D5_SERVE_SMOKE").is_ok();
    let (clients, per_client, open_total, open_rate) = if smoke {
        (4, 16, 96, 300.0)
    } else {
        (8, 64, 512, 600.0)
    };
    let policies = |max_delay_ms: u64| {
        vec![
            BatchPolicy::Single,
            BatchPolicy::Dynamic {
                max_batch: 16,
                max_delay: Duration::from_millis(max_delay_ms),
            },
        ]
    };

    let mut cases: Vec<Case> = Vec::new();
    let mut coalesced_somewhere = false;
    for model in zoo() {
        for policy in policies(2) {
            let server = build_server(&model, policy, 2);
            let summary = closed_loop(&server, model.name, clients, per_client, model.feeds_fn);
            println!(
                "serve: {:<6} closed {:<18} p50 {:7.3}ms p95 {:7.3}ms p99 {:7.3}ms \
                 {:7.1} req/s mean batch {:.2}",
                model.name,
                policy.label(),
                summary.p50_ms,
                summary.p95_ms,
                summary.p99_ms,
                summary.throughput_rps,
                summary.mean_batch_rows,
            );
            if matches!(policy, BatchPolicy::Dynamic { .. }) && summary.mean_batch_rows > 1.0 {
                coalesced_somewhere = true;
            }
            cases.push(Case {
                model: model.name,
                loadgen: "closed",
                policy_label: policy.label(),
                summary,
            });
            server.shutdown();

            let server = build_server(&model, policy, 2);
            let summary = open_loop(
                &server,
                model.name,
                open_rate,
                open_total,
                0xD5,
                model.feeds_fn,
            );
            println!(
                "serve: {:<6} open   {:<18} p50 {:7.3}ms p95 {:7.3}ms p99 {:7.3}ms \
                 {:7.1} req/s rejected {}",
                model.name,
                policy.label(),
                summary.p50_ms,
                summary.p95_ms,
                summary.p99_ms,
                summary.throughput_rps,
                summary.rejected,
            );
            cases.push(Case {
                model: model.name,
                loadgen: "open",
                policy_label: policy.label(),
                summary,
            });
            server.shutdown();
        }
    }

    let rows: Vec<String> = cases
        .iter()
        .map(|c| {
            let s = &c.summary;
            format!(
                "    {{\"model\": \"{}\", \"loadgen\": \"{}\", \"policy\": \"{}\", \
                 \"sent\": {}, \"completed\": {}, \"rejected\": {}, \"failed\": {}, \
                 \"duration_s\": {:.4}, \"throughput_rps\": {:.2}, \
                 \"p50_ms\": {:.4}, \"p95_ms\": {:.4}, \"p99_ms\": {:.4}, \
                 \"mean_batch_rows\": {:.3}}}",
                c.model,
                c.loadgen,
                c.policy_label,
                s.sent,
                s.completed,
                s.rejected,
                s.failed,
                s.duration_s,
                s.throughput_rps,
                s.p50_ms,
                s.p95_ms,
                s.p99_ms,
                s.mean_batch_rows,
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"benchmark\": \"serve\",\n  \"smoke\": {smoke},\n  \
         \"clients\": {clients},\n  \"open_rate_rps\": {open_rate},\n  \
         \"cases\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");
    std::fs::write(path, &json).expect("write BENCH_serve.json");
    println!("serve: wrote {path}");

    let incomplete: Vec<&Case> = cases
        .iter()
        .filter(|c| {
            c.summary.failed > 0 || c.summary.completed + c.summary.rejected != c.summary.sent
        })
        .collect();
    if !incomplete.is_empty() {
        for c in &incomplete {
            eprintln!(
                "serve: FAIL {} {} {}: sent {} completed {} rejected {} failed {}",
                c.model,
                c.loadgen,
                c.policy_label,
                c.summary.sent,
                c.summary.completed,
                c.summary.rejected,
                c.summary.failed
            );
        }
        std::process::exit(1);
    }
    if !coalesced_somewhere {
        eprintln!("serve: FAIL dynamic batching never coalesced under closed-loop load");
        std::process::exit(1);
    }
    println!("serve: all requests accounted for; dynamic batching coalesced under load");
}
