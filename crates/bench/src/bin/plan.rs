//! `plan` — the graph compile pipeline benchmark.
//!
//! For every model in the zoo slice below, this harness:
//!
//! 1. **Parity** — compiles the network (constant folding, CSE,
//!    elementwise fusion, GEMM-epilogue fusion) and checks the
//!    `PlannedExecutor` on the compiled graph against the
//!    `ReferenceExecutor` on the original graph, *bitwise*: inference
//!    outputs and — under the training-safe pass set — every parameter
//!    gradient.
//! 2. **Speed** — times the planned executor (static memory plan, frozen
//!    dispatch lists, integer-indexed environment) against the pooled
//!    `WavefrontExecutor` on the uncompiled graph and reports the
//!    median-over-median speedup.
//! 3. **Memory** — compares the ahead-of-time plan's static bytes against
//!    the verifier's interference lower bound (must be ≥) and the pooled
//!    executor's observed `peak_memory()` (must be ≤).
//!
//! Emits `BENCH_plan.json` at the repo root and exits non-zero if any
//! parity, memory-bound, or speedup criterion fails.
//!
//! Run with: `cargo run --release -p deep500-bench --bin plan`

use deep500::graph::compile;
use deep500::prelude::*;
use deep500::tensor::rng::Xoshiro256StarStar;

struct Case {
    name: &'static str,
    net: Network,
    feed_shape: Vec<usize>,
    classes: usize,
    /// Timed passes (parity always runs; heavy conv models time fewer).
    reps: usize,
}

fn zoo() -> Vec<Case> {
    vec![
        Case {
            name: "mlp-small",
            net: models::mlp(16, &[32, 24], 4, 11).expect("mlp-small"),
            feed_shape: vec![4, 16],
            classes: 4,
            reps: 400,
        },
        Case {
            name: "mlp-wide",
            net: models::mlp(64, &[128, 96, 64], 8, 3).expect("mlp-wide"),
            feed_shape: vec![16, 64],
            classes: 8,
            reps: 200,
        },
        Case {
            name: "lenet",
            net: models::lenet(1, 28, 10, 2).expect("lenet"),
            feed_shape: vec![4, 1, 28, 28],
            classes: 10,
            reps: 20,
        },
    ]
}

fn feeds_for(case: &Case, seed: u64) -> Vec<(String, Tensor)> {
    let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
    let batch = case.feed_shape[0];
    let x = Tensor::rand_uniform(Shape::new(&case.feed_shape), -1.0, 1.0, &mut rng);
    let labels: Vec<f32> = (0..batch).map(|i| (i % case.classes) as f32).collect();
    vec![
        ("x".to_string(), x),
        ("labels".to_string(), Tensor::from_slice(&labels)),
    ]
}

fn as_refs(feeds: &[(String, Tensor)]) -> Vec<(&str, Tensor)> {
    feeds.iter().map(|(n, t)| (n.as_str(), t.clone())).collect()
}

fn input_shapes(case: &Case) -> Vec<(&str, Shape)> {
    vec![
        ("x", Shape::new(&case.feed_shape)),
        ("labels", Shape::new(&[case.feed_shape[0]])),
    ]
}

fn bits(t: &Tensor) -> Vec<u32> {
    t.data().iter().map(|v| v.to_bits()).collect()
}

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    samples[samples.len() / 2]
}

struct Row {
    name: &'static str,
    nodes_before: usize,
    nodes_after: usize,
    fused_epilogues: usize,
    rewrites: usize,
    parity: bool,
    backprop_parity: bool,
    planned_ms: f64,
    wavefront_ms: f64,
    speedup: f64,
    plan_bytes: usize,
    pool_lower_bound: usize,
    wavefront_peak: usize,
}

fn run_case(case: &Case) -> Row {
    let feeds = feeds_for(case, 1234);
    let feeds = as_refs(&feeds);
    let shapes = input_shapes(case);

    // ---- Inference parity: compiled+planned vs uncompiled reference ----
    let mut compiled = case.net.clone_structure();
    let report = compile::compile(&mut compiled, &shapes, &CompileOptions::inference())
        .expect("compile (inference)");
    let reference_engine = Engine::builder(case.net.clone_structure())
        .build()
        .expect("reference");
    let mut reference = reference_engine.lock();
    // `plan()` (memory-plan introspection below) lives on the concrete
    // executor, not the `GraphExecutor` trait, so unwrap and downcast.
    let mut planned_boxed = Engine::builder(compiled)
        .executor(ExecutorKind::Planned)
        .build()
        .expect("planned")
        .into_inner()
        .expect("sole handle");
    let planned = planned_boxed
        .as_any_mut()
        .downcast_mut::<deep500::graph::PlannedExecutor>()
        .expect("planned engine holds a PlannedExecutor");
    let expect = reference.inference(&feeds).expect("reference pass");
    let mut parity = true;
    // Two passes so slot reuse is exercised, not just first-touch buffers.
    for _ in 0..2 {
        let got = planned.inference(&feeds).expect("planned pass");
        for (name, t) in &expect {
            if bits(&got[name]) != bits(t) {
                eprintln!("plan: {} output '{name}' diverged bitwise", case.name);
                parity = false;
            }
        }
    }

    // ---- Backprop parity under the training-safe pass set -------------
    let mut train_compiled = case.net.clone_structure();
    compile::compile(&mut train_compiled, &shapes, &CompileOptions::training())
        .expect("compile (training)");
    let tref_engine = Engine::builder(case.net.clone_structure())
        .build()
        .expect("reference");
    let mut tref = tref_engine.lock();
    let tplan_engine = Engine::builder(train_compiled)
        .executor(ExecutorKind::Planned)
        .build()
        .expect("planned");
    let mut tplan = tplan_engine.lock();
    let r_out = tref
        .inference_and_backprop(&feeds, "loss")
        .expect("reference backprop");
    let p_out = tplan
        .inference_and_backprop(&feeds, "loss")
        .expect("planned backprop");
    let mut backprop_parity = bits(&r_out["loss"]) == bits(&p_out["loss"]);
    for p in tref.network().get_params().to_vec() {
        let g = deep500::graph::grad_name(&p);
        let rg = tref.network().fetch_tensor(&g).expect("reference grad");
        let pg = tplan.network().fetch_tensor(&g).expect("planned grad");
        if bits(rg) != bits(pg) {
            eprintln!("plan: {} gradient of '{p}' diverged bitwise", case.name);
            backprop_parity = false;
        }
    }

    // ---- Timing: planned (compiled) vs pooled wavefront (original) ----
    let wavefront_engine = Engine::builder(case.net.clone_structure())
        .executor(ExecutorKind::Wavefront)
        .build()
        .expect("wavefront");
    let mut wavefront = wavefront_engine.lock();
    let warmup = (case.reps / 10).max(3);
    for _ in 0..warmup {
        planned.inference(&feeds).expect("planned warmup");
        wavefront.inference(&feeds).expect("wavefront warmup");
    }
    let mut planned_times = Vec::with_capacity(case.reps);
    let mut wavefront_times = Vec::with_capacity(case.reps);
    for _ in 0..case.reps {
        let (r, t) = Timer::time(|| planned.inference(&feeds));
        r.expect("planned timed pass");
        planned_times.push(t);
        let (r, t) = Timer::time(|| wavefront.inference(&feeds));
        r.expect("wavefront timed pass");
        wavefront_times.push(t);
    }
    let planned_ms = median(&mut planned_times) * 1e3;
    let wavefront_ms = median(&mut wavefront_times) * 1e3;
    let speedup = if planned_ms > 0.0 {
        wavefront_ms / planned_ms
    } else {
        1.0
    };

    // ---- Memory: static plan vs lower bound vs observed pool peak -----
    let plan = planned.plan().expect("plan built by passes above");
    Row {
        name: case.name,
        nodes_before: report.nodes_before,
        nodes_after: report.nodes_after,
        fused_epilogues: report.fused_epilogues,
        rewrites: report.rewrites(),
        parity,
        backprop_parity,
        planned_ms,
        wavefront_ms,
        speedup,
        plan_bytes: plan.memory.total_bytes,
        pool_lower_bound: plan.memory.pool_lower_bound,
        wavefront_peak: wavefront.peak_memory(),
    }
}

fn main() {
    let rows: Vec<Row> = zoo().iter().map(run_case).collect();

    println!(
        "{:<10} {:>6} {:>6} {:>6} {:>10} {:>10} {:>8} {:>12} {:>12} {:>12}",
        "model",
        "nodes",
        "after",
        "fused",
        "planned_ms",
        "wavefr_ms",
        "speedup",
        "plan_B",
        "bound_B",
        "peak_B"
    );
    for r in &rows {
        println!(
            "{:<10} {:>6} {:>6} {:>6} {:>10.4} {:>10.4} {:>7.2}x {:>12} {:>12} {:>12}",
            r.name,
            r.nodes_before,
            r.nodes_after,
            r.fused_epilogues,
            r.planned_ms,
            r.wavefront_ms,
            r.speedup,
            r.plan_bytes,
            r.pool_lower_bound,
            r.wavefront_peak
        );
    }

    let mut failures = Vec::new();
    for r in &rows {
        if !r.parity {
            failures.push(format!("{}: inference outputs diverged bitwise", r.name));
        }
        if !r.backprop_parity {
            failures.push(format!("{}: gradients diverged bitwise", r.name));
        }
        if r.plan_bytes < r.pool_lower_bound {
            failures.push(format!(
                "{}: plan bytes {} below interference lower bound {}",
                r.name, r.plan_bytes, r.pool_lower_bound
            ));
        }
        if r.plan_bytes > r.wavefront_peak {
            failures.push(format!(
                "{}: plan bytes {} exceed observed pooled peak {}",
                r.name, r.plan_bytes, r.wavefront_peak
            ));
        }
    }
    const SPEEDUP_TARGET: f64 = 1.15;
    let max_speedup = rows.iter().map(|r| r.speedup).fold(0.0, f64::max);
    if max_speedup < SPEEDUP_TARGET {
        failures.push(format!(
            "no model reached the {SPEEDUP_TARGET}x planned-vs-pooled target (max {max_speedup:.2}x)"
        ));
    }

    let model_rows: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "    {{\"model\": \"{}\", \"nodes_before\": {}, \"nodes_after\": {}, \
                 \"fused_epilogues\": {}, \"rewrites\": {}, \"parity_bitwise\": {}, \
                 \"backprop_parity_bitwise\": {}, \"planned_ms\": {:.6}, \
                 \"wavefront_ms\": {:.6}, \"speedup\": {:.4}, \"plan_bytes\": {}, \
                 \"pool_lower_bound_bytes\": {}, \"wavefront_peak_bytes\": {}, \
                 \"plan_within_peak\": {}}}",
                r.name,
                r.nodes_before,
                r.nodes_after,
                r.fused_epilogues,
                r.rewrites,
                r.parity,
                r.backprop_parity,
                r.planned_ms,
                r.wavefront_ms,
                r.speedup,
                r.plan_bytes,
                r.pool_lower_bound,
                r.wavefront_peak,
                r.plan_bytes <= r.wavefront_peak
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"benchmark\": \"plan\",\n  \"speedup_target\": {SPEEDUP_TARGET},\n  \
         \"max_speedup\": {max_speedup:.4},\n  \"target_met\": {},\n  \
         \"models\": [\n{}\n  ]\n}}\n",
        max_speedup >= SPEEDUP_TARGET,
        model_rows.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_plan.json");
    std::fs::write(path, &json).expect("write BENCH_plan.json");
    println!("plan: wrote {path}");

    if !failures.is_empty() {
        for f in &failures {
            eprintln!("plan: FAIL {f}");
        }
        std::process::exit(1);
    }
    println!(
        "plan: all models bit-identical; max speedup {max_speedup:.2}x (target {SPEEDUP_TARGET}x)"
    );
}
