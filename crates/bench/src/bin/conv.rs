//! `conv` — DeepBench-style convolution tier sweep.
//!
//! Times each convolution execution tier (im2col lowering, Winograd
//! F(2x2, 3x3) where eligible, and the direct NCHWc implicit-GEMM tier)
//! on a fixed set of CNN-inference-class layer shapes from the embedded
//! DeepBench suite family, after asserting pairwise parity within l-inf
//! 1e-4. Emits `BENCH_conv.json` at the repo root with per-tier wall time
//! and achieved GFLOP/s plus the direct-over-im2col speedup per shape,
//! and exits non-zero if any tier diverges from the im2col baseline.
//!
//! Run with: `cargo run --release -p deep500-bench --bin conv`
//! Set `D5_CONV_SMOKE=1` for the fast CI-sized run.

use deep500::ops::conv::{Conv2dOp, ConvAlgorithm};
use deep500::ops::deepbench::ConvSize;
use deep500::ops::Operator;
use deep500::prelude::*;
use std::time::Instant;

/// Six DeepBench-class batch-1 inference cells: a strided stem, the
/// early big-spatial 3x3 body cells (where im2col's materialized `K x P`
/// column matrix runs to 7-14 MB and falls out of cache — the case the
/// direct tier's never-materialized B panels exist for), the mid-network
/// 3x3s at descending spatial / ascending channel extents, and a 1x1
/// projection (im2col's best case: the lowering is the identity, so this
/// cell keeps the sweep honest about where the direct win comes from).
fn cells() -> Vec<(&'static str, ConvSize)> {
    vec![
        ("stem7x7", ConvSize::new(1, 3, 112, 112, 32, 7, 2, 3)),
        ("mobile3x3_112", ConvSize::new(1, 32, 112, 112, 64, 3, 1, 1)),
        ("vgg3x3_56", ConvSize::new(1, 64, 56, 56, 64, 3, 1, 1)),
        ("body3x3_56", ConvSize::new(1, 32, 56, 56, 32, 3, 1, 1)),
        ("body3x3_28", ConvSize::new(1, 64, 28, 28, 64, 3, 1, 1)),
        ("proj1x1", ConvSize::new(1, 64, 28, 28, 128, 1, 1, 0)),
    ]
}

struct TierTime {
    tier: &'static str,
    ms: f64,
    gflops: f64,
}

fn rand_tensor(shape: &[usize], seed: u64) -> Tensor {
    let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
    Tensor::rand_uniform(shape, -1.0, 1.0, &mut rng)
}

/// Best-of-`reps` wall time of `op.forward` for every tier at once,
/// round-robin interleaved (tier A rep 1, tier B rep 1, ..., tier A rep
/// 2, ...) so slow machine-level noise lands on all tiers alike rather
/// than on whichever happened to run during the noisy window. Each op
/// gets one untimed warmup call first, which also charges the direct
/// tier's one-time filter packing to setup — where deployment pays it,
/// via the compile-time pack pass.
fn time_tiers(ops: &[Conv2dOp], inputs: &[&Tensor], reps: usize) -> Vec<f64> {
    for op in ops {
        op.forward(inputs).expect("warmup forward");
    }
    let mut best = vec![f64::INFINITY; ops.len()];
    for _ in 0..reps {
        for (op, best) in ops.iter().zip(&mut best) {
            let start = Instant::now();
            let out = op.forward(inputs).expect("timed forward");
            *best = best.min(start.elapsed().as_secs_f64());
            drop(out);
        }
    }
    best
}

fn main() {
    let smoke = std::env::var("D5_CONV_SMOKE").is_ok();
    let reps = if smoke { 5 } else { 30 };

    let mut rows: Vec<String> = Vec::new();
    let mut wins = 0usize;
    let mut parity_ok = true;
    for (name, cs) in cells() {
        let x = rand_tensor(&[cs.n, cs.c, cs.h, cs.w], 0xC0 ^ cs.k as u64);
        let w = rand_tensor(&[cs.k, cs.c, cs.r, cs.r], 0xC1 ^ cs.k as u64);
        let b = rand_tensor(&[cs.k], 0xC2 ^ cs.k as u64);
        let inputs = [&x, &w, &b];
        let flops = cs.flops();

        let wino_ok = cs.r == 3 && cs.stride == 1;
        let mut tiers: Vec<(&'static str, ConvAlgorithm)> = vec![
            ("im2col", ConvAlgorithm::Im2col),
            ("direct", ConvAlgorithm::Direct),
        ];
        if wino_ok {
            tiers.insert(1, ("winograd", ConvAlgorithm::Winograd));
        }

        // Parity first: every tier within l-inf 1e-4 of the im2col baseline.
        let baseline = Conv2dOp::new(cs.stride, cs.pad, ConvAlgorithm::Im2col)
            .forward(&inputs)
            .expect("baseline forward");
        for (tier, algo) in &tiers[1..] {
            let out = Conv2dOp::new(cs.stride, cs.pad, *algo)
                .forward(&inputs)
                .expect("tier forward");
            if !out[0].approx_eq(&baseline[0], 1e-4) {
                eprintln!("conv: FAIL {name} tier '{tier}' diverges from im2col");
                parity_ok = false;
            }
        }

        let ops: Vec<Conv2dOp> = tiers
            .iter()
            .map(|(_, algo)| Conv2dOp::new(cs.stride, cs.pad, *algo))
            .collect();
        let times = time_tiers(&ops, &inputs, reps);
        let timed: Vec<TierTime> = tiers
            .iter()
            .zip(&times)
            .map(|((tier, _), &secs)| TierTime {
                tier,
                ms: secs * 1e3,
                gflops: flops / secs / 1e9,
            })
            .collect();
        let ms_of = |t: &str| {
            timed
                .iter()
                .find(|r| r.tier == t)
                .map(|r| r.ms)
                .unwrap_or(f64::NAN)
        };
        let speedup = ms_of("im2col") / ms_of("direct");
        if speedup >= 3.0 {
            wins += 1;
        }
        println!(
            "conv: {:<11} n{} c{:<3} {:>3}x{:<3} co{:<3} k{} s{} p{}  {}  direct/im2col {:.2}x",
            name,
            cs.n,
            cs.c,
            cs.h,
            cs.w,
            cs.k,
            cs.r,
            cs.stride,
            cs.pad,
            timed
                .iter()
                .map(|t| format!("{} {:.3}ms ({:.1} GF/s)", t.tier, t.ms, t.gflops))
                .collect::<Vec<_>>()
                .join("  "),
            speedup,
        );
        let tier_json: Vec<String> = timed
            .iter()
            .map(|t| {
                format!(
                    "{{\"tier\": \"{}\", \"ms\": {:.4}, \"gflops_per_s\": {:.2}}}",
                    t.tier, t.ms, t.gflops
                )
            })
            .collect();
        rows.push(format!(
            "    {{\"name\": \"{}\", \"n\": {}, \"c\": {}, \"hw\": {}, \"co\": {}, \
             \"k\": {}, \"stride\": {}, \"pad\": {}, \"flops\": {:.0}, \
             \"tiers\": [{}], \"speedup_direct_vs_im2col\": {:.3}}}",
            name,
            cs.n,
            cs.c,
            cs.h,
            cs.k,
            cs.r,
            cs.stride,
            cs.pad,
            flops,
            tier_json.join(", "),
            speedup,
        ));
    }

    let json = format!(
        "{{\n  \"benchmark\": \"conv\",\n  \"smoke\": {smoke},\n  \"reps\": {reps},\n  \
         \"direct_3x_wins\": {wins},\n  \"cases\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_conv.json");
    std::fs::write(path, &json).expect("write BENCH_conv.json");
    println!("conv: wrote {path} (direct >=3x over im2col on {wins}/6 shapes)");

    if !parity_ok {
        std::process::exit(1);
    }
}
