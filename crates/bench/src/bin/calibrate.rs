//! `calibrate` — one-shot kernel speed report for this host.
//!
//! Prints the wallclock of the paper's two highlighted problem sizes
//! (Fig. 6's box-plot kernels) across the substrate's algorithm choices,
//! so benchmark scales can be picked for the machine at hand.
//!
//! Run with: `cargo run --release -p deep500-bench --bin calibrate`

use deep500::ops::conv::{Conv2dOp, ConvAlgorithm};
use deep500::ops::deepbench::{HIGHLIGHTED_CONV, HIGHLIGHTED_GEMM};
use deep500::ops::gemm::{matmul, Algorithm};
use deep500::ops::Operator;
use deep500::prelude::*;

fn main() {
    let mut rng = Xoshiro256StarStar::seed_from_u64(1);
    println!(
        "host calibration ({} logical cores)\n",
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    );

    let g = HIGHLIGHTED_GEMM;
    println!("GEMM {}x{}x{} (Fig. 6b highlight):", g.m, g.n, g.k);
    let a = Tensor::rand_uniform([g.m, g.k], -1.0, 1.0, &mut rng);
    let b = Tensor::rand_uniform([g.k, g.n], -1.0, 1.0, &mut rng);
    for algo in [Algorithm::Blocked, Algorithm::Parallel, Algorithm::Packed] {
        let t = Timer::start();
        let _ = matmul(algo, &a, &b).unwrap();
        println!(
            "  {algo:>9?}: {:8.1} ms  ({:.2} GFLOP/s)",
            t.elapsed_ms(),
            g.flops() / t.elapsed_s() / 1e9
        );
    }

    let c = HIGHLIGHTED_CONV;
    println!(
        "\nconv N={} C={} H=W={} k={} (Fig. 6a highlight):",
        c.n, c.c, c.h, c.r
    );
    let x = Tensor::rand_uniform([c.n, c.c, c.h, c.w], -1.0, 1.0, &mut rng);
    let w = Tensor::rand_uniform([c.k, c.c, c.r, c.r], -0.5, 0.5, &mut rng);
    let bias = Tensor::zeros([c.k]);
    for algo in [
        ConvAlgorithm::Direct,
        ConvAlgorithm::Im2col,
        ConvAlgorithm::Winograd,
    ] {
        let op = Conv2dOp::new(c.stride, c.pad, algo);
        // Untimed warm-up: the first call pays first-touch of the input,
        // filter packing, and scratch growth — without it the tier that
        // happens to run first looks slower than it is.
        let _ = op.forward(&[&x, &w, &bias]).unwrap();
        let t = Timer::start();
        let _ = op.forward(&[&x, &w, &bias]).unwrap();
        println!(
            "  {algo:>9?}: {:8.1} ms  ({:.2} GFLOP/s)",
            t.elapsed_ms(),
            c.flops() / t.elapsed_s() / 1e9
        );
    }
    println!(
        "\nuse D5_BENCH_SCALE=full for paper-size benchmark sweeps if these\nkernels complete in well under a second each."
    );
}
