//! `bricks` — brick-level benchmark generation and runtime prediction.
//!
//! The DLBricks-style pipeline over the model zoo:
//!
//! 1. decompose every zoo model into canonical bricks (op kind, resolved
//!    shapes, attributes, dtype, dispatch tier),
//! 2. deduplicate bricks across the zoo (the dedup ratio is the measured
//!    benchmarking-cost saving),
//! 3. micro-benchmark each unique brick once through the Engine/Session
//!    front door (warmup + interleaved best-of-N),
//! 4. predict each model's forward and training-step time by summing its
//!    bricks' costs plus a calibrated per-node dispatch overhead, and
//!    validate against whole-model `TraceRecorder` measurements.
//!
//! Emits `BENCH_bricks.json` at the repo root and fails (exit 1) if the
//! geometric-mean relative prediction error exceeds 25% or the zoo stops
//! deduplicating (ratio < 1.2).
//!
//! Run with: `cargo run --release -p deep500-bench --bin bricks`

use deep500::metrics::{Phase, TraceRecorder};
use deep500::prelude::*;
use deep500_bench::bricks::{
    calibrate, decompose, dedup, predict, BrickCost, BrickKey, MicroRunner,
};
use std::collections::HashMap;

struct ZooEntry {
    name: &'static str,
    net: deep500::graph::Network,
    x_shape: Shape,
    classes: usize,
}

fn zoo() -> Vec<ZooEntry> {
    vec![
        ZooEntry {
            name: "mlp_small",
            net: models::mlp(16, &[32, 24], 4, 42).expect("mlp_small"),
            x_shape: Shape::new(&[16, 16]),
            classes: 4,
        },
        ZooEntry {
            name: "mlp_wide",
            net: models::mlp(64, &[256, 128], 8, 43).expect("mlp_wide"),
            x_shape: Shape::new(&[32, 64]),
            classes: 8,
        },
        ZooEntry {
            name: "lenet",
            net: models::lenet(1, 14, 4, 44).expect("lenet"),
            x_shape: Shape::new(&[4, 1, 14, 14]),
            classes: 4,
        },
        ZooEntry {
            name: "alexnet_like",
            net: models::alexnet_like(1, 16, 5, 45).expect("alexnet_like"),
            x_shape: Shape::new(&[2, 1, 16, 16]),
            classes: 5,
        },
        ZooEntry {
            name: "mlp_deep",
            net: models::mlp(64, &[128, 128, 128], 8, 47).expect("mlp_deep"),
            x_shape: Shape::new(&[32, 64]),
            classes: 8,
        },
        ZooEntry {
            name: "resnet_like",
            net: models::resnet_like(1, 8, 8, 2, 4, 46).expect("resnet_like"),
            x_shape: Shape::new(&[2, 1, 8, 8]),
            classes: 4,
        },
        // Same family, twice the depth: the residual blocks are brick-
        // identical to `resnet_like`'s, which is exactly the cross-model
        // sharing brick decomposition exploits.
        ZooEntry {
            name: "resnet_deep",
            net: models::resnet_like(1, 8, 8, 4, 4, 48).expect("resnet_deep"),
            x_shape: Shape::new(&[2, 1, 8, 8]),
            classes: 4,
        },
    ]
}

/// Whole-model ground truth runner: `TraceRecorder` phase deltas for one
/// forward pass (`Inference`) and one training step (`Backprop`, whose
/// span covers the forward half too), folded into a running best-of-N by
/// [`ModelBench::round`].
struct ModelBench {
    recorder: TraceRecorder,
    engine: Engine,
    feeds: Vec<(String, Tensor)>,
    fwd_s: f64,
    train_s: f64,
}

impl ModelBench {
    fn new(entry: &ZooEntry) -> Result<ModelBench, String> {
        let recorder = TraceRecorder::new();
        let engine = Engine::builder(entry.net.clone_structure())
            .executor(ExecutorKind::Reference)
            .trace(&recorder)
            .build()
            .map_err(|e| format!("{}: engine: {e}", entry.name))?;
        let batch = entry.x_shape.dims()[0];
        let mut rng = Xoshiro256StarStar::seed_from_u64(0xbead);
        let x = Tensor::rand_uniform(entry.x_shape.clone(), -0.5, 0.5, &mut rng);
        let labels: Vec<f32> = (0..batch).map(|i| (i % entry.classes) as f32).collect();
        let labels = Tensor::from_vec(Shape::new(&[batch]), labels)
            .map_err(|e| format!("{}: labels: {e}", entry.name))?;
        Ok(ModelBench {
            recorder,
            engine,
            feeds: vec![("x".into(), x), ("labels".into(), labels)],
            fwd_s: f64::INFINITY,
            train_s: f64::INFINITY,
        })
    }

    fn warmup(&self, passes: usize) -> Result<(), String> {
        let feeds: Vec<(&str, Tensor)> = self
            .feeds
            .iter()
            .map(|(n, t)| (n.as_str(), t.clone()))
            .collect();
        for _ in 0..passes.max(1) {
            self.engine
                .session()
                .infer_and_backprop(&feeds, "loss")
                .map_err(|e| format!("model warmup: {e}"))?;
        }
        Ok(())
    }

    /// One measured forward pass and one measured training step.
    fn round(&mut self) -> Result<(), String> {
        let feeds: Vec<(&str, Tensor)> = self
            .feeds
            .iter()
            .map(|(n, t)| (n.as_str(), t.clone()))
            .collect();
        let session = self.engine.session();
        self.warmup(1)?;
        let f0 = self.recorder.phase_total_s(Phase::Inference);
        session
            .infer(&feeds)
            .map_err(|e| format!("model infer: {e}"))?;
        self.fwd_s = self
            .fwd_s
            .min(self.recorder.phase_total_s(Phase::Inference) - f0);

        let t0 = self.recorder.phase_total_s(Phase::Backprop);
        session
            .infer_and_backprop(&feeds, "loss")
            .map_err(|e| format!("model train: {e}"))?;
        self.train_s = self
            .train_s
            .min(self.recorder.phase_total_s(Phase::Backprop) - t0);
        Ok(())
    }
}

fn main() {
    deep500_bench::banner(
        "bricks",
        "Brick-level benchmark generation + runtime prediction by composition",
    );
    let warmup = 3;
    // Min-of-N needs enough rounds to find the noise floor on a shared
    // machine; the whole pipeline still finishes in seconds.
    let rounds = deep500_bench::reruns().max(12);
    let zoo = zoo();

    // ---- 1. Decompose -----------------------------------------------------
    let mut per_model = Vec::new();
    for entry in &zoo {
        let batch = entry.x_shape.dims()[0];
        let feeds: Vec<(&str, Shape)> = vec![
            ("x", entry.x_shape.clone()),
            ("labels", Shape::new(&[batch])),
        ];
        let instances = match decompose(&entry.net, &feeds, "loss") {
            Ok(b) => b,
            Err(e) => {
                eprintln!("bricks: decompose failed: {e}");
                std::process::exit(1);
            }
        };
        println!(
            "{:>14}: {} nodes -> {} bricks",
            entry.name,
            instances.len(),
            instances.len()
        );
        per_model.push((entry.name.to_string(), instances));
    }

    // ---- 2. Deduplicate ---------------------------------------------------
    let set = dedup(&per_model);
    println!(
        "\nzoo: {} node instances collapse to {} unique bricks (dedup ratio {:.2}x)\n",
        set.total_instances,
        set.len(),
        set.dedup_ratio()
    );

    // ---- 3. Interleaved measurement: bricks and whole models --------------
    // Brick rounds alternate with whole-model validation passes so that
    // machine-speed drift over the run hits both sides of the
    // predicted-vs-measured comparison equally; best-of-N then picks both
    // floors from the same fastest window.
    type MeasuredPair = (f64, f64);
    let run = || -> Result<(Vec<BrickCost>, Vec<MeasuredPair>), String> {
        let mut runner = MicroRunner::new(&set)?;
        let mut model_benches = Vec::with_capacity(zoo.len());
        for entry in &zoo {
            model_benches.push(ModelBench::new(entry)?);
        }
        runner.warmup(warmup)?;
        for mb in &model_benches {
            mb.warmup(warmup)?;
        }
        for _ in 0..rounds {
            runner.round()?;
            for mb in &mut model_benches {
                mb.round()?;
            }
        }
        Ok((
            runner.costs().to_vec(),
            model_benches.iter().map(|m| (m.fwd_s, m.train_s)).collect(),
        ))
    };
    let (costs_vec, model_meas) = match run() {
        Ok(r) => r,
        Err(e) => {
            eprintln!("bricks: measurement failed: {e}");
            std::process::exit(1);
        }
    };
    let overhead = match calibrate(warmup, rounds) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("bricks: calibration failed: {e}");
            std::process::exit(1);
        }
    };
    let costs: HashMap<BrickKey, BrickCost> = set
        .bricks
        .iter()
        .zip(&costs_vec)
        .map(|(b, c)| (b.key.clone(), *c))
        .collect();
    println!(
        "dispatch overhead: forward {:.1} + {:.2}/node us, train {:.1} + {:.2}/node us",
        overhead.fwd_fixed_s * 1e6,
        overhead.fwd_per_node_s * 1e6,
        overhead.train_fixed_s * 1e6,
        overhead.train_per_node_s * 1e6
    );

    // ---- 4. Predict vs. measure -------------------------------------------
    let mut table = Table::new(
        "Predicted vs. measured per-pass runtime",
        &[
            "model",
            "nodes",
            "pred fwd ms",
            "meas fwd ms",
            "err",
            "pred train ms",
            "meas train ms",
            "err",
        ],
    );
    let mut model_rows = Vec::new();
    let mut log_errs = Vec::new();
    for ((name, instances), &(meas_fwd, meas_train)) in per_model.iter().zip(&model_meas) {
        let pred = match predict(instances, &costs, &overhead) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("bricks: predict failed: {e}");
                std::process::exit(1);
            }
        };
        let fwd_err = ((pred.forward_s - meas_fwd).abs() / meas_fwd).max(1e-4);
        let train_err = ((pred.train_s - meas_train).abs() / meas_train).max(1e-4);
        log_errs.push(fwd_err.ln());
        log_errs.push(train_err.ln());
        table.row(&[
            name.clone(),
            format!("{}", instances.len()),
            format!("{:.3}", pred.forward_s * 1e3),
            format!("{:.3}", meas_fwd * 1e3),
            format!("{:.1}%", fwd_err * 1e2),
            format!("{:.3}", pred.train_s * 1e3),
            format!("{:.3}", meas_train * 1e3),
            format!("{:.1}%", train_err * 1e2),
        ]);
        model_rows.push(format!(
            "    {{\"model\": \"{}\", \"nodes\": {}, \
             \"predicted_forward_ms\": {:.6}, \"measured_forward_ms\": {:.6}, \"forward_rel_err\": {:.4}, \
             \"predicted_train_ms\": {:.6}, \"measured_train_ms\": {:.6}, \"train_rel_err\": {:.4}}}",
            name,
            instances.len(),
            pred.forward_s * 1e3,
            meas_fwd * 1e3,
            fwd_err,
            pred.train_s * 1e3,
            meas_train * 1e3,
            train_err,
        ));
    }
    println!("{}", table.render());
    let geomean = (log_errs.iter().sum::<f64>() / log_errs.len() as f64).exp();
    println!(
        "geometric-mean relative prediction error: {:.1}% over {} (model x pass) pairs",
        geomean * 1e2,
        log_errs.len()
    );

    // ---- BENCH_bricks.json ------------------------------------------------
    let brick_rows: Vec<String> = set
        .bricks
        .iter()
        .zip(&costs_vec)
        .map(|(b, c)| {
            format!(
                "    {{\"brick\": \"{}\", \"count\": {}, \
                 \"forward_ms\": {:.6}, \"backward_ms\": {:.6}}}",
                b.key.render(),
                b.count,
                c.forward_s * 1e3,
                c.backward_s * 1e3
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"benchmark\": \"bricks\",\n  \"unique_bricks\": {},\n  \
         \"total_instances\": {},\n  \"dedup_ratio\": {:.4},\n  \
         \"geomean_rel_err\": {:.4},\n  \
         \"overhead_us\": {{\"forward_fixed\": {:.3}, \"forward_per_node\": {:.3}, \
         \"train_fixed\": {:.3}, \"train_per_node\": {:.3}}},\n  \
         \"bricks\": [\n{}\n  ],\n  \"models\": [\n{}\n  ]\n}}\n",
        set.len(),
        set.total_instances,
        set.dedup_ratio(),
        geomean,
        overhead.fwd_fixed_s * 1e6,
        overhead.fwd_per_node_s * 1e6,
        overhead.train_fixed_s * 1e6,
        overhead.train_per_node_s * 1e6,
        brick_rows.join(",\n"),
        model_rows.join(",\n"),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_bricks.json");
    std::fs::write(path, &json).expect("write BENCH_bricks.json");
    println!("bricks: wrote {path}");

    // ---- Gates ------------------------------------------------------------
    if set.dedup_ratio() < 1.2 {
        eprintln!(
            "bricks: FAIL dedup ratio {:.2} below the 1.2 floor — the zoo \
             no longer shares bricks",
            set.dedup_ratio()
        );
        std::process::exit(1);
    }
    if geomean > 0.25 {
        eprintln!(
            "bricks: FAIL geometric-mean relative prediction error {:.3} \
             above the 0.25 ceiling",
            geomean
        );
        std::process::exit(1);
    }
}
