//! Table III — ImageNet decoding latency breakdown.
//!
//! Reproduces the paper's four-row table: {1 image, B images} ×
//! {sequential, shuffled}, across three ingestion paths:
//!
//! * indexed tar + scalar decoder  (paper: tar + PIL),
//! * indexed tar + turbo decoder   (paper: tar + libjpeg-turbo),
//! * record container + pipeline   (paper: TFRecord + TF native decoder,
//!   with pseudo-shuffle buffer and parallel batch decode).
//!
//! Expected shapes (paper): turbo < scalar per image; the record pipeline
//! wins at minibatch granularity and is barely hurt by shuffling (its
//! shuffle is buffer-based), whereas tar pays real seeks for every
//! shuffled access.

use deep500::data::codec;
use deep500::data::container::indexed_tar::{write_indexed_tar, Decoder, IndexedTarReader};
use deep500::data::container::recordfile::{write_recordfile, RecordPipeline, RecordReader};
use deep500::data::io_model::{StorageClock, StorageModel};
use deep500::prelude::*;
use deep500_bench::{banner, full_scale, measure};
use std::path::PathBuf;
use std::sync::Arc;

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("d5-table3");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

fn main() {
    banner(
        "Table III — ImageNet decoding latency breakdown",
        "indexed tar (scalar/turbo decoders) vs record pipeline (native)",
    );
    let (hw, count, batch) = if full_scale() {
        (224, 256, 128)
    } else {
        (64, 160, 32)
    };
    println!("images: {count} x 3x{hw}x{hw}, minibatch {batch}\n");

    // Build both containers from identical images.
    let src = SyntheticDataset::new(
        "imagenet-synth",
        Shape::new(&[3, hw, hw]),
        1000,
        count,
        0.4,
        13,
    );
    let samples: Vec<(codec::RawImage, u32)> = (0..count)
        .map(|i| {
            let (pix, label) = src.sample_u8(i);
            (codec::RawImage::new(3, hw, hw, pix).unwrap(), label)
        })
        .collect();
    let tar_path = tmp("t3.tar");
    let rec_path = tmp("t3.d5rec");
    write_indexed_tar(&tar_path, &samples, 85).unwrap();
    write_recordfile(&rec_path, &samples, 85).unwrap();

    // Shuffled access pattern, fixed across paths for fairness.
    let mut rng = Xoshiro256StarStar::seed_from_u64(21);
    let mut shuffled: Vec<usize> = (0..count).collect();
    rng.shuffle(&mut shuffled);

    let model = StorageModel::parallel_fs();
    let tar_run = |decoder: Decoder, indices: &[usize]| -> (f64, f64) {
        // Returns (measured decode seconds, modeled I/O seconds).
        let clock = Arc::new(StorageClock::new());
        let mut reader =
            IndexedTarReader::open(&tar_path, decoder, model.clone(), clock.clone()).unwrap();
        clock.reset();
        let s = measure(|| {
            for &i in indices {
                reader.read_sample(i).unwrap();
            }
        });
        let runs = deep500_bench::reruns() as f64;
        (s.median, clock.elapsed() / runs)
    };
    let rec_run = |n: usize, shuffle_buffer: usize| -> (f64, f64) {
        let clock = Arc::new(StorageClock::new());
        let clock2 = clock.clone();
        let s = measure(|| {
            let reader = RecordReader::open(&rec_path, model.clone(), clock2.clone()).unwrap();
            let mut p = RecordPipeline::new(reader, shuffle_buffer, true, 3);
            p.next_batch(n).unwrap().unwrap()
        });
        let runs = deep500_bench::reruns() as f64;
        (s.median, clock.elapsed() / runs)
    };

    let mut table = Table::new(
        "median time [ms] = measured decode + modeled PFS I/O",
        &[
            "data / access",
            "tar + scalar (PIL)",
            "tar + turbo (libjpeg-turbo)",
            "record pipeline (native)",
        ],
    );
    let fmt = |(cpu, io): (f64, f64)| {
        format!(
            "{:.2} (cpu {:.2} + io {:.2})",
            (cpu + io) * 1e3,
            cpu * 1e3,
            io * 1e3
        )
    };

    // 1 image, sequential (first image).
    table.row(&[
        "1 image (sequential)".to_string(),
        fmt(tar_run(Decoder::Scalar, &[0])),
        fmt(tar_run(Decoder::Turbo, &[0])),
        fmt(rec_run(1, 1)),
    ]);
    // 1 image, shuffled (random position).
    table.row(&[
        "1 image (shuffled)".to_string(),
        fmt(tar_run(Decoder::Scalar, &shuffled[..1])),
        fmt(tar_run(Decoder::Turbo, &shuffled[..1])),
        fmt(rec_run(1, count)),
    ]);
    // B images, sequential.
    let seq: Vec<usize> = (0..batch).collect();
    table.row(&[
        format!("{batch} images (sequential)"),
        fmt(tar_run(Decoder::Scalar, &seq)),
        fmt(tar_run(Decoder::Turbo, &seq)),
        fmt(rec_run(batch, 1)),
    ]);
    // B images, shuffled.
    table.row(&[
        format!("{batch} images (shuffled)"),
        fmt(tar_run(Decoder::Scalar, &shuffled[..batch])),
        fmt(tar_run(Decoder::Turbo, &shuffled[..batch])),
        fmt(rec_run(batch, count)),
    ]);
    table.print();

    println!(
        "\nreading guide (paper's Table III): turbo beats scalar on every\n\
         row; the record pipeline's shuffled rows stay close to its\n\
         sequential rows (pseudo-shuffling reads sequentially), while the\n\
         tar columns degrade under shuffling (true random access pays a\n\
         seek per image). Note: on a single-core host the pipeline's\n\
         parallel-decode advantage is muted; its sequential-I/O advantage\n\
         remains."
    );
    std::fs::remove_file(&tar_path).ok();
    std::fs::remove_file(&rec_path).ok();
    let mut idx = tar_path.into_os_string();
    idx.push(".idx");
    std::fs::remove_file(PathBuf::from(idx)).ok();
}
