//! Criterion micro-benchmarks of the Level-0 kernels and Level-3
//! collectives — statistical regression tracking for the substrate that
//! all paper figures rest on (GEMM algorithms, convolution algorithms,
//! the D5J decoders, and the allreduce schedules).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use deep500::data::codec;
use deep500::dist::collectives::{allreduce_flat, allreduce_ring};
use deep500::dist::comm::{Communicator, ThreadTransport};
use deep500::dist::NetworkModel;
use deep500::ops::conv::{Conv2dOp, ConvAlgorithm};
use deep500::ops::gemm::{matmul, Algorithm};
use deep500::ops::Operator;
use deep500::prelude::*;
use std::hint::black_box;

fn bench_gemm(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm_256");
    group.sample_size(10);
    let mut rng = Xoshiro256StarStar::seed_from_u64(1);
    let a = Tensor::rand_uniform([256, 256], -1.0, 1.0, &mut rng);
    let b = Tensor::rand_uniform([256, 256], -1.0, 1.0, &mut rng);
    for algo in [Algorithm::Naive, Algorithm::Blocked, Algorithm::Parallel] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{algo:?}")),
            &algo,
            |bench, &algo| bench.iter(|| matmul(algo, black_box(&a), black_box(&b)).unwrap()),
        );
    }
    group.finish();
}

fn bench_conv(c: &mut Criterion) {
    let mut group = c.benchmark_group("conv_2x8x32x32_k3");
    group.sample_size(10);
    let mut rng = Xoshiro256StarStar::seed_from_u64(2);
    let x = Tensor::rand_uniform([2, 8, 32, 32], -1.0, 1.0, &mut rng);
    let w = Tensor::rand_uniform([16, 8, 3, 3], -0.5, 0.5, &mut rng);
    let bias = Tensor::zeros([16]);
    for algo in [
        ConvAlgorithm::Direct,
        ConvAlgorithm::Im2col,
        ConvAlgorithm::Winograd,
    ] {
        let op = Conv2dOp::new(1, 1, algo);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{algo:?}")),
            &op,
            |bench, op| bench.iter(|| op.forward(black_box(&[&x, &w, &bias])).unwrap()),
        );
    }
    group.finish();
}

fn bench_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("d5j_decode_3x64x64");
    group.sample_size(10);
    let src = SyntheticDataset::cifar10_like(1, 3);
    let (pix, _) = src.sample_u8(0);
    // Upscale to a 64x64 plane set by tiling the 32x32 sample.
    let mut big = vec![0u8; 3 * 64 * 64];
    for (i, v) in big.iter_mut().enumerate() {
        *v = pix[i % pix.len()];
    }
    let img = codec::RawImage::new(3, 64, 64, big).unwrap();
    let bytes = codec::encode(&img, 85).unwrap();
    group.bench_function("scalar (PIL-like)", |b| {
        b.iter(|| codec::decode_scalar(black_box(&bytes)).unwrap())
    });
    group.bench_function("turbo (libjpeg-turbo-like)", |b| {
        b.iter(|| codec::decode_turbo(black_box(&bytes)).unwrap())
    });
    group.finish();
}

fn bench_collectives(c: &mut Criterion) {
    let mut group = c.benchmark_group("allreduce_4ranks_16k");
    group.sample_size(10);
    for (name, ring) in [("ring", true), ("flat", false)] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let comms = ThreadTransport::create(4, NetworkModel::instant());
                let handles: Vec<_> = comms
                    .into_iter()
                    .map(|mut comm| {
                        std::thread::spawn(move || {
                            let mut buf = vec![comm.rank() as f32; 16 * 1024];
                            if ring {
                                allreduce_ring(&mut comm, &mut buf).unwrap();
                            } else {
                                allreduce_flat(&mut comm, &mut buf).unwrap();
                            }
                            buf[0]
                        })
                    })
                    .collect();
                for h in handles {
                    black_box(h.join().unwrap());
                }
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_gemm,
    bench_conv,
    bench_codec,
    bench_collectives
);
criterion_main!(benches);
