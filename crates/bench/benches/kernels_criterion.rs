//! Criterion micro-benchmarks of the Level-0 kernels and Level-3
//! collectives — statistical regression tracking for the substrate that
//! all paper figures rest on (GEMM algorithms, convolution algorithms,
//! the D5J decoders, and the allreduce schedules).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use deep500::data::codec;
use deep500::dist::collectives::{allreduce_flat, allreduce_ring};
use deep500::dist::comm::{Communicator, ThreadTransport};
use deep500::dist::NetworkModel;
use deep500::ops::conv::{Conv2dOp, ConvAlgorithm};
use deep500::ops::deepbench::GemmSize;
use deep500::ops::gemm::{gemm_into, matmul, Algorithm};
use deep500::ops::Operator;
use deep500::prelude::*;
use std::hint::black_box;
use std::time::Instant;

const TIERS: [Algorithm; 4] = [
    Algorithm::Naive,
    Algorithm::Blocked,
    Algorithm::Parallel,
    Algorithm::Packed,
];

fn bench_gemm(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm_256");
    group.sample_size(10);
    let mut rng = Xoshiro256StarStar::seed_from_u64(1);
    let a = Tensor::rand_uniform([256, 256], -1.0, 1.0, &mut rng);
    let b = Tensor::rand_uniform([256, 256], -1.0, 1.0, &mut rng);
    for algo in TIERS {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{algo:?}")),
            &algo,
            |bench, &algo| bench.iter(|| matmul(algo, black_box(&a), black_box(&b)).unwrap()),
        );
    }
    group.finish();
}

/// DeepBench-shape GEMM sweep across all four algorithm tiers, recording
/// GFLOP/s per (shape, tier) into `BENCH_gemm.json` at the repo root — the
/// perf anchor for the packed-microkernel work (EXPERIMENTS.md §E16).
/// Timed manually (criterion's per-sample statistics are overkill at these
/// problem sizes); set `D5_GEMM_SWEEP=0` to skip, as the CI smoke job does.
fn bench_gemm_sweep(_c: &mut Criterion) {
    if std::env::var("D5_GEMM_SWEEP")
        .map(|v| v == "0")
        .unwrap_or(false)
    {
        println!("gemm_sweep: skipped (D5_GEMM_SWEEP=0)");
        return;
    }
    // Shape diversity from the DeepBench training suite (tall-skinny, wide,
    // square) plus the 1024^3 acceptance shape for the packed tier.
    let shapes = [
        GemmSize::new(2560, 64, 2560), // paper's highlighted Fig. 6b shape
        GemmSize::new(4096, 16, 512),
        GemmSize::new(128, 1024, 128),
        GemmSize::new(512, 512, 512),
        GemmSize::new(1024, 1024, 64),
        GemmSize::new(1024, 1024, 1024),
    ];
    let mut rng = Xoshiro256StarStar::seed_from_u64(16);
    let mut rows = Vec::new();
    println!("gemm_sweep: GFLOP/s per tier");
    println!(
        "{:>24} {:>9} {:>9} {:>9} {:>9}",
        "M x N x K", "Naive", "Blocked", "Parallel", "Packed"
    );
    for g in shapes {
        let a = Tensor::rand_uniform([g.m, g.k], -1.0, 1.0, &mut rng);
        let b = Tensor::rand_uniform([g.k, g.n], -1.0, 1.0, &mut rng);
        let mut c = vec![0.0f32; g.m * g.n];
        let mut rates = Vec::new();
        for algo in TIERS {
            // One warmup, then repeat until >= 0.4 s of measured work
            // (capped) so fast tiers get stable averages without naive
            // tiers taking minutes.
            gemm_into(algo, g.m, g.n, g.k, a.data(), b.data(), &mut c);
            let (mut reps, mut total) = (0u32, 0.0f64);
            while total < 0.4 && reps < 20 {
                c.iter_mut().for_each(|v| *v = 0.0);
                let t0 = Instant::now();
                gemm_into(algo, g.m, g.n, g.k, a.data(), b.data(), &mut c);
                total += t0.elapsed().as_secs_f64();
                reps += 1;
            }
            black_box(&c);
            rates.push(g.flops() / (total / reps as f64) / 1e9);
        }
        println!(
            "{:>24} {:>9.2} {:>9.2} {:>9.2} {:>9.2}",
            format!("{} x {} x {}", g.m, g.n, g.k),
            rates[0],
            rates[1],
            rates[2],
            rates[3]
        );
        rows.push(format!(
            "    {{\"m\": {}, \"n\": {}, \"k\": {}, \"naive\": {:.3}, \"blocked\": {:.3}, \"parallel\": {:.3}, \"packed\": {:.3}}}",
            g.m, g.n, g.k, rates[0], rates[1], rates[2], rates[3]
        ));
    }
    let json = format!(
        "{{\n  \"benchmark\": \"gemm_sweep\",\n  \"unit\": \"GFLOP/s\",\n  \"tiers\": [\"naive\", \"blocked\", \"parallel\", \"packed\"],\n  \"results\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_gemm.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("gemm_sweep: wrote {path}"),
        Err(e) => eprintln!("gemm_sweep: could not write {path}: {e}"),
    }
}

fn bench_conv(c: &mut Criterion) {
    let mut group = c.benchmark_group("conv_2x8x32x32_k3");
    group.sample_size(10);
    let mut rng = Xoshiro256StarStar::seed_from_u64(2);
    let x = Tensor::rand_uniform([2, 8, 32, 32], -1.0, 1.0, &mut rng);
    let w = Tensor::rand_uniform([16, 8, 3, 3], -0.5, 0.5, &mut rng);
    let bias = Tensor::zeros([16]);
    for algo in [
        ConvAlgorithm::Direct,
        ConvAlgorithm::Im2col,
        ConvAlgorithm::Winograd,
    ] {
        let op = Conv2dOp::new(1, 1, algo);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{algo:?}")),
            &op,
            |bench, op| bench.iter(|| op.forward(black_box(&[&x, &w, &bias])).unwrap()),
        );
    }
    group.finish();
}

fn bench_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("d5j_decode_3x64x64");
    group.sample_size(10);
    let src = SyntheticDataset::cifar10_like(1, 3);
    let (pix, _) = src.sample_u8(0);
    // Upscale to a 64x64 plane set by tiling the 32x32 sample.
    let mut big = vec![0u8; 3 * 64 * 64];
    for (i, v) in big.iter_mut().enumerate() {
        *v = pix[i % pix.len()];
    }
    let img = codec::RawImage::new(3, 64, 64, big).unwrap();
    let bytes = codec::encode(&img, 85).unwrap();
    group.bench_function("scalar (PIL-like)", |b| {
        b.iter(|| codec::decode_scalar(black_box(&bytes)).unwrap())
    });
    group.bench_function("turbo (libjpeg-turbo-like)", |b| {
        b.iter(|| codec::decode_turbo(black_box(&bytes)).unwrap())
    });
    group.finish();
}

fn bench_collectives(c: &mut Criterion) {
    let mut group = c.benchmark_group("allreduce_4ranks_16k");
    group.sample_size(10);
    for (name, ring) in [("ring", true), ("flat", false)] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let comms = ThreadTransport::create(4, NetworkModel::instant());
                let handles: Vec<_> = comms
                    .into_iter()
                    .map(|mut comm| {
                        std::thread::spawn(move || {
                            let mut buf = vec![comm.rank() as f32; 16 * 1024];
                            if ring {
                                allreduce_ring(&mut comm, &mut buf).unwrap();
                            } else {
                                allreduce_flat(&mut comm, &mut buf).unwrap();
                            }
                            buf[0]
                        })
                    })
                    .collect();
                for h in handles {
                    black_box(h.join().unwrap());
                }
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_gemm,
    bench_gemm_sweep,
    bench_conv,
    bench_codec,
    bench_collectives
);
criterion_main!(benches);
