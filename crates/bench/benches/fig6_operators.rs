//! Fig. 6 — Level-0 operator performance and accuracy.
//!
//! Regenerates both panels of the paper's Fig. 6: convolution (6a) and
//! matrix multiplication (6b), each as (i) the distribution over a
//! DeepBench-style problem-size suite per framework, native vs
//! Deep500-wrapped, and (ii) the highlighted single problem size
//! (conv: N=16, C=3, H=W=224, 3×3; GEMM: M=K=2560, N=64); plus the §V-B
//! ℓ∞ correctness table (median over the suite vs the reference kernel).
//!
//! Expected shapes (paper): DeepBench fastest (no framework management);
//! TensorFlow slowest; Deep500 wrapping statistically indistinguishable
//! from native (overlapping CIs).

use deep500::frameworks::native::{
    run_kernel_direct, run_kernel_framework, run_kernel_wrapped, NativeOpWrapper,
};
use deep500::frameworks::FrameworkProfile;
use deep500::metrics::norms::linf_diff;
use deep500::metrics::stats::median;
use deep500::ops::conv::{Conv2dOp, ConvAlgorithm};
use deep500::ops::deepbench::{self, ConvSize, GemmSize};
use deep500::ops::gemm::{Algorithm, MatMulOp};
use deep500::ops::Operator;
use deep500::prelude::*;
use deep500_bench::{banner, fmt_ms, full_scale, measure};

fn gemm_inputs(g: &GemmSize, rng: &mut Xoshiro256StarStar) -> (Tensor, Tensor) {
    (
        Tensor::rand_uniform([g.m, g.k], -1.0, 1.0, rng),
        Tensor::rand_uniform([g.k, g.n], -1.0, 1.0, rng),
    )
}

fn conv_inputs(c: &ConvSize, rng: &mut Xoshiro256StarStar) -> (Tensor, Tensor, Tensor) {
    (
        Tensor::rand_uniform([c.n, c.c, c.h, c.w], -1.0, 1.0, rng),
        Tensor::rand_uniform([c.k, c.c, c.r, c.r], -0.5, 0.5, rng),
        Tensor::zeros([c.k]),
    )
}

fn gemm_suite() -> Vec<GemmSize> {
    let mut suite = deepbench::gemm_suite();
    if !full_scale() {
        // Shrink the largest dimensions so a 1-core run stays in minutes
        // (small-kernel regimes are also where framework overhead shows,
        // which is what the violin plots contrast).
        for g in &mut suite {
            g.m = g.m.min(512);
            g.n = g.n.min(128);
            g.k = g.k.min(512);
        }
        suite.truncate(10);
    }
    suite
}

fn conv_suite() -> Vec<ConvSize> {
    let suite = deepbench::conv_suite();
    if full_scale() {
        suite
    } else {
        suite
            .iter()
            .map(|c| deepbench::shrink_conv(c, 64))
            .collect()
    }
}

fn main() {
    banner(
        "Fig. 6 — operator performance (Level 0)",
        "conv + GEMM over a DeepBench-style suite, native vs Deep500-wrapped",
    );
    let mut rng = Xoshiro256StarStar::seed_from_u64(6);

    // ---------------------------------------------------------- Fig. 6b
    println!("--- GEMM suite ({} sizes) ---", gemm_suite().len());
    let mut table = Table::new(
        "Fig. 6b analogue: per-framework runtime distribution over the suite",
        &[
            "framework",
            "median native [ms]",
            "median Deep500 [ms]",
            "CIs overlap",
        ],
    );
    for profile in FrameworkProfile::all() {
        let mut native = Vec::new();
        let mut wrapped = Vec::new();
        for g in gemm_suite() {
            let (a, b) = gemm_inputs(&g, &mut rng);
            let op = MatMulOp::new(profile.gemm_algo);
            let nat = measure(|| run_kernel_framework(&profile, &op, &[&a, &b]).unwrap());
            // Deep500 wrapping: descriptor-checked custom-op interface on
            // top of the same framework invocation.
            let wrapper = NativeOpWrapper::new(
                MatMulOp::new(profile.gemm_algo),
                vec![
                    deep500::tensor::TensorDesc::f32([g.m, g.k]),
                    deep500::tensor::TensorDesc::f32([g.k, g.n]),
                ],
            );
            let wrp = measure(|| {
                profile.dispatch();
                run_kernel_wrapped(&wrapper, &[&a, &b]).unwrap()
            });
            native.push(nat);
            wrapped.push(wrp);
        }
        let nat_med = median(&native.iter().map(|s| s.median).collect::<Vec<_>>());
        let wrp_med = median(&wrapped.iter().map(|s| s.median).collect::<Vec<_>>());
        let overlap = native
            .iter()
            .zip(&wrapped)
            .filter(|(n, w)| n.median_ci.overlaps(&w.median_ci))
            .count();
        table.row(&[
            profile.name.to_string(),
            format!("{:.3}", nat_med * 1e3),
            format!("{:.3}", wrp_med * 1e3),
            format!("{overlap}/{}", native.len()),
        ]);
    }
    table.print();

    // Highlighted GEMM box plot: M=K=2560, N=64.
    let g = if full_scale() {
        deepbench::HIGHLIGHTED_GEMM
    } else {
        GemmSize::new(1024, 64, 1024)
    };
    println!(
        "\nhighlighted GEMM {}x{}x{} (paper: M=K=2560, N=64):",
        g.m, g.n, g.k
    );
    let (a, b) = gemm_inputs(&g, &mut rng);
    for profile in FrameworkProfile::all() {
        let op = MatMulOp::new(profile.gemm_algo);
        let s = measure(|| run_kernel_framework(&profile, &op, &[&a, &b]).unwrap());
        println!("  {:>10}: {} ms", profile.name, fmt_ms(&s));
    }

    // ---------------------------------------------------------- Fig. 6a
    println!("\n--- convolution suite ({} sizes) ---", conv_suite().len());
    let mut table = Table::new(
        "Fig. 6a analogue: per-framework runtime distribution over the suite",
        &[
            "framework",
            "median native [ms]",
            "median Deep500 [ms]",
            "CIs overlap",
        ],
    );
    for profile in FrameworkProfile::all() {
        let mut native = Vec::new();
        let mut wrapped = Vec::new();
        for c in conv_suite() {
            let (x, w, bias) = conv_inputs(&c, &mut rng);
            let op = Conv2dOp::new(c.stride, c.pad, profile.conv_algo);
            let nat = measure(|| run_kernel_framework(&profile, &op, &[&x, &w, &bias]).unwrap());
            let wrp = measure(|| {
                profile.dispatch();
                run_kernel_direct(&op, &[&x, &w, &bias]).unwrap()
            });
            native.push(nat);
            wrapped.push(wrp);
        }
        let nat_med = median(&native.iter().map(|s| s.median).collect::<Vec<_>>());
        let wrp_med = median(&wrapped.iter().map(|s| s.median).collect::<Vec<_>>());
        let overlap = native
            .iter()
            .zip(&wrapped)
            .filter(|(n, w)| n.median_ci.overlaps(&w.median_ci))
            .count();
        table.row(&[
            profile.name.to_string(),
            format!("{:.3}", nat_med * 1e3),
            format!("{:.3}", wrp_med * 1e3),
            format!("{overlap}/{}", native.len()),
        ]);
    }
    table.print();

    // Highlighted conv box plot.
    let c = if full_scale() {
        deepbench::HIGHLIGHTED_CONV
    } else {
        ConvSize::new(4, 3, 96, 96, 16, 3, 1, 1)
    };
    println!(
        "\nhighlighted conv N={} C={} H=W={} k={} (paper: 16x3x224x224, 3x3):",
        c.n, c.c, c.h, c.r
    );
    let (x, w, bias) = conv_inputs(&c, &mut rng);
    for profile in FrameworkProfile::all() {
        let op = Conv2dOp::new(c.stride, c.pad, profile.conv_algo);
        let s = measure(|| run_kernel_framework(&profile, &op, &[&x, &w, &bias]).unwrap());
        println!("  {:>10}: {} ms", profile.name, fmt_ms(&s));
    }

    // ------------------------------------------------- §V-B correctness
    println!("\n--- correctness: median l-inf vs reference over the conv suite ---");
    let mut errs_by_algo: Vec<(&str, Vec<f64>)> = vec![
        ("im2col", Vec::new()),
        ("winograd", Vec::new()),
        ("direct", Vec::new()),
    ];
    for c in conv_suite() {
        let (x, w, bias) = conv_inputs(&c, &mut rng);
        let reference = Conv2dOp::new(c.stride, c.pad, ConvAlgorithm::Direct)
            .forward(&[&x, &w, &bias])
            .unwrap();
        for (name, errs) in errs_by_algo.iter_mut() {
            let algo = match *name {
                "im2col" => ConvAlgorithm::Im2col,
                "winograd" => ConvAlgorithm::Winograd,
                _ => ConvAlgorithm::Direct,
            };
            let out = Conv2dOp::new(c.stride, c.pad, algo)
                .forward(&[&x, &w, &bias])
                .unwrap();
            errs.push(linf_diff(out[0].data(), reference[0].data()));
        }
    }
    for (name, errs) in &errs_by_algo {
        println!(
            "  {:>9} vs direct: median l-inf = {:.2e}  (paper reports ~7e-4 between frameworks)",
            name,
            median(errs)
        );
    }

    // GEMM algorithm correctness: every fast tier against the naive
    // reference. The packed tier's register-tiled accumulation gives it a
    // genuinely different rounding profile than the blocked tiers.
    for (name, algo) in [
        ("blocked", Algorithm::Blocked),
        ("parallel", Algorithm::Parallel),
        ("packed", Algorithm::Packed),
    ] {
        let mut errs = Vec::new();
        for g in gemm_suite() {
            let (a, b) = gemm_inputs(&g, &mut rng);
            let reference = deep500::ops::gemm::matmul(Algorithm::Naive, &a, &b).unwrap();
            let fast = deep500::ops::gemm::matmul(algo, &a, &b).unwrap();
            errs.push(linf_diff(fast.data(), reference.data()));
        }
        println!(
            "  {:>9} GEMM vs naive: median l-inf = {:.2e}",
            name,
            median(&errs)
        );
    }
}
