//! Fig. 7 / §V-C — the micro-batch convolution transformation.
//!
//! Reproduces the Level-1 experiment: an AlexNet-style convolution at
//! growing minibatch sizes on a memory-capped device.
//!
//! Expected shapes (paper): the *PyTorch-like* backend runs out of memory
//! at large minibatches; the transformation eliminates the OOM and lets it
//! run. The *TensorFlow-like* backend survives untransformed (bigger
//! memory headroom in the paper's setup) but gets **slower** when
//! transformed, because its Split/Concat nodes incur additional memory
//! copies. The transformation picks micro-batch sizes `[rem, k, k, …]`
//! with per-piece algorithm choices, exactly like the paper's ILP.

use deep500::graph::transforms::microbatch::microbatch_convolutions;
use deep500::metrics::report::fmt_bytes;
use deep500::prelude::*;
use deep500::tensor::Error;
use deep500_bench::{banner, full_scale, measure};

fn conv_net(seed: u64) -> Network {
    let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
    let mut net = Network::new("alex-conv");
    net.add_input("x");
    net.add_parameter("w", Tensor::rand_uniform([8, 3, 3, 3], -0.3, 0.3, &mut rng));
    net.add_parameter("b", Tensor::zeros([8]));
    net.add_node(
        "conv",
        "Conv2d",
        Attributes::new().with_int("stride", 1).with_int("pad", 1),
        &["x", "w", "b"],
        &["y"],
    )
    .unwrap();
    net.add_output("y");
    net
}

fn main() {
    banner(
        "Fig. 7 / §V-C — micro-batch transformation",
        "minibatch sweep under a device memory cap, per framework profile",
    );
    let (hw, batches, capacity): (usize, Vec<usize>, usize) = if full_scale() {
        (224, vec![64, 128, 256, 468, 512], 1_500_000_000)
    } else {
        (32, vec![48, 96, 160, 256], 16_000_000)
    };
    // The TF-like device has more headroom (the paper's TF run survives
    // untransformed at B=468 while PyTorch OOMs).
    let tf_capacity = capacity * 4;
    println!(
        "conv: Cin=3 HxW={hw}x{hw} Cout=8 3x3; device caps: pytorch-like {}  tf-like {}\n",
        fmt_bytes(capacity as u64),
        fmt_bytes(tf_capacity as u64)
    );

    let mut rng = Xoshiro256StarStar::seed_from_u64(7);
    let mut table = Table::new(
        "runtime per minibatch [ms] (OOM = out of memory)",
        &[
            "batch",
            "pytorch native",
            "pytorch microbatched",
            "tf native",
            "tf microbatched",
            "plan",
        ],
    );

    for &batch in &batches {
        let shape = Shape::new(&[batch, 3, hw, hw]);
        let x = Tensor::rand_uniform(shape.clone(), -1.0, 1.0, &mut rng);
        let mut cells = vec![batch.to_string()];
        let mut plan_str = String::new();

        for (profile, cap) in [
            (FrameworkProfile::pytorch(), capacity),
            (FrameworkProfile::tensorflow(), tf_capacity),
        ] {
            // Native (untransformed).
            let native = {
                match FrameworkExecutor::with_memory_limit(&conv_net(1), profile.clone(), cap) {
                    Ok(mut ex) => match ex.inference(&[("x", x.clone())]) {
                        Ok(_) => {
                            let s = measure(|| ex.inference(&[("x", x.clone())]).unwrap());
                            format!("{:.1}", s.median * 1e3)
                        }
                        Err(Error::OutOfMemory { .. }) => "OOM".to_string(),
                        Err(e) => format!("error: {e}"),
                    },
                    Err(e) => format!("error: {e}"),
                }
            };
            // Micro-batched: transform so each piece's workspace fits a
            // quarter of the device.
            let mut net = conv_net(1);
            let reports =
                microbatch_convolutions(&mut net, &[("x", shape.clone())], cap / 4).unwrap();
            if plan_str.is_empty() {
                plan_str = match reports.first() {
                    Some(r) => format!("{:?}", r.plan.sizes),
                    None => "unchanged".into(),
                };
            }
            let transformed = {
                let mut ex =
                    FrameworkExecutor::with_memory_limit(&net, profile.clone(), cap).unwrap();
                match ex.inference(&[("x", x.clone())]) {
                    Ok(_) => {
                        let s = measure(|| ex.inference(&[("x", x.clone())]).unwrap());
                        format!("{:.1}", s.median * 1e3)
                    }
                    Err(Error::OutOfMemory { .. }) => "OOM".to_string(),
                    Err(e) => format!("error: {e}"),
                }
            };
            cells.push(native);
            cells.push(transformed);
        }
        cells.push(plan_str);
        table.row(&cells);
    }
    table.print();
    println!(
        "\nreading guide: the transformation must turn the PyTorch column's\n\
         OOM cells into runtimes, while the TF columns show the split/concat\n\
         copy penalty (tf native < tf microbatched where both run)."
    );
}
