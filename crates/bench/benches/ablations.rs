//! Ablation studies for the design choices DESIGN.md calls out.
//!
//! These are not paper figures; they justify this reproduction's internal
//! choices with measurements:
//!
//! 1. **Convolution algorithm crossover** — direct vs im2col vs Winograd
//!    across channel counts (why the micro-batch planner assigns
//!    algorithms per piece size).
//! 2. **GEMM cache blocking** — naive vs blocked/parallel kernels (why the
//!    "cuDNN-class" kernel is the blocked one).
//! 3. **Allreduce algorithm** — ring vs flat under the α-β model across
//!    world sizes (why CDSGD rides on the ring).
//! 4. **Shuffle-buffer capacity** — pseudo-shuffle stochasticity vs buffer
//!    size (quantifying the paper's "reduces stochasticity" remark).

use deep500::data::sampler::{BufferShuffleSampler, DatasetSampler};
use deep500::dist::scaling::{simulate_step, Scheme, WorkloadModel};
use deep500::dist::NetworkModel;
use deep500::ops::conv::{Conv2dOp, ConvAlgorithm};
use deep500::ops::gemm::{matmul, Algorithm};
use deep500::ops::Operator;
use deep500::prelude::*;
use deep500_bench::{banner, full_scale, measure};
use std::sync::Arc;

fn main() {
    banner(
        "Ablations — substrate design choices",
        "conv algorithm crossover, GEMM blocking, allreduce schedule, shuffle buffer",
    );
    let mut rng = Xoshiro256StarStar::seed_from_u64(99);

    // 1 ------------------------------------------------------------------
    println!("--- 1. convolution algorithm crossover (3x3, stride 1, 16x16 spatial) ---");
    let mut table = Table::new(
        "median forward time [ms] by channel count",
        &["channels in->out", "direct", "im2col", "winograd", "winner"],
    );
    let channel_grid: &[(usize, usize)] = if full_scale() {
        &[(1, 4), (4, 16), (16, 64), (64, 128)]
    } else {
        &[(1, 4), (4, 16), (16, 32)]
    };
    for &(ci, co) in channel_grid {
        let x = Tensor::rand_uniform([2, ci, 16, 16], -1.0, 1.0, &mut rng);
        let w = Tensor::rand_uniform([co, ci, 3, 3], -0.5, 0.5, &mut rng);
        let b = Tensor::zeros([co]);
        let mut cells = vec![format!("{ci} -> {co}")];
        let mut best = ("", f64::INFINITY);
        for (name, algo) in [
            ("direct", ConvAlgorithm::Direct),
            ("im2col", ConvAlgorithm::Im2col),
            ("winograd", ConvAlgorithm::Winograd),
        ] {
            let op = Conv2dOp::new(1, 1, algo);
            let s = measure(|| op.forward(&[&x, &w, &b]).unwrap());
            cells.push(format!("{:.3}", s.median * 1e3));
            if s.median < best.1 {
                best = (name, s.median);
            }
        }
        cells.push(best.0.to_string());
        table.row(&cells);
    }
    table.print();

    // 2 ------------------------------------------------------------------
    println!("\n--- 2. GEMM cache blocking ---");
    let n = if full_scale() { 512 } else { 256 };
    let a = Tensor::rand_uniform([n, n], -1.0, 1.0, &mut rng);
    let b = Tensor::rand_uniform([n, n], -1.0, 1.0, &mut rng);
    let mut base = 0.0;
    for algo in [
        Algorithm::Naive,
        Algorithm::Blocked,
        Algorithm::Parallel,
        Algorithm::Packed,
    ] {
        let s = measure(|| matmul(algo, &a, &b).unwrap());
        if base == 0.0 {
            base = s.median;
        }
        println!(
            "  {algo:>9?}: {:8.2} ms  ({:.1}x vs naive)",
            s.median * 1e3,
            base / s.median
        );
    }

    // 3 ------------------------------------------------------------------
    println!("\n--- 3. allreduce schedule under the Aries model (ResNet-50 buffer) ---");
    let w = WorkloadModel::default();
    let net = NetworkModel::aries();
    let mut table = Table::new(
        "communication seconds per step (compute excluded)",
        &["nodes", "ring (CDSGD)", "flat/PS (TF-PS)", "ring advantage"],
    );
    for nodes in [4usize, 8, 16, 32, 64, 128] {
        let compute = 1.0 * w.compute_s_per_image; // per-node batch of 1
        let ring = simulate_step(Scheme::Cdsgd, nodes, 1, &w, &net).step_time_s - compute;
        let flat = simulate_step(Scheme::TfPs, nodes, 1, &w, &net).step_time_s - compute;
        table.row(&[
            nodes.to_string(),
            format!("{:.4}", ring),
            format!("{:.4}", flat),
            format!("{:.1}x", flat / ring),
        ]);
    }
    table.print();

    // 4 ------------------------------------------------------------------
    println!("\n--- 4. pseudo-shuffle buffer capacity vs stochasticity ---");
    // Metric: over the first epoch batch stream, how far (in dataset
    // positions) can an element travel from its file order? A true shuffle
    // has expected displacement ~len/3; a tiny buffer keeps elements near
    // their original position ("reduces stochasticity").
    let len = 512usize;
    let ds: Arc<dyn Dataset> = Arc::new(SyntheticDataset::mnist_like(len, 77));
    let mut table = Table::new(
        "element displacement vs buffer capacity",
        &["buffer", "mean displacement", "of true-shuffle expectation"],
    );
    // Label each sample by its index via label_of-free trick: use
    // deterministic samples and recover positions from label streams is
    // ambiguous; instead sample indices directly through the sampler by
    // draining batch indices (labels carry class, so track via order of
    // emission against a sequential baseline of the same dataset).
    for capacity in [1usize, 16, 128, 512] {
        let mut s = BufferShuffleSampler::new(ds.clone(), 1, capacity, 5);
        // With batch=1, emission order is a permutation; reconstruct it by
        // matching each emitted sample tensor against its index.
        let mut order = Vec::with_capacity(len);
        let originals: Vec<deep500::data::Sample> =
            (0..len).map(|i| ds.sample(i).unwrap()).collect();
        while let Some(batch) = s.next_batch().unwrap() {
            let emitted = batch.x.data();
            let pos = originals
                .iter()
                .position(|o| o.data.data() == emitted)
                .expect("emitted sample must exist");
            order.push(pos);
        }
        let mean_disp: f64 = order
            .iter()
            .enumerate()
            .map(|(t, &src)| (t as f64 - src as f64).abs())
            .sum::<f64>()
            / len as f64;
        let true_shuffle = len as f64 / 3.0;
        table.row(&[
            capacity.to_string(),
            format!("{mean_disp:.1}"),
            format!("{:.0} %", mean_disp / true_shuffle * 100.0),
        ]);
    }
    table.print();
    println!(
        "\nconclusions: im2col wins once channels amortize the lowering;\n\
         blocking buys the GEMM its speedup; the ring's advantage over the\n\
         PS schedule grows linearly with node count; a small shuffle buffer\n\
         barely displaces elements (the paper's reduced stochasticity),\n\
         approaching a true shuffle only when the buffer spans the dataset."
    );
}
