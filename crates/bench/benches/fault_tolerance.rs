//! Fault tolerance — drop-rate × scheme sweep over the Level-3
//! fault-injection subsystem.
//!
//! Two parts:
//!
//! 1. **Real runs** (4 ranks, real messages, seeded fault plans): each
//!    scheme trains under increasing message-drop rates with a bounded
//!    retry budget; the table reports completion, injected/recovered
//!    fault counts, the virtual time spent recovering, and the final
//!    loss. Decentralized and stale-synchronous schemes degrade
//!    gracefully; synchronous PS aborts cleanly once a message exhausts
//!    its retries.
//! 2. **Analytic sweep** at 8–64 nodes via `simulate_step_faulty`:
//!    expected retransmissions E = (1 − p^{k+1})/(1 − p) scale the
//!    communication term of the α-β schedule model.
//!
//! Run with: `cargo bench --bench fault_tolerance`

use deep500::dist::runner::{DistributedRunner, Variant};
use deep500::dist::scaling::{simulate_step_faulty, Scheme, WorkloadModel};
use deep500::dist::{FaultPlan, NetworkModel};
use deep500::metrics::report::fmt_bytes;
use deep500::prelude::*;
use deep500_bench::{banner, full_scale};
use std::sync::Arc;

fn main() {
    banner(
        "Fault tolerance — drop-rate x scheme sweep (Level 3)",
        "seeded fault injection on 4 real ranks + analytic 8-64 node sweep",
    );

    // ------------------------------------------------ part 1: real runs
    let steps = if full_scale() { 24 } else { 12 };
    let dataset: Arc<dyn Dataset> = Arc::new(SyntheticDataset::new(
        "fault-bench",
        Shape::new(&[16]),
        4,
        2048,
        0.3,
        21,
    ));
    let network = models::mlp(16, &[16], 4, 21).unwrap();
    let variants: Vec<(&str, Variant)> = vec![
        ("CDSGD", Variant::Cdsgd),
        ("Horovod", Variant::Horovod),
        ("SSP(1)", Variant::StaleSynchronous { max_staleness: 1 }),
        ("PSSGD", Variant::Pssgd),
    ];
    let drop_rates = [0.0f64, 0.05, 0.10, 0.20];

    let mut table = Table::new(
        format!("4 ranks x {steps} steps, Aries model, retries=3, seed 42"),
        &[
            "scheme",
            "drop",
            "done",
            "drops",
            "retries",
            "recov",
            "lost",
            "recov t [ms]",
            "loss end",
        ],
    );
    for (name, variant) in &variants {
        for &rate in &drop_rates {
            let report = DistributedRunner::new(&network, dataset.clone())
                .world(4)
                .batch(16)
                .steps(steps)
                .seed(9)
                .learning_rate(0.05)
                .variant(variant.clone())
                .network(NetworkModel::aries())
                .faults(
                    FaultPlan::seeded(42)
                        .with_drops(rate, 3)
                        .with_patience(0.25),
                )
                .run()
                .unwrap();
            let f = report.faults();
            let completed = report.completed();
            let loss = completed
                .first()
                .and_then(|r| r.losses.last())
                .map(|l| format!("{l:.3}"))
                .unwrap_or_else(|| "—".into());
            table.row(&[
                name.to_string(),
                format!("{:.0}%", rate * 100.0),
                format!("{}/4", completed.len()),
                f.drops_injected.to_string(),
                f.retries.to_string(),
                f.recoveries.to_string(),
                f.steps_lost.to_string(),
                format!("{:.3}", f.recovery_virtual_s * 1e3),
                loss,
            ]);
        }
    }
    table.print();

    // A crash scenario: rank 2 dies mid-run; survivors renormalize.
    let report = DistributedRunner::new(&network, dataset.clone())
        .world(4)
        .batch(16)
        .steps(steps)
        .seed(9)
        .learning_rate(0.05)
        .variant(Variant::Cdsgd)
        .network(NetworkModel::aries())
        .faults(
            FaultPlan::seeded(42)
                .with_drops(0.05, 3)
                .with_crash(2, steps as u64 / 2)
                .with_patience(0.25),
        )
        .run()
        .unwrap();
    let c = report.consistency(1e-5);
    println!(
        "\ncrash scenario (CDSGD, rank 2 dies at step {}): {}/4 ranks\n\
         finished, survivor consistency: {}, merged counters: {:?}",
        steps / 2,
        report.completed().len(),
        c.is_consistent(),
        report.faults(),
    );

    // ----------------------------------- part 2: analytic 8-64 node sweep
    let w = WorkloadModel::default();
    let net = NetworkModel::aries();
    println!("\n--- analytic sweep: throughput [images/s] under drops, retries=3 ---");
    let mut table = Table::new(
        "ResNet-50-like, 128 images/node, E=(1-p^(k+1))/(1-p)",
        &["scheme", "nodes", "p=0", "p=0.05", "p=0.2", "sent @ p=0.2"],
    );
    for scheme in [Scheme::Cdsgd, Scheme::RefDpsgd, Scheme::RefPssgd] {
        for nodes in [8usize, 64] {
            let cell = |p: f64| {
                let pt = simulate_step_faulty(scheme, nodes, 128, &w, &net, p, 3);
                match pt.throughput {
                    Some(t) => format!("{t:.0}"),
                    None => format!("— ({})", pt.note.unwrap_or("failed")),
                }
            };
            let sent = simulate_step_faulty(scheme, nodes, 128, &w, &net, 0.2, 3);
            table.row(&[
                scheme.label().to_string(),
                nodes.to_string(),
                cell(0.0),
                cell(0.05),
                cell(0.2),
                fmt_bytes(sent.sent_bytes_per_step),
            ]);
        }
    }
    table.print();
    println!(
        "\nreading guide: every scheme pays E-fold communication under\n\
         drops; the ring schedules merely slow down, while the synchronous\n\
         PS at 64 nodes crosses the permanent-loss threshold and aborts\n\
         once p^(k+1) x 2n messages/step becomes non-negligible."
    );
}
