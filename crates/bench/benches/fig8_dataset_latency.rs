//! Fig. 8 — dataset loading latency.
//!
//! Left panel: small datasets (MNIST, Fashion-MNIST, CIFAR-10, CIFAR-100)
//! stored as raw binary files — real (load from disk-resident memory) vs
//! synthetic generation. Right panel: ImageNet-shaped data, record
//! container, 1 vs 1024 files and 1 vs 64 nodes (modeled PFS I/O) vs
//! synthetic generation.
//!
//! Expected shapes (paper): for MNIST-class in-memory datasets, *loading
//! is faster than synthesizing*; for CIFAR it tightens; for ImageNet,
//! synthetic generation is ~2 orders of magnitude faster than the decode
//! pipeline; on 1 node one segmented file beats 1024 shards, on 64 nodes
//! the 1024 shards win by ~10%.

use deep500::data::container::binfile::{write_binfile, BinFileDataset};
use deep500::data::container::recordfile::{write_recordfile, RecordPipeline, RecordReader};
use deep500::data::dataset::assemble_minibatch;
use deep500::data::io_model::{StorageClock, StorageModel};
use deep500::data::{codec, Dataset};
use deep500::prelude::*;
use deep500_bench::{banner, full_scale, measure};
use std::path::PathBuf;
use std::sync::Arc;

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("d5-fig8");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

fn main() {
    banner(
        "Fig. 8 — dataset loading latency",
        "minibatch-assembly latency: real containers vs synthetic generation",
    );
    let batch = if full_scale() { 128 } else { 32 };
    let small_len = if full_scale() { 4096 } else { 512 };
    println!("minibatch size: {batch}\n");

    // ------------------------------------------------- small datasets
    let mut table = Table::new(
        "small datasets (raw binary, fully memory-resident after open)",
        &[
            "dataset",
            "real load [ms/batch]",
            "synthetic [ms/batch]",
            "faster",
        ],
    );
    let small: Vec<(&str, SyntheticDataset)> = vec![
        ("MNIST", SyntheticDataset::mnist_like(small_len, 1)),
        (
            "Fashion-MNIST",
            SyntheticDataset::fashion_mnist_like(small_len, 2),
        ),
        ("CIFAR-10", SyntheticDataset::cifar10_like(small_len, 3)),
        ("CIFAR-100", SyntheticDataset::cifar100_like(small_len, 4)),
    ];
    for (name, synth) in small {
        // Write the real on-disk file once, then measure batch assembly.
        let shape = synth.sample_shape();
        let d = shape.dims().to_vec();
        let samples: Vec<(Vec<u8>, u32)> = (0..small_len).map(|i| synth.sample_u8(i)).collect();
        let path = tmp(&format!("{name}.d5bin"));
        write_binfile(&path, d[0], d[1], d[2], &samples).unwrap();
        let clock = Arc::new(StorageClock::new());
        let real = BinFileDataset::open(
            &path,
            synth.num_classes(),
            &StorageModel::local_ssd(),
            &clock,
        )
        .unwrap();
        let indices: Vec<usize> = (0..batch).collect();
        let real_s = measure(|| assemble_minibatch(&real, &indices).unwrap());
        let mut seed = 0u64;
        let synth_s = measure(|| {
            seed += 1;
            synth.generate_fast_batch(batch, seed)
        });
        table.row(&[
            name.to_string(),
            format!("{:.3}", real_s.median * 1e3),
            format!("{:.3}", synth_s.median * 1e3),
            if real_s.median < synth_s.median {
                "real"
            } else {
                "synthetic"
            }
            .to_string(),
        ]);
        std::fs::remove_file(&path).ok();
    }
    table.print();

    // ---------------------------------------------------- ImageNet panel
    println!();
    let (img_hw, img_count) = if full_scale() { (224, 256) } else { (64, 64) };
    let imagenet = SyntheticDataset::new(
        "imagenet-synth",
        Shape::new(&[3, img_hw, img_hw]),
        1000,
        1_281_167, // logical size; samples are generated on demand
        0.4,
        5,
    );
    // Encode a shard of images into a record file (the real decode work).
    let samples: Vec<(codec::RawImage, u32)> = (0..img_count)
        .map(|i| {
            let (pix, label) = imagenet.sample_u8(i);
            (codec::RawImage::new(3, img_hw, img_hw, pix).unwrap(), label)
        })
        .collect();
    let bytes_per_image = {
        let enc = codec::encode(&samples[0].0, 85).unwrap();
        enc.len()
    };
    let path = tmp("imagenet.d5rec");
    write_recordfile(&path, &samples, 85).unwrap();

    // Measured decode+assembly cost of one minibatch from the pipeline.
    let decode_s = measure(|| {
        let clock = Arc::new(StorageClock::new());
        let reader = RecordReader::open(&path, StorageModel::local_ssd(), clock).unwrap();
        let mut pipeline = RecordPipeline::new(reader, 10_000, true, 9);
        pipeline.next_batch(batch.min(img_count)).unwrap().unwrap()
    });
    // Synthetic generation cost for the same minibatch (fast path: the
    // paper's "Synth" generator allocates and fills, it does not model the
    // class structure).
    let mut seed = 0u64;
    let synth_s = measure(|| {
        seed += 1;
        imagenet.generate_fast_batch(batch, seed)
    });

    let mut table = Table::new(
        format!(
            "ImageNet-shaped data ({img_hw}x{img_hw}, ~{} encoded bytes/img): decode vs synth + modeled PFS I/O",
            bytes_per_image
        ),
        &["generator", "decode+assemble [ms]", "modeled I/O [ms]", "total [ms]"],
    );
    let pfs = StorageModel::parallel_fs();
    for (label, files, nodes) in [
        ("1 file + 1 node", 1usize, 1usize),
        ("1024 files + 1 node", 1024, 1),
        ("1 file + 64 nodes", 1, 64),
        ("1024 files + 64 nodes", 1024, 64),
    ] {
        let io = pfs.batch_read_cost(batch, bytes_per_image, 1_281_167, files, nodes, true);
        table.row(&[
            label.to_string(),
            format!("{:.2}", decode_s.median * 1e3),
            format!("{:.3}", io * 1e3),
            format!("{:.2}", (decode_s.median + io) * 1e3),
        ]);
    }
    table.row(&[
        "synthetic".to_string(),
        format!("{:.2}", synth_s.median * 1e3),
        "0.000".to_string(),
        format!("{:.2}", synth_s.median * 1e3),
    ]);
    table.print();
    println!(
        "\nreading guide: synthetic generation should beat the decode pipeline\n\
         by a wide margin (paper: ~2 orders of magnitude at full scale); on\n\
         1 node '1 file' edges out '1024 files' (open cost), while on 64\n\
         nodes the sharded layout wins (~10% in the paper) via reduced\n\
         stripe-lock contention."
    );
    std::fs::remove_file(&path).ok();
}
