//! Fig. 9 — optimizer convergence and performance.
//!
//! Reproduces the two panels of the paper's Fig. 9 (Caffe2 executor,
//! ResNet-18, CIFAR at the paper's scale; CNN + synthetic CIFAR-shaped
//! task here): test accuracy vs epoch and training loss vs elapsed time,
//! for native (fused) optimizers against Deep500 reference optimizers and
//! the custom AcceleGrad.
//!
//! Expected shapes (paper): all optimizers reach comparable accuracy
//! bands; the *reference* (composed, allocation-heavy) implementations run
//! slower than the *native* fused kernels (paper: reference Adam ≈5×
//! slower, AcceleGrad ≈1.6× slower than native Caffe2 optimizers) while
//! matching their accuracy.

use deep500::frameworks::fused_optim::{
    FusedAdaGrad, FusedAdam, FusedMomentum, FusedRmsProp, FusedSgd,
};
use deep500::prelude::*;
use deep500::train::TrainingConfig;
use deep500_bench::{banner, full_scale};
use std::sync::Arc;

struct Entry {
    name: &'static str,
    opt: Box<dyn ThreeStepOptimizer>,
}

/// (label, fused implementation, composed implementation).
type UpdateRulePair = (
    &'static str,
    Box<dyn ThreeStepOptimizer>,
    Box<dyn ThreeStepOptimizer>,
);

fn lineup() -> Vec<Entry> {
    vec![
        Entry {
            name: "GradDescent native",
            opt: Box::new(FusedSgd::new(0.05)),
        },
        Entry {
            name: "Momentum native",
            opt: Box::new(FusedMomentum::new(0.01, 0.9)),
        },
        Entry {
            name: "Adam native",
            opt: Box::new(FusedAdam::new(0.002)),
        },
        Entry {
            name: "AdaGrad native",
            opt: Box::new(FusedAdaGrad::new(0.01)),
        },
        Entry {
            name: "RmsProp native",
            opt: Box::new(FusedRmsProp::new(0.001)),
        },
        Entry {
            name: "GradDescent Deep500",
            opt: Box::new(GradientDescent::new(0.05)),
        },
        Entry {
            name: "Momentum Deep500",
            opt: Box::new(Momentum::new(0.01, 0.9)),
        },
        Entry {
            name: "Adam-Ref Deep500",
            opt: Box::new(Adam::new(0.002)),
        },
        Entry {
            name: "AcceleGrad (custom)",
            opt: Box::new(AcceleGrad::new(AcceleGradConfig {
                d: 2.0,
                g: 5.0,
                lr: 0.05,
                eps: 1e-8,
            })),
        },
    ]
}

fn main() {
    banner(
        "Fig. 9 — optimizer convergence (Level 2)",
        "test accuracy vs epoch + loss vs time, native vs reference optimizers",
    );
    let (hw, train_len, epochs, batch) = if full_scale() {
        (32, 2048, 10, 64)
    } else {
        (16, 384, 5, 32)
    };
    println!(
        "task: CNN on 3x{hw}x{hw} synthetic CIFAR-like, {train_len} samples, {epochs} epochs\n"
    );

    let mut acc_table = Table::new("test accuracy (%) vs epoch", &{
        let mut h = vec!["optimizer"];
        let epoch_labels: Vec<String> = (0..epochs).map(|e| format!("e{e}")).collect();
        let leaked: Vec<&str> = epoch_labels
            .iter()
            .map(|s| Box::leak(s.clone().into_boxed_str()) as &str)
            .collect();
        h.extend(leaked);
        h.push("total time [s]");
        h
    });
    let mut results: Vec<(String, f64, f64)> = Vec::new(); // name, final acc, time

    for mut entry in lineup() {
        // Identical model/data seeds across optimizers: a fair comparison.
        let train_ds =
            SyntheticDataset::new("fig9", Shape::new(&[3, hw, hw]), 10, train_len, 2.0, 9);
        let test_ds = train_ds.holdout(train_len / 4);
        let net = models::lenet(3, hw, 10, 99).unwrap();
        let engine = Engine::builder(net).build().unwrap();
        let mut ex = engine.lock();
        let mut train = ShuffleSampler::new(Arc::new(train_ds), batch, 1);
        let mut test = ShuffleSampler::new(Arc::new(test_ds), batch * 2, 1);
        let mut runner = TrainingRunner::new(TrainingConfig {
            epochs,
            test_accuracy_every: 1,
            ..Default::default()
        });
        let log = runner
            .run(entry.opt.as_mut(), &mut *ex, &mut train, Some(&mut test))
            .unwrap();
        let mut cells = vec![entry.name.to_string()];
        for e in 0..epochs {
            let acc = log
                .test_accuracy
                .iter()
                .find(|&&(ep, _, _)| ep == e)
                .map(|&(_, a, _)| format!("{:.0}", a * 100.0))
                .unwrap_or_default();
            cells.push(acc);
        }
        cells.push(format!("{:.2}", log.total_time));
        acc_table.row(&cells);
        results.push((
            entry.name.to_string(),
            log.final_test_accuracy().unwrap(),
            log.total_time,
        ));
    }
    acc_table.print();

    // Loss-vs-time panel condensed into a slowdown summary.
    println!("\n--- performance: reference (composed) vs native (fused) updates ---");
    let time_of = |name: &str| {
        results
            .iter()
            .find(|(n, _, _)| n == name)
            .map(|r| r.2)
            .unwrap()
    };
    let pairs = [
        ("Adam", "Adam native", "Adam-Ref Deep500"),
        ("GradDescent", "GradDescent native", "GradDescent Deep500"),
        ("Momentum", "Momentum native", "Momentum Deep500"),
    ];
    for (label, native, reference) in pairs {
        let (tn, tr) = (time_of(native), time_of(reference));
        println!(
            "  {label:>12}: native {tn:.2} s vs reference {tr:.2} s  -> reference is {:.2}x slower",
            tr / tn
        );
    }
    let accs: Vec<f64> = results.iter().map(|r| r.1).collect();
    let spread = accs.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
        - accs.iter().cloned().fold(f64::INFINITY, f64::min);
    println!(
        "\nfinal-accuracy spread across optimizers: {:.1} points (paper: all\n\
         optimizers land in a comparable band; reference implementations are\n\
         slower, not less accurate)",
        spread * 100.0
    );

    // Isolated update-rule cost at ResNet-50 parameter scale — where the
    // paper's ≈5x composed-vs-fused Adam gap lives (on a small CNN the
    // update is hidden behind convolution time).
    println!("\n--- update-rule microbenchmark (25.6M parameters, ResNet-50 size) ---");
    let n = if full_scale() { 25_600_000 } else { 2_000_000 };
    let mut rng = Xoshiro256StarStar::seed_from_u64(50);
    let w = Tensor::rand_uniform([n], -1.0, 1.0, &mut rng);
    let g = Tensor::rand_uniform([n], -1.0, 1.0, &mut rng);
    let pairs: Vec<UpdateRulePair> = vec![
        (
            "Adam",
            Box::new(FusedAdam::new(0.01)),
            Box::new(Adam::new(0.01)),
        ),
        (
            "Momentum",
            Box::new(FusedMomentum::new(0.01, 0.9)),
            Box::new(Momentum::new(0.01, 0.9)),
        ),
    ];
    for (label, mut fused, mut composed) in pairs {
        fused.update_rule(&g, &w, "w").unwrap(); // warm state
        composed.update_rule(&g, &w, "w").unwrap();
        let tf = deep500_bench::measure(|| fused.update_rule(&g, &w, "w").unwrap());
        let tc = deep500_bench::measure(|| composed.update_rule(&g, &w, "w").unwrap());
        println!(
            "  {label:>9}: fused {:7.2} ms  composed {:7.2} ms  -> composed {:.2}x slower (paper: ~5x for Adam)",
            tf.median * 1e3,
            tc.median * 1e3,
            tc.median / tf.median
        );
    }
}
