//! Fig. 11 — trajectory divergence between a native optimizer and the
//! Deep500 reference.
//!
//! Reproduces the paper's analysis: run native (fused) Adam and the
//! reference Adam from identical parameters through identical minibatch
//! streams, recording per-layer ℓ2 and ℓ∞ distances per iteration — "a
//! single step … is faithful to the original algorithm, however,
//! continuing training increases divergence, where some parameters (e.g.,
//! fully connected) diverge faster than others (additive bias)".

use deep500::frameworks::fused_optim::FusedAdam;
use deep500::prelude::*;
use deep500::train::trajectory::compare_trajectories;
use deep500_bench::{banner, full_scale};
use std::sync::Arc;

fn main() {
    banner(
        "Fig. 11 — native-vs-reference trajectory divergence",
        "per-layer l2/l-inf distance between FusedAdam and reference Adam",
    );
    let iterations = if full_scale() { 900 } else { 150 };
    let record_every = (iterations / 10).max(1);

    // MLP on synthetic MNIST-shaped data, as in the paper's Fig. 11 setup.
    let ds: Arc<dyn Dataset> = Arc::new(SyntheticDataset::mnist_like(1024, 42));
    let mut sampler = ShuffleSampler::new(ds, 32, 4);
    let mut batches = Vec::with_capacity(iterations);
    while batches.len() < iterations {
        match sampler.next_batch().unwrap() {
            Some(b) => batches.push(b),
            None => sampler.reset_epoch(),
        }
    }

    let net = models::mlp(28 * 28, &[64, 32], 10, 11).unwrap();
    // The MLP input is flat; flatten the image batches.
    for b in &mut batches {
        let n = b.labels.numel();
        b.x.reshape(&[n, 28 * 28]).unwrap();
    }
    let engine_a = Engine::builder(net.clone_structure()).build().unwrap();
    let engine_b = Engine::builder(net).build().unwrap();
    let (mut exec_a, mut exec_b) = (engine_a.lock(), engine_b.lock());
    let mut native = FusedAdam::new(0.002);
    let mut reference = Adam::new(0.002);

    let log = compare_trajectories(
        &mut *exec_a,
        &mut native,
        &mut *exec_b,
        &mut reference,
        &batches,
    )
    .unwrap();

    // Panel (a): l2 divergence per layer over iterations.
    let mut table = Table::new(
        "l2 divergence (per layer and total) at sampled iterations",
        &{
            let mut h = vec!["iteration", "total"];
            let names: Vec<&str> = log
                .per_param
                .iter()
                .map(|p| Box::leak(p.name.clone().into_boxed_str()) as &str)
                .collect();
            h.extend(names);
            h
        },
    );
    for it in (0..iterations).step_by(record_every) {
        let mut cells = vec![it.to_string(), format!("{:.3e}", log.total_l2[it])];
        for p in &log.per_param {
            cells.push(format!("{:.2e}", p.l2[it]));
        }
        table.row(&cells);
    }
    table.print();

    // Panel (b): l-inf.
    println!(
        "\nl-inf divergence, total: start {:.2e} -> end {:.2e}",
        log.total_linf[0],
        log.total_linf[iterations - 1]
    );

    // Shape checks matching the paper's observations.
    println!("\nreading guide (paper Fig. 11):");
    let first = log.total_l2[0];
    let last = log.total_l2[iterations - 1];
    println!(
        "  * step 1 is (near-)faithful: total l2 after one step = {first:.2e}\n\
         \x20 * divergence grows chaotically with training: {first:.2e} -> {last:.2e} ({}x)",
        (last / first.max(1e-30)) as i64
    );
    // Weight matrices vs bias vectors.
    let weight_end: f64 = log
        .per_param
        .iter()
        .filter(|p| p.name.ends_with(".w"))
        .map(|p| p.l2[iterations - 1])
        .sum();
    let bias_end: f64 = log
        .per_param
        .iter()
        .filter(|p| p.name.ends_with(".b"))
        .map(|p| p.l2[iterations - 1])
        .sum();
    println!(
        "  * fully-connected weights diverge faster than additive biases:\n\
         \x20   weights {weight_end:.2e} vs biases {bias_end:.2e}"
    );
}
