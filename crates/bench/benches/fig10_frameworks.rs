//! Fig. 10 — one optimizer (Adam) across framework backends.
//!
//! Reproduces the paper's comparison of "Adam TF", "Adam CF2" (native
//! framework optimizers over their own executors) against "Adam TF
//! Deep500" / "Adam CF2 Deep500" (the reference optimizer over each
//! framework's executor): accuracy per epoch and total time.
//!
//! Expected shapes (paper): all four reach comparable accuracy ("Deep500's
//! Adam … still achieves high accuracy, even when the framework does
//! not"); the TF executor is the slowest; the reference optimizer costs
//! more than the native fused one on either executor.

use deep500::frameworks::fused_optim::FusedAdam;
use deep500::prelude::*;
use deep500::train::TrainingConfig;
use deep500_bench::{banner, full_scale};
use std::sync::Arc;

fn main() {
    banner(
        "Fig. 10 — Adam across framework backends",
        "native (fused) vs Deep500 reference Adam over TF-like and Caffe2-like executors",
    );
    let (hw, train_len, epochs, batch) = if full_scale() {
        (32, 2048, 10, 64)
    } else {
        (16, 384, 5, 32)
    };

    struct Config {
        label: &'static str,
        profile: FrameworkProfile,
        fused: bool,
    }
    let configs = vec![
        Config {
            label: "Adam TF (native)",
            profile: FrameworkProfile::tensorflow(),
            fused: false,
        },
        // The paper's TF composes Adam from tensor ops — modeled by the
        // composed reference running over the TF executor; Caffe2's fused
        // Adam kernel is the FusedAdam update.
        Config {
            label: "Adam CF2 (native, fused)",
            profile: FrameworkProfile::caffe2(),
            fused: true,
        },
        Config {
            label: "Adam TF Deep500",
            profile: FrameworkProfile::tensorflow(),
            fused: false,
        },
        Config {
            label: "Adam CF2 Deep500",
            profile: FrameworkProfile::caffe2(),
            fused: false,
        },
    ];

    let mut table = Table::new("accuracy per epoch (%) and total time", &{
        let mut h = vec!["configuration"];
        let labels: Vec<&str> = (0..epochs)
            .map(|e| Box::leak(format!("e{e}").into_boxed_str()) as &str)
            .collect();
        h.extend(labels);
        h.push("time [s]");
        h
    });
    let mut times = Vec::new();
    for cfg in configs {
        let train_ds =
            SyntheticDataset::new("fig10", Shape::new(&[3, hw, hw]), 10, train_len, 2.0, 10);
        let test_ds = train_ds.holdout(train_len / 4);
        let net = models::lenet(3, hw, 10, 100).unwrap();
        let mut ex = FrameworkExecutor::new(&net, cfg.profile).unwrap();
        let mut train = ShuffleSampler::new(Arc::new(train_ds), batch, 2);
        let mut test = ShuffleSampler::new(Arc::new(test_ds), batch * 2, 2);
        let mut runner = TrainingRunner::new(TrainingConfig {
            epochs,
            test_accuracy_every: 1,
            ..Default::default()
        });
        let log = if cfg.fused {
            let mut opt = FusedAdam::new(0.002);
            runner
                .run(&mut opt, &mut ex, &mut train, Some(&mut test))
                .unwrap()
        } else {
            let mut opt = Adam::new(0.002);
            runner
                .run(&mut opt, &mut ex, &mut train, Some(&mut test))
                .unwrap()
        };
        let mut cells = vec![cfg.label.to_string()];
        for e in 0..epochs {
            cells.push(
                log.test_accuracy
                    .iter()
                    .find(|&&(ep, _, _)| ep == e)
                    .map(|&(_, a, _)| format!("{:.0}", a * 100.0))
                    .unwrap_or_default(),
            );
        }
        cells.push(format!("{:.2}", log.total_time));
        table.row(&cells);
        times.push((
            cfg.label,
            log.total_time,
            log.final_test_accuracy().unwrap(),
        ));
    }
    table.print();

    println!("\nreading guide (paper Fig. 10):");
    println!("  * every configuration reaches a comparable accuracy band;");
    println!("  * the TF-like executor is slower than the Caffe2-like one at equal math;");
    let tf_native = times[0].1;
    let cf2_native = times[1].1;
    println!(
        "  here: TF executor {:.2} s vs Caffe2 executor {:.2} s (ratio {:.2}x)",
        tf_native,
        cf2_native,
        tf_native / cf2_native
    );
}
