//! Fig. 12 — strong and weak scaling of distributed training (Level 3).
//!
//! Two parts, mirroring §V-E:
//!
//! 1. **Small-scale ground truth** (real threads, real messages, virtual
//!    clock): four ranks run every scheme on a real model; communication
//!    volumes are exact message counts.
//! 2. **Schedule simulation at paper scale** (8–256 nodes, ResNet-50-like
//!    workload, Aries-like α-β network): strong scaling with a global
//!    minibatch of 1,024 and weak scaling at 128 images/node, plus the
//!    per-node communication-volume table from the figure caption.
//!
//! Expected shapes (paper): CDSGD ≫ REF-dsgd (Python conversions);
//! decentralized beats centralized as nodes grow; ASGD degrades with node
//! count; DPSGD volume constant; SparCML volume < dense at small scale,
//! densifying with nodes; TF-PS crashes and Horovod diverges at 256 nodes.

use deep500::dist::runner::{DistributedRunner, Variant};
use deep500::dist::scaling::{strong_scaling, weak_scaling, Scheme, WorkloadModel};
use deep500::dist::NetworkModel;
use deep500::metrics::report::fmt_bytes;
use deep500::prelude::*;
use deep500_bench::{banner, full_scale};
use std::sync::Arc;

fn main() {
    banner(
        "Fig. 12 — strong and weak scaling (Level 3)",
        "real 4-rank runs (ground truth) + schedule simulation at 8-256 nodes",
    );

    // ------------------------------------------- part 1: real threads
    println!("--- ground truth: 4 real ranks, real messages, virtual Aries clock ---");
    let steps = if full_scale() { 20 } else { 8 };
    let schemes: Vec<(&str, Variant)> = vec![
        ("CDSGD", Variant::Cdsgd),
        ("REF-dsgd", Variant::RefDsgd),
        ("Horovod", Variant::Horovod),
        ("REF-pssgd", Variant::Pssgd),
        ("REF-asgd", Variant::Asgd),
        ("REF-dpsgd", Variant::Dpsgd),
        ("REF-mavg", Variant::Mavg { period: 2 }),
        ("SparCML", Variant::SparCml { density: 0.1 }),
    ];

    let dataset: Arc<dyn Dataset> = Arc::new(SyntheticDataset::new(
        "fig12",
        Shape::new(&[32]),
        4,
        4096,
        0.3,
        12,
    ));
    let network = models::mlp(32, &[64], 4, 12).unwrap();
    let mut table = Table::new(
        format!("4 ranks x {steps} steps (rank-0 numbers)"),
        &[
            "scheme",
            "loss end",
            "sent/rank",
            "msgs",
            "virtual time [ms]",
        ],
    );
    for (name, variant) in schemes {
        let report = DistributedRunner::new(&network, dataset.clone())
            .world(4)
            .batch(16)
            .steps(steps)
            .seed(3)
            .learning_rate(0.05)
            .variant(variant)
            .network(NetworkModel::aries())
            .run()
            .unwrap();
        let r = &report.ranks[0];
        table.row(&[
            name.to_string(),
            format!("{:.3}", r.losses.last().unwrap()),
            fmt_bytes(r.volume.bytes_sent),
            r.volume.messages_sent.to_string(),
            format!("{:.2}", r.virtual_time * 1e3),
        ]);
    }
    table.print();

    // --------------------------------------- part 2: paper-scale schedules
    let w = WorkloadModel::default();
    let net = NetworkModel::aries();

    println!("\n--- strong scaling: ResNet-50-like, global minibatch 1024, 8-64 nodes ---");
    let nodes = [8usize, 16, 32, 64];
    let mut table = Table::new(
        "aggregate throughput [images/s] (— = failed)",
        &["scheme", "8", "16", "32", "64"],
    );
    for scheme in Scheme::strong_set() {
        let pts = strong_scaling(&[scheme], &nodes, 1024, &w, &net);
        let mut cells = vec![scheme.label().to_string()];
        for p in &pts {
            cells.push(match p.throughput {
                Some(t) => format!("{t:.0}"),
                None => format!("— ({})", p.note.unwrap_or("failed")),
            });
        }
        table.row(&cells);
    }
    table.print();

    println!("\nper-node communicated data per step at 8 nodes (caption analogue):");
    for scheme in Scheme::strong_set() {
        let p = deep500::dist::scaling::simulate_step(scheme, 8, 128, &w, &net);
        println!(
            "  {:>9}: {}",
            scheme.label(),
            fmt_bytes(p.sent_bytes_per_step)
        );
    }

    println!("\n--- weak scaling: 128 images/node, 1-256 nodes ---");
    let nodes = [1usize, 4, 16, 64, 256];
    let mut table = Table::new(
        "aggregate throughput [images/s] (— = failed)",
        &["scheme", "1", "4", "16", "64", "256"],
    );
    for scheme in Scheme::weak_set() {
        let pts = weak_scaling(&[scheme], &nodes, 128, &w, &net);
        let mut cells = vec![scheme.label().to_string()];
        for p in &pts {
            cells.push(match p.throughput {
                Some(t) => format!("{t:.0}"),
                None => format!("— ({})", p.note.unwrap_or("failed")),
            });
        }
        table.row(&cells);
    }
    table.print();
    println!(
        "\nreading guide (paper Fig. 12): the allreduce schemes (CDSGD,\n\
         Horovod) scale past the PS architectures; REF-dsgd trails CDSGD by\n\
         a wide margin (Python conversion overhead); ASGD throughput and\n\
         volume degrade with node count; TF-PS crashes and Horovod's loss\n\
         explodes at 256 nodes."
    );
}
