//! §V-D "Optimization Overhead" — Deep500 instrumentation costs <1%.
//!
//! The paper measures "the runtime of training in native TensorFlow and
//! using the Deep500 TensorFlow integration": apart from first-epoch
//! instantiation, Deep500 incurs negligible (<1%) overhead (≈243 ms/epoch
//! either way). Here: the same training loop runs (a) bare, and (b) with
//! the full Deep500 instrumentation attached — wallclock events on every
//! operator plus the FrameworkOverhead probe — and the two per-epoch
//! medians are compared.

use deep500::graph::executor::FrameworkOverheadProbe;
use deep500::metrics::event::Phase;
use deep500::metrics::stats::Summary;
use deep500::metrics::WallclockTime;
use deep500::prelude::*;
use deep500_bench::{banner, full_scale, reruns};
use std::sync::Arc;

fn epoch_times(instrumented: bool, epochs: usize) -> Vec<f64> {
    let (hw, len, batch) = if full_scale() {
        (28, 1024, 64)
    } else {
        (16, 256, 32)
    };
    let train_ds = SyntheticDataset::new("ovh", Shape::new(&[1, hw, hw]), 10, len, 0.4, 20);
    let net = models::lenet(1, hw, 10, 20).unwrap();
    let mut ex = FrameworkExecutor::new(&net, FrameworkProfile::tensorflow()).unwrap();
    if instrumented {
        // The full metric stack: per-operator wallclock, whole-pass
        // wallclock, and the framework-overhead probe.
        ex.events_mut()
            .push(Box::new(WallclockTime::new(Phase::OperatorForward)));
        ex.events_mut()
            .push(Box::new(WallclockTime::new(Phase::OperatorBackward)));
        ex.events_mut()
            .push(Box::new(WallclockTime::new(Phase::Backprop)));
        ex.events_mut()
            .push(Box::new(FrameworkOverheadProbe::new()));
    }
    let mut sampler = ShuffleSampler::new(Arc::new(train_ds), batch, 6);
    let mut opt = GradientDescent::new(0.05);
    let mut runner = TrainingRunner::new(TrainingConfig {
        epochs,
        ..Default::default()
    });
    let log = runner.run(&mut opt, &mut ex, &mut sampler, None).unwrap();
    log.epoch_times
}

fn main() {
    banner(
        "§V-D — Level-2 optimization overhead",
        "native training loop vs the same loop under full Deep500 instrumentation",
    );
    let epochs = reruns().max(5);

    let native = epoch_times(false, epochs);
    let instrumented = epoch_times(true, epochs);
    // Drop the first epoch (instantiation overhead, as the paper does).
    let native_s = Summary::of(&native[1..]);
    let instr_s = Summary::of(&instrumented[1..]);

    let mut table = Table::new(
        "per-epoch runtime (first epoch excluded)",
        &["configuration", "median [ms]", "95% CI [ms]"],
    );
    for (name, s) in [("native", &native_s), ("Deep500-instrumented", &instr_s)] {
        table.row(&[
            name.to_string(),
            format!("{:.2}", s.median * 1e3),
            format!("[{:.2}, {:.2}]", s.median_ci.lo * 1e3, s.median_ci.hi * 1e3),
        ]);
    }
    table.print();

    let overhead = (instr_s.median - native_s.median) / native_s.median * 100.0;
    println!(
        "\nmeasured instrumentation overhead: {overhead:+.2}% \
         (paper claims <1%; CIs overlapping = statistically indistinguishable: {})",
        native_s.median_ci.overlaps(&instr_s.median_ci)
    );
}
