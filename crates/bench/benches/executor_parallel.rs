//! Reference vs. wavefront executor on a wide, multi-level model.
//!
//! The model has `BRANCHES` independent `Linear -> Relu` towers fanning out
//! of a shared input and merging in a `Concat -> MseLoss` head, so the
//! wavefront partition contains two levels of width `BRANCHES` — the shape
//! the level scheduler is built for. Each executor is benched on a full
//! `inference_and_backprop` pass at 1, 2 and max worker threads
//! (`0` = one slot per rayon worker); the wavefront executor additionally
//! amortises allocations through its tensor buffer pool, so it can win
//! even at a single thread once the pool is warm.
//!
//! Run with `cargo bench --bench executor_parallel`. Thread counts beyond
//! the machine's core count time-slice rather than speed up; record the
//! host's `nproc` next to any numbers you keep.

use criterion::{criterion_group, criterion_main, Criterion};
use deep500::graph::{Engine, ExecutorKind, Network};
use deep500::ops::registry::Attributes;
use deep500::tensor::{Tensor, Xoshiro256StarStar};

const BRANCHES: usize = 8;
const FEATURES: usize = 96;
const BATCH: usize = 16;

/// `BRANCHES` independent Linear->Relu towers over a shared input,
/// concatenated (axis 0) and reduced to a scalar MSE loss.
fn wide_net() -> Network {
    let mut rng = Xoshiro256StarStar::seed_from_u64(0x5eed);
    let mut net = Network::new("wide");
    net.add_input("x");
    net.add_input("target");
    let mut towers: Vec<String> = Vec::new();
    for i in 0..BRANCHES {
        let (w, b, h, r) = (
            format!("w{i}"),
            format!("b{i}"),
            format!("h{i}"),
            format!("r{i}"),
        );
        net.add_parameter(
            &w,
            Tensor::rand_normal([FEATURES, FEATURES], 0.0, 0.05, &mut rng),
        );
        net.add_parameter(&b, Tensor::zeros([FEATURES]));
        net.add_node(
            format!("fc{i}"),
            "Linear",
            Attributes::new(),
            &["x", &w, &b],
            &[&h],
        )
        .unwrap();
        net.add_node(format!("act{i}"), "Relu", Attributes::new(), &[&h], &[&r])
            .unwrap();
        towers.push(r);
    }
    let tower_refs: Vec<&str> = towers.iter().map(String::as_str).collect();
    let cat = Attributes::new().with_int("num_inputs", BRANCHES as i64);
    net.add_node("merge", "Concat", cat, &tower_refs, &["y"])
        .unwrap();
    net.add_node(
        "mse",
        "MseLoss",
        Attributes::new(),
        &["y", "target"],
        &["loss"],
    )
    .unwrap();
    net.add_output("loss");
    net
}

fn feeds() -> Vec<(&'static str, Tensor)> {
    let mut rng = Xoshiro256StarStar::seed_from_u64(7);
    vec![
        (
            "x",
            Tensor::rand_uniform([BATCH, FEATURES], -1.0, 1.0, &mut rng),
        ),
        ("target", Tensor::zeros([BRANCHES * BATCH, FEATURES])),
    ]
}

fn bench_executors(c: &mut Criterion) {
    let mut group = c.benchmark_group(format!("executor/wide{BRANCHES}x{FEATURES}b{BATCH}"));
    group.sample_size(10);
    let feeds = feeds();

    group.bench_function("reference", |b| {
        let engine = Engine::builder(wide_net()).build().unwrap();
        let mut ex = engine.lock();
        b.iter(|| criterion::black_box(ex.inference_and_backprop(&feeds, "loss").unwrap()));
    });

    for threads in [1usize, 2, 0] {
        let label = if threads == 0 {
            "wavefront/max".to_string()
        } else {
            format!("wavefront/{threads}")
        };
        group.bench_function(&label, |b| {
            let engine = Engine::builder(wide_net())
                .executor(ExecutorKind::Wavefront)
                .threads(threads)
                .build()
                .unwrap();
            let mut ex = engine.lock();
            // Warm the buffer pool so steady-state reuse is what's measured.
            ex.inference_and_backprop(&feeds, "loss").unwrap();
            b.iter(|| criterion::black_box(ex.inference_and_backprop(&feeds, "loss").unwrap()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_executors);
criterion_main!(benches);
