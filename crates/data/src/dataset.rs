//! Dataset interfaces: samples, datasets, minibatches.

use deep500_tensor::{Error, Result, Shape, Tensor};

/// One labeled sample: a tensor (sample shape, no batch axis) and a class.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    pub data: Tensor,
    pub label: u32,
}

/// A minibatch ready to feed a network: `x` is `[B, ...sample]`, `labels`
/// is `[B]` (class indices as f32, the substrate's single dtype).
#[derive(Debug, Clone, PartialEq)]
pub struct Minibatch {
    pub x: Tensor,
    pub labels: Tensor,
}

impl Minibatch {
    /// Batch size.
    pub fn len(&self) -> usize {
        self.labels.numel()
    }

    /// Whether the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Feed pairs for a classifier-loss network (`x`, `labels`).
    pub fn feeds(&self) -> Vec<(&str, Tensor)> {
        vec![("x", self.x.clone()), ("labels", self.labels.clone())]
    }
}

/// A dataset of labeled samples. Implementations may perform real work per
/// access (decode, simulated I/O) — that cost is what the latency
/// experiments measure.
pub trait Dataset: Send + Sync {
    /// Dataset name for reports.
    fn name(&self) -> &str;

    /// Number of samples.
    fn len(&self) -> usize;

    /// Whether the dataset is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Shape of one sample (no batch axis).
    fn sample_shape(&self) -> Shape;

    /// Number of classes.
    fn num_classes(&self) -> usize;

    /// Fetch sample `idx`.
    fn sample(&self, idx: usize) -> Result<Sample>;
}

/// Assemble a minibatch by gathering `indices` from `dataset`.
pub fn assemble_minibatch(dataset: &dyn Dataset, indices: &[usize]) -> Result<Minibatch> {
    if indices.is_empty() {
        return Err(Error::Invalid("empty minibatch".into()));
    }
    let sshape = dataset.sample_shape();
    let per = sshape.numel();
    let mut dims = vec![indices.len()];
    dims.extend_from_slice(sshape.dims());
    let mut x = Tensor::zeros(Shape::new(&dims));
    let mut labels = Tensor::zeros([indices.len()]);
    for (row, &idx) in indices.iter().enumerate() {
        let s = dataset.sample(idx)?;
        if s.data.shape() != &sshape {
            return Err(Error::ShapeMismatch(format!(
                "sample {idx}: {} vs dataset shape {}",
                s.data.shape(),
                sshape
            )));
        }
        x.data_mut()[row * per..(row + 1) * per].copy_from_slice(s.data.data());
        labels.data_mut()[row] = s.label as f32;
    }
    Ok(Minibatch { x, labels })
}

/// A trivially small in-memory dataset, mostly for tests.
pub struct InMemoryDataset {
    name: String,
    samples: Vec<Sample>,
    shape: Shape,
    classes: usize,
}

impl InMemoryDataset {
    /// Wrap a list of samples. All must share a shape.
    pub fn new(name: &str, samples: Vec<Sample>, classes: usize) -> Result<Self> {
        let shape = samples
            .first()
            .map(|s| s.data.shape().clone())
            .ok_or_else(|| Error::Invalid("empty dataset".into()))?;
        if samples.iter().any(|s| s.data.shape() != &shape) {
            return Err(Error::ShapeMismatch("inconsistent sample shapes".into()));
        }
        Ok(InMemoryDataset {
            name: name.into(),
            samples,
            shape,
            classes,
        })
    }
}

impl Dataset for InMemoryDataset {
    fn name(&self) -> &str {
        &self.name
    }
    fn len(&self) -> usize {
        self.samples.len()
    }
    fn sample_shape(&self) -> Shape {
        self.shape.clone()
    }
    fn num_classes(&self) -> usize {
        self.classes
    }
    fn sample(&self, idx: usize) -> Result<Sample> {
        self.samples
            .get(idx)
            .cloned()
            .ok_or_else(|| Error::NotFound(format!("sample {idx}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> InMemoryDataset {
        let samples = (0..4)
            .map(|i| Sample {
                data: Tensor::full([2], i as f32),
                label: i % 2,
            })
            .collect();
        InMemoryDataset::new("tiny", samples, 2).unwrap()
    }

    #[test]
    fn dataset_basics() {
        let d = tiny();
        assert_eq!(d.len(), 4);
        assert!(!d.is_empty());
        assert_eq!(d.num_classes(), 2);
        assert_eq!(d.sample_shape(), Shape::new(&[2]));
        assert_eq!(d.sample(3).unwrap().label, 1);
        assert!(d.sample(4).is_err());
    }

    #[test]
    fn minibatch_assembly_gathers_in_order() {
        let d = tiny();
        let mb = assemble_minibatch(&d, &[2, 0]).unwrap();
        assert_eq!(mb.len(), 2);
        assert_eq!(mb.x.shape(), &Shape::new(&[2, 2]));
        assert_eq!(mb.x.data(), &[2.0, 2.0, 0.0, 0.0]);
        assert_eq!(mb.labels.data(), &[0.0, 0.0]);
        let feeds = mb.feeds();
        assert_eq!(feeds[0].0, "x");
        assert_eq!(feeds[1].0, "labels");
    }

    #[test]
    fn empty_minibatch_rejected() {
        let d = tiny();
        assert!(assemble_minibatch(&d, &[]).is_err());
    }

    #[test]
    fn inconsistent_shapes_rejected() {
        let samples = vec![
            Sample {
                data: Tensor::zeros([2]),
                label: 0,
            },
            Sample {
                data: Tensor::zeros([3]),
                label: 1,
            },
        ];
        assert!(InMemoryDataset::new("bad", samples, 2).is_err());
        assert!(InMemoryDataset::new("empty", vec![], 2).is_err());
    }
}
