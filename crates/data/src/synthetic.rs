//! Deterministic synthetic datasets.
//!
//! The paper downloads MNIST, Fashion-MNIST, CIFAR-10/100 and parses
//! ImageNet. We substitute deterministic synthetic datasets that preserve
//! the properties the experiments need:
//!
//! * identical **shapes and sizes** (28×28×1, 32×32×3, 224×224×3; sample
//!   counts scaled down but proportionate),
//! * **learnability**: samples are Gaussian perturbations of per-class
//!   prototype patterns, so optimizers genuinely converge and optimizer
//!   rankings are meaningful (Fig. 9/10),
//! * **reproducibility**: sample `i` is a pure function of
//!   `(dataset seed, i)` via split RNG streams.
//!
//! "Synthetic data generation" in Fig. 8 measures exactly this generation
//! cost.

use crate::dataset::{Dataset, Sample};
use deep500_tensor::{Result, Shape, Tensor, Xoshiro256StarStar};

/// A synthetic classification dataset: per-class smooth prototype patterns
/// plus per-sample Gaussian noise.
pub struct SyntheticDataset {
    name: String,
    shape: Shape,
    classes: usize,
    len: usize,
    noise: f32,
    base: Xoshiro256StarStar,
    /// Per-class prototypes, precomputed.
    prototypes: Vec<Vec<f32>>,
    /// Index offset: sample `i` of this view is global sample `offset + i`
    /// of the underlying distribution (used for train/test holdouts that
    /// share prototypes but never share samples).
    offset: usize,
}

impl SyntheticDataset {
    /// Build with an explicit shape/class count.
    pub fn new(
        name: &str,
        shape: Shape,
        classes: usize,
        len: usize,
        noise: f32,
        seed: u64,
    ) -> Self {
        let base = Xoshiro256StarStar::seed_from_u64(seed);
        let numel = shape.numel();
        let mut prototypes = Vec::with_capacity(classes);
        for c in 0..classes {
            // Smooth, well-separated pattern: sinusoid with class-specific
            // frequency/phase plus a class-mean offset.
            let mut proto_rng = base.split(0xC0FFEE ^ c as u64);
            let freq = 1.0 + c as f32 * 0.7;
            let phase = proto_rng.uniform(0.0, std::f32::consts::TAU);
            let offset = proto_rng.uniform(-0.5, 0.5);
            let proto: Vec<f32> = (0..numel)
                .map(|i| {
                    let t = i as f32 / numel as f32;
                    offset + (freq * std::f32::consts::TAU * t + phase).sin()
                })
                .collect();
            prototypes.push(proto);
        }
        SyntheticDataset {
            name: name.into(),
            shape,
            classes,
            len,
            noise,
            base,
            prototypes,
            offset: 0,
        }
    }

    /// A disjoint holdout view of the same distribution: identical
    /// prototypes and noise, but samples indexed past the end of `self`
    /// (and past any previous holdout), so train/test never overlap.
    pub fn holdout(&self, len: usize) -> SyntheticDataset {
        SyntheticDataset {
            name: format!("{}-holdout", self.name),
            shape: self.shape.clone(),
            classes: self.classes,
            len,
            noise: self.noise,
            base: self.base.clone(),
            prototypes: self.prototypes.clone(),
            offset: self.offset + self.len,
        }
    }

    /// MNIST-shaped dataset: `1x28x28`, 10 classes.
    pub fn mnist_like(len: usize, seed: u64) -> Self {
        Self::new("mnist-synth", Shape::new(&[1, 28, 28]), 10, len, 0.3, seed)
    }

    /// Fashion-MNIST-shaped dataset: `1x28x28`, 10 classes (different seed
    /// stream so contents differ from MNIST).
    pub fn fashion_mnist_like(len: usize, seed: u64) -> Self {
        Self::new(
            "fashion-mnist-synth",
            Shape::new(&[1, 28, 28]),
            10,
            len,
            0.35,
            seed ^ 0xFA5410,
        )
    }

    /// CIFAR-10-shaped dataset: `3x32x32`, 10 classes.
    pub fn cifar10_like(len: usize, seed: u64) -> Self {
        Self::new(
            "cifar10-synth",
            Shape::new(&[3, 32, 32]),
            10,
            len,
            0.4,
            seed,
        )
    }

    /// CIFAR-100-shaped dataset: `3x32x32`, 100 classes.
    pub fn cifar100_like(len: usize, seed: u64) -> Self {
        Self::new(
            "cifar100-synth",
            Shape::new(&[3, 32, 32]),
            100,
            len,
            0.4,
            seed,
        )
    }

    /// ImageNet-shaped dataset: `3x224x224`, 1000 classes.
    pub fn imagenet_like(len: usize, seed: u64) -> Self {
        Self::new(
            "imagenet-synth",
            Shape::new(&[3, 224, 224]),
            1000,
            len,
            0.4,
            seed,
        )
    }

    /// The deterministic class of sample `idx`.
    pub fn label_of(&self, idx: usize) -> u32 {
        // Spread classes evenly but non-contiguously.
        let mut rng = self.base.split((self.offset + idx) as u64);
        rng.next_below(self.classes) as u32
    }

    /// Fast synthetic minibatch generation — the "Synth" generator of the
    /// paper's Fig. 8: allocate the batch tensor and fill it with cheap
    /// uniform noise + random labels, without the per-pixel Gaussian work
    /// of the learnable sampler. This is what DL benchmarks mean by
    /// "synthetic data": something shaped right, produced at memory speed.
    pub fn generate_fast_batch(&self, batch: usize, seed: u64) -> crate::Minibatch {
        let mut rng = self.base.split(seed ^ 0xFA57);
        let mut dims = vec![batch];
        dims.extend_from_slice(self.shape.dims());
        let mut x = Tensor::zeros(Shape::new(&dims));
        rng.fill_uniform(x.data_mut(), -1.0, 1.0);
        let mut labels = Tensor::zeros([batch]);
        for l in labels.data_mut() {
            *l = rng.next_below(self.classes) as f32;
        }
        crate::Minibatch { x, labels }
    }

    /// Sample as raw `u8` pixels in `[0, 255]` (what the codec encodes).
    pub fn sample_u8(&self, idx: usize) -> (Vec<u8>, u32) {
        let s = self.sample(idx).expect("in-range idx");
        let bytes = s
            .data
            .data()
            .iter()
            .map(|&v| ((v.clamp(-1.5, 1.5) + 1.5) / 3.0 * 255.0) as u8)
            .collect();
        (bytes, s.label)
    }
}

impl Dataset for SyntheticDataset {
    fn name(&self) -> &str {
        &self.name
    }
    fn len(&self) -> usize {
        self.len
    }
    fn sample_shape(&self) -> Shape {
        self.shape.clone()
    }
    fn num_classes(&self) -> usize {
        self.classes
    }
    fn sample(&self, idx: usize) -> Result<Sample> {
        if idx >= self.len {
            return Err(deep500_tensor::Error::NotFound(format!(
                "sample {idx} of {}",
                self.len
            )));
        }
        let mut rng = self.base.split((self.offset + idx) as u64);
        let label = rng.next_below(self.classes) as u32;
        let proto = &self.prototypes[label as usize];
        let mut data = Tensor::zeros(self.shape.clone());
        for (v, &p) in data.data_mut().iter_mut().zip(proto) {
            *v = p + self.noise * rng.normal() as f32;
        }
        Ok(Sample { data, label })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deep500_metrics::norms::l2_diff;

    #[test]
    fn deterministic_samples() {
        let d = SyntheticDataset::mnist_like(100, 7);
        let a = d.sample(42).unwrap();
        let b = d.sample(42).unwrap();
        assert_eq!(a, b);
        let c = d.sample(43).unwrap();
        assert_ne!(a.data, c.data);
        assert_eq!(a.label, d.label_of(42));
    }

    #[test]
    fn shapes_match_real_datasets() {
        assert_eq!(
            SyntheticDataset::mnist_like(1, 0).sample_shape(),
            Shape::new(&[1, 28, 28])
        );
        assert_eq!(
            SyntheticDataset::cifar10_like(1, 0).sample_shape(),
            Shape::new(&[3, 32, 32])
        );
        assert_eq!(
            SyntheticDataset::imagenet_like(1, 0).sample_shape(),
            Shape::new(&[3, 224, 224])
        );
        assert_eq!(SyntheticDataset::cifar100_like(1, 0).num_classes(), 100);
    }

    #[test]
    fn classes_are_separated() {
        // Same-class samples must be closer than cross-class samples on
        // average — the property that makes training converge.
        let d = SyntheticDataset::mnist_like(400, 3);
        let mut by_class: Vec<Vec<usize>> = vec![Vec::new(); 10];
        for i in 0..400 {
            by_class[d.label_of(i) as usize].push(i);
        }
        let (c0, c1) = (&by_class[0], &by_class[1]);
        assert!(c0.len() >= 2 && c1.len() >= 2);
        let s = |i: usize| d.sample(i).unwrap().data;
        let within = l2_diff(s(c0[0]).data(), s(c0[1]).data());
        let across = l2_diff(s(c0[0]).data(), s(c1[0]).data());
        assert!(
            across > within,
            "across {across} must exceed within {within}"
        );
    }

    #[test]
    fn out_of_range_rejected() {
        let d = SyntheticDataset::mnist_like(5, 0);
        assert!(d.sample(5).is_err());
    }

    #[test]
    fn u8_conversion_in_range() {
        let d = SyntheticDataset::cifar10_like(3, 1);
        let (bytes, label) = d.sample_u8(0);
        assert_eq!(bytes.len(), 3 * 32 * 32);
        assert!((label as usize) < 10);
    }

    #[test]
    fn label_distribution_covers_classes() {
        let d = SyntheticDataset::mnist_like(1000, 11);
        let mut seen = [false; 10];
        for i in 0..1000 {
            seen[d.label_of(i) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
