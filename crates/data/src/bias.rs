//! The `DatasetBias` metric and `test_sampler` (paper §IV-E).
//!
//! "Dataset samplers can be tested individually by running `test_sampler`
//! with the `DatasetBias` metric, which collects a histogram of sampled
//! elements w.r.t. corresponding labels." A biased sampler (one that
//! over-represents some classes) skews training; the metric quantifies the
//! skew via the histogram and a chi-square statistic against the dataset's
//! own label distribution.

use crate::sampler::DatasetSampler;
use deep500_metrics::{MetricValue, TestMetric};
use deep500_tensor::Result;

/// Label histogram of sampled elements.
#[derive(Debug, Clone)]
pub struct DatasetBias {
    counts: Vec<u64>,
}

impl DatasetBias {
    /// Metric over `classes` labels.
    pub fn new(classes: usize) -> Self {
        DatasetBias {
            counts: vec![0; classes],
        }
    }

    /// Record one sampled label.
    pub fn record(&mut self, label: u32) {
        if let Some(c) = self.counts.get_mut(label as usize) {
            *c += 1;
        }
    }

    /// The raw histogram.
    pub fn histogram(&self) -> &[u64] {
        &self.counts
    }

    /// Total samples recorded.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Chi-square statistic against the expected counts (same length).
    pub fn chi_square(&self, expected: &[f64]) -> f64 {
        assert_eq!(expected.len(), self.counts.len());
        self.counts
            .iter()
            .zip(expected)
            .map(|(&obs, &exp)| {
                if exp > 0.0 {
                    let d = obs as f64 - exp;
                    d * d / exp
                } else {
                    0.0
                }
            })
            .sum()
    }

    /// Chi-square against a uniform label distribution.
    pub fn chi_square_uniform(&self) -> f64 {
        let exp = self.total() as f64 / self.counts.len().max(1) as f64;
        self.chi_square(&vec![exp; self.counts.len()])
    }
}

impl TestMetric for DatasetBias {
    fn name(&self) -> &str {
        "dataset-bias"
    }
    fn observe(&mut self, value: f64) {
        self.record(value as u32);
    }
    fn summarize(&self) -> MetricValue {
        MetricValue::Series(self.counts.iter().map(|&c| c as f64).collect())
    }
    fn reset(&mut self) {
        self.counts.iter_mut().for_each(|c| *c = 0);
    }
}

/// Report from a sampler bias test.
#[derive(Debug, Clone)]
pub struct SamplerReport {
    pub bias: DatasetBias,
    /// Samples drawn.
    pub samples: u64,
    /// Chi-square statistic vs the dataset's true label distribution.
    pub chi_square: f64,
    /// Degrees of freedom (classes - 1).
    pub dof: usize,
}

impl SamplerReport {
    /// Loose pass criterion: the statistic is below `factor` times the
    /// degrees of freedom (`E[chi2] = dof` for an unbiased sampler).
    pub fn passes(&self, factor: f64) -> bool {
        self.chi_square <= factor * self.dof.max(1) as f64
    }
}

/// Drain `epochs` epochs from the sampler and report label bias relative
/// to the dataset's own label distribution.
pub fn test_sampler(sampler: &mut dyn DatasetSampler, epochs: usize) -> Result<SamplerReport> {
    let classes = sampler.dataset().num_classes();
    let mut bias = DatasetBias::new(classes);
    // Dataset's true label distribution.
    let mut truth = vec![0u64; classes];
    for i in 0..sampler.dataset().len() {
        truth[sampler.dataset().sample(i)?.label as usize] += 1;
    }
    for _ in 0..epochs {
        sampler.reset_epoch();
        while let Some(batch) = sampler.next_batch()? {
            for &l in batch.labels.data() {
                bias.record(l as u32);
            }
        }
    }
    let total = bias.total() as f64;
    let truth_total: u64 = truth.iter().sum();
    let expected: Vec<f64> = truth
        .iter()
        .map(|&t| t as f64 / truth_total.max(1) as f64 * total)
        .collect();
    let chi_square = bias.chi_square(&expected);
    Ok(SamplerReport {
        bias,
        samples: total as u64,
        chi_square,
        dof: classes.saturating_sub(1),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampler::{SequentialSampler, ShuffleSampler};
    use crate::synthetic::SyntheticDataset;
    use std::sync::Arc;

    #[test]
    fn histogram_records() {
        let mut b = DatasetBias::new(3);
        for l in [0u32, 1, 1, 2, 2, 2] {
            b.record(l);
        }
        assert_eq!(b.histogram(), &[1, 2, 3]);
        assert_eq!(b.total(), 6);
        b.record(99); // out of range: ignored
        assert_eq!(b.total(), 6);
        assert!(b.chi_square_uniform() > 0.0);
        b.reset();
        assert_eq!(b.total(), 0);
    }

    #[test]
    fn chi_square_of_perfect_match_is_zero() {
        let mut b = DatasetBias::new(2);
        b.record(0);
        b.record(1);
        assert_eq!(b.chi_square(&[1.0, 1.0]), 0.0);
    }

    #[test]
    fn full_epoch_samplers_are_unbiased() {
        // Any sampler that visits each element exactly once per epoch has
        // chi-square exactly 0 against the dataset distribution.
        let d: Arc<dyn crate::Dataset> = Arc::new(SyntheticDataset::mnist_like(200, 4));
        let mut s = SequentialSampler::new(d.clone(), 32);
        let report = test_sampler(&mut s, 2).unwrap();
        assert_eq!(report.samples, 400);
        assert!(report.chi_square < 1e-9);
        assert!(report.passes(2.0));

        let mut s = ShuffleSampler::new(d, 32, 7);
        let report = test_sampler(&mut s, 1).unwrap();
        assert!(report.chi_square < 1e-9);
    }

    #[test]
    fn a_biased_sampler_is_caught() {
        /// A sampler that only ever returns sample 0.
        struct Stuck {
            d: Arc<dyn crate::Dataset>,
            remaining: usize,
        }
        impl DatasetSampler for Stuck {
            fn dataset(&self) -> &dyn crate::Dataset {
                self.d.as_ref()
            }
            fn batch_size(&self) -> usize {
                1
            }
            fn next_batch(&mut self) -> Result<Option<crate::Minibatch>> {
                if self.remaining == 0 {
                    return Ok(None);
                }
                self.remaining -= 1;
                Ok(Some(crate::dataset::assemble_minibatch(
                    self.d.as_ref(),
                    &[0],
                )?))
            }
            fn reset_epoch(&mut self) {
                self.remaining = 100;
            }
        }
        let d: Arc<dyn crate::Dataset> = Arc::new(SyntheticDataset::mnist_like(200, 4));
        let mut s = Stuck { d, remaining: 0 };
        let report = test_sampler(&mut s, 1).unwrap();
        assert!(
            !report.passes(3.0),
            "chi2 {} dof {}",
            report.chi_square,
            report.dof
        );
    }
}
