//! # deep500-data — datasets, codecs, containers, samplers
//!
//! The paper's dataset infrastructure, rebuilt as native substrates:
//!
//! * [`dataset`] — the `Dataset` trait, samples, and minibatch assembly,
//! * [`synthetic`] — deterministic synthetic datasets with the shapes and
//!   on-disk sizes of MNIST / Fashion-MNIST / CIFAR-10/100 / ImageNet (the
//!   paper downloads the real ones; our substitution keeps formats, sizes
//!   and learnability while remaining self-contained),
//! * [`codec`] — the **D5J** lossy image codec (8×8 DCT + quantization +
//!   zigzag RLE), standing in for JPEG, with two decoders: a straightforward
//!   scalar decoder ("PIL") and an optimized separable decoder
//!   ("libjpeg-turbo") — the decoder pair behind Table III,
//! * [`container`] — storage formats: raw binary (MNIST-style), a
//!   TFRecord-like chunked record file with a 10,000-image pseudo-shuffle
//!   buffer and parallel minibatch decoding, and an indexed POSIX-tar-style
//!   archive with true random access,
//! * [`io_model`] — a parametric storage-latency model (local disk vs
//!   parallel filesystem) supplying the I/O component of the paper's
//!   dataset-latency experiments (Fig. 8),
//! * [`sampler`] — `DatasetSampler` implementations: sequential, true
//!   shuffling, buffer-based pseudo-shuffling (TF-style), and sharded
//!   (distributed) sampling,
//! * [`bias`] — the `DatasetBias` metric (label histogram of sampled
//!   elements) and `test_sampler`.

pub mod bias;
pub mod codec;
pub mod container;
pub mod dataset;
pub mod io_model;
pub mod sampler;
pub mod synthetic;

pub use dataset::{Dataset, Minibatch, Sample};
pub use sampler::DatasetSampler;
