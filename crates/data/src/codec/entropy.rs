//! Entropy coding for D5J: zigzag scan + zero-run-length + varints.
//!
//! After quantization most high-frequency coefficients are zero; the
//! zigzag scan orders them so zeros cluster at the tail, and a
//! (run-of-zeros, value) code with LEB128/zigzag varints compresses them.
//! An explicit end-of-block marker skips trailing zeros entirely.

use deep500_tensor::{Error, Result};

/// Zigzag scan order of an 8×8 block (index into row-major coefficients).
pub const ZIGZAG: [usize; 64] = [
    0, 1, 8, 16, 9, 2, 3, 10, 17, 24, 32, 25, 18, 11, 4, 5, 12, 19, 26, 33, 40, 48, 41, 34, 27, 20,
    13, 6, 7, 14, 21, 28, 35, 42, 49, 56, 57, 50, 43, 36, 29, 22, 15, 23, 30, 37, 44, 51, 58, 59,
    52, 45, 38, 31, 39, 46, 53, 60, 61, 54, 47, 55, 62, 63,
];

/// Append an unsigned LEB128 varint.
pub fn write_u64(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// Read an unsigned LEB128 varint at `*pos`.
pub fn read_u64(buf: &[u8], pos: &mut usize) -> Result<u64> {
    let mut result = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = *buf
            .get(*pos)
            .ok_or_else(|| Error::Format("truncated varint".into()))?;
        *pos += 1;
        if shift >= 64 {
            return Err(Error::Format("varint overflow".into()));
        }
        result |= ((byte & 0x7F) as u64) << shift;
        if byte & 0x80 == 0 {
            return Ok(result);
        }
        shift += 7;
    }
}

fn zigzag_encode(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn zigzag_decode(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// End-of-block marker (as a zero-run length that cannot occur: 64).
const EOB: u64 = 64;

/// Encode quantized coefficients (a whole plane: multiple of 64) into
/// (run, value) codes per block.
pub fn encode_coefficients(quantized: &[i16]) -> Vec<u8> {
    debug_assert_eq!(quantized.len() % 64, 0);
    let mut out = Vec::with_capacity(quantized.len() / 4);
    for block in quantized.chunks_exact(64) {
        // Zigzag-ordered view.
        let mut zz = [0i16; 64];
        for (i, &src) in ZIGZAG.iter().enumerate() {
            zz[i] = block[src];
        }
        // Find last nonzero.
        let last = zz.iter().rposition(|&v| v != 0);
        let mut i = 0usize;
        if let Some(last) = last {
            while i <= last {
                let mut run = 0u64;
                while i <= last && zz[i] == 0 {
                    run += 1;
                    i += 1;
                }
                // i <= last here implies zz[i] != 0.
                write_u64(&mut out, run);
                write_u64(&mut out, zigzag_encode(zz[i] as i64));
                i += 1;
            }
        }
        write_u64(&mut out, EOB);
    }
    out
}

/// Decode (run, value) codes back into `expected` coefficients (a whole
/// plane in row-major order).
pub fn decode_coefficients(bytes: &[u8], expected: usize) -> Result<Vec<i16>> {
    debug_assert_eq!(expected % 64, 0);
    let mut out = vec![0i16; expected];
    let mut pos = 0usize;
    for block in out.chunks_exact_mut(64) {
        let mut zz = [0i16; 64];
        let mut i = 0usize;
        loop {
            let run = read_u64(bytes, &mut pos)?;
            if run == EOB {
                break;
            }
            i += run as usize;
            if i >= 64 {
                return Err(Error::Format(format!("zero run overruns block: {i}")));
            }
            let v = zigzag_decode(read_u64(bytes, &mut pos)?);
            if !(-32768..=32767).contains(&v) {
                return Err(Error::Format(format!("coefficient {v} out of i16 range")));
            }
            zz[i] = v as i16;
            i += 1;
        }
        for (k, &dst) in ZIGZAG.iter().enumerate() {
            block[dst] = zz[k];
        }
    }
    if pos != bytes.len() {
        return Err(Error::Format(format!(
            "trailing garbage: {} bytes",
            bytes.len() - pos
        )));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zigzag_table_is_a_permutation() {
        let mut seen = [false; 64];
        for &i in &ZIGZAG {
            assert!(!seen[i]);
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s));
        // First entries follow the JPEG zigzag.
        assert_eq!(&ZIGZAG[..6], &[0, 1, 8, 16, 9, 2]);
    }

    #[test]
    fn roundtrip_sparse_block() {
        let mut coeffs = vec![0i16; 64];
        coeffs[0] = 100;
        coeffs[1] = -5;
        coeffs[8] = 3;
        coeffs[63] = 1;
        let enc = encode_coefficients(&coeffs);
        let dec = decode_coefficients(&enc, 64).unwrap();
        assert_eq!(dec, coeffs);
    }

    #[test]
    fn roundtrip_all_zero_and_dense() {
        let zeros = vec![0i16; 128];
        let enc = encode_coefficients(&zeros);
        assert_eq!(enc.len(), 2, "EOB per block only");
        assert_eq!(decode_coefficients(&enc, 128).unwrap(), zeros);

        let dense: Vec<i16> = (0..64).map(|i| (i as i16) - 32).collect();
        let enc = encode_coefficients(&dense);
        assert_eq!(decode_coefficients(&enc, 64).unwrap(), dense);
    }

    #[test]
    fn sparse_blocks_compress() {
        let mut coeffs = vec![0i16; 64 * 16];
        for b in 0..16 {
            coeffs[b * 64] = 50; // DC only
        }
        let enc = encode_coefficients(&coeffs);
        assert!(enc.len() < 64, "16 DC-only blocks in {} bytes", enc.len());
    }

    #[test]
    fn malformed_input_rejected() {
        assert!(decode_coefficients(&[], 64).is_err());
        // Run that exceeds the block.
        let mut bad = Vec::new();
        write_u64(&mut bad, 63);
        write_u64(&mut bad, zigzag_encode(5));
        write_u64(&mut bad, 1); // another run past the end
        write_u64(&mut bad, zigzag_encode(1));
        assert!(decode_coefficients(&bad, 64).is_err());
        // Trailing garbage.
        let enc = encode_coefficients(&[0i16; 64]);
        let mut with_garbage = enc.clone();
        with_garbage.push(0);
        assert!(decode_coefficients(&with_garbage, 64).is_err());
    }
}
