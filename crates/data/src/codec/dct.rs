//! 8×8 forward and inverse discrete cosine transforms.
//!
//! The forward transform is shared; the two *inverse* transforms embody the
//! paper's PIL-vs-libjpeg-turbo decoder contrast:
//!
//! * [`idct_8x8_scalar`] evaluates the textbook 2-D IDCT sum directly,
//!   recomputing cosine terms per output pixel — O(64²) trig-heavy work per
//!   block, like a straightforward pure-Python/PIL path,
//! * [`idct_8x8_turbo`] applies two separable 1-D passes using a
//!   precomputed 8×8 coefficient table — O(2·8·64) multiply-adds, no trig,
//!   no allocation.
//!
//! Both are mathematically the same transform; outputs match to float
//! round-off, and the codec quantizes afterwards so decoded pixels are
//! bit-identical.

use std::f32::consts::PI;
use std::sync::OnceLock;

/// C(u) normalization factor of the DCT-II.
#[inline]
fn alpha(u: usize) -> f32 {
    if u == 0 {
        (1.0f32 / 8.0).sqrt()
    } else {
        (2.0f32 / 8.0).sqrt()
    }
}

/// Precomputed `basis[u][x] = alpha(u) * cos((2x+1) u pi / 16)`.
fn basis() -> &'static [[f32; 8]; 8] {
    static TABLE: OnceLock<[[f32; 8]; 8]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [[0.0f32; 8]; 8];
        for (u, row) in t.iter_mut().enumerate() {
            for (x, v) in row.iter_mut().enumerate() {
                *v = alpha(u) * ((2 * x + 1) as f32 * u as f32 * PI / 16.0).cos();
            }
        }
        t
    })
}

/// Forward 2-D DCT of an 8×8 spatial block (row-major) into `freq`.
pub fn fdct_8x8(block: &[f32; 64], freq: &mut [f32; 64]) {
    let b = basis();
    // Separable: rows then columns.
    let mut tmp = [0.0f32; 64];
    for y in 0..8 {
        for u in 0..8 {
            let mut acc = 0.0f32;
            for x in 0..8 {
                acc += block[y * 8 + x] * b[u][x];
            }
            tmp[y * 8 + u] = acc;
        }
    }
    for u in 0..8 {
        for v in 0..8 {
            let mut acc = 0.0f32;
            for y in 0..8 {
                acc += tmp[y * 8 + u] * b[v][y];
            }
            freq[v * 8 + u] = acc;
        }
    }
}

/// Textbook scalar 2-D IDCT: direct double sum with per-term cosines.
/// Deliberately the straightforward implementation (the "PIL" analogue).
pub fn idct_8x8_scalar(freq: &[f32; 64], block: &mut [f32; 64]) {
    for y in 0..8 {
        for x in 0..8 {
            let mut acc = 0.0f64;
            for v in 0..8 {
                for u in 0..8 {
                    let cu = if u == 0 {
                        (1.0f64 / 8.0).sqrt()
                    } else {
                        (2.0f64 / 8.0).sqrt()
                    };
                    let cv = if v == 0 {
                        (1.0f64 / 8.0).sqrt()
                    } else {
                        (2.0f64 / 8.0).sqrt()
                    };
                    acc += cu
                        * cv
                        * freq[v * 8 + u] as f64
                        * (((2 * x + 1) as f64 * u as f64 * std::f64::consts::PI) / 16.0).cos()
                        * (((2 * y + 1) as f64 * v as f64 * std::f64::consts::PI) / 16.0).cos();
                }
            }
            block[y * 8 + x] = acc as f32;
        }
    }
}

/// Optimized separable IDCT with the precomputed basis table (the
/// "libjpeg-turbo" analogue).
pub fn idct_8x8_turbo(freq: &[f32; 64], block: &mut [f32; 64]) {
    let b = basis();
    // Columns: tmp[y][u] = sum_v freq[v][u] * basis[v][y]
    let mut tmp = [0.0f32; 64];
    for u in 0..8 {
        for y in 0..8 {
            let mut acc = 0.0f32;
            for v in 0..8 {
                acc += freq[v * 8 + u] * b[v][y];
            }
            tmp[y * 8 + u] = acc;
        }
    }
    // Rows: block[y][x] = sum_u tmp[y][u] * basis[u][x]
    for y in 0..8 {
        for x in 0..8 {
            let mut acc = 0.0f32;
            for u in 0..8 {
                acc += tmp[y * 8 + u] * b[u][x];
            }
            block[y * 8 + x] = acc;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_block(seed: u32) -> [f32; 64] {
        let mut b = [0.0f32; 64];
        for (i, v) in b.iter_mut().enumerate() {
            *v = ((i as f32 + seed as f32) * 0.7).sin() * 100.0;
        }
        b
    }

    #[test]
    fn fdct_idct_roundtrip() {
        let block = sample_block(0);
        let mut freq = [0.0f32; 64];
        let mut back = [0.0f32; 64];
        fdct_8x8(&block, &mut freq);
        idct_8x8_turbo(&freq, &mut back);
        for i in 0..64 {
            assert!((block[i] - back[i]).abs() < 1e-2, "i={i}");
        }
    }

    #[test]
    fn scalar_and_turbo_agree() {
        for seed in 0..5 {
            let block = sample_block(seed);
            let mut freq = [0.0f32; 64];
            fdct_8x8(&block, &mut freq);
            let mut a = [0.0f32; 64];
            let mut b = [0.0f32; 64];
            idct_8x8_scalar(&freq, &mut a);
            idct_8x8_turbo(&freq, &mut b);
            for i in 0..64 {
                assert!((a[i] - b[i]).abs() < 1e-2, "i={i}: {} vs {}", a[i], b[i]);
            }
        }
    }

    #[test]
    fn dc_of_constant_block() {
        // A constant block has all energy in the DC coefficient.
        let block = [42.0f32; 64];
        let mut freq = [0.0f32; 64];
        fdct_8x8(&block, &mut freq);
        assert!((freq[0] - 42.0 * 8.0).abs() < 1e-3, "DC = N * value");
        for (i, &f) in freq.iter().enumerate().skip(1) {
            assert!(f.abs() < 1e-3, "AC[{i}] = {f}");
        }
    }

    #[test]
    fn parseval_energy_preserved() {
        let block = sample_block(3);
        let mut freq = [0.0f32; 64];
        fdct_8x8(&block, &mut freq);
        let e_spatial: f32 = block.iter().map(|v| v * v).sum();
        let e_freq: f32 = freq.iter().map(|v| v * v).sum();
        assert!(
            (e_spatial - e_freq).abs() / e_spatial < 1e-4,
            "{e_spatial} vs {e_freq}"
        );
    }
}
