//! Quantization tables (JPEG Annex K luminance table, quality-scaled).

/// The standard JPEG luminance quantization table (zigzag-free, row-major).
pub const BASE_TABLE: [u16; 64] = [
    16, 11, 10, 16, 24, 40, 51, 61, 12, 12, 14, 19, 26, 58, 60, 55, 14, 13, 16, 24, 40, 57, 69, 56,
    14, 17, 22, 29, 51, 87, 80, 62, 18, 22, 37, 56, 68, 109, 103, 77, 24, 35, 55, 64, 81, 104, 113,
    92, 49, 64, 78, 87, 103, 121, 120, 101, 72, 92, 95, 98, 112, 100, 103, 99,
];

/// Scale the base table by `quality` in `[1, 100]` using the IJG mapping:
/// `q < 50 → 5000/q`, `q >= 50 → 200 - 2q` (percent).
pub fn scaled_table(quality: u8) -> [f32; 64] {
    let q = quality.clamp(1, 100) as f32;
    let scale = if q < 50.0 {
        5000.0 / q
    } else {
        200.0 - 2.0 * q
    };
    let mut t = [0.0f32; 64];
    for i in 0..64 {
        let v = (BASE_TABLE[i] as f32 * scale / 100.0).round();
        t[i] = v.clamp(1.0, 255.0);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quality_50_is_the_base_table() {
        let t = scaled_table(50);
        for i in 0..64 {
            assert_eq!(t[i], BASE_TABLE[i] as f32);
        }
    }

    #[test]
    fn higher_quality_means_finer_quantization() {
        let q90 = scaled_table(90);
        let q10 = scaled_table(10);
        assert!(q90[10] < q10[10]);
        // Quality 100 clamps to all-ones minimum.
        let q100 = scaled_table(100);
        assert!(q100.iter().all(|&v| v >= 1.0));
        assert_eq!(q100[0], 1.0);
    }

    #[test]
    fn table_entries_bounded() {
        for q in [1u8, 25, 50, 75, 100] {
            for &v in scaled_table(q).iter() {
                assert!((1.0..=255.0).contains(&v));
            }
        }
    }
}
