//! The **D5J** lossy image codec — the reproduction's JPEG stand-in.
//!
//! ImageNet experiments in the paper hinge on JPEG decode cost (Table III
//! compares PIL, libjpeg-turbo, and TensorFlow's native decoder). D5J is a
//! real transform codec with the same architecture as baseline JPEG:
//! 8×8 block DCT → quantization → zigzag scan → zero-run-length + varint
//! entropy coding — so decode cost is genuine computational work, not a
//! sleep. Two decoders are provided:
//!
//! * [`decode_scalar`] — a straightforward floating-point implementation
//!   that recomputes the 2-D IDCT basis per block (the "PIL" analogue),
//! * [`decode_turbo`] — an optimized decoder using precomputed separable
//!   1-D IDCT passes with no per-block allocation (the "libjpeg-turbo"
//!   analogue), ~3–5× faster at identical output.
//!
//! Both produce **bit-identical** pixels, so pipeline comparisons isolate
//! decode *speed*, exactly as in the paper.

pub mod dct;
pub mod entropy;
pub mod quant;

use deep500_tensor::{Error, Result};
use entropy::{read_u64, write_u64};

/// Magic bytes of a D5J stream.
pub const MAGIC: &[u8; 4] = b"D5J1";

/// Decoded image: `c` planes of `h x w` bytes (plane-major, like NCHW).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RawImage {
    pub c: usize,
    pub h: usize,
    pub w: usize,
    pub pixels: Vec<u8>,
}

impl RawImage {
    /// Construct; `pixels.len()` must equal `c*h*w`.
    pub fn new(c: usize, h: usize, w: usize, pixels: Vec<u8>) -> Result<Self> {
        if pixels.len() != c * h * w {
            return Err(Error::Invalid(format!(
                "pixel buffer {} vs {c}x{h}x{w}",
                pixels.len()
            )));
        }
        Ok(RawImage { c, h, w, pixels })
    }

    /// One channel plane.
    pub fn plane(&self, ch: usize) -> &[u8] {
        &self.pixels[ch * self.h * self.w..(ch + 1) * self.h * self.w]
    }
}

/// Encode an image at `quality` (1–100; higher = better).
pub fn encode(img: &RawImage, quality: u8) -> Result<Vec<u8>> {
    if !(1..=100).contains(&quality) {
        return Err(Error::Invalid(format!("quality {quality} out of [1,100]")));
    }
    let qtable = quant::scaled_table(quality);
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    write_u64(&mut out, img.c as u64);
    write_u64(&mut out, img.h as u64);
    write_u64(&mut out, img.w as u64);
    out.push(quality);
    for ch in 0..img.c {
        let coeffs = encode_plane(img.plane(ch), img.h, img.w, &qtable);
        write_u64(&mut out, coeffs.len() as u64);
        out.extend_from_slice(&coeffs);
    }
    Ok(out)
}

/// Blocks per plane dimension (ceil to 8).
fn blocks(h: usize, w: usize) -> (usize, usize) {
    (h.div_ceil(8), w.div_ceil(8))
}

fn encode_plane(plane: &[u8], h: usize, w: usize, qtable: &[f32; 64]) -> Vec<u8> {
    let (bh, bw) = blocks(h, w);
    let mut quantized: Vec<i16> = Vec::with_capacity(bh * bw * 64);
    let mut block = [0.0f32; 64];
    let mut freq = [0.0f32; 64];
    for by in 0..bh {
        for bx in 0..bw {
            // Gather with edge replication, centered at 0.
            for y in 0..8 {
                for x in 0..8 {
                    let sy = (by * 8 + y).min(h - 1);
                    let sx = (bx * 8 + x).min(w - 1);
                    block[y * 8 + x] = plane[sy * w + sx] as f32 - 128.0;
                }
            }
            dct::fdct_8x8(&block, &mut freq);
            for i in 0..64 {
                quantized.push((freq[i] / qtable[i]).round() as i16);
            }
        }
    }
    entropy::encode_coefficients(&quantized)
}

/// Header of a D5J stream: `(c, h, w, quality, plane payloads)`.
struct Header<'a> {
    c: usize,
    h: usize,
    w: usize,
    quality: u8,
    planes: Vec<&'a [u8]>,
}

fn parse(bytes: &[u8]) -> Result<Header<'_>> {
    if bytes.len() < 4 || &bytes[..4] != MAGIC {
        return Err(Error::Format("missing D5J magic".into()));
    }
    let mut pos = 4usize;
    let c = read_u64(bytes, &mut pos)? as usize;
    let h = read_u64(bytes, &mut pos)? as usize;
    let w = read_u64(bytes, &mut pos)? as usize;
    if c == 0 || h == 0 || w == 0 {
        return Err(Error::Format("degenerate image dimensions".into()));
    }
    let quality = *bytes
        .get(pos)
        .ok_or_else(|| Error::Format("truncated quality byte".into()))?;
    pos += 1;
    let mut planes = Vec::with_capacity(c);
    for _ in 0..c {
        let len = read_u64(bytes, &mut pos)? as usize;
        let end = pos
            .checked_add(len)
            .filter(|&e| e <= bytes.len())
            .ok_or_else(|| Error::Format("truncated plane payload".into()))?;
        planes.push(&bytes[pos..end]);
        pos = end;
    }
    Ok(Header {
        c,
        h,
        w,
        quality,
        planes,
    })
}

/// Decode with the straightforward scalar IDCT (the "PIL" analogue).
pub fn decode_scalar(bytes: &[u8]) -> Result<RawImage> {
    decode_with(bytes, dct::idct_8x8_scalar)
}

/// Decode with the optimized separable IDCT (the "libjpeg-turbo" analogue).
pub fn decode_turbo(bytes: &[u8]) -> Result<RawImage> {
    decode_with(bytes, dct::idct_8x8_turbo)
}

fn decode_with(bytes: &[u8], idct: fn(&[f32; 64], &mut [f32; 64])) -> Result<RawImage> {
    let hd = parse(bytes)?;
    let qtable = quant::scaled_table(hd.quality);
    let (bh, bw) = blocks(hd.h, hd.w);
    let mut pixels = vec![0u8; hd.c * hd.h * hd.w];
    for (ch, payload) in hd.planes.iter().enumerate() {
        let quantized = entropy::decode_coefficients(payload, bh * bw * 64)?;
        let plane = &mut pixels[ch * hd.h * hd.w..(ch + 1) * hd.h * hd.w];
        let mut freq = [0.0f32; 64];
        let mut block = [0.0f32; 64];
        for by in 0..bh {
            for bx in 0..bw {
                let base = (by * bw + bx) * 64;
                for i in 0..64 {
                    freq[i] = quantized[base + i] as f32 * qtable[i];
                }
                idct(&freq, &mut block);
                for y in 0..8 {
                    let sy = by * 8 + y;
                    if sy >= hd.h {
                        break;
                    }
                    for x in 0..8 {
                        let sx = bx * 8 + x;
                        if sx >= hd.w {
                            break;
                        }
                        plane[sy * hd.w + sx] =
                            (block[y * 8 + x] + 128.0).round().clamp(0.0, 255.0) as u8;
                    }
                }
            }
        }
    }
    RawImage::new(hd.c, hd.h, hd.w, pixels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use deep500_tensor::Xoshiro256StarStar;

    fn test_image(c: usize, h: usize, w: usize, seed: u64) -> RawImage {
        // Smooth gradient + mild noise: compresses well, exposes DCT bugs.
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        let pixels = (0..c * h * w)
            .map(|i| {
                let y = (i / w) % h;
                let x = i % w;
                let v = 100.0
                    + 50.0 * ((x as f32) / 8.0).sin()
                    + 30.0 * ((y as f32) / 5.0).cos()
                    + rng.uniform(-5.0, 5.0);
                v.clamp(0.0, 255.0) as u8
            })
            .collect();
        RawImage::new(c, h, w, pixels).unwrap()
    }

    #[test]
    fn roundtrip_error_is_bounded() {
        let img = test_image(1, 32, 32, 1);
        let bytes = encode(&img, 90).unwrap();
        let back = decode_turbo(&bytes).unwrap();
        assert_eq!((back.c, back.h, back.w), (1, 32, 32));
        let max_err = img
            .pixels
            .iter()
            .zip(&back.pixels)
            .map(|(&a, &b)| (a as i32 - b as i32).abs())
            .max()
            .unwrap();
        assert!(max_err <= 12, "max pixel error {max_err} at q90");
    }

    #[test]
    fn decoders_are_bit_identical() {
        for seed in 0..3 {
            let img = test_image(3, 24, 40, seed);
            let bytes = encode(&img, 75).unwrap();
            let a = decode_scalar(&bytes).unwrap();
            let b = decode_turbo(&bytes).unwrap();
            assert_eq!(a, b, "decoders must agree bit-for-bit");
        }
    }

    #[test]
    fn lower_quality_is_smaller() {
        let img = test_image(1, 64, 64, 2);
        let hi = encode(&img, 95).unwrap();
        let lo = encode(&img, 20).unwrap();
        assert!(lo.len() < hi.len(), "{} !< {}", lo.len(), hi.len());
    }

    #[test]
    fn compresses_below_raw() {
        let img = test_image(3, 64, 64, 3);
        let bytes = encode(&img, 75).unwrap();
        assert!(
            bytes.len() < img.pixels.len() / 2,
            "compressed {} vs raw {}",
            bytes.len(),
            img.pixels.len()
        );
    }

    #[test]
    fn non_multiple_of_8_dimensions() {
        let img = test_image(1, 13, 21, 4);
        let bytes = encode(&img, 80).unwrap();
        let back = decode_turbo(&bytes).unwrap();
        assert_eq!((back.h, back.w), (13, 21));
    }

    #[test]
    fn malformed_streams_rejected() {
        assert!(decode_turbo(b"NOPE").is_err());
        assert!(decode_turbo(&[]).is_err());
        let img = test_image(1, 16, 16, 5);
        let bytes = encode(&img, 80).unwrap();
        assert!(decode_turbo(&bytes[..bytes.len() / 2]).is_err());
        assert!(encode(&img, 0).is_err());
        assert!(encode(&img, 101).is_err());
    }

    #[test]
    fn raw_image_validation() {
        assert!(RawImage::new(1, 2, 2, vec![0; 3]).is_err());
        let img = RawImage::new(2, 2, 2, (0..8).collect()).unwrap();
        assert_eq!(img.plane(1), &[4, 5, 6, 7]);
    }
}
