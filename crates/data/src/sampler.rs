//! Dataset samplers (Level-2 `DatasetSampler` interface).
//!
//! A sampler turns a [`Dataset`] into a stream of minibatches. The paper's
//! interface "provides minibatches by sampling a given dataset, and can be
//! extended to test different sampling schemes"; we provide:
//!
//! * [`SequentialSampler`] — in-order batches,
//! * [`ShuffleSampler`] — a fresh full permutation every epoch (true
//!   shuffling),
//! * [`BufferShuffleSampler`] — TF-style pseudo-shuffling through a
//!   bounded buffer (reduced stochasticity, cheap sequential I/O),
//! * [`ShardedSampler`] — the Level-3 `DistributedSampler`: rank `r` of
//!   `world` sees every `world`-th index, preserving the distributed-SGD
//!   semantics the paper keeps when forking processes.

use crate::dataset::{assemble_minibatch, Dataset, Minibatch};
use deep500_tensor::{Result, Xoshiro256StarStar};
use std::sync::Arc;

/// A source of minibatches over a dataset.
pub trait DatasetSampler: Send {
    /// The sampled dataset.
    fn dataset(&self) -> &dyn Dataset;

    /// Configured batch size.
    fn batch_size(&self) -> usize;

    /// Next minibatch, or `None` when the epoch is exhausted.
    fn next_batch(&mut self) -> Result<Option<Minibatch>>;

    /// Start a new epoch (reshuffle where applicable).
    fn reset_epoch(&mut self);

    /// Number of (full or partial) batches per epoch.
    fn batches_per_epoch(&self) -> usize {
        self.dataset().len().div_ceil(self.batch_size().max(1))
    }
}

/// In-order batches.
pub struct SequentialSampler {
    dataset: Arc<dyn Dataset>,
    batch: usize,
    cursor: usize,
}

impl SequentialSampler {
    pub fn new(dataset: Arc<dyn Dataset>, batch: usize) -> Self {
        SequentialSampler {
            dataset,
            batch: batch.max(1),
            cursor: 0,
        }
    }
}

impl DatasetSampler for SequentialSampler {
    fn dataset(&self) -> &dyn Dataset {
        self.dataset.as_ref()
    }
    fn batch_size(&self) -> usize {
        self.batch
    }
    fn next_batch(&mut self) -> Result<Option<Minibatch>> {
        if self.cursor >= self.dataset.len() {
            return Ok(None);
        }
        let end = (self.cursor + self.batch).min(self.dataset.len());
        let indices: Vec<usize> = (self.cursor..end).collect();
        self.cursor = end;
        Ok(Some(assemble_minibatch(self.dataset.as_ref(), &indices)?))
    }
    fn reset_epoch(&mut self) {
        self.cursor = 0;
    }
}

/// True shuffling: a fresh permutation of the whole dataset per epoch.
pub struct ShuffleSampler {
    dataset: Arc<dyn Dataset>,
    batch: usize,
    order: Vec<usize>,
    cursor: usize,
    rng: Xoshiro256StarStar,
}

impl ShuffleSampler {
    pub fn new(dataset: Arc<dyn Dataset>, batch: usize, seed: u64) -> Self {
        let mut s = ShuffleSampler {
            order: (0..dataset.len()).collect(),
            dataset,
            batch: batch.max(1),
            cursor: 0,
            rng: Xoshiro256StarStar::seed_from_u64(seed),
        };
        s.rng.shuffle(&mut s.order);
        s
    }

    /// The current epoch's permutation (test hook).
    pub fn order(&self) -> &[usize] {
        &self.order
    }
}

impl DatasetSampler for ShuffleSampler {
    fn dataset(&self) -> &dyn Dataset {
        self.dataset.as_ref()
    }
    fn batch_size(&self) -> usize {
        self.batch
    }
    fn next_batch(&mut self) -> Result<Option<Minibatch>> {
        if self.cursor >= self.order.len() {
            return Ok(None);
        }
        let end = (self.cursor + self.batch).min(self.order.len());
        let indices = &self.order[self.cursor..end];
        let mb = assemble_minibatch(self.dataset.as_ref(), indices)?;
        self.cursor = end;
        Ok(Some(mb))
    }
    fn reset_epoch(&mut self) {
        self.cursor = 0;
        self.rng.shuffle(&mut self.order);
    }
}

/// TF-style pseudo-shuffling: indices stream sequentially into a bounded
/// buffer; batches draw uniformly from the buffer. Cheap for sequential
/// storage, but "reduces stochasticity" (paper §V-D) — early batches can
/// only contain early samples.
pub struct BufferShuffleSampler {
    dataset: Arc<dyn Dataset>,
    batch: usize,
    capacity: usize,
    buffer: Vec<usize>,
    next_index: usize,
    rng: Xoshiro256StarStar,
    seed: u64,
    epoch: u64,
}

impl BufferShuffleSampler {
    pub fn new(dataset: Arc<dyn Dataset>, batch: usize, capacity: usize, seed: u64) -> Self {
        BufferShuffleSampler {
            dataset,
            batch: batch.max(1),
            capacity: capacity.max(1),
            buffer: Vec::new(),
            next_index: 0,
            rng: Xoshiro256StarStar::seed_from_u64(seed),
            seed,
            epoch: 0,
        }
    }

    fn refill(&mut self) {
        while self.buffer.len() < self.capacity && self.next_index < self.dataset.len() {
            self.buffer.push(self.next_index);
            self.next_index += 1;
        }
    }
}

impl DatasetSampler for BufferShuffleSampler {
    fn dataset(&self) -> &dyn Dataset {
        self.dataset.as_ref()
    }
    fn batch_size(&self) -> usize {
        self.batch
    }
    fn next_batch(&mut self) -> Result<Option<Minibatch>> {
        self.refill();
        if self.buffer.is_empty() {
            return Ok(None);
        }
        let take = self.batch.min(self.buffer.len());
        let mut indices = Vec::with_capacity(take);
        for _ in 0..take {
            let j = self.rng.next_below(self.buffer.len());
            indices.push(self.buffer.swap_remove(j));
        }
        Ok(Some(assemble_minibatch(self.dataset.as_ref(), &indices)?))
    }
    fn reset_epoch(&mut self) {
        self.epoch += 1;
        self.buffer.clear();
        self.next_index = 0;
        self.rng = Xoshiro256StarStar::seed_from_u64(self.seed ^ self.epoch);
    }
}

/// The Level-3 distributed sampler: rank `rank` of `world` draws the
/// subsequence `rank, rank+world, rank+2·world, …` of an (optionally
/// shuffled) global permutation, so the union over ranks is exactly one
/// epoch with no overlap.
pub struct ShardedSampler {
    dataset: Arc<dyn Dataset>,
    batch: usize,
    rank: usize,
    world: usize,
    order: Vec<usize>,
    cursor: usize,
    rng: Xoshiro256StarStar,
    shuffle: bool,
}

impl ShardedSampler {
    /// Sharded sampler; all ranks must use the same `seed` so their global
    /// permutations agree (the paper's "proper distributed DL semantics
    /// w.r.t. dataset sampling").
    pub fn new(
        dataset: Arc<dyn Dataset>,
        batch: usize,
        rank: usize,
        world: usize,
        shuffle: bool,
        seed: u64,
    ) -> Self {
        assert!(rank < world, "rank {rank} out of world {world}");
        let mut s = ShardedSampler {
            order: (0..dataset.len()).collect(),
            dataset,
            batch: batch.max(1),
            rank,
            world,
            cursor: 0,
            rng: Xoshiro256StarStar::seed_from_u64(seed),
            shuffle,
        };
        if s.shuffle {
            s.rng.shuffle(&mut s.order);
        }
        s
    }

    /// Indices owned by this rank in the current epoch.
    pub fn shard_indices(&self) -> Vec<usize> {
        self.order
            .iter()
            .skip(self.rank)
            .step_by(self.world)
            .copied()
            .collect()
    }
}

impl DatasetSampler for ShardedSampler {
    fn dataset(&self) -> &dyn Dataset {
        self.dataset.as_ref()
    }
    fn batch_size(&self) -> usize {
        self.batch
    }
    fn next_batch(&mut self) -> Result<Option<Minibatch>> {
        let shard = self.shard_indices();
        if self.cursor >= shard.len() {
            return Ok(None);
        }
        let end = (self.cursor + self.batch).min(shard.len());
        let indices = &shard[self.cursor..end];
        let mb = assemble_minibatch(self.dataset.as_ref(), indices)?;
        self.cursor = end;
        Ok(Some(mb))
    }
    fn reset_epoch(&mut self) {
        self.cursor = 0;
        if self.shuffle {
            self.rng.shuffle(&mut self.order);
        }
    }
    fn batches_per_epoch(&self) -> usize {
        let shard = self.dataset.len().div_ceil(self.world);
        shard.div_ceil(self.batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::SyntheticDataset;

    fn ds(n: usize) -> Arc<dyn Dataset> {
        Arc::new(SyntheticDataset::mnist_like(n, 1))
    }

    fn drain(s: &mut dyn DatasetSampler) -> Vec<Minibatch> {
        let mut out = Vec::new();
        while let Some(b) = s.next_batch().unwrap() {
            out.push(b);
        }
        out
    }

    #[test]
    fn sequential_covers_epoch_in_order() {
        let mut s = SequentialSampler::new(ds(10), 4);
        let batches = drain(&mut s);
        assert_eq!(batches.len(), 3);
        assert_eq!(batches[0].len(), 4);
        assert_eq!(batches[2].len(), 2); // partial tail
        assert_eq!(s.batches_per_epoch(), 3);
        s.reset_epoch();
        assert_eq!(drain(&mut s).len(), 3);
    }

    #[test]
    fn shuffle_is_a_permutation_and_reshuffles() {
        let mut s = ShuffleSampler::new(ds(20), 7, 3);
        let first_order = s.order().to_vec();
        let total: usize = drain(&mut s).iter().map(|b| b.len()).sum();
        assert_eq!(total, 20);
        let mut sorted = first_order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
        s.reset_epoch();
        assert_ne!(s.order(), &first_order[..], "new epoch, new permutation");
    }

    #[test]
    fn buffer_shuffle_reduces_stochasticity() {
        // With capacity 4, the first batch can only contain indices < 4+batch.
        let d = ds(100);
        let mut s = BufferShuffleSampler::new(d, 4, 4, 1);
        let b = s.next_batch().unwrap().unwrap();
        assert_eq!(b.len(), 4);
        // Epoch covers everything exactly once.
        s.reset_epoch();
        let total: usize = drain(&mut s).iter().map(|b| b.len()).sum();
        assert_eq!(total, 100);
    }

    #[test]
    fn sharded_ranks_partition_the_epoch() {
        let d = ds(23);
        let world = 4;
        let mut seen = Vec::new();
        for rank in 0..world {
            let s = ShardedSampler::new(d.clone(), 5, rank, world, true, 99);
            seen.extend(s.shard_indices());
        }
        seen.sort_unstable();
        assert_eq!(seen, (0..23).collect::<Vec<_>>(), "no overlap, no gaps");
    }

    #[test]
    fn sharded_batches_drain() {
        let d = ds(16);
        let mut s = ShardedSampler::new(d, 3, 1, 4, false, 0);
        let batches = drain(&mut s);
        let total: usize = batches.iter().map(|b| b.len()).sum();
        assert_eq!(total, 4); // 16/4 per rank
        assert_eq!(s.batches_per_epoch(), 2);
        s.reset_epoch();
        assert_eq!(drain(&mut s).len(), batches.len());
    }

    #[test]
    #[should_panic(expected = "out of world")]
    fn sharded_rank_bound() {
        ShardedSampler::new(ds(4), 1, 4, 4, false, 0);
    }
}
