//! Storage container formats.
//!
//! The paper's Fig. 8 / Table III compare three ways of storing image
//! datasets on disk:
//!
//! * raw binary files (MNIST/CIFAR style) — [`binfile`],
//! * a TFRecord-like chunked record container with pseudo-shuffling and a
//!   parallel decode pipeline — [`recordfile`],
//! * a POSIX-tar-style archive with a precomputed index for true random
//!   access (the paper's `IndexedTarDataset`) — [`indexed_tar`].
//!
//! All three write and read *real files*; the simulated part is only the
//! storage latency charged to a [`StorageClock`](crate::io_model::StorageClock).

pub mod binfile;
pub mod indexed_tar;
pub mod recordfile;
