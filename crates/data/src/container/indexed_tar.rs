//! Indexed POSIX-tar-style archive with true random access.
//!
//! The paper's `IndexedTarDataset` packs ImageNet JPEGs into a POSIX tar
//! with "precomputed indexing" so single images can be fetched at random —
//! at the price of a filesystem seek per access and "true random image
//! selection" (contrast with the record pipeline's pseudo-shuffling).
//!
//! We write genuine tar-compatible 512-byte headers (name, size, checksum)
//! followed by payloads padded to 512-byte blocks, plus a sidecar index
//! mapping sample id → (offset, size, label).

use crate::codec;
use crate::io_model::{StorageClock, StorageModel};
use deep500_tensor::{Error, Result};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Index entry for one archived sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IndexEntry {
    pub offset: u64,
    pub size: u64,
    pub label: u32,
}

fn octal(buf: &mut [u8], value: u64) {
    // Right-justified octal with trailing NUL, tar-style.
    let s = format!("{value:0width$o}\0", width = buf.len() - 1);
    buf.copy_from_slice(s.as_bytes());
}

fn tar_header(name: &str, size: u64) -> [u8; 512] {
    let mut h = [0u8; 512];
    let name_bytes = name.as_bytes();
    h[..name_bytes.len().min(100)].copy_from_slice(&name_bytes[..name_bytes.len().min(100)]);
    octal(&mut h[100..108], 0o644); // mode
    octal(&mut h[108..116], 0); // uid
    octal(&mut h[116..124], 0); // gid
    octal(&mut h[124..136], size);
    octal(&mut h[136..148], 0); // mtime
    h[156] = b'0'; // typeflag: regular file
    h[257..262].copy_from_slice(b"ustar");
    h[263..265].copy_from_slice(b"00");
    // Checksum: spaces while computing.
    for b in &mut h[148..156] {
        *b = b' ';
    }
    let sum: u64 = h.iter().map(|&b| b as u64).sum();
    let s = format!("{sum:06o}\0 ");
    h[148..156].copy_from_slice(s.as_bytes());
    h
}

/// Write an indexed tar of D5J-encoded images; returns the index.
pub fn write_indexed_tar(
    path: &Path,
    samples: &[(codec::RawImage, u32)],
    quality: u8,
) -> Result<Vec<IndexEntry>> {
    let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
    let mut index = Vec::with_capacity(samples.len());
    let mut offset = 0u64;
    for (i, (img, label)) in samples.iter().enumerate() {
        let payload = codec::encode(img, quality)?;
        let header = tar_header(&format!("img{i:08}.d5j"), payload.len() as u64);
        f.write_all(&header)?;
        offset += 512;
        index.push(IndexEntry {
            offset,
            size: payload.len() as u64,
            label: *label,
        });
        f.write_all(&payload)?;
        let pad = (512 - payload.len() % 512) % 512;
        f.write_all(&vec![0u8; pad])?;
        offset += (payload.len() + pad) as u64;
    }
    // Two zero blocks terminate a tar archive.
    f.write_all(&[0u8; 1024])?;
    f.flush()?;

    // Sidecar index: id -> offset,size,label.
    let mut idx = std::io::BufWriter::new(std::fs::File::create(index_path(path))?);
    idx.write_all(&(index.len() as u64).to_le_bytes())?;
    for e in &index {
        idx.write_all(&e.offset.to_le_bytes())?;
        idx.write_all(&e.size.to_le_bytes())?;
        idx.write_all(&e.label.to_le_bytes())?;
    }
    idx.flush()?;
    Ok(index)
}

fn index_path(tar: &Path) -> PathBuf {
    let mut p = tar.as_os_str().to_owned();
    p.push(".idx");
    PathBuf::from(p)
}

/// Which decoder the reader uses — Table III's PIL vs libjpeg-turbo axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decoder {
    /// Straightforward scalar decode (the "PIL" analogue).
    Scalar,
    /// Optimized decode (the "libjpeg-turbo" analogue).
    Turbo,
}

/// Random-access reader over an indexed tar.
pub struct IndexedTarReader {
    file: std::fs::File,
    index: Vec<IndexEntry>,
    model: StorageModel,
    clock: Arc<StorageClock>,
    /// Last read end-offset, to distinguish sequential from random access.
    last_end: u64,
    pub decoder: Decoder,
}

impl IndexedTarReader {
    /// Open an archive and its sidecar index.
    pub fn open(
        path: &Path,
        decoder: Decoder,
        model: StorageModel,
        clock: Arc<StorageClock>,
    ) -> Result<Self> {
        let mut idx_file = std::fs::File::open(index_path(path))?;
        let mut bytes = Vec::new();
        idx_file.read_to_end(&mut bytes)?;
        if bytes.len() < 8 {
            return Err(Error::Format("truncated tar index".into()));
        }
        let count = u64::from_le_bytes(bytes[..8].try_into().unwrap()) as usize;
        if bytes.len() != 8 + count * 20 {
            return Err(Error::Format("tar index size mismatch".into()));
        }
        let mut index = Vec::with_capacity(count);
        for i in 0..count {
            let off = 8 + i * 20;
            index.push(IndexEntry {
                offset: u64::from_le_bytes(bytes[off..off + 8].try_into().unwrap()),
                size: u64::from_le_bytes(bytes[off + 8..off + 16].try_into().unwrap()),
                label: u32::from_le_bytes(bytes[off + 16..off + 20].try_into().unwrap()),
            });
        }
        clock.charge(model.open_latency_s * 2.0); // tar + index
        Ok(IndexedTarReader {
            file: std::fs::File::open(path)?,
            index,
            model,
            clock,
            last_end: u64::MAX,
            decoder,
        })
    }

    /// Number of archived samples.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether the archive is empty.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Read and decode sample `idx`. Sequential access (the next sample in
    /// file order) streams; anything else pays a seek — reproducing the
    /// Table III sequential-vs-shuffled gap.
    pub fn read_sample(&mut self, idx: usize) -> Result<(codec::RawImage, u32)> {
        let e = *self
            .index
            .get(idx)
            .ok_or_else(|| Error::NotFound(format!("tar sample {idx}")))?;
        // Charge modeled I/O. A header read precedes the payload; when
        // jumping, charge a seek.
        let sequential = e.offset == self.last_end;
        if sequential {
            self.clock
                .charge(self.model.stream_cost(e.size as usize + 512));
        } else {
            self.clock
                .charge(self.model.random_access_cost(e.size as usize + 512));
        }
        self.last_end = e.offset + e.size.div_ceil(512) * 512;

        self.file.seek(SeekFrom::Start(e.offset))?;
        let mut payload = vec![0u8; e.size as usize];
        self.file.read_exact(&mut payload)?;
        let img = match self.decoder {
            Decoder::Scalar => codec::decode_scalar(&payload)?,
            Decoder::Turbo => codec::decode_turbo(&payload)?,
        };
        Ok((img, e.label))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::SyntheticDataset;

    fn make_tar(n: usize, name: &str) -> std::path::PathBuf {
        let src = SyntheticDataset::cifar10_like(n, 9);
        let samples: Vec<(codec::RawImage, u32)> = (0..n)
            .map(|i| {
                let (pix, label) = src.sample_u8(i);
                (codec::RawImage::new(3, 32, 32, pix).unwrap(), label)
            })
            .collect();
        let dir = std::env::temp_dir().join("d5-tar-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        write_indexed_tar(&path, &samples, 80).unwrap();
        path
    }

    fn cleanup(path: &Path) {
        std::fs::remove_file(path).ok();
        std::fs::remove_file(index_path(path)).ok();
    }

    #[test]
    fn random_access_decodes_correct_samples() {
        let path = make_tar(10, "rand.tar");
        let clock = Arc::new(StorageClock::new());
        let mut r = IndexedTarReader::open(
            &path,
            Decoder::Turbo,
            StorageModel::local_ssd(),
            clock.clone(),
        )
        .unwrap();
        assert_eq!(r.len(), 10);
        let src = SyntheticDataset::cifar10_like(10, 9);
        for idx in [7usize, 0, 3] {
            let (img, label) = r.read_sample(idx).unwrap();
            assert_eq!((img.c, img.h, img.w), (3, 32, 32));
            assert_eq!(label, src.label_of(idx));
        }
        assert!(r.read_sample(10).is_err());
        assert!(clock.elapsed() > 0.0);
        cleanup(&path);
    }

    #[test]
    fn scalar_and_turbo_decode_identically() {
        let path = make_tar(4, "dec.tar");
        let clock = Arc::new(StorageClock::new());
        let mut a = IndexedTarReader::open(
            &path,
            Decoder::Scalar,
            StorageModel::local_ssd(),
            clock.clone(),
        )
        .unwrap();
        let mut b = IndexedTarReader::open(&path, Decoder::Turbo, StorageModel::local_ssd(), clock)
            .unwrap();
        for i in 0..4 {
            assert_eq!(a.read_sample(i).unwrap(), b.read_sample(i).unwrap());
        }
        cleanup(&path);
    }

    #[test]
    fn sequential_access_charges_less_than_shuffled() {
        let path = make_tar(16, "seq.tar");
        let seq_clock = Arc::new(StorageClock::new());
        let mut r = IndexedTarReader::open(
            &path,
            Decoder::Turbo,
            StorageModel::parallel_fs(),
            seq_clock.clone(),
        )
        .unwrap();
        for i in 0..16 {
            r.read_sample(i).unwrap();
        }
        let shuf_clock = Arc::new(StorageClock::new());
        let mut r = IndexedTarReader::open(
            &path,
            Decoder::Turbo,
            StorageModel::parallel_fs(),
            shuf_clock.clone(),
        )
        .unwrap();
        for i in [5usize, 1, 14, 3, 9, 0, 12, 7, 2, 15, 4, 11, 6, 13, 8, 10] {
            r.read_sample(i).unwrap();
        }
        assert!(
            shuf_clock.elapsed() > seq_clock.elapsed(),
            "shuffled {} !> sequential {}",
            shuf_clock.elapsed(),
            seq_clock.elapsed()
        );
        cleanup(&path);
    }

    #[test]
    fn headers_are_tar_compatible() {
        // ustar magic, octal size, correct checksum.
        let h = tar_header("hello.d5j", 1234);
        assert_eq!(&h[257..262], b"ustar");
        let size = u64::from_str_radix(
            std::str::from_utf8(&h[124..135])
                .unwrap()
                .trim_end_matches('\0'),
            8,
        )
        .unwrap();
        assert_eq!(size, 1234);
        // Recompute checksum.
        let mut copy = h;
        for b in &mut copy[148..156] {
            *b = b' ';
        }
        let expect: u64 = copy.iter().map(|&b| b as u64).sum();
        let stored = u64::from_str_radix(std::str::from_utf8(&h[148..154]).unwrap(), 8).unwrap();
        assert_eq!(stored, expect);
    }

    #[test]
    fn missing_index_is_an_error() {
        let path = make_tar(2, "noidx.tar");
        std::fs::remove_file(index_path(&path)).unwrap();
        let clock = Arc::new(StorageClock::new());
        assert!(
            IndexedTarReader::open(&path, Decoder::Turbo, StorageModel::local_ssd(), clock)
                .is_err()
        );
        std::fs::remove_file(&path).ok();
    }
}
