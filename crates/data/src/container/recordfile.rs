//! TFRecord-style chunked record container with a pseudo-shuffle pipeline.
//!
//! The paper attributes TensorFlow's ImageNet ingest advantage (Table III)
//! to two mechanisms, both reproduced here:
//!
//! * **parallel decoding** of a minibatch ("the ratios between runtime of a
//!   minibatch and one image suggest that TensorFlow employs parallel
//!   decoding") — [`RecordPipeline::next_batch`] decodes records with
//!   rayon,
//! * **pseudo-shuffling**: "a buffer of (10,000) images is loaded into
//!   memory once and shuffled internally. This chunk-based loading reduces
//!   stochasticity, but enables pipelining file I/O and in-memory
//!   shuffling" — the pipeline reads *sequentially* (cheap) into a shuffle
//!   buffer and samples from it at random.
//!
//! Record layout: varint label, varint payload length, D5J payload.

use crate::codec;
use crate::codec::entropy::{read_u64, write_u64};
use crate::io_model::{StorageClock, StorageModel};
use deep500_tensor::{Error, Result, Tensor, Xoshiro256StarStar};
use rayon::prelude::*;
use std::io::Write;
use std::path::Path;
use std::sync::Arc;

/// Write a record file of D5J-encoded images.
pub fn write_recordfile(
    path: &Path,
    samples: &[(codec::RawImage, u32)],
    quality: u8,
) -> Result<()> {
    let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
    let mut header = Vec::new();
    for (img, label) in samples {
        let payload = codec::encode(img, quality)?;
        header.clear();
        write_u64(&mut header, *label as u64);
        write_u64(&mut header, payload.len() as u64);
        f.write_all(&header)?;
        f.write_all(&payload)?;
    }
    f.flush()?;
    Ok(())
}

/// One encoded record held in memory.
#[derive(Debug, Clone)]
pub struct Record {
    pub label: u32,
    pub payload: Vec<u8>,
}

/// A streaming reader over a record file: loads the raw bytes once,
/// yields records sequentially, charging sequential-stream I/O.
pub struct RecordReader {
    bytes: Vec<u8>,
    pos: usize,
    model: StorageModel,
    clock: Arc<StorageClock>,
    charged: usize,
}

impl RecordReader {
    /// Open a record file.
    pub fn open(path: &Path, model: StorageModel, clock: Arc<StorageClock>) -> Result<Self> {
        let bytes = std::fs::read(path)?;
        clock.charge(model.open_latency_s);
        Ok(RecordReader {
            bytes,
            pos: 0,
            model,
            clock,
            charged: 0,
        })
    }

    /// Next record, or `None` at end of stream.
    pub fn next_record(&mut self) -> Result<Option<Record>> {
        if self.pos >= self.bytes.len() {
            return Ok(None);
        }
        let start = self.pos;
        let label = read_u64(&self.bytes, &mut self.pos)? as u32;
        let len = read_u64(&self.bytes, &mut self.pos)? as usize;
        let end = self
            .pos
            .checked_add(len)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| Error::Format("truncated record".into()))?;
        let payload = self.bytes[self.pos..end].to_vec();
        self.pos = end;
        // Charge sequential streaming for the bytes consumed.
        let consumed = self.pos - start;
        self.charged += consumed;
        self.clock.charge(self.model.stream_cost(consumed));
        Ok(Some(Record { label, payload }))
    }

    /// Restart from the beginning (new epoch).
    pub fn rewind(&mut self) {
        self.pos = 0;
        self.clock.charge(self.model.seek_latency_s);
    }
}

/// A decoded minibatch of images as a `[B, C, H, W]` tensor plus labels.
pub struct DecodedBatch {
    pub x: Tensor,
    pub labels: Tensor,
}

/// The TF-style input pipeline: sequential reads → shuffle buffer →
/// parallel decode.
pub struct RecordPipeline {
    reader: RecordReader,
    buffer: Vec<Record>,
    buffer_capacity: usize,
    rng: Xoshiro256StarStar,
    parallel_decode: bool,
}

impl RecordPipeline {
    /// Pipeline over `reader` with the given shuffle-buffer capacity
    /// (the paper quotes TensorFlow's default of 10,000).
    pub fn new(
        reader: RecordReader,
        buffer_capacity: usize,
        parallel_decode: bool,
        seed: u64,
    ) -> Self {
        RecordPipeline {
            reader,
            buffer: Vec::with_capacity(buffer_capacity.min(16384)),
            buffer_capacity: buffer_capacity.max(1),
            rng: Xoshiro256StarStar::seed_from_u64(seed),
            parallel_decode,
        }
    }

    fn refill(&mut self) -> Result<()> {
        while self.buffer.len() < self.buffer_capacity {
            match self.reader.next_record()? {
                Some(r) => self.buffer.push(r),
                None => break,
            }
        }
        Ok(())
    }

    /// Pop `batch` records (pseudo-shuffled), decode them (in parallel if
    /// configured), and assemble the batch tensor. Returns `None` when the
    /// stream and buffer are exhausted.
    pub fn next_batch(&mut self, batch: usize) -> Result<Option<DecodedBatch>> {
        self.refill()?;
        if self.buffer.is_empty() {
            return Ok(None);
        }
        let take = batch.min(self.buffer.len());
        let mut records = Vec::with_capacity(take);
        for _ in 0..take {
            let j = self.rng.next_below(self.buffer.len());
            records.push(self.buffer.swap_remove(j));
        }
        type Decoded = (Vec<f32>, u32, (usize, usize, usize));
        let decode = |r: &Record| -> Result<Decoded> {
            let img = codec::decode_turbo(&r.payload)?;
            let data: Vec<f32> = img.pixels.iter().map(|&b| b as f32 / 127.5 - 1.0).collect();
            Ok((data, r.label, (img.c, img.h, img.w)))
        };
        let decoded: Vec<_> = if self.parallel_decode {
            records.par_iter().map(decode).collect::<Result<_>>()?
        } else {
            records.iter().map(decode).collect::<Result<_>>()?
        };
        let (c, h, w) = decoded[0].2;
        if decoded.iter().any(|d| d.2 != (c, h, w)) {
            return Err(Error::ShapeMismatch("mixed image sizes in batch".into()));
        }
        let mut x = Tensor::zeros([take, c, h, w]);
        let mut labels = Tensor::zeros([take]);
        let per = c * h * w;
        for (i, (data, label, _)) in decoded.iter().enumerate() {
            x.data_mut()[i * per..(i + 1) * per].copy_from_slice(data);
            labels.data_mut()[i] = *label as f32;
        }
        Ok(Some(DecodedBatch { x, labels }))
    }

    /// Restart the underlying stream (buffer contents retained, as TF does).
    pub fn rewind(&mut self) {
        self.reader.rewind();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::SyntheticDataset;

    fn make_record_file(n: usize, name: &str) -> std::path::PathBuf {
        let src = SyntheticDataset::cifar10_like(n, 3);
        let samples: Vec<(codec::RawImage, u32)> = (0..n)
            .map(|i| {
                let (pix, label) = src.sample_u8(i);
                (codec::RawImage::new(3, 32, 32, pix).unwrap(), label)
            })
            .collect();
        let dir = std::env::temp_dir().join("d5-record-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        write_recordfile(&path, &samples, 80).unwrap();
        path
    }

    fn reader(path: &Path) -> RecordReader {
        RecordReader::open(
            path,
            StorageModel::local_ssd(),
            Arc::new(StorageClock::new()),
        )
        .unwrap()
    }

    #[test]
    fn sequential_read_sees_all_records() {
        let path = make_record_file(12, "seq.d5rec");
        let mut r = reader(&path);
        let mut count = 0;
        while let Some(rec) = r.next_record().unwrap() {
            assert!(!rec.payload.is_empty());
            count += 1;
        }
        assert_eq!(count, 12);
        r.rewind();
        assert!(r.next_record().unwrap().is_some());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn pipeline_batches_decode_correct_shapes() {
        let path = make_record_file(20, "pipe.d5rec");
        let mut p = RecordPipeline::new(reader(&path), 8, true, 42);
        let b = p.next_batch(6).unwrap().unwrap();
        assert_eq!(b.x.shape().dims(), &[6, 3, 32, 32]);
        assert_eq!(b.labels.numel(), 6);
        assert!(b.labels.data().iter().all(|&l| l < 10.0));
        // Drain the rest.
        let mut total = 6;
        while let Some(b) = p.next_batch(6).unwrap() {
            total += b.labels.numel();
        }
        assert_eq!(total, 20);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn parallel_and_serial_decode_agree() {
        let path = make_record_file(8, "par.d5rec");
        let mut a = RecordPipeline::new(reader(&path), 100, true, 7);
        let mut b = RecordPipeline::new(reader(&path), 100, false, 7);
        let ba = a.next_batch(8).unwrap().unwrap();
        let bb = b.next_batch(8).unwrap().unwrap();
        assert_eq!(ba.x, bb.x);
        assert_eq!(ba.labels, bb.labels);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn pseudo_shuffle_changes_order() {
        let path = make_record_file(30, "shuf.d5rec");
        let mut p = RecordPipeline::new(reader(&path), 30, false, 1);
        let shuffled = p.next_batch(30).unwrap().unwrap();
        let mut q = RecordPipeline::new(reader(&path), 1, false, 1); // buffer 1 = no shuffling
        let sequential = q.next_batch(30).unwrap();
        // buffer capacity 1 yields one record per refill; take differs.
        assert!(sequential.unwrap().labels.numel() <= 30);
        // With a full buffer the order is (almost surely) permuted.
        let mut r = reader(&path);
        let mut in_order = Vec::new();
        while let Some(rec) = r.next_record().unwrap() {
            in_order.push(rec.label as f32);
        }
        assert_ne!(shuffled.labels.data(), &in_order[..]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn io_clock_charged_for_streaming() {
        let path = make_record_file(5, "clock.d5rec");
        let clock = Arc::new(StorageClock::new());
        let mut r = RecordReader::open(&path, StorageModel::parallel_fs(), clock.clone()).unwrap();
        while r.next_record().unwrap().is_some() {}
        assert!(clock.elapsed() > 0.0);
        std::fs::remove_file(&path).ok();
    }
}
