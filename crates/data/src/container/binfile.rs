//! Raw binary dataset files (the MNIST/CIFAR storage style).
//!
//! Layout: magic `D5BIN\0`, u32 LE sample count, u32 LE channels/height/
//! width, then `count` labels (u32 LE), then `count * c*h*w` raw `u8`
//! pixels. Like the real MNIST IDX files, the whole dataset is small
//! enough to load into memory once — which is why the paper finds that for
//! MNIST "data loading is faster than allocating and generating synthetic
//! data".

use crate::dataset::{Dataset, Sample};
use crate::io_model::{StorageClock, StorageModel};
use deep500_tensor::{Error, Result, Shape, Tensor};
use std::io::{Read, Write};
use std::path::Path;
use std::sync::Arc;

const MAGIC: &[u8; 6] = b"D5BIN\0";

/// Write a raw binary dataset file from `(pixels, label)` pairs.
pub fn write_binfile(
    path: &Path,
    c: usize,
    h: usize,
    w: usize,
    samples: &[(Vec<u8>, u32)],
) -> Result<()> {
    let per = c * h * w;
    for (pix, _) in samples {
        if pix.len() != per {
            return Err(Error::Invalid(format!(
                "sample of {} bytes, expected {per}",
                pix.len()
            )));
        }
    }
    let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
    f.write_all(MAGIC)?;
    f.write_all(&(samples.len() as u32).to_le_bytes())?;
    f.write_all(&(c as u32).to_le_bytes())?;
    f.write_all(&(h as u32).to_le_bytes())?;
    f.write_all(&(w as u32).to_le_bytes())?;
    for (_, label) in samples {
        f.write_all(&label.to_le_bytes())?;
    }
    for (pix, _) in samples {
        f.write_all(pix)?;
    }
    f.flush()?;
    Ok(())
}

/// A raw binary dataset loaded fully into memory at open time (charging
/// one streaming read to the storage clock), with `num_classes` declared
/// by the caller.
pub struct BinFileDataset {
    name: String,
    c: usize,
    h: usize,
    w: usize,
    labels: Vec<u32>,
    pixels: Vec<u8>,
    classes: usize,
}

impl BinFileDataset {
    /// Open and fully load a binfile; the storage model charges one open +
    /// one sequential stream of the file size.
    pub fn open(
        path: &Path,
        classes: usize,
        model: &StorageModel,
        clock: &Arc<StorageClock>,
    ) -> Result<Self> {
        let mut f = std::fs::File::open(path)?;
        let mut bytes = Vec::new();
        f.read_to_end(&mut bytes)?;
        clock.charge(model.open_latency_s + model.stream_cost(bytes.len()));

        if bytes.len() < MAGIC.len() + 16 || &bytes[..6] != MAGIC {
            return Err(Error::Format("not a D5BIN file".into()));
        }
        let rd =
            |off: usize| -> u32 { u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap()) };
        let count = rd(6) as usize;
        let c = rd(10) as usize;
        let h = rd(14) as usize;
        let w = rd(18) as usize;
        let per = c * h * w;
        let labels_off = 22;
        let pixels_off = labels_off + count * 4;
        if bytes.len() != pixels_off + count * per {
            return Err(Error::Format(format!(
                "binfile size {} inconsistent with header",
                bytes.len()
            )));
        }
        let labels = (0..count).map(|i| rd(labels_off + i * 4)).collect();
        let pixels = bytes[pixels_off..].to_vec();
        Ok(BinFileDataset {
            name: path
                .file_stem()
                .map(|s| s.to_string_lossy().into_owned())
                .unwrap_or_else(|| "binfile".into()),
            c,
            h,
            w,
            labels,
            pixels,
            classes,
        })
    }
}

impl Dataset for BinFileDataset {
    fn name(&self) -> &str {
        &self.name
    }
    fn len(&self) -> usize {
        self.labels.len()
    }
    fn sample_shape(&self) -> Shape {
        Shape::new(&[self.c, self.h, self.w])
    }
    fn num_classes(&self) -> usize {
        self.classes
    }
    fn sample(&self, idx: usize) -> Result<Sample> {
        if idx >= self.labels.len() {
            return Err(Error::NotFound(format!("sample {idx}")));
        }
        let per = self.c * self.h * self.w;
        let raw = &self.pixels[idx * per..(idx + 1) * per];
        // Normalize to [-1, 1] like a standard input pipeline.
        let data: Vec<f32> = raw.iter().map(|&b| b as f32 / 127.5 - 1.0).collect();
        Ok(Sample {
            data: Tensor::from_vec(self.sample_shape(), data)?,
            label: self.labels[idx],
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::SyntheticDataset;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("d5-binfile-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn write_and_read_back() {
        let src = SyntheticDataset::mnist_like(20, 5);
        let samples: Vec<(Vec<u8>, u32)> = (0..20).map(|i| src.sample_u8(i)).collect();
        let path = tmp("mnist20.d5bin");
        write_binfile(&path, 1, 28, 28, &samples).unwrap();

        let clock = Arc::new(StorageClock::new());
        let ds = BinFileDataset::open(&path, 10, &StorageModel::local_ssd(), &clock).unwrap();
        assert_eq!(ds.len(), 20);
        assert_eq!(ds.sample_shape(), Shape::new(&[1, 28, 28]));
        assert!(clock.elapsed() > 0.0, "I/O must be charged");
        let s = ds.sample(7).unwrap();
        assert_eq!(s.label, samples[7].1);
        // Pixel 0 roundtrips through the normalization.
        let expected = samples[7].0[0] as f32 / 127.5 - 1.0;
        assert!((s.data.data()[0] - expected).abs() < 1e-6);
        assert!(ds.sample(20).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn inconsistent_sample_rejected_at_write() {
        let path = tmp("bad.d5bin");
        assert!(write_binfile(&path, 1, 2, 2, &[(vec![0u8; 3], 0)]).is_err());
    }

    #[test]
    fn corrupt_file_rejected() {
        let path = tmp("corrupt.d5bin");
        std::fs::write(&path, b"garbage").unwrap();
        let clock = Arc::new(StorageClock::new());
        assert!(BinFileDataset::open(&path, 10, &StorageModel::local_ssd(), &clock).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_file_rejected() {
        let src = SyntheticDataset::mnist_like(4, 1);
        let samples: Vec<(Vec<u8>, u32)> = (0..4).map(|i| src.sample_u8(i)).collect();
        let path = tmp("trunc.d5bin");
        write_binfile(&path, 1, 28, 28, &samples).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 10]).unwrap();
        let clock = Arc::new(StorageClock::new());
        assert!(BinFileDataset::open(&path, 10, &StorageModel::local_ssd(), &clock).is_err());
        std::fs::remove_file(&path).ok();
    }
}
