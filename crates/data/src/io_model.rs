//! Parametric storage-latency model.
//!
//! The paper's dataset-latency experiments (Fig. 8, Table III) ran against
//! a Cray Sonexion parallel filesystem; we have no PFS, so I/O time is
//! *modeled* while decode time is *measured*. The model is deliberately
//! first-order — open latency, seek latency, streaming bandwidth, and a
//! lock-contention term for many nodes sharing one file — because those are
//! the effects the paper's observations hinge on:
//!
//! * "PFS generally prefer one segmented file rather than querying strings
//!   and inodes" → per-file open cost,
//! * "when using 64 nodes … 1024 files are ≈10% faster" → shared-file
//!   stripe-lock contention growing with sharer count,
//! * random (shuffled) access is slower than sequential → per-seek cost.
//!
//! Virtual time accumulates in a thread-safe [`StorageClock`] so real
//! decode measurements and modeled I/O can be reported side by side.

use std::sync::atomic::{AtomicU64, Ordering};

/// First-order storage performance model.
#[derive(Debug, Clone)]
pub struct StorageModel {
    pub name: String,
    /// Cost of opening a file (metadata/inode lookup).
    pub open_latency_s: f64,
    /// Cost of a non-sequential repositioning.
    pub seek_latency_s: f64,
    /// Streaming bandwidth, bytes per second.
    pub bandwidth_bps: f64,
    /// Per-access penalty when `nodes` share one file, multiplied by
    /// `log2(sharers)` — models PFS stripe-lock contention.
    pub lock_latency_s: f64,
}

impl StorageModel {
    /// A local NVMe-class disk.
    pub fn local_ssd() -> Self {
        StorageModel {
            name: "local-ssd".into(),
            open_latency_s: 40e-6,
            seek_latency_s: 15e-6,
            bandwidth_bps: 2.0e9,
            lock_latency_s: 0.0,
        }
    }

    /// A Lustre/Sonexion-class parallel filesystem (Piz Daint-like).
    pub fn parallel_fs() -> Self {
        StorageModel {
            name: "parallel-fs".into(),
            open_latency_s: 1.2e-3,
            seek_latency_s: 250e-6,
            bandwidth_bps: 5.0e9,
            lock_latency_s: 0.4e-6,
        }
    }

    /// Cost of streaming `bytes` (no repositioning).
    pub fn stream_cost(&self, bytes: usize) -> f64 {
        bytes as f64 / self.bandwidth_bps
    }

    /// Cost of one random access of `bytes` (seek + stream).
    pub fn random_access_cost(&self, bytes: usize) -> f64 {
        self.seek_latency_s + self.stream_cost(bytes)
    }

    /// Cost for one node to read a `batch`-image minibatch of
    /// `bytes_per_image` each, from a dataset of `total_images` sharded
    /// into `files`, with `nodes` nodes reading concurrently, accessing
    /// `sequential`ly or at random.
    ///
    /// Decomposition: per-image positioning (seek when shuffled) + stream
    /// time + per-newly-touched-file open cost + shared-file lock
    /// contention when fewer files than nodes.
    pub fn batch_read_cost(
        &self,
        batch: usize,
        bytes_per_image: usize,
        total_images: usize,
        files: usize,
        nodes: usize,
        sequential: bool,
    ) -> f64 {
        assert!(files >= 1 && nodes >= 1 && total_images >= 1);
        // Files touched per batch: amortized over the epoch when streaming
        // (a 1024-file shard set charges its 1024 opens across all batches
        // of the epoch); with shuffled access each image likely lands in a
        // distinct file (capped by the file count).
        let files_touched = if sequential {
            (batch as f64 * files as f64 / total_images as f64).min(batch as f64)
        } else {
            (batch as f64).min(files as f64)
        };
        let position_cost = if sequential {
            // Only cross-file repositioning.
            files_touched * self.seek_latency_s
        } else {
            batch as f64 * self.seek_latency_s
        };
        let stream = batch as f64 * self.stream_cost(bytes_per_image);
        let open = files_touched * self.open_latency_s;
        let contention = if files < nodes {
            let sharers = (nodes as f64 / files as f64).max(1.0);
            batch as f64 * self.lock_latency_s * sharers.log2()
        } else {
            0.0
        };
        position_cost + stream + open + contention
    }
}

/// Thread-safe accumulator of virtual I/O seconds (bit-cast f64 in an
/// atomic, CAS-accumulated).
#[derive(Debug, Default)]
pub struct StorageClock {
    bits: AtomicU64,
}

impl StorageClock {
    /// Zeroed clock.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `seconds` of virtual I/O time.
    pub fn charge(&self, seconds: f64) {
        let mut cur = self.bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + seconds).to_bits();
            match self
                .bits
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Total virtual seconds charged.
    pub fn elapsed(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }

    /// Reset to zero.
    pub fn reset(&self) {
        self.bits.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_and_random_costs() {
        let m = StorageModel::local_ssd();
        assert!((m.stream_cost(2_000_000_000) - 1.0).abs() < 1e-9);
        assert!(m.random_access_cost(0) > 0.0);
        assert!(m.random_access_cost(1000) > m.stream_cost(1000));
    }

    #[test]
    fn shuffled_costs_more_than_sequential() {
        let m = StorageModel::parallel_fs();
        let seq = m.batch_read_cost(128, 100_000, 1_000_000, 1024, 1, true);
        let shuf = m.batch_read_cost(128, 100_000, 1_000_000, 1024, 1, false);
        assert!(shuf > seq, "{shuf} !> {seq}");
    }

    #[test]
    fn paper_effect_single_node_prefers_one_file() {
        // On one node, 1 segmented file beats 1024 files (fewer opens).
        let m = StorageModel::parallel_fs();
        let one = m.batch_read_cost(128, 100_000, 1_281_167, 1, 1, true);
        let many = m.batch_read_cost(128, 100_000, 1_281_167, 1024, 1, true);
        assert!(one < many, "{one} !< {many}");
    }

    #[test]
    fn paper_effect_64_nodes_prefer_sharded_files() {
        // On 64 nodes, the shared single file pays lock contention and
        // loses to 1024 shards — the paper's "surprisingly ~10% faster".
        let m = StorageModel::parallel_fs();
        let one = m.batch_read_cost(128, 100_000, 1_281_167, 1, 64, true);
        let many = m.batch_read_cost(128, 100_000, 1_281_167, 1024, 64, true);
        assert!(many < one, "{many} !< {one}");
        let ratio = one / many;
        assert!(
            ratio > 1.02 && ratio < 2.0,
            "contention effect should be moderate, got {ratio}"
        );
    }

    #[test]
    fn clock_accumulates_and_resets() {
        let c = StorageClock::new();
        c.charge(0.5);
        c.charge(0.25);
        assert!((c.elapsed() - 0.75).abs() < 1e-12);
        c.reset();
        assert_eq!(c.elapsed(), 0.0);
    }

    #[test]
    fn clock_is_thread_safe() {
        let c = std::sync::Arc::new(StorageClock::new());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let c = c.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    c.charge(0.001);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!((c.elapsed() - 4.0).abs() < 1e-9);
    }
}
