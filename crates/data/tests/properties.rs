//! Property-based tests for the data substrate: codec round-trips,
//! entropy-coding invariants, sampler coverage, and storage-model
//! monotonicity.

use deep500_data::codec::{self, entropy, RawImage};
use deep500_data::io_model::StorageModel;
use deep500_data::sampler::{
    BufferShuffleSampler, DatasetSampler, SequentialSampler, ShardedSampler, ShuffleSampler,
};
use deep500_data::synthetic::SyntheticDataset;
use deep500_data::Dataset;
use proptest::prelude::*;
use std::sync::Arc;

fn drain_labels(s: &mut dyn DatasetSampler) -> Vec<f32> {
    let mut out = Vec::new();
    while let Some(b) = s.next_batch().unwrap() {
        out.extend_from_slice(b.labels.data());
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// D5J encode/decode round-trips any image within a quality-dependent
    /// pixel-error bound, and the two decoders agree bit-for-bit.
    #[test]
    fn codec_roundtrip_bounded(
        c in 1usize..4, h in 1usize..40, w in 1usize..40,
        quality in 55u8..100, seed in 0u64..1000,
    ) {
        // Smooth-ish content (transform codecs are specified for natural
        // images; noise at low quality has unbounded error).
        let pixels: Vec<u8> = (0..c * h * w)
            .map(|i| {
                let x = (i % w) as f32;
                let y = ((i / w) % h) as f32;
                (128.0 + 80.0 * ((x + seed as f32) * 0.2).sin() * (y * 0.15).cos()) as u8
            })
            .collect();
        let img = RawImage::new(c, h, w, pixels).unwrap();
        let bytes = codec::encode(&img, quality).unwrap();
        let a = codec::decode_scalar(&bytes).unwrap();
        let b = codec::decode_turbo(&bytes).unwrap();
        prop_assert_eq!(&a, &b, "decoders must agree");
        prop_assert_eq!((a.c, a.h, a.w), (c, h, w));
        let max_err = img
            .pixels
            .iter()
            .zip(&a.pixels)
            .map(|(&x, &y)| (x as i32 - y as i32).abs())
            .max()
            .unwrap();
        prop_assert!(max_err <= 40, "max pixel err {max_err} at q{quality}");
    }

    /// Entropy coding round-trips arbitrary coefficient blocks exactly.
    #[test]
    fn entropy_roundtrip_exact(
        blocks in 1usize..5,
        coeffs in prop::collection::vec(-300i16..300, 64..65),
    ) {
        let mut all = Vec::new();
        for b in 0..blocks {
            for (i, &c) in coeffs.iter().enumerate() {
                // Vary per block; zero most high frequencies.
                all.push(if i > 20 && (i + b) % 3 != 0 { 0 } else { c });
            }
        }
        let enc = entropy::encode_coefficients(&all);
        let dec = entropy::decode_coefficients(&enc, all.len()).unwrap();
        prop_assert_eq!(dec, all);
    }

    /// Every sampler covers each dataset element exactly once per epoch.
    #[test]
    fn samplers_cover_epoch_exactly_once(
        len in 1usize..80, batch in 1usize..16, seed in 0u64..200,
    ) {
        let ds: Arc<dyn Dataset> = Arc::new(SyntheticDataset::mnist_like(len, seed));
        let expected = {
            let mut labels: Vec<f32> = (0..len)
                .map(|i| SyntheticDataset::mnist_like(len, seed).label_of(i) as f32)
                .collect();
            labels.sort_by(|a, b| a.partial_cmp(b).unwrap());
            labels
        };
        let mut seq = SequentialSampler::new(ds.clone(), batch);
        let mut shuf = ShuffleSampler::new(ds.clone(), batch, seed);
        let mut buf = BufferShuffleSampler::new(ds.clone(), batch, 7, seed);
        for s in [&mut seq as &mut dyn DatasetSampler, &mut shuf, &mut buf] {
            let mut got = drain_labels(s);
            got.sort_by(|a, b| a.partial_cmp(b).unwrap());
            prop_assert_eq!(&got, &expected);
        }
    }

    /// Sharded sampling partitions the epoch across ranks: no overlap, no
    /// gaps, for any world size.
    #[test]
    fn sharding_partitions(len in 1usize..60, world in 1usize..9, seed in 0u64..100) {
        let ds: Arc<dyn Dataset> = Arc::new(SyntheticDataset::mnist_like(len, seed));
        let mut all_indices = Vec::new();
        for rank in 0..world {
            let s = ShardedSampler::new(ds.clone(), 4, rank, world, true, seed);
            all_indices.extend(s.shard_indices());
        }
        all_indices.sort_unstable();
        prop_assert_eq!(all_indices, (0..len).collect::<Vec<_>>());
    }

    /// Storage-model costs are monotone in bytes and batch size, and
    /// shuffled access never costs less than sequential.
    #[test]
    fn storage_costs_monotone(
        batch in 1usize..256, bytes in 1usize..200_000,
        files in 1usize..2048, nodes in 1usize..128,
    ) {
        let total = 1_000_000usize;
        for m in [StorageModel::local_ssd(), StorageModel::parallel_fs()] {
            let seq = m.batch_read_cost(batch, bytes, total, files, nodes, true);
            let shuf = m.batch_read_cost(batch, bytes, total, files, nodes, false);
            prop_assert!(shuf >= seq - 1e-12);
            let bigger = m.batch_read_cost(batch, bytes * 2, total, files, nodes, true);
            prop_assert!(bigger >= seq);
            prop_assert!(seq.is_finite() && seq >= 0.0);
        }
    }

    /// Fast synthetic batches have the declared shape and in-range labels.
    #[test]
    fn fast_batches_are_well_formed(batch in 1usize..32, seed in 0u64..100) {
        let ds = SyntheticDataset::cifar10_like(16, seed);
        let mb = ds.generate_fast_batch(batch, seed);
        prop_assert_eq!(mb.x.shape().dims(), &[batch, 3, 32, 32]);
        prop_assert_eq!(mb.labels.numel(), batch);
        prop_assert!(mb.labels.data().iter().all(|&l| (0.0..10.0).contains(&l)));
    }
}
