//! The fully-connected (dense) layer: `Y = X Wᵀ + b`.
//!
//! Inputs: `X [N, in]`, `W [out, in]`, `b [out]`; output `Y [N, out]`.
//! Backed by the Level-0 GEMM kernels. Single-row batches (`N == 1`, the
//! closed-loop serving case) under `Packed` skip the GEMM machinery for a
//! dedicated GEMV over a per-instance cached transposed weight image —
//! bit-identical to the batched path (see
//! [`gemv_bt_padded`](crate::gemm::packed::gemv_bt_padded)), but with the
//! `B`-pack and the 7-of-8 wasted register-tile rows gone.

use crate::gemm::packed::{gemv_bt_padded, round_up, NR_W};
use crate::gemm::{self, Algorithm, Epilogue};
use crate::operator::Operator;
use deep500_tensor::{Error, Result, Shape, Tensor};
use parking_lot::Mutex;
use std::sync::Arc;

/// Per-instance memo of the `[K x n_pad]` transposed, column-padded weight
/// image the `N == 1` GEMV fast path streams. Keyed on the weight
/// tensor's content-version stamp ([`Tensor::version`]) like the conv
/// filter cache — O(1) per call, and immune to the buffer pool recycling
/// a freed parameter allocation at the same address.
#[derive(Debug, Default)]
struct GemvCache {
    version: u64,
    wt: Option<Arc<Vec<f32>>>,
}

/// Fully-connected layer operator. The bias add always rides the GEMM
/// write-back epilogue (zero extra memory traffic under `Packed`), and a
/// downstream ReLU can be folded in too (`epilogue = "relu"` attribute,
/// installed by the graph crate's epilogue-fusion transform). Both fusions
/// are bit-identical to the separate passes — same per-element float
/// sequence, including NaN-to-0 under `max`.
#[derive(Debug, Clone, Default)]
pub struct LinearOp {
    pub algo: Algorithm,
    /// Fold `max(x, 0)` into the write-back after the bias add.
    pub relu: bool,
    /// Transposed-weight memo for the single-row GEMV path. Shared across
    /// clones so executor snapshots reuse one image.
    cache: Arc<Mutex<GemvCache>>,
}

impl LinearOp {
    pub fn new(algo: Algorithm) -> Self {
        LinearOp {
            algo,
            relu: false,
            cache: Arc::new(Mutex::new(GemvCache::default())),
        }
    }

    /// Enable the fused ReLU epilogue.
    pub fn with_relu(mut self, relu: bool) -> Self {
        self.relu = relu;
        self
    }

    /// Fetch (or build and memoize) the `[K x round_up(out, NR_W)]`
    /// transposed weight image of a `[out, K]` parameter, zero-padding the
    /// trailing columns so the GEMV kernel's whole-tile loads stay in
    /// bounds and inert.
    fn transposed(&self, w: &Tensor, fout: usize, fin: usize) -> Arc<Vec<f32>> {
        let version = w.version();
        let mut cache = self.cache.lock();
        if let Some(wt) = &cache.wt {
            if cache.version == version {
                return Arc::clone(wt);
            }
        }
        let n_pad = round_up(fout, NR_W);
        let mut wt = vec![0.0f32; fin * n_pad];
        for (j, wrow) in w.data().chunks(fin).enumerate() {
            for (p, &wv) in wrow.iter().enumerate() {
                wt[p * n_pad + j] = wv;
            }
        }
        let wt = Arc::new(wt);
        cache.version = version;
        cache.wt = Some(Arc::clone(&wt));
        wt
    }

    fn dims(&self, x: &Shape, w: &Shape, b: &Shape) -> Result<(usize, usize, usize)> {
        if x.rank() != 2 || w.rank() != 2 || b.rank() != 1 {
            return Err(Error::ShapeMismatch(format!("Linear: X {x}, W {w}, b {b}")));
        }
        let (n, fin) = (x.dim(0), x.dim(1));
        let (fout, fin2) = (w.dim(0), w.dim(1));
        if fin != fin2 || b.dim(0) != fout {
            return Err(Error::ShapeMismatch(format!(
                "Linear: X {x} W {w} b {b} are inconsistent"
            )));
        }
        Ok((n, fin, fout))
    }
}

impl Operator for LinearOp {
    fn name(&self) -> &str {
        "Linear"
    }
    fn num_inputs(&self) -> usize {
        3
    }
    fn effects(&self) -> crate::operator::OpEffects {
        // Under `Packed`, single-row batches take the GEMV fast path over a
        // transposed weight image memoized on input 1's version stamp.
        crate::operator::OpEffects {
            version_memo_inputs: if self.algo == Algorithm::Packed {
                vec![1]
            } else {
                Vec::new()
            },
            mutated_inputs: Vec::new(),
        }
    }
    fn output_shapes(&self, s: &[&Shape]) -> Result<Vec<Shape>> {
        let (n, _, fout) = self.dims(s[0], s[1], s[2])?;
        Ok(vec![Shape::new(&[n, fout])])
    }
    fn forward(&self, inputs: &[&Tensor]) -> Result<Vec<Tensor>> {
        let (x, w, b) = (inputs[0], inputs[1], inputs[2]);
        let (n, fin, fout) = self.dims(x.shape(), w.shape(), b.shape())?;
        // Y = X * Wᵀ (+ b, [+ ReLU]) in one write-back pass.
        let epilogue = if self.relu {
            Epilogue::BiasRelu(b.data())
        } else {
            Epilogue::Bias(b.data())
        };
        if n == 1 && self.algo == Algorithm::Packed {
            // Single-row fast path: GEMV over the cached transposed
            // weights. Bit-identical to the batched GEMM below — the
            // other `Algorithm` tiers stay on their reference kernels.
            // Safety audit: `gemv_bt_padded`'s SIMD tiles assume every
            // cached row is padded to `round_up(fout, NR_W)` readable
            // lanes; `transposed` builds exactly that layout, and the CI
            // miri job interprets the `linear` tests to check it.
            let wt = self.transposed(w, fout, fin);
            let mut y = Tensor::zeros([1, fout]);
            gemv_bt_padded(fout, fin, x.data(), &wt, y.data_mut(), epilogue);
            return Ok(vec![y]);
        }
        let y = gemm::matmul_a_bt_with_epilogue(self.algo, x, w, epilogue)?;
        Ok(vec![y])
    }
    fn backward(
        &self,
        grad_outputs: &[&Tensor],
        inputs: &[&Tensor],
        outputs: &[&Tensor],
    ) -> Result<Vec<Tensor>> {
        let g = grad_outputs[0]; // [N, out]
        let (x, w, b) = (inputs[0], inputs[1], inputs[2]);
        // With the fused ReLU, first mask the incoming gradient exactly
        // like a standalone Relu node's backward: g * (y > 0 ? 1 : 0),
        // where y is this op's (post-ReLU) output.
        let masked;
        let g = if self.relu {
            let y = outputs[0];
            masked = g.zip(y, |gv, yv| gv * if yv > 0.0 { 1.0 } else { 0.0 })?;
            &masked
        } else {
            g
        };
        // dX = g * W          [N, in]
        let dx = gemm::matmul(self.algo, g, w)?;
        // dW = gᵀ * X         [out, in]
        let dw = gemm::matmul_at_b_with(self.algo, g, x)?;
        // db = column sums of g
        let (n, fout) = (g.shape().dim(0), g.shape().dim(1));
        let mut db = Tensor::zeros(b.shape().clone());
        for r in 0..n {
            for c in 0..fout {
                db.data_mut()[c] += g.data()[r * fout + c];
            }
        }
        Ok(vec![dx, dw, db])
    }
    fn flops(&self, s: &[&Shape]) -> f64 {
        deep500_metrics::flops::counts::gemm(s[0].dim(0), s[1].dim(0), s[0].dim(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_known_values() {
        // X = [[1, 2]], W = [[1, 0], [0, 1], [1, 1]], b = [0, 10, 100]
        let x = Tensor::from_vec([1, 2], vec![1.0, 2.0]).unwrap();
        let w = Tensor::from_vec([3, 2], vec![1.0, 0.0, 0.0, 1.0, 1.0, 1.0]).unwrap();
        let b = Tensor::from_slice(&[0.0, 10.0, 100.0]);
        let y = LinearOp::default().forward(&[&x, &w, &b]).unwrap();
        assert_eq!(y[0].data(), &[1.0, 12.0, 103.0]);
    }

    #[test]
    fn backward_shapes_and_bias_grad() {
        let x = Tensor::from_vec([2, 3], vec![1.0; 6]).unwrap();
        let w = Tensor::from_vec([4, 3], vec![0.5; 12]).unwrap();
        let b = Tensor::zeros([4]);
        let op = LinearOp::default();
        let y = op.forward(&[&x, &w, &b]).unwrap();
        let g = Tensor::ones([2, 4]);
        let grads = op.backward(&[&g], &[&x, &w, &b], &[&y[0]]).unwrap();
        assert_eq!(grads[0].shape(), &Shape::new(&[2, 3]));
        assert_eq!(grads[1].shape(), &Shape::new(&[4, 3]));
        assert_eq!(grads[2].shape(), &Shape::new(&[4]));
        // db = sum over batch of ones = 2 per output
        assert!(grads[2].data().iter().all(|&v| v == 2.0));
        // dX row = sum of W rows = 4 * 0.5 = 2.0 per input feature
        assert!(grads[0].data().iter().all(|&v| v == 2.0));
    }

    #[test]
    fn single_row_gemv_is_bit_identical_to_batched_rows() {
        use deep500_tensor::rng::Xoshiro256StarStar;
        let mut rng = Xoshiro256StarStar::seed_from_u64(11);
        // Ragged out-features (neither a multiple of the GEMV tile nor the
        // GEMM sliver) and k past one KC block to exercise the chunking.
        for (fin, fout) in [(120, 84), (300, 37), (64, 120)] {
            let xb = Tensor::rand_uniform([3, fin], -1.0, 1.0, &mut rng);
            let w = Tensor::rand_uniform([fout, fin], -1.0, 1.0, &mut rng);
            let b = Tensor::rand_uniform([fout], -1.0, 1.0, &mut rng);
            for relu in [false, true] {
                let op = LinearOp::new(Algorithm::Packed).with_relu(relu);
                let yb = op.forward(&[&xb, &w, &b]).unwrap();
                for r in 0..3 {
                    let xr = Tensor::from_vec([1, fin], xb.data()[r * fin..(r + 1) * fin].to_vec())
                        .unwrap();
                    let yr = op.forward(&[&xr, &w, &b]).unwrap();
                    let got: Vec<u32> = yr[0].data().iter().map(|v| v.to_bits()).collect();
                    let want: Vec<u32> = yb[0].data()[r * fout..(r + 1) * fout]
                        .iter()
                        .map(|v| v.to_bits())
                        .collect();
                    assert_eq!(
                        got, want,
                        "{fin}x{fout} relu={relu}: solo row {r} diverged from its batched row"
                    );
                }
            }
        }
    }

    #[test]
    fn gemv_cache_tracks_weight_content() {
        // Same instance, two different weight tensors: the memo must not
        // serve the first image for the second tensor.
        let op = LinearOp::new(Algorithm::Packed);
        let x = Tensor::from_vec([1, 2], vec![1.0, 2.0]).unwrap();
        let b = Tensor::zeros([2]);
        let w1 = Tensor::from_vec([2, 2], vec![1.0, 0.0, 0.0, 1.0]).unwrap();
        let y1 = op.forward(&[&x, &w1, &b]).unwrap();
        assert_eq!(y1[0].data(), &[1.0, 2.0]);
        let w2 = Tensor::from_vec([2, 2], vec![0.0, 1.0, 1.0, 0.0]).unwrap();
        let y2 = op.forward(&[&x, &w2, &b]).unwrap();
        assert_eq!(y2[0].data(), &[2.0, 1.0]);
    }

    #[test]
    fn inconsistent_shapes_rejected() {
        let op = LinearOp::default();
        let x = Shape::new(&[2, 3]);
        let w = Shape::new(&[4, 5]); // wrong in-features
        let b = Shape::new(&[4]);
        assert!(op.output_shapes(&[&x, &w, &b]).is_err());
        let w = Shape::new(&[4, 3]);
        let b = Shape::new(&[5]); // wrong bias
        assert!(op.output_shapes(&[&x, &w, &b]).is_err());
    }
}
