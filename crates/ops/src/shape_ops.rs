//! Shape-manipulation operators: Reshape/Flatten, Split, Concat, Dropout.
//!
//! `Split` and `Concat` along the batch axis are the building blocks of the
//! micro-batch graph transformation (paper Fig. 7): a large convolution is
//! rewritten into `Split -> k x Conv2d -> Concat`. Their backward passes
//! are each other's forward passes.

use crate::operator::Operator;
use deep500_tensor::{Error, Result, Shape, Tensor, Xoshiro256StarStar};

/// Reshape to a fixed target shape (same element count).
#[derive(Debug, Clone)]
pub struct ReshapeOp {
    pub target: Vec<usize>,
}

impl ReshapeOp {
    pub fn new(target: &[usize]) -> Self {
        ReshapeOp {
            target: target.to_vec(),
        }
    }

    /// Flatten to `[N, rest]` keeping axis 0 — handled specially because the
    /// batch extent varies between minibatches.
    pub fn flatten() -> FlattenOp {
        FlattenOp
    }
}

impl Operator for ReshapeOp {
    fn name(&self) -> &str {
        "Reshape"
    }
    fn num_inputs(&self) -> usize {
        1
    }
    fn output_shapes(&self, s: &[&Shape]) -> Result<Vec<Shape>> {
        Ok(vec![s[0].reshape(&self.target)?])
    }
    fn forward(&self, inputs: &[&Tensor]) -> Result<Vec<Tensor>> {
        Ok(vec![inputs[0].reshaped(&self.target)?])
    }
    fn backward(
        &self,
        grad_outputs: &[&Tensor],
        inputs: &[&Tensor],
        _outputs: &[&Tensor],
    ) -> Result<Vec<Tensor>> {
        Ok(vec![grad_outputs[0].reshaped(inputs[0].shape().dims())?])
    }
}

/// Flatten `[N, ...]` to `[N, prod(...)]`.
#[derive(Debug, Clone, Default)]
pub struct FlattenOp;

impl Operator for FlattenOp {
    fn name(&self) -> &str {
        "Flatten"
    }
    fn num_inputs(&self) -> usize {
        1
    }
    fn output_shapes(&self, s: &[&Shape]) -> Result<Vec<Shape>> {
        if s[0].rank() == 0 {
            return Err(Error::ShapeMismatch("cannot flatten a scalar".into()));
        }
        let n = s[0].dim(0);
        Ok(vec![Shape::new(&[n, s[0].numel() / n.max(1)])])
    }
    fn forward(&self, inputs: &[&Tensor]) -> Result<Vec<Tensor>> {
        let shapes = self.output_shapes(&[inputs[0].shape()])?;
        Ok(vec![inputs[0].reshaped(shapes[0].dims())?])
    }
    fn backward(
        &self,
        grad_outputs: &[&Tensor],
        inputs: &[&Tensor],
        _outputs: &[&Tensor],
    ) -> Result<Vec<Tensor>> {
        Ok(vec![grad_outputs[0].reshaped(inputs[0].shape().dims())?])
    }
}

/// Split along axis 0 into parts of the given sizes (ONNX `Split`).
#[derive(Debug, Clone)]
pub struct SplitOp {
    pub sizes: Vec<usize>,
}

impl SplitOp {
    pub fn new(sizes: &[usize]) -> Self {
        SplitOp {
            sizes: sizes.to_vec(),
        }
    }
}

impl Operator for SplitOp {
    fn name(&self) -> &str {
        "Split"
    }
    fn num_inputs(&self) -> usize {
        1
    }
    fn num_outputs(&self) -> usize {
        self.sizes.len()
    }
    fn output_shapes(&self, s: &[&Shape]) -> Result<Vec<Shape>> {
        if s[0].rank() == 0 {
            return Err(Error::ShapeMismatch("cannot split a scalar".into()));
        }
        let total: usize = self.sizes.iter().sum();
        if total != s[0].dim(0) {
            return Err(Error::ShapeMismatch(format!(
                "Split sizes sum to {total} but axis-0 extent is {}",
                s[0].dim(0)
            )));
        }
        Ok(self.sizes.iter().map(|&n| s[0].with_dim(0, n)).collect())
    }
    fn forward(&self, inputs: &[&Tensor]) -> Result<Vec<Tensor>> {
        self.output_shapes(&[inputs[0].shape()])?;
        let mut out = Vec::with_capacity(self.sizes.len());
        let mut start = 0usize;
        for &n in &self.sizes {
            out.push(inputs[0].slice_axis0(start, n)?);
            start += n;
        }
        Ok(out)
    }
    fn backward(
        &self,
        grad_outputs: &[&Tensor],
        _inputs: &[&Tensor],
        _outputs: &[&Tensor],
    ) -> Result<Vec<Tensor>> {
        let parts: Vec<Tensor> = grad_outputs.iter().map(|&g| g.clone()).collect();
        Ok(vec![Tensor::concat_axis0(&parts)?])
    }
}

/// Concatenate along axis 0 (ONNX `Concat`, axis=0).
#[derive(Debug, Clone)]
pub struct ConcatOp {
    pub num_inputs: usize,
}

impl ConcatOp {
    pub fn new(num_inputs: usize) -> Self {
        ConcatOp { num_inputs }
    }
}

impl Operator for ConcatOp {
    fn name(&self) -> &str {
        "Concat"
    }
    fn num_inputs(&self) -> usize {
        self.num_inputs
    }
    fn output_shapes(&self, s: &[&Shape]) -> Result<Vec<Shape>> {
        Ok(vec![Shape::concat(s, 0)?])
    }
    fn forward(&self, inputs: &[&Tensor]) -> Result<Vec<Tensor>> {
        let parts: Vec<Tensor> = inputs.iter().map(|&t| t.clone()).collect();
        Ok(vec![Tensor::concat_axis0(&parts)?])
    }
    fn backward(
        &self,
        grad_outputs: &[&Tensor],
        inputs: &[&Tensor],
        _outputs: &[&Tensor],
    ) -> Result<Vec<Tensor>> {
        let g = grad_outputs[0];
        let mut grads = Vec::with_capacity(inputs.len());
        let mut start = 0usize;
        for &inp in inputs {
            let n = inp.shape().dim(0);
            grads.push(g.slice_axis0(start, n)?);
            start += n;
        }
        Ok(grads)
    }
}

/// Dropout with a deterministic per-instance mask (reproducibility): the
/// mask is a pure function of the instance seed and the input shape, so
/// forward and backward see the same mask without shared mutable state.
#[derive(Debug, Clone)]
pub struct DropoutOp {
    pub ratio: f32,
    pub seed: u64,
}

impl DropoutOp {
    pub fn new(ratio: f32, seed: u64) -> Self {
        assert!(
            (0.0..1.0).contains(&ratio),
            "dropout ratio must be in [0,1)"
        );
        DropoutOp { ratio, seed }
    }

    fn mask(&self, numel: usize) -> Vec<f32> {
        let mut rng = Xoshiro256StarStar::seed_from_u64(self.seed ^ numel as u64);
        let keep = 1.0 - self.ratio;
        (0..numel)
            .map(|_| {
                if rng.next_f32() < keep {
                    1.0 / keep // inverted dropout scaling
                } else {
                    0.0
                }
            })
            .collect()
    }
}

impl Operator for DropoutOp {
    fn name(&self) -> &str {
        "Dropout"
    }
    fn num_inputs(&self) -> usize {
        1
    }
    fn output_shapes(&self, s: &[&Shape]) -> Result<Vec<Shape>> {
        Ok(vec![s[0].clone()])
    }
    fn forward(&self, inputs: &[&Tensor]) -> Result<Vec<Tensor>> {
        let mask = self.mask(inputs[0].numel());
        let mut out = inputs[0].clone();
        for (v, m) in out.data_mut().iter_mut().zip(&mask) {
            *v *= m;
        }
        Ok(vec![out])
    }
    fn backward(
        &self,
        grad_outputs: &[&Tensor],
        inputs: &[&Tensor],
        _outputs: &[&Tensor],
    ) -> Result<Vec<Tensor>> {
        let mask = self.mask(inputs[0].numel());
        let mut dx = grad_outputs[0].clone();
        for (v, m) in dx.data_mut().iter_mut().zip(&mask) {
            *v *= m;
        }
        Ok(vec![dx])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reshape_and_backward_restore() {
        let x = Tensor::from_vec([2, 3], (0..6).map(|i| i as f32).collect()).unwrap();
        let op = ReshapeOp::new(&[3, 2]);
        let y = op.forward(&[&x]).unwrap();
        assert_eq!(y[0].shape(), &Shape::new(&[3, 2]));
        let dx = op.backward(&[&y[0]], &[&x], &[&y[0]]).unwrap();
        assert_eq!(dx[0].shape(), x.shape());
    }

    #[test]
    fn flatten_keeps_batch() {
        let x = Tensor::zeros([2, 3, 4]);
        let y = FlattenOp.forward(&[&x]).unwrap();
        assert_eq!(y[0].shape(), &Shape::new(&[2, 12]));
    }

    #[test]
    fn split_concat_inverse() {
        let x = Tensor::from_vec([5, 2], (0..10).map(|i| i as f32).collect()).unwrap();
        let split = SplitOp::new(&[2, 3]);
        let parts = split.forward(&[&x]).unwrap();
        assert_eq!(parts.len(), 2);
        assert_eq!(parts[0].shape(), &Shape::new(&[2, 2]));
        let concat = ConcatOp::new(2);
        let back = concat.forward(&[&parts[0], &parts[1]]).unwrap();
        assert_eq!(&back[0], &x);
    }

    #[test]
    fn split_backward_is_concat() {
        let x = Tensor::from_vec([4, 1], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let split = SplitOp::new(&[1, 3]);
        let parts = split.forward(&[&x]).unwrap();
        let refs: Vec<&Tensor> = parts.iter().collect();
        let dx = split.backward(&refs, &[&x], &refs).unwrap();
        assert_eq!(&dx[0], &x);
    }

    #[test]
    fn split_sizes_must_cover() {
        let split = SplitOp::new(&[2, 2]);
        assert!(split.output_shapes(&[&Shape::new(&[5, 1])]).is_err());
        assert_eq!(split.num_outputs(), 2);
    }

    #[test]
    fn concat_backward_slices() {
        let a = Tensor::from_vec([1, 2], vec![1.0, 2.0]).unwrap();
        let b = Tensor::from_vec([2, 2], vec![3.0, 4.0, 5.0, 6.0]).unwrap();
        let op = ConcatOp::new(2);
        let y = op.forward(&[&a, &b]).unwrap();
        let grads = op.backward(&[&y[0]], &[&a, &b], &[&y[0]]).unwrap();
        assert_eq!(&grads[0], &a);
        assert_eq!(&grads[1], &b);
    }

    #[test]
    fn dropout_mask_is_deterministic_and_scaled() {
        let op = DropoutOp::new(0.5, 99);
        let x = Tensor::ones([1000]);
        let y1 = op.forward(&[&x]).unwrap();
        let y2 = op.forward(&[&x]).unwrap();
        assert_eq!(y1[0], y2[0], "same seed, same mask");
        // Kept elements scaled by 1/keep = 2.0; expectation preserved.
        let mean = y1[0].mean();
        assert!((mean - 1.0).abs() < 0.1, "mean {mean}");
        assert!(y1[0].data().iter().all(|&v| v == 0.0 || v == 2.0));
    }

    #[test]
    fn dropout_backward_uses_same_mask() {
        let op = DropoutOp::new(0.3, 5);
        let x = Tensor::ones([100]);
        let y = op.forward(&[&x]).unwrap();
        let g = Tensor::ones([100]);
        let dx = op.backward(&[&g], &[&x], &[&y[0]]).unwrap();
        // dx is nonzero exactly where y is nonzero
        for (a, b) in y[0].data().iter().zip(dx[0].data()) {
            assert_eq!(*a == 0.0, *b == 0.0);
        }
    }
}
