//! Global average pooling: `[N,C,H,W] -> [N,C]`.
//!
//! The standard ResNet classification head (the paper's ResNet-18/50
//! models end in one); included so the model zoo's residual networks can
//! use the real head instead of a strided max-pool.

use crate::operator::Operator;
use deep500_tensor::{Error, Result, Shape, Tensor};

/// Global average pooling over the spatial dimensions.
#[derive(Debug, Clone, Default)]
pub struct GlobalAvgPoolOp;

impl Operator for GlobalAvgPoolOp {
    fn name(&self) -> &str {
        "GlobalAvgPool"
    }
    fn num_inputs(&self) -> usize {
        1
    }
    fn output_shapes(&self, s: &[&Shape]) -> Result<Vec<Shape>> {
        if s[0].rank() != 4 {
            return Err(Error::ShapeMismatch(format!(
                "GlobalAvgPool requires rank-4 input, got {}",
                s[0]
            )));
        }
        Ok(vec![Shape::new(&[s[0].dim(0), s[0].dim(1)])])
    }
    fn forward(&self, inputs: &[&Tensor]) -> Result<Vec<Tensor>> {
        let x = inputs[0];
        let s = x.shape();
        if s.rank() != 4 {
            return Err(Error::ShapeMismatch(format!(
                "GlobalAvgPool requires rank-4 input, got {s}"
            )));
        }
        let (n, c, h, w) = (s.dim(0), s.dim(1), s.dim(2), s.dim(3));
        let plane = h * w;
        if plane == 0 {
            return Err(Error::Invalid("empty spatial dimensions".into()));
        }
        let mut out = Tensor::zeros([n, c]);
        let xd = x.data();
        for img in 0..n {
            for ch in 0..c {
                let base = (img * c + ch) * plane;
                let sum: f64 = xd[base..base + plane].iter().map(|&v| v as f64).sum();
                out.data_mut()[img * c + ch] = (sum / plane as f64) as f32;
            }
        }
        Ok(vec![out])
    }
    fn backward(
        &self,
        grad_outputs: &[&Tensor],
        inputs: &[&Tensor],
        _outputs: &[&Tensor],
    ) -> Result<Vec<Tensor>> {
        let x = inputs[0];
        let s = x.shape();
        let (n, c, h, w) = (s.dim(0), s.dim(1), s.dim(2), s.dim(3));
        let plane = h * w;
        let g = grad_outputs[0];
        let mut dx = Tensor::zeros(s.clone());
        for img in 0..n {
            for ch in 0..c {
                let share = g.data()[img * c + ch] / plane as f32;
                let base = (img * c + ch) * plane;
                for v in &mut dx.data_mut()[base..base + plane] {
                    *v = share;
                }
            }
        }
        Ok(vec![dx])
    }
    fn flops(&self, s: &[&Shape]) -> f64 {
        s[0].numel() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grad_check::test_gradient;
    use deep500_tensor::Xoshiro256StarStar;

    #[test]
    fn averages_each_plane() {
        let x = Tensor::from_vec(
            [1, 2, 2, 2],
            vec![1.0, 2.0, 3.0, 4.0, 10.0, 10.0, 10.0, 10.0],
        )
        .unwrap();
        let y = GlobalAvgPoolOp.forward(&[&x]).unwrap();
        assert_eq!(y[0].shape(), &Shape::new(&[1, 2]));
        assert_eq!(y[0].data(), &[2.5, 10.0]);
    }

    #[test]
    fn backward_distributes_uniformly() {
        let x = Tensor::ones([1, 1, 2, 2]);
        let y = GlobalAvgPoolOp.forward(&[&x]).unwrap();
        let g = Tensor::from_vec([1, 1], vec![4.0]).unwrap();
        let dx = GlobalAvgPoolOp.backward(&[&g], &[&x], &[&y[0]]).unwrap();
        assert_eq!(dx[0].data(), &[1.0, 1.0, 1.0, 1.0]);
    }

    #[test]
    fn gradient_check() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(1);
        let x = Tensor::rand_uniform([2, 3, 4, 4], -1.0, 1.0, &mut rng);
        let report = test_gradient(&GlobalAvgPoolOp, &[&x], 1e-3, 40).unwrap();
        assert!(report.passes(5e-3), "{}", report.max_rel_error);
    }

    #[test]
    fn rejects_bad_rank() {
        assert!(GlobalAvgPoolOp
            .output_shapes(&[&Shape::new(&[2, 3])])
            .is_err());
        assert!(GlobalAvgPoolOp.forward(&[&Tensor::zeros([2, 3])]).is_err());
    }
}
