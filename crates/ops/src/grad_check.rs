//! Numerical gradient checking — the paper's `test_gradient`.
//!
//! "We provide gradient validation through numerical differentiation
//! (Jacobian matrix evaluation using finite differences)" (§IV-C). For each
//! differentiable input element we perturb by ±ε, re-run the forward pass,
//! and compare the centered difference of a scalar projection of the
//! outputs against the operator's analytical `backward`.
//!
//! The projection trick: instead of the full Jacobian we check the
//! vector-Jacobian product against a fixed random cotangent `g`, i.e.
//! `d⟨g, f(x)⟩/dx == backward(g)`. This validates exactly what
//! backpropagation computes, in O(numel) forward passes.

use crate::operator::Operator;
use deep500_tensor::{Result, Tensor, Xoshiro256StarStar};

/// Report from one gradient check.
#[derive(Debug, Clone)]
pub struct GradCheckReport {
    /// Maximum relative error across all checked input elements.
    pub max_rel_error: f64,
    /// Index (input, element) of the worst element.
    pub worst: (usize, usize),
    /// Number of elements checked.
    pub checked: usize,
}

impl GradCheckReport {
    /// Whether the check passed at tolerance `tol`.
    pub fn passes(&self, tol: f64) -> bool {
        self.max_rel_error <= tol
    }
}

/// Scalar projection `⟨g, outputs⟩` used for directional finite differences.
fn project(outputs: &[Tensor], cotangents: &[Tensor]) -> f64 {
    outputs
        .iter()
        .zip(cotangents)
        .map(|(o, g)| {
            o.data()
                .iter()
                .zip(g.data())
                .map(|(&a, &b)| a as f64 * b as f64)
                .sum::<f64>()
        })
        .sum()
}

/// Check the analytical `backward` of `op` against central finite
/// differences at the point `inputs`, with step `epsilon`. At most
/// `max_elements_per_input` elements per input are perturbed (deterministic
/// stride subsampling) to bound cost on large tensors.
pub fn test_gradient(
    op: &dyn Operator,
    inputs: &[&Tensor],
    epsilon: f64,
    max_elements_per_input: usize,
) -> Result<GradCheckReport> {
    // Fixed random cotangent per output.
    let mut rng = Xoshiro256StarStar::seed_from_u64(0x0D50_06AD);
    let outputs = op.forward(inputs)?;
    let cotangents: Vec<Tensor> = outputs
        .iter()
        .map(|o| Tensor::rand_uniform(o.shape().clone(), -1.0, 1.0, &mut rng))
        .collect();

    // Analytical VJP.
    let cot_refs: Vec<&Tensor> = cotangents.iter().collect();
    let out_refs: Vec<&Tensor> = outputs.iter().collect();
    let analytic = op.backward(&cot_refs, inputs, &out_refs)?;

    let mut max_rel = 0.0f64;
    let mut worst = (0usize, 0usize);
    let mut checked = 0usize;

    for (ii, &input) in inputs.iter().enumerate() {
        if !op.input_differentiable(ii) {
            continue;
        }
        let n = input.numel();
        let stride = n.div_ceil(max_elements_per_input).max(1);
        for e in (0..n).step_by(stride) {
            let orig = input.data()[e];
            let mut perturbed: Vec<Tensor> = inputs.iter().map(|&t| t.clone()).collect();

            perturbed[ii].data_mut()[e] = orig + epsilon as f32;
            let refs: Vec<&Tensor> = perturbed.iter().collect();
            let plus = project(&op.forward(&refs)?, &cotangents);

            perturbed[ii].data_mut()[e] = orig - epsilon as f32;
            let refs: Vec<&Tensor> = perturbed.iter().collect();
            let minus = project(&op.forward(&refs)?, &cotangents);

            let numeric = (plus - minus) / (2.0 * epsilon);
            let analytic_v = analytic[ii].data()[e] as f64;
            let scale = numeric.abs().max(analytic_v.abs()).max(1.0);
            let rel = (numeric - analytic_v).abs() / scale;
            if rel > max_rel {
                max_rel = rel;
                worst = (ii, e);
            }
            checked += 1;
        }
    }
    Ok(GradCheckReport {
        max_rel_error: max_rel,
        worst,
        checked,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::{ActivationOp, SoftmaxOp};
    use crate::conv::{Conv2dOp, ConvAlgorithm};
    use crate::elementwise::BinaryOp;
    use crate::gemm::MatMulOp;
    use crate::linear::LinearOp;
    use crate::loss::{MseLossOp, SoftmaxCrossEntropyOp};
    use crate::norm_ops::BatchNormOp;
    use crate::pool::Pool2dOp;

    const TOL: f64 = 5e-3;
    const EPS: f64 = 1e-3;

    fn rng() -> Xoshiro256StarStar {
        Xoshiro256StarStar::seed_from_u64(12345)
    }

    #[test]
    fn matmul_gradient() {
        let mut r = rng();
        let a = Tensor::rand_uniform([3, 4], -1.0, 1.0, &mut r);
        let b = Tensor::rand_uniform([4, 2], -1.0, 1.0, &mut r);
        let report = test_gradient(&MatMulOp::default(), &[&a, &b], EPS, 100).unwrap();
        assert!(report.passes(TOL), "max rel {}", report.max_rel_error);
        assert!(report.checked > 0);
    }

    #[test]
    fn linear_gradient() {
        let mut r = rng();
        let x = Tensor::rand_uniform([2, 5], -1.0, 1.0, &mut r);
        let w = Tensor::rand_uniform([3, 5], -1.0, 1.0, &mut r);
        let b = Tensor::rand_uniform([3], -1.0, 1.0, &mut r);
        let report = test_gradient(&LinearOp::default(), &[&x, &w, &b], EPS, 100).unwrap();
        assert!(report.passes(TOL), "max rel {}", report.max_rel_error);
    }

    #[test]
    fn conv_gradient_all_algorithms() {
        let mut r = rng();
        let x = Tensor::rand_uniform([1, 2, 5, 5], -1.0, 1.0, &mut r);
        let w = Tensor::rand_uniform([3, 2, 3, 3], -0.5, 0.5, &mut r);
        let b = Tensor::rand_uniform([3], -0.1, 0.1, &mut r);
        for algo in [
            ConvAlgorithm::Direct,
            ConvAlgorithm::Im2col,
            ConvAlgorithm::Winograd,
        ] {
            let op = Conv2dOp::new(1, 1, algo);
            let report = test_gradient(&op, &[&x, &w, &b], EPS, 60).unwrap();
            assert!(
                report.passes(TOL),
                "{algo:?}: max rel {} at {:?}",
                report.max_rel_error,
                report.worst
            );
        }
    }

    #[test]
    fn activation_gradients() {
        let mut r = rng();
        // Keep away from ReLU's kink at 0 by shifting.
        let x = Tensor::rand_uniform([20], 0.1, 1.0, &mut r);
        for op in [
            ActivationOp::relu(),
            ActivationOp::sigmoid(),
            ActivationOp::tanh(),
        ] {
            let report = test_gradient(&op, &[&x], EPS, 50).unwrap();
            assert!(
                report.passes(TOL),
                "{}: {}",
                op.name(),
                report.max_rel_error
            );
        }
    }

    #[test]
    fn softmax_gradient() {
        let mut r = rng();
        let x = Tensor::rand_uniform([3, 5], -2.0, 2.0, &mut r);
        let report = test_gradient(&SoftmaxOp, &[&x], EPS, 50).unwrap();
        assert!(report.passes(TOL), "{}", report.max_rel_error);
    }

    #[test]
    fn pooling_gradients() {
        let mut r = rng();
        let x = Tensor::rand_uniform([1, 2, 6, 6], -1.0, 1.0, &mut r);
        for op in [
            Pool2dOp::max(2, 2),
            Pool2dOp::average(2, 2),
            Pool2dOp::median(3, 3),
        ] {
            let report = test_gradient(&op, &[&x], 1e-4, 80).unwrap();
            assert!(
                report.passes(TOL),
                "{}: {}",
                op.name(),
                report.max_rel_error
            );
        }
    }

    #[test]
    fn batchnorm_gradient() {
        let mut r = rng();
        let x = Tensor::rand_uniform([3, 2, 3, 3], -1.0, 1.0, &mut r);
        let gamma = Tensor::rand_uniform([2], 0.5, 1.5, &mut r);
        let beta = Tensor::rand_uniform([2], -0.5, 0.5, &mut r);
        let report = test_gradient(&BatchNormOp::default(), &[&x, &gamma, &beta], EPS, 60).unwrap();
        assert!(report.passes(1e-2), "max rel {}", report.max_rel_error);
    }

    #[test]
    fn loss_gradients() {
        let mut r = rng();
        let logits = Tensor::rand_uniform([4, 3], -1.0, 1.0, &mut r);
        let labels = Tensor::from_slice(&[0.0, 2.0, 1.0, 1.0]);
        let report = test_gradient(&SoftmaxCrossEntropyOp, &[&logits, &labels], EPS, 50).unwrap();
        assert!(report.passes(TOL), "xent: {}", report.max_rel_error);

        let a = Tensor::rand_uniform([10], -1.0, 1.0, &mut r);
        let b = Tensor::rand_uniform([10], -1.0, 1.0, &mut r);
        let report = test_gradient(&MseLossOp, &[&a, &b], EPS, 50).unwrap();
        assert!(report.passes(TOL), "mse: {}", report.max_rel_error);
    }

    #[test]
    fn binary_op_gradients() {
        let mut r = rng();
        let a = Tensor::rand_uniform([12], 0.5, 2.0, &mut r);
        let b = Tensor::rand_uniform([12], 0.5, 2.0, &mut r);
        for op in [
            BinaryOp::add(),
            BinaryOp::sub(),
            BinaryOp::mul(),
            BinaryOp::div(),
        ] {
            let report = test_gradient(&op, &[&a, &b], EPS, 30).unwrap();
            assert!(
                report.passes(TOL),
                "{}: {}",
                op.name(),
                report.max_rel_error
            );
        }
    }

    #[test]
    fn a_wrong_gradient_is_caught() {
        /// Deliberately wrong backward: returns 3x the correct gradient.
        struct WrongDouble;
        impl Operator for WrongDouble {
            fn name(&self) -> &str {
                "WrongDouble"
            }
            fn num_inputs(&self) -> usize {
                1
            }
            fn output_shapes(
                &self,
                s: &[&deep500_tensor::Shape],
            ) -> Result<Vec<deep500_tensor::Shape>> {
                Ok(vec![s[0].clone()])
            }
            fn forward(&self, inputs: &[&Tensor]) -> Result<Vec<Tensor>> {
                Ok(vec![inputs[0].scale(2.0)])
            }
            fn backward(
                &self,
                g: &[&Tensor],
                _i: &[&Tensor],
                _o: &[&Tensor],
            ) -> Result<Vec<Tensor>> {
                Ok(vec![g[0].scale(6.0)]) // should be 2.0
            }
        }
        let x = Tensor::from_slice(&[1.0, 2.0]);
        let report = test_gradient(&WrongDouble, &[&x], EPS, 10).unwrap();
        assert!(!report.passes(TOL), "wrong gradient must fail the check");
    }
}
