//! Loss operators.
//!
//! Losses close the training graph (the paper extends ONNX "with new
//! operations for computing loss functions"). Labels arrive as a rank-1
//! tensor of class indices stored as `f32` (the tensor substrate is
//! single-typed); label inputs are marked non-differentiable.

use crate::activation::SoftmaxOp;
use crate::operator::Operator;
use deep500_tensor::{Error, Result, Shape, Tensor};

/// Softmax + cross-entropy, fused for numerical stability (the standard
/// classification loss). Inputs: logits `[N, K]`, labels `[N]`. Output:
/// scalar mean loss.
#[derive(Debug, Clone, Default)]
pub struct SoftmaxCrossEntropyOp;

impl SoftmaxCrossEntropyOp {
    fn check(&self, s: &[&Shape]) -> Result<(usize, usize)> {
        if s[0].rank() != 2 || s[1].rank() != 1 || s[0].dim(0) != s[1].dim(0) {
            return Err(Error::ShapeMismatch(format!(
                "SoftmaxCrossEntropy: logits {} labels {}",
                s[0], s[1]
            )));
        }
        Ok((s[0].dim(0), s[0].dim(1)))
    }
}

impl Operator for SoftmaxCrossEntropyOp {
    fn name(&self) -> &str {
        "SoftmaxCrossEntropy"
    }
    fn num_inputs(&self) -> usize {
        2
    }
    fn output_shapes(&self, s: &[&Shape]) -> Result<Vec<Shape>> {
        self.check(s)?;
        Ok(vec![Shape::scalar()])
    }
    fn forward(&self, inputs: &[&Tensor]) -> Result<Vec<Tensor>> {
        let (logits, labels) = (inputs[0], inputs[1]);
        let (n, k) = self.check(&[logits.shape(), labels.shape()])?;
        let probs = SoftmaxOp::softmax_rows(logits)?;
        let mut loss = 0.0f64;
        for r in 0..n {
            let label = labels.data()[r] as usize;
            if label >= k {
                return Err(Error::Invalid(format!(
                    "label {label} out of range for {k} classes"
                )));
            }
            let p = probs.data()[r * k + label].max(1e-12);
            loss -= (p as f64).ln();
        }
        Ok(vec![Tensor::scalar((loss / n as f64) as f32)])
    }
    fn backward(
        &self,
        grad_outputs: &[&Tensor],
        inputs: &[&Tensor],
        _outputs: &[&Tensor],
    ) -> Result<Vec<Tensor>> {
        let (logits, labels) = (inputs[0], inputs[1]);
        let (n, k) = self.check(&[logits.shape(), labels.shape()])?;
        let upstream = grad_outputs[0].data()[0];
        // dL/dlogits = (softmax - onehot) / N
        let mut dx = SoftmaxOp::softmax_rows(logits)?;
        let dxd = dx.data_mut();
        for r in 0..n {
            let label = labels.data()[r] as usize;
            dxd[r * k + label] -= 1.0;
        }
        let scale = upstream / n as f32;
        for v in dxd.iter_mut() {
            *v *= scale;
        }
        // Labels are not differentiable.
        Ok(vec![dx, Tensor::zeros(labels.shape().clone())])
    }
    fn input_differentiable(&self, i: usize) -> bool {
        i == 0
    }
    fn flops(&self, s: &[&Shape]) -> f64 {
        deep500_metrics::flops::counts::elementwise(s[0].numel(), 5)
    }
}

/// Mean-squared-error loss: inputs prediction and target of equal shape,
/// output scalar `mean((a-b)^2)`.
#[derive(Debug, Clone, Default)]
pub struct MseLossOp;

impl Operator for MseLossOp {
    fn name(&self) -> &str {
        "MseLoss"
    }
    fn num_inputs(&self) -> usize {
        2
    }
    fn output_shapes(&self, s: &[&Shape]) -> Result<Vec<Shape>> {
        if s[0] != s[1] {
            return Err(Error::ShapeMismatch(format!(
                "MseLoss: {} vs {}",
                s[0], s[1]
            )));
        }
        Ok(vec![Shape::scalar()])
    }
    fn forward(&self, inputs: &[&Tensor]) -> Result<Vec<Tensor>> {
        let d = inputs[0].sub(inputs[1])?;
        let mse =
            d.data().iter().map(|&v| v as f64 * v as f64).sum::<f64>() / d.numel().max(1) as f64;
        Ok(vec![Tensor::scalar(mse as f32)])
    }
    fn backward(
        &self,
        grad_outputs: &[&Tensor],
        inputs: &[&Tensor],
        _outputs: &[&Tensor],
    ) -> Result<Vec<Tensor>> {
        let upstream = grad_outputs[0].data()[0];
        let n = inputs[0].numel() as f32;
        let d = inputs[0].sub(inputs[1])?;
        let da = d.scale(2.0 * upstream / n);
        let db = da.scale(-1.0);
        Ok(vec![da, db])
    }
    fn input_differentiable(&self, _i: usize) -> bool {
        true
    }
}

/// Classification accuracy of logits `[N, K]` against labels `[N]` — not an
/// operator but the helper behind the Level-2 accuracy metrics.
pub fn accuracy(logits: &Tensor, labels: &Tensor) -> Result<f64> {
    let preds = logits.argmax_rows()?;
    if preds.len() != labels.numel() {
        return Err(Error::ShapeMismatch(format!(
            "accuracy: {} predictions vs {} labels",
            preds.len(),
            labels.numel()
        )));
    }
    let correct = preds
        .iter()
        .zip(labels.data())
        .filter(|&(&p, &l)| p == l as usize)
        .count();
    Ok(correct as f64 / preds.len().max(1) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_prediction_has_low_loss() {
        let logits = Tensor::from_vec([2, 3], vec![10.0, 0.0, 0.0, 0.0, 10.0, 0.0]).unwrap();
        let labels = Tensor::from_slice(&[0.0, 1.0]);
        let loss = SoftmaxCrossEntropyOp.forward(&[&logits, &labels]).unwrap();
        assert!(loss[0].data()[0] < 1e-3);
    }

    #[test]
    fn uniform_logits_give_ln_k() {
        let logits = Tensor::zeros([1, 4]);
        let labels = Tensor::from_slice(&[2.0]);
        let loss = SoftmaxCrossEntropyOp.forward(&[&logits, &labels]).unwrap();
        assert!((loss[0].data()[0] - (4.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn xent_gradient_is_probs_minus_onehot() {
        let logits = Tensor::zeros([1, 2]);
        let labels = Tensor::from_slice(&[0.0]);
        let op = SoftmaxCrossEntropyOp;
        let out = op.forward(&[&logits, &labels]).unwrap();
        let g = Tensor::scalar(1.0);
        let grads = op.backward(&[&g], &[&logits, &labels], &[&out[0]]).unwrap();
        // softmax = [.5, .5]; onehot = [1, 0]; /N=1
        assert!((grads[0].data()[0] + 0.5).abs() < 1e-6);
        assert!((grads[0].data()[1] - 0.5).abs() < 1e-6);
        // labels non-differentiable
        assert!(grads[1].data().iter().all(|&v| v == 0.0));
        assert!(op.input_differentiable(0));
        assert!(!op.input_differentiable(1));
    }

    #[test]
    fn out_of_range_label_rejected() {
        let logits = Tensor::zeros([1, 2]);
        let labels = Tensor::from_slice(&[5.0]);
        assert!(SoftmaxCrossEntropyOp.forward(&[&logits, &labels]).is_err());
    }

    #[test]
    fn mse_known_value_and_gradient() {
        let a = Tensor::from_slice(&[1.0, 2.0]);
        let b = Tensor::from_slice(&[0.0, 0.0]);
        let out = MseLossOp.forward(&[&a, &b]).unwrap();
        assert!((out[0].data()[0] - 2.5).abs() < 1e-6);
        let g = Tensor::scalar(1.0);
        let grads = MseLossOp.backward(&[&g], &[&a, &b], &[&out[0]]).unwrap();
        assert_eq!(grads[0].data(), &[1.0, 2.0]); // 2*(a-b)/2
        assert_eq!(grads[1].data(), &[-1.0, -2.0]);
    }

    #[test]
    fn accuracy_counts_correct() {
        let logits = Tensor::from_vec([3, 2], vec![0.9, 0.1, 0.2, 0.8, 0.6, 0.4]).unwrap();
        let labels = Tensor::from_slice(&[0.0, 1.0, 1.0]);
        let acc = accuracy(&logits, &labels).unwrap();
        assert!((acc - 2.0 / 3.0).abs() < 1e-12);
    }
}
