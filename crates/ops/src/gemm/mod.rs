//! General matrix-matrix multiplication kernels.
//!
//! DeepBench's two operator families are GEMM and convolution; GEMM also
//! backs the fully-connected layer and the im2col convolution algorithm.
//! Four kernels of increasing quality are provided:
//!
//! * [`Algorithm::Naive`] — triple loop in `ijk` order (poor locality);
//!   stands in for an unoptimized reference,
//! * [`Algorithm::Blocked`] — cache-blocked `ikj` micro-kernels,
//! * [`Algorithm::Parallel`] — the blocked kernel parallelized across row
//!   panels with rayon,
//! * [`Algorithm::Packed`] — the default: a BLIS-style register-tiled
//!   microkernel over packed panels with cache-aware `MC/KC/NC` dispatch
//!   and rayon row-panel parallelism (see [`packed`]); this is the
//!   "cuDNN-class" kernel that the simulated frameworks, the DeepBench
//!   baseline, and both graph executors call by default.
//!
//! All kernels compute `C = A * B` for row-major `A (M x K)`, `B (K x N)`,
//! `C (M x N)`. The first three accumulate each output element in plain
//! ascending-`p` order and serve as the bit-exact reference tiers; the
//! packed tier sums the same products with a different grouping (per-`KC`
//! register partials, FMA where the host supports it), giving the paper's
//! cross-framework `ℓ∞` comparisons a genuinely distinct accumulation
//! order to measure.

pub mod packed;

use deep500_tensor::{Error, Result, Tensor};
use rayon::prelude::*;

pub use packed::{Blocking, Epilogue, MR, NR};

/// GEMM kernel selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Algorithm {
    Naive,
    Blocked,
    Parallel,
    #[default]
    Packed,
}

/// Cache-block edge for the blocked kernels (elements).
const BLOCK: usize = 64;

/// Below this many multiply-accumulates (`m * n * k`), parallel dispatch
/// costs more than it saves and the parallel entry points run serially.
/// Shared by [`gemm`]'s `Parallel`/`Packed` algorithms and the transposed
/// backward kernels [`matmul_at_b`] / [`matmul_a_bt`].
pub const PAR_THRESHOLD: usize = 64 * 64 * 64;

/// `C = A * B` with the selected algorithm; buffers are row-major slices.
/// `C`'s prior contents are ignored (the accumulate-style kernels clear it
/// first). Callers holding a freshly zeroed `C` should use [`gemm_into`].
pub fn gemm(algo: Algorithm, m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    match algo {
        Algorithm::Naive => {
            debug_assert_eq!(a.len(), m * k);
            debug_assert_eq!(b.len(), k * n);
            debug_assert_eq!(c.len(), m * n);
            gemm_naive(m, n, k, a, b, c);
        }
        _ => {
            c.iter_mut().for_each(|v| *v = 0.0);
            gemm_into(algo, m, n, k, a, b, c);
        }
    }
}

/// `C += A * B` under the explicit **zeroed-`C` contract**: `c` must hold
/// zeros on entry (the accumulate-style kernels add into it), so callers
/// with freshly zeroed buffers — [`Tensor::zeros`], pool acquisitions,
/// `vec![0.0; ..]` — touch the `M x N` output exactly once instead of
/// paying [`gemm`]'s redundant clearing pass.
pub fn gemm_into(
    algo: Algorithm,
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(c.len(), m * n);
    match algo {
        Algorithm::Naive => gemm_naive(m, n, k, a, b, c),
        Algorithm::Blocked => gemm_blocked_acc(m, n, k, a, b, c),
        Algorithm::Parallel => gemm_parallel_acc(m, n, k, a, b, c),
        Algorithm::Packed => packed::gemm_packed_into(m, n, k, a, false, b, false, c),
    }
}

fn gemm_naive(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for p in 0..k {
                acc += a[i * k + p] * b[p * n + j];
            }
            c[i * n + j] = acc;
        }
    }
}

/// Serial cache-blocked kernel: `ikj` inner order so the innermost loop
/// streams both `B` and `C` rows (unit stride), blocked to keep panels in
/// cache. **Accumulates** into `c` (zeroed-`C` contract of [`gemm_into`]).
fn gemm_blocked_acc(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    for ib in (0..m).step_by(BLOCK) {
        let ie = (ib + BLOCK).min(m);
        for pb in (0..k).step_by(BLOCK) {
            let pe = (pb + BLOCK).min(k);
            for jb in (0..n).step_by(BLOCK) {
                let je = (jb + BLOCK).min(n);
                for i in ib..ie {
                    for p in pb..pe {
                        let aval = a[i * k + p];
                        let brow = &b[p * n + jb..p * n + je];
                        let crow = &mut c[i * n + jb..i * n + je];
                        for (cv, &bv) in crow.iter_mut().zip(brow) {
                            *cv += aval * bv;
                        }
                    }
                }
            }
        }
    }
}

/// The blocked kernel parallelized over `C`'s row panels (zeroed-`C`
/// contract).
fn gemm_parallel_acc(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    if m * n * k < PAR_THRESHOLD {
        return gemm_blocked_acc(m, n, k, a, b, c);
    }
    c.par_chunks_mut(BLOCK * n)
        .enumerate()
        .for_each(|(chunk, cpanel)| {
            let ib = chunk * BLOCK;
            let rows = cpanel.len() / n;
            let apanel = &a[ib * k..(ib + rows) * k];
            gemm_blocked_acc(rows, n, k, apanel, b, cpanel);
        });
}

/// Tensor-level GEMM: `A [M x K] * B [K x N] -> C [M x N]`.
pub fn matmul(algo: Algorithm, a: &Tensor, b: &Tensor) -> Result<Tensor> {
    if a.shape().rank() != 2 || b.shape().rank() != 2 {
        return Err(Error::ShapeMismatch(format!(
            "matmul requires rank-2 operands, got {} and {}",
            a.shape(),
            b.shape()
        )));
    }
    let (m, ka) = (a.shape().dim(0), a.shape().dim(1));
    let (kb, n) = (b.shape().dim(0), b.shape().dim(1));
    if ka != kb {
        return Err(Error::ShapeMismatch(format!(
            "matmul inner dims: {} vs {}",
            ka, kb
        )));
    }
    let mut c = Tensor::zeros([m, n]);
    gemm_into(algo, m, n, ka, a.data(), b.data(), c.data_mut());
    Ok(c)
}

/// [`matmul`] with a fused write-back [`Epilogue`]. Under `Packed` the
/// epilogue runs inside the final `KC`-block store (zero extra memory
/// traffic); the other tiers apply it as a separate pass with the identical
/// per-element float sequence, so all tiers stay bit-identical to an
/// unfused GEMM followed by separate bias/ReLU passes.
pub fn matmul_with_epilogue(
    algo: Algorithm,
    a: &Tensor,
    b: &Tensor,
    epilogue: Epilogue<'_>,
) -> Result<Tensor> {
    if a.shape().rank() != 2 || b.shape().rank() != 2 {
        return Err(Error::ShapeMismatch(format!(
            "matmul requires rank-2 operands, got {} and {}",
            a.shape(),
            b.shape()
        )));
    }
    let (m, ka) = (a.shape().dim(0), a.shape().dim(1));
    let (kb, n) = (b.shape().dim(0), b.shape().dim(1));
    if ka != kb {
        return Err(Error::ShapeMismatch(format!(
            "matmul inner dims: {} vs {}",
            ka, kb
        )));
    }
    let mut c = Tensor::zeros([m, n]);
    match algo {
        Algorithm::Packed => {
            packed::gemm_packed_into_epilogue(
                m,
                n,
                ka,
                a.data(),
                false,
                b.data(),
                false,
                c.data_mut(),
                epilogue,
            );
        }
        _ => {
            gemm_into(algo, m, n, ka, a.data(), b.data(), c.data_mut());
            epilogue.apply_matrix(c.data_mut(), n);
        }
    }
    Ok(c)
}

/// `A^T * B` for rows `ib..ib+rows` of the result; `cpanel` holds exactly
/// those rows. Per output element the `p` reduction ascends, matching the
/// historical serial kernel bit for bit regardless of panelling. Every
/// product participates — no zero-skip shortcut, so `0 * NaN` / `0 * inf`
/// propagate as IEEE 754 demands and the hot loop stays branch-free.
fn at_b_panel(ib: usize, m: usize, n: usize, k: usize, ad: &[f32], bd: &[f32], cpanel: &mut [f32]) {
    let rows = cpanel.len() / n;
    for (ri, crow) in cpanel.chunks_mut(n).enumerate() {
        let i = ib + ri;
        debug_assert!(i < ib + rows);
        for p in 0..k {
            let av = ad[p * m + i];
            let brow = &bd[p * n..(p + 1) * n];
            for (cv, &bv) in crow.iter_mut().zip(brow) {
                *cv += av * bv;
            }
        }
    }
}

/// `A^T * B` without materializing the transpose: `A [K x M]`, `B [K x N]`,
/// result `[M x N]`. Used by FC/conv backward passes.
///
/// `Naive`/`Blocked` run the serial panel kernel (bit-exact reference),
/// `Parallel` distributes the same panel kernel over rayon row panels above
/// [`PAR_THRESHOLD`] (bit-identical to serial), and `Packed` absorbs the
/// transposition into the A-panel pack gather so the backward product runs
/// the same register-tiled microkernel as the forward GEMM.
pub fn matmul_at_b_with(algo: Algorithm, a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (k, m) = (a.shape().dim(0), a.shape().dim(1));
    let (kb, n) = (b.shape().dim(0), b.shape().dim(1));
    if k != kb {
        return Err(Error::ShapeMismatch(format!(
            "A^T*B inner dims: {k} vs {kb}"
        )));
    }
    let mut c = Tensor::zeros([m, n]);
    let (ad, bd, cd) = (a.data(), b.data(), c.data_mut());
    match algo {
        Algorithm::Packed => packed::gemm_packed_into(m, n, k, ad, true, bd, false, cd),
        Algorithm::Parallel if m * n * k >= PAR_THRESHOLD => {
            cd.par_chunks_mut(BLOCK * n)
                .enumerate()
                .for_each(|(chunk, cpanel)| at_b_panel(chunk * BLOCK, m, n, k, ad, bd, cpanel));
        }
        _ => at_b_panel(0, m, n, k, ad, bd, cd),
    }
    Ok(c)
}

/// `A^T * B` with the default algorithm ([`Algorithm::Packed`]).
pub fn matmul_at_b(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    matmul_at_b_with(Algorithm::default(), a, b)
}

/// `A * B^T` for rows `ib..` of the result (each row is an independent set
/// of dot products, so panelling cannot change the accumulation order).
fn a_bt_panel(ib: usize, n: usize, k: usize, ad: &[f32], bd: &[f32], cpanel: &mut [f32]) {
    for (ri, crow) in cpanel.chunks_mut(n).enumerate() {
        let i = ib + ri;
        let arow = &ad[i * k..(i + 1) * k];
        for (j, cv) in crow.iter_mut().enumerate() {
            let brow = &bd[j * k..(j + 1) * k];
            *cv = arow.iter().zip(brow).map(|(&x, &y)| x * y).sum();
        }
    }
}

/// `A * B^T`: `A [M x K]`, `B [N x K]`, result `[M x N]`. Tier selection
/// mirrors [`matmul_at_b_with`]; under `Packed` the transposition is
/// absorbed into the B-panel pack gather.
pub fn matmul_a_bt_with(algo: Algorithm, a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (m, k) = (a.shape().dim(0), a.shape().dim(1));
    let (n, kb) = (b.shape().dim(0), b.shape().dim(1));
    if k != kb {
        return Err(Error::ShapeMismatch(format!(
            "A*B^T inner dims: {k} vs {kb}"
        )));
    }
    let mut c = Tensor::zeros([m, n]);
    let (ad, bd, cd) = (a.data(), b.data(), c.data_mut());
    match algo {
        Algorithm::Packed => packed::gemm_packed_into(m, n, k, ad, false, bd, true, cd),
        Algorithm::Parallel if m * n * k >= PAR_THRESHOLD => {
            cd.par_chunks_mut(BLOCK * n)
                .enumerate()
                .for_each(|(chunk, cpanel)| a_bt_panel(chunk * BLOCK, n, k, ad, bd, cpanel));
        }
        _ => a_bt_panel(0, n, k, ad, bd, cd),
    }
    Ok(c)
}

/// `A * B^T` with the default algorithm ([`Algorithm::Packed`]).
pub fn matmul_a_bt(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    matmul_a_bt_with(Algorithm::default(), a, b)
}

/// [`matmul_a_bt_with`] with a fused write-back [`Epilogue`] — the
/// fully-connected forward product (`y = x * W^T` plus bias/activation in
/// one pass). Fusion/fallback semantics as in [`matmul_with_epilogue`].
pub fn matmul_a_bt_with_epilogue(
    algo: Algorithm,
    a: &Tensor,
    b: &Tensor,
    epilogue: Epilogue<'_>,
) -> Result<Tensor> {
    let (m, k) = (a.shape().dim(0), a.shape().dim(1));
    let (n, kb) = (b.shape().dim(0), b.shape().dim(1));
    if k != kb {
        return Err(Error::ShapeMismatch(format!(
            "A*B^T inner dims: {k} vs {kb}"
        )));
    }
    let mut c = Tensor::zeros([m, n]);
    let (ad, bd, cd) = (a.data(), b.data(), c.data_mut());
    match algo {
        Algorithm::Packed => {
            packed::gemm_packed_into_epilogue(m, n, k, ad, false, bd, true, cd, epilogue);
        }
        Algorithm::Parallel if m * n * k >= PAR_THRESHOLD => {
            cd.par_chunks_mut(BLOCK * n)
                .enumerate()
                .for_each(|(chunk, cpanel)| a_bt_panel(chunk * BLOCK, n, k, ad, bd, cpanel));
            epilogue.apply_matrix(cd, n);
        }
        _ => {
            a_bt_panel(0, n, k, ad, bd, cd);
            epilogue.apply_matrix(cd, n);
        }
    }
    Ok(c)
}

/// The `MatMul` operator: `C = A * B`, optionally with a ReLU fused into
/// the GEMM write-back (`epilogue = "relu"` attribute, installed by the
/// graph crate's epilogue-fusion transform).
#[derive(Debug, Clone, Default)]
pub struct MatMulOp {
    pub algo: Algorithm,
    /// Fold `max(x, 0)` into the write-back. Bit-identical to a separate
    /// `Relu` node (same float sequence; NaN maps to 0 either way).
    pub relu: bool,
}

impl MatMulOp {
    pub fn new(algo: Algorithm) -> Self {
        MatMulOp { algo, relu: false }
    }

    /// Enable the fused ReLU epilogue.
    pub fn with_relu(mut self, relu: bool) -> Self {
        self.relu = relu;
        self
    }
}

impl crate::operator::Operator for MatMulOp {
    fn name(&self) -> &str {
        "MatMul"
    }
    fn num_inputs(&self) -> usize {
        2
    }
    fn output_shapes(&self, s: &[&deep500_tensor::Shape]) -> Result<Vec<deep500_tensor::Shape>> {
        if s[0].rank() != 2 || s[1].rank() != 2 || s[0].dim(1) != s[1].dim(0) {
            return Err(Error::ShapeMismatch(format!("MatMul: {} x {}", s[0], s[1])));
        }
        Ok(vec![deep500_tensor::Shape::new(&[
            s[0].dim(0),
            s[1].dim(1),
        ])])
    }
    fn forward(&self, inputs: &[&Tensor]) -> Result<Vec<Tensor>> {
        let epilogue = if self.relu {
            Epilogue::Relu
        } else {
            Epilogue::None
        };
        Ok(vec![matmul_with_epilogue(
            self.algo, inputs[0], inputs[1], epilogue,
        )?])
    }
    fn backward(
        &self,
        grad_outputs: &[&Tensor],
        inputs: &[&Tensor],
        outputs: &[&Tensor],
    ) -> Result<Vec<Tensor>> {
        let g = grad_outputs[0];
        // With the fused ReLU, first mask the incoming gradient exactly
        // like a standalone Relu node's backward: g * (y > 0 ? 1 : 0),
        // where y is this op's (post-ReLU) output.
        let masked;
        let g = if self.relu {
            let y = outputs[0];
            masked = g.zip(y, |gv, yv| gv * if yv > 0.0 { 1.0 } else { 0.0 })?;
            &masked
        } else {
            g
        };
        // dA = dC * B^T ; dB = A^T * dC
        let da = matmul_a_bt_with(self.algo, g, inputs[1])?;
        let db = matmul_at_b_with(self.algo, inputs[0], g)?;
        Ok(vec![da, db])
    }
    fn flops(&self, s: &[&deep500_tensor::Shape]) -> f64 {
        deep500_metrics::flops::counts::gemm(s[0].dim(0), s[1].dim(1), s[0].dim(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::Operator;
    use deep500_metrics::norms::linf_diff;
    use deep500_tensor::rng::Xoshiro256StarStar;

    const ALL: [Algorithm; 4] = [
        Algorithm::Naive,
        Algorithm::Blocked,
        Algorithm::Parallel,
        Algorithm::Packed,
    ];

    fn reference(m: usize, n: usize, k: usize, a: &[f32], b: &[f32]) -> Vec<f32> {
        let mut c = vec![0.0f32; m * n];
        gemm_naive(m, n, k, a, b, &mut c);
        c
    }

    #[test]
    fn identity_multiplication() {
        let a = Tensor::from_vec([2, 2], vec![1.0, 0.0, 0.0, 1.0]).unwrap();
        let b = Tensor::from_vec([2, 2], vec![3.0, 4.0, 5.0, 6.0]).unwrap();
        for algo in ALL {
            assert_eq!(matmul(algo, &a, &b).unwrap(), b);
        }
    }

    #[test]
    fn all_kernels_agree_on_odd_sizes() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(1);
        for (m, n, k) in [(1, 1, 1), (3, 5, 7), (65, 33, 129), (130, 70, 64)] {
            let a = Tensor::rand_uniform([m, k], -1.0, 1.0, &mut rng);
            let b = Tensor::rand_uniform([k, n], -1.0, 1.0, &mut rng);
            let reference = reference(m, n, k, a.data(), b.data());
            for algo in [Algorithm::Blocked, Algorithm::Parallel, Algorithm::Packed] {
                let c = matmul(algo, &a, &b).unwrap();
                let err = linf_diff(c.data(), &reference);
                assert!(err < 1e-3, "{algo:?} {m}x{n}x{k}: linf {err}");
            }
        }
    }

    #[test]
    fn packed_agrees_on_block_and_tile_edges() {
        // Shapes straddling the cache-block edge (64) and the microkernel
        // tile edges (MR/NR = 8): 1, BLOCK-1, BLOCK, BLOCK+1 in every role.
        let mut rng = Xoshiro256StarStar::seed_from_u64(5);
        let edges = [1usize, 7, 8, 9, BLOCK - 1, BLOCK, BLOCK + 1];
        for &m in &edges {
            for &n in &edges {
                for &k in &[1usize, BLOCK - 1, BLOCK, BLOCK + 1] {
                    let a = Tensor::rand_uniform([m, k], -1.0, 1.0, &mut rng);
                    let b = Tensor::rand_uniform([k, n], -1.0, 1.0, &mut rng);
                    let naive = matmul(Algorithm::Naive, &a, &b).unwrap();
                    let packed = matmul(Algorithm::Packed, &a, &b).unwrap();
                    let err = linf_diff(packed.data(), naive.data());
                    assert!(err < 1e-3, "{m}x{n}x{k}: linf {err}");
                }
            }
        }
    }

    #[test]
    fn gemm_into_skips_the_clear_but_matches_gemm() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(9);
        let (m, n, k) = (33, 17, 65);
        let a = Tensor::rand_uniform([m, k], -1.0, 1.0, &mut rng);
        let b = Tensor::rand_uniform([k, n], -1.0, 1.0, &mut rng);
        for algo in ALL {
            let mut dirty = vec![f32::NAN; m * n];
            gemm(algo, m, n, k, a.data(), b.data(), &mut dirty);
            let mut zeroed = vec![0.0f32; m * n];
            gemm_into(algo, m, n, k, a.data(), b.data(), &mut zeroed);
            assert_eq!(dirty, zeroed, "{algo:?}: zeroed-C contract diverged");
        }
    }

    #[test]
    fn shape_errors() {
        let a = Tensor::zeros([2, 3]);
        let b = Tensor::zeros([4, 2]);
        assert!(matmul(Algorithm::Naive, &a, &b).is_err());
        let v = Tensor::zeros([3]);
        assert!(matmul(Algorithm::Naive, &v, &b).is_err());
    }

    #[test]
    fn transposed_variants_match_explicit_transpose() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(2);
        let a = Tensor::rand_uniform([4, 3], -1.0, 1.0, &mut rng);
        let b = Tensor::rand_uniform([4, 5], -1.0, 1.0, &mut rng);
        let explicit = matmul(Algorithm::Naive, &a.transpose2d().unwrap(), &b).unwrap();
        for algo in ALL {
            let atb = matmul_at_b_with(algo, &a, &b).unwrap();
            assert!(atb.approx_eq(&explicit, 1e-5), "{algo:?}");
        }

        let c = Tensor::rand_uniform([5, 3], -1.0, 1.0, &mut rng);
        let d = Tensor::rand_uniform([6, 3], -1.0, 1.0, &mut rng);
        let explicit = matmul(Algorithm::Naive, &c, &d.transpose2d().unwrap()).unwrap();
        for algo in ALL {
            let abt = matmul_a_bt_with(algo, &c, &d).unwrap();
            assert!(abt.approx_eq(&explicit, 1e-5), "{algo:?}");
        }
    }

    #[test]
    fn transposed_kernels_propagate_nan_and_inf() {
        // A zero in A must not short-circuit past a NaN/inf in B:
        // IEEE 754 says 0 * NaN = NaN and 0 * inf = NaN, so the affected
        // outputs are poisoned. (A skip-on-zero shortcut here once
        // silently produced finite results.)
        let a = Tensor::from_vec([2, 2], vec![0.0, 1.0, 1.0, 1.0]).unwrap(); // A [K x M]
        let mut bvals = vec![1.0f32; 6];
        bvals[0] = f32::NAN; // B[0, 0]
        bvals[1] = f32::INFINITY; // B[0, 1]
        let b = Tensor::from_vec([2, 3], bvals).unwrap(); // B [K x N]
        for algo in ALL {
            let c = matmul_at_b_with(algo, &a, &b).unwrap();
            // Row 0 of C = 0 * B[0, :] + 1 * B[1, :]: both 0 * NaN and
            // 0 * inf must collapse to NaN.
            assert!(c.data()[0].is_nan(), "{algo:?}: 0 * NaN was dropped");
            assert!(c.data()[1].is_nan(), "{algo:?}: 0 * inf was dropped");
            assert_eq!(c.data()[2], 1.0, "{algo:?}");
        }

        // Same property through A * B^T with the NaN on the other side.
        let e = Tensor::from_vec([1, 2], vec![0.0, 1.0]).unwrap();
        let f = Tensor::from_vec([1, 2], vec![f32::NAN, 1.0]).unwrap();
        for algo in ALL {
            let c = matmul_a_bt_with(algo, &e, &f).unwrap();
            assert!(c.data()[0].is_nan(), "{algo:?}: 0 * NaN was dropped");
        }
    }

    #[test]
    fn matmul_op_backward_matches_manual() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(3);
        let a = Tensor::rand_uniform([3, 4], -1.0, 1.0, &mut rng);
        let b = Tensor::rand_uniform([4, 2], -1.0, 1.0, &mut rng);
        let op = MatMulOp::default();
        let out = op.forward(&[&a, &b]).unwrap();
        let g = Tensor::ones([3, 2]);
        let grads = op.backward(&[&g], &[&a, &b], &[&out[0]]).unwrap();
        assert_eq!(grads[0].shape(), a.shape());
        assert_eq!(grads[1].shape(), b.shape());
        // dA = G * B^T with G = ones => row sums of B^T = col sums broadcast
        let expected_da = matmul(Algorithm::Naive, &g, &b.transpose2d().unwrap()).unwrap();
        assert!(grads[0].approx_eq(&expected_da, 1e-5));
    }

    #[test]
    fn transposed_kernels_parallel_path_is_bit_identical() {
        // Sizes straddling PAR_THRESHOLD: the parallel row-panel path must
        // reproduce the serial panel bit for bit (same per-element
        // reduction order, only the rows are distributed).
        let mut rng = Xoshiro256StarStar::seed_from_u64(7);
        let (m, n, k) = (130, 70, 64); // m*n*k > PAR_THRESHOLD
        assert!(m * n * k >= PAR_THRESHOLD);

        let a = Tensor::rand_uniform([k, m], -1.0, 1.0, &mut rng);
        let b = Tensor::rand_uniform([k, n], -1.0, 1.0, &mut rng);
        let par = matmul_at_b_with(Algorithm::Parallel, &a, &b).unwrap();
        let mut serial = Tensor::zeros([m, n]);
        at_b_panel(0, m, n, k, a.data(), b.data(), serial.data_mut());
        assert_eq!(par.data(), serial.data());

        let c = Tensor::rand_uniform([m, k], -1.0, 1.0, &mut rng);
        let d = Tensor::rand_uniform([n, k], -1.0, 1.0, &mut rng);
        let par = matmul_a_bt_with(Algorithm::Parallel, &c, &d).unwrap();
        let mut serial = Tensor::zeros([m, n]);
        a_bt_panel(0, n, k, c.data(), d.data(), serial.data_mut());
        assert_eq!(par.data(), serial.data());
    }

    #[test]
    fn flops_declared() {
        let op = MatMulOp::default();
        let s1 = deep500_tensor::Shape::new(&[2, 3]);
        let s2 = deep500_tensor::Shape::new(&[3, 4]);
        assert_eq!(op.flops(&[&s1, &s2]), 48.0);
    }
}

#[cfg(test)]
mod properties {
    use super::*;
    use proptest::prelude::*;

    /// Unfused reference: plain GEMM, then the epilogue as a separate
    /// elementwise pass written out longhand — the float sequence a
    /// standalone bias-add / `Relu` node pair would execute.
    fn unfused(algo: Algorithm, a: &Tensor, b: &Tensor, ep: &Epilogue<'_>) -> Tensor {
        let mut c = matmul(algo, a, b).unwrap();
        let n = c.shape().dim(1);
        for (i, v) in c.data_mut().iter_mut().enumerate() {
            let j = i % n;
            match *ep {
                Epilogue::None => {}
                Epilogue::Bias(bias) => *v += bias[j],
                Epilogue::Relu => *v = v.max(0.0),
                Epilogue::BiasRelu(bias) => *v = (*v + bias[j]).max(0.0),
                Epilogue::BiasRow(bias) => *v += bias[i / n],
                Epilogue::BiasRowRelu(bias) => *v = (*v + bias[i / n]).max(0.0),
            }
        }
        c
    }

    /// Inject a non-finite value at `pos` (wrapped) so NaN/inf paths are
    /// exercised in every case.
    fn poison(vals: &mut [f32], pos: usize, kind: u8) {
        let i = pos % vals.len();
        vals[i] = match kind % 3 {
            0 => f32::NAN,
            1 => f32::INFINITY,
            _ => f32::NEG_INFINITY,
        };
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Fused epilogue write-back is bit-identical to GEMM + separate
        /// epilogue pass on every kernel tier, including NaN and ±inf
        /// propagation (compared on raw bit patterns; `max` maps NaN to 0
        /// in both paths).
        #[test]
        fn fused_epilogue_matches_unfused_bitwise(
            m in 1usize..10,
            n in 1usize..10,
            k in 1usize..10,
            seed in 0u64..1000,
            pos in 0usize..64,
            kind in 0u8..3,
            which in 0u8..4,
        ) {
            let mut rng = deep500_tensor::rng::Xoshiro256StarStar::seed_from_u64(seed);
            let mut a = Tensor::rand_uniform([m, k], -2.0, 2.0, &mut rng);
            let b = Tensor::rand_uniform([k, n], -2.0, 2.0, &mut rng);
            let mut bias = vec![0.0f32; n];
            for v in bias.iter_mut() {
                *v = rng.next_f32() - 0.5;
            }
            poison(a.data_mut(), pos, kind);
            if kind == 0 {
                poison(&mut bias, pos, kind); // NaN through the bias path too
            }
            let ep = match which % 4 {
                0 => Epilogue::None,
                1 => Epilogue::Bias(&bias),
                2 => Epilogue::Relu,
                _ => Epilogue::BiasRelu(&bias),
            };
            for algo in [
                Algorithm::Naive,
                Algorithm::Blocked,
                Algorithm::Parallel,
                Algorithm::Packed,
            ] {
                let fused = matmul_with_epilogue(algo, &a, &b, ep).unwrap();
                let reference = unfused(algo, &a, &b, &ep);
                let fb: Vec<u32> = fused.data().iter().map(|v| v.to_bits()).collect();
                let rb: Vec<u32> = reference.data().iter().map(|v| v.to_bits()).collect();
                prop_assert_eq!(&fb, &rb, "algo {:?}, epilogue {:?}", algo, ep);
            }
            // The transposed entry point used by Linear forward
            // (x * W^T) under the same epilogue.
            let bt = Tensor::rand_uniform([n, k], -2.0, 2.0, &mut rng);
            let fused = matmul_a_bt_with_epilogue(Algorithm::Packed, &a, &bt, ep).unwrap();
            let mut reference = matmul_a_bt_with(Algorithm::Packed, &a, &bt).unwrap();
            let cols = reference.shape().dim(1);
            for (i, v) in reference.data_mut().iter_mut().enumerate() {
                let j = i % cols;
                match ep {
                    Epilogue::None => {}
                    Epilogue::Bias(bias) => *v += bias[j],
                    Epilogue::Relu => *v = v.max(0.0),
                    Epilogue::BiasRelu(bias) => *v = (*v + bias[j]).max(0.0),
                    Epilogue::BiasRow(bias) => *v += bias[i / cols],
                    Epilogue::BiasRowRelu(bias) => *v = (*v + bias[i / cols]).max(0.0),
                }
            }
            let fb: Vec<u32> = fused.data().iter().map(|v| v.to_bits()).collect();
            let rb: Vec<u32> = reference.data().iter().map(|v| v.to_bits()).collect();
            prop_assert_eq!(&fb, &rb, "a_bt epilogue {:?}", ep);
        }
    }
}
