//! The `Algorithm::Packed` tier: register-tiled microkernel over packed
//! panels with cache-aware dispatch.
//!
//! Structure follows the BLIS/GotoBLAS decomposition. The problem is
//! blocked three ways by a [`Blocking`] plan chosen from the shape:
//!
//! ```text
//! for jc in 0..N step NC          // B macro-panel   (~L3)
//!   for pc in 0..K step KC        // pack B[pc.., jc..] once   (shared)
//!     parfor ic in 0..M step MC   // pack A[ic.., pc..] per worker (~L2)
//!       for jr in 0..NC step NR   // B sliver resident in L1
//!         for ir in 0..MC step MR //   MR x NR microkernel
//! ```
//!
//! Panels are copied into contiguous scratch drawn from the tensor
//! [`BufferPool`](deep500_tensor::BufferPool) (`scratch_zeroed` /
//! `recycle_scratch`, rounded to whole cache lines): `A` slivers are laid
//! out `[p][i]` (`MR` consecutive rows per `K` step) and `B` slivers
//! `[p][j]`, so the microkernel streams both with unit stride regardless
//! of the source operand's layout. That makes the *transposed* backward
//! products (`AᵀB`, `ABᵀ`) free: transposition is absorbed into the pack
//! gather and the same microkernel runs unchanged.
//!
//! The microkernel keeps an `MR x NR` accumulator block in registers
//! across the whole `KC` reduction — the portable version is written so
//! LLVM autovectorizes it at whatever SIMD width the target offers, and on
//! `x86_64` an explicit 8-wide AVX2+FMA variant is selected at runtime
//! when the CPU supports it (`#[target_feature]`-gated, so the default
//! baseline build still carries it).
//!
//! Unsafe-code policy: this module is the workspace's only vendor-SIMD
//! site. Every `unsafe` block carries a `// SAFETY:` comment (enforced by
//! the workspace `clippy::undocumented_unsafe_blocks` deny), and the AVX2
//! kernel is reachable *only* through [`microkernel`]'s runtime CPUID
//! check — see its docs for the dispatch invariant. Under miri the AVX2
//! path is compiled out entirely (`cfg(not(miri))`), so
//! `cargo miri test -p deep500-ops gemm` checks the packing and the
//! portable kernel, which share all slice-bounds reasoning with the SIMD
//! variant.
//!
//! Determinism: parallelism is only over disjoint `C` row panels and each
//! output element's `K` reduction ascends in `p` (register-summed per `KC`
//! block, block partials added to `C` in ascending `pc` order), so results
//! are bit-identical across thread counts — but the *grouping* of that sum
//! differs from the `Naive`/`Blocked` tiers, which is exactly the distinct
//! accumulation order the paper's cross-kernel ℓ∞ comparisons measure.

use super::PAR_THRESHOLD;
use deep500_tensor::{recycle_scratch, scratch_dirty, scratch_zeroed};
use rayon::prelude::*;
use std::cell::RefCell;

/// Microkernel tile rows (`C` rows kept in registers).
pub const MR: usize = 8;
/// Microkernel tile columns (one 8-wide SIMD vector per row).
pub const NR: usize = 8;
/// Wide-variant microkernel tile columns (two 16-lane vectors per row),
/// used by the direct convolution tier on AVX-512-class hosts. The A
/// sliver format is shared with the narrow kernel (`MR` rows), so a
/// filter packed once serves both widths.
pub const NR_W: usize = 32;

/// Cache-aware blocking parameters, in elements. `mc`/`nc` are rounded to
/// microkernel tile multiples; all three are clamped to the problem shape
/// so degenerate sizes (`M = 1`, `K = 0`) stay valid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Blocking {
    /// Rows of `A` packed per panel (L2-resident: `mc * kc` floats).
    pub mc: usize,
    /// Reduction depth per pack (L1-resident slivers: `kc * MR|NR` floats).
    pub kc: usize,
    /// Columns of `B` packed per macro-panel (L3-resident: `kc * nc`).
    pub nc: usize,
}

impl Blocking {
    /// Pick blocking from the problem shape, memoized per thread: graph
    /// executors issue the same GEMM shapes pass after pass, so repeated
    /// calls hit a small shape cache instead of redoing the divisions.
    pub fn for_shape(m: usize, n: usize, k: usize) -> Blocking {
        thread_local! {
            static CACHE: RefCell<ShapeCache> = const { RefCell::new(ShapeCache::new()) };
        }
        CACHE.with(|c| c.borrow_mut().get_or_compute(m, n, k))
    }

    /// Pick blocking from the problem shape. Targets are conservative
    /// laptop/server-class caches: `MR x KC` and `KC x NR` slivers well
    /// inside a 32 KiB L1, the packed A panel in half of a 256 KiB L2,
    /// and the packed B macro-panel in a ~1 MiB L3 share.
    fn compute(m: usize, n: usize, k: usize) -> Blocking {
        let kc = k.clamp(1, 256);
        let mc_cap = ((128 * 1024 / 4) / kc).max(MR);
        let mc = round_up(m.clamp(1, mc_cap), MR);
        let nc_cap = ((1024 * 1024 / 4) / kc).max(NR);
        let nc = round_up(n.clamp(1, nc_cap), NR);
        Blocking { mc, kc, nc }
    }

    /// Blocking for the direct convolution tier's implicit GEMM at sliver
    /// width `nr` ([`NR`] or [`NR_W`]). Differs from [`Blocking::compute`]
    /// in two ways. First, the `kc` cap stretches beyond 256 (up to 512)
    /// while the `Co`-row A panel still fits the L2 budget — conv GEMMs
    /// have few rows, and every extra `KC` block costs a full
    /// read-modify-write pass over the output, so a 288-deep ResNet-body
    /// reduction runs as *one* block (store + fused epilogue, `C` touched
    /// once) instead of 256 + 32 — and the cap stretches a further 25%
    /// when that single step turns a two-pass reduction into one (576
    /// deep on few-row conv GEMMs: the A panel grows by kilobytes, the
    /// saved `C` pass is megabytes). Within the cap the reduction splits
    /// into equal-depth blocks (576 past the stretch would run 2x288,
    /// not 256 + 256 + 64). Second, `nc` is rounded to the selected
    /// sliver width so every packed tile is whole.
    pub(crate) fn for_conv(m: usize, n: usize, k: usize, nr: usize) -> Blocking {
        let mut kc_cap = ((128 * 1024 / 4) / m.max(1)).clamp(256, 512);
        if k > kc_cap && k <= kc_cap + kc_cap / 4 {
            kc_cap = k;
        }
        let kc = if k == 0 {
            1
        } else {
            k.div_ceil(k.div_ceil(kc_cap))
        };
        let mc_cap = ((128 * 1024 / 4) / kc).max(MR);
        let mc = round_up(m.clamp(1, mc_cap), MR);
        let nc_cap = ((1024 * 1024 / 4) / kc).max(nr);
        let nc = round_up(n.clamp(1, nc_cap), nr);
        Blocking { mc, kc, nc }
    }
}

type CacheEntry = ((usize, usize, usize), Blocking);

/// Tiny per-thread shape→[`Blocking`] cache with round-robin replacement.
/// A handful of entries covers every GEMM shape a network issues (forward
/// plus both transposed backward products per layer).
struct ShapeCache {
    entries: [Option<CacheEntry>; ShapeCache::WAYS],
    cursor: usize,
}

impl ShapeCache {
    const WAYS: usize = 8;

    const fn new() -> ShapeCache {
        ShapeCache {
            entries: [None; ShapeCache::WAYS],
            cursor: 0,
        }
    }

    fn get_or_compute(&mut self, m: usize, n: usize, k: usize) -> Blocking {
        let key = (m, n, k);
        for e in self.entries.iter().flatten() {
            if e.0 == key {
                return e.1;
            }
        }
        let bl = Blocking::compute(m, n, k);
        self.entries[self.cursor] = Some((key, bl));
        self.cursor = (self.cursor + 1) % Self::WAYS;
        bl
    }
}

pub(crate) fn round_up(v: usize, to: usize) -> usize {
    v.div_ceil(to) * to
}

/// Elementwise transform fused into the GEMM write-back: applied to each
/// output element exactly once, while its cache line is still hot from the
/// final `KC`-block store, so post-GEMM bias/activation passes cost zero
/// extra memory traffic.
///
/// **Bit-identity contract:** the fused sequence per element is exactly the
/// unfused one — full `K` reduction in the tier's accumulation order, then
/// `+= bias[j]` (`j` the absolute output column) or `+= bias[i]` (`i` the
/// absolute output row, for the `BiasRow*` variants the NCHWc convolution
/// uses: its `C` rows are output channels), then `max(x, 0.0)` — so a
/// fused `Linear(+Relu)` is bit-identical to `Linear` followed by a
/// separate `Relu` pass, including NaN propagation (`max` maps NaN to 0,
/// matching `ActivationOp`).
#[derive(Debug, Clone, Copy, Default)]
pub enum Epilogue<'a> {
    /// Plain accumulate write-back.
    #[default]
    None,
    /// `C[i][j] += bias[j]` after the final `K` block.
    Bias(&'a [f32]),
    /// `C[i][j] = max(C[i][j], 0.0)` after the final `K` block.
    Relu,
    /// Bias add, then ReLU.
    BiasRelu(&'a [f32]),
    /// `C[i][j] += bias[i]` after the final `K` block (per-row bias).
    BiasRow(&'a [f32]),
    /// Per-row bias add, then ReLU.
    BiasRowRelu(&'a [f32]),
}

impl Epilogue<'_> {
    /// Apply to one row segment of absolute output row `i`, covering
    /// absolute output columns `j0..j0 + seg.len()`.
    #[inline]
    fn apply_row(&self, seg: &mut [f32], i: usize, j0: usize) {
        let cols = seg.len();
        match *self {
            Epilogue::None => {}
            Epilogue::Bias(bias) => {
                for (cv, &bv) in seg.iter_mut().zip(&bias[j0..j0 + cols]) {
                    *cv += bv;
                }
            }
            Epilogue::Relu => {
                for cv in seg.iter_mut() {
                    *cv = cv.max(0.0);
                }
            }
            Epilogue::BiasRelu(bias) => {
                for (cv, &bv) in seg.iter_mut().zip(&bias[j0..j0 + cols]) {
                    *cv = (*cv + bv).max(0.0);
                }
            }
            Epilogue::BiasRow(bias) => {
                let bv = bias[i];
                for cv in seg.iter_mut() {
                    *cv += bv;
                }
            }
            Epilogue::BiasRowRelu(bias) => {
                let bv = bias[i];
                for cv in seg.iter_mut() {
                    *cv = (*cv + bv).max(0.0);
                }
            }
        }
    }

    /// Apply as a separate pass over a row-major `M x N` matrix — the
    /// fallback for kernel tiers without a fusable write-back. Produces the
    /// same per-element float sequence as the fused path.
    pub(crate) fn apply_matrix(&self, c: &mut [f32], n: usize) {
        if n == 0 || matches!(self, Epilogue::None) {
            return;
        }
        for (i, row) in c.chunks_mut(n).enumerate() {
            self.apply_row(row, i, 0);
        }
    }
}

/// Pack the `mc x kc` block of logical `A` starting at `(ic, pc)` into
/// `dst` as a sequence of `MR`-row slivers, each laid out `[p][i]`. Rows
/// beyond `mc` are written as zero so edge tiles run the full microkernel.
/// `A` is stored row-major `[M x K]` (`trans = false`, `lda = K`) or
/// `[K x M]` (`trans = true`, `lda = M`).
#[allow(clippy::too_many_arguments)] // pack-kernel plumbing: all scalars
pub(crate) fn pack_a(
    dst: &mut [f32],
    a: &[f32],
    trans: bool,
    lda: usize,
    ic: usize,
    pc: usize,
    mc: usize,
    kc: usize,
) {
    for (tile, chunk) in dst[..mc.div_ceil(MR) * MR * kc]
        .chunks_mut(MR * kc)
        .enumerate()
    {
        let i0 = tile * MR;
        let rows = MR.min(mc - i0);
        for p in 0..kc {
            let lane = &mut chunk[p * MR..p * MR + MR];
            if trans {
                // A[K x M]: row pc+p is contiguous in i.
                let src = &a[(pc + p) * lda + ic + i0..];
                lane[..rows].copy_from_slice(&src[..rows]);
            } else {
                for (i, v) in lane.iter_mut().enumerate().take(rows) {
                    *v = a[(ic + i0 + i) * lda + pc + p];
                }
            }
            lane[rows..].iter_mut().for_each(|v| *v = 0.0);
        }
    }
}

/// Pack the `kc x nc` block of logical `B` starting at `(pc, jc)` into
/// `dst` as `NR`-column slivers laid out `[p][j]`, zero-padding columns
/// beyond `nc`. `B` is stored row-major `[K x N]` (`trans = false`,
/// `ldb = N`) or `[N x K]` (`trans = true`, `ldb = K`).
#[allow(clippy::too_many_arguments)] // pack-kernel plumbing: all scalars
fn pack_b(
    dst: &mut [f32],
    b: &[f32],
    trans: bool,
    ldb: usize,
    pc: usize,
    jc: usize,
    kc: usize,
    nc: usize,
) {
    for (tile, chunk) in dst[..nc.div_ceil(NR) * NR * kc]
        .chunks_mut(NR * kc)
        .enumerate()
    {
        let j0 = tile * NR;
        let cols = NR.min(nc - j0);
        for p in 0..kc {
            let lane = &mut chunk[p * NR..p * NR + NR];
            if trans {
                for (j, v) in lane.iter_mut().enumerate().take(cols) {
                    *v = b[(jc + j0 + j) * ldb + pc + p];
                }
            } else {
                // B[K x N]: row pc+p is contiguous in j.
                let src = &b[(pc + p) * ldb + jc + j0..];
                lane[..cols].copy_from_slice(&src[..cols]);
            }
            lane[cols..].iter_mut().for_each(|v| *v = 0.0);
        }
    }
}

/// Portable microkernel: `acc += Asliver * Bsliver` with the full `MR x NR`
/// accumulator in locals. Written lane-wise so LLVM autovectorizes the `j`
/// loop at the target's native SIMD width.
#[inline(always)]
fn microkernel_portable(kc: usize, asliver: &[f32], bsliver: &[f32], acc: &mut [[f32; NR]; MR]) {
    for p in 0..kc {
        let ar = &asliver[p * MR..p * MR + MR];
        let br = &bsliver[p * NR..p * NR + NR];
        for i in 0..MR {
            let ai = ar[i];
            for j in 0..NR {
                acc[i][j] += ai * br[j];
            }
        }
    }
}

/// Explicit 8-wide AVX2+FMA microkernel: one `__m256` accumulator per `C`
/// row (MR + 2 live vectors — comfortably inside the 16 ymm registers).
/// Compiled for every x86_64 build via `#[target_feature]`; only *run*
/// when [`microkernel`] detects avx2+fma at runtime. Compiled out under
/// miri, which cannot interpret vendor intrinsics — miri runs exercise the
/// portable kernel (same packing, same slice bounds) instead.
///
/// # Safety
///
/// * The caller must have proven, at runtime, that the executing CPU
///   supports AVX2 and FMA — calling this on a CPU without them is
///   immediate UB (illegal instruction), regardless of what the slices
///   contain. [`microkernel`] is the only caller and establishes this
///   with `is_x86_feature_detected!`.
/// * `asliver.len() >= kc * MR` and `bsliver.len() >= kc * NR`: the
///   unaligned vector loads below read `MR`/`NR` lanes at each `p`.
#[cfg(all(target_arch = "x86_64", not(miri)))]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn microkernel_avx2(kc: usize, asliver: &[f32], bsliver: &[f32], acc: &mut [[f32; NR]; MR]) {
    use core::arch::x86_64::*;
    debug_assert!(asliver.len() >= kc * MR && bsliver.len() >= kc * NR);
    // SAFETY: pointer arithmetic stays inside the slices — the packers
    // always produce whole slivers (`asliver.len() >= kc * MR`,
    // `bsliver.len() >= kc * NR`, zero-padded at the edges), so
    // `p * NR + 7` and `p * MR + i` (i < MR) index in-bounds for every
    // `p < kc`. `_mm256_loadu_ps`/`_mm256_storeu_ps` tolerate any
    // alignment, and `acc[i]` is exactly `NR == 8` floats, matching one
    // `__m256` store. The intrinsics themselves are safe to execute
    // because this fn's `#[target_feature]` contract (CPU has avx2+fma)
    // is upheld by the caller per the function-level Safety section.
    unsafe {
        let mut vacc = [_mm256_setzero_ps(); MR];
        for p in 0..kc {
            let bv = _mm256_loadu_ps(bsliver.as_ptr().add(p * NR));
            let ar = asliver.as_ptr().add(p * MR);
            for (i, v) in vacc.iter_mut().enumerate() {
                let av = _mm256_set1_ps(*ar.add(i));
                *v = _mm256_fmadd_ps(av, bv, *v);
            }
        }
        for (i, v) in vacc.into_iter().enumerate() {
            _mm256_storeu_ps(acc[i].as_mut_ptr(), v);
        }
    }
}

/// Run the best microkernel the host supports. The AVX2+FMA variant fuses
/// each multiply-add (different rounding than the portable mul+add), which
/// keeps the `Packed` tier a genuinely distinct accumulation for the ℓ∞
/// comparisons while staying within the 1e-3 parity bound.
///
/// Runtime-dispatch invariant: this function is the *only* caller of
/// [`microkernel_avx2`], and it calls it exclusively behind a successful
/// `is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma")`
/// check on the executing thread. The detection macro reads CPUID (cached
/// by std), so a binary compiled for baseline x86_64 stays correct on
/// pre-AVX2 hardware: the unsafe kernel is compiled in but never reached.
#[inline]
fn microkernel(kc: usize, asliver: &[f32], bsliver: &[f32], acc: &mut [[f32; NR]; MR]) {
    #[cfg(all(target_arch = "x86_64", not(miri)))]
    if std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma") {
        // SAFETY: the `#[target_feature(enable = "avx2", enable = "fma")]`
        // contract is established by the runtime detection on this exact
        // execution path, and the slice-length preconditions hold because
        // every caller passes whole packed slivers of `kc * MR` /
        // `kc * NR` elements (see `pack_a`/`pack_b`).
        unsafe { microkernel_avx2(kc, asliver, bsliver, acc) };
        return;
    }
    microkernel_portable(kc, asliver, bsliver, acc)
}

/// Portable wide microkernel: identical loop nest to
/// [`microkernel_portable`] at `NR_W` columns, reading `B` *row-major*
/// with row stride `ldb` (the wide path skips sliver-packing `B`
/// entirely — an unaligned strided load costs the same as a packed one,
/// and skipping the pack halves the activation-side memory traffic).
/// Exercised on non-AVX-512 hosts (where the wide tier is never
/// *selected*, but stays testable) and under miri, which cannot interpret
/// vendor intrinsics.
#[inline(always)]
fn microkernel_wide_portable(
    kc: usize,
    asliver: &[f32],
    b: &[f32],
    ldb: usize,
    acc: &mut [[f32; NR_W]; MR],
) {
    for p in 0..kc {
        let ar = &asliver[p * MR..p * MR + MR];
        let br = &b[p * ldb..p * ldb + NR_W];
        for i in 0..MR {
            let ai = ar[i];
            for j in 0..NR_W {
                acc[i][j] += ai * br[j];
            }
        }
    }
}

/// Explicit 16-wide AVX-512 microkernel for the `MR x NR_W` tile: two
/// `__m512` accumulators per `C` row (16 live accumulator registers plus
/// four `B` vectors and one broadcast — well inside the 32 zmm registers),
/// with the `K` loop unrolled by two so the four `B` loads per iteration
/// hide the FMA latency chain. `B` is read *row-major* with row stride
/// `ldb` — no sliver packing on the activation side. Per output element
/// the reduction still ascends in `p` one FMA at a time, so results are
/// bit-identical to the non-unrolled order (and to [`microkernel_avx2`]'s,
/// which fuses the same per-element multiply-add sequence).
///
/// # Safety
///
/// * The caller must have proven, at runtime, that the executing CPU
///   supports AVX-512F — calling this without it is immediate UB (illegal
///   instruction). [`microkernel_wide`] is the only caller and establishes
///   this with `is_x86_feature_detected!`.
/// * `asliver.len() >= kc * MR`, and for `kc > 0`,
///   `b.len() >= (kc - 1) * ldb + NR_W`: the unaligned vector loads read
///   `MR` lanes / `NR_W` lanes at each `p`.
#[cfg(all(target_arch = "x86_64", not(miri)))]
#[target_feature(enable = "avx512f")]
unsafe fn microkernel_avx512(
    kc: usize,
    asliver: &[f32],
    b: &[f32],
    ldb: usize,
    acc: &mut [[f32; NR_W]; MR],
) {
    use core::arch::x86_64::*;
    debug_assert!(asliver.len() >= kc * MR);
    debug_assert!(kc == 0 || b.len() >= (kc - 1) * ldb + NR_W);
    // SAFETY: pointer arithmetic stays inside the slices — the A packer
    // always produces whole slivers (`asliver.len() >= kc * MR`, edge rows
    // zero-padded) and the caller guarantees `B` rows of at least `NR_W`
    // readable lanes at stride `ldb` (zero-padded to a whole tile), so
    // `p * ldb + 31` and `p * MR + i` (i < MR) index in-bounds for every
    // `p < kc`. `_mm512_loadu_ps`/`_mm512_storeu_ps` tolerate any
    // alignment, and `acc[i]` is exactly `NR_W == 32` floats, matching two
    // `__m512` stores. The intrinsics themselves are safe to execute
    // because this fn's `#[target_feature]` contract (CPU has avx512f) is
    // upheld by the caller per the function-level Safety section.
    unsafe {
        let mut vacc = [[_mm512_setzero_ps(); 2]; MR];
        let mut p = 0usize;
        while p + 2 <= kc {
            let b0 = _mm512_loadu_ps(b.as_ptr().add(p * ldb));
            let b1 = _mm512_loadu_ps(b.as_ptr().add(p * ldb + 16));
            let b2 = _mm512_loadu_ps(b.as_ptr().add((p + 1) * ldb));
            let b3 = _mm512_loadu_ps(b.as_ptr().add((p + 1) * ldb + 16));
            let a0 = asliver.as_ptr().add(p * MR);
            let a1 = asliver.as_ptr().add((p + 1) * MR);
            for (i, v) in vacc.iter_mut().enumerate() {
                let av = _mm512_set1_ps(*a0.add(i));
                v[0] = _mm512_fmadd_ps(av, b0, v[0]);
                v[1] = _mm512_fmadd_ps(av, b1, v[1]);
            }
            for (i, v) in vacc.iter_mut().enumerate() {
                let av = _mm512_set1_ps(*a1.add(i));
                v[0] = _mm512_fmadd_ps(av, b2, v[0]);
                v[1] = _mm512_fmadd_ps(av, b3, v[1]);
            }
            p += 2;
        }
        if p < kc {
            let b0 = _mm512_loadu_ps(b.as_ptr().add(p * ldb));
            let b1 = _mm512_loadu_ps(b.as_ptr().add(p * ldb + 16));
            let a0 = asliver.as_ptr().add(p * MR);
            for (i, v) in vacc.iter_mut().enumerate() {
                let av = _mm512_set1_ps(*a0.add(i));
                v[0] = _mm512_fmadd_ps(av, b0, v[0]);
                v[1] = _mm512_fmadd_ps(av, b1, v[1]);
            }
        }
        for (i, v) in vacc.into_iter().enumerate() {
            _mm512_storeu_ps(acc[i].as_mut_ptr(), v[0]);
            _mm512_storeu_ps(acc[i].as_mut_ptr().add(16), v[1]);
        }
    }
}

/// Run the best wide (`MR x NR_W`) microkernel the host supports. `b` is
/// a row-major block read at row stride `ldb` starting from the tile's
/// first column; every row must have `NR_W` readable (zero-padded at the
/// edge) lanes.
///
/// Runtime-dispatch invariant: this function is the *only* caller of
/// [`microkernel_avx512`], and it calls it exclusively behind a successful
/// `is_x86_feature_detected!("avx512f")` check on the executing thread —
/// the same CPUID-backed pattern as [`microkernel`].
#[inline]
fn microkernel_wide(
    kc: usize,
    asliver: &[f32],
    b: &[f32],
    ldb: usize,
    acc: &mut [[f32; NR_W]; MR],
) {
    #[cfg(all(target_arch = "x86_64", not(miri)))]
    if std::arch::is_x86_feature_detected!("avx512f") {
        // SAFETY: the `#[target_feature(enable = "avx512f")]` contract is
        // established by the runtime detection on this exact execution
        // path, and the slice-length preconditions hold because the sole
        // caller (`run_panel_wide`) passes whole packed A slivers of
        // `kc * MR` elements and a `B` block whose rows carry a whole
        // zero-padded tile beyond the tile's first column.
        unsafe { microkernel_avx512(kc, asliver, b, ldb, acc) };
        return;
    }
    microkernel_wide_portable(kc, asliver, b, ldb, acc)
}

/// Stride-2 gather: `dst[i] = src[2 * i]`. The hot path of strided
/// (downsampling) convolutions' activation packing — the direct conv
/// tier calls this from its analytic row gather once the padding bounds
/// are resolved, so no per-element bounds checks remain. On AVX-512
/// hosts each 16-element group is produced by two vector loads and one
/// even-lane compaction shuffle; elsewhere a scalar loop.
///
/// Requires `src.len() > 2 * (dst.len() - 1)` (the last element read is
/// `src[2 * (dst.len() - 1)]`).
pub(crate) fn strided_copy2(dst: &mut [f32], src: &[f32]) {
    #[cfg(all(target_arch = "x86_64", not(miri)))]
    if dst.len() >= 16 && std::arch::is_x86_feature_detected!("avx512f") {
        // SAFETY: the `#[target_feature(enable = "avx512f")]` contract is
        // established by the runtime detection on this exact execution
        // path; the slice-length precondition is documented above and
        // upheld by the (sole) gather_xrow caller, and re-checked inside
        // via debug_assert plus an explicit in-bounds loop guard.
        unsafe { strided_copy2_avx512(dst, src) };
        return;
    }
    for (v, &xv) in dst.iter_mut().zip(src.iter().step_by(2)) {
        *v = xv;
    }
}

/// AVX-512 even-lane compaction for [`strided_copy2`]: two 16-lane loads
/// cover a 32-element source window whose even elements are one
/// `vpermt2ps` away from the 16 contiguous outputs.
///
/// # Safety
///
/// * The caller must have proven, at runtime, that the executing CPU
///   supports AVX-512F ([`strided_copy2`] is the only caller and
///   establishes this with `is_x86_feature_detected!`).
/// * `src.len() > 2 * (dst.len() - 1)`.
#[cfg(all(target_arch = "x86_64", not(miri)))]
#[target_feature(enable = "avx512f")]
unsafe fn strided_copy2_avx512(dst: &mut [f32], src: &[f32]) {
    use core::arch::x86_64::*;
    let n = dst.len();
    debug_assert!(src.len() > 2 * (n - 1));
    // SAFETY: the vector loop only runs while both the 16-lane store
    // (`i + 16 <= n`) and the full 32-element source window
    // (`2 * i + 32 <= src.len()`) are in bounds; the scalar tail reads
    // `src[2 * j]` for `j < n`, in bounds by the function precondition.
    // The `loadu`/`storeu` intrinsics tolerate any alignment, and the
    // intrinsics are safe to execute per this fn's `#[target_feature]`
    // contract, upheld by the caller.
    unsafe {
        // Lane k of the result selects element 2k of the concatenated
        // (a, b) 32-lane window: indices 0..15 pick from a, 16..31 from b.
        let idx = _mm512_setr_epi32(0, 2, 4, 6, 8, 10, 12, 14, 16, 18, 20, 22, 24, 26, 28, 30);
        let mut i = 0usize;
        while i + 16 <= n && 2 * i + 32 <= src.len() {
            let a = _mm512_loadu_ps(src.as_ptr().add(2 * i));
            let b = _mm512_loadu_ps(src.as_ptr().add(2 * i + 16));
            _mm512_storeu_ps(dst.as_mut_ptr().add(i), _mm512_permutex2var_ps(a, idx, b));
            i += 16;
        }
        for j in i..n {
            *dst.get_unchecked_mut(j) = *src.get_unchecked(2 * j);
        }
    }
}

/// Whether selecting the wide (`NR_W`-column) tile is a win on this host:
/// true exactly when the AVX-512 kernel will be dispatched. On narrower
/// machines the wide tile would run the portable kernel over 4x the
/// columns of the tuned AVX2 path, so callers (the direct convolution
/// tier) stay on [`run_panel`] / `NR` there.
pub(crate) fn wide_tier_available() -> bool {
    #[cfg(all(target_arch = "x86_64", not(miri)))]
    {
        std::arch::is_x86_feature_detected!("avx512f")
    }
    #[cfg(not(all(target_arch = "x86_64", not(miri))))]
    {
        false
    }
}

/// Process one packed `A` panel against one packed `B` macro-panel,
/// accumulating into the `C` row panel `cpanel` (rows `row0..row0+mc` of
/// the full `M x N` output, `ldc = N`). When `last` is set (final `KC`
/// block of the reduction), `epilogue` runs over each freshly stored tile
/// while it is still cache-hot; `row0` gives the epilogue its absolute row
/// index (the `BiasRow*` variants index bias per row).
#[allow(clippy::too_many_arguments)] // hot-path plumbing: all scalars
pub(crate) fn run_panel(
    apack: &[f32],
    bpack: &[f32],
    cpanel: &mut [f32],
    ldc: usize,
    row0: usize,
    jc: usize,
    mc: usize,
    nc: usize,
    kc: usize,
    epilogue: Epilogue<'_>,
    last: bool,
) {
    let mut acc = [[0.0f32; NR]; MR];
    let fuse = last && !matches!(epilogue, Epilogue::None);
    for (jt, bsliver) in bpack[..nc.div_ceil(NR) * NR * kc]
        .chunks(NR * kc)
        .enumerate()
    {
        let j0 = jc + jt * NR;
        let cols = NR.min(jc + nc - j0);
        for (it, asliver) in apack[..mc.div_ceil(MR) * MR * kc]
            .chunks(MR * kc)
            .enumerate()
        {
            let i0 = it * MR;
            let rows = MR.min(mc - i0);
            acc.iter_mut().for_each(|row| row.fill(0.0));
            microkernel(kc, asliver, bsliver, &mut acc);
            for (i, arow) in acc.iter().enumerate().take(rows) {
                let crow = &mut cpanel[(i0 + i) * ldc + j0..(i0 + i) * ldc + j0 + cols];
                for (cv, &av) in crow.iter_mut().zip(arow) {
                    *cv += av;
                }
                if fuse {
                    epilogue.apply_row(crow, row0 + i0 + i, j0);
                }
            }
        }
    }
}

/// [`run_panel`] at the wide tile width, reading `B` *row-major*: `bpack`
/// holds `kc` gathered reduction rows of `ldb` floats each (the direct
/// convolution tier gathers them straight off the activation image), with
/// columns `nc..` of each row zero-filled up to the last whole `NR_W`
/// tile. Skipping the sliver repack halves the pack-side memory traffic;
/// the wide microkernel's unaligned strided loads cost the same as packed
/// ones. The `A` panel format (`MR`-row slivers) is shared with the narrow
/// path, so pre-packed filters serve both. Epilogue timing and per-element
/// accumulation order match [`run_panel`] exactly — only the column
/// grouping per register tile differs.
///
/// `first` marks the reduction's first `KC` block over a caller-zeroed
/// `C`: the tile write-back then *stores* instead of read-modify-writes,
/// saving one read pass over the output per macro-panel. For finite
/// inputs this is bit-identical to accumulating into zero — the register
/// accumulator starts at `+0.0` and IEEE-754 addition can never turn it
/// into `-0.0`, and `0.0 + x == x` bitwise for every other `x`.
#[allow(clippy::too_many_arguments)] // hot-path plumbing: all scalars
pub(crate) fn run_panel_wide(
    apack: &[f32],
    bpack: &[f32],
    ldb: usize,
    cpanel: &mut [f32],
    ldc: usize,
    row0: usize,
    jc: usize,
    mc: usize,
    nc: usize,
    kc: usize,
    epilogue: Epilogue<'_>,
    first: bool,
    last: bool,
) {
    debug_assert!(nc.div_ceil(NR_W) * NR_W <= ldb || kc == 0);
    debug_assert!(bpack.len() >= kc * ldb);
    let mut acc = [[0.0f32; NR_W]; MR];
    let fuse = last && !matches!(epilogue, Epilogue::None);
    for jt in 0..nc.div_ceil(NR_W) {
        let j0r = jt * NR_W;
        let j0 = jc + j0r;
        let cols = NR_W.min(nc - j0r);
        // The kernel reads up to `(kc - 1) * ldb + NR_W` lanes past this
        // offset; in bounds because `j0r + NR_W <= round_up(nc, NR_W) <=
        // ldb` and `bpack` holds `kc * ldb` floats.
        let btile = &bpack[j0r..];
        for (it, asliver) in apack[..mc.div_ceil(MR) * MR * kc]
            .chunks(MR * kc)
            .enumerate()
        {
            let i0 = it * MR;
            let rows = MR.min(mc - i0);
            acc.iter_mut().for_each(|row| row.fill(0.0));
            microkernel_wide(kc, asliver, btile, ldb, &mut acc);
            for (i, arow) in acc.iter().enumerate().take(rows) {
                let crow = &mut cpanel[(i0 + i) * ldc + j0..(i0 + i) * ldc + j0 + cols];
                if first {
                    for (cv, &av) in crow.iter_mut().zip(arow) {
                        *cv = av;
                    }
                } else {
                    for (cv, &av) in crow.iter_mut().zip(arow) {
                        *cv += av;
                    }
                }
                if fuse {
                    epilogue.apply_row(crow, row0 + i0 + i, j0);
                }
            }
        }
    }
}

/// Portable single-row GEMV tile: `acc[j] = Σ_p a[p] * b[p][j]` over one
/// `NR_W`-column tile of a row-major `B` read at row stride `ldb` (`acc`
/// is overwritten, like the SIMD variants). Unfused mul+add, mirroring
/// [`microkernel_portable`]'s rounding on hosts where the batched path
/// also runs portable.
#[inline(always)]
fn gemv_tile_portable(kc: usize, a: &[f32], b: &[f32], ldb: usize, acc: &mut [f32; NR_W]) {
    let mut local = [0.0f32; NR_W];
    for p in 0..kc {
        let av = a[p];
        let br = &b[p * ldb..p * ldb + NR_W];
        for (s, &bv) in local.iter_mut().zip(br) {
            *s += av * bv;
        }
    }
    *acc = local;
}

/// AVX2+FMA single-row GEMV tile: four `__m256` accumulators covering the
/// same `NR_W`-column tile. Per output element the reduction is one fused
/// multiply-add per `p`, ascending — the exact float sequence
/// [`microkernel_avx2`] produces for that element in a batched GEMM, so a
/// row served through this path is bit-identical to the same row inside a
/// larger batch.
///
/// # Safety
///
/// * The executing CPU must support AVX2 and FMA (runtime-detected by
///   [`gemv_tile`], the only caller); calling without them is UB.
/// * `a.len() >= kc`, and for `kc > 0`, `b.len() >= (kc - 1) * ldb + NR_W`.
#[cfg(all(target_arch = "x86_64", not(miri)))]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn gemv_tile_avx2(kc: usize, a: &[f32], b: &[f32], ldb: usize, acc: &mut [f32; NR_W]) {
    use core::arch::x86_64::*;
    debug_assert!(a.len() >= kc);
    debug_assert!(kc == 0 || b.len() >= (kc - 1) * ldb + NR_W);
    // SAFETY: per the function contract, every `b` row read below carries
    // `NR_W` readable lanes at stride `ldb` and `a` carries `kc` scalars,
    // so `p * ldb + 24 + 7` and `p` index in-bounds for `p < kc`. The
    // unaligned load/store intrinsics tolerate any alignment and `acc` is
    // exactly `NR_W == 32` floats (four `__m256` stores). Executing the
    // intrinsics is sound because the caller established avx2+fma.
    unsafe {
        let mut v = [_mm256_setzero_ps(); 4];
        for p in 0..kc {
            let av = _mm256_set1_ps(*a.get_unchecked(p));
            let bp = b.as_ptr().add(p * ldb);
            for (q, vq) in v.iter_mut().enumerate() {
                *vq = _mm256_fmadd_ps(av, _mm256_loadu_ps(bp.add(q * 8)), *vq);
            }
        }
        for (q, vq) in v.into_iter().enumerate() {
            _mm256_storeu_ps(acc.as_mut_ptr().add(q * 8), vq);
        }
    }
}

/// AVX-512 single-row GEMV tile: two `__m512` accumulators over the
/// `NR_W`-column tile, same fused ascending-`p` per-element sequence as
/// [`gemv_tile_avx2`] and the batched microkernels.
///
/// # Safety
///
/// Same contract as [`gemv_tile_avx2`] with AVX-512F in place of
/// AVX2+FMA; [`gemv_tile`] is the only caller.
#[cfg(all(target_arch = "x86_64", not(miri)))]
#[target_feature(enable = "avx512f")]
unsafe fn gemv_tile_avx512(kc: usize, a: &[f32], b: &[f32], ldb: usize, acc: &mut [f32; NR_W]) {
    use core::arch::x86_64::*;
    debug_assert!(a.len() >= kc);
    debug_assert!(kc == 0 || b.len() >= (kc - 1) * ldb + NR_W);
    // SAFETY: bounds as in `gemv_tile_avx2` (rows of `NR_W` readable lanes
    // at stride `ldb`); `acc` is exactly two `__m512`s wide; avx512f is
    // established by the caller's runtime detection.
    unsafe {
        let mut v0 = _mm512_setzero_ps();
        let mut v1 = _mm512_setzero_ps();
        for p in 0..kc {
            let av = _mm512_set1_ps(*a.get_unchecked(p));
            let bp = b.as_ptr().add(p * ldb);
            v0 = _mm512_fmadd_ps(av, _mm512_loadu_ps(bp), v0);
            v1 = _mm512_fmadd_ps(av, _mm512_loadu_ps(bp.add(16)), v1);
        }
        _mm512_storeu_ps(acc.as_mut_ptr(), v0);
        _mm512_storeu_ps(acc.as_mut_ptr().add(16), v1);
    }
}

/// Run the best single-row GEMV tile the host supports, mirroring the
/// batched kernels' dispatch (and therefore their per-element rounding):
/// AVX-512F, else AVX2+FMA, else the portable unfused loop.
#[inline]
fn gemv_tile(kc: usize, a: &[f32], b: &[f32], ldb: usize, acc: &mut [f32; NR_W]) {
    #[cfg(all(target_arch = "x86_64", not(miri)))]
    {
        // Each variant runs only behind its own feature detection, and the
        // slice-length contract (`a.len() >= kc`, `b` rows of `NR_W`
        // readable lanes at stride `ldb`) is guaranteed by the sole caller
        // `gemv_bt_padded`, whose weight image is column-padded to a whole
        // number of `NR_W` tiles.
        if std::arch::is_x86_feature_detected!("avx512f") {
            // SAFETY: avx512f detected; length contract per above.
            unsafe { gemv_tile_avx512(kc, a, b, ldb, acc) };
            return;
        } else if std::arch::is_x86_feature_detected!("avx2")
            && std::arch::is_x86_feature_detected!("fma")
        {
            // SAFETY: avx2+fma detected; length contract per above.
            unsafe { gemv_tile_avx2(kc, a, b, ldb, acc) };
            return;
        }
    }
    gemv_tile_portable(kc, a, b, ldb, acc)
}

/// Row-vector fast path for `Y = x · Wᵀ (+ epilogue)`: the `m == 1` GEMM
/// every single-request inference (closed-loop serving, batch-1 dense
/// heads) issues. `wt` is the weight image *pre-transposed* to `[K x
/// n_pad]` row-major with `n_pad = round_up(n, NR_W)` zero-padded columns
/// (built once per weight by the caller and cached), so the kernel
/// streams it unit-stride — no per-call `B` packing, no wasted
/// register-tile rows for the seven absent `A` rows.
///
/// Bit-identity contract: the reduction runs in `KC` chunks of
/// `k.clamp(1, 256)` — the same chunking [`Blocking::compute`] gives any
/// batched GEMM at this `k` — and each output element accumulates one
/// fused multiply-add per `p`, ascending, via [`gemv_tile`]'s
/// batched-kernel-matching dispatch. A request served alone therefore
/// reproduces, bit for bit, the row it would produce inside any batch.
/// The epilogue fires once per element after the last chunk, exactly like
/// [`run_panel`]'s `last` gating.
pub(crate) fn gemv_bt_padded(
    n: usize,
    k: usize,
    a: &[f32],
    wt: &[f32],
    c: &mut [f32],
    epilogue: Epilogue<'_>,
) {
    let n_pad = round_up(n, NR_W);
    debug_assert!(a.len() >= k && c.len() >= n && wt.len() >= k * n_pad);
    if k > 0 {
        let kc = k.clamp(1, 256);
        let mut acc = [0.0f32; NR_W];
        for pc in (0..k).step_by(kc) {
            let kcb = kc.min(k - pc);
            for jt in 0..n_pad / NR_W {
                let j0 = jt * NR_W;
                let cols = NR_W.min(n - j0);
                gemv_tile(kcb, &a[pc..], &wt[pc * n_pad + j0..], n_pad, &mut acc);
                for (cv, &s) in c[j0..j0 + cols].iter_mut().zip(&acc) {
                    *cv += s;
                }
            }
        }
    }
    epilogue.apply_row(&mut c[..n], 0, 0);
}

/// Packed GEMM core: `C += op(A) * op(B)` for row-major storage, where
/// `op` is transpose when the corresponding flag is set (`A` stored
/// `[K x M]`, `B` stored `[N x K]`). **Contract:** callers hand in a `C`
/// that already holds the addend — `matmul`-style entry points pass a
/// freshly zeroed buffer (see [`super::gemm_into`]).
///
/// Parallelizes over `MC` row panels of `C` above [`PAR_THRESHOLD`]
/// multiply-accumulates; the packed `B` macro-panel is shared read-only
/// across workers, each worker packs its own `A` panel.
#[allow(clippy::too_many_arguments)]
pub(super) fn gemm_packed_into(
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    a_trans: bool,
    b: &[f32],
    b_trans: bool,
    c: &mut [f32],
) {
    gemm_packed_into_epilogue(m, n, k, a, a_trans, b, b_trans, c, Epilogue::None)
}

/// [`gemm_packed_into`] with a fused write-back [`Epilogue`], applied to
/// every output element exactly once during the final `KC`-block store.
#[allow(clippy::too_many_arguments)]
pub(super) fn gemm_packed_into_epilogue(
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    a_trans: bool,
    b: &[f32],
    b_trans: bool,
    c: &mut [f32],
    epilogue: Epilogue<'_>,
) {
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 {
        // The zero-length reduction leaves C as the caller's addend; the
        // epilogue still owes its pass over every element.
        for (i, crow) in c.chunks_mut(n).enumerate() {
            epilogue.apply_row(crow, i, 0);
        }
        return;
    }
    let bl = Blocking::for_shape(m, n, k);
    let lda = if a_trans { m } else { k };
    let ldb = if b_trans { k } else { n };
    let parallel = m * n * k >= PAR_THRESHOLD && m > bl.mc;
    // Dirty scratch: pack_b overwrites every element of the prefix
    // run_panel reads ([..nc.div_ceil(NR) * NR * kc], edge lanes
    // zero-padded explicitly), so the acquire-time zero-fill would be
    // wasted traffic.
    let mut bpack = scratch_dirty(bl.nc.min(round_up(n, NR)) * bl.kc);
    for jc in (0..n).step_by(bl.nc) {
        let nc = bl.nc.min(n - jc);
        for pc in (0..k).step_by(bl.kc) {
            let kc = bl.kc.min(k - pc);
            let last = pc + kc == k;
            pack_b(&mut bpack, b, b_trans, ldb, pc, jc, kc, nc);
            let bshared = &bpack;
            let do_panel = |ic: usize, cpanel: &mut [f32]| {
                let mc = cpanel.len() / n;
                let mut apack = scratch_zeroed(round_up(mc, MR) * kc);
                pack_a(&mut apack, a, a_trans, lda, ic, pc, mc, kc);
                run_panel(
                    &apack, bshared, cpanel, n, ic, jc, mc, nc, kc, epilogue, last,
                );
                recycle_scratch(apack);
            };
            if parallel {
                c.par_chunks_mut(bl.mc * n)
                    .enumerate()
                    .for_each(|(chunk, cpanel)| do_panel(chunk * bl.mc, cpanel));
            } else {
                for (chunk, cpanel) in c.chunks_mut(bl.mc * n).enumerate() {
                    do_panel(chunk * bl.mc, cpanel);
                }
            }
        }
    }
    recycle_scratch(bpack);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blocking_is_total_on_degenerate_shapes() {
        for (m, n, k) in [(0, 0, 0), (1, 1, 0), (0, 5, 3), (1, 1, 1), (7, 3, 1)] {
            let bl = Blocking::for_shape(m, n, k);
            assert!(
                bl.kc >= 1 && bl.mc >= MR && bl.nc >= NR,
                "{m}x{n}x{k}: {bl:?}"
            );
            assert_eq!(bl.mc % MR, 0);
            assert_eq!(bl.nc % NR, 0);
        }
    }

    #[test]
    fn blocking_respects_cache_budgets() {
        let bl = Blocking::for_shape(4096, 4096, 4096);
        assert!(bl.kc <= 256);
        assert!(
            bl.mc * bl.kc * 4 <= 160 * 1024,
            "A panel beyond L2 half: {bl:?}"
        );
        assert!(
            bl.nc * bl.kc * 4 <= 1536 * 1024,
            "B panel beyond L3 share: {bl:?}"
        );
    }

    #[test]
    fn empty_k_leaves_c_untouched() {
        let mut c = vec![0.0f32; 6];
        gemm_packed_into(2, 3, 0, &[], false, &[], false, &mut c);
        assert_eq!(c, vec![0.0; 6]);
    }

    #[test]
    fn blocking_memoization_matches_fresh_computation() {
        // More distinct shapes than cache ways, twice over, so both the
        // replacement path and repeat hits are exercised.
        let shapes: Vec<(usize, usize, usize)> = (0..20)
            .map(|i| (8 * i + 1, 16 * i + 3, 32 * i + 5))
            .collect();
        for _ in 0..2 {
            for &(m, n, k) in &shapes {
                assert_eq!(Blocking::for_shape(m, n, k), Blocking::compute(m, n, k));
            }
        }
    }

    #[test]
    fn epilogue_matches_separate_passes_bitwise() {
        use deep500_tensor::rng::Xoshiro256StarStar;
        use deep500_tensor::Tensor;
        let mut rng = Xoshiro256StarStar::seed_from_u64(3);
        // Multiple KC blocks (k > 256) so the final-block gating matters,
        // plus ragged edges in every dimension.
        let (m, n, k) = (13, 21, 300);
        let a = Tensor::rand_uniform([m, k], -1.0, 1.0, &mut rng);
        let b = Tensor::rand_uniform([k, n], -1.0, 1.0, &mut rng);
        let bias: Vec<f32> = (0..n).map(|j| j as f32 * 0.25 - 2.0).collect();

        let mut unfused = vec![0.0f32; m * n];
        gemm_packed_into(m, n, k, a.data(), false, b.data(), false, &mut unfused);
        for row in unfused.chunks_mut(n) {
            for (cv, &bv) in row.iter_mut().zip(&bias) {
                *cv += bv;
            }
        }
        for v in unfused.iter_mut() {
            *v = v.max(0.0);
        }

        let mut fused = vec![0.0f32; m * n];
        gemm_packed_into_epilogue(
            m,
            n,
            k,
            a.data(),
            false,
            b.data(),
            false,
            &mut fused,
            Epilogue::BiasRelu(&bias),
        );
        assert_eq!(fused, unfused);
    }

    #[test]
    fn epilogue_propagates_nan_like_separate_relu() {
        // A NaN product: relu(NaN) must be 0.0 (f32::max semantics), both
        // fused and unfused.
        let a = [f32::NAN, 1.0];
        let b = [1.0, 1.0, 2.0, -5.0]; // 2x2
        let mut fused = vec![0.0f32; 2];
        gemm_packed_into_epilogue(1, 2, 2, &a, false, &b, false, &mut fused, Epilogue::Relu);
        let mut unfused = vec![0.0f32; 2];
        gemm_packed_into(1, 2, 2, &a, false, &b, false, &mut unfused);
        for v in unfused.iter_mut() {
            *v = v.max(0.0);
        }
        assert!(!fused[0].is_nan() && fused[0] == 0.0);
        assert_eq!(fused[0].to_bits(), unfused[0].to_bits());
        assert_eq!(fused[1].to_bits(), unfused[1].to_bits());
    }

    #[test]
    fn epilogue_runs_even_for_empty_k() {
        let bias = [1.5, -2.0, 3.0];
        let mut c = vec![0.0f32; 6];
        gemm_packed_into_epilogue(
            2,
            3,
            0,
            &[],
            false,
            &[],
            false,
            &mut c,
            Epilogue::BiasRelu(&bias),
        );
        assert_eq!(c, vec![1.5, 0.0, 3.0, 1.5, 0.0, 3.0]);
    }

    #[test]
    fn packing_pads_edge_tiles_with_zeros() {
        // 3x2 A block packed into one MR-sliver: rows 3..MR must be zero.
        let a = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0]; // 3x2 row-major
        let mut dst = vec![f32::NAN; MR * 2];
        pack_a(&mut dst, &a, false, 2, 0, 0, 3, 2);
        // p = 0 lane: column 0 of A then zeros.
        assert_eq!(&dst[..MR], &[1.0, 3.0, 5.0, 0.0, 0.0, 0.0, 0.0, 0.0]);
        assert_eq!(&dst[MR..2 * MR], &[2.0, 4.0, 6.0, 0.0, 0.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn parallel_and_serial_packed_paths_are_bit_identical() {
        use deep500_tensor::rng::Xoshiro256StarStar;
        use deep500_tensor::Tensor;
        let mut rng = Xoshiro256StarStar::seed_from_u64(11);
        // Above PAR_THRESHOLD and spanning several MC panels.
        let (m, n, k) = (300, 96, 64);
        assert!(m * n * k >= PAR_THRESHOLD);
        let a = Tensor::rand_uniform([m, k], -1.0, 1.0, &mut rng);
        let b = Tensor::rand_uniform([k, n], -1.0, 1.0, &mut rng);
        let mut par = vec![0.0f32; m * n];
        gemm_packed_into(m, n, k, a.data(), false, b.data(), false, &mut par);
        // Serial: run panel-by-panel through the same code path.
        let mut serial = vec![0.0f32; m * n];
        let bl = Blocking::for_shape(m, n, k);
        for jc in (0..n).step_by(bl.nc) {
            let nc = bl.nc.min(n - jc);
            for pc in (0..k).step_by(bl.kc) {
                let kc = bl.kc.min(k - pc);
                let mut bpack = vec![0.0f32; nc.div_ceil(NR) * NR * kc];
                pack_b(&mut bpack, b.data(), false, n, pc, jc, kc, nc);
                for (chunk, cpanel) in serial.chunks_mut(bl.mc * n).enumerate() {
                    let mc = cpanel.len() / n;
                    let mut apack = vec![0.0f32; mc.div_ceil(MR) * MR * kc];
                    pack_a(&mut apack, a.data(), false, k, chunk * bl.mc, pc, mc, kc);
                    let last = pc + kc == k;
                    run_panel(
                        &apack,
                        &bpack,
                        cpanel,
                        n,
                        chunk * bl.mc,
                        jc,
                        mc,
                        nc,
                        kc,
                        Epilogue::None,
                        last,
                    );
                }
            }
        }
        assert_eq!(par, serial);
    }
}
