//! The `Operator` trait — Deep500's Level-0 `CustomOperator` interface.
//!
//! An operator is a pure function from input tensors to output tensors with
//! a matching vector-Jacobian product (`backward`). Parameters (weights,
//! biases) are ordinary inputs, as in ONNX — `Conv(X, W, B)` — so gradient
//! flow to parameters needs no special casing in graph executors.

use deep500_tensor::{Result, Shape, Tensor};

/// Conservative side-effect summary of an operator's `forward`, consumed by
/// the plan-soundness verifier (`deep500-verify`'s V020 `StaleMemo` and the
/// schedule-race analysis). Operators are pure functions of their inputs,
/// but some keep *internal* memos of derived data keyed on an input's
/// content-version stamp ([`Tensor::version`]) — e.g. the direct-tier
/// convolution's packed filter or the GEMV path's transposed weight image.
/// Such memos are sound only when the memoized input is stable (its
/// producer happens-before the consuming step) while `forward` runs, which
/// is exactly what the effect summary lets the verifier prove.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OpEffects {
    /// Input indices whose tensors key an internal version-stamped memo of
    /// derived data. The verifier requires each such input to come from
    /// the network store or from a step strictly ordered before the
    /// consumer.
    pub version_memo_inputs: Vec<usize>,
    /// Input indices the operator writes through. No bundled operator
    /// mutates its inputs; the verifier treats any entry conservatively as
    /// a write that races with every unordered reader of the same tensor.
    pub mutated_inputs: Vec<usize>,
}

impl OpEffects {
    /// True when the operator declares no memoization and no mutation.
    pub fn is_pure(&self) -> bool {
        self.version_memo_inputs.is_empty() && self.mutated_inputs.is_empty()
    }
}

/// A Deep500 Level-0 operator.
///
/// Mirrors the paper's `CustomOperator` with its two methods:
/// `forward(inputs)` and
/// `backward(grad_inputs, fwd_inputs, fwd_outputs)`.
pub trait Operator: Send + Sync {
    /// Operator type name (e.g. `"Conv2d"`, `"MedianPool2d"`), used by the
    /// registry, the d5nx format, and reports.
    fn name(&self) -> &str;

    /// Number of input tensors (including parameter inputs).
    fn num_inputs(&self) -> usize;

    /// Number of output tensors.
    fn num_outputs(&self) -> usize {
        1
    }

    /// Output shapes for the given input shapes; errors on invalid shapes.
    fn output_shapes(&self, input_shapes: &[&Shape]) -> Result<Vec<Shape>>;

    /// Inference: compute outputs from inputs.
    fn forward(&self, inputs: &[&Tensor]) -> Result<Vec<Tensor>>;

    /// Backpropagation: given gradients w.r.t. outputs plus the forward
    /// inputs and outputs, return gradients w.r.t. each input (same order
    /// and count as `inputs`). Non-differentiable inputs (e.g. integer
    /// labels) get zero tensors.
    fn backward(
        &self,
        grad_outputs: &[&Tensor],
        inputs: &[&Tensor],
        outputs: &[&Tensor],
    ) -> Result<Vec<Tensor>>;

    /// Analytical floating-point operation count of `forward` for the given
    /// input shapes (0 for ops we do not model).
    fn flops(&self, input_shapes: &[&Shape]) -> f64 {
        let _ = input_shapes;
        0.0
    }

    /// Whether input `i` participates in differentiation. Defaults to all.
    fn input_differentiable(&self, i: usize) -> bool {
        let _ = i;
        true
    }

    /// Scratch ("workspace") bytes the operator needs beyond inputs and
    /// outputs — e.g. the im2col lowering buffer of a convolution. Used by
    /// executor memory accountants; 0 by default.
    fn workspace_bytes(&self, input_shapes: &[&Shape]) -> usize {
        let _ = input_shapes;
        0
    }

    /// Short human-readable note on *how* this operator will execute for
    /// the given input shapes — e.g. the convolution tier picked by
    /// [`ConvAlgorithm::Auto`](crate::conv::ConvAlgorithm) — surfaced in
    /// trace span args and the per-op attribution table so profiles show
    /// which code path actually ran. `None` (the default) when there is
    /// nothing interesting to report.
    fn annotation(&self, input_shapes: &[&Shape]) -> Option<String> {
        let _ = input_shapes;
        None
    }

    /// Conservative effect summary for the plan-soundness verifier: which
    /// inputs key internal version-stamped memos, and which (if any) the
    /// operator writes through. Defaults to pure — operators with hidden
    /// memoization (direct-tier conv, packed GEMV) must override so the
    /// static analysis can prove their memos sound.
    fn effects(&self) -> OpEffects {
        OpEffects::default()
    }

    /// Bytes moved by one `forward` call — inputs read plus outputs
    /// written, at `f32` storage — the denominator of Level-0 arithmetic
    /// intensity and the "bytes moved" column of per-operator attribution.
    /// The default derives it from the input shapes and
    /// [`Operator::output_shapes`] (0 when shapes cannot be inferred);
    /// ops with sparser access patterns can override.
    fn bytes_moved(&self, input_shapes: &[&Shape]) -> u64 {
        let read: usize = input_shapes.iter().map(|s| s.numel()).sum();
        let written: usize = self
            .output_shapes(input_shapes)
            .map(|outs| outs.iter().map(Shape::numel).sum())
            .unwrap_or(0);
        ((read + written) * std::mem::size_of::<f32>()) as u64
    }
}

/// Run an operator's forward pass with shape checking, as executors do.
pub fn checked_forward(op: &dyn Operator, inputs: &[&Tensor]) -> Result<Vec<Tensor>> {
    if inputs.len() != op.num_inputs() {
        return Err(deep500_tensor::Error::Invalid(format!(
            "{} expects {} inputs, got {}",
            op.name(),
            op.num_inputs(),
            inputs.len()
        )));
    }
    let shapes: Vec<&Shape> = inputs.iter().map(|t| t.shape()).collect();
    let expected = op.output_shapes(&shapes)?;
    let outputs = op.forward(inputs)?;
    if outputs.len() != expected.len() {
        return Err(deep500_tensor::Error::Invalid(format!(
            "{} produced {} outputs, declared {}",
            op.name(),
            outputs.len(),
            expected.len()
        )));
    }
    for (o, e) in outputs.iter().zip(&expected) {
        if o.shape() != e {
            return Err(deep500_tensor::Error::ShapeMismatch(format!(
                "{} output shape {} vs declared {}",
                op.name(),
                o.shape(),
                e
            )));
        }
    }
    Ok(outputs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use deep500_tensor::Error;

    /// A trivial doubling operator used to exercise the trait machinery.
    struct Double;
    impl Operator for Double {
        fn name(&self) -> &str {
            "Double"
        }
        fn num_inputs(&self) -> usize {
            1
        }
        fn output_shapes(&self, s: &[&Shape]) -> Result<Vec<Shape>> {
            Ok(vec![s[0].clone()])
        }
        fn forward(&self, inputs: &[&Tensor]) -> Result<Vec<Tensor>> {
            Ok(vec![inputs[0].scale(2.0)])
        }
        fn backward(
            &self,
            grad_outputs: &[&Tensor],
            _inputs: &[&Tensor],
            _outputs: &[&Tensor],
        ) -> Result<Vec<Tensor>> {
            Ok(vec![grad_outputs[0].scale(2.0)])
        }
        fn flops(&self, s: &[&Shape]) -> f64 {
            s[0].numel() as f64
        }
    }

    #[test]
    fn checked_forward_validates_arity_and_shape() {
        let op = Double;
        let x = Tensor::from_slice(&[1.0, 2.0]);
        let out = checked_forward(&op, &[&x]).unwrap();
        assert_eq!(out[0].data(), &[2.0, 4.0]);
        let err = checked_forward(&op, &[&x, &x]).unwrap_err();
        assert!(matches!(err, Error::Invalid(_)));
    }

    #[test]
    fn backward_is_linear_here() {
        let op = Double;
        let x = Tensor::from_slice(&[1.0]);
        let y = op.forward(&[&x]).unwrap();
        let g = Tensor::from_slice(&[1.0]);
        let gi = op.backward(&[&g], &[&x], &[&y[0]]).unwrap();
        assert_eq!(gi[0].data(), &[2.0]);
    }

    #[test]
    fn defaults() {
        let op = Double;
        assert_eq!(op.num_outputs(), 1);
        assert!(op.input_differentiable(0));
        assert!(op.effects().is_pure(), "operators default to pure");
        assert_eq!(op.flops(&[&Shape::new(&[4])]), 4.0);
        // 4 floats read + 4 written, 4 bytes each.
        assert_eq!(op.bytes_moved(&[&Shape::new(&[4])]), 32);
    }
}
