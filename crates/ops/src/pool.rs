//! Pooling operators: max, average, and **median** pooling.
//!
//! Median pooling is the paper's running custom-operator example
//! (Listings 3–4): a user-defined operator registered through the custom
//! operator interface and usable alongside built-ins. We implement it with
//! the same forward/backward contract as the built-in pools. For an even
//! window, the median is the mean of the two middle elements and the
//! gradient splits equally between them.

use crate::conv::ConvGeometry;
use crate::operator::Operator;
use deep500_tensor::{Error, Result, Shape, Tensor};

/// The pooling reduction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PoolKind {
    Max,
    Average,
    Median,
}

/// A 2-D pooling operator over NCHW input, kernel `k x k`, stride `s`,
/// no padding (matching the common DNN usage).
#[derive(Debug, Clone)]
pub struct Pool2dOp {
    pub kind: PoolKind,
    pub kernel: usize,
    pub stride: usize,
}

impl Pool2dOp {
    pub fn new(kind: PoolKind, kernel: usize, stride: usize) -> Self {
        Pool2dOp {
            kind,
            kernel,
            stride,
        }
    }

    /// Max pooling, the common DNN downsampler.
    pub fn max(kernel: usize, stride: usize) -> Self {
        Self::new(PoolKind::Max, kernel, stride)
    }

    /// Average pooling.
    pub fn average(kernel: usize, stride: usize) -> Self {
        Self::new(PoolKind::Average, kernel, stride)
    }

    /// Median pooling — the paper's custom-operator example.
    pub fn median(kernel: usize, stride: usize) -> Self {
        Self::new(PoolKind::Median, kernel, stride)
    }

    fn geometry(&self) -> ConvGeometry {
        ConvGeometry {
            stride: self.stride,
            pad: 0,
        }
    }

    fn out_dims(&self, x: &Shape) -> Result<(usize, usize, usize, usize, usize, usize)> {
        if x.rank() != 4 {
            return Err(Error::ShapeMismatch(format!(
                "Pool2d requires rank-4 input, got {x}"
            )));
        }
        let g = self.geometry();
        let (n, c, h, w) = (x.dim(0), x.dim(1), x.dim(2), x.dim(3));
        let ho = g.out_extent(h, self.kernel)?;
        let wo = g.out_extent(w, self.kernel)?;
        Ok((n, c, h, w, ho, wo))
    }

    /// Window values and their input offsets for window (oh, ow).
    #[allow(clippy::too_many_arguments)]
    fn window(
        &self,
        xd: &[f32],
        base: usize, // offset of (img, channel) plane
        h: usize,
        w: usize,
        oh: usize,
        ow: usize,
        vals: &mut Vec<(f32, usize)>,
    ) {
        vals.clear();
        for fh in 0..self.kernel {
            for fw in 0..self.kernel {
                let ih = oh * self.stride + fh;
                let iw = ow * self.stride + fw;
                debug_assert!(ih < h && iw < w);
                let off = base + ih * w + iw;
                vals.push((xd[off], off));
            }
        }
    }
}

impl Operator for Pool2dOp {
    fn name(&self) -> &str {
        match self.kind {
            PoolKind::Max => "MaxPool2d",
            PoolKind::Average => "AvgPool2d",
            PoolKind::Median => "MedianPool2d",
        }
    }
    fn num_inputs(&self) -> usize {
        1
    }
    fn output_shapes(&self, s: &[&Shape]) -> Result<Vec<Shape>> {
        let (n, c, _, _, ho, wo) = self.out_dims(s[0])?;
        Ok(vec![Shape::new(&[n, c, ho, wo])])
    }
    fn forward(&self, inputs: &[&Tensor]) -> Result<Vec<Tensor>> {
        let x = inputs[0];
        let (n, c, h, w, ho, wo) = self.out_dims(x.shape())?;
        let mut out = Tensor::zeros([n, c, ho, wo]);
        let xd = x.data();
        let od = out.data_mut();
        let mut vals = Vec::with_capacity(self.kernel * self.kernel);
        for plane in 0..n * c {
            let base = plane * h * w;
            for oh in 0..ho {
                for ow in 0..wo {
                    self.window(xd, base, h, w, oh, ow, &mut vals);
                    let v = match self.kind {
                        PoolKind::Max => vals
                            .iter()
                            .map(|&(v, _)| v)
                            .fold(f32::NEG_INFINITY, f32::max),
                        PoolKind::Average => {
                            vals.iter().map(|&(v, _)| v).sum::<f32>() / vals.len() as f32
                        }
                        PoolKind::Median => {
                            vals.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("NaN in pool"));
                            let m = vals.len();
                            if m % 2 == 1 {
                                vals[m / 2].0
                            } else {
                                0.5 * (vals[m / 2 - 1].0 + vals[m / 2].0)
                            }
                        }
                    };
                    od[(plane * ho + oh) * wo + ow] = v;
                }
            }
        }
        Ok(vec![out])
    }
    fn backward(
        &self,
        grad_outputs: &[&Tensor],
        inputs: &[&Tensor],
        _outputs: &[&Tensor],
    ) -> Result<Vec<Tensor>> {
        let x = inputs[0];
        let dy = grad_outputs[0];
        let (n, c, h, w, ho, wo) = self.out_dims(x.shape())?;
        let mut dx = Tensor::zeros(x.shape().clone());
        let (xd, dyd) = (x.data(), dy.data());
        let dxd = dx.data_mut();
        let mut vals = Vec::with_capacity(self.kernel * self.kernel);
        for plane in 0..n * c {
            let base = plane * h * w;
            for oh in 0..ho {
                for ow in 0..wo {
                    let g = dyd[(plane * ho + oh) * wo + ow];
                    self.window(xd, base, h, w, oh, ow, &mut vals);
                    match self.kind {
                        PoolKind::Max => {
                            // Route to the first maximal element (ties: cuDNN-style
                            // deterministic choice).
                            let (_, off) = vals.iter().copied().fold(
                                (f32::NEG_INFINITY, 0usize),
                                |acc, (v, o)| {
                                    if v > acc.0 {
                                        (v, o)
                                    } else {
                                        acc
                                    }
                                },
                            );
                            dxd[off] += g;
                        }
                        PoolKind::Average => {
                            let share = g / vals.len() as f32;
                            for &(_, off) in vals.iter() {
                                dxd[off] += share;
                            }
                        }
                        PoolKind::Median => {
                            vals.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("NaN in pool"));
                            let m = vals.len();
                            if m % 2 == 1 {
                                dxd[vals[m / 2].1] += g;
                            } else {
                                dxd[vals[m / 2 - 1].1] += 0.5 * g;
                                dxd[vals[m / 2].1] += 0.5 * g;
                            }
                        }
                    }
                }
            }
        }
        Ok(vec![dx])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plane(vals: &[f32]) -> Tensor {
        let n = (vals.len() as f64).sqrt() as usize;
        Tensor::from_vec([1, 1, n, n], vals.to_vec()).unwrap()
    }

    #[test]
    fn max_pool_known_values() {
        let x = plane(&[
            1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0, 11.0, 12.0, 13.0, 14.0, 15.0, 16.0,
        ]);
        let op = Pool2dOp::max(2, 2);
        let y = op.forward(&[&x]).unwrap();
        assert_eq!(y[0].shape(), &Shape::new(&[1, 1, 2, 2]));
        assert_eq!(y[0].data(), &[6.0, 8.0, 14.0, 16.0]);
    }

    #[test]
    fn avg_pool_known_values() {
        let x = plane(&[1.0, 2.0, 3.0, 4.0]);
        let op = Pool2dOp::average(2, 2);
        let y = op.forward(&[&x]).unwrap();
        assert_eq!(y[0].data(), &[2.5]);
    }

    #[test]
    fn median_pool_odd_window() {
        let x = plane(&[9.0, 1.0, 5.0, 2.0, 8.0, 3.0, 7.0, 4.0, 6.0]);
        let op = Pool2dOp::median(3, 1);
        let y = op.forward(&[&x]).unwrap();
        // median of 1..9 is 5
        assert_eq!(y[0].data(), &[5.0]);
    }

    #[test]
    fn median_pool_even_window_averages_middles() {
        let x = plane(&[1.0, 2.0, 3.0, 4.0]);
        let op = Pool2dOp::median(2, 2);
        let y = op.forward(&[&x]).unwrap();
        assert_eq!(y[0].data(), &[2.5]);
    }

    #[test]
    fn max_backward_routes_to_argmax() {
        let x = plane(&[1.0, 2.0, 3.0, 4.0]);
        let op = Pool2dOp::max(2, 2);
        let y = op.forward(&[&x]).unwrap();
        let g = Tensor::from_vec([1, 1, 1, 1], vec![10.0]).unwrap();
        let dx = op.backward(&[&g], &[&x], &[&y[0]]).unwrap();
        assert_eq!(dx[0].data(), &[0.0, 0.0, 0.0, 10.0]);
    }

    #[test]
    fn median_backward_splits_on_even_window() {
        let x = plane(&[1.0, 2.0, 3.0, 4.0]);
        let op = Pool2dOp::median(2, 2);
        let y = op.forward(&[&x]).unwrap();
        let g = Tensor::from_vec([1, 1, 1, 1], vec![2.0]).unwrap();
        let dx = op.backward(&[&g], &[&x], &[&y[0]]).unwrap();
        // middles of {1,2,3,4} are 2 and 3
        assert_eq!(dx[0].data(), &[0.0, 1.0, 1.0, 0.0]);
    }

    #[test]
    fn avg_backward_distributes_evenly() {
        let x = plane(&[1.0, 2.0, 3.0, 4.0]);
        let op = Pool2dOp::average(2, 2);
        let y = op.forward(&[&x]).unwrap();
        let g = Tensor::from_vec([1, 1, 1, 1], vec![4.0]).unwrap();
        let dx = op.backward(&[&g], &[&x], &[&y[0]]).unwrap();
        assert_eq!(dx[0].data(), &[1.0, 1.0, 1.0, 1.0]);
    }

    #[test]
    fn rejects_bad_rank() {
        let op = Pool2dOp::max(2, 2);
        assert!(op.output_shapes(&[&Shape::new(&[3, 3])]).is_err());
    }

    #[test]
    fn names() {
        assert_eq!(Pool2dOp::max(2, 2).name(), "MaxPool2d");
        assert_eq!(Pool2dOp::average(2, 2).name(), "AvgPool2d");
        assert_eq!(Pool2dOp::median(2, 2).name(), "MedianPool2d");
    }
}
