//! Winograd F(2×2, 3×3) convolution.
//!
//! The minimal-filtering algorithm of Lavin & Gray reduces the
//! multiplications per 2×2 output tile from 36 to 16 by transforming 4×4
//! input tiles and 3×3 filters into a 4×4 "Winograd domain", multiplying
//! elementwise, and transforming back:
//!
//! ```text
//! Y = Aᵀ [ (G g Gᵀ) ⊙ (Bᵀ d B) ] A
//! ```
//!
//! The rounding behaviour intentionally differs from direct/im2col
//! convolution, which is exactly why the paper compares implementations by
//! ℓ∞ norm instead of bit equality.

use super::ConvGeometry;
use deep500_tensor::{Result, Tensor};
use rayon::prelude::*;

/// `Bᵀ d B` for a 4×4 tile `d` (input transform).
#[inline]
fn input_transform(d: &[f32; 16], out: &mut [f32; 16]) {
    // Bt = [1  0 -1  0; 0  1  1  0; 0 -1  1  0; 0  1  0 -1]
    let mut tmp = [0.0f32; 16];
    // tmp = Bt * d
    for c in 0..4 {
        tmp[c] = d[c] - d[8 + c];
        tmp[4 + c] = d[4 + c] + d[8 + c];
        tmp[8 + c] = -d[4 + c] + d[8 + c];
        tmp[12 + c] = d[4 + c] - d[12 + c];
    }
    // out = tmp * B  (B = Btᵀ)
    for r in 0..4 {
        let t = &tmp[4 * r..4 * r + 4];
        out[4 * r] = t[0] - t[2];
        out[4 * r + 1] = t[1] + t[2];
        out[4 * r + 2] = -t[1] + t[2];
        out[4 * r + 3] = t[1] - t[3];
    }
}

/// `G g Gᵀ` for a 3×3 filter `g` (filter transform, result 4×4).
#[inline]
fn filter_transform(g: &[f32]) -> [f32; 16] {
    // G = [1 0 0; 1/2 1/2 1/2; 1/2 -1/2 1/2; 0 0 1]
    let mut tmp = [0.0f32; 12]; // 4x3 = G * g
    for c in 0..3 {
        let (g0, g1, g2) = (g[c], g[3 + c], g[6 + c]);
        tmp[c] = g0;
        tmp[3 + c] = 0.5 * (g0 + g1 + g2);
        tmp[6 + c] = 0.5 * (g0 - g1 + g2);
        tmp[9 + c] = g2;
    }
    let mut out = [0.0f32; 16]; // tmp * Gᵀ
    for r in 0..4 {
        let (t0, t1, t2) = (tmp[3 * r], tmp[3 * r + 1], tmp[3 * r + 2]);
        out[4 * r] = t0;
        out[4 * r + 1] = 0.5 * (t0 + t1 + t2);
        out[4 * r + 2] = 0.5 * (t0 - t1 + t2);
        out[4 * r + 3] = t2;
    }
    out
}

/// `Aᵀ m A` for a 4×4 Winograd-domain tile `m` (output transform, 2×2).
#[inline]
fn output_transform(m: &[f32; 16]) -> [f32; 4] {
    // At = [1 1 1 0; 0 1 -1 -1]
    let mut tmp = [0.0f32; 8]; // 2x4 = At * m
    for c in 0..4 {
        tmp[c] = m[c] + m[4 + c] + m[8 + c];
        tmp[4 + c] = m[4 + c] - m[8 + c] - m[12 + c];
    }
    [
        tmp[0] + tmp[1] + tmp[2],
        tmp[1] - tmp[2] - tmp[3],
        tmp[4] + tmp[5] + tmp[6],
        tmp[5] - tmp[6] - tmp[7],
    ]
}

/// Winograd F(2×2,3×3) forward convolution for stride-1 3×3 kernels,
/// arbitrary symmetric padding. Parallel over images.
pub fn forward_winograd_3x3(x: &Tensor, w: &Tensor, b: &Tensor, pad: usize) -> Result<Tensor> {
    let s = x.shape();
    let (n, c, h, wd) = (s.dim(0), s.dim(1), s.dim(2), s.dim(3));
    let co = w.shape().dim(0);
    let g = ConvGeometry { stride: 1, pad };
    let ho = g.out_extent(h, 3)?;
    let wo = g.out_extent(wd, 3)?;

    // Pre-transform all filters: [co][c] -> 4x4.
    let wdat = w.data();
    let filters: Vec<[f32; 16]> = (0..co * c)
        .map(|i| filter_transform(&wdat[i * 9..i * 9 + 9]))
        .collect();

    let tiles_h = ho.div_ceil(2);
    let tiles_w = wo.div_ceil(2);
    let mut out = Tensor::zeros([n, co, ho, wo]);
    let (xd, bd) = (x.data(), b.data());
    out.data_mut()
        .par_chunks_mut(co * ho * wo)
        .enumerate()
        .for_each(|(img, optr)| {
            let mut dtile = [0.0f32; 16];
            let mut dtrans = [0.0f32; 16];
            let mut macc = [0.0f32; 16];
            for th in 0..tiles_h {
                for tw in 0..tiles_w {
                    // Transform this tile once per input channel, accumulate
                    // per output channel in the Winograd domain.
                    for oc in 0..co {
                        macc.iter_mut().for_each(|v| *v = 0.0);
                        for ic in 0..c {
                            // Gather the 4x4 input tile (with padding).
                            for r in 0..4 {
                                for cc in 0..4 {
                                    let ih = (th * 2 + r) as isize - pad as isize;
                                    let iw = (tw * 2 + cc) as isize - pad as isize;
                                    dtile[r * 4 + cc] = if ih < 0
                                        || iw < 0
                                        || ih as usize >= h
                                        || iw as usize >= wd
                                    {
                                        0.0
                                    } else {
                                        xd[((img * c + ic) * h + ih as usize) * wd + iw as usize]
                                    };
                                }
                            }
                            input_transform(&dtile, &mut dtrans);
                            let f = &filters[oc * c + ic];
                            for i in 0..16 {
                                macc[i] += dtrans[i] * f[i];
                            }
                        }
                        let y = output_transform(&macc);
                        for r in 0..2 {
                            for cc in 0..2 {
                                let oh = th * 2 + r;
                                let ow = tw * 2 + cc;
                                if oh < ho && ow < wo {
                                    optr[(oc * ho + oh) * wo + ow] = y[r * 2 + cc] + bd[oc];
                                }
                            }
                        }
                    }
                }
            }
        });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conv::{forward_direct, ConvGeometry};
    use deep500_metrics::norms::linf_diff;
    use deep500_tensor::rng::Xoshiro256StarStar;

    #[test]
    fn filter_transform_of_identity_kernel() {
        // Delta kernel at center: convolution is identity. G g Gt has known values.
        let mut g = [0.0f32; 9];
        g[4] = 1.0;
        let f = filter_transform(&g);
        // Row pattern: [0, .5, -.5, 0] outer [0, .5, -.5, 0] scaled
        assert_eq!(f[0], 0.0);
        assert!((f[5] - 0.25).abs() < 1e-6);
    }

    #[test]
    fn matches_direct_convolution_on_even_sizes() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(21);
        let x = Tensor::rand_uniform([2, 3, 8, 8], -1.0, 1.0, &mut rng);
        let w = Tensor::rand_uniform([4, 3, 3, 3], -0.5, 0.5, &mut rng);
        let b = Tensor::rand_uniform([4], -0.1, 0.1, &mut rng);
        for pad in [0usize, 1] {
            let direct = forward_direct(&x, &w, &b, ConvGeometry { stride: 1, pad }).unwrap();
            let wino = forward_winograd_3x3(&x, &w, &b, pad).unwrap();
            assert_eq!(direct.shape(), wino.shape());
            let err = linf_diff(direct.data(), wino.data());
            assert!(err < 1e-4, "pad {pad}: linf {err}");
        }
    }

    #[test]
    fn matches_direct_on_odd_output_extent() {
        // Odd output extents exercise the partial-tile edge handling.
        let mut rng = Xoshiro256StarStar::seed_from_u64(22);
        let x = Tensor::rand_uniform([1, 2, 7, 9], -1.0, 1.0, &mut rng);
        let w = Tensor::rand_uniform([3, 2, 3, 3], -0.5, 0.5, &mut rng);
        let b = Tensor::zeros([3]);
        let direct = forward_direct(&x, &w, &b, ConvGeometry { stride: 1, pad: 1 }).unwrap();
        let wino = forward_winograd_3x3(&x, &w, &b, 1).unwrap();
        let err = linf_diff(direct.data(), wino.data());
        assert!(err < 1e-4, "linf {err}");
    }

    #[test]
    fn rounding_differs_from_direct_but_is_small() {
        // On larger accumulations Winograd rounds differently — the property
        // the paper's l-inf validation is designed around. The error must be
        // nonzero (different algorithm) yet tiny (correct algorithm).
        let mut rng = Xoshiro256StarStar::seed_from_u64(23);
        let x = Tensor::rand_uniform([1, 16, 16, 16], -2.0, 2.0, &mut rng);
        let w = Tensor::rand_uniform([8, 16, 3, 3], -0.5, 0.5, &mut rng);
        let b = Tensor::zeros([8]);
        let direct = forward_direct(&x, &w, &b, ConvGeometry { stride: 1, pad: 1 }).unwrap();
        let wino = forward_winograd_3x3(&x, &w, &b, 1).unwrap();
        let err = linf_diff(direct.data(), wino.data());
        assert!(err > 0.0, "identical bit patterns are suspicious");
        assert!(err < 1e-3, "linf {err}");
    }
}
