//! Winograd F(2×2, 3×3) convolution.
//!
//! The minimal-filtering algorithm of Lavin & Gray reduces the
//! multiplications per 2×2 output tile from 36 to 16 by transforming 4×4
//! input tiles and 3×3 filters into a 4×4 "Winograd domain", multiplying
//! elementwise, and transforming back:
//!
//! ```text
//! Y = Aᵀ [ (G g Gᵀ) ⊙ (Bᵀ d B) ] A
//! ```
//!
//! The rounding behaviour intentionally differs from direct/im2col
//! convolution, which is exactly why the paper compares implementations by
//! ℓ∞ norm instead of bit equality.

use super::ConvGeometry;
use crate::gemm;
use deep500_tensor::{recycle_scratch, scratch_zeroed, Result, Tensor};
use rayon::prelude::*;

/// `Bᵀ d B` for a 4×4 tile `d` (input transform).
#[inline]
fn input_transform(d: &[f32; 16], out: &mut [f32; 16]) {
    // Bt = [1  0 -1  0; 0  1  1  0; 0 -1  1  0; 0  1  0 -1]
    let mut tmp = [0.0f32; 16];
    // tmp = Bt * d
    for c in 0..4 {
        tmp[c] = d[c] - d[8 + c];
        tmp[4 + c] = d[4 + c] + d[8 + c];
        tmp[8 + c] = -d[4 + c] + d[8 + c];
        tmp[12 + c] = d[4 + c] - d[12 + c];
    }
    // out = tmp * B  (B = Btᵀ)
    for r in 0..4 {
        let t = &tmp[4 * r..4 * r + 4];
        out[4 * r] = t[0] - t[2];
        out[4 * r + 1] = t[1] + t[2];
        out[4 * r + 2] = -t[1] + t[2];
        out[4 * r + 3] = t[1] - t[3];
    }
}

/// `G g Gᵀ` for a 3×3 filter `g` (filter transform, result 4×4).
#[inline]
fn filter_transform(g: &[f32]) -> [f32; 16] {
    // G = [1 0 0; 1/2 1/2 1/2; 1/2 -1/2 1/2; 0 0 1]
    let mut tmp = [0.0f32; 12]; // 4x3 = G * g
    for c in 0..3 {
        let (g0, g1, g2) = (g[c], g[3 + c], g[6 + c]);
        tmp[c] = g0;
        tmp[3 + c] = 0.5 * (g0 + g1 + g2);
        tmp[6 + c] = 0.5 * (g0 - g1 + g2);
        tmp[9 + c] = g2;
    }
    let mut out = [0.0f32; 16]; // tmp * Gᵀ
    for r in 0..4 {
        let (t0, t1, t2) = (tmp[3 * r], tmp[3 * r + 1], tmp[3 * r + 2]);
        out[4 * r] = t0;
        out[4 * r + 1] = 0.5 * (t0 + t1 + t2);
        out[4 * r + 2] = 0.5 * (t0 - t1 + t2);
        out[4 * r + 3] = t2;
    }
    out
}

/// `Aᵀ m A` for a 4×4 Winograd-domain tile `m` (output transform, 2×2).
#[inline]
fn output_transform(m: &[f32; 16]) -> [f32; 4] {
    // At = [1 1 1 0; 0 1 -1 -1]
    let mut tmp = [0.0f32; 8]; // 2x4 = At * m
    for c in 0..4 {
        tmp[c] = m[c] + m[4 + c] + m[8 + c];
        tmp[4 + c] = m[4 + c] - m[8 + c] - m[12 + c];
    }
    [
        tmp[0] + tmp[1] + tmp[2],
        tmp[1] - tmp[2] - tmp[3],
        tmp[4] + tmp[5] + tmp[6],
        tmp[5] - tmp[6] - tmp[7],
    ]
}

/// Winograd F(2×2,3×3) forward convolution for stride-1 3×3 kernels,
/// arbitrary symmetric padding. Parallel over images.
///
/// Formulated as 16 batched tile GEMMs (Lavin & Gray §4): with `T` tiles
/// per image and `e` ranging over the 16 Winograd-domain elements,
///
/// ```text
/// U[e] : [co x c]   scattered filter transforms  (precomputed once)
/// V[e] : [c  x T]   scattered input transforms   (per image)
/// M[e] = U[e] * V[e] : [co x T]                  (Level-0 packed GEMM)
/// ```
///
/// so the elementwise channel reduction becomes a dense GEMM per domain
/// element and rides the [`gemm::Algorithm::Packed`] microkernel.
pub fn forward_winograd_3x3(x: &Tensor, w: &Tensor, b: &Tensor, pad: usize) -> Result<Tensor> {
    let s = x.shape();
    let (n, c, h, wd) = (s.dim(0), s.dim(1), s.dim(2), s.dim(3));
    let co = w.shape().dim(0);
    let g = ConvGeometry { stride: 1, pad };
    let ho = g.out_extent(h, 3)?;
    let wo = g.out_extent(wd, 3)?;

    // Pre-transform all filters and scatter into U[e] = [co x c].
    let wdat = w.data();
    let mut u = vec![0.0f32; 16 * co * c];
    for i in 0..co * c {
        let f = filter_transform(&wdat[i * 9..i * 9 + 9]);
        for (e, &fe) in f.iter().enumerate() {
            u[e * co * c + i] = fe;
        }
    }

    let tiles_h = ho.div_ceil(2);
    let tiles_w = wo.div_ceil(2);
    let t = tiles_h * tiles_w;
    let mut out = Tensor::zeros([n, co, ho, wo]);
    let (xd, bd) = (x.data(), b.data());
    out.data_mut()
        .par_chunks_mut(co * ho * wo)
        .enumerate()
        .for_each(|(img, optr)| {
            // Gather + transform all input tiles into V[e] = [c x T].
            let mut v = scratch_zeroed(16 * c * t);
            let mut dtile = [0.0f32; 16];
            let mut dtrans = [0.0f32; 16];
            for ic in 0..c {
                for th in 0..tiles_h {
                    for tw in 0..tiles_w {
                        for r in 0..4 {
                            for cc in 0..4 {
                                let ih = (th * 2 + r) as isize - pad as isize;
                                let iw = (tw * 2 + cc) as isize - pad as isize;
                                dtile[r * 4 + cc] =
                                    if ih < 0 || iw < 0 || ih as usize >= h || iw as usize >= wd {
                                        0.0
                                    } else {
                                        xd[((img * c + ic) * h + ih as usize) * wd + iw as usize]
                                    };
                            }
                        }
                        input_transform(&dtile, &mut dtrans);
                        let ti = th * tiles_w + tw;
                        for (e, &de) in dtrans.iter().enumerate() {
                            v[(e * c + ic) * t + ti] = de;
                        }
                    }
                }
            }
            // M[e] = U[e] * V[e]; scratch is zeroed on acquisition, so the
            // zeroed-C gemm_into contract holds.
            let mut mbuf = scratch_zeroed(16 * co * t);
            for e in 0..16 {
                gemm::gemm_into(
                    gemm::Algorithm::default(),
                    co,
                    t,
                    c,
                    &u[e * co * c..(e + 1) * co * c],
                    &v[e * c * t..(e + 1) * c * t],
                    &mut mbuf[e * co * t..(e + 1) * co * t],
                );
            }
            // Inverse transform each tile and scatter (partial edge tiles
            // clamp to the true output extent).
            let mut m = [0.0f32; 16];
            for oc in 0..co {
                for th in 0..tiles_h {
                    for tw in 0..tiles_w {
                        let ti = th * tiles_w + tw;
                        for (e, me) in m.iter_mut().enumerate() {
                            *me = mbuf[(e * co + oc) * t + ti];
                        }
                        let y = output_transform(&m);
                        for r in 0..2 {
                            for cc in 0..2 {
                                let oh = th * 2 + r;
                                let ow = tw * 2 + cc;
                                if oh < ho && ow < wo {
                                    optr[(oc * ho + oh) * wo + ow] = y[r * 2 + cc] + bd[oc];
                                }
                            }
                        }
                    }
                }
            }
            recycle_scratch(v);
            recycle_scratch(mbuf);
        });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conv::{forward_direct, ConvGeometry};
    use deep500_metrics::norms::linf_diff;
    use deep500_tensor::rng::Xoshiro256StarStar;

    #[test]
    fn filter_transform_of_identity_kernel() {
        // Delta kernel at center: convolution is identity. G g Gt has known values.
        let mut g = [0.0f32; 9];
        g[4] = 1.0;
        let f = filter_transform(&g);
        // Row pattern: [0, .5, -.5, 0] outer [0, .5, -.5, 0] scaled
        assert_eq!(f[0], 0.0);
        assert!((f[5] - 0.25).abs() < 1e-6);
    }

    #[test]
    fn matches_direct_convolution_on_even_sizes() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(21);
        let x = Tensor::rand_uniform([2, 3, 8, 8], -1.0, 1.0, &mut rng);
        let w = Tensor::rand_uniform([4, 3, 3, 3], -0.5, 0.5, &mut rng);
        let b = Tensor::rand_uniform([4], -0.1, 0.1, &mut rng);
        for pad in [0usize, 1] {
            let direct = forward_direct(&x, &w, &b, ConvGeometry { stride: 1, pad }).unwrap();
            let wino = forward_winograd_3x3(&x, &w, &b, pad).unwrap();
            assert_eq!(direct.shape(), wino.shape());
            let err = linf_diff(direct.data(), wino.data());
            assert!(err < 1e-4, "pad {pad}: linf {err}");
        }
    }

    #[test]
    fn matches_direct_on_odd_output_extent() {
        // Odd output extents exercise the partial-tile edge handling.
        let mut rng = Xoshiro256StarStar::seed_from_u64(22);
        let x = Tensor::rand_uniform([1, 2, 7, 9], -1.0, 1.0, &mut rng);
        let w = Tensor::rand_uniform([3, 2, 3, 3], -0.5, 0.5, &mut rng);
        let b = Tensor::zeros([3]);
        let direct = forward_direct(&x, &w, &b, ConvGeometry { stride: 1, pad: 1 }).unwrap();
        let wino = forward_winograd_3x3(&x, &w, &b, 1).unwrap();
        let err = linf_diff(direct.data(), wino.data());
        assert!(err < 1e-4, "linf {err}");
    }

    #[test]
    fn rounding_differs_from_direct_but_is_small() {
        // On larger accumulations Winograd rounds differently — the property
        // the paper's l-inf validation is designed around. The error must be
        // nonzero (different algorithm) yet tiny (correct algorithm).
        let mut rng = Xoshiro256StarStar::seed_from_u64(23);
        let x = Tensor::rand_uniform([1, 16, 16, 16], -2.0, 2.0, &mut rng);
        let w = Tensor::rand_uniform([8, 16, 3, 3], -0.5, 0.5, &mut rng);
        let b = Tensor::zeros([8]);
        let direct = forward_direct(&x, &w, &b, ConvGeometry { stride: 1, pad: 1 }).unwrap();
        let wino = forward_winograd_3x3(&x, &w, &b, 1).unwrap();
        let err = linf_diff(direct.data(), wino.data());
        assert!(err > 0.0, "identical bit patterns are suspicious");
        assert!(err < 1e-3, "linf {err}");
    }
}
