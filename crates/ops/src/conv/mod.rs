//! 2-D convolution (NCHW), with the paper's algorithm diversity.
//!
//! The paper's motivating examples stress that convolutions "can be
//! computed using different methods, e.g., im2col or Winograd"; the Level-1
//! micro-batch experiment even assigns *different* algorithms to different
//! micro-batch sizes (Fig. 7). We implement three interchangeable
//! algorithms:
//!
//! * [`ConvAlgorithm::Direct`] — seven-loop direct convolution,
//!   parallelized over images,
//! * [`ConvAlgorithm::Im2col`] — lowering to GEMM (the "implicit precompute
//!   GEMM" of the paper's figure), sharing the Level-0 GEMM kernels,
//! * [`ConvAlgorithm::Winograd`] — F(2×2, 3×3) Winograd for stride-1 3×3
//!   kernels (falls back to im2col otherwise), with genuinely different
//!   floating-point rounding, which is what makes the paper's ℓ∞
//!   cross-implementation comparisons non-trivial.
//!
//! Inputs follow ONNX `Conv`: `X [N,C,H,W]`, `W [Cout,Cin,kh,kw]`,
//! `B [Cout]`.

pub mod winograd;

use crate::gemm;
use crate::operator::Operator;
use deep500_tensor::{Error, Result, Shape, Tensor};
use rayon::prelude::*;

/// Convolution algorithm selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ConvAlgorithm {
    Direct,
    #[default]
    Im2col,
    Winograd,
}

/// Resolved convolution dimensions:
/// `(n, c, h, w, c_out, kh, kw, h_out, w_out)`.
pub type ConvDims = (
    usize,
    usize,
    usize,
    usize,
    usize,
    usize,
    usize,
    usize,
    usize,
);

/// Geometry of a convolution: stride and symmetric zero padding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvGeometry {
    pub stride: usize,
    pub pad: usize,
}

impl ConvGeometry {
    /// Output spatial extent for input extent `h` and kernel extent `k`.
    pub fn out_extent(&self, h: usize, k: usize) -> Result<usize> {
        let padded = h + 2 * self.pad;
        if k == 0 || self.stride == 0 {
            return Err(Error::Invalid("kernel/stride must be nonzero".into()));
        }
        if padded < k {
            return Err(Error::ShapeMismatch(format!(
                "kernel {k} larger than padded input {padded}"
            )));
        }
        Ok((padded - k) / self.stride + 1)
    }
}

/// The 2-D convolution operator.
#[derive(Debug, Clone)]
pub struct Conv2dOp {
    pub geometry: ConvGeometry,
    pub algo: ConvAlgorithm,
}

impl Conv2dOp {
    /// Convolution with the given stride/padding and algorithm.
    pub fn new(stride: usize, pad: usize, algo: ConvAlgorithm) -> Self {
        Conv2dOp {
            geometry: ConvGeometry { stride, pad },
            algo,
        }
    }

    fn dims(&self, x: &Shape, w: &Shape) -> Result<ConvDims> {
        if x.rank() != 4 || w.rank() != 4 {
            return Err(Error::ShapeMismatch(format!(
                "Conv2d: X {x} and W {w} must be rank 4"
            )));
        }
        let (n, c, h, wd) = (x.dim(0), x.dim(1), x.dim(2), x.dim(3));
        let (co, ci, kh, kw) = (w.dim(0), w.dim(1), w.dim(2), w.dim(3));
        if ci != c {
            return Err(Error::ShapeMismatch(format!(
                "Conv2d: input channels {c} vs kernel channels {ci}"
            )));
        }
        let ho = self.geometry.out_extent(h, kh)?;
        let wo = self.geometry.out_extent(wd, kw)?;
        Ok((n, c, h, wd, co, kh, kw, ho, wo))
    }
}

impl Operator for Conv2dOp {
    fn name(&self) -> &str {
        "Conv2d"
    }
    fn num_inputs(&self) -> usize {
        3
    }
    fn output_shapes(&self, s: &[&Shape]) -> Result<Vec<Shape>> {
        let (n, _, _, _, co, _, _, ho, wo) = self.dims(s[0], s[1])?;
        if s[2].numel() != co {
            return Err(Error::ShapeMismatch(format!(
                "Conv2d bias {} vs {co} output channels",
                s[2]
            )));
        }
        Ok(vec![Shape::new(&[n, co, ho, wo])])
    }
    fn forward(&self, inputs: &[&Tensor]) -> Result<Vec<Tensor>> {
        let (x, w, b) = (inputs[0], inputs[1], inputs[2]);
        let g = self.geometry;
        let out = match self.algo {
            ConvAlgorithm::Direct => forward_direct(x, w, b, g)?,
            ConvAlgorithm::Im2col => forward_im2col(x, w, b, g)?,
            ConvAlgorithm::Winograd => {
                if w.shape().dim(2) == 3 && w.shape().dim(3) == 3 && g.stride == 1 {
                    winograd::forward_winograd_3x3(x, w, b, g.pad)?
                } else {
                    forward_im2col(x, w, b, g)?
                }
            }
        };
        Ok(vec![out])
    }
    fn backward(
        &self,
        grad_outputs: &[&Tensor],
        inputs: &[&Tensor],
        _outputs: &[&Tensor],
    ) -> Result<Vec<Tensor>> {
        backward_direct(grad_outputs[0], inputs[0], inputs[1], self.geometry)
    }
    fn flops(&self, s: &[&Shape]) -> f64 {
        match self.dims(s[0], s[1]) {
            Ok((n, c, _, _, co, kh, kw, ho, wo)) => {
                deep500_metrics::flops::counts::conv2d(n, c, co, ho, wo, kh, kw)
            }
            Err(_) => 0.0,
        }
    }
    fn workspace_bytes(&self, s: &[&Shape]) -> usize {
        // Models a framework-style whole-batch lowering buffer: im2col
        // materializes [N * C*kh*kw * Ho*Wo] floats; Winograd keeps the
        // transformed input tiles V[16][C x T] plus the GEMM products
        // M[16][Co x T] (4 floats per output element per channel on each
        // side). This batch-proportional workspace is exactly what the
        // micro-batch transformation (Fig. 7) reduces. Direct convolution
        // needs none.
        match self.dims(s[0], s[1]) {
            Ok((n, c, _, _, co, kh, kw, ho, wo)) => match self.algo {
                ConvAlgorithm::Direct => 0,
                ConvAlgorithm::Im2col => n * c * kh * kw * ho * wo * 4,
                ConvAlgorithm::Winograd => n * (c + co) * ho * wo * 4 * 4,
            },
            Err(_) => 0,
        }
    }
}

/// Padded fetch: `x[n, c, h, w]` with zero padding outside bounds.
#[inline]
#[allow(clippy::too_many_arguments)] // inner-kernel plumbing: all scalars
fn fetch(
    x: &[f32],
    c: usize,
    hd: usize,
    wd: usize,
    n: usize,
    ci: usize,
    h: isize,
    w: isize,
) -> f32 {
    if h < 0 || w < 0 || h as usize >= hd || w as usize >= wd {
        0.0
    } else {
        x[((n * c + ci) * hd + h as usize) * wd + w as usize]
    }
}

/// Direct convolution, parallel over images.
pub fn forward_direct(x: &Tensor, w: &Tensor, b: &Tensor, g: ConvGeometry) -> Result<Tensor> {
    let (n, c, h, wd) = {
        let s = x.shape();
        (s.dim(0), s.dim(1), s.dim(2), s.dim(3))
    };
    let (co, _ci, kh, kw) = {
        let s = w.shape();
        (s.dim(0), s.dim(1), s.dim(2), s.dim(3))
    };
    let ho = g.out_extent(h, kh)?;
    let wo = g.out_extent(wd, kw)?;
    let mut out = Tensor::zeros([n, co, ho, wo]);
    let (xd, wdat, bd) = (x.data(), w.data(), b.data());
    out.data_mut()
        .par_chunks_mut(co * ho * wo)
        .enumerate()
        .for_each(|(img, optr)| {
            for oc in 0..co {
                for oh in 0..ho {
                    for ow in 0..wo {
                        let mut acc = bd[oc];
                        for ic in 0..c {
                            for fh in 0..kh {
                                for fw in 0..kw {
                                    let ih = (oh * g.stride + fh) as isize - g.pad as isize;
                                    let iw = (ow * g.stride + fw) as isize - g.pad as isize;
                                    let v = fetch(xd, c, h, wd, img, ic, ih, iw);
                                    acc += v * wdat[((oc * c + ic) * kh + fh) * kw + fw];
                                }
                            }
                        }
                        optr[(oc * ho + oh) * wo + ow] = acc;
                    }
                }
            }
        });
    Ok(out)
}

/// Lower one image into a column matrix `[C*kh*kw, ho*wo]`.
#[allow(clippy::too_many_arguments)] // kernel plumbing: all scalars
fn im2col_image(
    xd: &[f32],
    img: usize,
    c: usize,
    h: usize,
    wd: usize,
    kh: usize,
    kw: usize,
    ho: usize,
    wo: usize,
    g: ConvGeometry,
    col: &mut [f32],
) {
    let cols = ho * wo;
    for ic in 0..c {
        for fh in 0..kh {
            for fw in 0..kw {
                let row = (ic * kh + fh) * kw + fw;
                for oh in 0..ho {
                    for ow in 0..wo {
                        let ih = (oh * g.stride + fh) as isize - g.pad as isize;
                        let iw = (ow * g.stride + fw) as isize - g.pad as isize;
                        col[row * cols + oh * wo + ow] = fetch(xd, c, h, wd, img, ic, ih, iw);
                    }
                }
            }
        }
    }
}

/// im2col + GEMM convolution, parallel over images.
pub fn forward_im2col(x: &Tensor, w: &Tensor, b: &Tensor, g: ConvGeometry) -> Result<Tensor> {
    let (n, c, h, wd) = {
        let s = x.shape();
        (s.dim(0), s.dim(1), s.dim(2), s.dim(3))
    };
    let (co, _ci, kh, kw) = {
        let s = w.shape();
        (s.dim(0), s.dim(1), s.dim(2), s.dim(3))
    };
    let ho = g.out_extent(h, kh)?;
    let wo = g.out_extent(wd, kw)?;
    let mut out = Tensor::zeros([n, co, ho, wo]);
    let k = c * kh * kw;
    let cols = ho * wo;
    let (xd, wdat, bd) = (x.data(), w.data(), b.data());
    out.data_mut()
        .par_chunks_mut(co * cols)
        .enumerate()
        .for_each(|(img, optr)| {
            let mut col = deep500_tensor::scratch_zeroed(k * cols);
            im2col_image(xd, img, c, h, wd, kh, kw, ho, wo, g, &mut col);
            // W [co x k] * col [k x cols] -> out [co x cols]; `optr` comes
            // from Tensor::zeros, so the zeroed-C gemm_into contract holds.
            gemm::gemm_into(
                gemm::Algorithm::default(),
                co,
                cols,
                k,
                wdat,
                &col[..k * cols],
                optr,
            );
            deep500_tensor::recycle_scratch(col);
            for oc in 0..co {
                let bias = bd[oc];
                for v in &mut optr[oc * cols..(oc + 1) * cols] {
                    *v += bias;
                }
            }
        });
    Ok(out)
}

/// Direct backward pass: gradients w.r.t. input, weights, bias.
pub fn backward_direct(
    dy: &Tensor,
    x: &Tensor,
    w: &Tensor,
    g: ConvGeometry,
) -> Result<Vec<Tensor>> {
    let (n, c, h, wd) = {
        let s = x.shape();
        (s.dim(0), s.dim(1), s.dim(2), s.dim(3))
    };
    let (co, _ci, kh, kw) = {
        let s = w.shape();
        (s.dim(0), s.dim(1), s.dim(2), s.dim(3))
    };
    let ho = g.out_extent(h, kh)?;
    let wo = g.out_extent(wd, kw)?;
    if dy.shape() != &Shape::new(&[n, co, ho, wo]) {
        return Err(Error::ShapeMismatch(format!(
            "Conv2d backward: dY shape {} vs expected [{n}x{co}x{ho}x{wo}]",
            dy.shape()
        )));
    }
    let mut dx = Tensor::zeros(x.shape().clone());
    let mut dw = Tensor::zeros(w.shape().clone());
    let mut db = Tensor::zeros([co]);
    let (dyd, xd, wdat) = (dy.data(), x.data(), w.data());
    {
        let dxd = dx.data_mut();
        for img in 0..n {
            for oc in 0..co {
                for oh in 0..ho {
                    for ow in 0..wo {
                        let gval = dyd[((img * co + oc) * ho + oh) * wo + ow];
                        if gval == 0.0 {
                            continue;
                        }
                        for ic in 0..c {
                            for fh in 0..kh {
                                for fw in 0..kw {
                                    let ih = (oh * g.stride + fh) as isize - g.pad as isize;
                                    let iw = (ow * g.stride + fw) as isize - g.pad as isize;
                                    if ih < 0 || iw < 0 || ih as usize >= h || iw as usize >= wd {
                                        continue;
                                    }
                                    let xoff =
                                        ((img * c + ic) * h + ih as usize) * wd + iw as usize;
                                    dxd[xoff] += gval * wdat[((oc * c + ic) * kh + fh) * kw + fw];
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    {
        let dwd = dw.data_mut();
        let dbd = db.data_mut();
        for img in 0..n {
            for oc in 0..co {
                for oh in 0..ho {
                    for ow in 0..wo {
                        let gval = dyd[((img * co + oc) * ho + oh) * wo + ow];
                        dbd[oc] += gval;
                        if gval == 0.0 {
                            continue;
                        }
                        for ic in 0..c {
                            for fh in 0..kh {
                                for fw in 0..kw {
                                    let ih = (oh * g.stride + fh) as isize - g.pad as isize;
                                    let iw = (ow * g.stride + fw) as isize - g.pad as isize;
                                    let v = fetch(xd, c, h, wd, img, ic, ih, iw);
                                    dwd[((oc * c + ic) * kh + fh) * kw + fw] += gval * v;
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    Ok(vec![dx, dw, db])
}

#[cfg(test)]
mod tests {
    use super::*;
    use deep500_metrics::norms::linf_diff;
    use deep500_tensor::rng::Xoshiro256StarStar;

    fn rand_case(
        n: usize,
        c: usize,
        h: usize,
        w: usize,
        co: usize,
        k: usize,
        seed: u64,
    ) -> (Tensor, Tensor, Tensor) {
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        (
            Tensor::rand_uniform([n, c, h, w], -1.0, 1.0, &mut rng),
            Tensor::rand_uniform([co, c, k, k], -0.5, 0.5, &mut rng),
            Tensor::rand_uniform([co], -0.1, 0.1, &mut rng),
        )
    }

    #[test]
    fn output_shapes_computed() {
        let op = Conv2dOp::new(2, 1, ConvAlgorithm::Direct);
        let x = Shape::new(&[2, 3, 8, 8]);
        let w = Shape::new(&[4, 3, 3, 3]);
        let b = Shape::new(&[4]);
        let out = op.output_shapes(&[&x, &w, &b]).unwrap();
        // (8 + 2 - 3)/2 + 1 = 4
        assert_eq!(out[0], Shape::new(&[2, 4, 4, 4]));
    }

    #[test]
    fn invalid_geometry_rejected() {
        let op = Conv2dOp::new(1, 0, ConvAlgorithm::Direct);
        let x = Shape::new(&[1, 1, 2, 2]);
        let w = Shape::new(&[1, 1, 5, 5]);
        let b = Shape::new(&[1]);
        assert!(op.output_shapes(&[&x, &w, &b]).is_err());
        let w2 = Shape::new(&[1, 3, 2, 2]); // channel mismatch
        assert!(op.output_shapes(&[&x, &w2, &b]).is_err());
    }

    #[test]
    fn known_1x1_convolution() {
        // 1x1 kernel with weight 2 and bias 1 is an affine map.
        let x = Tensor::from_vec([1, 1, 2, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let w = Tensor::from_vec([1, 1, 1, 1], vec![2.0]).unwrap();
        let b = Tensor::from_slice(&[1.0]);
        let op = Conv2dOp::new(1, 0, ConvAlgorithm::Direct);
        let y = op.forward(&[&x, &w, &b]).unwrap();
        assert_eq!(y[0].data(), &[3.0, 5.0, 7.0, 9.0]);
    }

    #[test]
    fn algorithms_agree() {
        let (x, w, b) = rand_case(2, 3, 9, 9, 4, 3, 7);
        let direct = Conv2dOp::new(1, 1, ConvAlgorithm::Direct)
            .forward(&[&x, &w, &b])
            .unwrap();
        let im2col = Conv2dOp::new(1, 1, ConvAlgorithm::Im2col)
            .forward(&[&x, &w, &b])
            .unwrap();
        let wino = Conv2dOp::new(1, 1, ConvAlgorithm::Winograd)
            .forward(&[&x, &w, &b])
            .unwrap();
        assert!(linf_diff(direct[0].data(), im2col[0].data()) < 1e-4);
        assert!(
            linf_diff(direct[0].data(), wino[0].data()) < 1e-3,
            "winograd error {}",
            linf_diff(direct[0].data(), wino[0].data())
        );
    }

    #[test]
    fn strided_algorithms_agree() {
        let (x, w, b) = rand_case(1, 2, 11, 11, 3, 5, 9);
        let direct = Conv2dOp::new(2, 2, ConvAlgorithm::Direct)
            .forward(&[&x, &w, &b])
            .unwrap();
        let im2col = Conv2dOp::new(2, 2, ConvAlgorithm::Im2col)
            .forward(&[&x, &w, &b])
            .unwrap();
        assert!(linf_diff(direct[0].data(), im2col[0].data()) < 1e-4);
    }

    #[test]
    fn bias_gradient_is_output_sum() {
        let (x, w, b) = rand_case(2, 2, 5, 5, 3, 3, 11);
        let op = Conv2dOp::new(1, 1, ConvAlgorithm::Direct);
        let y = op.forward(&[&x, &w, &b]).unwrap();
        let dy = Tensor::ones(y[0].shape().clone());
        let grads = op.backward(&[&dy], &[&x, &w, &b], &[&y[0]]).unwrap();
        let per_channel = y[0].shape().dim(0) * y[0].shape().dim(2) * y[0].shape().dim(3);
        for &g in grads[2].data() {
            assert!((g - per_channel as f32).abs() < 1e-3);
        }
    }

    #[test]
    fn flops_match_formula() {
        let op = Conv2dOp::new(1, 0, ConvAlgorithm::Direct);
        let x = Shape::new(&[1, 1, 3, 3]);
        let w = Shape::new(&[1, 1, 3, 3]);
        let b = Shape::new(&[1]);
        // single output pixel, 9 MACs = 18 FLOPs
        assert_eq!(op.flops(&[&x, &w, &b]), 18.0);
    }
}
