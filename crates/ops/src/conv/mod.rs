//! 2-D convolution (NCHW), with the paper's algorithm diversity.
//!
//! The paper's motivating examples stress that convolutions "can be
//! computed using different methods, e.g., im2col or Winograd"; the Level-1
//! micro-batch experiment even assigns *different* algorithms to different
//! micro-batch sizes (Fig. 7). We implement three interchangeable
//! algorithms plus an automatic selector:
//!
//! * [`ConvAlgorithm::Direct`] — the fast tier ([`direct`]): implicit-GEMM
//!   convolution in an NCHWc blocked layout driving the packed SIMD GEMM
//!   microkernel, with weights pre-packed once per op instance (or ahead
//!   of time by the graph compiler), the activation layout conversion
//!   fused into the panel-packing gather, and bias/ReLU folded into the
//!   GEMM write-back via [`Epilogue`](crate::gemm::Epilogue),
//! * [`ConvAlgorithm::Im2col`] — lowering to GEMM through a materialized
//!   whole-image column buffer (the "explicit precompute GEMM" of the
//!   paper's figure), sharing the Level-0 GEMM kernels,
//! * [`ConvAlgorithm::Winograd`] — F(2×2, 3×3) Winograd for stride-1 3×3
//!   kernels (falls back to im2col otherwise), with genuinely different
//!   floating-point rounding, which is what makes the paper's ℓ∞
//!   cross-implementation comparisons non-trivial,
//! * [`ConvAlgorithm::Auto`] — per-shape heuristic selection (3×3 stride-1
//!   with deep channels → Winograd; anything with enough reduction depth
//!   and output width to feed the microkernel → Direct; tiny problems →
//!   Im2col), reported through [`Operator::annotation`] so per-op trace
//!   attribution records which tier actually ran.
//!
//! Inputs follow ONNX `Conv`: `X [N,C,H,W]`, `W [Cout,Cin,kh,kw]`,
//! `B [Cout]` — or, when the graph compiler's layout pass has pre-packed
//! the filter (`weights_packed` attribute), the rank-1 blocked image
//! produced by [`direct::PackConv2dFilterOp`].

pub mod direct;
pub mod winograd;

use crate::gemm::{self, packed::NR};
use crate::operator::Operator;
use deep500_tensor::{Error, Result, Shape, Tensor};
use parking_lot::Mutex;
use rayon::prelude::*;
use std::sync::Arc;

/// Convolution algorithm selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ConvAlgorithm {
    /// Pick per shape: Winograd for deep 3×3 stride-1, Direct for
    /// anything microkernel-friendly, Im2col as the fallback.
    Auto,
    Direct,
    #[default]
    Im2col,
    Winograd,
}

impl ConvAlgorithm {
    /// The registry `algorithm` attribute value naming this variant.
    pub fn attr_name(self) -> &'static str {
        match self {
            ConvAlgorithm::Auto => "auto",
            ConvAlgorithm::Direct => "direct",
            ConvAlgorithm::Im2col => "im2col",
            ConvAlgorithm::Winograd => "winograd",
        }
    }

    /// Parse a registry `algorithm` attribute value (unknown → Im2col,
    /// matching the registry's historical default).
    pub fn parse(s: &str) -> ConvAlgorithm {
        match s {
            "auto" => ConvAlgorithm::Auto,
            "direct" => ConvAlgorithm::Direct,
            "winograd" => ConvAlgorithm::Winograd,
            _ => ConvAlgorithm::Im2col,
        }
    }
}

/// Resolved convolution dimensions:
/// `(n, c, h, w, c_out, kh, kw, h_out, w_out)`.
pub type ConvDims = (
    usize,
    usize,
    usize,
    usize,
    usize,
    usize,
    usize,
    usize,
    usize,
);

/// Geometry of a convolution: stride and symmetric zero padding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvGeometry {
    pub stride: usize,
    pub pad: usize,
}

impl ConvGeometry {
    /// Output spatial extent for input extent `h` and kernel extent `k`.
    pub fn out_extent(&self, h: usize, k: usize) -> Result<usize> {
        let padded = h + 2 * self.pad;
        if k == 0 || self.stride == 0 {
            return Err(Error::Invalid("kernel/stride must be nonzero".into()));
        }
        if padded < k {
            return Err(Error::ShapeMismatch(format!(
                "kernel {k} larger than padded input {padded}"
            )));
        }
        Ok((padded - k) / self.stride + 1)
    }
}

/// Memoized packed filter keyed by the weight tensor's content-version
/// stamp ([`Tensor::version`]): O(1) per call, and sound even when the
/// buffer pool recycles a freed parameter allocation at the same address
/// — a recycled buffer is a new construction with a fresh stamp.
#[derive(Debug, Default)]
struct FilterCache {
    version: u64,
    packed: Option<Arc<direct::PackedFilter>>,
}

/// The 2-D convolution operator.
#[derive(Debug, Clone)]
pub struct Conv2dOp {
    pub geometry: ConvGeometry,
    pub algo: ConvAlgorithm,
    /// Fold `max(x, 0)` into the write-back (installed by the graph
    /// crate's epilogue-fusion transform). On the direct tier this rides
    /// the GEMM epilogue; the other tiers apply the identical float
    /// sequence as a separate pass.
    pub relu: bool,
    /// `Some([co, ci, kh, kw])` when input 1 is a filter pre-packed by
    /// [`direct::PackConv2dFilterOp`] (rank-1, [`direct::packed_filter_len`]
    /// floats) rather than the natural `[Co, Cin, kh, kw]` tensor. Forces
    /// the direct tier; inference-only.
    pub packed_weights: Option<[usize; 4]>,
    /// Per-instance packed-filter memo for the direct tier with natural
    /// weights (training, or inference without the compile pass). Shared
    /// across clones so executor snapshots reuse one packing.
    cache: Arc<Mutex<FilterCache>>,
}

impl Conv2dOp {
    /// Convolution with the given stride/padding and algorithm.
    pub fn new(stride: usize, pad: usize, algo: ConvAlgorithm) -> Self {
        Conv2dOp {
            geometry: ConvGeometry { stride, pad },
            algo,
            relu: false,
            packed_weights: None,
            cache: Arc::new(Mutex::new(FilterCache::default())),
        }
    }

    /// Enable the fused ReLU epilogue.
    pub fn with_relu(mut self, relu: bool) -> Self {
        self.relu = relu;
        self
    }

    /// Declare input 1 as a pre-packed filter with the given natural
    /// `[co, ci, kh, kw]` dimensions.
    pub fn with_packed_weights(mut self, dims: [usize; 4]) -> Self {
        self.packed_weights = Some(dims);
        self
    }

    fn dims(&self, x: &Shape, w: &Shape) -> Result<ConvDims> {
        if x.rank() != 4 {
            return Err(Error::ShapeMismatch(format!(
                "Conv2d: X {x} must be rank 4"
            )));
        }
        let (co, ci, kh, kw) = match self.packed_weights {
            Some([co, ci, kh, kw]) => {
                let expect = direct::packed_filter_len(co, ci * kh * kw);
                if w.numel() != expect {
                    return Err(Error::ShapeMismatch(format!(
                        "Conv2d: packed filter {w} has {} floats, expected {expect} \
                         for [{co},{ci},{kh},{kw}]",
                        w.numel()
                    )));
                }
                (co, ci, kh, kw)
            }
            None => {
                if w.rank() != 4 {
                    return Err(Error::ShapeMismatch(format!(
                        "Conv2d: W {w} must be rank 4"
                    )));
                }
                (w.dim(0), w.dim(1), w.dim(2), w.dim(3))
            }
        };
        let (n, c, h, wd) = (x.dim(0), x.dim(1), x.dim(2), x.dim(3));
        if ci != c {
            return Err(Error::ShapeMismatch(format!(
                "Conv2d: input channels {c} vs kernel channels {ci}"
            )));
        }
        let ho = self.geometry.out_extent(h, kh)?;
        let wo = self.geometry.out_extent(wd, kw)?;
        Ok((n, c, h, wd, co, kh, kw, ho, wo))
    }

    /// The algorithm that will actually execute for these dimensions:
    /// `Auto` resolved by the heuristic, Winograd's non-3×3/stride≠1
    /// fallback applied, pre-packed weights forcing the direct tier.
    pub fn resolved_algo(&self, d: &ConvDims) -> ConvAlgorithm {
        if self.packed_weights.is_some() {
            return ConvAlgorithm::Direct;
        }
        let (_, c, _, _, co, kh, kw, ho, wo) = *d;
        let wino_ok = kh == 3 && kw == 3 && self.geometry.stride == 1;
        let resolved = match self.algo {
            ConvAlgorithm::Auto => {
                if wino_ok && c >= 32 && co >= 32 {
                    // Deep 3×3 stride-1: Winograd's 2.25x FLOP reduction
                    // beats the direct tier's better data movement.
                    ConvAlgorithm::Winograd
                } else if c * kh * kw >= MIN_DIRECT_K && ho * wo >= NR {
                    // Enough reduction depth and output width to feed the
                    // 8x8 microkernel.
                    ConvAlgorithm::Direct
                } else {
                    ConvAlgorithm::Im2col
                }
            }
            a => a,
        };
        if resolved == ConvAlgorithm::Winograd && !wino_ok {
            ConvAlgorithm::Im2col
        } else {
            resolved
        }
    }

    /// [`Self::resolved_algo`] from raw input shapes — the entry point the
    /// graph compiler's layout pass uses to pin each conv's tier ahead of
    /// time from statically inferred shapes.
    pub fn resolved_algo_for(&self, x: &Shape, w: &Shape) -> Result<ConvAlgorithm> {
        Ok(self.resolved_algo(&self.dims(x, w)?))
    }

    /// Pack (or fetch the memoized packing of) the natural-layout filter.
    fn packed_filter(&self, w: &Tensor, co: usize, k: usize) -> Arc<direct::PackedFilter> {
        let version = w.version();
        let mut cache = self.cache.lock();
        match &cache.packed {
            Some(p) if cache.version == version => Arc::clone(p),
            _ => {
                let p = Arc::new(direct::pack_filter(w.data(), co, k));
                cache.version = version;
                cache.packed = Some(Arc::clone(&p));
                p
            }
        }
    }
}

/// Minimum reduction depth (`C·kh·kw`) for `Auto` to pick the direct tier:
/// below one microkernel tile's worth there is nothing to amortize the
/// panel packing against.
const MIN_DIRECT_K: usize = 8;

impl Operator for Conv2dOp {
    fn name(&self) -> &str {
        "Conv2d"
    }
    fn num_inputs(&self) -> usize {
        3
    }
    fn effects(&self) -> crate::operator::OpEffects {
        // With natural weights, the direct tier (reachable via an explicit
        // `direct` tag or `Auto` resolution) memoizes the MR-blocked filter
        // keyed on input 1's version stamp. Pre-packed weights skip the
        // memo entirely — the image arrives ready-made.
        let memo = self.packed_weights.is_none()
            && matches!(self.algo, ConvAlgorithm::Auto | ConvAlgorithm::Direct);
        crate::operator::OpEffects {
            version_memo_inputs: if memo { vec![1] } else { Vec::new() },
            mutated_inputs: Vec::new(),
        }
    }
    fn output_shapes(&self, s: &[&Shape]) -> Result<Vec<Shape>> {
        let (n, _, _, _, co, _, _, ho, wo) = self.dims(s[0], s[1])?;
        if s[2].numel() != co {
            return Err(Error::ShapeMismatch(format!(
                "Conv2d bias {} vs {co} output channels",
                s[2]
            )));
        }
        Ok(vec![Shape::new(&[n, co, ho, wo])])
    }
    fn forward(&self, inputs: &[&Tensor]) -> Result<Vec<Tensor>> {
        let (x, w, b) = (inputs[0], inputs[1], inputs[2]);
        let g = self.geometry;
        let d = self.dims(x.shape(), w.shape())?;
        let (_, c, _, _, co, kh, kw, _, _) = d;
        let out = match self.resolved_algo(&d) {
            ConvAlgorithm::Direct => {
                if self.packed_weights.is_some() {
                    direct::forward_direct_packed(x, w.data(), co, kh, kw, b, g, self.relu)?
                } else {
                    let pf = self.packed_filter(w, co, c * kh * kw);
                    direct::forward_direct_packed(x, &pf.data, co, kh, kw, b, g, self.relu)?
                }
            }
            ConvAlgorithm::Winograd => {
                let mut y = winograd::forward_winograd_3x3(x, w, b, g.pad)?;
                if self.relu {
                    relu_inplace(&mut y);
                }
                y
            }
            _ => {
                let mut y = forward_im2col(x, w, b, g)?;
                if self.relu {
                    relu_inplace(&mut y);
                }
                y
            }
        };
        Ok(vec![out])
    }
    fn backward(
        &self,
        grad_outputs: &[&Tensor],
        inputs: &[&Tensor],
        outputs: &[&Tensor],
    ) -> Result<Vec<Tensor>> {
        if self.packed_weights.is_some() {
            return Err(Error::Invalid(
                "Conv2d with pre-packed weights is inference-only (no backward)".into(),
            ));
        }
        // With the fused ReLU, first mask the incoming gradient exactly
        // like a standalone Relu node's backward: g * (y > 0 ? 1 : 0),
        // where y is this op's (post-ReLU) output.
        let masked;
        let dy = if self.relu {
            let y = outputs[0];
            masked = grad_outputs[0].zip(y, |gv, yv| gv * if yv > 0.0 { 1.0 } else { 0.0 })?;
            &masked
        } else {
            grad_outputs[0]
        };
        backward_direct(dy, inputs[0], inputs[1], self.geometry)
    }
    fn flops(&self, s: &[&Shape]) -> f64 {
        match self.dims(s[0], s[1]) {
            Ok((n, c, _, _, co, kh, kw, ho, wo)) => {
                deep500_metrics::flops::counts::conv2d(n, c, co, ho, wo, kh, kw)
            }
            Err(_) => 0.0,
        }
    }
    fn workspace_bytes(&self, s: &[&Shape]) -> usize {
        // Models the per-algorithm lowering buffer: im2col materializes
        // [N * C*kh*kw * Ho*Wo] floats; Winograd keeps the transformed
        // input tiles V[16][C x T] plus the GEMM products M[16][Co x T]
        // (4 floats per output element per channel on each side). This
        // batch-proportional workspace is exactly what the micro-batch
        // transformation (Fig. 7) reduces. The direct tier never
        // materializes the lowering — only a cache-blocked B panel plus
        // a gather row per worker.
        match self.dims(s[0], s[1]) {
            Ok(d) => {
                let (n, c, _, _, co, kh, kw, ho, wo) = d;
                let k = c * kh * kw;
                let cols = ho * wo;
                match self.resolved_algo(&d) {
                    ConvAlgorithm::Direct => {
                        let bl = gemm::Blocking::for_shape(co, cols, k);
                        let bwidth = bl.nc.min(cols.div_ceil(NR) * NR);
                        (bwidth * bl.kc + bwidth) * 4
                    }
                    ConvAlgorithm::Winograd => n * (c + co) * ho * wo * 4 * 4,
                    _ => n * k * cols * 4,
                }
            }
            Err(_) => 0,
        }
    }
    fn bytes_moved(&self, s: &[&Shape]) -> u64 {
        // Inputs read + outputs written, plus the lowering-buffer traffic
        // the tier actually generates (written once, read once by its
        // GEMM): the whole [K x Ho·Wo] im2col matrix per image for the
        // explicit lowering, nothing for the direct tier (its packed
        // panels stay cache-resident by construction — that difference is
        // the point of the tier, and it is what the attribution's
        // bytes-moved column should show).
        let io: usize = s.iter().map(|sh| sh.numel()).sum::<usize>()
            + self
                .output_shapes(s)
                .map(|o| o.iter().map(Shape::numel).sum())
                .unwrap_or(0);
        let lowering = match self.dims(s[0], s[1]) {
            Ok(d) => {
                let (n, c, _, _, co, kh, kw, ho, wo) = d;
                match self.resolved_algo(&d) {
                    ConvAlgorithm::Direct => 0,
                    ConvAlgorithm::Winograd => 2 * n * (c + co) * ho * wo * 4,
                    _ => 2 * n * c * kh * kw * ho * wo,
                }
            }
            Err(_) => 0,
        };
        ((io + lowering) * std::mem::size_of::<f32>()) as u64
    }
    fn annotation(&self, s: &[&Shape]) -> Option<String> {
        let d = self.dims(s[0], s[1]).ok()?;
        let tier = match self.resolved_algo(&d) {
            ConvAlgorithm::Direct => "direct",
            ConvAlgorithm::Winograd => "winograd",
            _ => "im2col",
        };
        let mut note = format!("tier={tier}");
        if self.relu {
            note.push_str("+relu");
        }
        if self.packed_weights.is_some() {
            note.push_str(" prepacked");
        }
        Some(note)
    }
}

/// `max(x, 0)` over a whole tensor — the unfused ReLU pass for tiers
/// without a fusable write-back. Same per-element float op as the fused
/// [`Epilogue`] path and `ActivationOp::relu` (NaN maps to 0).
fn relu_inplace(t: &mut Tensor) {
    for v in t.data_mut() {
        *v = v.max(0.0);
    }
}

/// Padded fetch: `x[n, c, h, w]` with zero padding outside bounds.
#[inline]
#[allow(clippy::too_many_arguments)] // inner-kernel plumbing: all scalars
fn fetch(
    x: &[f32],
    c: usize,
    hd: usize,
    wd: usize,
    n: usize,
    ci: usize,
    h: isize,
    w: isize,
) -> f32 {
    if h < 0 || w < 0 || h as usize >= hd || w as usize >= wd {
        0.0
    } else {
        x[((n * c + ci) * hd + h as usize) * wd + w as usize]
    }
}

/// Seven-loop reference convolution, parallel over images. Kept as the
/// bit-transparent oracle for the optimized tiers' parity tests; not
/// selected by any [`ConvAlgorithm`].
pub fn forward_reference(x: &Tensor, w: &Tensor, b: &Tensor, g: ConvGeometry) -> Result<Tensor> {
    let (n, c, h, wd) = {
        let s = x.shape();
        (s.dim(0), s.dim(1), s.dim(2), s.dim(3))
    };
    let (co, _ci, kh, kw) = {
        let s = w.shape();
        (s.dim(0), s.dim(1), s.dim(2), s.dim(3))
    };
    let ho = g.out_extent(h, kh)?;
    let wo = g.out_extent(wd, kw)?;
    let mut out = Tensor::zeros([n, co, ho, wo]);
    let (xd, wdat, bd) = (x.data(), w.data(), b.data());
    out.data_mut()
        .par_chunks_mut(co * ho * wo)
        .enumerate()
        .for_each(|(img, optr)| {
            for oc in 0..co {
                for oh in 0..ho {
                    for ow in 0..wo {
                        let mut acc = bd[oc];
                        for ic in 0..c {
                            for fh in 0..kh {
                                for fw in 0..kw {
                                    let ih = (oh * g.stride + fh) as isize - g.pad as isize;
                                    let iw = (ow * g.stride + fw) as isize - g.pad as isize;
                                    let v = fetch(xd, c, h, wd, img, ic, ih, iw);
                                    acc += v * wdat[((oc * c + ic) * kh + fh) * kw + fw];
                                }
                            }
                        }
                        optr[(oc * ho + oh) * wo + ow] = acc;
                    }
                }
            }
        });
    Ok(out)
}

/// Direct-tier convolution from natural-layout inputs: packs the filter
/// (unmemoized) and runs the NCHWc implicit-GEMM fast path — the
/// standalone entry point mirroring [`forward_im2col`]. [`Conv2dOp`] goes
/// through its packing memo instead.
pub fn forward_direct(x: &Tensor, w: &Tensor, b: &Tensor, g: ConvGeometry) -> Result<Tensor> {
    let s = w.shape();
    if s.rank() != 4 {
        return Err(Error::ShapeMismatch(format!(
            "Conv2d: W {s} must be rank 4"
        )));
    }
    let (co, k) = (s.dim(0), s.dim(1) * s.dim(2) * s.dim(3));
    let pf = direct::pack_filter(w.data(), co, k);
    direct::forward_direct_packed(x, &pf.data, co, s.dim(2), s.dim(3), b, g, false)
}

/// Lower one image into a column matrix `[C*kh*kw, ho*wo]`. Writes every
/// element of `col[..C*kh*kw * ho*wo]` (zero padding included), so callers
/// may hand in dirty scratch.
#[allow(clippy::too_many_arguments)] // kernel plumbing: all scalars
fn im2col_image(
    xd: &[f32],
    img: usize,
    c: usize,
    h: usize,
    wd: usize,
    kh: usize,
    kw: usize,
    ho: usize,
    wo: usize,
    g: ConvGeometry,
    col: &mut [f32],
) {
    let cols = ho * wo;
    for ic in 0..c {
        for fh in 0..kh {
            for fw in 0..kw {
                let row = (ic * kh + fh) * kw + fw;
                for oh in 0..ho {
                    for ow in 0..wo {
                        let ih = (oh * g.stride + fh) as isize - g.pad as isize;
                        let iw = (ow * g.stride + fw) as isize - g.pad as isize;
                        col[row * cols + oh * wo + ow] = fetch(xd, c, h, wd, img, ic, ih, iw);
                    }
                }
            }
        }
    }
}

/// im2col + GEMM convolution, parallel over images.
pub fn forward_im2col(x: &Tensor, w: &Tensor, b: &Tensor, g: ConvGeometry) -> Result<Tensor> {
    let (n, c, h, wd) = {
        let s = x.shape();
        (s.dim(0), s.dim(1), s.dim(2), s.dim(3))
    };
    let (co, _ci, kh, kw) = {
        let s = w.shape();
        (s.dim(0), s.dim(1), s.dim(2), s.dim(3))
    };
    let ho = g.out_extent(h, kh)?;
    let wo = g.out_extent(wd, kw)?;
    let mut out = Tensor::zeros([n, co, ho, wo]);
    let k = c * kh * kw;
    let cols = ho * wo;
    let (xd, wdat, bd) = (x.data(), w.data(), b.data());
    out.data_mut()
        .par_chunks_mut(co * cols)
        .enumerate()
        .for_each(|(img, optr)| {
            // Dirty scratch: im2col_image overwrites all k * cols elements
            // (padding written explicitly), so acquire-time zeroing was
            // pure wasted traffic — k * cols floats cleared per image.
            let mut col = deep500_tensor::scratch_dirty(k * cols);
            im2col_image(xd, img, c, h, wd, kh, kw, ho, wo, g, &mut col);
            // W [co x k] * col [k x cols] -> out [co x cols]; `optr` comes
            // from Tensor::zeros, so the zeroed-C gemm_into contract holds.
            gemm::gemm_into(
                gemm::Algorithm::default(),
                co,
                cols,
                k,
                wdat,
                &col[..k * cols],
                optr,
            );
            deep500_tensor::recycle_scratch(col);
            for oc in 0..co {
                let bias = bd[oc];
                for v in &mut optr[oc * cols..(oc + 1) * cols] {
                    *v += bias;
                }
            }
        });
    Ok(out)
}

/// Direct backward pass: gradients w.r.t. input, weights, bias.
pub fn backward_direct(
    dy: &Tensor,
    x: &Tensor,
    w: &Tensor,
    g: ConvGeometry,
) -> Result<Vec<Tensor>> {
    let (n, c, h, wd) = {
        let s = x.shape();
        (s.dim(0), s.dim(1), s.dim(2), s.dim(3))
    };
    let (co, _ci, kh, kw) = {
        let s = w.shape();
        (s.dim(0), s.dim(1), s.dim(2), s.dim(3))
    };
    let ho = g.out_extent(h, kh)?;
    let wo = g.out_extent(wd, kw)?;
    if dy.shape() != &Shape::new(&[n, co, ho, wo]) {
        return Err(Error::ShapeMismatch(format!(
            "Conv2d backward: dY shape {} vs expected [{n}x{co}x{ho}x{wo}]",
            dy.shape()
        )));
    }
    let mut dx = Tensor::zeros(x.shape().clone());
    let mut dw = Tensor::zeros(w.shape().clone());
    let mut db = Tensor::zeros([co]);
    let (dyd, xd, wdat) = (dy.data(), x.data(), w.data());
    {
        let dxd = dx.data_mut();
        for img in 0..n {
            for oc in 0..co {
                for oh in 0..ho {
                    for ow in 0..wo {
                        let gval = dyd[((img * co + oc) * ho + oh) * wo + ow];
                        if gval == 0.0 {
                            continue;
                        }
                        for ic in 0..c {
                            for fh in 0..kh {
                                for fw in 0..kw {
                                    let ih = (oh * g.stride + fh) as isize - g.pad as isize;
                                    let iw = (ow * g.stride + fw) as isize - g.pad as isize;
                                    if ih < 0 || iw < 0 || ih as usize >= h || iw as usize >= wd {
                                        continue;
                                    }
                                    let xoff =
                                        ((img * c + ic) * h + ih as usize) * wd + iw as usize;
                                    dxd[xoff] += gval * wdat[((oc * c + ic) * kh + fh) * kw + fw];
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    {
        let dwd = dw.data_mut();
        let dbd = db.data_mut();
        for img in 0..n {
            for oc in 0..co {
                for oh in 0..ho {
                    for ow in 0..wo {
                        let gval = dyd[((img * co + oc) * ho + oh) * wo + ow];
                        dbd[oc] += gval;
                        if gval == 0.0 {
                            continue;
                        }
                        for ic in 0..c {
                            for fh in 0..kh {
                                for fw in 0..kw {
                                    let ih = (oh * g.stride + fh) as isize - g.pad as isize;
                                    let iw = (ow * g.stride + fw) as isize - g.pad as isize;
                                    let v = fetch(xd, c, h, wd, img, ic, ih, iw);
                                    dwd[((oc * c + ic) * kh + fh) * kw + fw] += gval * v;
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    Ok(vec![dx, dw, db])
}

#[cfg(test)]
mod tests {
    use super::*;
    use deep500_metrics::norms::linf_diff;
    use deep500_tensor::rng::Xoshiro256StarStar;

    fn rand_case(
        n: usize,
        c: usize,
        h: usize,
        w: usize,
        co: usize,
        k: usize,
        seed: u64,
    ) -> (Tensor, Tensor, Tensor) {
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        (
            Tensor::rand_uniform([n, c, h, w], -1.0, 1.0, &mut rng),
            Tensor::rand_uniform([co, c, k, k], -0.5, 0.5, &mut rng),
            Tensor::rand_uniform([co], -0.1, 0.1, &mut rng),
        )
    }

    #[test]
    fn output_shapes_computed() {
        let op = Conv2dOp::new(2, 1, ConvAlgorithm::Direct);
        let x = Shape::new(&[2, 3, 8, 8]);
        let w = Shape::new(&[4, 3, 3, 3]);
        let b = Shape::new(&[4]);
        let out = op.output_shapes(&[&x, &w, &b]).unwrap();
        // (8 + 2 - 3)/2 + 1 = 4
        assert_eq!(out[0], Shape::new(&[2, 4, 4, 4]));
    }

    #[test]
    fn invalid_geometry_rejected() {
        let op = Conv2dOp::new(1, 0, ConvAlgorithm::Direct);
        let x = Shape::new(&[1, 1, 2, 2]);
        let w = Shape::new(&[1, 1, 5, 5]);
        let b = Shape::new(&[1]);
        assert!(op.output_shapes(&[&x, &w, &b]).is_err());
        let w2 = Shape::new(&[1, 3, 2, 2]); // channel mismatch
        assert!(op.output_shapes(&[&x, &w2, &b]).is_err());
    }

    #[test]
    fn known_1x1_convolution() {
        // 1x1 kernel with weight 2 and bias 1 is an affine map.
        let x = Tensor::from_vec([1, 1, 2, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let w = Tensor::from_vec([1, 1, 1, 1], vec![2.0]).unwrap();
        let b = Tensor::from_slice(&[1.0]);
        let op = Conv2dOp::new(1, 0, ConvAlgorithm::Direct);
        let y = op.forward(&[&x, &w, &b]).unwrap();
        assert_eq!(y[0].data(), &[3.0, 5.0, 7.0, 9.0]);
    }

    #[test]
    fn algorithms_agree() {
        let (x, w, b) = rand_case(2, 3, 9, 9, 4, 3, 7);
        let g = ConvGeometry { stride: 1, pad: 1 };
        let reference = forward_reference(&x, &w, &b, g).unwrap();
        let direct = Conv2dOp::new(1, 1, ConvAlgorithm::Direct)
            .forward(&[&x, &w, &b])
            .unwrap();
        let im2col = Conv2dOp::new(1, 1, ConvAlgorithm::Im2col)
            .forward(&[&x, &w, &b])
            .unwrap();
        let wino = Conv2dOp::new(1, 1, ConvAlgorithm::Winograd)
            .forward(&[&x, &w, &b])
            .unwrap();
        assert!(linf_diff(direct[0].data(), im2col[0].data()) < 1e-4);
        assert!(linf_diff(reference.data(), direct[0].data()) < 1e-4);
        assert!(
            linf_diff(reference.data(), wino[0].data()) < 1e-3,
            "winograd error {}",
            linf_diff(reference.data(), wino[0].data())
        );
    }

    #[test]
    fn strided_algorithms_agree() {
        let (x, w, b) = rand_case(1, 2, 11, 11, 3, 5, 9);
        let direct = Conv2dOp::new(2, 2, ConvAlgorithm::Direct)
            .forward(&[&x, &w, &b])
            .unwrap();
        let im2col = Conv2dOp::new(2, 2, ConvAlgorithm::Im2col)
            .forward(&[&x, &w, &b])
            .unwrap();
        assert!(linf_diff(direct[0].data(), im2col[0].data()) < 1e-4);
    }

    #[test]
    fn bias_gradient_is_output_sum() {
        let (x, w, b) = rand_case(2, 2, 5, 5, 3, 3, 11);
        let op = Conv2dOp::new(1, 1, ConvAlgorithm::Direct);
        let y = op.forward(&[&x, &w, &b]).unwrap();
        let dy = Tensor::ones(y[0].shape().clone());
        let grads = op.backward(&[&dy], &[&x, &w, &b], &[&y[0]]).unwrap();
        let per_channel = y[0].shape().dim(0) * y[0].shape().dim(2) * y[0].shape().dim(3);
        for &g in grads[2].data() {
            assert!((g - per_channel as f32).abs() < 1e-3);
        }
    }

    #[test]
    fn flops_match_formula() {
        let op = Conv2dOp::new(1, 0, ConvAlgorithm::Direct);
        let x = Shape::new(&[1, 1, 3, 3]);
        let w = Shape::new(&[1, 1, 3, 3]);
        let b = Shape::new(&[1]);
        // single output pixel, 9 MACs = 18 FLOPs
        assert_eq!(op.flops(&[&x, &w, &b]), 18.0);
    }

    #[test]
    fn im2col_is_stale_scratch_safe() {
        // Regression for the wasted-zeroing fix: forward_im2col now takes
        // *dirty* pool scratch for the column buffer, relying on
        // im2col_image writing every element (padding included). Poison
        // the current thread's scratch pool with NaN-filled buffers of the
        // exact class the conv will draw, then check parity against the
        // reference. (The per-image closure runs on rayon workers whose
        // pools start clean, so a same-thread single-image case is the
        // sharp version of this test.)
        let (x, w, b) = rand_case(1, 2, 7, 7, 3, 3, 21);
        let g = ConvGeometry { stride: 1, pad: 2 };
        let k_cols = (2 * 3 * 3) * (9 * 9);
        for _ in 0..4 {
            let mut buf = deep500_tensor::scratch_dirty(k_cols);
            buf.fill(f32::NAN);
            deep500_tensor::recycle_scratch(buf);
        }
        let lowered = forward_im2col(&x, &w, &b, g).unwrap();
        let reference = forward_reference(&x, &w, &b, g).unwrap();
        assert!(
            lowered.data().iter().all(|v| v.is_finite()),
            "stale NaN scratch leaked into the output"
        );
        assert!(linf_diff(lowered.data(), reference.data()) < 1e-4);
    }

    #[test]
    fn auto_resolves_by_shape() {
        // Deep 3x3 stride-1 -> Winograd.
        let op = Conv2dOp::new(1, 1, ConvAlgorithm::Auto);
        let d = op
            .dims(&Shape::new(&[1, 32, 8, 8]), &Shape::new(&[32, 32, 3, 3]))
            .unwrap();
        assert_eq!(op.resolved_algo(&d), ConvAlgorithm::Winograd);
        // Microkernel-friendly 5x5 -> Direct.
        let d = op
            .dims(&Shape::new(&[1, 8, 14, 14]), &Shape::new(&[16, 8, 5, 5]))
            .unwrap();
        assert_eq!(op.resolved_algo(&d), ConvAlgorithm::Direct);
        // Tiny 1x1 single-channel -> Im2col fallback.
        let d = op
            .dims(&Shape::new(&[1, 1, 4, 4]), &Shape::new(&[2, 1, 1, 1]))
            .unwrap();
        assert_eq!(op.resolved_algo(&d), ConvAlgorithm::Im2col);
        // Explicit Winograd on a non-3x3 kernel falls back to im2col.
        let op = Conv2dOp::new(1, 0, ConvAlgorithm::Winograd);
        let d = op
            .dims(&Shape::new(&[1, 2, 8, 8]), &Shape::new(&[4, 2, 5, 5]))
            .unwrap();
        assert_eq!(op.resolved_algo(&d), ConvAlgorithm::Im2col);
    }

    #[test]
    fn fused_relu_matches_separate_pass_bitwise() {
        for algo in [
            ConvAlgorithm::Direct,
            ConvAlgorithm::Im2col,
            ConvAlgorithm::Winograd,
        ] {
            let (x, w, b) = rand_case(2, 3, 7, 7, 4, 3, 31);
            let plain = Conv2dOp::new(1, 1, algo).forward(&[&x, &w, &b]).unwrap();
            let fused = Conv2dOp::new(1, 1, algo)
                .with_relu(true)
                .forward(&[&x, &w, &b])
                .unwrap();
            let mut want = plain[0].clone();
            relu_inplace(&mut want);
            let fb: Vec<u32> = fused[0].data().iter().map(|v| v.to_bits()).collect();
            let wb: Vec<u32> = want.data().iter().map(|v| v.to_bits()).collect();
            assert_eq!(fb, wb, "{algo:?}: fused ReLU diverged from separate pass");
        }
    }

    #[test]
    fn prepacked_weights_match_natural_layout() {
        let (x, w, b) = rand_case(2, 3, 9, 9, 5, 3, 41);
        let natural = Conv2dOp::new(1, 1, ConvAlgorithm::Direct)
            .forward(&[&x, &w, &b])
            .unwrap();
        let packed = direct::PackConv2dFilterOp.forward(&[&w]).unwrap();
        let op = Conv2dOp::new(1, 1, ConvAlgorithm::Auto).with_packed_weights([5, 3, 3, 3]);
        let y = op.forward(&[&x, &packed[0], &b]).unwrap();
        assert_eq!(
            natural[0].data(),
            y[0].data(),
            "pre-packed filter path must be bit-identical to the op-cache path"
        );
        // Declared output shape goes through the packed-dims path too.
        let shapes = op
            .output_shapes(&[x.shape(), packed[0].shape(), b.shape()])
            .unwrap();
        assert_eq!(shapes[0], *y[0].shape());
        // Backward through a packed filter is a contract violation.
        let dy = Tensor::ones(y[0].shape().clone());
        assert!(op
            .backward(&[&dy], &[&x, &packed[0], &b], &[&y[0]])
            .is_err());
    }

    #[test]
    fn filter_cache_tracks_weight_updates() {
        // Same op instance, mutated weights: the packing memo must notice
        // the content change (an optimizer step replacing the parameter)
        // and repack rather than serving the stale filter.
        let (x, w, b) = rand_case(1, 2, 6, 6, 4, 3, 51);
        let op = Conv2dOp::new(1, 1, ConvAlgorithm::Direct);
        let y1 = op.forward(&[&x, &w, &b]).unwrap();
        let w2 = w.scale(2.0);
        let y2 = op.forward(&[&x, &w2, &b]).unwrap();
        let fresh = Conv2dOp::new(1, 1, ConvAlgorithm::Direct)
            .forward(&[&x, &w2, &b])
            .unwrap();
        assert_eq!(y2[0].data(), fresh[0].data(), "stale packed filter served");
        assert_ne!(y1[0].data(), y2[0].data());
    }

    #[test]
    fn annotation_reports_resolved_tier() {
        let op = Conv2dOp::new(1, 1, ConvAlgorithm::Auto).with_relu(true);
        let x = Shape::new(&[1, 8, 14, 14]);
        let w = Shape::new(&[16, 8, 5, 5]);
        let b = Shape::new(&[16]);
        assert_eq!(
            op.annotation(&[&x, &w, &b]).as_deref(),
            Some("tier=direct+relu")
        );
        let op = Conv2dOp::new(1, 0, ConvAlgorithm::Im2col);
        assert_eq!(
            op.annotation(&[&Shape::new(&[1, 1, 4, 4]), &Shape::new(&[2, 1, 1, 1]), &b])
                .as_deref(),
            Some("tier=im2col")
        );
    }

    #[test]
    fn direct_tier_parity_on_awkward_shapes() {
        // Odd channels, edge-tile output widths, 1x1 kernels, strides.
        for (n, c, h, w, co, k, stride, pad, seed) in [
            (
                1usize, 3usize, 9usize, 9usize, 7usize, 3usize, 1usize, 1usize, 61u64,
            ),
            (2, 1, 8, 8, 9, 1, 1, 0, 62),
            (1, 5, 12, 10, 11, 3, 2, 1, 63),
            (3, 2, 6, 6, 4, 5, 1, 2, 64),
            (1, 4, 17, 3, 13, 3, 3, 1, 65),
        ] {
            let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
            let x = Tensor::rand_uniform([n, c, h, w], -1.0, 1.0, &mut rng);
            let wt = Tensor::rand_uniform([co, c, k, k], -0.5, 0.5, &mut rng);
            let b = Tensor::rand_uniform([co], -0.1, 0.1, &mut rng);
            let g = ConvGeometry { stride, pad };
            let direct = forward_direct(&x, &wt, &b, g).unwrap();
            let lowered = forward_im2col(&x, &wt, &b, g).unwrap();
            let err = linf_diff(direct.data(), lowered.data());
            assert!(
                err < 1e-4,
                "n{n} c{c} {h}x{w} co{co} k{k} s{stride} p{pad}: linf {err}"
            );
        }
    }
}
