//! The `ConvAlgorithm::Direct` fast tier: NCHWc blocked-layout convolution
//! driving the packed GEMM microkernel, with both layout transforms hoisted
//! out of the hot loop.
//!
//! The computation is the same implicit GEMM as im2col —
//! `C [Co x P] = W [Co x K] * X̃ [K x P]` per image, `K = C·kh·kw`,
//! `P = Ho·Wo` — but neither operand is ever materialized in its logical
//! layout:
//!
//! * **Weights** are packed *once* into the microkernel's blocked sliver
//!   format ([`pack_filter`]): for every `KC` reduction block, `MR`-row
//!   slivers laid out `[p][i]` — the nGraph-style "NCHWc" blocked filter
//!   layout, with the output-channel dimension split into
//!   register-tile-sized chunks. Because the packed A-panel geometry
//!   ([`Blocking`]) depends only on `(Co, K)`, one packed image serves
//!   every input spatial size, so the transform is hoisted to op-instance
//!   setup (or, under the graph compiler, to a constant-folded
//!   `PackConv2dFilter` node).
//! * **Activations** are gathered directly from NCHW into the packed
//!   B-panel slivers `[p][j]` ([`pack_b_conv`]): the im2col lowering *is*
//!   the panel-packing copy the GEMM would do anyway, so no `K x P` scratch
//!   matrix ever exists. Stride-1 rows take a `copy_from_slice` fast path;
//!   zero padding is written analytically (no per-element bounds branch).
//!
//! The output `C` rows are output channels, so the GEMM writes the NCHW
//! result natively — there is no NCHWc→NCHW conversion pass to pay on the
//! way out. Bias-add (per output channel = per GEMM row) and ReLU ride the
//! packed GEMM's fused write-back via [`Epilogue::BiasRow`] /
//! [`Epilogue::BiasRowRelu`], while each freshly stored tile is cache-hot.
//!
//! On AVX-512-class hosts the B panel is gathered *row-major* (one
//! contiguous gathered row per reduction index, no sliver scatter at all)
//! and driven through the dedicated 16-lane microkernel
//! ([`run_panel_wide`]) at the wide register tile ([`NR_W`] = 32 columns)
//! — conv GEMMs have few rows (`Co`) and very many columns (`Ho·Wo`), so
//! widening the per-tile column count is where the extra vector width
//! pays, and the kernel's unaligned strided loads make the sliver repack
//! (a second full copy of the activation block) pure waste. The packed
//! *filter* layout is width agnostic (`MR`-row slivers), so one packing
//! serves both widths and the choice can stay a per-run CPUID dispatch.
//!
//! Determinism: each output element's `K` reduction ascends in the same
//! blocked order as [`gemm_packed`](crate::gemm::packed), parallelism is
//! only over whole images, and the epilogue follows the shared
//! bit-identity contract — so direct-tier results are bit-identical across
//! thread counts and across the fused/unfused epilogue split (im2col
//! parity stays the paper's ℓ∞-measured ~1e-6, the tiers sum in different
//! groupings).

use super::ConvGeometry;
use crate::gemm::packed::{
    pack_a, round_up, run_panel, run_panel_wide, wide_tier_available, Blocking, MR, NR, NR_W,
};
use crate::gemm::Epilogue;
use crate::operator::Operator;
use deep500_tensor::{recycle_scratch, scratch_dirty, Error, Result, Shape, Tensor};
use rayon::prelude::*;

/// A convolution filter pre-packed into the microkernel's blocked sliver
/// layout for a `Co x K` GEMM A-operand (`K = Cin·kh·kw`).
///
/// Layout: for each `KC` reduction block `pc` (ascending), the `MC` row
/// panels (ascending `ic`), each a [`pack_a`]-format run of `MR`-row
/// `[p][i]` slivers with edge rows zero-padded. The block starting at
/// `(pc, ic)` lives at offset `round_up(co, MR) * pc + ic * kc_b`; total
/// length is [`packed_filter_len`]`(co, k)`.
#[derive(Debug, Clone, PartialEq)]
pub struct PackedFilter {
    pub data: Vec<f32>,
    /// Output channels (GEMM rows).
    pub co: usize,
    /// Reduction depth `Cin·kh·kw` (GEMM K).
    pub k: usize,
}

/// The `(mc, kc)` A-panel blocking a `Co x K` filter packs under. Shared by
/// [`pack_filter`] and [`conv_image`] so a filter packed ahead of time (op
/// cache or `PackConv2dFilter` graph node) always matches the geometry the
/// forward pass consumes: the conv [`Blocking`]'s `mc`/`kc` depend only on
/// `(m, k)`, never on the GEMM width or sliver width, so one packing
/// serves every input spatial size on both the narrow and wide panel
/// drivers.
pub fn filter_blocking(co: usize, k: usize) -> (usize, usize) {
    let bl = Blocking::for_conv(co, NR, k, NR);
    (bl.mc, bl.kc)
}

/// Length in floats of a packed `Co x K` filter: `round_up(co, MR) * k`
/// (every reduction step stores one full zero-padded `MR`-row column).
pub fn packed_filter_len(co: usize, k: usize) -> usize {
    if k == 0 {
        return 0;
    }
    round_up(co, MR) * k
}

/// Pack a filter stored `[Co, Cin, kh, kw]` row-major (so flattened
/// `[Co x K]` with `K`-index `(ic·kh + fh)·kw + fw` — exactly the im2col
/// row order) into the blocked sliver layout described on
/// [`PackedFilter`].
pub fn pack_filter(wdat: &[f32], co: usize, k: usize) -> PackedFilter {
    debug_assert_eq!(wdat.len(), co * k);
    let (mc, kc) = filter_blocking(co, k);
    let rows_pad = round_up(co, MR);
    let mut data = vec![0.0f32; packed_filter_len(co, k)];
    for pc in (0..k).step_by(kc) {
        let kc_b = kc.min(k - pc);
        for ic in (0..co).step_by(mc) {
            let mc_b = mc.min(co - ic);
            let off = rows_pad * pc + ic * kc_b;
            let len = round_up(mc_b, MR) * kc_b;
            pack_a(
                &mut data[off..off + len],
                wdat,
                false,
                k,
                ic,
                pc,
                mc_b,
                kc_b,
            );
        }
    }
    PackedFilter { data, co, k }
}

/// Gather one logical im2col row segment (fixed reduction index, output
/// columns `jc..jc + row.len()`) for filter tap `(fh, fw)` of one input
/// channel plane `xc` (`h x wd`), writing zero padding analytically.
#[allow(clippy::too_many_arguments)] // gather-kernel plumbing: all scalars
fn gather_row(
    row: &mut [f32],
    xc: &[f32],
    h: usize,
    wd: usize,
    fh: usize,
    fw: usize,
    g: ConvGeometry,
    wo: usize,
    jc: usize,
) {
    let nc_b = row.len();
    let mut j = 0usize;
    while j < nc_b {
        let col = jc + j;
        let oh = col / wo;
        let ow0 = col % wo;
        let seg = (wo - ow0).min(nc_b - j);
        let ih = (oh * g.stride + fh) as isize - g.pad as isize;
        let dst = &mut row[j..j + seg];
        if ih < 0 || ih as usize >= h {
            dst.fill(0.0);
        } else {
            let xrow = &xc[ih as usize * wd..(ih as usize + 1) * wd];
            gather_xrow(dst, xrow, ow0, fw, g);
        }
        j += seg;
    }
}

/// One output row's worth of the gather: `dst[i] = xrow[(ow0 + i)·stride +
/// fw - pad]` with zeros outside `[0, wd)`. The padding bounds are
/// resolved analytically into prefix fill / in-range copy / suffix fill
/// for *every* stride — stride 1 is a straight `copy_from_slice`, larger
/// strides a branchless strided read — which is the fast path that
/// replaces im2col's per-element branchy fetch.
fn gather_xrow(dst: &mut [f32], xrow: &[f32], ow0: usize, fw: usize, g: ConvGeometry) {
    let wd = xrow.len();
    let s = g.stride as isize;
    let base = (ow0 * g.stride + fw) as isize - g.pad as isize;
    let len = dst.len() as isize;
    // In-range output indices i: 0 <= base + i*s < wd.
    let lo = if base < 0 { (-base + s - 1) / s } else { 0 }.clamp(0, len) as usize;
    let hi = ((wd as isize - base + s - 1) / s).clamp(0, len) as usize;
    dst[..lo].fill(0.0);
    if hi > lo {
        let s0 = (base + lo as isize * s) as usize;
        if g.stride == 1 {
            dst[lo..hi].copy_from_slice(&xrow[s0..s0 + (hi - lo)]);
        } else if g.stride == 2 {
            crate::gemm::packed::strided_copy2(&mut dst[lo..hi], &xrow[s0..]);
        } else {
            let src = xrow[s0..].iter().step_by(g.stride);
            for (v, &xv) in dst[lo..hi].iter_mut().zip(src) {
                *v = xv;
            }
        }
    }
    dst[hi.max(lo)..].fill(0.0);
}

/// Decompose an im2col reduction index `r` into its `(input channel,
/// filter row, filter column)` tap coordinates — the `K`-index order is
/// `(ic·kh + fh)·kw + fw`, matching [`pack_filter`]'s row order.
#[inline]
fn tap(r: usize, kh: usize, kw: usize) -> (usize, usize, usize) {
    let ic = r / (kh * kw);
    let rem = r % (kh * kw);
    (ic, rem / kw, rem % kw)
}

/// Pack the `kc_b x nc_b` implicit-im2col block at `(pc, jc)` of one image
/// `xi` (`[C, h, wd]` flattened) into packed B-panel slivers of width
/// [`NR`] (`[jt][p][j]`, edge lanes zero-padded) for the *narrow* panel
/// driver — the fused activation-layout-conversion step. Each reduction
/// row is gathered across the full block width in one [`gather_row`] call
/// (the per-segment geometry math amortizes over the whole row) into
/// `row_buf` (`nc_b` floats of caller-provided scratch), then split into
/// slivers with straight `copy_from_slice`s. The wide driver skips this
/// entirely: it reads `B` row-major, so [`conv_image`] gathers each
/// reduction row directly into its final slot.
#[allow(clippy::too_many_arguments)] // pack-kernel plumbing: all scalars
fn pack_b_conv(
    dst: &mut [f32],
    xi: &[f32],
    h: usize,
    wd: usize,
    kh: usize,
    kw: usize,
    wo: usize,
    g: ConvGeometry,
    pc: usize,
    jc: usize,
    kc_b: usize,
    nc_b: usize,
    row_buf: &mut [f32],
) {
    for p in 0..kc_b {
        let (ic, fh, fw) = tap(pc + p, kh, kw);
        let xc = &xi[ic * h * wd..(ic + 1) * h * wd];
        let row = &mut row_buf[..nc_b];
        gather_row(row, xc, h, wd, fh, fw, g, wo, jc);
        for (jt, chunk) in row.chunks(NR).enumerate() {
            let off = (jt * kc_b + p) * NR;
            dst[off..off + chunk.len()].copy_from_slice(chunk);
            dst[off + chunk.len()..off + NR].fill(0.0);
        }
    }
}

/// Direct convolution of one image: `optr` is the `[Co x Ho·Wo]` output
/// slab (zeroed on entry, per the packed GEMM's zeroed-C contract), `pf`
/// the pre-packed filter data for `(co, k)`. The epilogue fires once per
/// element on the final `KC` block.
#[allow(clippy::too_many_arguments)] // driver plumbing: all scalars
fn conv_image(
    pf: &[f32],
    co: usize,
    k: usize,
    xi: &[f32],
    optr: &mut [f32],
    h: usize,
    wd: usize,
    kh: usize,
    kw: usize,
    wo: usize,
    g: ConvGeometry,
    epilogue: Epilogue<'_>,
) {
    let cols = optr.len() / co;
    // B sliver width: the wide AVX-512 register tile when the host has it
    // (detection is CPUID-cached, so this is deterministic per run — the
    // bit-identity contract between pre-packed and on-the-fly filters
    // holds because both take the same width), the shared narrow tile
    // otherwise. The conv blocking rounds the macro-panel step to that
    // width so every sliver is whole; its `(mc, kc)` matches
    // [`filter_blocking`] by construction.
    let wide = wide_tier_available();
    let nr = if wide { NR_W } else { NR };
    let bl = Blocking::for_conv(co, cols, k, nr);
    let rows_pad = round_up(co, MR);
    let bwidth = bl.nc.min(round_up(cols, nr));
    // Dirty scratch: the gathers fully overwrite the prefixes read
    // downstream, so acquire-time zeroing would be wasted traffic. The
    // slab is over-acquired by one cache line and its use offset to a
    // 64-byte boundary: `bwidth` is a multiple of the sliver width, and
    // tile offsets are too, so with an aligned base *every* wide-kernel
    // B load is cache-line aligned instead of split across two lines.
    let mut bpack_slab = scratch_dirty(bwidth * bl.kc + 16);
    let boff = (bpack_slab.as_ptr() as usize).wrapping_neg() % 64 / 4;
    let bpack = &mut bpack_slab[boff..boff + bwidth * bl.kc];
    let mut row_buf = scratch_dirty(if wide { 1 } else { bwidth });
    for jc in (0..cols).step_by(bl.nc) {
        let nc_b = bl.nc.min(cols - jc);
        for pc in (0..k).step_by(bl.kc) {
            let kc_b = bl.kc.min(k - pc);
            let first = pc == 0;
            let last = pc + kc_b == k;
            if wide {
                // Row-major B: gather each reduction row once, straight
                // into the slot the wide kernel reads at stride `bwidth`
                // — no sliver repack, half the pack-side traffic. Columns
                // `nc_b..` of the last partial tile are zero-filled so
                // the kernel's whole-tile loads stay in bounds and inert.
                let wused = round_up(nc_b, nr);
                for p in 0..kc_b {
                    let (ic, fh, fw) = tap(pc + p, kh, kw);
                    let xc = &xi[ic * h * wd..(ic + 1) * h * wd];
                    let row = &mut bpack[p * bwidth..p * bwidth + wused];
                    gather_row(&mut row[..nc_b], xc, h, wd, fh, fw, g, wo, jc);
                    row[nc_b..].fill(0.0);
                }
            } else {
                pack_b_conv(
                    bpack,
                    xi,
                    h,
                    wd,
                    kh,
                    kw,
                    wo,
                    g,
                    pc,
                    jc,
                    kc_b,
                    nc_b,
                    &mut row_buf,
                );
            }
            for ic in (0..co).step_by(bl.mc) {
                let mc_b = bl.mc.min(co - ic);
                // Safety audit: these calls are safe fns, but they feed the
                // `unsafe` microkernels in `gemm::packed`, whose SAFETY
                // comments assume whole `MR`/`nr`-padded slivers. The A
                // slice is `round_up(mc_b, MR)·kc_b` by construction here
                // and the B rows were padded to `round_up(nc_b, nr)` above;
                // the kernels re-assert both via slice indexing, and the CI
                // miri job interprets the `conv::direct` tests to check the
                // packing arithmetic end to end.
                let apack = &pf[rows_pad * pc + ic * kc_b..][..round_up(mc_b, MR) * kc_b];
                let cpanel = &mut optr[ic * cols..(ic + mc_b) * cols];
                if wide {
                    run_panel_wide(
                        apack, bpack, bwidth, cpanel, cols, ic, jc, mc_b, nc_b, kc_b, epilogue,
                        first, last,
                    );
                } else {
                    run_panel(
                        apack, bpack, cpanel, cols, ic, jc, mc_b, nc_b, kc_b, epilogue, last,
                    );
                }
            }
        }
    }
    recycle_scratch(row_buf);
    recycle_scratch(bpack_slab);
}

/// Direct-tier forward pass over a batch: `pf` is the packed filter data
/// for a `[co, c, kh, kw]` filter (see [`pack_filter`] /
/// [`packed_filter_len`]), `relu` folds `max(x, 0)` into the write-back.
/// Parallel over images above the GEMM [`PAR_THRESHOLD`]; a single image
/// (the closed-loop serving case) runs serially with zero dispatch cost.
///
/// [`PAR_THRESHOLD`]: crate::gemm::PAR_THRESHOLD
#[allow(clippy::too_many_arguments)] // entry-point plumbing: all scalars
pub fn forward_direct_packed(
    x: &Tensor,
    pf: &[f32],
    co: usize,
    kh: usize,
    kw: usize,
    b: &Tensor,
    g: ConvGeometry,
    relu: bool,
) -> Result<Tensor> {
    let s = x.shape();
    let (n, c, h, wd) = (s.dim(0), s.dim(1), s.dim(2), s.dim(3));
    let ho = g.out_extent(h, kh)?;
    let wo = g.out_extent(wd, kw)?;
    let k = c * kh * kw;
    if pf.len() != packed_filter_len(co, k) {
        return Err(Error::ShapeMismatch(format!(
            "packed filter length {} vs expected {} for co={co}, k={k}",
            pf.len(),
            packed_filter_len(co, k)
        )));
    }
    let cols = ho * wo;
    let mut out = Tensor::zeros([n, co, ho, wo]);
    let (xd, bd) = (x.data(), b.data());
    let epilogue = if relu {
        Epilogue::BiasRowRelu(bd)
    } else {
        Epilogue::BiasRow(bd)
    };
    if k == 0 {
        // Zero-depth reduction (degenerate empty-channel input): the GEMM
        // is empty but the epilogue still owes its pass.
        for img in out.data_mut().chunks_mut(co * cols) {
            epilogue.apply_matrix(img, cols);
        }
        return Ok(out);
    }
    let image = |img: usize, optr: &mut [f32]| {
        let xi = &xd[img * c * h * wd..(img + 1) * c * h * wd];
        conv_image(pf, co, k, xi, optr, h, wd, kh, kw, wo, g, epilogue);
    };
    if n > 1 && n * co * cols * k >= crate::gemm::PAR_THRESHOLD {
        out.data_mut()
            .par_chunks_mut(co * cols)
            .enumerate()
            .for_each(|(img, optr)| image(img, optr));
    } else {
        for (img, optr) in out.data_mut().chunks_mut(co * cols).enumerate() {
            image(img, optr);
        }
    }
    Ok(out)
}

/// Pre-packs a `[Co, Cin, kh, kw]` convolution filter into the direct
/// tier's blocked layout ([`pack_filter`]), producing a rank-1 tensor of
/// [`packed_filter_len`] floats. Inserted on frozen-parameter weight edges
/// by the graph compiler's layout pass so constant folding materializes
/// the packed image ahead of time and `Conv2d` (with `weights_packed = 1`)
/// borrows it at zero per-call cost.
#[derive(Debug, Clone, Default)]
pub struct PackConv2dFilterOp;

impl Operator for PackConv2dFilterOp {
    fn name(&self) -> &str {
        "PackConv2dFilter"
    }
    fn num_inputs(&self) -> usize {
        1
    }
    fn output_shapes(&self, s: &[&Shape]) -> Result<Vec<Shape>> {
        if s[0].rank() != 4 {
            return Err(Error::ShapeMismatch(format!(
                "PackConv2dFilter: W {} must be rank 4",
                s[0]
            )));
        }
        let (co, ci, kh, kw) = (s[0].dim(0), s[0].dim(1), s[0].dim(2), s[0].dim(3));
        Ok(vec![Shape::new(&[packed_filter_len(co, ci * kh * kw)])])
    }
    fn forward(&self, inputs: &[&Tensor]) -> Result<Vec<Tensor>> {
        let s = inputs[0].shape();
        if s.rank() != 4 {
            return Err(Error::ShapeMismatch(format!(
                "PackConv2dFilter: W {s} must be rank 4"
            )));
        }
        let (co, k) = (s.dim(0), s.dim(1) * s.dim(2) * s.dim(3));
        let pf = pack_filter(inputs[0].data(), co, k);
        Tensor::from_vec([pf.data.len()], pf.data).map(|t| vec![t])
    }
    fn backward(
        &self,
        _grad_outputs: &[&Tensor],
        inputs: &[&Tensor],
        _outputs: &[&Tensor],
    ) -> Result<Vec<Tensor>> {
        // Layout-only node, inserted exclusively on frozen (inference)
        // parameter edges — no gradient flows through a packing.
        Ok(vec![Tensor::zeros(inputs[0].shape().clone())])
    }
    fn input_differentiable(&self, _i: usize) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deep500_tensor::rng::Xoshiro256StarStar;

    #[test]
    fn packed_filter_layout_roundtrips_through_offsets() {
        // co = 10 (edge tile), k = 5: every weight must appear exactly once
        // at the offset conv_image computes, with pad rows zero.
        let (co, k) = (10usize, 5usize);
        let wdat: Vec<f32> = (0..co * k).map(|v| v as f32 + 1.0).collect();
        let pf = pack_filter(&wdat, co, k);
        assert_eq!(pf.data.len(), packed_filter_len(co, k));
        let (mc, kc) = filter_blocking(co, k);
        let rows_pad = round_up(co, MR);
        let mut seen = vec![0u32; co * k];
        for pc in (0..k).step_by(kc) {
            let kc_b = kc.min(k - pc);
            for ic in (0..co).step_by(mc) {
                let mc_b = mc.min(co - ic);
                let base = rows_pad * pc + ic * kc_b;
                // pack_a sliver layout: [tile][p][i].
                for (it, sliver) in pf.data[base..base + round_up(mc_b, MR) * kc_b]
                    .chunks(MR * kc_b)
                    .enumerate()
                {
                    for p in 0..kc_b {
                        for i in 0..MR {
                            let row = ic + it * MR + i;
                            let got = sliver[p * MR + i];
                            if row < co {
                                assert_eq!(got, wdat[row * k + pc + p]);
                                seen[row * k + pc + p] += 1;
                            } else {
                                assert_eq!(got, 0.0, "pad row {row} not zero");
                            }
                        }
                    }
                }
            }
        }
        assert!(seen.iter().all(|&c| c == 1), "coverage: {seen:?}");
    }

    #[test]
    fn gather_matches_scalar_fetch() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(3);
        let (h, wd) = (7usize, 9usize);
        let xc = Tensor::rand_uniform([h, wd], -1.0, 1.0, &mut rng);
        for (stride, pad, kh, kw) in [(1, 0, 3, 3), (1, 2, 3, 3), (2, 1, 5, 5), (3, 0, 1, 1)] {
            let g = ConvGeometry { stride, pad };
            let (Ok(ho), Ok(wo)) = (g.out_extent(h, kh), g.out_extent(wd, kw)) else {
                continue;
            };
            for fh in 0..kh {
                for fw in 0..kw {
                    let mut row = vec![f32::NAN; ho * wo];
                    gather_row(&mut row, xc.data(), h, wd, fh, fw, g, wo, 0);
                    for oh in 0..ho {
                        for ow in 0..wo {
                            let ih = (oh * stride + fh) as isize - pad as isize;
                            let iw = (ow * stride + fw) as isize - pad as isize;
                            let want = if ih < 0 || iw < 0 || ih as usize >= h || iw as usize >= wd
                            {
                                0.0
                            } else {
                                xc.data()[ih as usize * wd + iw as usize]
                            };
                            assert_eq!(
                                row[oh * wo + ow],
                                want,
                                "s{stride} p{pad} tap ({fh},{fw}) at ({oh},{ow})"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn pack_op_output_shape_matches_forward() {
        let op = PackConv2dFilterOp;
        let ws = Shape::new(&[6, 3, 3, 3]);
        let declared = op.output_shapes(&[&ws]).unwrap();
        let mut rng = Xoshiro256StarStar::seed_from_u64(8);
        let w = Tensor::rand_uniform([6, 3, 3, 3], -1.0, 1.0, &mut rng);
        let out = op.forward(&[&w]).unwrap();
        assert_eq!(out[0].shape(), &declared[0]);
        assert_eq!(out[0].shape().numel(), packed_filter_len(6, 27));
    }
}
