//! Elementwise binary/unary operators (Add, Sub, Mul, Scale, AddConstant).
//!
//! These are the "general tensor operators" of the paper's TensorFlow/Adam
//! use case: a framework without fused update kernels composes its
//! optimizer from sequences of these small operators, paying per-operator
//! dispatch overhead — the phenomenon `deep500-frameworks` reproduces.

use crate::operator::Operator;
use deep500_tensor::{Error, Result, Shape, Tensor};

/// Elementwise binary operations on same-shaped tensors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinaryKind {
    Add,
    Sub,
    Mul,
    Div,
}

/// An elementwise binary operator.
#[derive(Debug, Clone)]
pub struct BinaryOp {
    pub kind: BinaryKind,
}

impl BinaryOp {
    pub fn add() -> Self {
        BinaryOp {
            kind: BinaryKind::Add,
        }
    }
    pub fn sub() -> Self {
        BinaryOp {
            kind: BinaryKind::Sub,
        }
    }
    pub fn mul() -> Self {
        BinaryOp {
            kind: BinaryKind::Mul,
        }
    }
    pub fn div() -> Self {
        BinaryOp {
            kind: BinaryKind::Div,
        }
    }
}

impl Operator for BinaryOp {
    fn name(&self) -> &str {
        match self.kind {
            BinaryKind::Add => "Add",
            BinaryKind::Sub => "Sub",
            BinaryKind::Mul => "Mul",
            BinaryKind::Div => "Div",
        }
    }
    fn num_inputs(&self) -> usize {
        2
    }
    fn output_shapes(&self, s: &[&Shape]) -> Result<Vec<Shape>> {
        if s[0] != s[1] {
            return Err(Error::ShapeMismatch(format!(
                "{}: {} vs {}",
                self.name(),
                s[0],
                s[1]
            )));
        }
        Ok(vec![s[0].clone()])
    }
    fn forward(&self, inputs: &[&Tensor]) -> Result<Vec<Tensor>> {
        let (a, b) = (inputs[0], inputs[1]);
        let out = match self.kind {
            BinaryKind::Add => a.add(b)?,
            BinaryKind::Sub => a.sub(b)?,
            BinaryKind::Mul => a.mul(b)?,
            BinaryKind::Div => a.div(b)?,
        };
        Ok(vec![out])
    }
    fn backward(
        &self,
        grad_outputs: &[&Tensor],
        inputs: &[&Tensor],
        _outputs: &[&Tensor],
    ) -> Result<Vec<Tensor>> {
        let g = grad_outputs[0];
        let (a, b) = (inputs[0], inputs[1]);
        Ok(match self.kind {
            BinaryKind::Add => vec![g.clone(), g.clone()],
            BinaryKind::Sub => vec![g.clone(), g.scale(-1.0)],
            BinaryKind::Mul => vec![g.mul(b)?, g.mul(a)?],
            BinaryKind::Div => {
                // d/da (a/b) = 1/b ; d/db (a/b) = -a/b^2
                let da = g.div(b)?;
                let db = g.mul(a)?.div(&b.mul(b)?)?.scale(-1.0);
                vec![da, db]
            }
        })
    }
    fn flops(&self, s: &[&Shape]) -> f64 {
        deep500_metrics::flops::counts::elementwise(s[0].numel(), 1)
    }
}

/// `y = alpha * x + beta` — affine elementwise scaling (unary).
#[derive(Debug, Clone)]
pub struct ScaleOp {
    pub alpha: f32,
    pub beta: f32,
}

impl ScaleOp {
    pub fn new(alpha: f32, beta: f32) -> Self {
        ScaleOp { alpha, beta }
    }
}

impl Operator for ScaleOp {
    fn name(&self) -> &str {
        "Scale"
    }
    fn num_inputs(&self) -> usize {
        1
    }
    fn output_shapes(&self, s: &[&Shape]) -> Result<Vec<Shape>> {
        Ok(vec![s[0].clone()])
    }
    fn forward(&self, inputs: &[&Tensor]) -> Result<Vec<Tensor>> {
        Ok(vec![inputs[0].map(|v| self.alpha * v + self.beta)])
    }
    fn backward(
        &self,
        grad_outputs: &[&Tensor],
        _inputs: &[&Tensor],
        _outputs: &[&Tensor],
    ) -> Result<Vec<Tensor>> {
        Ok(vec![grad_outputs[0].scale(self.alpha)])
    }
    fn flops(&self, s: &[&Shape]) -> f64 {
        deep500_metrics::flops::counts::elementwise(s[0].numel(), 2)
    }
}

/// Elementwise square root (used by composed Adam/AdaGrad updates).
#[derive(Debug, Clone, Default)]
pub struct SqrtOp;

impl Operator for SqrtOp {
    fn name(&self) -> &str {
        "Sqrt"
    }
    fn num_inputs(&self) -> usize {
        1
    }
    fn output_shapes(&self, s: &[&Shape]) -> Result<Vec<Shape>> {
        Ok(vec![s[0].clone()])
    }
    fn forward(&self, inputs: &[&Tensor]) -> Result<Vec<Tensor>> {
        Ok(vec![inputs[0].map(|v| v.sqrt())])
    }
    fn backward(
        &self,
        grad_outputs: &[&Tensor],
        _inputs: &[&Tensor],
        outputs: &[&Tensor],
    ) -> Result<Vec<Tensor>> {
        // d sqrt(x)/dx = 1 / (2 sqrt(x)) = 1 / (2 y)
        Ok(vec![grad_outputs[0].zip(outputs[0], |g, y| g / (2.0 * y))?])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binary_forward_values() {
        let a = Tensor::from_slice(&[4.0, 9.0]);
        let b = Tensor::from_slice(&[2.0, 3.0]);
        assert_eq!(
            BinaryOp::add().forward(&[&a, &b]).unwrap()[0].data(),
            &[6.0, 12.0]
        );
        assert_eq!(
            BinaryOp::sub().forward(&[&a, &b]).unwrap()[0].data(),
            &[2.0, 6.0]
        );
        assert_eq!(
            BinaryOp::mul().forward(&[&a, &b]).unwrap()[0].data(),
            &[8.0, 27.0]
        );
        assert_eq!(
            BinaryOp::div().forward(&[&a, &b]).unwrap()[0].data(),
            &[2.0, 3.0]
        );
    }

    #[test]
    fn binary_backward_values() {
        let a = Tensor::from_slice(&[4.0]);
        let b = Tensor::from_slice(&[2.0]);
        let g = Tensor::from_slice(&[1.0]);
        let y = BinaryOp::div().forward(&[&a, &b]).unwrap();
        let grads = BinaryOp::div()
            .backward(&[&g], &[&a, &b], &[&y[0]])
            .unwrap();
        assert_eq!(grads[0].data(), &[0.5]); // 1/b
        assert_eq!(grads[1].data(), &[-1.0]); // -a/b^2

        let grads = BinaryOp::mul()
            .backward(&[&g], &[&a, &b], &[&y[0]])
            .unwrap();
        assert_eq!(grads[0].data(), &[2.0]);
        assert_eq!(grads[1].data(), &[4.0]);

        let grads = BinaryOp::sub()
            .backward(&[&g], &[&a, &b], &[&y[0]])
            .unwrap();
        assert_eq!(grads[1].data(), &[-1.0]);
    }

    #[test]
    fn shape_mismatch_rejected() {
        let a = Shape::new(&[2]);
        let b = Shape::new(&[3]);
        assert!(BinaryOp::add().output_shapes(&[&a, &b]).is_err());
    }

    #[test]
    fn scale_affine() {
        let x = Tensor::from_slice(&[1.0, 2.0]);
        let op = ScaleOp::new(3.0, 1.0);
        assert_eq!(op.forward(&[&x]).unwrap()[0].data(), &[4.0, 7.0]);
        let g = Tensor::from_slice(&[1.0, 1.0]);
        assert_eq!(
            op.backward(&[&g], &[&x], &[]).unwrap()[0].data(),
            &[3.0, 3.0]
        );
    }

    #[test]
    fn sqrt_forward_backward() {
        let x = Tensor::from_slice(&[4.0, 16.0]);
        let y = SqrtOp.forward(&[&x]).unwrap();
        assert_eq!(y[0].data(), &[2.0, 4.0]);
        let g = Tensor::from_slice(&[1.0, 1.0]);
        let dx = SqrtOp.backward(&[&g], &[&x], &[&y[0]]).unwrap();
        assert_eq!(dx[0].data(), &[0.25, 0.125]);
    }
}
