//! DeepBench problem-size suites.
//!
//! The paper's Level-0 evaluation (Fig. 6) runs "160 different matrix
//! multiplication sizes and 94 convolution dimensions, typically found in
//! DL workloads", collected from Baidu's DeepBench. We embed representative
//! subsets of the published DeepBench suites (training kernels from DeepMark
//! networks: AlexNet/VGG/ResNet convs, speech/NMT GEMMs), plus the two
//! highlighted problem sizes the paper box-plots:
//!
//! * GEMM `M = K = 2560, N = 64`,
//! * convolution `N = 16, C = 3, H = W = 224`, 3×3 filters.

/// A GEMM problem size `C[MxN] = A[MxK] * B[KxN]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GemmSize {
    pub m: usize,
    pub n: usize,
    pub k: usize,
}

impl GemmSize {
    pub const fn new(m: usize, n: usize, k: usize) -> Self {
        GemmSize { m, n, k }
    }

    /// FLOP count of this GEMM.
    pub fn flops(&self) -> f64 {
        deep500_metrics::flops::counts::gemm(self.m, self.n, self.k)
    }
}

/// A convolution problem size (NCHW, square kernels, symmetric padding).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvSize {
    pub n: usize,
    pub c: usize,
    pub h: usize,
    pub w: usize,
    pub k: usize, // output channels
    pub r: usize, // kernel extent
    pub stride: usize,
    pub pad: usize,
}

impl ConvSize {
    #[allow(clippy::too_many_arguments)]
    pub const fn new(
        n: usize,
        c: usize,
        h: usize,
        w: usize,
        k: usize,
        r: usize,
        stride: usize,
        pad: usize,
    ) -> Self {
        ConvSize {
            n,
            c,
            h,
            w,
            k,
            r,
            stride,
            pad,
        }
    }

    /// Output spatial extent.
    pub fn out_hw(&self) -> (usize, usize) {
        (
            (self.h + 2 * self.pad - self.r) / self.stride + 1,
            (self.w + 2 * self.pad - self.r) / self.stride + 1,
        )
    }

    /// FLOP count of this convolution.
    pub fn flops(&self) -> f64 {
        let (ho, wo) = self.out_hw();
        deep500_metrics::flops::counts::conv2d(self.n, self.c, self.k, ho, wo, self.r, self.r)
    }
}

/// The GEMM size the paper highlights in Fig. 6b's box plot.
pub const HIGHLIGHTED_GEMM: GemmSize = GemmSize::new(2560, 64, 2560);

/// The convolution size the paper highlights in Fig. 6a's box plot
/// (`N=16, C=3, H=W=224`, 3×3 filters; first VGG-style layer).
pub const HIGHLIGHTED_CONV: ConvSize = ConvSize::new(16, 3, 224, 224, 64, 3, 1, 1);

/// Representative subset of the DeepBench training GEMM suite (shapes from
/// speech (DeepSpeech), NMT and vision workloads). The full suite has 160
/// entries; we keep the shape diversity (tall-skinny, square, wide) while
/// remaining laptop-runnable.
pub fn gemm_suite() -> Vec<GemmSize> {
    vec![
        GemmSize::new(1760, 16, 1760),
        GemmSize::new(1760, 32, 1760),
        GemmSize::new(1760, 64, 1760),
        GemmSize::new(1760, 128, 1760),
        GemmSize::new(2048, 16, 2048),
        GemmSize::new(2048, 32, 2048),
        GemmSize::new(2048, 64, 2048),
        GemmSize::new(2560, 16, 2560),
        GemmSize::new(2560, 32, 2560),
        HIGHLIGHTED_GEMM, // 2560 x 64 x 2560
        GemmSize::new(1024, 128, 1024),
        GemmSize::new(512, 256, 512),
        GemmSize::new(128, 1024, 128),
        GemmSize::new(4096, 16, 512),
        GemmSize::new(512, 512, 512),
        GemmSize::new(1024, 1024, 64),
    ]
}

/// Representative subset of the DeepBench convolution suite (AlexNet, VGG,
/// ResNet layer shapes at reduced batch). The full suite has 94 entries.
pub fn conv_suite() -> Vec<ConvSize> {
    vec![
        // VGG-style first layers
        HIGHLIGHTED_CONV, // 16 x 3 x 224 x 224, 3x3
        ConvSize::new(8, 64, 112, 112, 128, 3, 1, 1),
        ConvSize::new(8, 128, 56, 56, 256, 3, 1, 1),
        ConvSize::new(8, 256, 28, 28, 512, 3, 1, 1),
        // ResNet bottleneck shapes
        ConvSize::new(8, 64, 56, 56, 64, 1, 1, 0),
        ConvSize::new(8, 64, 56, 56, 64, 3, 1, 1),
        ConvSize::new(8, 256, 56, 56, 64, 1, 1, 0),
        ConvSize::new(8, 128, 28, 28, 128, 3, 1, 1),
        ConvSize::new(8, 512, 7, 7, 512, 3, 1, 1),
        // AlexNet-style large kernels / strides
        ConvSize::new(16, 3, 227, 227, 64, 11, 4, 0),
        ConvSize::new(16, 64, 27, 27, 192, 5, 1, 2),
        ConvSize::new(16, 192, 13, 13, 384, 3, 1, 1),
    ]
}

/// Scale a suite down for quick runs: shrink batch to 1 and cap spatial
/// extents — used by the test suite to exercise the full code path cheaply.
pub fn shrink_conv(cs: &ConvSize, max_hw: usize) -> ConvSize {
    ConvSize {
        n: 1,
        c: cs.c.min(16),
        h: cs.h.min(max_hw),
        w: cs.w.min(max_hw),
        k: cs.k.min(16),
        r: cs.r.min(cs.h.min(max_hw)),
        stride: cs.stride,
        pad: cs.pad,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suites_are_nonempty_and_contain_highlights() {
        let gemms = gemm_suite();
        assert!(gemms.len() >= 16);
        assert!(gemms.contains(&HIGHLIGHTED_GEMM));
        let convs = conv_suite();
        assert!(convs.len() >= 12);
        assert!(convs.contains(&HIGHLIGHTED_CONV));
    }

    #[test]
    fn highlighted_sizes_match_paper() {
        assert_eq!(
            (HIGHLIGHTED_GEMM.m, HIGHLIGHTED_GEMM.n, HIGHLIGHTED_GEMM.k),
            (2560, 64, 2560)
        );
        assert_eq!(
            (
                HIGHLIGHTED_CONV.n,
                HIGHLIGHTED_CONV.c,
                HIGHLIGHTED_CONV.h,
                HIGHLIGHTED_CONV.r
            ),
            (16, 3, 224, 3)
        );
    }

    #[test]
    fn conv_output_extents() {
        let (ho, wo) = HIGHLIGHTED_CONV.out_hw();
        assert_eq!((ho, wo), (224, 224)); // same padding
        let alex = ConvSize::new(16, 3, 227, 227, 64, 11, 4, 0);
        assert_eq!(alex.out_hw(), (55, 55));
    }

    #[test]
    fn flops_positive_and_consistent() {
        for g in gemm_suite() {
            assert!(g.flops() > 0.0);
        }
        for c in conv_suite() {
            assert!(c.flops() > 0.0);
        }
        assert_eq!(GemmSize::new(2, 3, 4).flops(), 48.0);
    }

    #[test]
    fn shrink_caps_extents() {
        let s = shrink_conv(&HIGHLIGHTED_CONV, 32);
        assert_eq!(s.n, 1);
        assert!(s.h <= 32 && s.w <= 32);
        assert!(s.flops() < HIGHLIGHTED_CONV.flops());
    }
}
