//! Activation operators: ReLU, Sigmoid, Tanh, Softmax.

use crate::operator::Operator;
use deep500_tensor::{Error, Result, Shape, Tensor};

/// Elementwise activation kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activation {
    Relu,
    Sigmoid,
    Tanh,
}

/// An elementwise activation operator.
#[derive(Debug, Clone)]
pub struct ActivationOp {
    pub kind: Activation,
}

impl ActivationOp {
    pub fn relu() -> Self {
        ActivationOp {
            kind: Activation::Relu,
        }
    }
    pub fn sigmoid() -> Self {
        ActivationOp {
            kind: Activation::Sigmoid,
        }
    }
    pub fn tanh() -> Self {
        ActivationOp {
            kind: Activation::Tanh,
        }
    }

    #[inline]
    fn apply(&self, x: f32) -> f32 {
        match self.kind {
            Activation::Relu => x.max(0.0),
            Activation::Sigmoid => 1.0 / (1.0 + (-x).exp()),
            Activation::Tanh => x.tanh(),
        }
    }

    /// Derivative in terms of input `x` and output `y` (whichever is
    /// cheaper for the activation).
    #[inline]
    fn derivative(&self, x: f32, y: f32) -> f32 {
        match self.kind {
            Activation::Relu => {
                if x > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::Sigmoid => y * (1.0 - y),
            Activation::Tanh => 1.0 - y * y,
        }
    }
}

impl Operator for ActivationOp {
    fn name(&self) -> &str {
        match self.kind {
            Activation::Relu => "Relu",
            Activation::Sigmoid => "Sigmoid",
            Activation::Tanh => "Tanh",
        }
    }
    fn num_inputs(&self) -> usize {
        1
    }
    fn output_shapes(&self, s: &[&Shape]) -> Result<Vec<Shape>> {
        Ok(vec![s[0].clone()])
    }
    fn forward(&self, inputs: &[&Tensor]) -> Result<Vec<Tensor>> {
        Ok(vec![inputs[0].map(|v| self.apply(v))])
    }
    fn backward(
        &self,
        grad_outputs: &[&Tensor],
        inputs: &[&Tensor],
        outputs: &[&Tensor],
    ) -> Result<Vec<Tensor>> {
        let g = grad_outputs[0];
        let x = inputs[0];
        let y = outputs[0];
        let mut dx = Tensor::zeros(x.shape().clone());
        for i in 0..x.numel() {
            dx.data_mut()[i] = g.data()[i] * self.derivative(x.data()[i], y.data()[i]);
        }
        Ok(vec![dx])
    }
    fn flops(&self, s: &[&Shape]) -> f64 {
        deep500_metrics::flops::counts::elementwise(s[0].numel(), 2)
    }
}

/// Row-wise softmax over the last axis of a rank-2 tensor (logits →
/// probabilities), numerically stabilized by max subtraction.
#[derive(Debug, Clone, Default)]
pub struct SoftmaxOp;

impl SoftmaxOp {
    /// Row-wise softmax of a `[rows, cols]` tensor.
    pub fn softmax_rows(x: &Tensor) -> Result<Tensor> {
        if x.shape().rank() != 2 {
            return Err(Error::ShapeMismatch(format!(
                "Softmax requires rank-2 input, got {}",
                x.shape()
            )));
        }
        let (rows, cols) = (x.shape().dim(0), x.shape().dim(1));
        let mut out = Tensor::zeros(x.shape().clone());
        for r in 0..rows {
            let row = &x.data()[r * cols..(r + 1) * cols];
            let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let orow = &mut out.data_mut()[r * cols..(r + 1) * cols];
            let mut sum = 0.0f32;
            for (o, &v) in orow.iter_mut().zip(row) {
                *o = (v - m).exp();
                sum += *o;
            }
            for o in orow.iter_mut() {
                *o /= sum;
            }
        }
        Ok(out)
    }
}

impl Operator for SoftmaxOp {
    fn name(&self) -> &str {
        "Softmax"
    }
    fn num_inputs(&self) -> usize {
        1
    }
    fn output_shapes(&self, s: &[&Shape]) -> Result<Vec<Shape>> {
        if s[0].rank() != 2 {
            return Err(Error::ShapeMismatch("Softmax requires rank-2".into()));
        }
        Ok(vec![s[0].clone()])
    }
    fn forward(&self, inputs: &[&Tensor]) -> Result<Vec<Tensor>> {
        Ok(vec![Self::softmax_rows(inputs[0])?])
    }
    fn backward(
        &self,
        grad_outputs: &[&Tensor],
        _inputs: &[&Tensor],
        outputs: &[&Tensor],
    ) -> Result<Vec<Tensor>> {
        // dx_i = y_i * (g_i - sum_j g_j y_j), row-wise.
        let g = grad_outputs[0];
        let y = outputs[0];
        let (rows, cols) = (y.shape().dim(0), y.shape().dim(1));
        let mut dx = Tensor::zeros(y.shape().clone());
        for r in 0..rows {
            let yrow = &y.data()[r * cols..(r + 1) * cols];
            let grow = &g.data()[r * cols..(r + 1) * cols];
            let dot: f32 = yrow.iter().zip(grow).map(|(&a, &b)| a * b).sum();
            let drow = &mut dx.data_mut()[r * cols..(r + 1) * cols];
            for i in 0..cols {
                drow[i] = yrow[i] * (grow[i] - dot);
            }
        }
        Ok(vec![dx])
    }
    fn flops(&self, s: &[&Shape]) -> f64 {
        deep500_metrics::flops::counts::elementwise(s[0].numel(), 4)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_clamps() {
        let x = Tensor::from_slice(&[-1.0, 0.0, 2.0]);
        let y = ActivationOp::relu().forward(&[&x]).unwrap();
        assert_eq!(y[0].data(), &[0.0, 0.0, 2.0]);
    }

    #[test]
    fn relu_backward_masks() {
        let op = ActivationOp::relu();
        let x = Tensor::from_slice(&[-1.0, 3.0]);
        let y = op.forward(&[&x]).unwrap();
        let g = Tensor::from_slice(&[5.0, 5.0]);
        let dx = op.backward(&[&g], &[&x], &[&y[0]]).unwrap();
        assert_eq!(dx[0].data(), &[0.0, 5.0]);
    }

    #[test]
    fn sigmoid_at_zero() {
        let x = Tensor::from_slice(&[0.0]);
        let op = ActivationOp::sigmoid();
        let y = op.forward(&[&x]).unwrap();
        assert!((y[0].data()[0] - 0.5).abs() < 1e-6);
        // derivative at 0 is 0.25
        let g = Tensor::from_slice(&[1.0]);
        let dx = op.backward(&[&g], &[&x], &[&y[0]]).unwrap();
        assert!((dx[0].data()[0] - 0.25).abs() < 1e-6);
    }

    #[test]
    fn tanh_matches_std() {
        let x = Tensor::from_slice(&[0.5, -0.5]);
        let y = ActivationOp::tanh().forward(&[&x]).unwrap();
        assert!((y[0].data()[0] - 0.5f32.tanh()).abs() < 1e-6);
        assert!((y[0].data()[1] + 0.5f32.tanh()).abs() < 1e-6);
    }

    #[test]
    fn softmax_rows_sum_to_one_and_order_preserved() {
        let x = Tensor::from_vec([2, 3], vec![1.0, 2.0, 3.0, 0.0, 0.0, 0.0]).unwrap();
        let y = SoftmaxOp::softmax_rows(&x).unwrap();
        let row0: f32 = y.data()[..3].iter().sum();
        let row1: f32 = y.data()[3..].iter().sum();
        assert!((row0 - 1.0).abs() < 1e-6);
        assert!((row1 - 1.0).abs() < 1e-6);
        assert!(y.data()[2] > y.data()[1] && y.data()[1] > y.data()[0]);
        assert!((y.data()[3] - 1.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let a = Tensor::from_vec([1, 3], vec![1.0, 2.0, 3.0]).unwrap();
        let b = a.map(|v| v + 100.0);
        let ya = SoftmaxOp::softmax_rows(&a).unwrap();
        let yb = SoftmaxOp::softmax_rows(&b).unwrap();
        assert!(ya.approx_eq(&yb, 1e-5));
    }

    #[test]
    fn softmax_backward_of_uniform_grad_is_zero() {
        // If g is constant across a row, dx must be zero (softmax is
        // shift-invariant).
        let op = SoftmaxOp;
        let x = Tensor::from_vec([1, 4], vec![0.3, -1.0, 2.0, 0.0]).unwrap();
        let y = op.forward(&[&x]).unwrap();
        let g = Tensor::full([1, 4], 3.0);
        let dx = op.backward(&[&g], &[&x], &[&y[0]]).unwrap();
        assert!(dx[0].data().iter().all(|v| v.abs() < 1e-6));
    }

    #[test]
    fn softmax_rejects_rank1() {
        assert!(SoftmaxOp::softmax_rows(&Tensor::from_slice(&[1.0])).is_err());
    }
}
