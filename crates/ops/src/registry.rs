//! The custom-operator registry — the Rust analogue of `D500_REGISTER_OP`.
//!
//! The paper's Level 0 "allows to integrate new custom operators with real
//! datasets, networks, or frameworks, without having to implement other
//! operators". Here, an operator type registers a *factory* under its name;
//! networks and the d5nx format then instantiate operators by
//! `(name, attributes)` pairs, so user-defined operators are
//! indistinguishable from built-ins.

use crate::activation::{ActivationOp, SoftmaxOp};
use crate::conv::direct::PackConv2dFilterOp;
use crate::conv::{Conv2dOp, ConvAlgorithm};
use crate::elementwise::{BinaryOp, ScaleOp, SqrtOp};
use crate::gemm::{Algorithm, MatMulOp};
use crate::global_pool::GlobalAvgPoolOp;
use crate::linear::LinearOp;
use crate::loss::{MseLossOp, SoftmaxCrossEntropyOp};
use crate::norm_ops::BatchNormOp;
use crate::operator::Operator;
use crate::pool::Pool2dOp;
use crate::shape_ops::{ConcatOp, DropoutOp, FlattenOp, ReshapeOp, SplitOp};
use deep500_tensor::{Error, Result};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

/// An attribute value attached to an operator instance (mirrors ONNX node
/// attributes).
#[derive(Debug, Clone, PartialEq)]
pub enum AttrValue {
    Int(i64),
    Float(f64),
    Ints(Vec<i64>),
    Str(String),
}

/// A set of named attributes.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Attributes {
    map: HashMap<String, AttrValue>,
}

impl Attributes {
    pub fn new() -> Self {
        Self::default()
    }

    /// Builder-style insertion.
    pub fn with(mut self, key: &str, value: AttrValue) -> Self {
        self.map.insert(key.to_string(), value);
        self
    }

    /// Builder-style integer attribute.
    pub fn with_int(self, key: &str, v: i64) -> Self {
        self.with(key, AttrValue::Int(v))
    }

    /// Builder-style float attribute.
    pub fn with_float(self, key: &str, v: f64) -> Self {
        self.with(key, AttrValue::Float(v))
    }

    /// Builder-style integer-list attribute.
    pub fn with_ints(self, key: &str, v: &[i64]) -> Self {
        self.with(key, AttrValue::Ints(v.to_vec()))
    }

    /// Builder-style string attribute.
    pub fn with_str(self, key: &str, v: &str) -> Self {
        self.with(key, AttrValue::Str(v.to_string()))
    }

    pub fn get(&self, key: &str) -> Option<&AttrValue> {
        self.map.get(key)
    }

    /// Integer attribute with default.
    pub fn int_or(&self, key: &str, default: i64) -> i64 {
        match self.map.get(key) {
            Some(AttrValue::Int(v)) => *v,
            _ => default,
        }
    }

    /// Float attribute with default.
    pub fn float_or(&self, key: &str, default: f64) -> f64 {
        match self.map.get(key) {
            Some(AttrValue::Float(v)) => *v,
            Some(AttrValue::Int(v)) => *v as f64,
            _ => default,
        }
    }

    /// String attribute with default.
    pub fn str_or<'a>(&'a self, key: &str, default: &'a str) -> &'a str {
        match self.map.get(key) {
            Some(AttrValue::Str(v)) => v,
            _ => default,
        }
    }

    /// Integer-list attribute (empty if absent).
    pub fn ints(&self, key: &str) -> Vec<i64> {
        match self.map.get(key) {
            Some(AttrValue::Ints(v)) => v.clone(),
            _ => Vec::new(),
        }
    }

    /// Iterate over `(name, value)` pairs in deterministic (sorted) order —
    /// required by the d5nx encoder for reproducible bytes.
    pub fn iter_sorted(&self) -> Vec<(&String, &AttrValue)> {
        let mut entries: Vec<_> = self.map.iter().collect();
        entries.sort_by(|a, b| a.0.cmp(b.0));
        entries
    }

    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// Operator factory: builds an operator instance from attributes.
pub type OpFactory = Arc<dyn Fn(&Attributes) -> Result<Box<dyn Operator>> + Send + Sync>;

struct Registry {
    factories: RwLock<HashMap<String, OpFactory>>,
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| {
        let r = Registry {
            factories: RwLock::new(HashMap::new()),
        };
        register_builtins(&r);
        r
    })
}

/// Register a custom operator factory under `name` (the Rust
/// `D500_REGISTER_OP`). Re-registering a name replaces the factory, which
/// lets experiments shadow built-ins with custom implementations.
pub fn register_op(
    name: &str,
    factory: impl Fn(&Attributes) -> Result<Box<dyn Operator>> + Send + Sync + 'static,
) {
    registry()
        .factories
        .write()
        .insert(name.to_string(), Arc::new(factory));
}

/// Instantiate a registered operator.
pub fn create_op(name: &str, attrs: &Attributes) -> Result<Box<dyn Operator>> {
    let factory = registry()
        .factories
        .read()
        .get(name)
        .cloned()
        .ok_or_else(|| Error::NotFound(format!("operator '{name}' is not registered")))?;
    factory(attrs)
}

/// Whether an operator name is registered.
pub fn is_registered(name: &str) -> bool {
    registry().factories.read().contains_key(name)
}

/// Names of all registered operators, sorted.
pub fn registered_ops() -> Vec<String> {
    let mut names: Vec<String> = registry().factories.read().keys().cloned().collect();
    names.sort();
    names
}

fn parse_gemm_algo(attrs: &Attributes) -> Algorithm {
    match attrs.str_or("algorithm", "packed") {
        "naive" => Algorithm::Naive,
        "blocked" => Algorithm::Blocked,
        "parallel" => Algorithm::Parallel,
        _ => Algorithm::Packed,
    }
}

/// `epilogue = "relu"` folds a downstream ReLU into the GEMM write-back
/// (installed by the graph crate's epilogue-fusion transform).
fn parse_gemm_epilogue(attrs: &Attributes) -> bool {
    attrs.str_or("epilogue", "") == "relu"
}

fn parse_conv_algo(attrs: &Attributes) -> ConvAlgorithm {
    ConvAlgorithm::parse(attrs.str_or("algorithm", "im2col"))
}

fn register_builtins(r: &Registry) {
    let mut f = r.factories.write();
    let mut reg = |name: &str, factory: OpFactory| {
        f.insert(name.to_string(), factory);
    };
    reg(
        "MatMul",
        Arc::new(|a: &Attributes| {
            Ok(
                Box::new(MatMulOp::new(parse_gemm_algo(a)).with_relu(parse_gemm_epilogue(a)))
                    as Box<dyn Operator>,
            )
        }),
    );
    reg(
        "Linear",
        Arc::new(|a: &Attributes| {
            Ok(
                Box::new(LinearOp::new(parse_gemm_algo(a)).with_relu(parse_gemm_epilogue(a)))
                    as Box<dyn Operator>,
            )
        }),
    );
    reg(
        "Conv2d",
        Arc::new(|a: &Attributes| {
            let mut op = Conv2dOp::new(
                a.int_or("stride", 1) as usize,
                a.int_or("pad", 0) as usize,
                parse_conv_algo(a),
            )
            .with_relu(parse_gemm_epilogue(a));
            // The graph compiler's layout pass marks convs whose filter
            // edge carries a PackConv2dFilter image; `w_dims` records the
            // natural [co, ci, kh, kw] the packed rank-1 tensor encodes.
            if a.int_or("weights_packed", 0) == 1 {
                let d = a.ints("w_dims");
                if d.len() != 4 {
                    return Err(Error::Invalid(
                        "Conv2d: weights_packed requires a 4-element 'w_dims' attribute".into(),
                    ));
                }
                op = op.with_packed_weights([
                    d[0] as usize,
                    d[1] as usize,
                    d[2] as usize,
                    d[3] as usize,
                ]);
            }
            Ok(Box::new(op) as Box<dyn Operator>)
        }),
    );
    reg(
        "PackConv2dFilter",
        Arc::new(|_| Ok(Box::new(PackConv2dFilterOp) as Box<dyn Operator>)),
    );
    reg(
        "MaxPool2d",
        Arc::new(|a: &Attributes| {
            Ok(Box::new(Pool2dOp::max(
                a.int_or("kernel", 2) as usize,
                a.int_or("stride", 2) as usize,
            )) as Box<dyn Operator>)
        }),
    );
    reg(
        "AvgPool2d",
        Arc::new(|a: &Attributes| {
            Ok(Box::new(Pool2dOp::average(
                a.int_or("kernel", 2) as usize,
                a.int_or("stride", 2) as usize,
            )) as Box<dyn Operator>)
        }),
    );
    reg(
        "MedianPool2d",
        Arc::new(|a: &Attributes| {
            Ok(Box::new(Pool2dOp::median(
                a.int_or("kernel", 2) as usize,
                a.int_or("stride", 2) as usize,
            )) as Box<dyn Operator>)
        }),
    );
    reg(
        "Relu",
        Arc::new(|_| Ok(Box::new(ActivationOp::relu()) as _)),
    );
    reg(
        "Sigmoid",
        Arc::new(|_| Ok(Box::new(ActivationOp::sigmoid()) as _)),
    );
    reg(
        "Tanh",
        Arc::new(|_| Ok(Box::new(ActivationOp::tanh()) as _)),
    );
    reg("Softmax", Arc::new(|_| Ok(Box::new(SoftmaxOp) as _)));
    reg("Add", Arc::new(|_| Ok(Box::new(BinaryOp::add()) as _)));
    reg("Sub", Arc::new(|_| Ok(Box::new(BinaryOp::sub()) as _)));
    reg("Mul", Arc::new(|_| Ok(Box::new(BinaryOp::mul()) as _)));
    reg("Div", Arc::new(|_| Ok(Box::new(BinaryOp::div()) as _)));
    reg("Sqrt", Arc::new(|_| Ok(Box::new(SqrtOp) as _)));
    reg(
        "Scale",
        Arc::new(|a: &Attributes| {
            Ok(Box::new(ScaleOp::new(
                a.float_or("alpha", 1.0) as f32,
                a.float_or("beta", 0.0) as f32,
            )) as _)
        }),
    );
    reg(
        "BatchNorm",
        Arc::new(|a: &Attributes| {
            Ok(Box::new(BatchNormOp {
                eps: a.float_or("eps", 1e-5) as f32,
            }) as _)
        }),
    );
    reg(
        "SoftmaxCrossEntropy",
        Arc::new(|_| Ok(Box::new(SoftmaxCrossEntropyOp) as _)),
    );
    reg("MseLoss", Arc::new(|_| Ok(Box::new(MseLossOp) as _)));
    reg("Flatten", Arc::new(|_| Ok(Box::new(FlattenOp) as _)));
    reg(
        "GlobalAvgPool",
        Arc::new(|_| Ok(Box::new(GlobalAvgPoolOp) as _)),
    );
    reg(
        "Reshape",
        Arc::new(|a: &Attributes| {
            let target: Vec<usize> = a.ints("shape").iter().map(|&v| v as usize).collect();
            if target.is_empty() {
                return Err(Error::Invalid("Reshape requires 'shape' attribute".into()));
            }
            Ok(Box::new(ReshapeOp::new(&target)) as _)
        }),
    );
    reg(
        "Split",
        Arc::new(|a: &Attributes| {
            let sizes: Vec<usize> = a.ints("sizes").iter().map(|&v| v as usize).collect();
            if sizes.is_empty() {
                return Err(Error::Invalid("Split requires 'sizes' attribute".into()));
            }
            Ok(Box::new(SplitOp::new(&sizes)) as _)
        }),
    );
    reg(
        "Concat",
        Arc::new(|a: &Attributes| {
            Ok(Box::new(ConcatOp::new(a.int_or("num_inputs", 2) as usize)) as _)
        }),
    );
    reg(
        "Dropout",
        Arc::new(|a: &Attributes| {
            Ok(Box::new(DropoutOp::new(
                a.float_or("ratio", 0.5) as f32,
                a.int_or("seed", 0) as u64,
            )) as _)
        }),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use deep500_tensor::{Shape, Tensor};

    #[test]
    fn builtins_are_registered() {
        for name in [
            "MatMul",
            "Conv2d",
            "Linear",
            "MaxPool2d",
            "MedianPool2d",
            "Relu",
            "Softmax",
            "Add",
            "SoftmaxCrossEntropy",
            "Split",
            "Concat",
            "BatchNorm",
            "Dropout",
        ] {
            assert!(is_registered(name), "{name} missing");
        }
        assert!(!is_registered("Nonexistent"));
        assert!(registered_ops().len() >= 20);
    }

    #[test]
    fn create_conv_with_attributes() {
        let attrs = Attributes::new()
            .with_int("stride", 2)
            .with_int("pad", 1)
            .with_str("algorithm", "direct");
        let op = create_op("Conv2d", &attrs).unwrap();
        let x = Shape::new(&[1, 1, 5, 5]);
        let w = Shape::new(&[1, 1, 3, 3]);
        let b = Shape::new(&[1]);
        let out = op.output_shapes(&[&x, &w, &b]).unwrap();
        assert_eq!(out[0], Shape::new(&[1, 1, 3, 3]));
    }

    #[test]
    fn unknown_op_errors() {
        assert!(create_op("NoSuchOp", &Attributes::new()).is_err());
    }

    #[test]
    fn custom_registration_mirrors_d500_register_op() {
        struct Negate;
        impl Operator for Negate {
            fn name(&self) -> &str {
                "Negate"
            }
            fn num_inputs(&self) -> usize {
                1
            }
            fn output_shapes(&self, s: &[&Shape]) -> deep500_tensor::Result<Vec<Shape>> {
                Ok(vec![s[0].clone()])
            }
            fn forward(&self, inputs: &[&Tensor]) -> deep500_tensor::Result<Vec<Tensor>> {
                Ok(vec![inputs[0].scale(-1.0)])
            }
            fn backward(
                &self,
                g: &[&Tensor],
                _i: &[&Tensor],
                _o: &[&Tensor],
            ) -> deep500_tensor::Result<Vec<Tensor>> {
                Ok(vec![g[0].scale(-1.0)])
            }
        }
        register_op("Negate", |_| Ok(Box::new(Negate)));
        assert!(is_registered("Negate"));
        let op = create_op("Negate", &Attributes::new()).unwrap();
        let x = Tensor::from_slice(&[1.0, -2.0]);
        let y = op.forward(&[&x]).unwrap();
        assert_eq!(y[0].data(), &[-1.0, 2.0]);
    }

    #[test]
    fn attribute_accessors() {
        let a = Attributes::new()
            .with_int("i", 3)
            .with_float("f", 2.5)
            .with_str("s", "hello")
            .with_ints("l", &[1, 2]);
        assert_eq!(a.int_or("i", 0), 3);
        assert_eq!(a.int_or("missing", 7), 7);
        assert_eq!(a.float_or("f", 0.0), 2.5);
        assert_eq!(a.float_or("i", 0.0), 3.0); // int coerces
        assert_eq!(a.str_or("s", ""), "hello");
        assert_eq!(a.ints("l"), vec![1, 2]);
        assert_eq!(a.len(), 4);
        let sorted = a.iter_sorted();
        assert_eq!(sorted[0].0, "f");
    }

    #[test]
    fn reshape_requires_shape_attr() {
        assert!(create_op("Reshape", &Attributes::new()).is_err());
        let op = create_op("Reshape", &Attributes::new().with_ints("shape", &[2, 2])).unwrap();
        assert_eq!(op.name(), "Reshape");
    }
}
