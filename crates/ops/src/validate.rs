//! Operator forward validation — the paper's `test_forward`.
//!
//! `test_forward` "tests operator correctness and performance": it runs an
//! operator repeatedly against a reference output, collecting difference
//! norms (ℓ1/ℓ2/ℓ∞), an error-localization heatmap, an output-variance map
//! (repeatability), and a wallclock summary with nonparametric 95% CIs.

use crate::operator::Operator;
use deep500_metrics::norms::DiffNorms;
use deep500_metrics::stats::Summary;
use deep500_metrics::{Heatmap, Timer, VarianceMap};
use deep500_tensor::{Error, Result, Tensor};

/// The result of a `test_forward` validation run.
#[derive(Debug, Clone)]
pub struct ForwardReport {
    /// Difference norms vs the reference, one entry per output tensor.
    pub norms: Vec<DiffNorms>,
    /// Maximum output variance across re-runs (repeatability; 0 for
    /// deterministic operators).
    pub max_variance: f64,
    /// Wallclock summary over the re-runs.
    pub time: Summary,
    /// Error heatmap of the first output (2-D projection).
    pub heatmap: Heatmap,
}

impl ForwardReport {
    /// Pass criterion: every output within `tol` in ℓ∞ and repeatable.
    pub fn passes(&self, tol: f64) -> bool {
        self.norms.iter().all(|n| n.within(tol)) && self.max_variance <= tol
    }
}

/// Project the first output to 2-D for the heatmap: rank-2 stays as-is,
/// higher ranks collapse leading dims, rank-0/1 become a single row.
fn heatmap_dims(t: &Tensor) -> (usize, usize) {
    let s = t.shape();
    match s.rank() {
        0 | 1 => (1, t.numel().max(1)),
        2 => (s.dim(0), s.dim(1)),
        r => {
            let cols = s.dim(r - 1);
            (t.numel() / cols, cols)
        }
    }
}

/// Run `op.forward(inputs)` `reruns` times, comparing against
/// `reference_outputs`, and report correctness + performance.
pub fn test_forward(
    op: &dyn Operator,
    inputs: &[&Tensor],
    reference_outputs: &[&Tensor],
    reruns: usize,
) -> Result<ForwardReport> {
    if reruns == 0 {
        return Err(Error::Invalid("test_forward requires reruns >= 1".into()));
    }
    let mut times = Vec::with_capacity(reruns);
    let mut variance: Option<VarianceMap> = None;
    let mut last: Vec<Tensor> = Vec::new();
    for _ in 0..reruns {
        let (outputs, secs) = Timer::time(|| op.forward(inputs));
        let outputs = outputs?;
        times.push(secs);
        let v = variance.get_or_insert_with(|| VarianceMap::new(outputs[0].numel()));
        v.update(outputs[0].data());
        last = outputs;
    }
    if last.len() != reference_outputs.len() {
        return Err(Error::Validation(format!(
            "{} produced {} outputs but {} references were given",
            op.name(),
            last.len(),
            reference_outputs.len()
        )));
    }
    let norms: Vec<DiffNorms> = last
        .iter()
        .zip(reference_outputs)
        .map(|(o, r)| {
            if o.shape() != r.shape() {
                return Err(Error::ShapeMismatch(format!(
                    "output {} vs reference {}",
                    o.shape(),
                    r.shape()
                )));
            }
            Ok(DiffNorms::of(o.data(), r.data()))
        })
        .collect::<Result<_>>()?;
    let (rows, cols) = heatmap_dims(&last[0]);
    let heatmap = Heatmap::abs_diff(rows, cols, last[0].data(), reference_outputs[0].data());
    Ok(ForwardReport {
        norms,
        max_variance: variance.map(|v| v.max_variance()).unwrap_or(0.0),
        time: Summary::of(&times),
        heatmap,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conv::{Conv2dOp, ConvAlgorithm};
    use deep500_tensor::Xoshiro256StarStar;

    #[test]
    fn identical_implementations_pass() {
        let mut r = Xoshiro256StarStar::seed_from_u64(1);
        let x = Tensor::rand_uniform([1, 2, 6, 6], -1.0, 1.0, &mut r);
        let w = Tensor::rand_uniform([2, 2, 3, 3], -0.5, 0.5, &mut r);
        let b = Tensor::zeros([2]);
        let op = Conv2dOp::new(1, 1, ConvAlgorithm::Direct);
        let reference = op.forward(&[&x, &w, &b]).unwrap();
        let refs: Vec<&Tensor> = reference.iter().collect();
        let report = test_forward(&op, &[&x, &w, &b], &refs, 5).unwrap();
        assert!(report.passes(1e-12));
        assert_eq!(report.time.n, 5);
    }

    #[test]
    fn cross_algorithm_comparison_within_float_tolerance() {
        let mut r = Xoshiro256StarStar::seed_from_u64(2);
        let x = Tensor::rand_uniform([2, 3, 8, 8], -1.0, 1.0, &mut r);
        let w = Tensor::rand_uniform([4, 3, 3, 3], -0.5, 0.5, &mut r);
        let b = Tensor::zeros([4]);
        let reference = Conv2dOp::new(1, 1, ConvAlgorithm::Direct)
            .forward(&[&x, &w, &b])
            .unwrap();
        let refs: Vec<&Tensor> = reference.iter().collect();
        let wino = Conv2dOp::new(1, 1, ConvAlgorithm::Winograd);
        let report = test_forward(&wino, &[&x, &w, &b], &refs, 3).unwrap();
        // Different algorithm: small but typically nonzero error, still
        // within fp32 tolerance — the paper's ~7e-4 regime.
        assert!(report.passes(1e-3), "linf {}", report.norms[0].linf);
        // Deterministic: repeatable across reruns.
        assert_eq!(report.max_variance, 0.0);
    }

    #[test]
    fn wrong_reference_fails() {
        let op = crate::elementwise::ScaleOp::new(2.0, 0.0);
        let x = Tensor::from_slice(&[1.0, 2.0]);
        let wrong = Tensor::from_slice(&[9.0, 9.0]);
        let report = test_forward(&op, &[&x], &[&wrong], 2).unwrap();
        assert!(!report.passes(1e-3));
        assert!(report.heatmap.range().1 > 1.0);
    }

    #[test]
    fn zero_reruns_rejected() {
        let op = crate::elementwise::ScaleOp::new(1.0, 0.0);
        let x = Tensor::from_slice(&[1.0]);
        assert!(test_forward(&op, &[&x], &[&x], 0).is_err());
    }

    #[test]
    fn heatmap_dims_projection() {
        assert_eq!(heatmap_dims(&Tensor::scalar(1.0)), (1, 1));
        assert_eq!(heatmap_dims(&Tensor::zeros([5])), (1, 5));
        assert_eq!(heatmap_dims(&Tensor::zeros([2, 3])), (2, 3));
        assert_eq!(heatmap_dims(&Tensor::zeros([2, 3, 4])), (6, 4));
    }
}
