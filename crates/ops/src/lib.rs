//! # deep500-ops — Level 0: Operators
//!
//! The paper's Level 0 "enables implementing, computing, and benchmarking
//! individual operators, which are the building blocks of DNNs". This crate
//! provides:
//!
//! * the [`Operator`] trait — the Rust analogue of the paper's
//!   `CustomOperator` C++/Python interface, with `forward(inputs)` and
//!   `backward(grad_outputs, fwd_inputs, fwd_outputs)`,
//! * an [operator registry](registry) mirroring `D500_REGISTER_OP`, through
//!   which user code registers custom operators by name so that networks
//!   and the d5nx format can reference them,
//! * reference implementations of every operator needed by the paper's
//!   networks: [GEMM](gemm) (naive / blocked / parallel), 2-D
//!   [convolution](conv) (direct / im2col / Winograd), [pooling](pool)
//!   (max / average / **median** — the paper's running custom-operator
//!   example), [activations](activation), [batch normalization](norm_ops),
//!   [losses](loss), [elementwise ops](elementwise), [shape ops](shape_ops),
//!   and a GEMM-backed [fully-connected layer](linear),
//! * Level-0 validation: [`test_forward`](validate::test_forward) and
//!   [`test_gradient`](grad_check::test_gradient) (numerical
//!   differentiation via central finite differences),
//! * the [DeepBench problem-size suites](deepbench) used by the paper's
//!   Fig. 6 operator benchmarks.

pub mod activation;
pub mod conv;
pub mod deepbench;
pub mod elementwise;
pub mod gemm;
pub mod global_pool;
pub mod grad_check;
pub mod linear;
pub mod loss;
pub mod norm_ops;
pub mod operator;
pub mod pool;
pub mod registry;
pub mod shape_ops;
pub mod validate;

pub use operator::{OpEffects, Operator};
