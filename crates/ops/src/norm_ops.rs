//! Batch normalization (training mode, per-channel over NCHW).
//!
//! Inputs: `X [N,C,H,W]`, `gamma [C]`, `beta [C]`. The batch statistics are
//! recomputed in the backward pass, keeping the operator stateless (the
//! running-statistics bookkeeping of inference-mode batchnorm belongs to
//! training loops, not Level 0).

use crate::operator::Operator;
use deep500_tensor::{Error, Result, Shape, Tensor};

/// Batch-normalization operator.
#[derive(Debug, Clone)]
pub struct BatchNormOp {
    pub eps: f32,
}

impl Default for BatchNormOp {
    fn default() -> Self {
        BatchNormOp { eps: 1e-5 }
    }
}

/// Per-channel mean and (biased) variance over `N, H, W`.
fn channel_stats(x: &Tensor) -> (Vec<f64>, Vec<f64>, usize) {
    let s = x.shape();
    let (n, c, h, w) = (s.dim(0), s.dim(1), s.dim(2), s.dim(3));
    let plane = h * w;
    let m = n * plane;
    let mut mean = vec![0.0f64; c];
    let mut var = vec![0.0f64; c];
    let xd = x.data();
    for img in 0..n {
        for (ch, mu) in mean.iter_mut().enumerate() {
            let base = (img * c + ch) * plane;
            for &v in &xd[base..base + plane] {
                *mu += v as f64;
            }
        }
    }
    for mu in &mut mean {
        *mu /= m as f64;
    }
    for img in 0..n {
        for (ch, vr) in var.iter_mut().enumerate() {
            let base = (img * c + ch) * plane;
            for &v in &xd[base..base + plane] {
                let d = v as f64 - mean[ch];
                *vr += d * d;
            }
        }
    }
    for v in &mut var {
        *v /= m as f64;
    }
    (mean, var, m)
}

impl BatchNormOp {
    fn check(&self, s: &[&Shape]) -> Result<usize> {
        if s[0].rank() != 4 {
            return Err(Error::ShapeMismatch(format!(
                "BatchNorm requires rank-4 input, got {}",
                s[0]
            )));
        }
        let c = s[0].dim(1);
        if s[1].numel() != c || s[2].numel() != c {
            return Err(Error::ShapeMismatch(format!(
                "BatchNorm: gamma {} / beta {} vs {c} channels",
                s[1], s[2]
            )));
        }
        Ok(c)
    }
}

impl Operator for BatchNormOp {
    fn name(&self) -> &str {
        "BatchNorm"
    }
    fn num_inputs(&self) -> usize {
        3
    }
    fn output_shapes(&self, s: &[&Shape]) -> Result<Vec<Shape>> {
        self.check(s)?;
        Ok(vec![s[0].clone()])
    }
    fn forward(&self, inputs: &[&Tensor]) -> Result<Vec<Tensor>> {
        let (x, gamma, beta) = (inputs[0], inputs[1], inputs[2]);
        let shapes = [x.shape(), gamma.shape(), beta.shape()];
        self.check(&[shapes[0], shapes[1], shapes[2]])?;
        let s = x.shape();
        let (n, c, h, w) = (s.dim(0), s.dim(1), s.dim(2), s.dim(3));
        let plane = h * w;
        let (mean, var, _m) = channel_stats(x);
        let mut out = Tensor::zeros(s.clone());
        let (xd, gd, bd) = (x.data(), gamma.data(), beta.data());
        let od = out.data_mut();
        for img in 0..n {
            for ch in 0..c {
                let inv = 1.0 / (var[ch] + self.eps as f64).sqrt();
                let base = (img * c + ch) * plane;
                for i in 0..plane {
                    let xhat = (xd[base + i] as f64 - mean[ch]) * inv;
                    od[base + i] = (gd[ch] as f64 * xhat + bd[ch] as f64) as f32;
                }
            }
        }
        Ok(vec![out])
    }
    fn backward(
        &self,
        grad_outputs: &[&Tensor],
        inputs: &[&Tensor],
        _outputs: &[&Tensor],
    ) -> Result<Vec<Tensor>> {
        let (x, gamma, _beta) = (inputs[0], inputs[1], inputs[2]);
        let dy = grad_outputs[0];
        let s = x.shape();
        let (n, c, h, w) = (s.dim(0), s.dim(1), s.dim(2), s.dim(3));
        let plane = h * w;
        let (mean, var, m) = channel_stats(x);
        let (xd, gd, dyd) = (x.data(), gamma.data(), dy.data());

        // First pass: dgamma, dbeta.
        let mut dgamma = vec![0.0f64; c];
        let mut dbeta = vec![0.0f64; c];
        for img in 0..n {
            for ch in 0..c {
                let inv = 1.0 / (var[ch] + self.eps as f64).sqrt();
                let base = (img * c + ch) * plane;
                for i in 0..plane {
                    let xhat = (xd[base + i] as f64 - mean[ch]) * inv;
                    let g = dyd[base + i] as f64;
                    dgamma[ch] += g * xhat;
                    dbeta[ch] += g;
                }
            }
        }

        // Second pass: dx = gamma*inv * (dy - dbeta/m - xhat*dgamma/m).
        let mut dx = Tensor::zeros(s.clone());
        let dxd = dx.data_mut();
        for img in 0..n {
            for ch in 0..c {
                let inv = 1.0 / (var[ch] + self.eps as f64).sqrt();
                let scale = gd[ch] as f64 * inv;
                let base = (img * c + ch) * plane;
                for i in 0..plane {
                    let xhat = (xd[base + i] as f64 - mean[ch]) * inv;
                    let g = dyd[base + i] as f64;
                    dxd[base + i] =
                        (scale * (g - dbeta[ch] / m as f64 - xhat * dgamma[ch] / m as f64)) as f32;
                }
            }
        }
        let dgamma_t =
            Tensor::from_vec([c], dgamma.iter().map(|&v| v as f32).collect()).expect("shape");
        let dbeta_t =
            Tensor::from_vec([c], dbeta.iter().map(|&v| v as f32).collect()).expect("shape");
        Ok(vec![dx, dgamma_t, dbeta_t])
    }
    fn flops(&self, s: &[&Shape]) -> f64 {
        deep500_metrics::flops::counts::elementwise(s[0].numel(), 5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deep500_tensor::rng::Xoshiro256StarStar;

    #[test]
    fn output_is_normalized() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(3);
        let x = Tensor::rand_normal([4, 2, 3, 3], 5.0, 2.0, &mut rng);
        let gamma = Tensor::ones([2]);
        let beta = Tensor::zeros([2]);
        let y = BatchNormOp::default()
            .forward(&[&x, &gamma, &beta])
            .unwrap();
        // Per-channel mean ~0, variance ~1.
        let (mean, var, _) = channel_stats(&y[0]);
        for ch in 0..2 {
            assert!(mean[ch].abs() < 1e-5, "mean {}", mean[ch]);
            assert!((var[ch] - 1.0).abs() < 1e-3, "var {}", var[ch]);
        }
    }

    #[test]
    fn gamma_beta_shift_and_scale() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(4);
        let x = Tensor::rand_normal([2, 1, 4, 4], 0.0, 1.0, &mut rng);
        let gamma = Tensor::from_slice(&[3.0]);
        let beta = Tensor::from_slice(&[-1.0]);
        let y = BatchNormOp::default()
            .forward(&[&x, &gamma, &beta])
            .unwrap();
        let (mean, var, _) = channel_stats(&y[0]);
        assert!((mean[0] + 1.0).abs() < 1e-5);
        assert!((var[0] - 9.0).abs() < 1e-2);
    }

    #[test]
    fn dbeta_is_grad_sum() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(5);
        let x = Tensor::rand_normal([2, 2, 2, 2], 0.0, 1.0, &mut rng);
        let gamma = Tensor::ones([2]);
        let beta = Tensor::zeros([2]);
        let op = BatchNormOp::default();
        let y = op.forward(&[&x, &gamma, &beta]).unwrap();
        let dy = Tensor::ones(x.shape().clone());
        let grads = op.backward(&[&dy], &[&x, &gamma, &beta], &[&y[0]]).unwrap();
        // dbeta = sum of ones over N*H*W = 8 per channel
        assert!(grads[2].data().iter().all(|&v| (v - 8.0).abs() < 1e-4));
        // dX for constant dy is ~0 (normalization removes constants)
        assert!(grads[0].data().iter().all(|&v| v.abs() < 1e-4));
    }

    #[test]
    fn shape_validation() {
        let op = BatchNormOp::default();
        let bad = Shape::new(&[2, 3]);
        let g = Shape::new(&[3]);
        assert!(op.output_shapes(&[&bad, &g, &g]).is_err());
        let x = Shape::new(&[1, 3, 2, 2]);
        let wrong = Shape::new(&[4]);
        assert!(op.output_shapes(&[&x, &wrong, &g]).is_err());
    }
}
