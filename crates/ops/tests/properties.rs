//! Property-based tests for Level-0 operators: algorithmic agreement,
//! analytical invariants, and gradient correctness on random inputs.

use deep500_ops::activation::{ActivationOp, SoftmaxOp};
use deep500_ops::conv::direct::pack_filter;
use deep500_ops::conv::{forward_direct, forward_im2col, Conv2dOp, ConvAlgorithm, ConvGeometry};
use deep500_ops::gemm::{
    gemm_into, matmul, matmul_a_bt_with, matmul_at_b_with, Algorithm, Blocking,
};
use deep500_ops::grad_check::test_gradient;
use deep500_ops::pool::Pool2dOp;
use deep500_ops::shape_ops::{ConcatOp, SplitOp};
use deep500_ops::Operator;
use deep500_tensor::{Tensor, Xoshiro256StarStar};
use proptest::prelude::*;

fn rand_tensor(shape: &[usize], seed: u64) -> Tensor {
    let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
    Tensor::rand_uniform(shape, -1.0, 1.0, &mut rng)
}

/// Dimensions that straddle the microkernel tile edge (8), the cache-block
/// edge (64 = BLOCK), and the degenerate extreme: 1, BLOCK-1, BLOCK,
/// BLOCK+1 plus a couple of "ordinary" sizes. Indexed by a proptest range
/// strategy since the shim has no `prop_oneof`.
const EDGE_DIMS: [usize; 8] = [1, 7, 8, 9, 63, 64, 65, 37];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// All GEMM kernels agree with the naive reference on random shapes.
    #[test]
    fn gemm_kernels_agree(m in 1usize..40, n in 1usize..40, k in 1usize..40, seed in 0u64..1000) {
        let a = rand_tensor(&[m, k], seed);
        let b = rand_tensor(&[k, n], seed ^ 1);
        let reference = matmul(Algorithm::Naive, &a, &b).unwrap();
        for algo in [Algorithm::Blocked, Algorithm::Parallel, Algorithm::Packed] {
            let c = matmul(algo, &a, &b).unwrap();
            prop_assert!(c.approx_eq(&reference, 1e-3), "{algo:?} diverged");
        }
    }

    /// The packed tier agrees with the naive reference within l-inf 1e-3 on
    /// shapes straddling the tile/block edges, for plain GEMM and both
    /// transposed variants (whose transposition is absorbed into packing).
    #[test]
    fn packed_parity_on_edge_shapes(mi in 0usize..8, ni in 0usize..8, ki in 0usize..8,
                                    seed in 0u64..1000) {
        let (m, n, k) = (EDGE_DIMS[mi], EDGE_DIMS[ni], EDGE_DIMS[ki]);

        let a = rand_tensor(&[m, k], seed);
        let b = rand_tensor(&[k, n], seed ^ 1);
        let reference = matmul(Algorithm::Naive, &a, &b).unwrap();
        let c = matmul(Algorithm::Packed, &a, &b).unwrap();
        prop_assert!(c.approx_eq(&reference, 1e-3), "gemm {m}x{n}x{k}");

        // A^T * B: A stored [K x M].
        let at = rand_tensor(&[k, m], seed ^ 2);
        let reference = matmul_at_b_with(Algorithm::Naive, &at, &b).unwrap();
        let c = matmul_at_b_with(Algorithm::Packed, &at, &b).unwrap();
        prop_assert!(c.approx_eq(&reference, 1e-3), "at_b {m}x{n}x{k}");

        // A * B^T: B stored [N x K].
        let bt = rand_tensor(&[n, k], seed ^ 3);
        let reference = matmul_a_bt_with(Algorithm::Naive, &a, &bt).unwrap();
        let c = matmul_a_bt_with(Algorithm::Packed, &a, &bt).unwrap();
        prop_assert!(c.approx_eq(&reference, 1e-3), "a_bt {m}x{n}x{k}");
    }

    /// The cache-aware dispatcher produces usable (nonzero, tile-aligned)
    /// blocking parameters and the packed kernel never panics on degenerate
    /// shapes, including K=0 and M=1.
    #[test]
    fn packed_dispatch_total_on_degenerate_shapes(m in 0usize..70, n in 0usize..70,
                                                  k in 0usize..70) {
        let bl = Blocking::for_shape(m, n, k);
        prop_assert!(bl.mc >= 1 && bl.kc >= 1 && bl.nc >= 1);
        prop_assert_eq!(bl.mc % deep500_ops::gemm::MR, 0);
        prop_assert_eq!(bl.nc % deep500_ops::gemm::NR, 0);

        // The kernel itself must be total too: K=0 (or empty M/N) leaves C
        // as zeros without touching A/B.
        let a = vec![1.0f32; m * k];
        let b = vec![1.0f32; k * n];
        let mut c = vec![0.0f32; m * n];
        gemm_into(Algorithm::Packed, m, n, k, &a, &b, &mut c);
        if k == 0 {
            prop_assert!(c.iter().all(|&v| v == 0.0));
        } else {
            prop_assert!(c.iter().all(|&v| v == k as f32));
        }
    }

    /// GEMM is linear: (alpha*A) * B == alpha * (A*B).
    #[test]
    fn gemm_linearity(m in 1usize..12, n in 1usize..12, k in 1usize..12,
                      alpha in -3.0f32..3.0, seed in 0u64..100) {
        let a = rand_tensor(&[m, k], seed);
        let b = rand_tensor(&[k, n], seed ^ 2);
        let lhs = matmul(Algorithm::Blocked, &a.scale(alpha), &b).unwrap();
        let rhs = matmul(Algorithm::Blocked, &a, &b).unwrap().scale(alpha);
        prop_assert!(lhs.approx_eq(&rhs, 1e-3));
    }

    /// Direct and im2col convolution agree on random geometries.
    #[test]
    fn conv_algorithms_agree(
        n in 1usize..3, c in 1usize..4, hw in 3usize..12,
        co in 1usize..4, k in 1usize..4, stride in 1usize..3, pad in 0usize..2,
        seed in 0u64..500,
    ) {
        prop_assume!(hw + 2 * pad >= k);
        let x = rand_tensor(&[n, c, hw, hw], seed);
        let w = rand_tensor(&[co, c, k, k], seed ^ 3);
        let b = rand_tensor(&[co], seed ^ 4);
        let g = ConvGeometry { stride, pad };
        let direct = forward_direct(&x, &w, &b, g).unwrap();
        let lowered = forward_im2col(&x, &w, &b, g).unwrap();
        prop_assert!(direct.approx_eq(&lowered, 1e-4));
    }

    /// The direct NCHWc tier agrees with the im2col tier within l-inf 1e-4
    /// across stride, padding, odd channel counts, 1x1 kernels, and
    /// degenerate spatial extents — with and without the fused ReLU
    /// epilogue — and the ahead-of-time packed-filter path is bit-identical
    /// to the direct tier packing on the fly.
    #[test]
    fn conv_tier_parity_direct_vs_im2col(
        n in 1usize..3, ci in 0usize..5, hwi in 0usize..5,
        co in 1usize..18, k in 1usize..5, stride in 1usize..4, pad in 0usize..3,
        relu in any::<bool>(), seed in 0u64..500,
    ) {
        // Odd/prime channel counts and tile-edge spatial sizes.
        let c = [1, 3, 7, 8, 13][ci];
        let hw = [1, 2, 5, 9, 16][hwi];
        prop_assume!(hw + 2 * pad >= k);
        let x = rand_tensor(&[n, c, hw, hw], seed);
        let w = rand_tensor(&[co, c, k, k], seed ^ 3);
        let b = rand_tensor(&[co], seed ^ 4);

        let direct = Conv2dOp::new(stride, pad, ConvAlgorithm::Direct).with_relu(relu);
        let im2col = Conv2dOp::new(stride, pad, ConvAlgorithm::Im2col).with_relu(relu);
        let yd = direct.forward(&[&x, &w, &b]).unwrap();
        let yi = im2col.forward(&[&x, &w, &b]).unwrap();
        prop_assert!(yd[0].approx_eq(&yi[0], 1e-4),
                     "direct vs im2col n={n} c={c} hw={hw} co={co} k={k} s={stride} p={pad}");

        // Pre-packed weights: same kernel, same blocking, same bits.
        let packed = pack_filter(w.data(), co, c * k * k);
        let wp = Tensor::from_vec([packed.data.len()], packed.data).unwrap();
        let prepacked = Conv2dOp::new(stride, pad, ConvAlgorithm::Direct)
            .with_relu(relu)
            .with_packed_weights([co, c, k, k]);
        let yp = prepacked.forward(&[&x, &wp, &b]).unwrap();
        prop_assert_eq!(
            yp[0].data().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            yd[0].data().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            "prepacked filter must be bit-identical to on-the-fly packing"
        );
    }

    /// The direct tier's backward pass agrees with numerical gradients on
    /// random conv instances (stride, padding, 1x1, fused ReLU).
    #[test]
    fn conv_direct_gradcheck_random(
        c in 1usize..4, hw in 3usize..7, co in 1usize..10, k in 1usize..4,
        stride in 1usize..3, pad in 0usize..2, seed in 0u64..50,
    ) {
        prop_assume!(hw + 2 * pad >= k);
        let x = rand_tensor(&[1, c, hw, hw], seed);
        let w = rand_tensor(&[co, c, k, k], seed ^ 5);
        let b = rand_tensor(&[co], seed ^ 6);
        let op = Conv2dOp::new(stride, pad, ConvAlgorithm::Direct);
        let report = test_gradient(&op, &[&x, &w, &b], 1e-3, 40).unwrap();
        prop_assert!(report.passes(5e-3), "max rel {}", report.max_rel_error);
    }

    /// Pooling order: min(window) <= avg <= max for every output element.
    #[test]
    fn pooling_order(hw in 4usize..10, k in 2usize..4, seed in 0u64..200) {
        prop_assume!(hw >= k);
        let x = rand_tensor(&[1, 2, hw, hw], seed);
        let max = Pool2dOp::max(k, k).forward(&[&x]).unwrap();
        let avg = Pool2dOp::average(k, k).forward(&[&x]).unwrap();
        let med = Pool2dOp::median(k, k).forward(&[&x]).unwrap();
        for i in 0..max[0].numel() {
            prop_assert!(avg[0].data()[i] <= max[0].data()[i] + 1e-6);
            prop_assert!(med[0].data()[i] <= max[0].data()[i] + 1e-6);
        }
    }

    /// Softmax rows sum to one and are strictly positive.
    #[test]
    fn softmax_is_a_distribution(rows in 1usize..6, cols in 1usize..8, seed in 0u64..200) {
        let x = rand_tensor(&[rows, cols], seed).scale(5.0);
        let y = SoftmaxOp::softmax_rows(&x).unwrap();
        for r in 0..rows {
            let row = &y.data()[r * cols..(r + 1) * cols];
            let sum: f32 = row.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-5);
            prop_assert!(row.iter().all(|&p| p > 0.0));
        }
    }

    /// Split then Concat along axis 0 is the identity for any partition.
    #[test]
    fn split_concat_identity(parts in prop::collection::vec(1usize..5, 1..5),
                             cols in 1usize..6, seed in 0u64..100) {
        let total: usize = parts.iter().sum();
        let x = rand_tensor(&[total, cols], seed);
        let split = SplitOp::new(&parts);
        let pieces = split.forward(&[&x]).unwrap();
        let refs: Vec<&Tensor> = pieces.iter().collect();
        let concat = ConcatOp::new(parts.len());
        let back = concat.forward(&refs).unwrap();
        prop_assert_eq!(&back[0], &x);
    }

    /// Activations are monotone nondecreasing (ReLU/Sigmoid/Tanh).
    #[test]
    fn activations_monotone(a in -5.0f32..5.0, b in -5.0f32..5.0) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        for op in [ActivationOp::relu(), ActivationOp::sigmoid(), ActivationOp::tanh()] {
            let x = Tensor::from_slice(&[lo, hi]);
            let y = op.forward(&[&x]).unwrap();
            prop_assert!(y[0].data()[0] <= y[0].data()[1] + 1e-7, "{}", op.name());
        }
    }

    /// Numerical gradient check passes for random linear-layer instances.
    #[test]
    fn linear_gradcheck_random(n in 1usize..4, fin in 1usize..5, fout in 1usize..5,
                               seed in 0u64..50) {
        let x = rand_tensor(&[n, fin], seed);
        let w = rand_tensor(&[fout, fin], seed ^ 7);
        let b = rand_tensor(&[fout], seed ^ 8);
        let op = deep500_ops::linear::LinearOp::default();
        let report = test_gradient(&op, &[&x, &w, &b], 1e-3, 30).unwrap();
        prop_assert!(report.passes(5e-3), "max rel {}", report.max_rel_error);
    }
}
