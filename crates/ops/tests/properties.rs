//! Property-based tests for Level-0 operators: algorithmic agreement,
//! analytical invariants, and gradient correctness on random inputs.

use deep500_ops::activation::{ActivationOp, SoftmaxOp};
use deep500_ops::conv::{forward_direct, forward_im2col, ConvGeometry};
use deep500_ops::gemm::{matmul, Algorithm};
use deep500_ops::grad_check::test_gradient;
use deep500_ops::pool::Pool2dOp;
use deep500_ops::shape_ops::{ConcatOp, SplitOp};
use deep500_ops::Operator;
use deep500_tensor::{Tensor, Xoshiro256StarStar};
use proptest::prelude::*;

fn rand_tensor(shape: &[usize], seed: u64) -> Tensor {
    let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
    Tensor::rand_uniform(shape, -1.0, 1.0, &mut rng)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// All GEMM kernels agree with the naive reference on random shapes.
    #[test]
    fn gemm_kernels_agree(m in 1usize..40, n in 1usize..40, k in 1usize..40, seed in 0u64..1000) {
        let a = rand_tensor(&[m, k], seed);
        let b = rand_tensor(&[k, n], seed ^ 1);
        let reference = matmul(Algorithm::Naive, &a, &b).unwrap();
        for algo in [Algorithm::Blocked, Algorithm::Parallel] {
            let c = matmul(algo, &a, &b).unwrap();
            prop_assert!(c.approx_eq(&reference, 1e-3), "{algo:?} diverged");
        }
    }

    /// GEMM is linear: (alpha*A) * B == alpha * (A*B).
    #[test]
    fn gemm_linearity(m in 1usize..12, n in 1usize..12, k in 1usize..12,
                      alpha in -3.0f32..3.0, seed in 0u64..100) {
        let a = rand_tensor(&[m, k], seed);
        let b = rand_tensor(&[k, n], seed ^ 2);
        let lhs = matmul(Algorithm::Blocked, &a.scale(alpha), &b).unwrap();
        let rhs = matmul(Algorithm::Blocked, &a, &b).unwrap().scale(alpha);
        prop_assert!(lhs.approx_eq(&rhs, 1e-3));
    }

    /// Direct and im2col convolution agree on random geometries.
    #[test]
    fn conv_algorithms_agree(
        n in 1usize..3, c in 1usize..4, hw in 3usize..12,
        co in 1usize..4, k in 1usize..4, stride in 1usize..3, pad in 0usize..2,
        seed in 0u64..500,
    ) {
        prop_assume!(hw + 2 * pad >= k);
        let x = rand_tensor(&[n, c, hw, hw], seed);
        let w = rand_tensor(&[co, c, k, k], seed ^ 3);
        let b = rand_tensor(&[co], seed ^ 4);
        let g = ConvGeometry { stride, pad };
        let direct = forward_direct(&x, &w, &b, g).unwrap();
        let lowered = forward_im2col(&x, &w, &b, g).unwrap();
        prop_assert!(direct.approx_eq(&lowered, 1e-4));
    }

    /// Pooling order: min(window) <= avg <= max for every output element.
    #[test]
    fn pooling_order(hw in 4usize..10, k in 2usize..4, seed in 0u64..200) {
        prop_assume!(hw >= k);
        let x = rand_tensor(&[1, 2, hw, hw], seed);
        let max = Pool2dOp::max(k, k).forward(&[&x]).unwrap();
        let avg = Pool2dOp::average(k, k).forward(&[&x]).unwrap();
        let med = Pool2dOp::median(k, k).forward(&[&x]).unwrap();
        for i in 0..max[0].numel() {
            prop_assert!(avg[0].data()[i] <= max[0].data()[i] + 1e-6);
            prop_assert!(med[0].data()[i] <= max[0].data()[i] + 1e-6);
        }
    }

    /// Softmax rows sum to one and are strictly positive.
    #[test]
    fn softmax_is_a_distribution(rows in 1usize..6, cols in 1usize..8, seed in 0u64..200) {
        let x = rand_tensor(&[rows, cols], seed).scale(5.0);
        let y = SoftmaxOp::softmax_rows(&x).unwrap();
        for r in 0..rows {
            let row = &y.data()[r * cols..(r + 1) * cols];
            let sum: f32 = row.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-5);
            prop_assert!(row.iter().all(|&p| p > 0.0));
        }
    }

    /// Split then Concat along axis 0 is the identity for any partition.
    #[test]
    fn split_concat_identity(parts in prop::collection::vec(1usize..5, 1..5),
                             cols in 1usize..6, seed in 0u64..100) {
        let total: usize = parts.iter().sum();
        let x = rand_tensor(&[total, cols], seed);
        let split = SplitOp::new(&parts);
        let pieces = split.forward(&[&x]).unwrap();
        let refs: Vec<&Tensor> = pieces.iter().collect();
        let concat = ConcatOp::new(parts.len());
        let back = concat.forward(&refs).unwrap();
        prop_assert_eq!(&back[0], &x);
    }

    /// Activations are monotone nondecreasing (ReLU/Sigmoid/Tanh).
    #[test]
    fn activations_monotone(a in -5.0f32..5.0, b in -5.0f32..5.0) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        for op in [ActivationOp::relu(), ActivationOp::sigmoid(), ActivationOp::tanh()] {
            let x = Tensor::from_slice(&[lo, hi]);
            let y = op.forward(&[&x]).unwrap();
            prop_assert!(y[0].data()[0] <= y[0].data()[1] + 1e-7, "{}", op.name());
        }
    }

    /// Numerical gradient check passes for random linear-layer instances.
    #[test]
    fn linear_gradcheck_random(n in 1usize..4, fin in 1usize..5, fout in 1usize..5,
                               seed in 0u64..50) {
        let x = rand_tensor(&[n, fin], seed);
        let w = rand_tensor(&[fout, fin], seed ^ 7);
        let b = rand_tensor(&[fout], seed ^ 8);
        let op = deep500_ops::linear::LinearOp::default();
        let report = test_gradient(&op, &[&x, &w, &b], 1e-3, 30).unwrap();
        prop_assert!(report.passes(5e-3), "max rel {}", report.max_rel_error);
    }
}
