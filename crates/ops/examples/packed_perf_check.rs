//! Quick GFLOP/s sanity check for the GEMM tiers (not a recorded bench).
use deep500_ops::gemm::{gemm_into, Algorithm};
use deep500_tensor::rng::Xoshiro256StarStar;
use deep500_tensor::Tensor;
use std::time::Instant;

fn main() {
    let n = 1024usize;
    let mut rng = Xoshiro256StarStar::seed_from_u64(42);
    let a = Tensor::rand_uniform([n, n], -1.0, 1.0, &mut rng);
    let b = Tensor::rand_uniform([n, n], -1.0, 1.0, &mut rng);
    let flops = 2.0 * (n as f64).powi(3);
    for algo in [Algorithm::Blocked, Algorithm::Parallel, Algorithm::Packed] {
        let mut c = vec![0.0f32; n * n];
        // warmup
        gemm_into(algo, n, n, n, a.data(), b.data(), &mut c);
        let reps = 3;
        let t0 = Instant::now();
        for _ in 0..reps {
            c.iter_mut().for_each(|v| *v = 0.0);
            gemm_into(algo, n, n, n, a.data(), b.data(), &mut c);
        }
        let dt = t0.elapsed().as_secs_f64() / reps as f64;
        println!(
            "{algo:?}: {:.2} GFLOP/s ({:.1} ms)",
            flops / dt / 1e9,
            dt * 1e3
        );
    }
}
