//! Whole-run attribution coverage regression.
//!
//! Every second of a traced training run must be owned: either by an
//! operator span (forward/backward kernels) or by an explicitly named
//! non-operator phase — sampling, batch assembly, loss-gradient seeding,
//! optimizer updates, pool/plan bookkeeping. The uninstrumented residual
//! (wavefront dispatch, runner loop glue) must stay below 10% of total
//! epoch wall time, matching the gate `profile` enforces in CI.

use deep500_data::sampler::ShuffleSampler;
use deep500_data::synthetic::SyntheticDataset;
use deep500_graph::{models, Engine, ExecutorKind};
use deep500_metrics::event::Phase;
use deep500_metrics::trace::TraceRecorder;
use deep500_tensor::Shape;
use deep500_train::sgd::GradientDescent;
use deep500_train::{TrainingConfig, TrainingRunner};
use std::sync::Arc;

fn run_coverage(kind: ExecutorKind) -> f64 {
    let recorder = TraceRecorder::new();
    let features = 32;
    let net = models::mlp(features, &[128, 64], 4, 42).expect("build mlp");
    let engine = Engine::builder(net)
        .executor(kind)
        .trace(&recorder)
        .build()
        .expect("build engine");
    let mut ex = engine.lock();

    let ds = SyntheticDataset::new("coverage-train", Shape::new(&[features]), 4, 128, 0.2, 7);
    let mut sampler = ShuffleSampler::new(Arc::new(ds), 32, 7);
    let mut opt = GradientDescent::new(0.05);
    let mut runner = TrainingRunner::new(TrainingConfig {
        epochs: 1,
        ..Default::default()
    });
    runner.events.push(Box::new(recorder.sink("runner")));
    runner
        .run(&mut opt, &mut *ex, &mut sampler, None)
        .expect("training run");

    let attributed: f64 = ex.op_attribution().iter().map(|r| r.total_s()).sum();
    let owned: f64 = [
        Phase::Sampling,
        Phase::BatchAssembly,
        Phase::LossSeed,
        Phase::OptimizerUpdate,
        Phase::Bookkeeping,
    ]
    .iter()
    .map(|p| recorder.phase_total_s(*p))
    .sum();
    let run_total = recorder.phase_total_s(Phase::Epoch);
    assert!(run_total > 0.0, "{kind:?}: epoch phase must be traced");
    (attributed + owned) / run_total
}

#[test]
fn traced_training_run_attributes_at_least_ninety_percent_of_epoch_time() {
    for kind in [ExecutorKind::Wavefront, ExecutorKind::Reference] {
        let coverage = run_coverage(kind);
        assert!(
            coverage >= 0.90,
            "{kind:?}: whole-run attribution coverage {coverage:.4} fell \
             below the 0.90 floor"
        );
        // Owned phases must not double-count operator time: total
        // attribution can never exceed the run itself (small tolerance for
        // timer skew between nested span measurements).
        assert!(
            coverage <= 1.05,
            "{kind:?}: coverage {coverage:.4} over-counts the run"
        );
    }
}

#[test]
fn new_training_phases_are_populated() {
    let recorder = TraceRecorder::new();
    let net = models::mlp(16, &[24], 4, 3).expect("build mlp");
    let engine = Engine::builder(net)
        .executor(ExecutorKind::Wavefront)
        .trace(&recorder)
        .build()
        .expect("build engine");
    let mut ex = engine.lock();
    let ds = SyntheticDataset::new("phase-train", Shape::new(&[16]), 4, 64, 0.2, 5);
    let mut sampler = ShuffleSampler::new(Arc::new(ds), 16, 5);
    let mut opt = GradientDescent::new(0.05);
    let mut runner = TrainingRunner::new(TrainingConfig {
        epochs: 1,
        ..Default::default()
    });
    runner.events.push(Box::new(recorder.sink("runner")));
    runner
        .run(&mut opt, &mut *ex, &mut sampler, None)
        .expect("training run");
    for phase in [
        Phase::BatchAssembly,
        Phase::LossSeed,
        Phase::OptimizerUpdate,
        Phase::Bookkeeping,
    ] {
        assert!(
            recorder.phase_total_s(phase) > 0.0,
            "{phase:?} must be populated by a traced training run"
        );
    }
}
