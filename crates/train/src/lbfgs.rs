//! Stochastic L-BFGS — the paper's Use Case 3.
//!
//! "Implementing a second-order optimization, such as Stochastic
//! L-BFGS, requires a training loop that is vastly different than that in
//! Algorithm 1, which is the basis of many frameworks. … An infrastructure
//! for combining the best of different DL frameworks would be advantageous
//! in such cases." (§III-A). The `ThreeStepOptimizer` interface handles it
//! without touching any framework internals: the curvature-pair history
//! lives in the optimizer, the two-loop recursion runs inside
//! `update_rule`, and the training loop stays Algorithm 1.
//!
//! This is the classic limited-memory BFGS two-loop recursion over
//! per-parameter histories of `(s, y)` pairs (`s = wₖ₊₁−wₖ`,
//! `y = gₖ₊₁−gₖ`), with stochastic-setting safeguards: pairs with
//! non-positive curvature `sᵀy` are skipped (Powell-style damping would
//! also work), and the first step falls back to scaled gradient descent.

use crate::optimizer::ThreeStepOptimizer;
use deep500_tensor::{Result, Tensor};
use std::collections::HashMap;

/// Per-parameter curvature history.
#[derive(Default)]
struct History {
    /// `s = w_{k+1} - w_k` pairs, newest last.
    s: Vec<Vec<f32>>,
    /// `y = g_{k+1} - g_k` pairs, newest last.
    y: Vec<Vec<f32>>,
    prev_w: Option<Vec<f32>>,
    prev_g: Option<Vec<f32>>,
}

/// Stochastic L-BFGS optimizer.
pub struct StochasticLbfgs {
    /// Step size applied to the two-loop direction.
    pub lr: f32,
    /// History length `m` (pairs kept per parameter).
    pub memory: usize,
    /// Curvature threshold: pairs with `sᵀy <= eps·‖s‖‖y‖` are rejected.
    pub curvature_eps: f64,
    hist: HashMap<String, History>,
}

impl StochasticLbfgs {
    /// L-BFGS with history length `memory` (typically 5–20).
    pub fn new(lr: f32, memory: usize) -> Self {
        StochasticLbfgs {
            lr,
            memory: memory.max(1),
            curvature_eps: 1e-10,
            hist: HashMap::new(),
        }
    }

    /// Number of stored curvature pairs for a parameter (test hook).
    pub fn pairs(&self, name: &str) -> usize {
        self.hist.get(name).map(|h| h.s.len()).unwrap_or(0)
    }

    /// The two-loop recursion: approximate `H·g` from the pair history.
    fn two_loop(&self, name: &str, grad: &[f32]) -> Vec<f32> {
        let hist = match self.hist.get(name) {
            Some(h) if !h.s.is_empty() => h,
            _ => return grad.to_vec(), // no curvature info: plain gradient
        };
        let k = hist.s.len();
        let dot = |a: &[f32], b: &[f32]| -> f64 {
            a.iter().zip(b).map(|(&x, &y)| x as f64 * y as f64).sum()
        };
        let mut q: Vec<f64> = grad.iter().map(|&v| v as f64).collect();
        let mut alphas = vec![0.0f64; k];
        let mut rhos = vec![0.0f64; k];
        for i in (0..k).rev() {
            let sy = dot(&hist.s[i], &hist.y[i]);
            rhos[i] = 1.0 / sy;
            let sq: f64 = hist.s[i]
                .iter()
                .zip(&q)
                .map(|(&s, &qv)| s as f64 * qv)
                .sum();
            alphas[i] = rhos[i] * sq;
            for (qv, &yv) in q.iter_mut().zip(&hist.y[i]) {
                *qv -= alphas[i] * yv as f64;
            }
        }
        // Initial Hessian scaling: gamma = s'y / y'y of the newest pair.
        let yy = dot(&hist.y[k - 1], &hist.y[k - 1]);
        let sy = dot(&hist.s[k - 1], &hist.y[k - 1]);
        let gamma = if yy > 0.0 { sy / yy } else { 1.0 };
        for qv in q.iter_mut() {
            *qv *= gamma;
        }
        for i in 0..k {
            let yq: f64 = hist.y[i]
                .iter()
                .zip(&q)
                .map(|(&y, &qv)| y as f64 * qv)
                .sum();
            let beta = rhos[i] * yq;
            for (qv, &sv) in q.iter_mut().zip(&hist.s[i]) {
                *qv += (alphas[i] - beta) * sv as f64;
            }
        }
        q.into_iter().map(|v| v as f32).collect()
    }
}

impl ThreeStepOptimizer for StochasticLbfgs {
    fn name(&self) -> &str {
        "StochasticLbfgs"
    }
    fn update_rule(&mut self, grad: &Tensor, old_param: &Tensor, name: &str) -> Result<Tensor> {
        // Direction from the current history.
        let direction = self.two_loop(name, grad.data());
        let mut new_w = old_param.clone();
        for (w, d) in new_w.data_mut().iter_mut().zip(&direction) {
            *w -= self.lr * d;
        }

        // Update the curvature history from (w, g) deltas.
        let hist = self.hist.entry(name.to_string()).or_default();
        if let (Some(pw), Some(pg)) = (&hist.prev_w, &hist.prev_g) {
            let s: Vec<f32> = old_param
                .data()
                .iter()
                .zip(pw)
                .map(|(&a, &b)| a - b)
                .collect();
            let y: Vec<f32> = grad.data().iter().zip(pg).map(|(&a, &b)| a - b).collect();
            let sy: f64 = s.iter().zip(&y).map(|(&a, &b)| a as f64 * b as f64).sum();
            let sn: f64 = s.iter().map(|&v| (v as f64).powi(2)).sum::<f64>().sqrt();
            let yn: f64 = y.iter().map(|&v| (v as f64).powi(2)).sum::<f64>().sqrt();
            // Stochastic safeguard: only accept positive-curvature pairs.
            if sy > self.curvature_eps * sn * yn && sy.is_finite() {
                hist.s.push(s);
                hist.y.push(y);
                if hist.s.len() > self.memory {
                    hist.s.remove(0);
                    hist.y.remove(0);
                }
            }
        }
        hist.prev_w = Some(old_param.data().to_vec());
        hist.prev_g = Some(grad.data().to_vec());
        Ok(new_w)
    }
    fn reset(&mut self) {
        self.hist.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Quadratic f(w) = 0.5 wᵀ A w with ill-conditioned diagonal A: L-BFGS
    /// must converge much faster than gradient descent at the same lr.
    fn quad_grad(w: &Tensor, scales: &[f32]) -> Tensor {
        let mut g = w.clone();
        for (gv, &s) in g.data_mut().iter_mut().zip(scales) {
            *gv *= s;
        }
        g
    }

    #[test]
    fn first_step_is_gradient_descent() {
        let mut o = StochasticLbfgs::new(0.1, 5);
        let w = Tensor::from_slice(&[1.0, -2.0]);
        let g = Tensor::from_slice(&[2.0, 2.0]);
        let w2 = o.update_rule(&g, &w, "w").unwrap();
        assert!((w2.data()[0] - 0.8).abs() < 1e-6);
        assert_eq!(o.pairs("w"), 0, "no curvature yet");
    }

    #[test]
    fn curvature_pairs_accumulate_and_cap() {
        let mut o = StochasticLbfgs::new(0.05, 3);
        let scales = [1.0f32, 10.0];
        let mut w = Tensor::from_slice(&[5.0, 5.0]);
        for _ in 0..10 {
            let g = quad_grad(&w, &scales);
            w = o.update_rule(&g, &w, "w").unwrap();
        }
        assert!(o.pairs("w") <= 3, "history capped at m");
        assert!(o.pairs("w") >= 1, "positive-curvature pairs accepted");
        o.reset();
        assert_eq!(o.pairs("w"), 0);
    }

    #[test]
    fn beats_gradient_descent_on_ill_conditioned_quadratic() {
        // Condition number 100: GD is stability-capped at lr < 2/L = 0.02
        // and crawls along the flat direction; L-BFGS's two-loop direction
        // approximates the Newton step, so it tolerates a near-unit step
        // size — the whole point of second-order methods.
        let scales = [1.0f32, 100.0];
        let steps = 60;

        let mut gd_w = Tensor::from_slice(&[10.0, 10.0]);
        let mut sgd = crate::sgd::GradientDescent::new(0.009); // max stable
        for _ in 0..steps {
            let g = quad_grad(&gd_w, &scales);
            gd_w = sgd.update_rule(&g, &gd_w, "w").unwrap();
        }

        let mut lb_w = Tensor::from_slice(&[10.0, 10.0]);
        let mut lbfgs = StochasticLbfgs::new(0.5, 10);
        for _ in 0..steps {
            let g = quad_grad(&lb_w, &scales);
            lb_w = lbfgs.update_rule(&g, &lb_w, "w").unwrap();
        }
        assert!(
            lb_w.l2_norm() < gd_w.l2_norm() * 0.1,
            "lbfgs {} vs gd {}",
            lb_w.l2_norm(),
            gd_w.l2_norm()
        );
    }

    #[test]
    fn negative_curvature_pairs_are_rejected() {
        let mut o = StochasticLbfgs::new(0.1, 5);
        let w = Tensor::from_slice(&[1.0]);
        // Adversarial gradient sequence: g flips sign with w moving the
        // same way -> s'y < 0 for the manufactured pair.
        let w1 = o.update_rule(&Tensor::from_slice(&[1.0]), &w, "w").unwrap();
        let _w2 = o
            .update_rule(&Tensor::from_slice(&[2.0]), &w1, "w")
            .unwrap();
        // s = w1 - w = -0.1 ; y = 2 - 1 = 1 ; s'y = -0.1 < 0 -> rejected.
        assert_eq!(o.pairs("w"), 0);
    }

    #[test]
    fn trains_a_network_end_to_end() {
        use crate::optimizer::train_step;
        use deep500_data::Minibatch;
        use deep500_graph::{models, Engine};
        let net = models::mlp(8, &[16], 3, 21).unwrap();
        let engine = Engine::builder(net).build().unwrap();
        let mut ex = engine.lock();
        let mut o = StochasticLbfgs::new(0.05, 8);
        let mut x = Tensor::zeros([6, 8]);
        for i in 0..6 {
            x.data_mut()[i * 8 + (i % 8)] = 1.0;
        }
        let mb = Minibatch {
            x,
            labels: Tensor::from_slice(&[0.0, 1.0, 2.0, 0.0, 1.0, 2.0]),
        };
        let first = train_step(&mut o, &mut *ex, &mb).unwrap().loss;
        let mut last = first;
        for _ in 0..30 {
            last = train_step(&mut o, &mut *ex, &mb).unwrap().loss;
        }
        assert!(last < first * 0.5, "L-BFGS training: {first} -> {last}");
    }
}
