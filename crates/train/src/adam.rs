//! Adam (Kingma & Ba, ICLR'15), "directly translated from the original
//! algorithm" — the paper notes this faithful-but-unfused reference runs
//! ≈5× slower than native fused kernels while reaching the same accuracy.

use crate::optimizer::ThreeStepOptimizer;
use deep500_tensor::{Result, Tensor};
use std::collections::HashMap;

/// Adam hyperparameters.
#[derive(Debug, Clone, Copy)]
pub struct AdamConfig {
    pub lr: f32,
    pub beta1: f32,
    pub beta2: f32,
    pub eps: f32,
}

impl Default for AdamConfig {
    fn default() -> Self {
        AdamConfig {
            lr: 1e-3,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
        }
    }
}

/// The reference Adam optimizer (whole-tensor expression per update).
pub struct Adam {
    pub cfg: AdamConfig,
    m: HashMap<String, Tensor>,
    v: HashMap<String, Tensor>,
    t: HashMap<String, u32>,
}

impl Adam {
    /// Adam with the given learning rate and default betas.
    pub fn new(lr: f32) -> Self {
        Self::with_config(AdamConfig {
            lr,
            ..Default::default()
        })
    }

    /// Fully specified Adam.
    pub fn with_config(cfg: AdamConfig) -> Self {
        Adam {
            cfg,
            m: HashMap::new(),
            v: HashMap::new(),
            t: HashMap::new(),
        }
    }
}

impl ThreeStepOptimizer for Adam {
    fn name(&self) -> &str {
        "Adam"
    }
    fn update_rule(&mut self, grad: &Tensor, old_param: &Tensor, name: &str) -> Result<Tensor> {
        let c = self.cfg;
        let t = self.t.entry(name.to_string()).or_insert(0);
        *t += 1;
        let tf = *t as i32;
        let m = self
            .m
            .entry(name.to_string())
            .or_insert_with(|| Tensor::zeros(grad.shape().clone()));
        // m = b1*m + (1-b1)*g           (allocating, reference style)
        let new_m = m.scale(c.beta1).add(&grad.scale(1.0 - c.beta1))?;
        *m = new_m.clone();
        let v = self
            .v
            .entry(name.to_string())
            .or_insert_with(|| Tensor::zeros(grad.shape().clone()));
        // v = b2*v + (1-b2)*g^2
        let g2 = grad.mul(grad)?;
        let new_v = v.scale(c.beta2).add(&g2.scale(1.0 - c.beta2))?;
        *v = new_v.clone();
        // Bias correction.
        let mhat = new_m.scale(1.0 / (1.0 - c.beta1.powi(tf)));
        let vhat = new_v.scale(1.0 / (1.0 - c.beta2.powi(tf)));
        // w = w - lr * mhat / (sqrt(vhat) + eps)
        let denom = vhat.map(|x| x.sqrt() + c.eps);
        old_param.sub(&mhat.div(&denom)?.scale(c.lr))
    }
    fn reset(&mut self) {
        self.m.clear();
        self.v.clear();
        self.t.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_step_size_is_lr() {
        // At t=1 with any nonzero constant gradient, Adam steps by ~lr in
        // the negative gradient direction (bias corrections cancel).
        let mut a = Adam::new(0.1);
        let w = Tensor::from_slice(&[1.0, -1.0]);
        let g = Tensor::from_slice(&[3.0, -7.0]);
        let w2 = a.update_rule(&g, &w, "w").unwrap();
        assert!((w2.data()[0] - 0.9).abs() < 1e-4, "{}", w2.data()[0]);
        assert!((w2.data()[1] + 0.9).abs() < 1e-4);
    }

    #[test]
    fn converges_on_quadratic() {
        let mut a = Adam::new(0.1);
        let mut w = Tensor::from_slice(&[3.0, -2.0, 1.0]);
        for _ in 0..500 {
            let g = w.scale(2.0);
            w = a.update_rule(&g, &w, "w").unwrap();
        }
        assert!(w.l2_norm() < 1e-2, "norm {}", w.l2_norm());
    }

    #[test]
    fn step_counter_is_per_parameter() {
        let mut a = Adam::new(0.1);
        let w = Tensor::from_slice(&[1.0]);
        let g = Tensor::from_slice(&[1.0]);
        for _ in 0..5 {
            a.update_rule(&g, &w, "a").unwrap();
        }
        // Parameter "b" still behaves like t=1.
        let w2 = a.update_rule(&g, &w, "b").unwrap();
        assert!((w2.data()[0] - 0.9).abs() < 1e-4);
    }

    #[test]
    fn reset_restores_initial_behaviour() {
        let mut a = Adam::new(0.1);
        let w = Tensor::from_slice(&[1.0]);
        let g = Tensor::from_slice(&[1.0]);
        let first = a.update_rule(&g, &w, "w").unwrap();
        a.update_rule(&g, &first, "w").unwrap();
        a.reset();
        let again = a.update_rule(&g, &w, "w").unwrap();
        assert_eq!(first, again);
    }

    #[test]
    fn adaptive_scaling_shrinks_large_gradient_dims() {
        // After many steps with wildly different per-dim gradients, the
        // effective steps are comparable (Adam normalizes by RMS).
        let mut a = Adam::new(0.01);
        let mut w = Tensor::from_slice(&[1.0, 1.0]);
        for _ in 0..10 {
            let g = Tensor::from_slice(&[100.0, 0.01]);
            w = a.update_rule(&g, &w, "w").unwrap();
        }
        let step0 = 1.0 - w.data()[0];
        let step1 = 1.0 - w.data()[1];
        assert!(step0 > 0.0 && step1 > 0.0);
        assert!(step0 / step1 < 2.0, "steps {step0} vs {step1}");
    }
}
