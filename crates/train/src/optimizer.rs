//! The optimizer abstractions and the training-step driver.
//!
//! The paper divides an optimizer's execution into three steps "to
//! facilitate automatic distribution of optimization": ¶ input sampling
//! (`new_input`), · adjusting parameters prior to inference
//! (`prepare_param`), and ¸ applying an update rule (`update_rule`).
//! Plain update-rule optimizers (Algorithm 1's `U`) simply leave the first
//! two as no-ops. Level-3 distributed optimizers wrap any
//! [`ThreeStepOptimizer`] and splice communication between backpropagation
//! and the update rule — exactly the paper's Listing 9.

use deep500_data::Minibatch;
use deep500_graph::{grad_name, GraphExecutor};
use deep500_metrics::{EventList, Phase};
use deep500_ops::loss::accuracy;
use deep500_tensor::{Error, Result, Tensor};

/// The three-step optimizer interface (paper §IV-E).
pub trait ThreeStepOptimizer: Send {
    /// Optimizer name for reports.
    fn name(&self) -> &str;

    /// Step ¶: called once per iteration before anything else (e.g.
    /// advance the step counter, recompute step-size coefficients).
    fn new_input(&mut self) {}

    /// Step ·: optionally replace `param` before inference (e.g.
    /// AcceleGrad's interpolation between its `y` and `z` sequences).
    /// Returning `None` leaves the parameter unchanged.
    fn prepare_param(&mut self, name: &str, param: &Tensor) -> Option<Tensor> {
        let _ = (name, param);
        None
    }

    /// Step ¸: the update rule — new parameter value from the gradient and
    /// the (possibly adjusted) old parameter.
    fn update_rule(&mut self, grad: &Tensor, old_param: &Tensor, name: &str) -> Result<Tensor>;

    /// Reset internal state (moment buffers, step counters).
    fn reset(&mut self) {}
}

/// Result of one training step.
#[derive(Debug, Clone)]
pub struct StepResult {
    /// Scalar training loss of the minibatch.
    pub loss: f32,
    /// Minibatch training accuracy (from the `logits` output, if present).
    pub accuracy: Option<f64>,
}

/// Execute one three-step training iteration: prepare parameters, run
/// inference + backprop on the minibatch, then apply the update rule to
/// every parameter. This is the nondistributed core that Level 3 wraps.
pub fn train_step(
    opt: &mut dyn ThreeStepOptimizer,
    executor: &mut dyn GraphExecutor,
    batch: &Minibatch,
) -> Result<StepResult> {
    let mut events = EventList::new();
    train_step_traced(opt, executor, batch, &mut events, 0)
}

/// [`train_step`] with event instrumentation: the optimizer's own work —
/// batch assembly (prepare + feed construction, [`Phase::BatchAssembly`])
/// and the parameter update sweep ([`Phase::OptimizerUpdate`]) — is
/// reported as spans to `events`, keyed by the iteration number `step`.
/// Runners pass their event list so whole-run attribution can account for
/// the time between operator spans; `train_step` itself delegates here
/// with a throwaway list.
pub fn train_step_traced(
    opt: &mut dyn ThreeStepOptimizer,
    executor: &mut dyn GraphExecutor,
    batch: &Minibatch,
    events: &mut EventList,
    step: usize,
) -> Result<StepResult> {
    let assembly_start = std::time::Instant::now();
    opt.new_input();
    let params: Vec<String> = executor.network().get_params().to_vec();
    for pname in &params {
        let param = executor.network().fetch_tensor(pname)?;
        if let Some(adjusted) = opt.prepare_param(pname, param) {
            executor.network_mut().feed_tensor(pname.clone(), adjusted);
        }
    }
    let feeds = batch.feeds();
    events.span(
        Phase::BatchAssembly,
        step,
        assembly_start.elapsed().as_secs_f64(),
    );
    let outputs = executor.inference_and_backprop(&feeds, "loss")?;
    let loss = outputs
        .get("loss")
        .ok_or_else(|| Error::NotFound("'loss' output".into()))?
        .data()[0];
    if let Some(logits) = outputs.get("logits") {
        if logits.has_non_finite() {
            return Err(Error::Validation(
                "non-finite logits: training has diverged".into(),
            ));
        }
    }
    let acc = outputs
        .get("logits")
        .and_then(|l| accuracy(l, &batch.labels).ok());

    let update_start = std::time::Instant::now();
    for pname in &params {
        let gname = grad_name(pname);
        let grad = executor.network().fetch_tensor(&gname)?.clone();
        let old = executor.network().fetch_tensor(pname)?.clone();
        let updated = opt.update_rule(&grad, &old, pname)?;
        if updated.shape() != old.shape() {
            return Err(Error::ShapeMismatch(format!(
                "{}: update changed shape of '{pname}': {} -> {}",
                opt.name(),
                old.shape(),
                updated.shape()
            )));
        }
        executor.network_mut().feed_tensor(pname.clone(), updated);
    }
    events.span(
        Phase::OptimizerUpdate,
        step,
        update_start.elapsed().as_secs_f64(),
    );
    Ok(StepResult {
        loss,
        accuracy: acc,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use deep500_graph::{models, Engine};

    /// Minimal update rule for trait-machinery tests: plain SGD.
    pub struct PlainSgd {
        pub lr: f32,
    }
    impl ThreeStepOptimizer for PlainSgd {
        fn name(&self) -> &str {
            "plain-sgd"
        }
        fn update_rule(&mut self, grad: &Tensor, old: &Tensor, _n: &str) -> Result<Tensor> {
            let mut p = old.clone();
            p.axpy(-self.lr, grad)?;
            Ok(p)
        }
    }

    fn batch() -> Minibatch {
        // Distinguishable inputs so the labels are actually fittable.
        let mut x = Tensor::zeros([4, 8]);
        for i in 0..4 {
            x.data_mut()[i * 8 + i] = 1.0;
            x.data_mut()[i * 8 + i + 4] = -1.0;
        }
        Minibatch {
            x,
            labels: Tensor::from_slice(&[0.0, 1.0, 2.0, 0.0]),
        }
    }

    #[test]
    fn train_step_updates_parameters_and_reports_loss() {
        let net = models::mlp(8, &[6], 3, 1).unwrap();
        let before = net.fetch_tensor("fc1.w").unwrap().clone();
        let engine = Engine::builder(net).build().unwrap();
        let mut ex = engine.lock();
        let mut opt = PlainSgd { lr: 0.1 };
        let r = train_step(&mut opt, &mut *ex, &batch()).unwrap();
        assert!(r.loss > 0.0 && r.loss.is_finite());
        assert!(r.accuracy.is_some());
        let after = ex.network().fetch_tensor("fc1.w").unwrap();
        assert_ne!(&before, after, "parameters must move");
    }

    #[test]
    fn repeated_steps_reduce_loss_on_a_fixed_batch() {
        let net = models::mlp(8, &[16], 3, 2).unwrap();
        let engine = Engine::builder(net).build().unwrap();
        let mut ex = engine.lock();
        let mut opt = PlainSgd { lr: 0.5 };
        let b = batch();
        let first = train_step(&mut opt, &mut *ex, &b).unwrap().loss;
        let mut last = first;
        for _ in 0..20 {
            last = train_step(&mut opt, &mut *ex, &b).unwrap().loss;
        }
        assert!(
            last < first * 0.5,
            "overfitting a fixed batch must drive loss down: {first} -> {last}"
        );
    }

    #[test]
    fn shape_changing_update_is_rejected() {
        struct Bad;
        impl ThreeStepOptimizer for Bad {
            fn name(&self) -> &str {
                "bad"
            }
            fn update_rule(&mut self, _g: &Tensor, _o: &Tensor, _n: &str) -> Result<Tensor> {
                Ok(Tensor::zeros([1]))
            }
        }
        let net = models::mlp(8, &[], 3, 3).unwrap();
        let engine = Engine::builder(net).build().unwrap();
        let mut ex = engine.lock();
        assert!(train_step(&mut Bad, &mut *ex, &batch()).is_err());
    }

    #[test]
    fn default_hooks_are_noops() {
        let mut opt = PlainSgd { lr: 0.1 };
        opt.new_input();
        assert!(opt.prepare_param("p", &Tensor::zeros([2])).is_none());
        opt.reset();
    }
}
