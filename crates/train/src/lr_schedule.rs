//! Learning-rate schedules ("Gradient Descent with learning rate
//! schedule" is among the paper's provided optimizers).

/// A learning-rate schedule evaluated at step `t`.
#[derive(Debug, Clone, PartialEq)]
pub enum LrSchedule {
    /// Fixed learning rate.
    Constant(f32),
    /// `lr * gamma^(t / step_every)` — staircase exponential decay.
    StepDecay {
        lr: f32,
        gamma: f32,
        step_every: usize,
    },
    /// `lr / (1 + decay * t)` — inverse-time decay.
    InverseTime { lr: f32, decay: f32 },
}

impl LrSchedule {
    /// Learning rate at iteration `t` (0-based).
    pub fn at(&self, t: usize) -> f32 {
        match self {
            LrSchedule::Constant(lr) => *lr,
            LrSchedule::StepDecay {
                lr,
                gamma,
                step_every,
            } => lr * gamma.powi((t / step_every.max(&1)) as i32),
            LrSchedule::InverseTime { lr, decay } => lr / (1.0 + decay * t as f32),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_is_constant() {
        let s = LrSchedule::Constant(0.1);
        assert_eq!(s.at(0), 0.1);
        assert_eq!(s.at(1000), 0.1);
    }

    #[test]
    fn step_decay_staircases() {
        let s = LrSchedule::StepDecay {
            lr: 1.0,
            gamma: 0.5,
            step_every: 10,
        };
        assert_eq!(s.at(0), 1.0);
        assert_eq!(s.at(9), 1.0);
        assert_eq!(s.at(10), 0.5);
        assert_eq!(s.at(25), 0.25);
    }

    #[test]
    fn inverse_time_decays_monotonically() {
        let s = LrSchedule::InverseTime {
            lr: 1.0,
            decay: 0.1,
        };
        assert_eq!(s.at(0), 1.0);
        assert!(s.at(10) < s.at(5));
        assert!((s.at(10) - 0.5).abs() < 1e-6);
    }
}
