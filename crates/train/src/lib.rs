//! # deep500-train — Level 2: Training
//!
//! The paper's Level 2 "implements DNN training" around two interfaces:
//! `DatasetSampler` (provided by `deep500-data`) and `Optimizer`. This
//! crate provides:
//!
//! * the [`optimizer::ThreeStepOptimizer`] abstraction —
//!   the paper's novel decomposition of an SGD step into ¶ input sampling,
//!   · parameter adjustment before inference, and ¸ the update rule —
//!   which is what makes optimizers automatically distributable in Level 3,
//! * reference optimizers, written as direct translations of their
//!   published algorithms over whole-tensor operations (deliberately
//!   allocation-heavy — they play the role of the paper's "unoptimized
//!   reference implementations", several times slower than fused native
//!   kernels): [SGD](sgd), [Momentum/Nesterov](momentum), [Adam](adam),
//!   [AdaGrad](adagrad), [RMSProp](rmsprop), and
//!   [AcceleGrad](accelegrad) (the paper's Listing 7),
//! * learning-rate [schedules](lr_schedule),
//! * the [training runner](runner) with `TrainingAccuracy` /
//!   `TestAccuracy` metrics, event hooks, and time-to-accuracy reporting,
//! * [trajectory divergence analysis](trajectory) (Fig. 11) and Level-2
//!   [validation](validate): `test_optimizer` and `test_training`.

pub mod accelegrad;
pub mod adagrad;
pub mod adam;
pub mod lbfgs;
pub mod lr_schedule;
pub mod momentum;
pub mod optimizer;
pub mod rmsprop;
pub mod runner;
pub mod sgd;
pub mod trajectory;
pub mod validate;

pub use optimizer::{train_step, train_step_traced, StepResult, ThreeStepOptimizer};
pub use runner::{TrainingConfig, TrainingLog, TrainingRunner};
