//! SGD with (Nesterov) momentum.

use crate::optimizer::ThreeStepOptimizer;
use deep500_tensor::{Result, Tensor};
use std::collections::HashMap;

/// Momentum SGD: `v ← µ·v + g`, `w ← w − lr·v` (or the Nesterov variant
/// `w ← w − lr·(g + µ·v)`).
pub struct Momentum {
    pub lr: f32,
    pub mu: f32,
    pub nesterov: bool,
    velocity: HashMap<String, Tensor>,
}

impl Momentum {
    /// Classical momentum.
    pub fn new(lr: f32, mu: f32) -> Self {
        Momentum {
            lr,
            mu,
            nesterov: false,
            velocity: HashMap::new(),
        }
    }

    /// Nesterov accelerated gradient.
    pub fn nesterov(lr: f32, mu: f32) -> Self {
        Momentum {
            lr,
            mu,
            nesterov: true,
            velocity: HashMap::new(),
        }
    }
}

impl ThreeStepOptimizer for Momentum {
    fn name(&self) -> &str {
        if self.nesterov {
            "NesterovMomentum"
        } else {
            "Momentum"
        }
    }
    fn update_rule(&mut self, grad: &Tensor, old_param: &Tensor, name: &str) -> Result<Tensor> {
        let v = self
            .velocity
            .entry(name.to_string())
            .or_insert_with(|| Tensor::zeros(grad.shape().clone()));
        // v = mu * v + g
        let new_v = v.scale(self.mu).add(grad)?;
        *v = new_v.clone();
        if self.nesterov {
            // w - lr * (g + mu * v)
            old_param.sub(&grad.add(&new_v.scale(self.mu))?.scale(self.lr))
        } else {
            old_param.sub(&new_v.scale(self.lr))
        }
    }
    fn reset(&mut self) {
        self.velocity.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_momentum_equals_sgd() {
        let mut m = Momentum::new(0.1, 0.0);
        let w = Tensor::from_slice(&[1.0]);
        let g = Tensor::from_slice(&[2.0]);
        let w2 = m.update_rule(&g, &w, "w").unwrap();
        assert!((w2.data()[0] - 0.8).abs() < 1e-7);
    }

    #[test]
    fn velocity_accumulates() {
        let mut m = Momentum::new(1.0, 0.5);
        let w = Tensor::from_slice(&[0.0]);
        let g = Tensor::from_slice(&[1.0]);
        let w1 = m.update_rule(&g, &w, "w").unwrap(); // v=1, w=-1
        assert_eq!(w1.data(), &[-1.0]);
        let w2 = m.update_rule(&g, &w1, "w").unwrap(); // v=1.5, w=-2.5
        assert_eq!(w2.data(), &[-2.5]);
        m.reset();
        let w3 = m.update_rule(&g, &w, "w").unwrap();
        assert_eq!(w3.data(), &[-1.0], "reset clears velocity");
    }

    #[test]
    fn per_parameter_state_is_independent() {
        let mut m = Momentum::new(1.0, 0.9);
        let w = Tensor::from_slice(&[0.0]);
        let g = Tensor::from_slice(&[1.0]);
        m.update_rule(&g, &w, "a").unwrap();
        let b1 = m.update_rule(&g, &w, "b").unwrap();
        assert_eq!(b1.data(), &[-1.0], "b has fresh velocity");
    }

    #[test]
    fn nesterov_looks_ahead() {
        let mut m = Momentum::nesterov(1.0, 0.5);
        let w = Tensor::from_slice(&[0.0]);
        let g = Tensor::from_slice(&[1.0]);
        // v = 1; update = g + mu*v = 1.5
        let w1 = m.update_rule(&g, &w, "w").unwrap();
        assert_eq!(w1.data(), &[-1.5]);
        assert_eq!(m.name(), "NesterovMomentum");
    }

    #[test]
    fn converges_on_quadratic() {
        let mut m = Momentum::new(0.05, 0.9);
        let mut w = Tensor::from_slice(&[5.0, -3.0]);
        for _ in 0..200 {
            let g = w.scale(2.0);
            w = m.update_rule(&g, &w, "w").unwrap();
        }
        assert!(w.l2_norm() < 1e-4, "norm {}", w.l2_norm());
    }
}
