//! AdaGrad (Duchi et al.): per-coordinate learning rates from the
//! accumulated squared gradient.

use crate::optimizer::ThreeStepOptimizer;
use deep500_tensor::{Result, Tensor};
use std::collections::HashMap;

/// AdaGrad: `G ← G + g²`, `w ← w − lr · g / (sqrt(G) + eps)`.
pub struct AdaGrad {
    pub lr: f32,
    pub eps: f32,
    accum: HashMap<String, Tensor>,
}

impl AdaGrad {
    pub fn new(lr: f32) -> Self {
        AdaGrad {
            lr,
            eps: 1e-8,
            accum: HashMap::new(),
        }
    }
}

impl ThreeStepOptimizer for AdaGrad {
    fn name(&self) -> &str {
        "AdaGrad"
    }
    fn update_rule(&mut self, grad: &Tensor, old_param: &Tensor, name: &str) -> Result<Tensor> {
        let acc = self
            .accum
            .entry(name.to_string())
            .or_insert_with(|| Tensor::zeros(grad.shape().clone()));
        let new_acc = acc.add(&grad.mul(grad)?)?;
        *acc = new_acc.clone();
        let eps = self.eps;
        let denom = new_acc.map(|x| x.sqrt() + eps);
        old_param.sub(&grad.div(&denom)?.scale(self.lr))
    }
    fn reset(&mut self) {
        self.accum.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_step_is_lr_in_sign_direction() {
        let mut o = AdaGrad::new(0.5);
        let w = Tensor::from_slice(&[0.0, 0.0]);
        let g = Tensor::from_slice(&[4.0, -9.0]);
        let w2 = o.update_rule(&g, &w, "w").unwrap();
        // g / sqrt(g^2) = sign(g)
        assert!((w2.data()[0] + 0.5).abs() < 1e-5);
        assert!((w2.data()[1] - 0.5).abs() < 1e-5);
    }

    #[test]
    fn step_size_decays_over_time() {
        let mut o = AdaGrad::new(1.0);
        let g = Tensor::from_slice(&[1.0]);
        let mut w = Tensor::from_slice(&[0.0]);
        let mut prev_step = f32::INFINITY;
        for _ in 0..5 {
            let w2 = o.update_rule(&g, &w, "w").unwrap();
            let step = (w.data()[0] - w2.data()[0]).abs();
            assert!(step < prev_step, "steps must shrink");
            prev_step = step;
            w = w2;
        }
    }

    #[test]
    fn converges_on_quadratic() {
        let mut o = AdaGrad::new(1.0);
        let mut w = Tensor::from_slice(&[3.0, -4.0]);
        for _ in 0..500 {
            let g = w.scale(2.0);
            w = o.update_rule(&g, &w, "w").unwrap();
        }
        assert!(w.l2_norm() < 0.05, "norm {}", w.l2_norm());
    }
}
