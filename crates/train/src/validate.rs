//! Level-2 validation: `test_optimizer` and `test_training`.
//!
//! `test_optimizer` "verifies the performance and correctness of one step
//! of the optimizer (ensuring that an optimizer trajectory does not
//! diverge from the Deep500 one)"; `test_training` "tests the convergence,
//! performance, and the related tradeoff of the overall training".

use crate::optimizer::{train_step, ThreeStepOptimizer};
use crate::runner::{TrainingConfig, TrainingLog, TrainingRunner};
use deep500_data::{DatasetSampler, Minibatch};
use deep500_graph::GraphExecutor;
use deep500_metrics::norms::DiffNorms;
use deep500_metrics::Timer;
use deep500_tensor::Result;

/// Report of a single-step optimizer comparison.
#[derive(Debug, Clone)]
pub struct OptimizerReport {
    /// Per-parameter difference norms after `steps` identical steps.
    pub param_norms: Vec<(String, DiffNorms)>,
    /// Candidate seconds per step (median-free single measurement; the
    /// runner collects proper distributions).
    pub candidate_time: f64,
    /// Reference seconds per step.
    pub reference_time: f64,
}

impl OptimizerReport {
    /// Pass criterion: all parameters within ℓ∞ `tol`.
    pub fn passes(&self, tol: f64) -> bool {
        self.param_norms.iter().all(|(_, n)| n.within(tol))
    }

    /// Candidate/reference time ratio. Shorthand for
    /// [`Self::slowdown_detail`]`.ratio`; sub-microsecond steps can
    /// quantize `reference_time` to zero, in which case the ratio is a
    /// guard value — check the detail's `degenerate` flag.
    pub fn slowdown(&self) -> f64 {
        self.slowdown_detail().ratio
    }

    /// NaN-free ratio + degeneracy marker, shared with the Level-1
    /// executor reports.
    pub fn slowdown_detail(&self) -> deep500_graph::validate::Slowdown {
        deep500_graph::validate::slowdown_of(self.candidate_time, self.reference_time)
    }
}

/// Run `steps` identical training steps with a candidate and a reference
/// optimizer (each on its own executor initialized identically) and
/// compare the resulting parameters.
pub fn test_optimizer(
    candidate: &mut dyn ThreeStepOptimizer,
    cand_exec: &mut dyn GraphExecutor,
    reference: &mut dyn ThreeStepOptimizer,
    ref_exec: &mut dyn GraphExecutor,
    batches: &[Minibatch],
) -> Result<OptimizerReport> {
    let mut cand_time = 0.0;
    let mut ref_time = 0.0;
    for batch in batches {
        let (r, t) = Timer::time(|| train_step(candidate, cand_exec, batch));
        r?;
        cand_time += t;
        let (r, t) = Timer::time(|| train_step(reference, ref_exec, batch));
        r?;
        ref_time += t;
    }
    let params: Vec<String> = ref_exec.network().get_params().to_vec();
    let mut param_norms = Vec::with_capacity(params.len());
    for p in params {
        let c = cand_exec.network().fetch_tensor(&p)?;
        let r = ref_exec.network().fetch_tensor(&p)?;
        param_norms.push((p, DiffNorms::of(c.data(), r.data())));
    }
    let n = batches.len().max(1) as f64;
    Ok(OptimizerReport {
        param_norms,
        candidate_time: cand_time / n,
        reference_time: ref_time / n,
    })
}

/// Report of a whole-training validation.
#[derive(Debug, Clone)]
pub struct TrainingReport {
    pub log: TrainingLog,
    /// Did the loss decrease from start to finish?
    pub loss_decreased: bool,
    /// Did test accuracy reach the threshold?
    pub reached_threshold: bool,
}

impl TrainingReport {
    /// Overall convergence pass.
    pub fn passes(&self) -> bool {
        self.loss_decreased && self.reached_threshold
    }
}

/// Train and validate convergence: loss must decrease and test accuracy
/// must reach `accuracy_threshold` by the end.
pub fn test_training(
    optimizer: &mut dyn ThreeStepOptimizer,
    executor: &mut dyn GraphExecutor,
    train_sampler: &mut dyn DatasetSampler,
    test_sampler: &mut dyn DatasetSampler,
    config: TrainingConfig,
    accuracy_threshold: f64,
) -> Result<TrainingReport> {
    let mut runner = TrainingRunner::new(config);
    let log = runner.run(optimizer, executor, train_sampler, Some(test_sampler))?;
    let loss_decreased = log
        .loss_endpoints()
        .map(|(first, last)| last < first)
        .unwrap_or(false);
    let reached_threshold = log
        .final_test_accuracy()
        .map(|a| a >= accuracy_threshold)
        .unwrap_or(false);
    Ok(TrainingReport {
        log,
        loss_decreased,
        reached_threshold,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adam::Adam;
    use crate::momentum::Momentum;
    use crate::sgd::GradientDescent;
    use deep500_data::sampler::ShuffleSampler;
    use deep500_data::synthetic::SyntheticDataset;
    use deep500_graph::{models, Engine};
    use std::sync::Arc;

    fn batches(n: usize, seed: u64) -> Vec<Minibatch> {
        let ds: Arc<dyn deep500_data::Dataset> = Arc::new(SyntheticDataset::new(
            "t",
            deep500_tensor::Shape::new(&[8]),
            3,
            64,
            0.3,
            seed,
        ));
        let mut s = ShuffleSampler::new(ds, 8, seed);
        (0..n).map(|_| s.next_batch().unwrap().unwrap()).collect()
    }

    #[test]
    fn equivalent_optimizers_pass() {
        // Momentum with mu = 0 must trace exactly the same trajectory as
        // plain gradient descent.
        let net = models::mlp(8, &[8], 3, 9).unwrap();
        let ga = Engine::builder(net.clone_structure()).build().unwrap();
        let mut ea = ga.lock();
        let gb = Engine::builder(net).build().unwrap();
        let mut eb = gb.lock();
        let mut cand = Momentum::new(0.05, 0.0);
        let mut refr = GradientDescent::new(0.05);
        let report =
            test_optimizer(&mut cand, &mut *ea, &mut refr, &mut *eb, &batches(4, 9)).unwrap();
        assert!(report.passes(1e-6), "{:?}", report.param_norms);
        assert!(report.slowdown() > 0.0);
    }

    #[test]
    fn different_optimizers_fail_the_tolerance() {
        let net = models::mlp(8, &[8], 3, 10).unwrap();
        let ga = Engine::builder(net.clone_structure()).build().unwrap();
        let mut ea = ga.lock();
        let gb = Engine::builder(net).build().unwrap();
        let mut eb = gb.lock();
        let mut cand = Adam::new(0.05);
        let mut refr = GradientDescent::new(0.05);
        let report =
            test_optimizer(&mut cand, &mut *ea, &mut refr, &mut *eb, &batches(4, 10)).unwrap();
        assert!(!report.passes(1e-9));
    }

    #[test]
    fn test_training_converges_on_easy_task() {
        let train_src =
            SyntheticDataset::new("easy", deep500_tensor::Shape::new(&[16]), 4, 128, 0.2, 11);
        let test_ds: Arc<dyn deep500_data::Dataset> = Arc::new(train_src.holdout(64));
        let ds: Arc<dyn deep500_data::Dataset> = Arc::new(train_src);
        let net = models::mlp(16, &[32], 4, 13).unwrap();
        let engine = Engine::builder(net).build().unwrap();
        let mut ex = engine.lock();
        let mut train = ShuffleSampler::new(ds, 16, 1);
        let mut test = ShuffleSampler::new(test_ds, 32, 1);
        let mut opt = GradientDescent::new(0.1);
        let report = test_training(
            &mut opt,
            &mut *ex,
            &mut train,
            &mut test,
            TrainingConfig {
                epochs: 10,
                ..Default::default()
            },
            0.7,
        )
        .unwrap();
        assert!(
            report.passes(),
            "loss_dec={} acc={:?}",
            report.loss_decreased,
            report.log.final_test_accuracy()
        );
    }

    #[test]
    fn unreachable_threshold_fails() {
        let ds: Arc<dyn deep500_data::Dataset> = Arc::new(SyntheticDataset::new(
            "hard",
            deep500_tensor::Shape::new(&[8]),
            3,
            32,
            0.3,
            14,
        ));
        let net = models::mlp(8, &[4], 3, 15).unwrap();
        let engine = Engine::builder(net).build().unwrap();
        let mut ex = engine.lock();
        let mut train = ShuffleSampler::new(ds.clone(), 8, 1);
        let mut test = ShuffleSampler::new(ds, 8, 2);
        let mut opt = GradientDescent::new(0.001); // too slow to converge
        let report = test_training(
            &mut opt,
            &mut *ex,
            &mut train,
            &mut test,
            TrainingConfig {
                epochs: 1,
                ..Default::default()
            },
            0.999,
        )
        .unwrap();
        assert!(!report.reached_threshold);
    }
}
